// Checkpoint-period ablation under machine faults.
//
// Runs the same workload against the calibrated machine-fault process
// (src/fault: node crashes, GPU ECC drains, rack switch outages) while
// sweeping the periodic-checkpoint period. A faulted job resumes from its
// last checkpoint; with no checkpointing it restarts from zero. The paper's
// §4.3 lesson — failures waste real GPU time, and recovery machinery should
// bound the blast radius — shows up here as lost GPU-time that shrinks
// monotonically as checkpoints get more frequent.

#include "bench/bench_common.h"

#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/fault/fault_process.h"
#include "src/sched/scheduler_config.h"

namespace {

using namespace philly;

double PassedShare(const SimulationResult& result) {
  int64_t passed = 0;
  for (const auto& job : result.jobs) {
    passed += job.status == JobStatus::kPassed;
  }
  return result.jobs.empty()
             ? 0.0
             : static_cast<double>(passed) / static_cast<double>(result.jobs.size());
}

std::string PeriodName(SimDuration period) {
  if (period == kNoCheckpoint) {
    return "none (restart)";
  }
  if (period >= Hours(1)) {
    return std::to_string(period / Hours(1)) + " h";
  }
  return std::to_string(period / Minutes(1)) + " min";
}

}  // namespace

int main() {
  PrintHeader("ablation — checkpoint period under machine faults",
              "failures waste real GPU time (§4.3); checkpoint-aware recovery "
              "bounds the loss per fault to one checkpoint interval plus the "
              "detection window");

  ShapeChecker checker;

  const SimDuration kPeriods[] = {kNoCheckpoint, Hours(24), Hours(4), Hours(1),
                                  Minutes(15)};
  std::vector<ExperimentConfig> configs;
  for (const SimDuration period : kPeriods) {
    ExperimentConfig config = BenchConfig();
    config.simulation.fault = FaultProcessConfig::Calibrated();
    config.simulation.scheduler.checkpoint_period = period;
    configs.push_back(std::move(config));
  }
  const ExperimentPool pool;
  const std::vector<ExperimentRun> runs = pool.RunMany(std::move(configs));

  TextTable table({"checkpoint period", "fault events", "server-downs",
                   "attempts killed", "lost GPU-h", "passed %"});
  std::vector<double> lost_hours;
  for (size_t i = 0; i < runs.size(); ++i) {
    const SimulationResult& result = runs[i].result;
    const double lost = result.machine_fault_lost_gpu_seconds / 3600.0;
    lost_hours.push_back(lost);
    table.AddRow({PeriodName(kPeriods[i]),
                  std::to_string(result.machine_faults_injected),
                  std::to_string(result.machine_fault_server_downs),
                  std::to_string(result.machine_fault_kills),
                  FormatDouble(lost, 1), FormatPercent(PassedShare(result), 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  checker.Check("machine faults occur at the calibrated rates",
                runs[0].result.machine_faults_injected > 0,
                std::to_string(runs[0].result.machine_faults_injected) +
                    " fault events");
  checker.Check("faults kill running attempts",
                runs[0].result.machine_fault_kills > 0,
                std::to_string(runs[0].result.machine_fault_kills) + " kills");
  // The tentpole claim: each halving-or-better of the checkpoint period can
  // only shrink the work at risk per fault, so lost GPU-time decreases
  // monotonically down the sweep.
  for (size_t i = 1; i < lost_hours.size(); ++i) {
    checker.Check("lost GPU-time shrinks: " + PeriodName(kPeriods[i - 1]) +
                      " -> " + PeriodName(kPeriods[i]),
                  lost_hours[i] < lost_hours[i - 1],
                  FormatDouble(lost_hours[i - 1], 1) + " -> " +
                      FormatDouble(lost_hours[i], 1) + " GPU-h");
  }
  checker.Check("frequent checkpoints recover most lost GPU-time",
                lost_hours.back() < 0.5 * lost_hours.front(),
                FormatDouble(lost_hours.front(), 1) + " -> " +
                    FormatDouble(lost_hours.back(), 1) + " GPU-h");
  return FinishBench(checker);
}
