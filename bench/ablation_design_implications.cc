// §5 design-implication ablations:
//   1. prioritizing locality: insist on strict locality for longer
//   2. mitigating interference: dedicated servers for small jobs
//   3. improving failure handling: adaptive retry policy
//   4. catching failures early: the 1-GPU pre-run pool, run as an actual
//      mechanism ("even running multi-GPU jobs on a single GPU will catch
//      such errors before they run on larger shared clusters")
//   5. predictive mitigation: online cross-job failure correlation

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/runner.h"
#include "src/failure/retry_policy.h"
#include "src/sched/scheduler_config.h"

namespace {

using namespace philly;

double FailedAttemptGpuHours(const SimulationResult& result) {
  double gpu_seconds = 0.0;
  for (const auto& job : result.jobs) {
    for (const auto& attempt : job.attempts) {
      if (attempt.failed && !attempt.preempted) {
        gpu_seconds += attempt.GpuTime();
      }
    }
  }
  return gpu_seconds / 3600.0;
}

double MeanQueueMinutes(const SimulationResult& result) {
  double sum = 0.0;
  for (const auto& job : result.jobs) {
    sum += ToMinutes(job.InitialQueueDelay());
  }
  return sum / static_cast<double>(result.jobs.size());
}

}  // namespace

int main() {
  PrintHeader("§5 ablations — design implications for future schedulers",
              "waiting for locality trades queueing delay for utilization; "
              "dedicated small-job servers remove interference at a "
              "fragmentation cost; adaptive retries and single-GPU pre-runs "
              "recover wasted GPU time");

  ShapeChecker checker;

  // Every ablation variant is an independent simulation of the same workload;
  // run the whole set through the experiment pool at once. Index 0 (the
  // unmodified default) doubles as the fixed-retry baseline for items 3-5.
  const char* kVariants[] = {"philly (relax quickly)", "wait 6h for locality",
                             "dedicated small-job servers",
                             "dedicated + migration defrag"};
  std::vector<ExperimentConfig> configs(7, BenchConfig());
  configs[1].simulation.scheduler.min_wait_before_relax = Hours(6);
  configs[2].simulation.scheduler.placer.pack_small_jobs = false;
  configs[3].simulation.scheduler.placer.pack_small_jobs = false;
  configs[3].simulation.scheduler.enable_migration = true;
  configs[4].simulation.scheduler.adaptive_retry = true;
  configs[5].simulation.scheduler.enable_prerun_pool = true;
  configs[6].simulation.scheduler.retry_policy =
      SchedulerConfig::RetryPolicyKind::kPredictive;
  const ExperimentPool pool;
  const std::vector<ExperimentRun> runs = pool.RunMany(std::move(configs));

  // 1 + 2: locality wait and dedicated placement.
  std::printf("[1] locality-wait sweep / [2] dedicated small-job servers\n\n");
  TextTable table({"variant", "mean queue (min)", "mean util (%)"});
  double relax_now_util = 0.0;
  double wait_long_util = 0.0;
  double wait_long_queue = 0.0;
  double relax_now_queue = 0.0;
  double packed_util = 0.0;
  double dedicated_util = 0.0;
  double dedicated_queue = 0.0;
  double migration_util = 0.0;
  long long migrations = 0;
  for (size_t i = 0; i < 4; ++i) {
    const ExperimentRun& run = runs[i];
    const std::string name = kVariants[i];
    const double queue = MeanQueueMinutes(run.result);
    const auto util_result = AnalyzeUtilization(run.result.jobs);
    const double util = util_result.all.Mean();
    // The population locality actually moves: 16-GPU jobs (they spread when
    // relaxed, stay dedicated when the scheduler holds out).
    const double util16 = util_result.MeanForSize(3);
    table.AddRow({name, FormatDouble(queue, 2), FormatDouble(util, 2)});
    if (name == "philly (relax quickly)") {
      relax_now_util = util16;
      relax_now_queue = queue;
      packed_util = util;
    } else if (name == "wait 6h for locality") {
      wait_long_util = util16;
      wait_long_queue = queue;
    } else if (name == "dedicated small-job servers") {
      dedicated_util = util;
      dedicated_queue = queue;
    } else {
      migration_util = util;
      migrations = run.result.migrations;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  checker.Check("waiting for locality raises 16-GPU utilization",
                wait_long_util > relax_now_util,
                FormatDouble(relax_now_util, 2) + " -> " +
                    FormatDouble(wait_long_util, 2));
  checker.Check("waiting for locality costs queueing delay",
                wait_long_queue > relax_now_queue);
  // The paper's own caveat: dedicated placement *without* defragmentation
  // fragments the cluster and hurts large-job locality; migration support is
  // the prerequisite (§5 "mitigating interference").
  checker.Check("dedicated placement alone fragments (utilization drops)",
                dedicated_util < packed_util,
                FormatDouble(packed_util, 2) + " -> " +
                    FormatDouble(dedicated_util, 2));
  checker.Check("dedicated small-job servers increase queueing",
                dedicated_queue > relax_now_queue);
  checker.Check("migration defrag recovers utilization lost to fragmentation",
                migration_util > dedicated_util,
                FormatDouble(dedicated_util, 2) + " -> " +
                    FormatDouble(migration_util, 2) + " (" +
                    std::to_string(migrations) + " migrations)");

  // 3: adaptive retry.
  std::printf("[3] adaptive retry policy\n\n");
  const ExperimentRun& fixed_run = runs[0];
  const ExperimentRun& adaptive_run = runs[4];
  const double fixed_waste = FailedAttemptGpuHours(fixed_run.result);
  const double adaptive_waste = FailedAttemptGpuHours(adaptive_run.result);
  std::printf("GPU-hours in failing attempts: fixed %.0f -> adaptive %.0f "
              "(%.1f%% saved)\n\n",
              fixed_waste, adaptive_waste,
              100.0 * (1.0 - adaptive_waste / fixed_waste));
  checker.Check("adaptive retry reduces GPU time burned by failures",
                adaptive_waste < fixed_waste * 0.95);

  // 4: 1-GPU pre-run pool, as an actual mechanism: multi-GPU jobs run briefly
  // on one pool GPU first; failures whose first iterations crash are caught
  // there instead of at gang scale.
  std::printf("[4] single-GPU pre-run pool for multi-GPU jobs\n\n");
  const ExperimentRun& prerun_run = runs[5];
  const auto multi_gpu_gang_failures = [](const SimulationResult& result) {
    double gpu_seconds = 0.0;
    for (const auto& job : result.jobs) {
      if (job.spec.num_gpus <= 1) {
        continue;
      }
      for (const auto& attempt : job.attempts) {
        if (attempt.failed && !attempt.prerun && !attempt.preempted) {
          gpu_seconds += attempt.GpuTime();
        }
      }
    }
    return gpu_seconds / 3600.0;
  };
  const double base_gang_waste = multi_gpu_gang_failures(fixed_run.result);
  const double pool_gang_waste = multi_gpu_gang_failures(prerun_run.result);
  const double pool_cost = prerun_run.result.prerun_gpu_seconds / 3600.0;
  const double savings = base_gang_waste - pool_gang_waste;
  std::printf("multi-GPU gang-scale failure GPU-hours: baseline %.0f -> with "
              "pool %.0f (saved %.0f); pool consumed %.0f GPU-h across %lld "
              "pre-runs (%lld failures caught at 1-GPU cost)\n",
              base_gang_waste, pool_gang_waste, savings, pool_cost,
              static_cast<long long>(prerun_run.result.prerun_jobs),
              static_cast<long long>(prerun_run.result.prerun_catches));
  // The paper proposes a pool of *cheaper* VMs: the mechanism pays off when a
  // pool GPU-hour costs less than (savings / pool time) of a cluster
  // GPU-hour. Catchable failures are the short ones (which is also why the
  // big win is in retries, items 3 and 5).
  std::printf("breakeven: pool pays off if its GPU-hour costs < %.2fx a cluster "
              "GPU-hour\n\n",
              pool_cost > 0 ? savings / pool_cost : 0.0);
  checker.Check("pre-run pool catches failures before gang scheduling",
                prerun_run.result.prerun_catches > 0);
  checker.Check("pre-run pool removes gang-scale failure GPU time",
                savings > 0, FormatDouble(savings, 0) + " GPU-h");

  // 5: predictive mitigation — online (user, reason) correlation stops
  // retrying error patterns that repeat across a user's jobs.
  std::printf("[5] predictive failure mitigation (cross-job correlation)\n\n");
  const ExperimentRun& predictive_run = runs[6];
  const double predictive_waste = FailedAttemptGpuHours(predictive_run.result);
  std::printf("GPU-hours in failing attempts: fixed %.0f -> predictive %.0f "
              "(%.1f%% saved without any per-reason policy table)\n",
              fixed_waste, predictive_waste,
              100.0 * (1.0 - predictive_waste / fixed_waste));
  checker.Check("predictive mitigation reduces failure GPU time",
                predictive_waste < fixed_waste);
  return FinishBench(checker);
}
