// Shared scaffolding for the reproduction benches.
//
// Every bench regenerates one table or figure of the paper: it runs the
// default experiment (or its own variant), prints paper-vs-measured rows, and
// evaluates the shape checks from DESIGN.md's per-experiment index. Benches
// always exit 0 so `for b in build/bench/*; do $b; done` runs the full suite;
// failed shape checks are printed prominently and recorded in EXPERIMENTS.md.
//
// Environment knobs:
//   PHILLY_BENCH_DAYS  arrival-window length in days (default 30)
//   PHILLY_BENCH_SEED  experiment seed (default 42)

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/core/report.h"

namespace philly {

inline int BenchDays() {
  const char* env = std::getenv("PHILLY_BENCH_DAYS");
  return env != nullptr ? std::atoi(env) : 30;
}

inline uint64_t BenchSeed() {
  const char* env = std::getenv("PHILLY_BENCH_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

inline ExperimentConfig BenchConfig() {
  return ExperimentConfig::BenchScale(BenchDays(), BenchSeed());
}

// Runs the default experiment once per process (benches are separate
// binaries, so there is no cross-bench sharing to exploit).
inline const ExperimentRun& DefaultRun() {
  static const ExperimentRun run = RunExperiment(BenchConfig());
  return run;
}

inline void PrintHeader(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

// Prints the checker outcome; always returns 0 (see file comment).
inline int FinishBench(const ShapeChecker& checker) {
  std::printf("\n%s", checker.Render().c_str());
  if (!checker.AllPassed()) {
    std::printf("*** SHAPE CHECK FAILURES — see EXPERIMENTS.md for discussion\n");
  }
  return 0;
}

}  // namespace philly

#endif  // BENCH_BENCH_COMMON_H_
