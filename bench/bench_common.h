// Shared scaffolding for the reproduction benches.
//
// Every bench regenerates one table or figure of the paper: it runs the
// default experiment (or its own variant), prints paper-vs-measured rows, and
// evaluates the shape checks from DESIGN.md's per-experiment index. Benches
// always exit 0 so `for b in build/bench/*; do $b; done` runs the full suite;
// failed shape checks are printed prominently and recorded in EXPERIMENTS.md.
//
// Environment knobs (validated by src/core/runner.h helpers — malformed or
// non-positive values abort with a clear message instead of silently running
// an empty workload):
//   PHILLY_BENCH_DAYS     arrival-window length in days (default 30)
//   PHILLY_BENCH_SEED     experiment seed (default 42)
//   PHILLY_BENCH_THREADS  worker threads for sweep benches (default: all cores)

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/runner.h"

namespace philly {

inline int BenchDays() {
  return PositiveIntFromEnv("PHILLY_BENCH_DAYS", 30);
}

inline uint64_t BenchSeed() {
  return U64FromEnv("PHILLY_BENCH_SEED", 42);
}

inline ExperimentConfig BenchConfig() {
  return ExperimentConfig::BenchScale(BenchDays(), BenchSeed());
}

// Runs the default experiment once per process (benches are separate
// binaries, so there is no cross-bench sharing to exploit).
inline const ExperimentRun& DefaultRun() {
  static const ExperimentRun run = RunExperiment(BenchConfig());
  return run;
}

inline void PrintHeader(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

// Prints the checker outcome; always returns 0 (see file comment).
inline int FinishBench(const ShapeChecker& checker) {
  std::printf("\n%s", checker.Render().c_str());
  if (!checker.AllPassed()) {
    std::printf("*** SHAPE CHECK FAILURES — see EXPERIMENTS.md for discussion\n");
  }
  return 0;
}

}  // namespace philly

#endif  // BENCH_BENCH_COMMON_H_
