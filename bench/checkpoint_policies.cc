// Checkpoint scheduling policies under a contended I/O bandwidth model.
//
// Grows ablation_checkpoint_period from "how often should jobs checkpoint?"
// to "how should concurrent checkpoints share the storage they write to?".
// Every run uses the same calibrated machine-fault process and the same
// per-rack shared-bandwidth checkpoint I/O model; what varies is the
// scheduling policy: fixed-period writes (every gang on its own clock),
// Daly-optimal periods (sqrt(2 * write_cost * MTBF) per gang footprint), and
// cooperative staggering (per-rack phase shifts plus an admission limit on
// concurrent writers). The §4.3 lesson extends naturally: checkpoints bound
// the blast radius of a fault, but under finite bandwidth they have a price —
// overhead for the writes themselves and stall time when contending writers
// stretch each other — and a rack-aware policy can cut the combined waste
// without giving up fault protection.
//
//   --out FILE   also write the per-policy summary as JSON (CI artifact)

#include "bench/bench_common.h"

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/fault/checkpoint_io.h"
#include "src/fault/fault_process.h"
#include "src/sched/scheduler_config.h"

namespace {

using namespace philly;

// The contended operating point: a modest per-rack storage service and
// chunky per-GPU states, so several concurrent writers per rack are common
// and fair-share stretching is visible.
constexpr double kBandwidthGbps = 0.25;
constexpr double kSizeGbPerGpu = 4.0;
constexpr int kCheckpointMins = 30;

struct PolicyRun {
  const char* label;
  bool io_model;  // false = legacy free instantaneous checkpoints
  CheckpointPolicy policy;
};

double PassedShare(const SimulationResult& result) {
  int64_t passed = 0;
  for (const auto& job : result.jobs) {
    passed += job.status == JobStatus::kPassed;
  }
  return result.jobs.empty()
             ? 0.0
             : static_cast<double>(passed) / static_cast<double>(result.jobs.size());
}

double CombinedWasteHours(const SimulationResult& r) {
  return (r.machine_fault_lost_gpu_seconds + r.ckpt_overhead_gpu_seconds +
          r.ckpt_stall_gpu_seconds) /
         3600.0;
}

std::string JsonNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  PrintHeader("checkpoint scheduling policies under I/O contention",
              "failures waste real GPU time (§4.3); with finite checkpoint "
              "bandwidth the recovery machinery itself has a price, and "
              "rack-aware cooperative scheduling cuts the combined waste");

  ShapeChecker checker;

  const PolicyRun kRuns[] = {
      {"free I/O (legacy)", false, CheckpointPolicy::kFixedPeriod},
      {"fixed-period", true, CheckpointPolicy::kFixedPeriod},
      {"daly-optimal", true, CheckpointPolicy::kDalyOptimal},
      {"cooperative-stagger", true, CheckpointPolicy::kCooperativeStagger},
  };
  std::vector<ExperimentConfig> configs;
  for (const PolicyRun& run : kRuns) {
    ExperimentConfig config = BenchConfig();
    config.simulation.fault = FaultProcessConfig::Calibrated();
    config.simulation.scheduler.checkpoint_period = Minutes(kCheckpointMins);
    config.simulation.scheduler.checkpoint_policy = run.policy;
    if (run.io_model) {
      config.simulation.ckpt_io.rack_bandwidth_gbps = kBandwidthGbps;
      config.simulation.ckpt_io.size_gb_per_gpu = kSizeGbPerGpu;
    }
    configs.push_back(std::move(config));
  }
  const ExperimentPool pool;
  const std::vector<ExperimentRun> runs = pool.RunMany(std::move(configs));

  TextTable table({"policy", "writes", "interrupted", "lost GPU-h",
                   "overhead GPU-h", "stall GPU-h", "combined GPU-h",
                   "passed %"});
  for (size_t i = 0; i < runs.size(); ++i) {
    const SimulationResult& r = runs[i].result;
    table.AddRow({kRuns[i].label, std::to_string(r.ckpt_writes_completed),
                  std::to_string(r.ckpt_writes_interrupted),
                  FormatDouble(r.machine_fault_lost_gpu_seconds / 3600.0, 1),
                  FormatDouble(r.ckpt_overhead_gpu_seconds / 3600.0, 1),
                  FormatDouble(r.ckpt_stall_gpu_seconds / 3600.0, 1),
                  FormatDouble(CombinedWasteHours(r), 1),
                  FormatPercent(PassedShare(r), 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  const SimulationResult& fixed = runs[1].result;
  const SimulationResult& daly = runs[2].result;
  const SimulationResult& stagger = runs[3].result;

  checker.Check("the I/O model issues checkpoint writes",
                fixed.ckpt_writes_completed > 0,
                std::to_string(fixed.ckpt_writes_completed) + " writes");
  checker.Check("the operating point is contended (fixed-period stalls)",
                fixed.ckpt_stall_gpu_seconds > 0,
                FormatDouble(fixed.ckpt_stall_gpu_seconds / 3600.0, 1) +
                    " GPU-h stalled");
  checker.Check("faults still kill attempts with the I/O model on",
                fixed.machine_fault_kills > 0,
                std::to_string(fixed.machine_fault_kills) + " kills");
  // The tentpole claim: at equal bandwidth, cooperative staggering strictly
  // reduces the combined waste (lost + overhead + stall) vs fixed-period.
  checker.Check("cooperative stagger beats fixed-period on combined waste",
                CombinedWasteHours(stagger) < CombinedWasteHours(fixed),
                FormatDouble(CombinedWasteHours(fixed), 1) + " -> " +
                    FormatDouble(CombinedWasteHours(stagger), 1) + " GPU-h");
  checker.Check("daly periods write less often than the 30-min fixed clock",
                daly.ckpt_writes_completed < fixed.ckpt_writes_completed,
                std::to_string(fixed.ckpt_writes_completed) + " -> " +
                    std::to_string(daly.ckpt_writes_completed) + " writes");
  // GPU-time conservation: every allocated GPU-second is useful, lost to a
  // fault, checkpoint overhead, or contention stall (non-prerun attempts).
  for (size_t i = 0; i < runs.size(); ++i) {
    const SimulationResult& r = runs[i].result;
    const double recomposed = r.useful_gpu_seconds +
                              r.machine_fault_lost_gpu_seconds +
                              r.ckpt_overhead_gpu_seconds +
                              r.ckpt_stall_gpu_seconds;
    const double tol = 1e-6 * std::max(1.0, r.allocated_gpu_seconds);
    checker.Check(std::string("GPU-time conservation holds: ") + kRuns[i].label,
                  std::abs(recomposed - r.allocated_gpu_seconds) <= tol,
                  FormatDouble(r.allocated_gpu_seconds, 0) + " allocated vs " +
                      FormatDouble(recomposed, 0) + " recomposed");
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\n  \"days\": " << BenchDays()
        << ",\n  \"seed\": " << BenchSeed()
        << ",\n  \"bandwidth_gbps\": " << JsonNumber(kBandwidthGbps)
        << ",\n  \"size_gb_per_gpu\": " << JsonNumber(kSizeGbPerGpu)
        << ",\n  \"checkpoint_mins\": " << kCheckpointMins
        << ",\n  \"policies\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
      const SimulationResult& r = runs[i].result;
      out << "    {\"policy\": \""
          << (kRuns[i].io_model ? ToString(kRuns[i].policy) : "free-io")
          << "\", \"writes_completed\": " << r.ckpt_writes_completed
          << ", \"writes_interrupted\": " << r.ckpt_writes_interrupted
          << ", \"lost_gpu_hours\": "
          << JsonNumber(r.machine_fault_lost_gpu_seconds / 3600.0)
          << ", \"overhead_gpu_hours\": "
          << JsonNumber(r.ckpt_overhead_gpu_seconds / 3600.0)
          << ", \"stall_gpu_hours\": "
          << JsonNumber(r.ckpt_stall_gpu_seconds / 3600.0)
          << ", \"combined_waste_gpu_hours\": "
          << JsonNumber(CombinedWasteHours(r))
          << ", \"passed_share\": " << JsonNumber(PassedShare(r)) << "}"
          << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.good()) {
      std::fprintf(stderr, "error while writing %s\n", out_path.c_str());
      return 1;
    }
    std::printf("summary written to %s\n", out_path.c_str());
  }
  return FinishBench(checker);
}
