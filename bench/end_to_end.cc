// End-to-end perf gate for the simulator core.
//
// Runs the full experiment twice — once on the pre-rebuild core (legacy heap
// event queue + O(jobs)-per-snapshot epoch scan: SimEngine::kLegacyHeap with
// legacy_snapshot_scan) and once on the calendar-queue core — and compares:
//   * correctness: the scheduler event stream AND the telemetry stream must
//     be byte-identical — the rebuilt engine is required to reproduce the
//     legacy event ordering exactly (docs/perf.md);
//   * performance: the TraceProfiler's whole-`experiment` slice, reported as
//     a speedup ratio. CI checks the ratio, not wall seconds, which divides
//     out machine speed.
//
// Output: a human-readable table plus BENCH_end_to_end.json (override with
// --out). With `--check <baseline.json>` the bench exits 1 when the measured
// speedup falls more than 20% below the checked-in baseline's, or when the
// two cores' outputs diverge — that is the CI perf-smoke gate.
//
// The committed baseline also records a year-scale row (calendar core only):
// set PHILLY_BENCH_YEAR_DAYS=365 to regenerate it. CI leaves it off — the
// row documents throughput at ~500k jobs, it is not part of the gate.
//
// Scale knobs are the usual PHILLY_BENCH_DAYS / PHILLY_BENCH_SEED.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "src/common/json.h"
#include "src/common/table.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace_profiler.h"

namespace philly {
namespace {

struct TimedRun {
  std::string events;     // NDJSON scheduler stream (identity run only)
  std::string telemetry;  // NDJSON telemetry stream (identity run only)
  int64_t experiment_us = 0;  // whole-experiment profiler slice
  size_t jobs = 0;
};

void UseLegacyCore(ExperimentConfig* config) {
  config->simulation.engine = SimEngine::kLegacyHeap;
  config->simulation.legacy_snapshot_scan = true;
}

// Timing and identity use separate runs: stream appends happen inside the
// simulation, so logging during the timed run would dilute the measured
// speedup with identical logging cost on both sides. The timed run attaches
// only the profiler; the identity run attaches only the streams.
TimedRun RunOnce(bool legacy, bool capture_streams, int days) {
  ExperimentConfig config = ExperimentConfig::BenchScale(days, BenchSeed());
  if (legacy) {
    UseLegacyCore(&config);
  }
  EventLog log;
  ClusterTimeSeries timeseries;
  TraceProfiler profiler;
  if (capture_streams) {
    config.simulation.obs.event_log = &log;
    config.simulation.obs.timeseries = &timeseries;
  } else {
    config.simulation.obs.profiler = &profiler;
  }
  const ExperimentRun run = RunExperiment(config);
  TimedRun timed;
  if (capture_streams) {
    std::ostringstream events;
    log.WriteNdjson(events);
    timed.events = events.str();
    std::ostringstream telemetry;
    timeseries.WriteNdjson(telemetry);
    timed.telemetry = telemetry.str();
  }
  timed.experiment_us = profiler.TotalDurationOf("experiment");
  timed.jobs = run.result.jobs.size();
  return timed;
}

double Seconds(int64_t us) { return static_cast<double>(us) / 1e6; }

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_end_to_end.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out <json>] [--check <baseline.json>]\n",
                   argv[0]);
      return 2;
    }
  }

  PrintHeader("simulator core: legacy heap vs calendar queue, end to end",
              "the rebuilt event engine reproduces the legacy core "
              "byte-identically while cutting whole-experiment time");

  // Best-of-3 on each side: single-shot wall times swing with machine noise;
  // each side's fastest run recovers the intrinsic cost.
  constexpr int kRepeats = 3;
  const int days = BenchDays();
  std::printf("timing legacy core (days=%d seed=%llu, best of %d)...\n", days,
              static_cast<unsigned long long>(BenchSeed()), kRepeats);
  TimedRun legacy = RunOnce(/*legacy=*/true, /*capture_streams=*/false, days);
  std::printf("timing calendar core (best of %d)...\n", kRepeats);
  TimedRun calendar =
      RunOnce(/*legacy=*/false, /*capture_streams=*/false, days);
  for (int i = 1; i < kRepeats; ++i) {
    const TimedRun l = RunOnce(/*legacy=*/true, /*capture_streams=*/false, days);
    if (l.experiment_us < legacy.experiment_us) legacy = l;
    const TimedRun c =
        RunOnce(/*legacy=*/false, /*capture_streams=*/false, days);
    if (c.experiment_us < calendar.experiment_us) calendar = c;
  }
  std::printf("comparing event + telemetry streams...\n");
  const TimedRun legacy_id =
      RunOnce(/*legacy=*/true, /*capture_streams=*/true, days);
  const TimedRun calendar_id =
      RunOnce(/*legacy=*/false, /*capture_streams=*/true, days);

  const bool identical = legacy_id.events == calendar_id.events &&
                         legacy_id.telemetry == calendar_id.telemetry &&
                         !legacy_id.events.empty() &&
                         legacy.jobs == calendar.jobs;
  const double speedup =
      calendar.experiment_us > 0
          ? Seconds(legacy.experiment_us) / Seconds(calendar.experiment_us)
          : 0.0;

  TextTable table({"core", "experiment (s)", "jobs"});
  table.AddRow({"legacy", std::to_string(Seconds(legacy.experiment_us)),
                std::to_string(legacy.jobs)});
  table.AddRow({"calendar", std::to_string(Seconds(calendar.experiment_us)),
                std::to_string(calendar.jobs)});
  std::printf("\n%s", table.Render().c_str());
  std::printf("speedup: %.2fx (whole experiment, legacy/calendar)\n", speedup);
  std::printf("outputs byte-identical: %s (%zu event + %zu telemetry bytes)\n",
              identical ? "yes" : "NO", legacy_id.events.size(),
              legacy_id.telemetry.size());

  // Optional year-scale throughput row (calendar core only, single shot).
  int year_days = 0;
  size_t year_jobs = 0;
  double year_s = 0.0;
  if (const char* env = std::getenv("PHILLY_BENCH_YEAR_DAYS");
      env != nullptr && std::atoi(env) > 0) {
    year_days = std::atoi(env);
    std::printf("timing calendar core at year scale (days=%d)...\n", year_days);
    const TimedRun year =
        RunOnce(/*legacy=*/false, /*capture_streams=*/false, year_days);
    year_jobs = year.jobs;
    year_s = Seconds(year.experiment_us);
    std::printf("year scale: %d days, %zu jobs, %.2f s\n", year_days,
                year_jobs, year_s);
  }

  {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"end_to_end\",\n"
                  "  \"days\": %d,\n"
                  "  \"seed\": %llu,\n"
                  "  \"jobs\": %zu,\n"
                  "  \"legacy_experiment_s\": %.6f,\n"
                  "  \"calendar_experiment_s\": %.6f,\n"
                  "  \"speedup\": %.4f,\n"
                  "  \"byte_identical\": %s,\n"
                  "  \"year_days\": %d,\n"
                  "  \"year_jobs\": %zu,\n"
                  "  \"year_experiment_s\": %.6f\n"
                  "}\n",
                  days, static_cast<unsigned long long>(BenchSeed()),
                  legacy.jobs, Seconds(legacy.experiment_us),
                  Seconds(calendar.experiment_us), speedup,
                  identical ? "true" : "false", year_days, year_jobs, year_s);
    out << buf;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: legacy and calendar runs diverged\n");
    return 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    const JsonValue baseline = JsonValue::Parse(buf.str(), &error);
    if (!error.empty() || baseline["speedup"].is_null()) {
      std::fprintf(stderr, "cannot parse baseline %s: %s\n",
                   baseline_path.c_str(), error.c_str());
      return 1;
    }
    const double baseline_speedup = baseline["speedup"].AsNumber();
    // Compare ratios, not wall seconds: both runs share the machine, so the
    // ratio divides CI-runner speed out. >20% below baseline fails.
    const double floor = 0.8 * baseline_speedup;
    std::printf("baseline speedup %.2fx, floor %.2fx, measured %.2fx\n",
                baseline_speedup, floor, speedup);
    if (speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: speedup regressed >20%% vs %s (%.2fx < %.2fx)\n",
                   baseline_path.c_str(), speedup, floor);
      return 1;
    }
    std::printf("perf smoke: PASS\n");
  }
  return 0;
}

}  // namespace
}  // namespace philly

int main(int argc, char** argv) { return philly::Main(argc, argv); }
