// Figure 2: CDF of job run times for 1 / 2-4 / 5-8 / >8 GPU jobs.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Figure 2 — CDF of job run times by GPU count",
              "run times span minutes to weeks; jobs with more GPUs run longer; "
              "~0.5% of jobs run for more than a week");

  const auto& run = DefaultRun();
  const RunTimeResult result = AnalyzeRunTimes(run.result.jobs);

  TextTable table({"bucket", "n", "P(<=1min)", "P(<=10min)", "P(<=1h)", "P(<=1d)",
                   "P(<=1w)", "median (min)"});
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    const auto& hist = result.cdf_minutes[static_cast<size_t>(b)];
    table.AddRow({std::string(ToString(static_cast<SizeBucket>(b))),
                  FormatDouble(hist.Count(), 0), FormatPercent(hist.CdfAt(1.0), 1),
                  FormatPercent(hist.CdfAt(10.0), 1), FormatPercent(hist.CdfAt(60.0), 1),
                  FormatPercent(hist.CdfAt(1440.0), 1),
                  FormatPercent(hist.CdfAt(10080.0), 1),
                  FormatDouble(hist.Median(), 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("fraction of jobs running > 1 week: %s (paper: ~0.5%%)\n",
              FormatPercent(result.fraction_over_one_week, 2).c_str());

  ShapeChecker checker;
  for (int b = 1; b < kNumSizeBuckets; ++b) {
    checker.Check(
        "median run time increases with bucket " + std::to_string(b),
        result.cdf_minutes[static_cast<size_t>(b - 1)].Median() <
            result.cdf_minutes[static_cast<size_t>(b)].Median());
  }
  checker.CheckBand("fraction over one week", result.fraction_over_one_week, 0.001,
                    0.03);
  checker.Check("span reaches sub-10-minute jobs",
                result.cdf_minutes[0].CdfAt(10.0) > 0.2);
  checker.Check("span reaches multi-day jobs",
                result.cdf_minutes[3].Quantile(0.95) > 1440.0);
  return FinishBench(checker);
}
