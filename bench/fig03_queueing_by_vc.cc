// Figure 3: CDF of scheduler queueing delay for the five largest virtual
// clusters, split by GPU-count bucket.

#include "bench/bench_common.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Figure 3 — queueing delay CDFs for the five largest VCs",
              "jobs with >4 GPUs have a heavier delay tail (VC2: 25% wait >=10min "
              "vs 10% of 1-GPU jobs); overall delays are not markedly distinct; "
              "VC4 has no >8-GPU jobs");

  const auto& run = DefaultRun();
  const QueueDelayResult result = AnalyzeQueueDelays(run.result.jobs);

  for (VcId vc = 0; vc < 5; ++vc) {
    const auto it = result.by_vc.find(vc);
    if (it == result.by_vc.end()) {
      continue;
    }
    std::printf("VC%d:\n", vc + 1);
    TextTable table({"bucket", "n", "P(<=1min)", "P(<=10min)", "P(<=1h)",
                     "p90 (min)", "p99 (min)"});
    for (int b = 0; b < kNumSizeBuckets; ++b) {
      const auto& hist = it->second[static_cast<size_t>(b)];
      table.AddRow({std::string(ToString(static_cast<SizeBucket>(b))),
                    FormatDouble(hist.Count(), 0),
                    FormatPercent(hist.Count() > 0 ? hist.CdfAt(1.0) : 0, 1),
                    FormatPercent(hist.Count() > 0 ? hist.CdfAt(10.0) : 0, 1),
                    FormatPercent(hist.Count() > 0 ? hist.CdfAt(60.0) : 0, 1),
                    FormatDouble(hist.Quantile(0.9), 2),
                    FormatDouble(hist.Quantile(0.99), 2)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // Per-VC load context (§2.3): vc4 mirrors the paper's VC5, whose demand
  // chronically exceeds its quota so fair-share delay looms larger there.
  const VcLoadResult load =
      AnalyzeVcLoad(run.result.jobs, run.config.workload.vcs);
  TextTable load_table({"VC", "jobs", "quota", "mean busy", "peak busy",
                        "time over quota", "fair-share delay share"});
  for (VcId vc = 0; vc < 5 && vc < static_cast<VcId>(load.rows.size()); ++vc) {
    const auto& row = load.rows[static_cast<size_t>(vc)];
    load_table.AddRow({"VC" + std::to_string(vc + 1), std::to_string(row.jobs),
                       std::to_string(row.quota_gpus),
                       FormatDouble(row.mean_busy_gpus, 0),
                       FormatDouble(row.peak_busy_gpus, 0),
                       FormatPercent(row.over_quota_time_share, 1),
                       FormatPercent(row.fair_share_delay_share, 1)});
  }
  std::printf("%s\n", load_table.Render().c_str());

  ShapeChecker checker;
  // Heavier tails for >4-GPU jobs, cluster-wide.
  const double small_wait = 1.0 - result.overall[0].CdfAt(10.0);
  const double big_wait = 1.0 -
      (result.overall[2].CdfAt(10.0) * result.overall[2].Count() +
       result.overall[3].CdfAt(10.0) * result.overall[3].Count()) /
          (result.overall[2].Count() + result.overall[3].Count());
  checker.Check(">4-GPU jobs wait >=10min more often than 1-GPU jobs",
                big_wait > small_wait,
                "P(wait>=10min): >4GPU=" + FormatPercent(big_wait, 1) +
                    " 1GPU=" + FormatPercent(small_wait, 1));
  checker.Check("most jobs start quickly (P(delay<=10min) > 70% overall)",
                result.overall[0].CdfAt(10.0) > 0.7);
  // VC4 (index 3) has no >8-GPU jobs by construction.
  const auto vc4 = result.by_vc.find(3);
  checker.Check("VC4 contains no >8-GPU jobs",
                vc4 != result.by_vc.end() && vc4->second[3].Count() == 0);
  checker.Check("delay tail reaches tens of minutes for large jobs",
                result.overall[3].Quantile(0.99) > 10.0);
  // Paper: VC5 over-subscribes its quota, so its fair-share delay share is
  // the highest of the large VCs (37% there).
  double vc4_fair = 0.0;
  double others_max = 0.0;
  for (VcId vc = 0; vc < 5 && vc < static_cast<VcId>(load.rows.size()); ++vc) {
    if (vc == 4) {
      vc4_fair = load.rows[static_cast<size_t>(vc)].fair_share_delay_share;
    } else {
      others_max = std::max(others_max,
                            load.rows[static_cast<size_t>(vc)].fair_share_delay_share);
    }
  }
  checker.Check("the over-subscribed VC has the largest fair-share delay share",
                vc4_fair >= others_max,
                "vc5=" + FormatPercent(vc4_fair, 1) + " vs others' max " +
                    FormatPercent(others_max, 1));
  return FinishBench(checker);
}
