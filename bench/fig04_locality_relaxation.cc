// Figure 4: queueing delay vs. number of servers the job landed on, for 5-8
// GPU and >8 GPU jobs — relaxing locality starts jobs sooner.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/runner.h"

int main() {
  using namespace philly;
  PrintHeader("Figure 4 — relaxing locality reduces queueing delay",
              "5-8 GPU jobs land on 1-2 servers; >8 GPU jobs spread over 2-16 "
              "servers, and those placed on many servers started sooner");

  // The relaxed default and its strict-locality counterfactual (used by the
  // causal check at the end) are independent, so simulate both in parallel.
  ExperimentConfig strict = BenchConfig();
  strict.simulation.scheduler.max_relax_level = 1;  // stay within one domain
  strict.simulation.scheduler.min_wait_before_relax = Hours(2);
  const ExperimentPool pool;
  const std::vector<ExperimentRun> runs = pool.RunMany({BenchConfig(), strict});
  const ExperimentRun& run = runs[0];
  const ExperimentRun& strict_run = runs[1];
  const LocalityDelayResult result = AnalyzeLocalityDelay(run.result.jobs);

  const auto print_group = [](const char* name,
                              const std::vector<LocalityDelayResult::Cell>& cells) {
    std::printf("%s jobs:\n", name);
    TextTable table({"servers", "jobs", "mean delay (min)", "p50", "p90"});
    for (const auto& cell : cells) {
      table.AddRow({std::to_string(cell.num_servers), std::to_string(cell.count),
                    FormatDouble(cell.delay_minutes.mean, 2),
                    FormatDouble(cell.delay_minutes.p50, 2),
                    FormatDouble(cell.delay_minutes.p90, 2)});
    }
    std::printf("%s\n", table.Render().c_str());
  };
  print_group("5-8 GPU", result.five_to_eight);
  print_group(">8 GPU", result.gt_eight);

  ShapeChecker checker;
  // 5-8 GPU jobs overwhelmingly land on 1-2 servers.
  double tight = 0;
  double total = 0;
  for (const auto& cell : result.five_to_eight) {
    total += cell.count;
    if (cell.num_servers <= 2) {
      tight += cell.count;
    }
  }
  // The paper's figure shows ~90% of 5-8 GPU jobs on 1-2 servers; under our
  // somewhat deeper sustained saturation a bit more relaxation occurs.
  checker.Check("5-8 GPU jobs mostly on 1-2 servers (>=75%)",
                total > 0 && tight / total >= 0.75,
                FormatPercent(total > 0 ? tight / total : 0, 1));
  // >8 GPU spread range.
  checker.Check(">8 GPU jobs observed on 2 servers",
                !result.gt_eight.empty() && result.gt_eight.front().num_servers == 2);
  checker.Check(">8 GPU jobs spread up to many servers",
                !result.gt_eight.empty() && result.gt_eight.back().num_servers >= 8);
  // The paper's causal claim — relaxing locality lets jobs start sooner — is
  // checked against the counterfactual: the same workload with relaxation
  // disabled (jobs must wait for their strict-locality placement).
  const QueueDelayResult relaxed_delays = AnalyzeQueueDelays(run.result.jobs);
  const QueueDelayResult strict_delays = AnalyzeQueueDelays(strict_run.result.jobs);
  // Compare on the mean (delays concentrate in burst episodes, so fixed
  // quantiles below the episode mass are noise).
  const double relaxed_mean = relaxed_delays.overall[3].Mean();
  const double strict_mean = strict_delays.overall[3].Mean();
  std::printf("counterfactual: >8-GPU mean delay with relaxation %.1f min, with "
              "strict locality %.1f min (p99: %.0f vs %.0f)\n",
              relaxed_mean, strict_mean, relaxed_delays.overall[3].Quantile(0.99),
              strict_delays.overall[3].Quantile(0.99));
  checker.Check("relaxing locality reduces >8-GPU queueing delay vs strict",
                relaxed_mean < strict_mean,
                "mean relaxed=" + FormatDouble(relaxed_mean, 1) + "min strict=" +
                    FormatDouble(strict_mean, 1) + "min");
  return FinishBench(checker);
}
