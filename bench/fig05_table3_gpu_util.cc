// Figure 5 + Table 3: per-minute GPU utilization of in-use GPUs, by final
// status and representative job size.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Figure 5 / Table 3 — GPU utilization by status and size",
              "overall mean ~52%; 16-GPU jobs lowest (~40%); Table 3 means: "
              "1GPU 52.4, 4GPU 45.2, 8GPU 59.0, 16GPU 40.4 (All); "
              "Passed/Killed/Unsuccessful = 52.4/43.0/60.4");

  const auto& run = DefaultRun();
  const UtilizationResult result = AnalyzeUtilization(run.result.jobs);

  constexpr double kPaperAllBySize[] = {52.38, 45.18, 58.99, 40.39};
  TextTable table({"job size", "Passed", "Killed", "Unsuccessful", "All",
                   "paper (All)"});
  for (int i = 0; i < UtilizationResult::kNumRepresentative; ++i) {
    table.AddRow({std::to_string(kRepresentativeSizes[i]) + " GPU",
                  FormatDouble(result.MeanFor(JobStatus::kPassed, i), 2),
                  FormatDouble(result.MeanFor(JobStatus::kKilled, i), 2),
                  FormatDouble(result.MeanFor(JobStatus::kUnsuccessful, i), 2),
                  FormatDouble(result.MeanForSize(i), 2),
                  FormatDouble(kPaperAllBySize[i], 2)});
  }
  table.AddRule();
  table.AddRow({"All", "-", "-", "-", FormatDouble(result.all.Mean(), 2), "52.32"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("CDF probes (All):\n");
  for (int i = 0; i < UtilizationResult::kNumRepresentative; ++i) {
    std::printf("  %2d GPU: %s\n", kRepresentativeSizes[i],
                RenderCdfProbes(result.by_size[static_cast<size_t>(i)],
                                {20.0, 40.0, 60.0, 80.0}, "%")
                    .c_str());
  }

  ShapeChecker checker;
  checker.CheckBand("overall mean utilization (paper 52.3%)", result.all.Mean(),
                    40.0, 62.0);
  checker.Check("16-GPU jobs have the lowest mean utilization",
                result.MeanForSize(3) < result.MeanForSize(0) &&
                    result.MeanForSize(3) < result.MeanForSize(1) &&
                    result.MeanForSize(3) < result.MeanForSize(2),
                "16GPU=" + FormatDouble(result.MeanForSize(3), 1));
  checker.Check("8-GPU (whole dedicated server) beats 4-GPU (colocated)",
                result.MeanForSize(2) > result.MeanForSize(1));
  checker.Check("half of in-use GPU cycles are wasted (mean well below 100%)",
                result.all.Mean() < 65.0);
  checker.Check("utilization CDFs are broad (p10 < 35% < p90 for 1-GPU jobs)",
                result.by_size[0].Quantile(0.1) < 35.0 &&
                    result.by_size[0].Quantile(0.9) > 35.0);
  // By-status ordering across all sizes pooled (paper row "All":
  // Unsuccessful 60.4 > Passed 52.4 > Killed 43.0).
  double passed_w = 0.0;
  double killed_w = 0.0;
  double unsuccessful_w = 0.0;
  double passed_n = 0.0;
  double killed_n = 0.0;
  double unsuccessful_n = 0.0;
  for (int i = 0; i < UtilizationResult::kNumRepresentative; ++i) {
    const auto add = [&](JobStatus status, double& w, double& n) {
      const auto& hist =
          result.by_status_size[static_cast<size_t>(status)][static_cast<size_t>(i)];
      w += hist.Mean() * hist.Count();
      n += hist.Count();
    };
    add(JobStatus::kPassed, passed_w, passed_n);
    add(JobStatus::kKilled, killed_w, killed_n);
    add(JobStatus::kUnsuccessful, unsuccessful_w, unsuccessful_n);
  }
  const double passed_mean = passed_w / passed_n;
  const double killed_mean = killed_w / killed_n;
  const double unsuccessful_mean = unsuccessful_w / unsuccessful_n;
  checker.Check("by-status ordering: Unsuccessful > Passed > Killed",
                unsuccessful_mean > passed_mean && passed_mean > killed_mean,
                "U=" + FormatDouble(unsuccessful_mean, 1) + " P=" +
                    FormatDouble(passed_mean, 1) + " K=" +
                    FormatDouble(killed_mean, 1));
  return FinishBench(checker);
}
