// Figure 6: utilization of 8-GPU jobs (one dedicated server) vs 16-GPU jobs
// (two dedicated servers) — the cost of crossing the server boundary.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Figure 6 — distributed training on dedicated servers",
              "8-GPU jobs: mean 56.9%, median 73.1%; 16-GPU jobs on two servers: "
              "mean 34.3%; median ratio ~1.67x");

  const auto& run = DefaultRun();
  const UtilizationResult result = AnalyzeUtilization(run.result.jobs);

  const Summary s8 = Summarize(result.dedicated_8gpu);
  const Summary s16 = Summarize(result.dedicated_16gpu);
  TextTable table({"population", "gpu-min", "mean", "p50", "p90", "paper mean"});
  table.AddRow({"8 GPU, 1 server", FormatDouble(s8.count, 0), FormatDouble(s8.mean, 1),
                FormatDouble(s8.p50, 1), FormatDouble(s8.p90, 1), "56.9"});
  table.AddRow({"16 GPU, 2 servers", FormatDouble(s16.count, 0),
                FormatDouble(s16.mean, 1), FormatDouble(s16.p50, 1),
                FormatDouble(s16.p90, 1), "34.3 (43.7 in Table 5)"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("median ratio 8GPU/16GPU: %.2fx (paper: 1.67x)\n",
              s16.p50 > 0 ? s8.p50 / s16.p50 : 0.0);

  ShapeChecker checker;
  checker.Check("both populations observed", s8.count > 0 && s16.count > 0);
  checker.Check("8-GPU dedicated beats 16-GPU two-server mean",
                s8.mean > s16.mean + 4.0,
                "8GPU=" + FormatDouble(s8.mean, 1) + " 16GPU=" +
                    FormatDouble(s16.mean, 1));
  checker.CheckBand("8-GPU dedicated mean (paper 56.9)", s8.mean, 45.0, 68.0);
  checker.CheckBand("16-GPU two-server mean (paper 34.3-43.7)", s16.mean, 30.0, 55.0);
  checker.Check("median ratio exceeds 1.1x", s16.p50 > 0 && s8.p50 / s16.p50 > 1.1,
                FormatDouble(s16.p50 > 0 ? s8.p50 / s16.p50 : 0, 2) + "x");
  return FinishBench(checker);
}
