// Figure 7: host CPU and memory utilization — CPUs idle, memory busy.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Figure 7 — host resource utilization",
              "servers generally underutilize CPU cycles yet highly utilize "
              "memory (input caching, model aggregation, validation)");

  const auto& run = DefaultRun();
  const HostResourceResult result = AnalyzeHostResources(run.result.jobs);

  TextTable table({"resource", "mean", "p25", "p50", "p75", "p90"});
  const auto add = [&table](const char* name, const StreamingHistogram& hist) {
    table.AddRow({name, FormatDouble(hist.Mean(), 1),
                  FormatDouble(hist.Quantile(0.25), 1),
                  FormatDouble(hist.Quantile(0.50), 1),
                  FormatDouble(hist.Quantile(0.75), 1),
                  FormatDouble(hist.Quantile(0.90), 1)});
  };
  add("CPU (%)", result.cpu_util);
  add("Memory (%)", result.memory_util);
  std::printf("%s\n", table.Render().c_str());
  std::printf("CPU:    %s\n",
              RenderCdfProbes(result.cpu_util, {20.0, 40.0, 60.0, 80.0}, "%").c_str());
  std::printf("Memory: %s\n",
              RenderCdfProbes(result.memory_util, {20.0, 40.0, 60.0, 80.0}, "%")
                  .c_str());

  ShapeChecker checker;
  checker.Check("CPU underutilized (mean < 45%)", result.cpu_util.Mean() < 45.0,
                FormatDouble(result.cpu_util.Mean(), 1));
  checker.Check("memory highly utilized (mean > 65%)",
                result.memory_util.Mean() > 65.0,
                FormatDouble(result.memory_util.Mean(), 1));
  checker.Check("memory median far above CPU median",
                result.memory_util.Median() > result.cpu_util.Median() + 25.0);
  checker.Check("most time has CPU below 60%", result.cpu_util.CdfAt(60.0) > 0.8);
  checker.Check("most time has memory above 60%",
                result.memory_util.CdfAt(60.0) < 0.35);
  return FinishBench(checker);
}
