// Figure 8: fraction of executed epochs needed to reach the lowest training
// loss / within 0.1% of it, for passed and killed jobs (§4.1).

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Figure 8 — effectiveness of training iterations",
              "~80% of passed jobs need all epochs for the lowest loss, but ~75% "
              "come within 0.1% of it using only 40% of the epochs; improving "
              "the final 0.1% costs 62% (passed) / 56% (killed) of GPU time");

  const auto& run = DefaultRun();
  const ConvergenceResult result = AnalyzeConvergence(run.result.jobs);
  std::printf("jobs with convergence info: %lld (paper: 2502 of 96260)\n\n",
              static_cast<long long>(result.jobs_with_convergence_info));

  TextTable table({"population", "P(frac<=0.2)", "P(frac<=0.4)", "P(frac<=0.6)",
                   "P(frac<=0.98)", "mean"});
  const auto add = [&table](const char* name, const StreamingHistogram& hist) {
    table.AddRow({name, FormatPercent(hist.CdfAt(0.2), 1),
                  FormatPercent(hist.CdfAt(0.4), 1), FormatPercent(hist.CdfAt(0.6), 1),
                  FormatPercent(hist.CdfAt(0.98), 1), FormatDouble(hist.Mean(), 3)});
  };
  add("passed: lowest loss", result.passed_lowest);
  add("passed: within 0.1%", result.passed_within);
  add("killed: lowest loss", result.killed_lowest);
  add("killed: within 0.1%", result.killed_within);
  std::printf("%s\n", table.Render().c_str());
  std::printf("GPU time spent improving the last 0.1%%: passed %s (paper 62%%), "
              "killed %s (paper 56%%)\n",
              FormatPercent(result.passed_gpu_time_for_last_tenth_pct, 1).c_str(),
              FormatPercent(result.killed_gpu_time_for_last_tenth_pct, 1).c_str());

  ShapeChecker checker;
  checker.Check("enough convergence-logging jobs",
                result.jobs_with_convergence_info > 50);
  checker.CheckBand("passed jobs needing ~all epochs for the minimum (paper ~80%)",
                    1.0 - result.passed_lowest.CdfAt(0.98), 0.55, 0.95);
  checker.CheckBand("passed jobs within 0.1% by 40% of epochs (paper ~75%)",
                    result.passed_within.CdfAt(0.4), 0.45, 0.90);
  checker.Check("killed jobs show the same pattern",
                1.0 - result.killed_lowest.CdfAt(0.98) > 0.45 &&
                    result.killed_within.CdfAt(0.6) > 0.50);
  checker.CheckBand("passed GPU time for last 0.1% (paper 62%)",
                    result.passed_gpu_time_for_last_tenth_pct, 0.40, 0.80);
  checker.CheckBand("killed GPU time for last 0.1% (paper 56%)",
                    result.killed_gpu_time_for_last_tenth_pct, 0.35, 0.80);
  return FinishBench(checker);
}
