// Figure 9: average retries and unsuccessful-job rate by GPU-count bucket.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Figure 9 — retries and unsuccessful rate by job size",
              "jobs using more than 4 GPUs retry more often and finish "
              "unsuccessful at a higher rate");

  const auto& run = DefaultRun();
  const FailureAnalysisResult result = AnalyzeFailures(run.result.jobs);

  TextTable table({"bucket", "mean retries", "unsuccessful rate"});
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    table.AddRow({std::string(ToString(static_cast<SizeBucket>(b))),
                  FormatDouble(result.mean_retries_by_bucket[static_cast<size_t>(b)], 3),
                  FormatPercent(
                      result.unsuccessful_rate_by_bucket[static_cast<size_t>(b)], 1)});
  }
  table.AddRule();
  table.AddRow({"All", FormatDouble(result.mean_retries_all, 3),
                FormatPercent(result.unsuccessful_rate_all, 1)});
  std::printf("%s\n", table.Render().c_str());

  ShapeChecker checker;
  checker.Check("retries increase monotonically with bucket",
                result.mean_retries_by_bucket[0] < result.mean_retries_by_bucket[1] &&
                    result.mean_retries_by_bucket[1] <
                        result.mean_retries_by_bucket[2] &&
                    result.mean_retries_by_bucket[2] <
                        result.mean_retries_by_bucket[3]);
  checker.Check("unsuccessful rate increases with bucket",
                result.unsuccessful_rate_by_bucket[0] <
                        result.unsuccessful_rate_by_bucket[2] &&
                    result.unsuccessful_rate_by_bucket[2] <
                        result.unsuccessful_rate_by_bucket[3]);
  checker.CheckBand("overall unsuccessful rate (paper 17.2%)",
                    result.unsuccessful_rate_all, 0.10, 0.25);
  checker.CheckBand(">8-GPU unsuccessful rate (paper ~35-45%)",
                    result.unsuccessful_rate_by_bucket[3], 0.20, 0.55);
  return FinishBench(checker);
}
