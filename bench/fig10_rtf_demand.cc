// Figure 10: runtime-to-failure vs GPU demand for the four most RTF-dominant
// failure reasons. Semantic errors are the outlier: their RTF grows with
// demand, which is why their GPU-time impact (RTF x demand) nearly doubles
// relative to their RTF share.

#include "bench/bench_common.h"

#include <map>

#include "src/common/stats.h"

#include "src/common/strings.h"
#include "src/common/table.h"

namespace {

// Median RTF of scatter points with demand <= 4 vs demand > 4 (medians are
// robust to the enormous per-reason RTF tails).
struct SplitMeans {
  double small_mean = 0.0;
  double large_mean = 0.0;
  int small_n = 0;
  int large_n = 0;
};

SplitMeans Split(const std::vector<std::pair<int, double>>& points) {
  SplitMeans split;
  std::vector<double> small;
  std::vector<double> large;
  for (const auto& [demand, rtf] : points) {
    if (demand <= 4) {
      small.push_back(rtf);
    } else {
      large.push_back(rtf);
    }
  }
  split.small_n = static_cast<int>(small.size());
  split.large_n = static_cast<int>(large.size());
  split.small_mean = philly::Percentile(small, 0.5);
  split.large_mean = philly::Percentile(large, 0.5);
  return split;
}

}  // namespace

int main() {
  using namespace philly;
  PrintHeader("Figure 10 — RTF vs GPU demand for RTF-dominant failure reasons",
              "semantic errors show a markedly distinct trend: high-demand jobs "
              "fail after much longer runs, so their share of wasted GPU time "
              "rises from 9.2% (RTF) to 17.1% (RTF x demand)");

  const auto& run = DefaultRun();
  const FailureAnalysisResult result = AnalyzeFailures(run.result.jobs);

  TextTable table({"reason", "points", "median RTF d<=4 (min)",
                   "median RTF d>4 (min)", "large/small ratio"});
  std::map<FailureReason, SplitMeans> splits;
  for (const auto& [reason, points] : result.rtf_demand_scatter) {
    const SplitMeans split = Split(points);
    splits[reason] = split;
    table.AddRow({std::string(ToString(reason)),
                  std::to_string(points.size()), FormatDouble(split.small_mean, 1),
                  FormatDouble(split.large_mean, 1),
                  split.small_mean > 0
                      ? FormatDouble(split.large_mean / split.small_mean, 2)
                      : "-"});
  }
  std::printf("%s\n", table.Render().c_str());

  // A small sample of the raw scatter for the semantic-error panel.
  const auto it = result.rtf_demand_scatter.find(FailureReason::kSemanticError);
  if (it != result.rtf_demand_scatter.end()) {
    std::printf("semantic-error scatter sample (demand, RTF minutes):");
    for (size_t i = 0; i < it->second.size() && i < 12; ++i) {
      std::printf(" (%d, %.0f)", it->second[i].first, it->second[i].second);
    }
    std::printf("\n");
  }

  ShapeChecker checker;
  for (const auto reason :
       {FailureReason::kIncorrectInputs, FailureReason::kSemanticError,
        FailureReason::kModelCkptError, FailureReason::kMpiRuntimeFailure}) {
    checker.Check("scatter populated for " + std::string(ToString(reason)),
                  result.rtf_demand_scatter.count(reason) == 1 &&
                      result.rtf_demand_scatter.at(reason).size() > 10);
  }
  const auto semantic = splits[FailureReason::kSemanticError];
  checker.Check("semantic error: higher-demand jobs have larger RTFs",
                semantic.large_n > 5 && semantic.large_mean > semantic.small_mean,
                "d<=4: " + FormatDouble(semantic.small_mean, 0) + "min, d>4: " +
                    FormatDouble(semantic.large_mean, 0) + "min");
  const auto& sem_row = result.rows[static_cast<size_t>(FailureReason::kSemanticError)];
  checker.Check("semantic error RTFxDemand share above its RTF share",
                sem_row.rtf_x_demand_share > sem_row.rtf_total_share,
                FormatPercent(sem_row.rtf_total_share, 1) + " -> " +
                    FormatPercent(sem_row.rtf_x_demand_share, 1));
  return FinishBench(checker);
}
