// Fleet router policy comparison: pinned homing vs least-loaded vs spillover
// on a four-cluster fleet with imbalanced per-cluster demand.
//
// The operating point models the fleet reality ROADMAP item 2 cites from the
// Helios characterization: several coordinated clusters whose tenant demand
// is NOT proportional to their capacity. Each cluster's arrival process is
// scaled by a demand multiplier (2.6x / 0.8x / 0.4x / 0.2x of its own
// capacity-proportional rate), so fleet-wide supply and demand roughly
// balance while the hot cluster drowns and the cold one idles. Pinned homing
// exposes the imbalance as queueing delay on the hot cluster; the dynamic
// policies route around it. The load-bearing shape check (enforced again by
// the CI smoke step over the --out JSON): least-loaded must beat pinned on
// fleet-wide p95 initial queueing delay at this operating point.
//
//   --out FILE   also write the per-policy summary as JSON (CI artifact)

#include "bench/bench_common.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/fleet/fleet.h"
#include "src/fleet/router.h"

namespace {

using namespace philly;

// Four equal 128-GPU clusters; the imbalance lives in demand, not capacity,
// so every policy faces the same fleet-wide offered load.
constexpr const char* kClustersSpec = "2x8x8,2x8x8,2x8x8,2x8x8";
constexpr double kDemandMultipliers[] = {2.6, 0.8, 0.4, 0.2};
constexpr int64_t kSpillThreshold = 4;

struct PolicyOutcome {
  RouterPolicy policy = RouterPolicy::kPinnedHome;
  int64_t total_jobs = 0;
  int64_t spilled_jobs = 0;
  double p50_queue_min = 0.0;
  double p95_queue_min = 0.0;
  double hot_p95_queue_min = 0.0;  // cluster 0, the 2.6x tenant
  double allocated_gpu_hours = 0.0;
  double useful_gpu_hours = 0.0;
};

double QuantileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

std::vector<double> QueueDelaysMinutes(const std::vector<JobRecord>& jobs) {
  std::vector<double> delays;
  delays.reserve(jobs.size());
  for (const JobRecord& job : jobs) {
    delays.push_back(ToMinutes(job.InitialQueueDelay()));
  }
  return delays;
}

PolicyOutcome RunPolicy(RouterPolicy policy, int days, uint64_t seed) {
  std::vector<ClusterConfig> topologies;
  std::string error;
  if (!ParseClustersSpec(kClustersSpec, &topologies, &error)) {
    std::fprintf(stderr, "internal cluster spec rejected: %s\n", error.c_str());
    std::exit(1);
  }
  FleetConfig config;
  for (size_t i = 0; i < topologies.size(); ++i) {
    FleetClusterSpec spec;
    spec.name = "cluster" + std::to_string(i);
    spec.experiment =
        FleetClusterExperiment(topologies[i], days, seed, static_cast<int>(i));
    for (VcConfig& vc : spec.experiment.workload.vcs) {
      vc.arrival_rate_per_hour *= kDemandMultipliers[i];
    }
    config.clusters.push_back(std::move(spec));
  }
  config.router.policy = policy;
  config.router.spill_threshold = kSpillThreshold;
  const FleetResult fleet = FleetSimulation(std::move(config)).Run();

  PolicyOutcome outcome;
  outcome.policy = policy;
  outcome.total_jobs = fleet.total_jobs;
  outcome.spilled_jobs = fleet.spilled_jobs;
  std::vector<double> delays;
  for (const FleetClusterResult& cluster : fleet.clusters) {
    const std::vector<double> cluster_delays = QueueDelaysMinutes(cluster.result.jobs);
    delays.insert(delays.end(), cluster_delays.begin(), cluster_delays.end());
  }
  std::sort(delays.begin(), delays.end());
  outcome.p50_queue_min = QuantileOfSorted(delays, 0.5);
  outcome.p95_queue_min = QuantileOfSorted(delays, 0.95);
  // Under pinned homing cluster 0's jobs all run on cluster 0, so its delays
  // isolate the hot tenant; under dynamic policies the hot tenant's jobs are
  // spread, so this column shows where the relief comes from.
  std::vector<double> hot = QueueDelaysMinutes(fleet.clusters[0].result.jobs);
  std::sort(hot.begin(), hot.end());
  outcome.hot_p95_queue_min = QuantileOfSorted(hot, 0.95);
  outcome.allocated_gpu_hours = fleet.allocated_gpu_seconds / 3600.0;
  outcome.useful_gpu_hours = fleet.useful_gpu_seconds / 3600.0;
  return outcome;
}

std::string JsonNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  PrintHeader("fleet router policies on an imbalanced four-cluster fleet",
              "multi-cluster fleets route around per-cluster demand imbalance "
              "(Helios-style coordination); pinned homing pays the imbalance "
              "as hot-cluster queueing delay");

  const int days = BenchDays();
  const uint64_t seed = BenchSeed();
  const RouterPolicy kPolicies[] = {RouterPolicy::kPinnedHome,
                                    RouterPolicy::kLeastLoaded,
                                    RouterPolicy::kSpillover};
  std::vector<PolicyOutcome> outcomes;
  for (const RouterPolicy policy : kPolicies) {
    outcomes.push_back(RunPolicy(policy, days, seed));
  }

  TextTable table({"policy", "jobs", "spilled", "p50 queue min", "p95 queue min",
                   "hot-cluster p95", "allocated GPU-h", "useful GPU-h"});
  for (const PolicyOutcome& o : outcomes) {
    table.AddRow({std::string(ToString(o.policy)), std::to_string(o.total_jobs),
                  std::to_string(o.spilled_jobs), FormatDouble(o.p50_queue_min, 2),
                  FormatDouble(o.p95_queue_min, 2),
                  FormatDouble(o.hot_p95_queue_min, 2),
                  FormatDouble(o.allocated_gpu_hours, 1),
                  FormatDouble(o.useful_gpu_hours, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  const PolicyOutcome& pinned = outcomes[0];
  const PolicyOutcome& least = outcomes[1];
  const PolicyOutcome& spill = outcomes[2];

  ShapeChecker checker;
  checker.Check("every policy routes the same workload",
                least.total_jobs == pinned.total_jobs &&
                    spill.total_jobs == pinned.total_jobs,
                std::to_string(pinned.total_jobs) + " jobs");
  checker.Check("the operating point is contended under pinned homing",
                pinned.p95_queue_min > 1.0,
                FormatDouble(pinned.p95_queue_min, 2) + " min p95");
  // The tentpole claim (also asserted by CI over the JSON below).
  checker.Check("least-loaded beats pinned on fleet p95 queueing delay",
                least.p95_queue_min < pinned.p95_queue_min,
                FormatDouble(pinned.p95_queue_min, 2) + " -> " +
                    FormatDouble(least.p95_queue_min, 2) + " min");
  checker.Check("least-loaded relieves the hot cluster",
                least.hot_p95_queue_min < pinned.hot_p95_queue_min,
                FormatDouble(pinned.hot_p95_queue_min, 2) + " -> " +
                    FormatDouble(least.hot_p95_queue_min, 2) + " min");
  checker.Check("spillover overflows the hot cluster at this operating point",
                spill.spilled_jobs > 0,
                std::to_string(spill.spilled_jobs) + " spills");
  checker.Check("spillover does not queue worse than pinned",
                spill.p95_queue_min <= pinned.p95_queue_min,
                FormatDouble(pinned.p95_queue_min, 2) + " vs " +
                    FormatDouble(spill.p95_queue_min, 2) + " min");

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\n  \"days\": " << days << ",\n  \"seed\": " << seed
        << ",\n  \"clusters\": \"" << kClustersSpec
        << "\",\n  \"spill_threshold\": " << kSpillThreshold
        << ",\n  \"demand_multipliers\": [";
    for (size_t i = 0; i < 4; ++i) {
      out << (i > 0 ? ", " : "") << JsonNumber(kDemandMultipliers[i]);
    }
    out << "],\n  \"policies\": [\n";
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const PolicyOutcome& o = outcomes[i];
      out << "    {\"policy\": \"" << ToString(o.policy)
          << "\", \"total_jobs\": " << o.total_jobs
          << ", \"spilled_jobs\": " << o.spilled_jobs
          << ", \"p50_queue_min\": " << JsonNumber(o.p50_queue_min)
          << ", \"p95_queue_min\": " << JsonNumber(o.p95_queue_min)
          << ", \"hot_p95_queue_min\": " << JsonNumber(o.hot_p95_queue_min)
          << ", \"allocated_gpu_hours\": " << JsonNumber(o.allocated_gpu_hours)
          << ", \"useful_gpu_hours\": " << JsonNumber(o.useful_gpu_hours) << "}"
          << (i + 1 < outcomes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.good()) {
      std::fprintf(stderr, "error while writing %s\n", out_path.c_str());
      return 1;
    }
    std::printf("summary written to %s\n", out_path.c_str());
  }
  return FinishBench(checker);
}
