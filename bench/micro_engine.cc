// Microbenchmarks for the simulation substrate (google-benchmark): event
// queue throughput, placement search, utilization-model evaluation, failure
// classification, and end-to-end simulation rate.

#include <benchmark/benchmark.h>

#include <sstream>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/failure/failure_logs.h"
#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace_profiler.h"
#include "src/sched/placement.h"
#include "src/core/analysis.h"
#include "src/sched/simulation.h"
#include "src/trace/philly_format.h"
#include "src/sim/simulator.h"
#include "src/telemetry/util_model.h"
#include "src/workload/model_zoo.h"

namespace philly {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Rng rng(7);
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAt(static_cast<SimTime>(rng.Below(1000000)), [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.ProcessedCount());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HistogramAdd(benchmark::State& state) {
  StreamingHistogram hist(0.0, 100.0, 200);
  Rng rng(3);
  for (auto _ : state) {
    hist.Add(rng.Uniform(0, 100));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

// Brings a paper-scale cluster to ~80% occupancy with random small jobs.
Cluster LoadedPaperCluster(const LocalityPlacer& placer) {
  Cluster cluster(ClusterConfig::PaperScale());
  Rng rng(5);
  JobId next = 1;
  while (cluster.Occupancy() < 0.8) {
    const int gpus = static_cast<int>(rng.Between(1, 8));
    const auto placement = placer.FindPlacement(cluster, gpus, 3);
    if (!placement.has_value()) {
      break;
    }
    cluster.Allocate(next++, *placement);
  }
  return cluster;
}

// Pure placement search at a fixed cluster state: index-backed vs the legacy
// full-scan reference (the second range arg selects the path). The spread
// between the two is the per-query win of the free-capacity index.
void BM_PlacementSearch(benchmark::State& state) {
  PlacerConfig config;
  config.use_scan_reference = state.range(1) != 0;
  LocalityPlacer placer(config);
  const Cluster cluster = LoadedPaperCluster(placer);
  const int gpus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placer.FindPlacement(cluster, gpus, 2));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(config.use_scan_reference ? "scan" : "index");
}
BENCHMARK(BM_PlacementSearch)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1});

// Allocate/release churn through FindPlacement, the scheduler's actual hot
// loop shape: every allocation and release also pays the incremental index
// maintenance, so this measures search + upkeep together against the
// maintenance-free scan.
void BM_PlacementChurn(benchmark::State& state) {
  PlacerConfig config;
  config.use_scan_reference = state.range(0) != 0;
  LocalityPlacer placer(config);
  Cluster cluster = LoadedPaperCluster(placer);
  Rng rng(17);
  JobId next = 1000000;
  std::vector<JobId> held;
  for (auto _ : state) {
    const int gpus = static_cast<int>(rng.Between(1, 16));
    const auto placement =
        placer.FindPlacement(cluster, gpus, static_cast<int>(rng.Below(4)));
    if (placement.has_value()) {
      cluster.Allocate(next, *placement);
      held.push_back(next++);
    }
    if (held.size() > 64 || (!held.empty() && !placement.has_value())) {
      const size_t pick = rng.Below(held.size());
      cluster.Release(held[pick]);
      held[pick] = held.back();
      held.pop_back();
    }
    benchmark::DoNotOptimize(cluster.NumFreeGpus());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(config.use_scan_reference ? "scan" : "index");
}
BENCHMARK(BM_PlacementChurn)->Arg(0)->Arg(1);

void BM_UtilizationModel(benchmark::State& state) {
  UtilizationModel model;
  Cluster cluster(ClusterConfig::Small());
  JobSpec job;
  job.id = 1;
  job.num_gpus = 16;
  job.base_utilization = 0.6;
  Placement placement;
  placement.shards = {{0, 8}, {1, 8}};
  cluster.Allocate(1, placement);
  const auto activity_of = [](JobId) { return JobActivity{0.6, 1.0, 8, 1}; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ExpectedUtilization(job, placement, cluster, activity_of));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UtilizationModel);

void BM_FailureClassification(benchmark::State& state) {
  FailureLogSynthesizer synthesizer;
  FailureClassifier classifier;
  Rng rng(11);
  std::vector<std::vector<std::string>> samples;
  for (int r = 0; r < kNumFailureReasons; ++r) {
    samples.push_back(synthesizer.LinesFor(static_cast<FailureReason>(r), rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Classify(samples[i++ % samples.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailureClassification);

void BM_AnalyzeUtilization(benchmark::State& state) {
  WorkloadConfig workload = WorkloadConfig::Scaled(2, 5);
  SimulationConfig config;
  config.vcs = workload.vcs;
  ClusterSimulation sim(config, WorkloadGenerator(workload).Generate());
  const SimulationResult result = sim.Run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeUtilization(result.jobs).all.Mean());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(result.jobs.size()));
}
BENCHMARK(BM_AnalyzeUtilization)->Unit(benchmark::kMillisecond);

void BM_AnalyzeFailures(benchmark::State& state) {
  WorkloadConfig workload = WorkloadConfig::Scaled(2, 5);
  SimulationConfig config;
  config.vcs = workload.vcs;
  ClusterSimulation sim(config, WorkloadGenerator(workload).Generate());
  const SimulationResult result = sim.Run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeFailures(result.jobs).total_trials);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(result.jobs.size()));
}
BENCHMARK(BM_AnalyzeFailures)->Unit(benchmark::kMillisecond);

void BM_TraceExportImport(benchmark::State& state) {
  WorkloadConfig workload = WorkloadConfig::Scaled(1, 5);
  SimulationConfig config;
  config.vcs = workload.vcs;
  ClusterSimulation sim(config, WorkloadGenerator(workload).Generate());
  const SimulationResult result = sim.Run();
  PhillyTracesExporter exporter(config.cluster);
  for (auto _ : state) {
    std::ostringstream out;
    exporter.WriteJobLog(result.jobs, out);
    PhillyTracesImporter importer;
    benchmark::DoNotOptimize(importer.ImportJobLog(out.str()).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(result.jobs.size()));
}
BENCHMARK(BM_TraceExportImport)->Unit(benchmark::kMillisecond);

void BM_EndToEndSimulation(benchmark::State& state) {
  const int days = static_cast<int>(state.range(0));
  WorkloadConfig workload = WorkloadConfig::Scaled(days, 3);
  const auto jobs = WorkloadGenerator(workload).Generate();
  for (auto _ : state) {
    SimulationConfig config;
    config.vcs = workload.vcs;
    ClusterSimulation sim(config, jobs);
    benchmark::DoNotOptimize(sim.Run().jobs.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(jobs.size()));
  state.SetLabel(std::to_string(jobs.size()) + " jobs");
}
BENCHMARK(BM_EndToEndSimulation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Same simulation with observability sinks attached. The second argument is
// a sink mask (1 = event log, 2 = metrics, 4 = phase profiler, 8 = telemetry
// time series, 16 = causal span tracer) so each sink's cost is measurable
// against BM_EndToEndSimulation on its own. The event-driven sinks (events,
// metrics, profiler, spans) pay per simulator event and hold to a < ~5%
// budget — the span tracer measured ~2% on the 1-day run (one segment append
// per failed evaluation plus a CanPlace probe at fragmentation decisions;
// probes are memoized against Cluster::AllocVersion(), which is what keeps
// this under budget — unmemoized they measured ~12%). The
// telemetry sink is different in kind: it pays per simulated minute
// (~1.5us/sample: a pre-reserved append plus one AR(1) step per running
// job), and this workload simulates far more minutes (~45k for the drained
// 1-day run) than it processes events (~8k), so the telemetry rows sit well
// above the event-proportional budget by construction — that is the price of
// a fixed-cadence scan, not an append-path regression. Watch the per-sample
// cost, not the ratio. The sinks live outside the loop, mirroring real usage
// (metrics/profiler are long-lived and shared across a sweep's runs; the
// per-run event log and telemetry recorder are drained and cleared between
// runs), so the measurement captures steady-state append cost rather than
// first-touch page faults on a cold buffer every iteration.
void BM_EndToEndSimulationObserved(benchmark::State& state) {
  const int days = static_cast<int>(state.range(0));
  const int sinks = static_cast<int>(state.range(1));
  WorkloadConfig workload = WorkloadConfig::Scaled(days, 3);
  const auto jobs = WorkloadGenerator(workload).Generate();
  EventLog event_log;
  MetricsRegistry metrics;
  TraceProfiler profiler;
  ClusterTimeSeries timeseries;
  SpanTracer spans;
  for (auto _ : state) {
    event_log.Clear();
    timeseries.Clear();
    spans.Clear();
    SimulationConfig config;
    config.vcs = workload.vcs;
    if ((sinks & 1) != 0) config.obs.event_log = &event_log;
    if ((sinks & 2) != 0) config.obs.metrics = &metrics;
    if ((sinks & 4) != 0) config.obs.profiler = &profiler;
    if ((sinks & 8) != 0) config.obs.timeseries = &timeseries;
    if ((sinks & 16) != 0) config.obs.spans = &spans;
    ClusterSimulation sim(config, jobs);
    benchmark::DoNotOptimize(sim.Run().jobs.size());
    benchmark::DoNotOptimize(event_log.size());
    benchmark::DoNotOptimize(timeseries.samples().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(jobs.size()));
  std::string label = std::to_string(jobs.size()) + " jobs, sinks:";
  if ((sinks & 1) != 0) label += " events";
  if ((sinks & 2) != 0) label += " metrics";
  if ((sinks & 4) != 0) label += " profiler";
  if ((sinks & 8) != 0) label += " telemetry";
  if ((sinks & 16) != 0) label += " spans";
  state.SetLabel(label);
}
BENCHMARK(BM_EndToEndSimulationObserved)
    ->Args({1, 1})   // event log only
    ->Args({1, 2})   // metrics only
    ->Args({1, 4})   // phase profiler only
    ->Args({1, 8})   // telemetry time series only
    ->Args({1, 16})  // causal span tracer only
    ->Args({1, 31})  // everything at once
    ->Args({4, 31})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace philly

BENCHMARK_MAIN();
