// Paper-scale end-to-end bench for the free-capacity placement index.
//
// Runs the same experiment twice — once with the legacy full-scan placer
// (PlacerConfig::use_scan_reference) and once with the index-backed placer —
// and compares:
//   * correctness: the scheduler event streams must be byte-identical, since
//     the index is required to reproduce the scan's canonical candidate
//     orders exactly (docs/placement-index.md);
//   * performance: the TraceProfiler's scheduling_pass slice (the phase the
//     index accelerates), reported as a speedup ratio. The ratio, not the
//     absolute wall time, is what CI checks — it divides out machine speed.
//
// Output: a human-readable table plus BENCH_placement_index.json (override
// the path with --out). With `--check <baseline.json>` the bench exits 1 when
// the measured speedup falls more than 20% below the checked-in baseline's,
// or when the two runs' outputs diverge — that is the CI perf-smoke gate.
//
// Scale knobs are the usual PHILLY_BENCH_DAYS / PHILLY_BENCH_SEED.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "src/common/json.h"
#include "src/common/table.h"
#include "src/obs/event_log.h"
#include "src/obs/trace_profiler.h"

namespace philly {
namespace {

struct TimedRun {
  std::string events;       // NDJSON scheduler stream (identity run only)
  int64_t scheduling_us = 0;  // summed scheduling_pass slices
  int64_t total_us = 0;       // whole-experiment slice
  size_t jobs = 0;
};

// Timing and identity use separate runs: EventLog appends happen inside the
// scheduling pass, so logging during the timed run would dilute the measured
// speedup with identical logging cost on both sides. The timed run attaches
// only the profiler; the identity run attaches only the event log.
TimedRun RunOnce(bool use_scan, bool capture_events) {
  ExperimentConfig config = BenchConfig();
  config.simulation.scheduler.placer.use_scan_reference = use_scan;
  EventLog log;
  TraceProfiler profiler;
  if (capture_events) {
    config.simulation.obs.event_log = &log;
  } else {
    config.simulation.obs.profiler = &profiler;
  }
  const ExperimentRun run = RunExperiment(config);
  TimedRun timed;
  if (capture_events) {
    std::ostringstream events;
    log.WriteNdjson(events);
    timed.events = events.str();
  }
  timed.scheduling_us = profiler.TotalDurationOf("scheduling_pass");
  timed.total_us = profiler.TotalDurationOf("experiment");
  timed.jobs = run.result.jobs.size();
  return timed;
}

double Seconds(int64_t us) { return static_cast<double>(us) / 1e6; }

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_placement_index.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out <json>] [--check <baseline.json>]\n",
                   argv[0]);
      return 2;
    }
  }

  PrintHeader("placement index: scan vs index scheduling-pass time",
              "index-backed placement reproduces the scan byte-identically "
              "while cutting scheduling-pass time by >=1.5x");

  // Best-of-3 on each side: one 75-day run's scheduling pass is well under a
  // second of wall time, so single-shot ratios swing with machine noise;
  // taking each side's fastest run recovers the intrinsic cost.
  constexpr int kRepeats = 3;
  std::printf("timing scan reference (days=%d seed=%llu, best of %d)...\n",
              BenchDays(), static_cast<unsigned long long>(BenchSeed()),
              kRepeats);
  TimedRun scan = RunOnce(/*use_scan=*/true, /*capture_events=*/false);
  std::printf("timing index-backed placer (best of %d)...\n", kRepeats);
  TimedRun index = RunOnce(/*use_scan=*/false, /*capture_events=*/false);
  for (int i = 1; i < kRepeats; ++i) {
    const TimedRun s = RunOnce(/*use_scan=*/true, /*capture_events=*/false);
    if (s.scheduling_us < scan.scheduling_us) scan = s;
    const TimedRun x = RunOnce(/*use_scan=*/false, /*capture_events=*/false);
    if (x.scheduling_us < index.scheduling_us) index = x;
  }
  std::printf("comparing event streams...\n");
  const TimedRun scan_id = RunOnce(/*use_scan=*/true, /*capture_events=*/true);
  const TimedRun index_id =
      RunOnce(/*use_scan=*/false, /*capture_events=*/true);

  const bool identical = scan_id.events == index_id.events &&
                         !scan_id.events.empty() &&
                         scan.jobs == index.jobs;
  const double speedup = index.scheduling_us > 0
                             ? Seconds(scan.scheduling_us) / Seconds(index.scheduling_us)
                             : 0.0;

  TextTable table({"placer", "scheduling_pass (s)", "experiment (s)", "jobs"});
  table.AddRow({"scan", std::to_string(Seconds(scan.scheduling_us)),
                std::to_string(Seconds(scan.total_us)), std::to_string(scan.jobs)});
  table.AddRow({"index", std::to_string(Seconds(index.scheduling_us)),
                std::to_string(Seconds(index.total_us)),
                std::to_string(index.jobs)});
  std::printf("\n%s", table.Render().c_str());
  std::printf("speedup: %.2fx (scheduling_pass, scan/index)\n", speedup);
  std::printf("outputs byte-identical: %s (%zu event bytes)\n",
              identical ? "yes" : "NO", scan_id.events.size());

  {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"placement_index\",\n"
                  "  \"days\": %d,\n"
                  "  \"seed\": %llu,\n"
                  "  \"jobs\": %zu,\n"
                  "  \"scan_scheduling_pass_s\": %.6f,\n"
                  "  \"index_scheduling_pass_s\": %.6f,\n"
                  "  \"speedup\": %.4f,\n"
                  "  \"byte_identical\": %s\n"
                  "}\n",
                  BenchDays(), static_cast<unsigned long long>(BenchSeed()),
                  scan.jobs, Seconds(scan.scheduling_us),
                  Seconds(index.scheduling_us), speedup,
                  identical ? "true" : "false");
    out << buf;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: scan and index runs diverged\n");
    return 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    const JsonValue baseline = JsonValue::Parse(buf.str(), &error);
    if (!error.empty() || baseline["speedup"].is_null()) {
      std::fprintf(stderr, "cannot parse baseline %s: %s\n",
                   baseline_path.c_str(), error.c_str());
      return 1;
    }
    const double baseline_speedup = baseline["speedup"].AsNumber();
    // Compare ratios, not wall seconds: both runs share the machine, so the
    // ratio divides CI-runner speed out. >20% below baseline fails.
    const double floor = 0.8 * baseline_speedup;
    std::printf("baseline speedup %.2fx, floor %.2fx, measured %.2fx\n",
                baseline_speedup, floor, speedup);
    if (speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: speedup regressed >20%% vs %s (%.2fx < %.2fx)\n",
                   baseline_path.c_str(), speedup, floor);
      return 1;
    }
    std::printf("perf smoke: PASS\n");
  }
  return 0;
}

}  // namespace
}  // namespace philly

int main(int argc, char** argv) { return philly::Main(argc, argv); }
