// Reproducibility robustness: re-run the default experiment under several
// seeds and report the spread of the headline metrics. The paper's findings
// must not hinge on one lucky realization — every shape check encodes a
// claim that should hold for any seed, and this bench quantifies how much
// the underlying numbers move.

#include "bench/bench_common.h"

#include <algorithm>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/runner.h"

namespace {

using namespace philly;

struct Headline {
  double passed_share = 0.0;
  double killed_gpu_share = 0.0;
  double unsuccessful_rate = 0.0;
  double mean_util = 0.0;
  double util_16gpu = 0.0;
  double frag_time_share = 0.0;
  double week_tail = 0.0;
};

Headline Measure(const ExperimentRun& run) {
  Headline h;
  const auto status = AnalyzeStatus(run.result.jobs);
  h.passed_share = status.by_status[0].count_share;
  h.killed_gpu_share = status.by_status[1].gpu_time_share;
  const auto failures = AnalyzeFailures(run.result.jobs);
  h.unsuccessful_rate = failures.unsuccessful_rate_all;
  const auto util = AnalyzeUtilization(run.result.jobs);
  h.mean_util = util.all.Mean();
  h.util_16gpu = util.MeanForSize(3);
  const auto causes = AnalyzeDelayCauses(run.result.jobs, &run.result);
  h.frag_time_share = causes.fragmentation_time_fraction;
  h.week_tail = AnalyzeRunTimes(run.result.jobs).fraction_over_one_week;
  return h;
}

struct Spread {
  double lo = 1e300;
  double hi = -1e300;
  double sum = 0.0;
  int n = 0;
  void Add(double x) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
    ++n;
  }
  double Mean() const { return n > 0 ? sum / n : 0.0; }
};

}  // namespace

int main() {
  PrintHeader("Seed sensitivity — headline metrics across independent seeds",
              "the reproduction's findings are claims about the system, not "
              "about one random realization; metric spreads must stay within "
              "the shape-check bands");

  // All seeds run in parallel through the experiment pool (results come back
  // in seed order, byte-identical to running each seed serially; worker count
  // from PHILLY_BENCH_THREADS or hardware concurrency).
  const std::vector<uint64_t> seeds = {42, 7, 1234, 2026, 99, 31337, 271828, 777};
  const ExperimentPool pool;
  const std::vector<ExperimentRun> runs =
      pool.RunSeeds(ExperimentConfig::BenchScale(BenchDays()), seeds);

  Spread passed;
  Spread killed_gpu;
  Spread unsuccessful;
  Spread util;
  Spread util16;
  Spread frag;
  Spread week;
  TextTable table({"seed", "passed %", "killed GPU %", "unsucc %", "mean util",
                   "16-GPU util", "frag time %", ">1wk %"});
  for (size_t i = 0; i < seeds.size(); ++i) {
    const uint64_t seed = seeds[i];
    const Headline h = Measure(runs[i]);
    passed.Add(h.passed_share);
    killed_gpu.Add(h.killed_gpu_share);
    unsuccessful.Add(h.unsuccessful_rate);
    util.Add(h.mean_util);
    util16.Add(h.util_16gpu);
    frag.Add(h.frag_time_share);
    week.Add(h.week_tail);
    table.AddRow({std::to_string(seed), FormatPercent(h.passed_share, 1),
                  FormatPercent(h.killed_gpu_share, 1),
                  FormatPercent(h.unsuccessful_rate, 1), FormatDouble(h.mean_util, 1),
                  FormatDouble(h.util_16gpu, 1), FormatPercent(h.frag_time_share, 1),
                  FormatPercent(h.week_tail, 2)});
  }
  std::printf("%s\n", table.Render().c_str());

  ShapeChecker checker;
  checker.CheckBand("passed share stable", passed.hi - passed.lo, 0.0, 0.06);
  checker.CheckBand("killed GPU-time share stable", killed_gpu.hi - killed_gpu.lo,
                    0.0, 0.15);
  checker.CheckBand("unsuccessful rate stable", unsuccessful.hi - unsuccessful.lo,
                    0.0, 0.05);
  checker.CheckBand("mean utilization stable (points)", util.hi - util.lo, 0.0, 6.0);
  checker.Check("16-GPU utilization below overall mean for every seed",
                util16.hi < util.Mean() + 2.0,
                FormatDouble(util16.hi, 1) + " vs mean " + FormatDouble(util.Mean(), 1));
  // The fragmentation/fair-share *time* split is the most seed-volatile
  // statistic here: it depends on whether deadline-push episodes land on the
  // quota-tight VCs. The paper's 80% was itself a single realization; we
  // require a substantial share under every seed and majority on average.
  checker.Check("fragmentation is a substantial waiting-time share every seed",
                frag.lo > 0.25, FormatPercent(frag.lo, 1) + " minimum");
  checker.Check("fragmentation dominates waiting time on average",
                frag.Mean() > 0.5, FormatPercent(frag.Mean(), 1) + " mean");
  checker.CheckBand("week-tail fraction stable", week.hi - week.lo, 0.0, 0.01);
  return FinishBench(checker);
}
