// Table 1 (made quantitative): Philly vs the DNN cluster schedulers the paper
// compares against — Gandiva (time-sharing), Optimus (SRTF on remaining
// time), Tiresias (least attained service) — plus a strict-FIFO baseline,
// on one identical workload.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/runner.h"

namespace {

struct Metrics {
  double mean_queue_min = 0.0;
  double p90_queue_min = 0.0;
  double mean_jct_hours = 0.0;
  double short_jct_hours = 0.0;  // jobs planned under 1 hour
  long long preemptions = 0;
  long long checkpoint_suspends = 0;
};

Metrics Evaluate(const philly::SimulationResult& result) {
  using namespace philly;
  Metrics m;
  double queue_sum = 0.0;
  std::vector<double> queues;
  double jct_sum = 0.0;
  int64_t jct_n = 0;
  double short_sum = 0.0;
  int64_t short_n = 0;
  for (const auto& job : result.jobs) {
    const double delay = ToMinutes(job.InitialQueueDelay());
    queue_sum += delay;
    queues.push_back(delay);
    if (job.status == JobStatus::kPassed) {
      const double jct = ToHours(job.finish_time - job.spec.submit_time);
      jct_sum += jct;
      ++jct_n;
      if (job.spec.planned_duration <= Hours(1)) {
        short_sum += jct;
        ++short_n;
      }
    }
  }
  m.mean_queue_min = queue_sum / static_cast<double>(result.jobs.size());
  m.p90_queue_min = Percentile(queues, 0.9);
  m.mean_jct_hours = jct_n > 0 ? jct_sum / static_cast<double>(jct_n) : 0.0;
  m.short_jct_hours = short_n > 0 ? short_sum / static_cast<double>(short_n) : 0.0;
  m.preemptions = result.preemptions;
  m.checkpoint_suspends = result.priority_preemptions;
  return m;
}

}  // namespace

int main() {
  using namespace philly;
  PrintHeader("Table 1 — DNN cluster scheduler comparison",
              "Philly consolidates with locality; Gandiva time-shares; Optimus "
              "and Tiresias target average JCT (SRTF / attained service). The "
              "JCT-oriented policies should finish short jobs faster.");

  const std::vector<SchedulerConfig> schedulers = {
      SchedulerConfig::Philly(), SchedulerConfig::Fifo(), SchedulerConfig::Optimus(),
      SchedulerConfig::Tiresias(), SchedulerConfig::Gandiva()};

  // One identical workload per scheduler, all simulated in parallel.
  std::vector<ExperimentConfig> configs;
  for (const auto& sched : schedulers) {
    ExperimentConfig config = BenchConfig();
    config.simulation.scheduler = sched;
    configs.push_back(std::move(config));
  }
  const ExperimentPool pool;
  const std::vector<ExperimentRun> runs = pool.RunMany(std::move(configs));

  TextTable table({"scheduler", "mean queue (min)", "p90 queue (min)",
                   "mean JCT (h)", "short-job JCT (h)", "preempt", "ckpt-suspend"});
  Metrics philly_m;
  Metrics optimus_m;
  Metrics tiresias_m;
  for (size_t i = 0; i < schedulers.size(); ++i) {
    const auto& sched = schedulers[i];
    const Metrics m = Evaluate(runs[i].result);
    if (sched.name == "philly") {
      philly_m = m;
    } else if (sched.name == "optimus-srtf") {
      optimus_m = m;
    } else if (sched.name == "tiresias-las") {
      tiresias_m = m;
    }
    table.AddRow({sched.name, FormatDouble(m.mean_queue_min, 3),
                  FormatDouble(m.p90_queue_min, 3), FormatDouble(m.mean_jct_hours, 2),
                  FormatDouble(m.short_jct_hours, 3), std::to_string(m.preemptions),
                  std::to_string(m.checkpoint_suspends)});
  }
  std::printf("%s\n", table.Render().c_str());

  ShapeChecker checker;
  checker.Check("SRTF favours short jobs at least as much as Philly",
                optimus_m.short_jct_hours <= philly_m.short_jct_hours + 0.02,
                "short-job JCT: srtf=" + FormatDouble(optimus_m.short_jct_hours, 3) +
                    "h philly=" + FormatDouble(philly_m.short_jct_hours, 3) + "h");
  checker.Check("LAS favours short jobs at least as much as Philly",
                tiresias_m.short_jct_hours <= philly_m.short_jct_hours + 0.02);
  checker.Check("all schedulers complete the workload",
                philly_m.mean_jct_hours > 0 && optimus_m.mean_jct_hours > 0 &&
                    tiresias_m.mean_jct_hours > 0);
  return FinishBench(checker);
}
