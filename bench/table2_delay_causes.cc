// Table 2: frequencies of fair-share vs fragmentation queueing delay, plus
// the §3.1.1 out-of-order-scheduling and fragmentation statistics.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Table 2 — fair-share vs fragmentation delay",
              "fragmentation: 59.4% (2-4 GPU) / 74.2% (5-8) / 97.9% (>8) of delay "
              "occurrences; ~80% of waiting time; out-of-order = 38.1% of "
              "decisions, ~85% benign; <4.5% empty servers at 2/3 occupancy");

  const auto& run = DefaultRun();
  const DelayCauseResult result = AnalyzeDelayCauses(run.result.jobs, &run.result);

  constexpr double kPaperFragShare[] = {0.0, 0.594, 0.742, 0.979};
  TextTable table({"bucket", "fair-share", "fragmentation", "frag share",
                   "paper frag share"});
  for (int b = 1; b < kNumSizeBuckets; ++b) {
    const auto& row = result.by_bucket[static_cast<size_t>(b)];
    table.AddRow({std::string(ToString(static_cast<SizeBucket>(b))),
                  std::to_string(row.fair_share), std::to_string(row.fragmentation),
                  FormatPercent(1.0 - row.FairShareFraction(), 1),
                  FormatPercent(kPaperFragShare[b], 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("waiting-time split: fragmentation %s (paper ~80%%), fair-share %s\n",
              FormatPercent(result.fragmentation_time_fraction, 1).c_str(),
              FormatPercent(result.fair_share_time_fraction, 1).c_str());
  std::printf("out-of-order: %s of scheduling decisions (paper 38.1%%); benign %s "
              "(paper ~85%%)\n",
              FormatPercent(result.out_of_order_fraction, 1).c_str(),
              FormatPercent(result.out_of_order_benign_fraction, 1).c_str());
  std::printf("out-of-order among delayed jobs by bucket:");
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    std::printf(" %s=%s", std::string(ToString(static_cast<SizeBucket>(b))).c_str(),
                FormatPercent(result.out_of_order_by_bucket[static_cast<size_t>(b)], 0)
                    .c_str());
  }
  std::printf("\nempty servers at ~2/3 occupancy: %s (paper <4.5%%); mean racks "
              "with empty servers: %.1f (spread across domains)\n",
              FormatPercent(result.empty_server_fraction_at_two_thirds, 1).c_str(),
              result.mean_racks_with_empty_servers);

  ShapeChecker checker;
  for (int b = 1; b < kNumSizeBuckets; ++b) {
    checker.Check("fragmentation dominates " +
                      std::string(ToString(static_cast<SizeBucket>(b))) + " delays",
                  result.by_bucket[static_cast<size_t>(b)].FairShareFraction() < 0.5);
  }
  checker.Check("fragmentation strongly dominates >8-GPU delays (paper 97.9%)",
                result.by_bucket[3].FairShareFraction() < 0.3,
                FormatPercent(1.0 - result.by_bucket[3].FairShareFraction(), 1));
  checker.Check("fragmentation dominates waiting time",
                result.fragmentation_time_fraction > 0.5,
                FormatPercent(result.fragmentation_time_fraction, 1));
  checker.Check("out-of-order scheduling occurs",
                result.out_of_order_fraction > 0.01,
                FormatPercent(result.out_of_order_fraction, 1));
  checker.Check("out-of-order decisions mostly benign",
                result.out_of_order_benign_fraction > 0.5,
                FormatPercent(result.out_of_order_benign_fraction, 1));
  checker.Check("delayed big jobs frequently see someone overtake them",
                result.out_of_order_by_bucket[3] > 0.3,
                FormatPercent(result.out_of_order_by_bucket[3], 1));
  // Our placer preserves whole empty servers more aggressively than Philly
  // did (higher 1-GPU churn there); see EXPERIMENTS.md.
  checker.CheckBand("empty-server fraction at 2/3 occupancy",
                    result.empty_server_fraction_at_two_thirds, 0.0, 0.45);
  return FinishBench(checker);
}
