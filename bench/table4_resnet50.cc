// Table 4: the controlled ResNet-50 locality/colocation experiment. Replays
// the four placement scenarios through the utilization model and compares
// against the paper's measurements (these are the model's calibration
// points, reproduced end-to-end through the public API on a real Cluster).

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/telemetry/controlled.h"
#include "src/workload/model_zoo.h"

namespace {

using namespace philly;

// The experiment testbed: two servers with 4 P100s each (one socket).
ClusterConfig TestbedConfig() {
  ClusterConfig config;
  config.skus.push_back({1, 2, 4});
  return config;
}

JobSpec ResNetJob(JobId id, int gpus, int batch = 32) {
  JobSpec job;
  job.id = id;
  job.num_gpus = gpus;
  job.model = ModelFamily::kResNet;
  job.batch_size = batch;
  job.base_utilization = ProfileOf(ModelFamily::kResNet).base_util_mean *
                         BatchUtilizationScale(batch, 32);
  return job;
}

struct Scenario {
  const char* name;
  double paper_util;
  double paper_images;
};

double Measure(const char* scenario, double* images_out) {
  ControlledExperiment experiment(TestbedConfig());
  const std::string name = scenario;

  Placement study_placement;
  if (name == "SameServer") {
    study_placement.shards = {{0, 2}};
  } else {
    study_placement.shards = {{0, 1}, {1, 1}};
  }
  bool ok = experiment.Place(ResNetJob(1, 2), study_placement, /*study=*/true);

  if (name == "IntraServer") {
    // One SameServer 2-GPU background job per server.
    Placement bg0;
    bg0.shards = {{0, 2}};
    Placement bg1;
    bg1.shards = {{1, 2}};
    ok = ok && experiment.Place(ResNetJob(2, 2), bg0) &&
         experiment.Place(ResNetJob(3, 2), bg1);
  } else if (name == "InterServer") {
    // Two DiffServer 2-GPU background jobs spanning both servers.
    Placement bg0;
    bg0.shards = {{0, 1}, {1, 1}};
    Placement bg1;
    bg1.shards = {{0, 1}, {1, 1}};
    ok = ok && experiment.Place(ResNetJob(2, 2), bg0) &&
         experiment.Place(ResNetJob(3, 2), bg1);
  }
  if (!ok) {
    std::fprintf(stderr, "allocation failed in scenario %s\n", scenario);
    std::exit(1);
  }
  *images_out = experiment.StudyImagesPerSecond();
  return experiment.StudyUtilization();
}

}  // namespace

int main() {
  PrintHeader("Table 4 — ResNet-50 locality/colocation microbenchmark",
              "GPU util 57.7 / 49.6 / 37.5 / 36.5 and 114.8 / 98.0 / 75.6 / 74.1 "
              "images/s for SameServer / DiffServer / IntraServer / InterServer; "
              "batch 64 raises SameServer to 71.1%");

  const Scenario scenarios[] = {{"SameServer", 57.7, 114.8},
                                {"DiffServer", 49.6, 98.0},
                                {"IntraServer", 37.5, 75.6},
                                {"InterServer", 36.5, 74.1}};

  TextTable table({"scenario", "util (%)", "paper util", "images/s", "paper img/s"});
  ShapeChecker checker;
  double previous = 101.0;
  for (const auto& scenario : scenarios) {
    double images = 0.0;
    const double util = Measure(scenario.name, &images) * 100.0;
    table.AddRow({scenario.name, FormatDouble(util, 1),
                  FormatDouble(scenario.paper_util, 1), FormatDouble(images, 1),
                  FormatDouble(scenario.paper_images, 1)});
    checker.CheckWithin(std::string(scenario.name) + " utilization", util,
                        scenario.paper_util, 0.03);
    checker.CheckWithin(std::string(scenario.name) + " images/s", images,
                        scenario.paper_images, 0.04);
    checker.Check(std::string(scenario.name) + " ordering", util <= previous + 1e-9);
    previous = util;
  }
  std::printf("%s\n", table.Render().c_str());

  const double batch64 = ProfileOf(ModelFamily::kResNet).base_util_mean *
                         BatchUtilizationScale(64, 32) * 100.0;
  std::printf("SameServer at batch 64: %.1f%% (paper: 71.1%%)\n", batch64);
  checker.CheckWithin("batch-64 utilization", batch64, 71.1, 0.03);
  return FinishBench(checker);
}
