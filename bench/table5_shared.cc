// Table 5: GPU utilization of 16-GPU jobs spread over 2 / 4 / 8 (shared)
// servers — distribution plus co-tenant interference.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Table 5 — 16-GPU jobs over 2 / 4 / 8 servers",
              "mean 43.66 / 40.94 / 28.56, p50 43.69 / 39.85 / 25.71: spreading "
              "over more shared servers steadily lowers utilization");

  const auto& run = DefaultRun();
  const UtilizationResult result = AnalyzeUtilization(run.result.jobs);

  struct PaperRow {
    int servers;
    double mean, p50, p90, p95;
  };
  constexpr PaperRow kPaper[] = {{2, 43.66, 43.69, 91.77, 97.06},
                                 {4, 40.94, 39.85, 83.28, 91.97},
                                 {8, 28.56, 25.71, 65.68, 78.85}};

  // Pool the observed spreads into the paper's three regimes (exact 4- or
  // 8-server placements may be rare depending on fragmentation patterns).
  const char* kGroupNames[3] = {"2 (dedicated)", "3-5", ">=6"};
  std::array<StreamingHistogram, 3> groups = {
      StreamingHistogram(0, 100, 200), StreamingHistogram(0, 100, 200),
      StreamingHistogram(0, 100, 200)};
  for (const auto& [servers, hist] : result.sixteen_by_servers) {
    const int group = servers <= 2 ? 0 : (servers <= 5 ? 1 : 2);
    groups[static_cast<size_t>(group)].Merge(hist);
  }

  TextTable table({"servers", "gpu-min", "mean", "p50", "p90", "p95", "paper mean"});
  ShapeChecker checker;
  std::array<double, 3> means = {0, 0, 0};
  int found = 0;
  for (int i = 0; i < 3; ++i) {
    if (groups[static_cast<size_t>(i)].Count() < 50) {
      table.AddRow({kGroupNames[i], "insufficient data", "-", "-", "-", "-",
                    FormatDouble(kPaper[i].mean, 2)});
      continue;
    }
    ++found;
    const Summary s = Summarize(groups[static_cast<size_t>(i)]);
    means[static_cast<size_t>(i)] = s.mean;
    table.AddRow({kGroupNames[i], FormatDouble(s.count, 0), FormatDouble(s.mean, 2),
                  FormatDouble(s.p50, 2), FormatDouble(s.p90, 2),
                  FormatDouble(s.p95, 2), FormatDouble(kPaper[i].mean, 2)});
    if (i > 0 && means[0] > 0) {
      // Dedicated two-server placement should beat every shared spread; the
      // relative ordering of the shared spreads themselves is noisy at bench
      // scale (population composition varies with load phase).
      checker.Check(std::string("mean at ") + kGroupNames[i] +
                        " servers below the dedicated 2-server mean",
                    s.mean < means[0],
                    FormatDouble(s.mean, 1) + " < " + FormatDouble(means[0], 1));
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // Other observed spreads, for context.
  std::printf("all observed spreads:");
  for (const auto& [servers, hist] : result.sixteen_by_servers) {
    std::printf(" %d:%.0f%%(n=%.0f)", servers, hist.Mean(), hist.Count());
  }
  std::printf("\n");

  checker.Check("at least the 2- and 4-server populations observed", found >= 2);
  if (found == 3) {
    checker.CheckBand("degradation 2->8 servers (paper: -15.1 points)",
                      means[0] - means[2], 4.0, 30.0);
  }
  return FinishBench(checker);
}
