// Table 6: distribution of jobs by final status and their GPU-time shares.

#include "bench/bench_common.h"

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Table 6 — job final status vs GPU time consumed",
              "Passed 69.3% of jobs / 44.5% of GPU time; Killed 13.5% / 37.7%; "
              "Unsuccessful 17.2% / 17.8% — ~55% of GPU time goes to jobs that "
              "do not complete successfully");

  const auto& run = DefaultRun();
  const StatusResult result = AnalyzeStatus(run.result.jobs);

  struct PaperRow {
    double count_share, gpu_share;
  };
  constexpr PaperRow kPaper[] = {{0.693, 0.4453}, {0.135, 0.3769}, {0.172, 0.1776}};

  TextTable table({"status", "count", "count share", "paper", "GPU-time share",
                   "paper"});
  for (int s = 0; s < 3; ++s) {
    const auto& row = result.by_status[static_cast<size_t>(s)];
    table.AddRow({std::string(ToString(static_cast<JobStatus>(s))),
                  std::to_string(row.count), FormatPercent(row.count_share, 1),
                  FormatPercent(kPaper[s].count_share, 1),
                  FormatPercent(row.gpu_time_share, 1),
                  FormatPercent(kPaper[s].gpu_share, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  const double unproductive =
      result.by_status[1].gpu_time_share + result.by_status[2].gpu_time_share;
  std::printf("GPU time consumed by killed+unsuccessful jobs: %s (paper ~55%%)\n",
              FormatPercent(unproductive, 1).c_str());

  ShapeChecker checker;
  checker.CheckBand("passed count share (paper 69.3%)",
                    result.by_status[0].count_share, 0.60, 0.80);
  checker.CheckBand("killed count share (paper 13.5%)",
                    result.by_status[1].count_share, 0.06, 0.20);
  checker.CheckBand("unsuccessful count share (paper 17.2%)",
                    result.by_status[2].count_share, 0.10, 0.25);
  checker.Check("killed jobs consume GPU time out of proportion",
                result.by_status[1].gpu_time_share >
                    1.5 * result.by_status[1].count_share);
  checker.CheckBand("GPU time lost to non-passed jobs (paper ~55%)", unproductive,
                    0.30, 0.65);
  checker.Check("passed GPU-time share well below passed count share",
                result.by_status[0].gpu_time_share <
                    result.by_status[0].count_share - 0.05);
  return FinishBench(checker);
}
