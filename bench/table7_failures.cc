// Table 7: the full failure taxonomy, reproduced by classifying raw log tails
// and aggregating trials/jobs/users, RTF percentiles, demand mix, and
// RTF x demand shares.

#include "bench/bench_common.h"

#include <algorithm>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"

int main() {
  using namespace philly;
  PrintHeader("Table 7 — failure classification",
              "user errors dominate occurrences (CPU OOM, incorrect inputs, "
              "semantic errors on top); infrastructure failures (model ckpt, MPI "
              "runtime) are rare but dominate total RTF; repetition 2.3/job and "
              "38.8/user over the top-8 reasons; no-signature 4.2%");

  const auto& run = DefaultRun();
  const FailureAnalysisResult result = AnalyzeFailures(run.result.jobs);

  std::vector<const FailureAnalysisResult::ReasonRow*> rows;
  for (const auto& row : result.rows) {
    rows.push_back(&row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) { return a->trials > b->trials; });

  TextTable table({"reason", "IF", "AE", "U", "trials", "jobs", "users", "p50",
                   "p90", "p95", "RTF%", "d=1", "d=2-4", "d>4", "RTFxD%"});
  for (const auto* row : rows) {
    if (row->trials == 0) {
      continue;
    }
    const auto& info = InfoOf(row->reason);
    table.AddRow({std::string(info.name), info.infrastructure ? "x" : "",
                  info.ai_engine ? "x" : "", info.user ? "x" : "",
                  std::to_string(row->trials), std::to_string(row->jobs),
                  std::to_string(row->users), FormatDouble(row->rtf_p50_min, 2),
                  FormatDouble(row->rtf_p90_min, 1), FormatDouble(row->rtf_p95_min, 1),
                  FormatPercent(row->rtf_total_share, 1),
                  std::to_string(row->demand[0]), std::to_string(row->demand[1]),
                  std::to_string(row->demand[2]),
                  FormatPercent(row->rtf_x_demand_share, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("total trials: %lld; no-signature %s (paper 4.2%%)\n",
              static_cast<long long>(result.total_trials),
              FormatPercent(result.no_signature_fraction, 1).c_str());
  std::printf("top-8 repetition factors: %.2f per job (paper 2.3), %.1f per user "
              "(paper 38.8)\n",
              result.top8_job_repetition, result.top8_user_repetition);

  const auto& row_of = [&result](FailureReason reason) -> const auto& {
    return result.rows[static_cast<size_t>(reason)];
  };
  ShapeChecker checker;
  checker.Check("CPU OOM among the two most frequent reasons",
                rows[0]->reason == FailureReason::kCpuOutOfMemory ||
                    rows[1]->reason == FailureReason::kCpuOutOfMemory);
  checker.Check("incorrect inputs among the top three reasons",
                rows[0]->reason == FailureReason::kIncorrectInputs ||
                    rows[1]->reason == FailureReason::kIncorrectInputs ||
                    rows[2]->reason == FailureReason::kIncorrectInputs);
  checker.Check(
      "user-category reasons dominate trial counts",
      [&] {
        int64_t user_trials = 0;
        for (const auto& row : result.rows) {
          if (InfoOf(row.reason).user) {
            user_trials += row.trials;
          }
        }
        return user_trials > result.total_trials / 3;
      }());
  checker.Check("infra failures fail late: ckpt p50 >> syntax p50",
                row_of(FailureReason::kModelCkptError).rtf_p50_min >
                    20.0 * (row_of(FailureReason::kSyntaxError).rtf_p50_min + 0.1));
  checker.Check("ckpt + MPI runtime dominate RTF share (paper 36%)",
                row_of(FailureReason::kModelCkptError).rtf_total_share +
                        row_of(FailureReason::kMpiRuntimeFailure).rtf_total_share >
                    0.20);
  checker.Check("semantic error RTFxDemand share exceeds its RTF share (paper "
                "9.2% -> 17.1%)",
                row_of(FailureReason::kSemanticError).rtf_x_demand_share >
                    row_of(FailureReason::kSemanticError).rtf_total_share);
  checker.CheckBand("no-signature fraction (paper 4.2%)",
                    result.no_signature_fraction, 0.01, 0.09);
  checker.CheckBand("job repetition factor (paper 2.3)", result.top8_job_repetition,
                    1.3, 4.0);
  checker.Check("user repetition far above job repetition (paper 38.8 vs 2.3)",
                result.top8_user_repetition > 2.0 * result.top8_job_repetition);
  // Every scheduler preemption must surface in the classified taxonomy
  // (preemption is rare by design — 317 events across 75 days — so short
  // windows may legitimately have none).
  checker.Check("classified preemptions match the scheduler's count",
                row_of(FailureReason::kJobPreempted).trials ==
                    run.result.preemptions,
                std::to_string(row_of(FailureReason::kJobPreempted).trials) +
                    " classified vs " + std::to_string(run.result.preemptions) +
                    " preemptions");
  return FinishBench(checker);
}
