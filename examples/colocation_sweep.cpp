// Extension study built on the ControlledExperiment API: how a 2-GPU
// ResNet-50 job's utilization degrades as co-tenants accumulate, beyond the
// four configurations Table 4 measures. This is the kind of what-if the
// paper's §3.2.1 methodology enables once the model is calibrated.
//
//   ./build/examples/colocation_sweep

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/runner.h"
#include "src/telemetry/controlled.h"
#include "src/workload/model_zoo.h"

int main() {
  using namespace philly;

  // Testbed: two 8-GPU servers (the production SKU, unlike Table 4's 4-GPU
  // experiment boxes), study job distributed across both.
  ClusterConfig testbed;
  testbed.skus.push_back({1, 2, 8});

  const auto resnet = [](JobId id, int gpus) {
    JobSpec job;
    job.id = id;
    job.num_gpus = gpus;
    job.model = ModelFamily::kResNet;
    job.base_utilization = ProfileOf(ModelFamily::kResNet).base_util_mean;
    return job;
  };

  std::printf("2-GPU ResNet-50 split across two 8-GPU servers; adding 2-GPU\n"
              "single-server co-tenants alternately to each server:\n\n");

  // Each co-tenant count builds its own ControlledExperiment, so the sweep
  // points are independent and run concurrently through the experiment pool;
  // rows are collected by index and printed in order.
  struct Row {
    bool ok = false;
    std::string error;
    int free_gpus = 0;
    double util = 0.0;
    double images_per_second = 0.0;
  };
  constexpr int kMaxCotenants = 6;
  std::vector<Row> rows(kMaxCotenants + 1);
  const ExperimentPool pool;
  pool.ParallelFor(kMaxCotenants + 1, [&](int cotenants) {
    Row& row = rows[cotenants];
    ControlledExperiment experiment(testbed);
    Placement study;
    study.shards = {{0, 1}, {1, 1}};
    if (!experiment.Place(resnet(1, 2), study, /*study=*/true)) {
      row.error = "study placement failed";
      return;
    }
    for (int i = 0; i < cotenants; ++i) {
      Placement bg;
      bg.shards = {{static_cast<ServerId>(i % 2), 2}};
      if (!experiment.Place(resnet(100 + i, 2), bg)) {
        row.error = "co-tenant placement failed at " + std::to_string(cotenants);
        return;
      }
    }
    row.free_gpus = experiment.cluster().NumFreeGpus();
    row.util = experiment.StudyUtilization() * 100.0;
    row.images_per_second = experiment.StudyImagesPerSecond();
    row.ok = true;
  });

  TextTable table({"co-tenant jobs", "free GPUs", "study util (%)", "images/s",
                   "vs alone"});
  const double baseline = rows[0].ok ? rows[0].util : 0.0;
  for (int cotenants = 0; cotenants <= kMaxCotenants; ++cotenants) {
    const Row& row = rows[cotenants];
    if (!row.ok) {
      std::fprintf(stderr, "%s\n", row.error.c_str());
      return 1;
    }
    table.AddRow({std::to_string(cotenants), std::to_string(row.free_gpus),
                  FormatDouble(row.util, 1), FormatDouble(row.images_per_second, 1),
                  FormatPercent(row.util / baseline, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Each 2-GPU co-tenant costs the study job ~6 utilization points —\n"
              "the per-neighbor PCIe contention Table 4's IntraServer scenario\n"
              "measures, accumulating roughly linearly until the model's\n"
              "contention cap binds on even busier servers.\n");
  return 0;
}
