// Failure triage demo: feed raw job stdout/stderr tails through the signature
// classifier (the §4.2.1 pipeline), print the resulting taxonomy, and show
// what the §5 adaptive retry policy would have saved.
//
//   ./build/examples/failure_triage [days] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/analysis.h"
#include "src/core/experiment.h"

int main(int argc, char** argv) {
  using namespace philly;

  const int days = argc > 1 ? std::atoi(argv[1]) : 5;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  ExperimentConfig config = ExperimentConfig::BenchScale(days, seed);
  const ExperimentRun run = RunExperiment(config);

  // Show a couple of raw log tails and their classification.
  FailureClassifier classifier;
  std::printf("sample classifications from raw log text:\n");
  int shown = 0;
  for (const auto& job : run.result.jobs) {
    for (const auto& attempt : job.attempts) {
      if (!attempt.failed || shown >= 3) {
        continue;
      }
      ++shown;
      std::printf("--- job %lld attempt %d ---\n",
                  static_cast<long long>(job.spec.id), attempt.index);
      for (const auto& line : attempt.log_tail) {
        std::printf("  | %s\n", line.c_str());
      }
      std::printf("  => classified: %s\n",
                  std::string(ToString(classifier.Classify(attempt.log_tail))).c_str());
    }
  }

  const auto failures = AnalyzeFailures(run.result.jobs);
  std::printf("\nfailure taxonomy over %lld trials (%zu signature rules, "
              "no-signature %.1f%%):\n\n",
              static_cast<long long>(failures.total_trials), classifier.NumRules(),
              100.0 * failures.no_signature_fraction);

  TextTable table({"reason", "trials", "jobs", "users", "RTF p50 (min)",
                   "RTF p90 (min)", "RTF share"});
  std::vector<const FailureAnalysisResult::ReasonRow*> rows;
  for (const auto& row : failures.rows) {
    if (row.trials > 0) {
      rows.push_back(&row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) { return a->trials > b->trials; });
  for (const auto* row : rows) {
    table.AddRow({std::string(ToString(row->reason)), std::to_string(row->trials),
                  std::to_string(row->jobs), std::to_string(row->users),
                  FormatDouble(row->rtf_p50_min, 2), FormatDouble(row->rtf_p90_min, 2),
                  FormatPercent(row->rtf_total_share, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Quantify the adaptive-retry design implication.
  ExperimentConfig adaptive = config;
  adaptive.simulation.scheduler.adaptive_retry = true;
  const ExperimentRun adaptive_run = RunExperiment(adaptive);
  const auto wasted = [](const SimulationResult& result) {
    double gpu_seconds = 0.0;
    for (const auto& job : result.jobs) {
      for (const auto& attempt : job.attempts) {
        if (attempt.failed) {
          gpu_seconds += attempt.GpuTime();
        }
      }
    }
    return gpu_seconds / 3600.0;
  };
  const double fixed_waste = wasted(run.result);
  const double adaptive_waste = wasted(adaptive_run.result);
  std::printf("GPU-hours consumed by failing attempts:\n");
  std::printf("  fixed retry policy    %10.0f GPU-h\n", fixed_waste);
  std::printf("  adaptive retry policy %10.0f GPU-h  (%.1f%% saved by stopping "
              "deterministic user errors early)\n",
              adaptive_waste, 100.0 * (1.0 - adaptive_waste / fixed_waste));
  return 0;
}
