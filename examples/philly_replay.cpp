// Full pipeline replay: generate a Philly-like trace, run it through the
// scheduler, write the philly-traces-style CSV artifact, read it back, and
// run every analysis on the round-tripped logs — exactly the three-log join
// the paper performs.
//
//   ./build/examples/philly_replay [days] [output_dir]
//
// Use days=75 for the paper-scale run (~96k jobs; takes a few minutes).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace philly;

  const int days = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string out_dir = argc > 2 ? argv[2] : "out/philly_trace";

  ExperimentConfig config = ExperimentConfig::BenchScale(days, 42);
  std::printf("generating and replaying %d days of arrivals...\n", days);
  const ExperimentRun run = RunExperiment(config);
  std::printf("  %lld jobs, %lld scheduling decisions, %lld preemptions\n",
              static_cast<long long>(run.num_jobs),
              static_cast<long long>(run.result.scheduling_decisions),
              static_cast<long long>(run.result.preemptions));

  std::filesystem::create_directories(out_dir);
  if (!TraceWriter::WriteDirectory(run.result.jobs, out_dir)) {
    std::fprintf(stderr, "cannot write trace to %s\n", out_dir.c_str());
    return 1;
  }
  std::printf("trace written to %s/ (jobs.csv, attempts.csv, gpu_util.csv, "
              "stdout.log)\n",
              out_dir.c_str());

  // Read the artifact back and analyze the round-tripped records — the
  // analysis sees only what the trace files contain.
  std::ifstream jobs_csv(out_dir + "/jobs.csv");
  std::ifstream attempts_csv(out_dir + "/attempts.csv");
  std::ifstream util_csv(out_dir + "/gpu_util.csv");
  std::ifstream stdout_log(out_dir + "/stdout.log");
  const auto restored = TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv,
                                              stdout_log);
  std::printf("re-read %zu jobs from the trace artifact\n\n", restored.size());

  const auto runtimes = AnalyzeRunTimes(restored);
  std::printf("run times (Fig 2): medians by size = ");
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    std::printf("%.0f min  ", runtimes.cdf_minutes[static_cast<size_t>(b)].Median());
  }
  std::printf("| %.2f%% of jobs ran over a week\n",
              100.0 * runtimes.fraction_over_one_week);

  const auto status = AnalyzeStatus(restored);
  std::printf("status (Table 6): passed %.1f%% of jobs / %.1f%% of GPU time\n",
              100.0 * status.by_status[0].count_share,
              100.0 * status.by_status[0].gpu_time_share);

  // Export plottable CDF series for the figure panels.
  const std::string fig_dir = out_dir + "/figures";
  std::filesystem::create_directories(fig_dir);
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    WriteCdfCsv(runtimes.cdf_minutes[static_cast<size_t>(b)],
                fig_dir + "/fig2_runtime_bucket" + std::to_string(b) + ".csv");
  }
  const auto delays = AnalyzeQueueDelays(restored);
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    WriteCdfCsv(delays.overall[static_cast<size_t>(b)],
                fig_dir + "/fig3_delay_bucket" + std::to_string(b) + ".csv");
  }
  const auto util = AnalyzeUtilization(restored);
  for (int i = 0; i < UtilizationResult::kNumRepresentative; ++i) {
    WriteCdfCsv(util.by_size[static_cast<size_t>(i)],
                fig_dir + "/fig5_util_" + std::to_string(kRepresentativeSizes[i]) +
                    "gpu.csv");
  }
  WriteCdfCsv(util.dedicated_8gpu, fig_dir + "/fig6_8gpu_dedicated.csv");
  WriteCdfCsv(util.dedicated_16gpu, fig_dir + "/fig6_16gpu_dedicated.csv");
  const auto host = AnalyzeHostResources(restored);
  WriteCdfCsv(host.cpu_util, fig_dir + "/fig7_cpu.csv");
  WriteCdfCsv(host.memory_util, fig_dir + "/fig7_memory.csv");
  const auto convergence = AnalyzeConvergence(restored);
  WriteCdfCsv(convergence.passed_lowest, fig_dir + "/fig8_passed_lowest.csv");
  WriteCdfCsv(convergence.passed_within, fig_dir + "/fig8_passed_within.csv");
  WriteCdfCsv(convergence.killed_lowest, fig_dir + "/fig8_killed_lowest.csv");
  WriteCdfCsv(convergence.killed_within, fig_dir + "/fig8_killed_within.csv");
  std::printf("figure CDF series exported to %s/\n", fig_dir.c_str());

  const auto failures = AnalyzeFailures(restored);
  std::printf("failures (Table 7): %lld trials classified from raw stdout logs; "
              "no-signature %.1f%%\n",
              static_cast<long long>(failures.total_trials),
              100.0 * failures.no_signature_fraction);
  std::printf("  top reasons:");
  struct Named {
    long long trials;
    std::string_view name;
  };
  std::vector<Named> top;
  for (const auto& row : failures.rows) {
    top.push_back({row.trials, ToString(row.reason)});
  }
  std::sort(top.begin(), top.end(),
            [](const Named& a, const Named& b) { return a.trials > b.trials; });
  for (int i = 0; i < 5; ++i) {
    std::printf("  %s(%lld)", std::string(top[static_cast<size_t>(i)].name).c_str(),
                top[static_cast<size_t>(i)].trials);
  }
  std::printf("\n");
  return 0;
}
