// Quickstart: simulate a small multi-tenant GPU cluster for two days and
// print a summary of what the analysis pipeline sees.
//
//   ./build/examples/quickstart [days] [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/analysis.h"
#include "src/core/experiment.h"

int main(int argc, char** argv) {
  using namespace philly;

  const int days = argc > 1 ? std::atoi(argv[1]) : 2;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1. Configure: paper-like cluster (two SKUs, RDMA-domain racks), 14 virtual
  //    clusters with quotas, a Philly-style locality-aware gang scheduler.
  ExperimentConfig config = ExperimentConfig::BenchScale(days, seed);
  std::printf("cluster: %d GPUs on %d servers in %zu+ racks, %zu virtual clusters\n",
              config.simulation.cluster.TotalGpus(),
              config.simulation.cluster.TotalServers(),
              config.simulation.cluster.skus.size(), config.workload.vcs.size());

  // 2. Run: generates the synthetic trace and plays it through the scheduler.
  const ExperimentRun run = RunExperiment(config);
  std::printf("simulated %lld jobs over %d days of arrivals\n\n",
              static_cast<long long>(run.num_jobs), days);

  // 3. Analyze: the same joins/aggregations the paper performs.
  const auto status = AnalyzeStatus(run.result.jobs);
  std::printf("final status mix (Table 6 shape):\n");
  for (int s = 0; s < 3; ++s) {
    const auto& row = status.by_status[static_cast<size_t>(s)];
    std::printf("  %-12s %6lld jobs (%5.1f%%)  %5.1f%% of GPU time\n",
                std::string(ToString(static_cast<JobStatus>(s))).c_str(),
                static_cast<long long>(row.count), 100.0 * row.count_share,
                100.0 * row.gpu_time_share);
  }

  const auto util = AnalyzeUtilization(run.result.jobs);
  std::printf("\nGPU utilization of in-use GPUs (Fig 5 / Table 3 shape):\n");
  std::printf("  overall mean %.1f%%; by size:", util.all.Mean());
  for (int i = 0; i < UtilizationResult::kNumRepresentative; ++i) {
    std::printf("  %dGPU=%.1f%%", kRepresentativeSizes[i], util.MeanForSize(i));
  }
  std::printf("\n");

  const auto delays = AnalyzeQueueDelays(run.result.jobs);
  std::printf("\nqueueing delay p90 by job size (Fig 3 shape):\n ");
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    std::printf("  %s=%.1f min", std::string(ToString(static_cast<SizeBucket>(b))).c_str(),
                delays.overall[static_cast<size_t>(b)].Quantile(0.9));
  }
  std::printf("\n\nNext: run the binaries in build/bench/ to regenerate every "
              "table and figure of the paper.\n");
  return 0;
}
