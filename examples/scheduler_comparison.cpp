// Scheduler comparison (Table 1 made quantitative): run the same workload
// under the Philly scheduler and the baselines the paper compares against —
// FIFO, Optimus-style SRTF, Tiresias-style least-attained-service, and
// Gandiva-style time-slicing — and report queueing/JCT metrics.
//
//   ./build/examples/scheduler_comparison [days] [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/core/runner.h"

namespace {

struct Metrics {
  double mean_queue_min = 0.0;
  double p90_queue_min = 0.0;
  double mean_jct_hours = 0.0;  // submission -> terminal state, passed jobs
  double mean_util = 0.0;
  long long preemptions = 0;
};

Metrics Evaluate(const philly::SimulationResult& result) {
  using namespace philly;
  Metrics m;
  StreamingHistogram queue(0.02, 200000.0, 400, StreamingHistogram::Scale::kLog);
  double jct_sum = 0.0;
  int64_t jct_n = 0;
  for (const auto& job : result.jobs) {
    queue.Add(ToMinutes(job.InitialQueueDelay()));
    if (job.status == JobStatus::kPassed) {
      jct_sum += ToHours(job.finish_time - job.spec.submit_time);
      ++jct_n;
    }
  }
  m.mean_queue_min = queue.Mean();
  m.p90_queue_min = queue.Quantile(0.9);
  m.mean_jct_hours = jct_n > 0 ? jct_sum / static_cast<double>(jct_n) : 0.0;
  m.mean_util = AnalyzeUtilization(result.jobs).all.Mean();
  m.preemptions = result.preemptions;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace philly;

  const int days = argc > 1 ? std::atoi(argv[1]) : 6;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  const std::vector<SchedulerConfig> schedulers = {
      SchedulerConfig::Philly(), SchedulerConfig::Fifo(), SchedulerConfig::Optimus(),
      SchedulerConfig::Tiresias(), SchedulerConfig::Gandiva()};

  // All five simulations are independent, so they fan out across the
  // experiment pool (PHILLY_BENCH_THREADS overrides the worker count);
  // results come back in scheduler order either way.
  const ExperimentPool pool;
  std::printf("comparing %zu schedulers on an identical %d-day workload "
              "(seed %llu, %d worker threads)...\n\n",
              schedulers.size(), days, static_cast<unsigned long long>(seed),
              pool.num_threads());

  std::vector<ExperimentConfig> configs;
  for (const auto& sched : schedulers) {
    ExperimentConfig config = ExperimentConfig::BenchScale(days, seed);
    config.simulation.scheduler = sched;
    configs.push_back(std::move(config));
  }
  const std::vector<ExperimentRun> runs = pool.RunMany(std::move(configs));

  TextTable table({"scheduler", "mean queue (min)", "p90 queue (min)",
                   "mean JCT passed (h)", "mean GPU util (%)", "preemptions"});
  for (size_t i = 0; i < schedulers.size(); ++i) {
    const Metrics m = Evaluate(runs[i].result);
    table.AddRow({schedulers[i].name, FormatDouble(m.mean_queue_min, 2),
                  FormatDouble(m.p90_queue_min, 2), FormatDouble(m.mean_jct_hours, 2),
                  FormatDouble(m.mean_util, 1), std::to_string(m.preemptions)});
    std::printf("  %s done (%lld jobs)\n", schedulers[i].name.c_str(),
                static_cast<long long>(runs[i].num_jobs));
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("Reading the table: SRTF/LAS orderings favour short jobs (lower "
              "mean JCT);\nthe Philly policy favours locality and fairness; "
              "time-slicing trades\nthroughput for lower queueing.\n");
  return 0;
}
