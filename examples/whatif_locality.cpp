// What-if study of the §5 design implications:
//   (a) prioritizing locality — sweep how long the scheduler insists on
//       strict locality before relaxing, trading queueing delay for
//       utilization;
//   (b) mitigating interference — place small jobs on dedicated servers
//       instead of packing them.
//
//   ./build/examples/whatif_locality [days] [seed]

#include <cstdio>
#include <cstdlib>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/analysis.h"
#include "src/core/experiment.h"

namespace {

struct Outcome {
  double mean_queue_min = 0.0;
  double mean_util_pct = 0.0;
  double mean_jct_hours = 0.0;
};

Outcome Measure(const philly::ExperimentConfig& config) {
  using namespace philly;
  const ExperimentRun run = RunExperiment(config);
  Outcome o;
  double queue_sum = 0.0;
  double jct_sum = 0.0;
  int64_t jct_n = 0;
  for (const auto& job : run.result.jobs) {
    queue_sum += ToMinutes(job.InitialQueueDelay());
    if (job.status == JobStatus::kPassed) {
      jct_sum += ToHours(job.finish_time - job.spec.submit_time);
      ++jct_n;
    }
  }
  o.mean_queue_min = queue_sum / static_cast<double>(run.result.jobs.size());
  o.mean_util_pct = AnalyzeUtilization(run.result.jobs).all.Mean();
  o.mean_jct_hours = jct_n > 0 ? jct_sum / static_cast<double>(jct_n) : 0.0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace philly;

  const int days = argc > 1 ? std::atoi(argv[1]) : 6;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("(a) locality-wait sweep: minimum wait before relaxing locality\n\n");
  TextTable wait_table({"min wait before relax", "mean queue (min)",
                        "mean GPU util (%)", "mean JCT passed (h)"});
  for (const SimDuration wait : {Minutes(0), Minutes(10), Minutes(60), Hours(6)}) {
    ExperimentConfig config = ExperimentConfig::BenchScale(days, seed);
    config.simulation.scheduler.min_wait_before_relax = wait;
    const Outcome o = Measure(config);
    wait_table.AddRow({FormatDuration(wait), FormatDouble(o.mean_queue_min, 2),
                       FormatDouble(o.mean_util_pct, 1),
                       FormatDouble(o.mean_jct_hours, 2)});
  }
  std::printf("%s\n", wait_table.Render().c_str());
  std::printf("Waiting longer for locality raises utilization of the GPUs in "
              "use\nat the cost of queueing delay — the trade §5 argues "
              "schedulers should\nlean into, since DNN jobs run for hours.\n\n");

  std::printf("(b) packing vs dedicated servers for small jobs\n\n");
  TextTable pack_table({"placement policy", "mean queue (min)", "mean GPU util (%)",
                        "mean JCT passed (h)"});
  for (const bool pack : {true, false}) {
    ExperimentConfig config = ExperimentConfig::BenchScale(days, seed);
    config.simulation.scheduler.placer.pack_small_jobs = pack;
    const Outcome o = Measure(config);
    pack_table.AddRow({pack ? "pack small jobs (Philly)" : "dedicated servers",
                       FormatDouble(o.mean_queue_min, 2),
                       FormatDouble(o.mean_util_pct, 1),
                       FormatDouble(o.mean_jct_hours, 2)});
  }
  std::printf("%s\n", pack_table.Render().c_str());
  std::printf("Dedicated placement removes co-tenant interference (higher "
              "utilization)\nbut fragments the cluster, so gang placements "
              "queue for longer.\n");
  return 0;
}
