#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "src/common/strings.h"

// The per-mutation index self-check runs wherever asserts do (Debug builds)
// and in sanitizer builds (which compile with NDEBUG but define
// PHILLY_INDEX_SELF_CHECK from CMake): an index that drifts from the
// ground-truth server state would silently change placements, so the builds
// that exist to catch corruption verify every mutation. Release builds
// compile the check out of the hot path entirely.
#if !defined(NDEBUG) || defined(PHILLY_INDEX_SELF_CHECK)
#define PHILLY_INDEX_SELF_CHECK_ENABLED 1
#else
#define PHILLY_INDEX_SELF_CHECK_ENABLED 0
#endif

namespace philly {
namespace {

// Full-field integer parse; rejects empty fields and trailing garbage.
bool ParsePlacementInt(std::string_view s, int64_t* out) {
  const auto result = std::from_chars(s.data(), s.data() + s.size(), *out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

// Ordered-set operations on the flat sorted vectors the free-capacity index
// is built from (ServerBucket, rack_order_).
template <typename T>
void SortedInsert(std::vector<T>& v, const T& x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

template <typename T>
void SortedErase(std::vector<T>& v, const T& x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  assert(it != v.end() && *it == x);
  v.erase(it);
}

template <typename T>
bool SortedContains(const std::vector<T>& v, const T& x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

std::string EncodePlacement(const Placement& placement) {
  std::string out;
  for (size_t i = 0; i < placement.shards.size(); ++i) {
    if (i > 0) {
      out += '|';
    }
    out += std::to_string(placement.shards[i].server);
    out += ':';
    out += std::to_string(placement.shards[i].gpus);
  }
  return out;
}

Placement DecodePlacement(std::string_view text) {
  Placement placement;
  if (text.empty()) {
    return placement;
  }
  for (std::string_view part : Split(text, '|')) {
    const auto fields = Split(part, ':');
    int64_t server = 0;
    int64_t gpus = 0;
    if (fields.size() != 2 || !ParsePlacementInt(fields[0], &server) ||
        !ParsePlacementInt(fields[1], &gpus)) {
      continue;
    }
    placement.shards.push_back(
        {static_cast<ServerId>(server), static_cast<int>(gpus)});
  }
  return placement;
}

ClusterConfig ClusterConfig::PaperScale() {
  // "The cluster has 2 server SKUs – one with 2 GPUs per server and another
  // with 8 GPUs per server; RDMA domains are homogeneous" (§2.4). Hundreds of
  // machines, thousands of GPUs: 15 racks x 16 x 8-GPU plus 4 racks x 24 x
  // 2-GPU = 336 servers / 2112 GPUs, sized so the 96k-job / 75-day workload's
  // realized GPU-time (~1900 busy GPUs in steady state after kills and
  // failures truncate jobs) keeps the cluster ~85% allocated with diurnal
  // peaks above 90% — the regime where gang scheduling, fragmentation, and
  // preemption dynamics all bite without starving locality entirely.
  ClusterConfig c;
  c.skus.push_back({15, 16, 8});
  c.skus.push_back({4, 24, 2});
  return c;
}

ClusterConfig ClusterConfig::Small() {
  ClusterConfig c;
  c.skus.push_back({2, 4, 8});
  c.skus.push_back({1, 4, 2});
  return c;
}

int ClusterConfig::TotalServers() const {
  int n = 0;
  for (const auto& sku : skus) {
    n += sku.racks * sku.servers_per_rack;
  }
  return n;
}

int ClusterConfig::TotalGpus() const {
  int n = 0;
  for (const auto& sku : skus) {
    n += sku.racks * sku.servers_per_rack * sku.gpus_per_server;
  }
  return n;
}

int Placement::NumGpus() const {
  int n = 0;
  for (const auto& shard : shards) {
    n += shard.gpus;
  }
  return n;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  for (const auto& sku : config.skus) {
    assert(sku.racks > 0 && sku.servers_per_rack > 0 && sku.gpus_per_server > 0);
    for (int r = 0; r < sku.racks; ++r) {
      const RackId rack = static_cast<RackId>(rack_servers_.size());
      rack_servers_.emplace_back();
      rack_capacity_.push_back(sku.servers_per_rack * sku.gpus_per_server);
      rack_free_.push_back(rack_capacity_.back());
      for (int s = 0; s < sku.servers_per_rack; ++s) {
        const ServerId server = static_cast<ServerId>(server_capacity_.size());
        server_capacity_.push_back(sku.gpus_per_server);
        server_used_.push_back(0);
        server_rack_.push_back(rack);
        server_offline_.push_back(0);
        server_tenants_.emplace_back();
        rack_servers_[rack].push_back(server);
        total_gpus_ += sku.gpus_per_server;
      }
    }
  }

  // Build the free-capacity index: capacity groups (maximal id-runs of equal
  // capacity), per-rack static maxima, and the free-count buckets. All
  // servers start online and fully free.
  for (ServerId s = 0; s < NumServers(); ++s) {
    max_server_capacity_ = std::max(max_server_capacity_, server_capacity_[s]);
    if (groups_.empty() || groups_.back().capacity != server_capacity_[s]) {
      groups_.push_back({s, s, server_capacity_[s]});
    } else {
      groups_.back().last = s;
    }
    server_group_.push_back(static_cast<int>(groups_.size()) - 1);
  }
  rack_max_capacity_.resize(rack_servers_.size(), 0);
  rack_buckets_.resize(rack_servers_.size());
  for (RackId r = 0; r < NumRacks(); ++r) {
    for (ServerId s : rack_servers_[r]) {
      rack_max_capacity_[r] = std::max(rack_max_capacity_[r], server_capacity_[s]);
    }
    rack_buckets_[r].resize(static_cast<size_t>(rack_max_capacity_[r]) + 1);
    SortedInsert(rack_order_, {rack_free_[r], r});
  }
  group_buckets_.resize(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    group_buckets_[g].resize(static_cast<size_t>(groups_[g].capacity) + 1);
  }
  for (ServerId s = 0; s < NumServers(); ++s) {
    IndexMoveServer(s, -1, server_capacity_[s]);
  }
}

void Cluster::IndexMoveServer(ServerId s, int old_free, int new_free) {
  auto& rack = rack_buckets_[static_cast<size_t>(server_rack_[s])];
  auto& group = group_buckets_[static_cast<size_t>(server_group_[s])];
  if (old_free >= 0) {
    SortedErase(rack[static_cast<size_t>(old_free)], s);
    SortedErase(group[static_cast<size_t>(old_free)], s);
  }
  if (new_free >= 0) {
    SortedInsert(rack[static_cast<size_t>(new_free)], s);
    SortedInsert(group[static_cast<size_t>(new_free)], s);
  }
}

void Cluster::IndexMoveRack(RackId r, int old_free, int new_free) {
  if (old_free == new_free) {
    return;
  }
  SortedErase(rack_order_, {old_free, r});
  SortedInsert(rack_order_, {new_free, r});
}

void Cluster::IndexSelfCheck(ServerId s) const {
#if PHILLY_INDEX_SELF_CHECK_ENABLED
  // Sanitizer builds define NDEBUG, so this must not rely on assert().
  const auto check = [s](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "free-capacity index self-check failed: %s (server %d)\n",
                   what, static_cast<int>(s));
      std::abort();
    }
  };
  const RackId r = server_rack_[s];
  const int free = server_capacity_[s] - server_used_[s];
  const auto& bucket = RackFreeBucket(r, free);
  const auto& gbucket =
      GroupFreeBucket(server_group_[static_cast<size_t>(s)], free);
  if (server_offline_[s] != 0) {
    check(!SortedContains(bucket, s), "offline server still in rack bucket");
    check(!SortedContains(gbucket, s), "offline server still in group bucket");
  } else {
    check(SortedContains(bucket, s), "server missing from its rack bucket");
    check(SortedContains(gbucket, s), "server missing from its group bucket");
  }
  check(SortedContains(rack_order_, {rack_free_[r], r}), "rack rank stale");
#else
  (void)s;
#endif
}

double Cluster::Occupancy() const {
  return total_gpus_ > 0 ? static_cast<double>(used_gpus_) / total_gpus_ : 0.0;
}

bool Cluster::Allocate(JobId job, const Placement& placement) {
  if (placement.Empty() || job_shards_.count(job) > 0) {
    return false;
  }
  // Validate before mutating: all-or-nothing (gang) semantics.
  for (size_t i = 0; i < placement.shards.size(); ++i) {
    const auto& shard = placement.shards[i];
    if (shard.server < 0 || shard.server >= NumServers() || shard.gpus <= 0 ||
        shard.gpus > ServerFree(shard.server)) {
      return false;
    }
    for (size_t j = 0; j < i; ++j) {
      if (placement.shards[j].server == shard.server) {
        return false;
      }
    }
  }
  for (const auto& shard : placement.shards) {
    // Validation passed, so the server is online: its pre-mutation free count
    // really is capacity - used (ServerFree would report 0 for offline).
    const int old_free = server_capacity_[shard.server] - server_used_[shard.server];
    const RackId rack = server_rack_[shard.server];
    server_used_[shard.server] += shard.gpus;
    rack_free_[rack] -= shard.gpus;
    server_tenants_[shard.server].push_back({job, shard.gpus});
    used_gpus_ += shard.gpus;
    IndexMoveServer(shard.server, old_free, old_free - shard.gpus);
    IndexMoveRack(rack, rack_free_[rack] + shard.gpus, rack_free_[rack]);
    IndexSelfCheck(shard.server);
  }
  auto shards = placement.shards;
  const auto by_server = [](const PlacementShard& a, const PlacementShard& b) {
    return a.server < b.server;
  };
  // Placers emit shards in server-id order for most shapes; skip the sort
  // when they did.
  if (!std::is_sorted(shards.begin(), shards.end(), by_server)) {
    std::sort(shards.begin(), shards.end(), by_server);
  }
  job_shards_.emplace(job, std::move(shards));
  ++alloc_version_;
  return true;
}

int Cluster::Release(JobId job) {
  const auto it = job_shards_.find(job);
  if (it == job_shards_.end()) {
    return 0;
  }
  int freed = 0;
  for (const auto& shard : it->second) {
    // A holding server cannot be offline (SetServerOffline requires a drain),
    // so its bucketed free count is capacity - used.
    const int old_free = server_capacity_[shard.server] - server_used_[shard.server];
    const RackId rack = server_rack_[shard.server];
    server_used_[shard.server] -= shard.gpus;
    rack_free_[rack] += shard.gpus;
    used_gpus_ -= shard.gpus;
    freed += shard.gpus;
    auto& tenants = server_tenants_[shard.server];
    tenants.erase(std::remove_if(tenants.begin(), tenants.end(),
                                 [job](const Tenant& t) { return t.job == job; }),
                  tenants.end());
    IndexMoveServer(shard.server, old_free, old_free + shard.gpus);
    IndexMoveRack(rack, rack_free_[rack] - shard.gpus, rack_free_[rack]);
    IndexSelfCheck(shard.server);
  }
  job_shards_.erase(it);
  ++alloc_version_;
  return freed;
}

Placement Cluster::PlacementOf(JobId job) const {
  Placement p;
  const auto it = job_shards_.find(job);
  if (it != job_shards_.end()) {
    p.shards = it->second;
  }
  return p;
}

double Cluster::EmptyServerFraction() const {
  if (server_used_.empty()) {
    return 0.0;
  }
  int empty = 0;
  for (size_t s = 0; s < server_used_.size(); ++s) {
    // An offline server is not "empty but available" — it contributes nothing
    // to the fragmentation the paper measures.
    if (server_used_[s] == 0 && server_offline_[s] == 0) {
      ++empty;
    }
  }
  return static_cast<double>(empty) / static_cast<double>(server_used_.size());
}

int Cluster::RacksWithEmptyServers() const {
  int racks = 0;
  for (const auto& servers : rack_servers_) {
    for (ServerId s : servers) {
      if (server_used_[s] == 0 && server_offline_[s] == 0) {
        ++racks;
        break;
      }
    }
  }
  return racks;
}

void Cluster::SetServerOffline(ServerId s, bool offline) {
  assert(s >= 0 && s < NumServers());
  if (ServerOffline(s) == offline) {
    return;
  }
  const RackId rack = server_rack_[s];
  const int old_rack_free = rack_free_[rack];
  if (offline) {
    // Callers must evict tenants first; taking capacity away under a running
    // gang would corrupt the used/free bookkeeping.
    assert(server_used_[s] == 0);
    server_offline_[s] = 1;
    rack_free_[rack] -= server_capacity_[s];
    offline_gpus_ += server_capacity_[s];
    ++num_offline_;
    // Leaves every bucket: an offline server is never a placement candidate.
    IndexMoveServer(s, server_capacity_[s] - server_used_[s], -1);
  } else {
    server_offline_[s] = 0;
    rack_free_[rack] += server_capacity_[s];
    offline_gpus_ -= server_capacity_[s];
    --num_offline_;
    IndexMoveServer(s, -1, server_capacity_[s] - server_used_[s]);
  }
  IndexMoveRack(rack, old_rack_free, rack_free_[rack]);
  IndexSelfCheck(s);
  ++alloc_version_;
}

bool Cluster::DebugCheckIndex(std::string* error) const {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };
  // Rebuild every structure from the ground-truth per-server state and
  // compare. O(servers log servers): test/validation use only.
  std::vector<std::vector<ServerBucket>> want_rack(rack_servers_.size());
  std::vector<std::vector<ServerBucket>> want_group(groups_.size());
  for (RackId r = 0; r < NumRacks(); ++r) {
    want_rack[static_cast<size_t>(r)].resize(
        static_cast<size_t>(rack_max_capacity_[r]) + 1);
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    want_group[g].resize(static_cast<size_t>(groups_[g].capacity) + 1);
  }
  int want_max_cap = 0;
  for (ServerId s = 0; s < NumServers(); ++s) {
    want_max_cap = std::max(want_max_cap, server_capacity_[s]);
    const int g = server_group_[static_cast<size_t>(s)];
    if (s < groups_[static_cast<size_t>(g)].first ||
        s > groups_[static_cast<size_t>(g)].last ||
        server_capacity_[s] != groups_[static_cast<size_t>(g)].capacity) {
      return fail("server " + std::to_string(s) + " mapped to wrong capacity group");
    }
    if (server_offline_[s] != 0) {
      continue;  // offline servers belong to no bucket
    }
    const int free = server_capacity_[s] - server_used_[s];
    if (free < 0 || free > server_capacity_[s]) {
      return fail("server " + std::to_string(s) + " has impossible free count " +
                  std::to_string(free));
    }
    // Ascending server-id iteration keeps the rebuilt buckets sorted.
    want_rack[static_cast<size_t>(server_rack_[s])][static_cast<size_t>(free)]
        .push_back(s);
    want_group[static_cast<size_t>(g)][static_cast<size_t>(free)].push_back(s);
  }
  if (want_max_cap != max_server_capacity_) {
    return fail("stale max server capacity");
  }
  for (RackId r = 0; r < NumRacks(); ++r) {
    for (int f = 0; f <= rack_max_capacity_[r]; ++f) {
      if (RackFreeBucket(r, f) !=
          want_rack[static_cast<size_t>(r)][static_cast<size_t>(f)]) {
        return fail("rack " + std::to_string(r) + " bucket free=" +
                    std::to_string(f) + " diverges from rescan");
      }
    }
    // Rack free must equal the sum of online server frees.
    int sum = 0;
    for (ServerId s : rack_servers_[r]) {
      if (server_offline_[s] == 0) {
        sum += server_capacity_[s] - server_used_[s];
      }
    }
    if (sum != rack_free_[r]) {
      return fail("rack " + std::to_string(r) + " free count " +
                  std::to_string(rack_free_[r]) + " != online-server sum " +
                  std::to_string(sum));
    }
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (int f = 0; f <= groups_[g].capacity; ++f) {
      if (GroupFreeBucket(static_cast<int>(g), f) !=
          want_group[g][static_cast<size_t>(f)]) {
        return fail("capacity group " + std::to_string(g) + " bucket free=" +
                    std::to_string(f) + " diverges from rescan");
      }
    }
  }
  std::vector<RackRank> want_order;
  want_order.reserve(rack_servers_.size());
  for (RackId r = 0; r < NumRacks(); ++r) {
    want_order.push_back({rack_free_[r], r});
  }
  std::sort(want_order.begin(), want_order.end());
  if (want_order != rack_order_) {
    return fail("ranked rack order diverges from rescan");
  }
  return true;
}

double Cluster::CpuCoresFor(ServerId s, int gpus) const {
  return config_.cpu_cores_per_server * static_cast<double>(gpus) /
         static_cast<double>(server_capacity_[s]);
}

double Cluster::MemoryGbFor(ServerId s, int gpus) const {
  return config_.memory_gb_per_server * static_cast<double>(gpus) /
         static_cast<double>(server_capacity_[s]);
}

}  // namespace philly
