#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <charconv>

#include "src/common/strings.h"

namespace philly {
namespace {

// Full-field integer parse; rejects empty fields and trailing garbage.
bool ParsePlacementInt(std::string_view s, int64_t* out) {
  const auto result = std::from_chars(s.data(), s.data() + s.size(), *out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

}  // namespace

std::string EncodePlacement(const Placement& placement) {
  std::string out;
  for (size_t i = 0; i < placement.shards.size(); ++i) {
    if (i > 0) {
      out += '|';
    }
    out += std::to_string(placement.shards[i].server);
    out += ':';
    out += std::to_string(placement.shards[i].gpus);
  }
  return out;
}

Placement DecodePlacement(std::string_view text) {
  Placement placement;
  if (text.empty()) {
    return placement;
  }
  for (std::string_view part : Split(text, '|')) {
    const auto fields = Split(part, ':');
    int64_t server = 0;
    int64_t gpus = 0;
    if (fields.size() != 2 || !ParsePlacementInt(fields[0], &server) ||
        !ParsePlacementInt(fields[1], &gpus)) {
      continue;
    }
    placement.shards.push_back(
        {static_cast<ServerId>(server), static_cast<int>(gpus)});
  }
  return placement;
}

ClusterConfig ClusterConfig::PaperScale() {
  // "The cluster has 2 server SKUs – one with 2 GPUs per server and another
  // with 8 GPUs per server; RDMA domains are homogeneous" (§2.4). Hundreds of
  // machines, thousands of GPUs: 15 racks x 16 x 8-GPU plus 4 racks x 24 x
  // 2-GPU = 336 servers / 2112 GPUs, sized so the 96k-job / 75-day workload's
  // realized GPU-time (~1900 busy GPUs in steady state after kills and
  // failures truncate jobs) keeps the cluster ~85% allocated with diurnal
  // peaks above 90% — the regime where gang scheduling, fragmentation, and
  // preemption dynamics all bite without starving locality entirely.
  ClusterConfig c;
  c.skus.push_back({15, 16, 8});
  c.skus.push_back({4, 24, 2});
  return c;
}

ClusterConfig ClusterConfig::Small() {
  ClusterConfig c;
  c.skus.push_back({2, 4, 8});
  c.skus.push_back({1, 4, 2});
  return c;
}

int ClusterConfig::TotalServers() const {
  int n = 0;
  for (const auto& sku : skus) {
    n += sku.racks * sku.servers_per_rack;
  }
  return n;
}

int ClusterConfig::TotalGpus() const {
  int n = 0;
  for (const auto& sku : skus) {
    n += sku.racks * sku.servers_per_rack * sku.gpus_per_server;
  }
  return n;
}

int Placement::NumGpus() const {
  int n = 0;
  for (const auto& shard : shards) {
    n += shard.gpus;
  }
  return n;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  for (const auto& sku : config.skus) {
    assert(sku.racks > 0 && sku.servers_per_rack > 0 && sku.gpus_per_server > 0);
    for (int r = 0; r < sku.racks; ++r) {
      const RackId rack = static_cast<RackId>(rack_servers_.size());
      rack_servers_.emplace_back();
      rack_capacity_.push_back(sku.servers_per_rack * sku.gpus_per_server);
      rack_free_.push_back(rack_capacity_.back());
      for (int s = 0; s < sku.servers_per_rack; ++s) {
        const ServerId server = static_cast<ServerId>(server_capacity_.size());
        server_capacity_.push_back(sku.gpus_per_server);
        server_used_.push_back(0);
        server_rack_.push_back(rack);
        server_offline_.push_back(0);
        server_tenants_.emplace_back();
        rack_servers_[rack].push_back(server);
        total_gpus_ += sku.gpus_per_server;
      }
    }
  }
}

double Cluster::Occupancy() const {
  return total_gpus_ > 0 ? static_cast<double>(used_gpus_) / total_gpus_ : 0.0;
}

bool Cluster::Allocate(JobId job, const Placement& placement) {
  if (placement.Empty() || job_shards_.count(job) > 0) {
    return false;
  }
  // Validate before mutating: all-or-nothing (gang) semantics.
  for (size_t i = 0; i < placement.shards.size(); ++i) {
    const auto& shard = placement.shards[i];
    if (shard.server < 0 || shard.server >= NumServers() || shard.gpus <= 0 ||
        shard.gpus > ServerFree(shard.server)) {
      return false;
    }
    for (size_t j = 0; j < i; ++j) {
      if (placement.shards[j].server == shard.server) {
        return false;
      }
    }
  }
  for (const auto& shard : placement.shards) {
    server_used_[shard.server] += shard.gpus;
    rack_free_[server_rack_[shard.server]] -= shard.gpus;
    server_tenants_[shard.server].push_back({job, shard.gpus});
    used_gpus_ += shard.gpus;
  }
  auto shards = placement.shards;
  std::sort(shards.begin(), shards.end(),
            [](const PlacementShard& a, const PlacementShard& b) {
              return a.server < b.server;
            });
  job_shards_.emplace(job, std::move(shards));
  return true;
}

int Cluster::Release(JobId job) {
  const auto it = job_shards_.find(job);
  if (it == job_shards_.end()) {
    return 0;
  }
  int freed = 0;
  for (const auto& shard : it->second) {
    server_used_[shard.server] -= shard.gpus;
    rack_free_[server_rack_[shard.server]] += shard.gpus;
    used_gpus_ -= shard.gpus;
    freed += shard.gpus;
    auto& tenants = server_tenants_[shard.server];
    tenants.erase(std::remove_if(tenants.begin(), tenants.end(),
                                 [job](const Tenant& t) { return t.job == job; }),
                  tenants.end());
  }
  job_shards_.erase(it);
  return freed;
}

Placement Cluster::PlacementOf(JobId job) const {
  Placement p;
  const auto it = job_shards_.find(job);
  if (it != job_shards_.end()) {
    p.shards = it->second;
  }
  return p;
}

double Cluster::EmptyServerFraction() const {
  if (server_used_.empty()) {
    return 0.0;
  }
  int empty = 0;
  for (size_t s = 0; s < server_used_.size(); ++s) {
    // An offline server is not "empty but available" — it contributes nothing
    // to the fragmentation the paper measures.
    if (server_used_[s] == 0 && server_offline_[s] == 0) {
      ++empty;
    }
  }
  return static_cast<double>(empty) / static_cast<double>(server_used_.size());
}

int Cluster::RacksWithEmptyServers() const {
  int racks = 0;
  for (const auto& servers : rack_servers_) {
    for (ServerId s : servers) {
      if (server_used_[s] == 0 && server_offline_[s] == 0) {
        ++racks;
        break;
      }
    }
  }
  return racks;
}

void Cluster::SetServerOffline(ServerId s, bool offline) {
  assert(s >= 0 && s < NumServers());
  if (ServerOffline(s) == offline) {
    return;
  }
  if (offline) {
    // Callers must evict tenants first; taking capacity away under a running
    // gang would corrupt the used/free bookkeeping.
    assert(server_used_[s] == 0);
    server_offline_[s] = 1;
    rack_free_[server_rack_[s]] -= server_capacity_[s];
    offline_gpus_ += server_capacity_[s];
    ++num_offline_;
  } else {
    server_offline_[s] = 0;
    rack_free_[server_rack_[s]] += server_capacity_[s];
    offline_gpus_ -= server_capacity_[s];
    --num_offline_;
  }
}

double Cluster::CpuCoresFor(ServerId s, int gpus) const {
  return config_.cpu_cores_per_server * static_cast<double>(gpus) /
         static_cast<double>(server_capacity_[s]);
}

double Cluster::MemoryGbFor(ServerId s, int gpus) const {
  return config_.memory_gb_per_server * static_cast<double>(gpus) /
         static_cast<double>(server_capacity_[s]);
}

}  // namespace philly
