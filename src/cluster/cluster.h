// Cluster topology and GPU allocation state.
//
// Mirrors the Philly deployment described in §2.2/§2.4 of the paper: servers
// carry either 2 or 8 GPUs of the same model, servers are grouped into racks,
// and each rack is an RDMA (InfiniBand) domain — workers placed within one
// rack synchronize over the 100 Gbps fabric, across racks over Ethernet.
// Host CPU cores and memory are allocated proportionally to requested GPUs.
//
// The Cluster owns allocation bookkeeping only; policy (which servers to pick)
// lives in src/sched.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace philly {

using ServerId = int32_t;
using RackId = int32_t;
using JobId = int64_t;

inline constexpr JobId kNoJob = -1;

// Static description of a homogeneous group of racks.
struct SkuGroup {
  int racks = 0;
  int servers_per_rack = 0;
  int gpus_per_server = 0;
};

struct ClusterConfig {
  std::vector<SkuGroup> skus;
  int cpu_cores_per_server = 64;
  int memory_gb_per_server = 512;

  // Paper-like scale: thousands of GPUs, two SKUs, homogeneous racks
  // (the dominant SKU is the 8-GPU server).
  static ClusterConfig PaperScale();

  // A small cluster for unit tests and the quickstart example.
  static ClusterConfig Small();

  int TotalServers() const;
  int TotalGpus() const;
};

// One slice of a job's placement: `gpus` GPUs on one server.
struct PlacementShard {
  ServerId server = -1;
  int gpus = 0;
};

// A gang placement for one job attempt.
struct Placement {
  std::vector<PlacementShard> shards;

  int NumGpus() const;
  int NumServers() const { return static_cast<int>(shards.size()); }
  bool Empty() const { return shards.empty(); }
};

// Placement <-> "server:gpus|server:gpus" encoding shared by attempts.csv and
// the scheduler event log.
std::string EncodePlacement(const Placement& placement);
Placement DecodePlacement(std::string_view text);

// Rack ranking key for the free-capacity index: emptiest rack first, ties by
// id — the canonical deterministic order the placer's rack scans use (see
// docs/placement-index.md).
struct RackRank {
  int free = 0;
  RackId rack = -1;
  bool operator<(const RackRank& other) const {
    if (free != other.free) {
      return free > other.free;
    }
    return rack < other.rack;
  }
  bool operator==(const RackRank& other) const = default;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  int NumServers() const { return static_cast<int>(server_rack_.size()); }
  int NumRacks() const { return static_cast<int>(rack_servers_.size()); }
  int NumGpus() const { return total_gpus_; }
  int NumUsedGpus() const { return used_gpus_; }
  int NumFreeGpus() const { return total_gpus_ - used_gpus_ - offline_gpus_; }
  double Occupancy() const;

  int ServerCapacity(ServerId s) const { return server_capacity_[s]; }
  int ServerUsed(ServerId s) const { return server_used_[s]; }
  // Offline servers advertise zero free GPUs, which is all a placer (or
  // Allocate's validation) consults — no separate health check needed there.
  int ServerFree(ServerId s) const {
    return server_offline_[s] ? 0 : server_capacity_[s] - server_used_[s];
  }
  RackId ServerRack(ServerId s) const { return server_rack_[s]; }
  const std::vector<ServerId>& ServersInRack(RackId r) const { return rack_servers_[r]; }
  int RackFreeGpus(RackId r) const { return rack_free_[r]; }
  int RackCapacity(RackId r) const { return rack_capacity_[r]; }

  // Atomically claims the shards of `placement` for `job`. Returns false (and
  // claims nothing) if any shard exceeds the free GPUs of its server, a server
  // appears twice, or the job already holds GPUs.
  bool Allocate(JobId job, const Placement& placement);

  // Releases everything `job` holds. Returns the number of GPUs freed (0 if
  // the job held nothing).
  int Release(JobId job);

  // Jobs currently holding GPUs on server `s`, with their shard sizes.
  struct Tenant {
    JobId job = kNoJob;
    int gpus = 0;
  };
  const std::vector<Tenant>& TenantsOnServer(ServerId s) const { return server_tenants_[s]; }

  // The placement currently held by `job` (empty if none).
  Placement PlacementOf(JobId job) const;
  bool Holds(JobId job) const { return job_shards_.count(job) > 0; }

  // Fraction of servers with zero GPUs allocated (paper §3.1.1: at 2/3
  // occupancy fewer than 4.5% of servers are completely empty).
  double EmptyServerFraction() const;

  // Number of distinct racks that contain at least one completely empty
  // server (paper: empty servers are spread across RDMA domains).
  int RacksWithEmptyServers() const;

  // Host-resource proportionality: a job holding g GPUs on a server with c
  // GPUs gets g/c of that server's cores and memory (§2.3).
  double CpuCoresFor(ServerId s, int gpus) const;
  double MemoryGbFor(ServerId s, int gpus) const;

  // Monotone counter bumped by every successful Allocate/Release/
  // SetServerOffline. Two calls observing the same version see identical
  // free-capacity state, so placement-feasibility probes (CanPlace) against
  // an unchanged cluster can be memoized — the span tracer's eval-fail
  // refinement relies on this to stay off the scheduler's hot path.
  int64_t AllocVersion() const { return alloc_version_; }

  // Takes a server out of (or back into) service, e.g. for a machine fault.
  // The server must be drained (no tenants) before going offline; its GPUs
  // stop counting as free until it returns. No-op if already in that state.
  void SetServerOffline(ServerId s, bool offline);
  bool ServerOffline(ServerId s) const { return server_offline_[s] != 0; }
  int NumOfflineServers() const { return num_offline_; }

  // --- free-capacity index -------------------------------------------------
  // Incrementally maintained placement index (docs/placement-index.md): the
  // placer's queries ("emptiest rack", "tightest server that fits", "servers
  // of rack r with k free GPUs") resolve against these structures instead of
  // scanning and sorting all servers. Every Allocate/Release/SetServerOffline
  // updates the index in O(log n); an offline server appears in no bucket.

  // Maximal run of consecutive server ids with equal GPU capacity (one per
  // SkuGroup in practice). The single-server best-fit fold iterates groups in
  // id order, which reproduces the legacy whole-cluster scan exactly.
  struct CapacityGroup {
    ServerId first = 0;
    ServerId last = 0;  // inclusive
    int capacity = 0;
  };
  // Online servers with one exact free-GPU count, ascending id. A flat sorted
  // vector, not a std::set: buckets hold at most a rack's (or group's) worth
  // of servers, and every Allocate/Release moves servers between buckets —
  // memmove on a short contiguous array beats per-move red-black node churn,
  // and iteration order (ascending id) is identical.
  using ServerBucket = std::vector<ServerId>;

  int MaxServerCapacity() const { return max_server_capacity_; }
  // Largest single-server capacity in rack r (static; offline-independent).
  int RackMaxServerCapacity(RackId r) const { return rack_max_capacity_[r]; }
  int NumCapacityGroups() const { return static_cast<int>(groups_.size()); }
  const CapacityGroup& Group(int g) const { return groups_[static_cast<size_t>(g)]; }
  // Online servers of capacity group g with exactly `free` GPUs free.
  // `free` must be in [0, Group(g).capacity].
  const ServerBucket& GroupFreeBucket(int g, int free) const {
    return group_buckets_[static_cast<size_t>(g)][static_cast<size_t>(free)];
  }
  // Online servers of rack r with exactly `free` GPUs free.
  // `free` must be in [0, RackMaxServerCapacity(r)].
  const ServerBucket& RackFreeBucket(RackId r, int free) const {
    return rack_buckets_[static_cast<size_t>(r)][static_cast<size_t>(free)];
  }
  // All racks ordered by (free GPUs descending, id ascending), kept current
  // across allocations, releases, and offline transitions. Flat sorted vector
  // for the same reason as ServerBucket (tens of racks, re-keyed per shard).
  const std::vector<RackRank>& RankedRackIndex() const { return rack_order_; }

  // Full-rescan validation of the index against the ground-truth per-server
  // state. Returns true when every bucket, group, and rack-rank entry matches
  // a from-scratch rebuild; on mismatch returns false and describes the first
  // divergence in *error. The differential test harness calls this after
  // every mutation; sanitizer/Debug builds additionally run a cheap
  // per-mutation membership self-check inside the mutators.
  bool DebugCheckIndex(std::string* error = nullptr) const;

 private:
  // Moves server s between free-count buckets (old_free < 0: not present,
  // i.e. coming back online; new_free < 0: remove, i.e. going offline).
  void IndexMoveServer(ServerId s, int old_free, int new_free);
  // Re-keys rack r in the ranked rack order.
  void IndexMoveRack(RackId r, int old_free, int new_free);
  // Cheap per-mutation invariant check (sanitizer/Debug builds only).
  void IndexSelfCheck(ServerId s) const;
  int total_gpus_ = 0;
  int used_gpus_ = 0;
  int offline_gpus_ = 0;
  int num_offline_ = 0;
  int64_t alloc_version_ = 0;
  ClusterConfig config_;
  std::vector<int> server_capacity_;
  std::vector<int> server_used_;
  std::vector<RackId> server_rack_;
  std::vector<std::vector<ServerId>> rack_servers_;
  std::vector<int> rack_capacity_;
  std::vector<int> rack_free_;
  std::vector<uint8_t> server_offline_;
  std::vector<std::vector<Tenant>> server_tenants_;
  // JobId -> shards held; PlacementOf() returns shards sorted by server id so
  // iteration order stays deterministic.
  std::unordered_map<JobId, std::vector<PlacementShard>> job_shards_;

  // Free-capacity index state (see the public index section above).
  int max_server_capacity_ = 0;
  std::vector<CapacityGroup> groups_;
  std::vector<int> server_group_;
  std::vector<int> rack_max_capacity_;
  std::vector<std::vector<ServerBucket>> rack_buckets_;   // [rack][free]
  std::vector<std::vector<ServerBucket>> group_buckets_;  // [group][free]
  std::vector<RackRank> rack_order_;
};

}  // namespace philly

#endif  // SRC_CLUSTER_CLUSTER_H_
