#include "src/common/csv.h"

#include <charconv>
#include <istream>
#include <ostream>

namespace philly {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void WriteField(std::ostream& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') {
      out << "\"\"";
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

std::string CsvWriter::ToField(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    WriteField(out_, fields[i]);
  }
  out_ << '\n';
}

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

// True if `text` has an odd number of quotes, i.e. a quoted field is still
// open at the end of the physical line. Doubled quotes toggle twice and
// cancel out, so simple parity is exact for RFC-4180 quoting.
bool EndsInsideQuotes(std::string_view text) {
  bool in_quotes = false;
  for (char c : text) {
    if (c == '"') {
      in_quotes = !in_quotes;
    }
  }
  return in_quotes;
}

}  // namespace

std::vector<std::vector<std::string>> ReadCsv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  std::string record;
  bool in_record = false;
  while (std::getline(in, line)) {
    if (!in_record) {
      if (line.empty()) {
        continue;  // blank lines separate records; inside quotes they are data
      }
      record = line;
    } else {
      record += '\n';
      record += line;
    }
    in_record = EndsInsideQuotes(record);
    if (!in_record) {
      rows.push_back(ParseCsvLine(record));
      record.clear();
    }
  }
  if (in_record) {
    // EOF with an unterminated quote: salvage what accumulated rather than
    // silently dropping the record.
    rows.push_back(ParseCsvLine(record));
  }
  return rows;
}

}  // namespace philly
