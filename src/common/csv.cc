#include "src/common/csv.h"

#include <istream>
#include <ostream>

namespace philly {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void WriteField(std::ostream& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') {
      out << "\"\"";
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    WriteField(out_, fields[i]);
  }
  out_ << '\n';
}

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> ReadCsv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

}  // namespace philly
