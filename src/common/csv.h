// Minimal CSV reading/writing for the philly-traces-compatible log files.
//
// Supports RFC-4180-style quoting (fields containing the separator, quotes, or
// newlines are quoted; embedded quotes are doubled). That is all the trace
// schemas need; this is not a general CSV library.

#ifndef SRC_COMMON_CSV_H_
#define SRC_COMMON_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace philly {

// Streams rows to an ostream the caller owns.
class CsvWriter {
 public:
  // `out` must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);

  // Convenience variadic row: each argument must be string-like or arithmetic.
  template <typename... Ts>
  void Row(const Ts&... fields) {
    std::vector<std::string> row;
    row.reserve(sizeof...(fields));
    (row.push_back(ToField(fields)), ...);
    WriteRow(row);
  }

 private:
  static std::string ToField(const std::string& s) { return s; }
  static std::string ToField(std::string_view s) { return std::string(s); }
  static std::string ToField(const char* s) { return s; }
  // Shortest decimal that round-trips to the same double, so written traces
  // re-read bitwise-equal (std::to_string's fixed 6 decimals do not).
  static std::string ToField(double v);
  template <typename T>
  static std::string ToField(const T& v) {
    return std::to_string(v);
  }

  std::ostream& out_;
};

// Parses one CSV record into fields (handles quoting; the record may contain
// embedded newlines inside quoted fields — ReadCsv passes those through).
std::vector<std::string> ParseCsvLine(std::string_view line);

// Reads all records of an istream. A record spans physical lines when a
// quoted field contains newlines. First record is returned as-is (callers
// decide whether it is a header). Blank lines between records are skipped.
std::vector<std::vector<std::string>> ReadCsv(std::istream& in);

}  // namespace philly

#endif  // SRC_COMMON_CSV_H_
