#include "src/common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace philly {

// Acklam's rational approximation.
double Probit(double p) {
  assert(p > 0.0 && p < 1.0);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

namespace {
constexpr double kZ90 = 1.2815515655446004;  // Probit(0.9)
}  // namespace

LognormalSpec LognormalSpec::FromMedianP90(double median, double p90) {
  assert(median > 0.0 && p90 >= median);
  LognormalSpec spec;
  spec.mu = std::log(median);
  spec.sigma = p90 > median ? (std::log(p90) - spec.mu) / kZ90 : 0.0;
  return spec;
}

double LognormalSpec::Median() const { return std::exp(mu); }

double LognormalSpec::Quantile(double p) const {
  assert(p > 0.0 && p < 1.0);
  return std::exp(mu + sigma * Probit(p));
}

double LognormalSpec::Mean() const { return std::exp(mu + 0.5 * sigma * sigma); }

void LognormalMixture::AddComponent(double weight, LognormalSpec spec) {
  assert(weight > 0.0);
  weights_.push_back(weight);
  specs_.push_back(spec);
}

double LognormalMixture::Sample(Rng& rng) const {
  assert(!weights_.empty());
  const size_t i = rng.Categorical(weights_);
  return specs_[i].Sample(rng);
}

ArrivalProcess::ArrivalProcess(double rate_per_hour, double diurnal_amplitude,
                               double weekly_amplitude, double weekly_phase)
    : rate_per_hour_(rate_per_hour),
      amplitude_(diurnal_amplitude),
      weekly_amplitude_(weekly_amplitude),
      weekly_phase_(weekly_phase) {
  assert(rate_per_hour > 0.0);
  assert(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0);
  assert(weekly_amplitude >= 0.0 && weekly_amplitude < 1.0);
}

void ArrivalProcess::AddBurst(int64_t start, int64_t end, double multiplier) {
  assert(end > start && multiplier > 0.0);
  bursts_.push_back({start, end, multiplier});
  max_burst_multiplier_ = std::max(max_burst_multiplier_, multiplier);
}

double ArrivalProcess::RateAt(int64_t t) const {
  double rate = rate_per_hour_;
  if (amplitude_ > 0.0) {
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(t % 86400) / 86400.0;
    // Peak load mid-day (phase shifted so t=0 is midnight).
    rate *= 1.0 + amplitude_ * std::sin(phase - std::numbers::pi / 2.0);
  }
  if (weekly_amplitude_ > 0.0) {
    constexpr int64_t kWeek = 7 * 86400;
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(t % kWeek) / kWeek;
    rate *= 1.0 + weekly_amplitude_ * std::sin(phase + weekly_phase_);
  }
  for (const Burst& burst : bursts_) {
    if (t >= burst.start && t < burst.end) {
      rate *= burst.multiplier;
    }
  }
  return rate;
}

int64_t ArrivalProcess::NextAfter(int64_t now, Rng& rng) const {
  const double max_rate = rate_per_hour_ * (1.0 + amplitude_) *
                          (1.0 + weekly_amplitude_) * max_burst_multiplier_;
  int64_t t = now;
  for (;;) {
    const double gap_hours = rng.Exponential(1.0 / max_rate);
    const auto gap_seconds = static_cast<int64_t>(gap_hours * 3600.0) + 1;
    t += gap_seconds;
    if (rng.Uniform() * max_rate <= RateAt(t)) {
      return t;
    }
  }
}

}  // namespace philly
