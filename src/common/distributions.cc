#include "src/common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace philly {

namespace {
constexpr double kZ90 = 1.2815515655446004;  // Probit(0.9)
}  // namespace

LognormalSpec LognormalSpec::FromMedianP90(double median, double p90) {
  assert(median > 0.0 && p90 >= median);
  LognormalSpec spec;
  spec.mu = std::log(median);
  spec.sigma = p90 > median ? (std::log(p90) - spec.mu) / kZ90 : 0.0;
  return spec;
}

double LognormalSpec::Median() const { return std::exp(mu); }

double LognormalSpec::Quantile(double p) const {
  assert(p > 0.0 && p < 1.0);
  return std::exp(mu + sigma * Probit(p));
}

double LognormalSpec::Mean() const { return std::exp(mu + 0.5 * sigma * sigma); }

void LognormalMixture::AddComponent(double weight, LognormalSpec spec) {
  assert(weight > 0.0);
  weights_.push_back(weight);
  specs_.push_back(spec);
}

double LognormalMixture::Sample(Rng& rng) const {
  assert(!weights_.empty());
  const size_t i = rng.Categorical(weights_);
  return specs_[i].Sample(rng);
}

ArrivalProcess::ArrivalProcess(double rate_per_hour, double diurnal_amplitude,
                               double weekly_amplitude, double weekly_phase)
    : rate_per_hour_(rate_per_hour),
      amplitude_(diurnal_amplitude),
      weekly_amplitude_(weekly_amplitude),
      weekly_phase_(weekly_phase) {
  assert(rate_per_hour > 0.0);
  assert(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0);
  assert(weekly_amplitude >= 0.0 && weekly_amplitude < 1.0);
}

void ArrivalProcess::AddBurst(int64_t start, int64_t end, double multiplier) {
  assert(end > start && multiplier > 0.0);
  bursts_.push_back({start, end, multiplier});
  max_burst_multiplier_ = std::max(max_burst_multiplier_, multiplier);
}

double ArrivalProcess::RateAt(int64_t t) const {
  double rate = rate_per_hour_;
  if (amplitude_ > 0.0) {
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(t % 86400) / 86400.0;
    // Peak load mid-day (phase shifted so t=0 is midnight).
    rate *= 1.0 + amplitude_ * std::sin(phase - std::numbers::pi / 2.0);
  }
  if (weekly_amplitude_ > 0.0) {
    constexpr int64_t kWeek = 7 * 86400;
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(t % kWeek) / kWeek;
    rate *= 1.0 + weekly_amplitude_ * std::sin(phase + weekly_phase_);
  }
  for (const Burst& burst : bursts_) {
    if (t >= burst.start && t < burst.end) {
      rate *= burst.multiplier;
    }
  }
  return rate;
}

int64_t ArrivalProcess::NextAfter(int64_t now, Rng& rng) const {
  const double max_rate = rate_per_hour_ * (1.0 + amplitude_) *
                          (1.0 + weekly_amplitude_) * max_burst_multiplier_;
  int64_t t = now;
  for (;;) {
    const double gap_hours = rng.Exponential(1.0 / max_rate);
    const auto gap_seconds = static_cast<int64_t>(gap_hours * 3600.0) + 1;
    t += gap_seconds;
    if (rng.Uniform() * max_rate <= RateAt(t)) {
      return t;
    }
  }
}

}  // namespace philly
