// Parameterized distributions fitted from the paper's published statistics.
//
// Table 7 gives runtime-to-failure percentiles (p50/p90/p95) per failure
// reason; Figure 2 gives heavy-tailed run-time CDFs. We fit two-parameter
// lognormals from (median, p90) pairs — the natural family for the "mostly
// short, occasionally week-long" populations the paper reports — and expose a
// few composable building blocks used by the workload generator.

#ifndef SRC_COMMON_DISTRIBUTIONS_H_
#define SRC_COMMON_DISTRIBUTIONS_H_

#include <cassert>
#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace philly {

// Inverse standard-normal CDF, p in (0, 1). Rational approximation with
// |error| < 1e-9 (Acklam); used for quantile computations and hash-seeded
// noise. Inline: the telemetry sampler draws one per synthetic per-minute
// observation, millions per analysis run.
inline double Probit(double p) {
  assert(p > 0.0 && p < 1.0);
  constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                          -2.759285104469687e+02, 1.383577518672690e+02,
                          -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                          -1.556989798598866e+02, 6.680131188771972e+01,
                          -1.328068155288572e+01};
  constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                          -2.400758277161838e+00, -2.549732539343734e+00,
                          4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                          2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

// Lognormal given by the underlying normal's (mu, sigma).
struct LognormalSpec {
  double mu = 0.0;
  double sigma = 1.0;

  // Fits mu/sigma so that the distribution's median and 90th percentile match
  // the given values. Requires 0 < median <= p90; a degenerate fit (sigma=0)
  // results when median == p90.
  static LognormalSpec FromMedianP90(double median, double p90);

  double Sample(Rng& rng) const { return rng.Lognormal(mu, sigma); }
  double Median() const;
  double Quantile(double p) const;
  double Mean() const;
};

// Mixture of lognormals with component weights; used for the multi-modal
// run-time population in Figure 2 (quick debugging runs vs. long production
// training).
class LognormalMixture {
 public:
  void AddComponent(double weight, LognormalSpec spec);

  double Sample(Rng& rng) const;
  bool Empty() const { return weights_.empty(); }

 private:
  std::vector<double> weights_;
  std::vector<LognormalSpec> specs_;
};

// Non-homogeneous Poisson arrival process. Rate is per hour and may be
// modulated by (a) a day-periodic sinusoid (day/night swings), (b) a
// week-periodic sinusoid with a per-stream phase (weekday/weekend and
// per-team cadence), and (c) transient multiplicative bursts — the
// "deadline push" episodes that build the heavy queueing-delay tails
// production clusters exhibit.
class ArrivalProcess {
 public:
  // `rate_per_hour` > 0; amplitudes in [0, 1).
  ArrivalProcess(double rate_per_hour, double diurnal_amplitude = 0.0,
                 double weekly_amplitude = 0.0, double weekly_phase = 0.0);

  // Multiplies the rate by `multiplier` (> 0) during [start, end).
  void AddBurst(int64_t start, int64_t end, double multiplier);

  // Next arrival strictly after `now` (seconds), via thinning.
  int64_t NextAfter(int64_t now, Rng& rng) const;

  double RateAt(int64_t t) const;  // instantaneous rate, per hour

 private:
  struct Burst {
    int64_t start = 0;
    int64_t end = 0;
    double multiplier = 1.0;
  };
  double rate_per_hour_;
  double amplitude_;
  double weekly_amplitude_;
  double weekly_phase_;
  double max_burst_multiplier_ = 1.0;
  std::vector<Burst> bursts_;
};

}  // namespace philly

#endif  // SRC_COMMON_DISTRIBUTIONS_H_
