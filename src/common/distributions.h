// Parameterized distributions fitted from the paper's published statistics.
//
// Table 7 gives runtime-to-failure percentiles (p50/p90/p95) per failure
// reason; Figure 2 gives heavy-tailed run-time CDFs. We fit two-parameter
// lognormals from (median, p90) pairs — the natural family for the "mostly
// short, occasionally week-long" populations the paper reports — and expose a
// few composable building blocks used by the workload generator.

#ifndef SRC_COMMON_DISTRIBUTIONS_H_
#define SRC_COMMON_DISTRIBUTIONS_H_

#include <vector>

#include "src/common/rng.h"

namespace philly {

// Inverse standard-normal CDF, p in (0, 1). Rational approximation with
// |error| < 1e-9; used for quantile computations and hash-seeded noise.
double Probit(double p);

// Lognormal given by the underlying normal's (mu, sigma).
struct LognormalSpec {
  double mu = 0.0;
  double sigma = 1.0;

  // Fits mu/sigma so that the distribution's median and 90th percentile match
  // the given values. Requires 0 < median <= p90; a degenerate fit (sigma=0)
  // results when median == p90.
  static LognormalSpec FromMedianP90(double median, double p90);

  double Sample(Rng& rng) const { return rng.Lognormal(mu, sigma); }
  double Median() const;
  double Quantile(double p) const;
  double Mean() const;
};

// Mixture of lognormals with component weights; used for the multi-modal
// run-time population in Figure 2 (quick debugging runs vs. long production
// training).
class LognormalMixture {
 public:
  void AddComponent(double weight, LognormalSpec spec);

  double Sample(Rng& rng) const;
  bool Empty() const { return weights_.empty(); }

 private:
  std::vector<double> weights_;
  std::vector<LognormalSpec> specs_;
};

// Non-homogeneous Poisson arrival process. Rate is per hour and may be
// modulated by (a) a day-periodic sinusoid (day/night swings), (b) a
// week-periodic sinusoid with a per-stream phase (weekday/weekend and
// per-team cadence), and (c) transient multiplicative bursts — the
// "deadline push" episodes that build the heavy queueing-delay tails
// production clusters exhibit.
class ArrivalProcess {
 public:
  // `rate_per_hour` > 0; amplitudes in [0, 1).
  ArrivalProcess(double rate_per_hour, double diurnal_amplitude = 0.0,
                 double weekly_amplitude = 0.0, double weekly_phase = 0.0);

  // Multiplies the rate by `multiplier` (> 0) during [start, end).
  void AddBurst(int64_t start, int64_t end, double multiplier);

  // Next arrival strictly after `now` (seconds), via thinning.
  int64_t NextAfter(int64_t now, Rng& rng) const;

  double RateAt(int64_t t) const;  // instantaneous rate, per hour

 private:
  struct Burst {
    int64_t start = 0;
    int64_t end = 0;
    double multiplier = 1.0;
  };
  double rate_per_hour_;
  double amplitude_;
  double weekly_amplitude_;
  double weekly_phase_;
  double max_burst_multiplier_ = 1.0;
  std::vector<Burst> bursts_;
};

}  // namespace philly

#endif  // SRC_COMMON_DISTRIBUTIONS_H_
