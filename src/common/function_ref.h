// Non-owning callable reference (the C++26 std::function_ref shape).
//
// Hot paths that accept a caller-provided callback — the utilization model's
// co-tenant resolver, the telemetry sampler's sink — previously took
// const std::function&, which forces callers to materialize a type-erased
// std::function per call (allocation for large captures, virtual dispatch
// always). FunctionRef erases through two raw words instead: a pointer to the
// caller's callable and a call thunk. It never owns or copies the callable,
// so it is only valid while the referenced callable is alive — fine for
// plain down-the-stack callback parameters, wrong for anything stored.

#ifndef SRC_COMMON_FUNCTION_REF_H_
#define SRC_COMMON_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace philly {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, const std::remove_cvref_t<F>&, Args...>>>
  FunctionRef(const F& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<const std::remove_cvref_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace philly

#endif  // SRC_COMMON_FUNCTION_REF_H_
