#include "src/common/json.h"

#include <cctype>
#include <cstdlib>

namespace philly {
namespace {

const std::string kEmptyString;
const std::vector<JsonValue> kEmptyArray;
const JsonValue kNullValue;

}  // namespace

bool JsonValue::AsBool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double JsonValue::AsNumber(double fallback) const {
  return type_ == Type::kNumber ? number_ : fallback;
}

const std::string& JsonValue::AsString() const {
  return type_ == Type::kString ? string_ : kEmptyString;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  return type_ == Type::kArray ? array_ : kEmptyArray;
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  if (type_ == Type::kObject) {
    const auto it = object_.find(key);
    if (it != object_.end()) {
      return it->second;
    }
  }
  return kNullValue;
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) {
    return array_.size();
  }
  if (type_ == Type::kObject) {
    return object_.size();
  }
  return 0;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse(std::string* error) {
    JsonValue value;
    if (!ParseValue(&value) || (SkipSpace(), pos_ != text_.size())) {
      if (error != nullptr && error->empty()) {
        *error = error_.empty() ? "trailing content at byte " + std::to_string(pos_)
                                : error_;
      }
      return JsonValue();
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        return ParseString(&out->string_) && ((out->type_ = JsonValue::Type::kString), true);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object_.emplace(std::move(key), std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array_.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u':
            // Unsupported escape: keep the raw text (identifiers in the
            // trace never use it).
            *out += "\\u";
            break;
          default:
            *out += esc;
            break;
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseLiteral(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = false;
      pos_ += 5;
      return true;
    }
    return Fail("invalid literal");
  }

  bool ParseNull(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      out->type_ = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return Fail("invalid literal");
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      return Fail("invalid number");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    pos_ += static_cast<size_t>(end - begin);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

JsonValue JsonValue::Parse(std::string_view text, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  JsonParser parser(text);
  return parser.Parse(error);
}

}  // namespace philly
