// Minimal JSON parser — just enough to read the public philly-traces
// cluster_job_log (objects, arrays, strings, numbers, booleans, null).
// Not a general-purpose JSON library: no \uXXXX surrogate pairs, numbers are
// parsed as double, input must fit in memory.

#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace philly {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // Typed accessors; return the fallback when the type does not match.
  bool AsBool(bool fallback = false) const;
  double AsNumber(double fallback = 0.0) const;
  const std::string& AsString() const;  // empty string when not a string
  const std::vector<JsonValue>& AsArray() const;    // empty when not an array
  // Object member lookup; returns a null value when absent or not an object.
  const JsonValue& operator[](std::string_view key) const;
  size_t size() const;

  // Parses a complete JSON document. Returns a null value and sets *error on
  // malformed input (error stays empty on success).
  static JsonValue Parse(std::string_view text, std::string* error = nullptr);

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

}  // namespace philly

#endif  // SRC_COMMON_JSON_H_
