#include "src/common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace philly {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
  // xoshiro must not start from the all-zero state; splitmix cannot produce
  // four zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng((*this)() ^ 0xA5A5A5A55A5A5A5Aull); }

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::Below(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = (*this)();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::Between(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::Lognormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for arrival
    // batching at simulation scale.
    const double x = Normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : static_cast<uint64_t>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= Uniform();
  } while (p > limit);
  return k - 1;
}

size_t Rng::Categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      total += w;
    }
  }
  assert(total > 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) {
      return i;
    }
    target -= w;
  }
  // Floating-point round-off: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) {
      return i - 1;
    }
  }
  return 0;
}

}  // namespace philly
