// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component in phillysim draws from an explicitly seeded Rng so
// that experiments are reproducible bit-for-bit given (seed, config). The engine
// is xoshiro256++ seeded through splitmix64; both are tiny, fast, and have no
// global state. Rng is cheap to copy and to Fork() into statistically
// independent child streams (one per job / per subsystem), which keeps results
// stable when unrelated parts of the simulation change their consumption order.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

namespace philly {

// xoshiro256++ engine with convenience sampling methods.
//
// Not thread-safe; use one Rng per logical stream. Satisfies the
// UniformRandomBitGenerator concept so it can also drive <random> if needed.
class Rng {
 public:
  using result_type = uint64_t;

  // Seeds the stream via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  // Next raw 64 random bits.
  uint64_t operator()();

  // Returns a child stream that is statistically independent of this one.
  // Advances this stream by one draw.
  Rng Fork();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Between(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (cached pair).
  double Normal();

  // Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Lognormal: exp(Normal(mu, sigma)). `mu`/`sigma` are the parameters of the
  // underlying normal (so the median is exp(mu)).
  double Lognormal(double mu, double sigma);

  // Exponential with the given mean (not rate). Requires mean > 0.
  double Exponential(double mean);

  // Pareto with scale x_m > 0 and shape alpha > 0.
  double Pareto(double x_m, double alpha);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  uint64_t Poisson(double mean);

  // Samples an index in [0, weights.size()) proportionally to `weights`.
  // Non-positive weights are treated as zero. Requires at least one positive
  // weight.
  size_t Categorical(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace philly

#endif  // SRC_COMMON_RNG_H_
