#include "src/common/sha256.h"

#include <array>
#include <cstdint>
#include <cstring>

namespace philly {
namespace {

constexpr std::array<uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t RotateRight(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void Compress(std::array<uint32_t, 8>& state, const unsigned char* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 = RotateRight(w[i - 15], 7) ^ RotateRight(w[i - 15], 18) ^
                        (w[i - 15] >> 3);
    const uint32_t s1 = RotateRight(w[i - 2], 17) ^ RotateRight(w[i - 2], 19) ^
                        (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 =
        RotateRight(e, 6) ^ RotateRight(e, 11) ^ RotateRight(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t temp1 = h + s1 + ch + kRoundConstants[static_cast<size_t>(i)] + w[i];
    const uint32_t s0 =
        RotateRight(a, 2) ^ RotateRight(a, 13) ^ RotateRight(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

std::string Sha256Hex(std::string_view data) {
  std::array<uint32_t, 8> state = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                   0xa54ff53a, 0x510e527f, 0x9b05688c,
                                   0x1f83d9ab, 0x5be0cd19};
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  size_t remaining = data.size();
  while (remaining >= 64) {
    Compress(state, bytes);
    bytes += 64;
    remaining -= 64;
  }
  // Final block(s): message tail, 0x80, zero padding, 64-bit big-endian
  // bit length.
  unsigned char tail[128] = {};
  std::memcpy(tail, bytes, remaining);
  tail[remaining] = 0x80;
  const size_t padded = remaining + 1 + 8 <= 64 ? 64 : 128;
  const uint64_t bit_length = static_cast<uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[padded - 8 + static_cast<size_t>(i)] =
        static_cast<unsigned char>(bit_length >> (56 - 8 * i));
  }
  Compress(state, tail);
  if (padded == 128) {
    Compress(state, tail + 64);
  }

  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(64);
  for (uint32_t word : state) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      hex.push_back(kHex[(word >> shift) & 0xF]);
    }
  }
  return hex;
}

}  // namespace philly
