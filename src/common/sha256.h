// Self-contained SHA-256 (FIPS 180-4) for stream-integrity digests in run
// manifests. Not a general crypto library: one-shot hashing of in-memory
// buffers is all the observability sinks need.

#ifndef SRC_COMMON_SHA256_H_
#define SRC_COMMON_SHA256_H_

#include <string>
#include <string_view>

namespace philly {

// Lower-case hex digest (64 characters) of `data`.
std::string Sha256Hex(std::string_view data);

}  // namespace philly

#endif  // SRC_COMMON_SHA256_H_
