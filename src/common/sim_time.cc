#include "src/common/sim_time.h"

#include <cstdio>

namespace philly {

std::string FormatDuration(SimDuration d) {
  const char* sign = "";
  if (d < 0) {
    sign = "-";
    d = -d;
  }
  const int64_t days = d / 86400;
  const int64_t hours = (d % 86400) / 3600;
  const int64_t mins = (d % 3600) / 60;
  const int64_t secs = d % 60;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld", sign,
                  static_cast<long long>(days), static_cast<long long>(hours),
                  static_cast<long long>(mins), static_cast<long long>(secs));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld", sign,
                  static_cast<long long>(hours), static_cast<long long>(mins),
                  static_cast<long long>(secs));
  }
  return buf;
}

}  // namespace philly
