// Simulation time.
//
// SimTime is an integral count of seconds since the start of the simulated
// trace window. Integral seconds keep event ordering exact and make the
// per-minute telemetry grid (Ganglia reports once a minute) trivial to align.

#ifndef SRC_COMMON_SIM_TIME_H_
#define SRC_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace philly {

// A point in simulated time, in whole seconds from trace start.
using SimTime = int64_t;

// A span of simulated time, in whole seconds.
using SimDuration = int64_t;

constexpr SimDuration Seconds(int64_t n) { return n; }
constexpr SimDuration Minutes(int64_t n) { return n * 60; }
constexpr SimDuration Hours(int64_t n) { return n * 3600; }
constexpr SimDuration Days(int64_t n) { return n * 86400; }

constexpr double ToMinutes(SimDuration d) { return static_cast<double>(d) / 60.0; }
constexpr double ToHours(SimDuration d) { return static_cast<double>(d) / 3600.0; }
constexpr double ToDays(SimDuration d) { return static_cast<double>(d) / 86400.0; }

constexpr SimTime kTimeNever = INT64_MAX;

// Renders a duration as a compact human string, e.g. "2d 03:15:42".
std::string FormatDuration(SimDuration d);

}  // namespace philly

#endif  // SRC_COMMON_SIM_TIME_H_
