#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace philly {

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ <= 0.0) {
    return;
  }
  if (count_ <= 0.0) {
    *this = other;
    return;
  }
  const double total = count_ + other.count_;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * count_ * other.count_ / total;
  mean_ += delta * other.count_ / total;
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Variance() const { return count_ > 0.0 ? m2_ / count_ : 0.0; }

double RunningStats::Stddev() const { return std::sqrt(Variance()); }

StreamingHistogram::StreamingHistogram(double lo, double hi, size_t bins, Scale scale)
    : lo_(lo), hi_(hi), scale_(scale), counts_(bins, 0.0) {
  assert(bins > 0);
  assert(hi > lo);
  if (scale_ == Scale::kLog) {
    assert(lo > 0.0);
    log_lo_ = std::log(lo_);
    log_hi_ = std::log(hi_);
  }
}

double StreamingHistogram::BinLowerEdge(size_t i) const {
  const double frac = static_cast<double>(i) / static_cast<double>(counts_.size());
  if (scale_ == Scale::kLinear) {
    return lo_ + frac * (hi_ - lo_);
  }
  return std::exp(log_lo_ + frac * (log_hi_ - log_lo_));
}

void StreamingHistogram::Merge(const StreamingHistogram& other) {
  assert(other.counts_.size() == counts_.size());
  assert(other.lo_ == lo_ && other.hi_ == hi_ && other.scale_ == scale_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  stats_.Merge(other.stats_);
}

double StreamingHistogram::Quantile(double p) const {
  const double total = stats_.Count();
  if (total <= 0.0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * total;
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    // Empty bins hold no mass and must never be the answer. The trigger is
    // strict (>) so a target landing exactly on a cumulative boundary
    // resolves to the lower edge of the next *populated* bin (within == 0)
    // instead of the shared edge of the bin before it — which, when empty
    // bins separate the two, is the lower edge of a bin holding nothing.
    if (counts_[i] <= 0.0) {
      continue;
    }
    if (cum + counts_[i] > target) {
      const double within = (target - cum) / counts_[i];
      const double lo = BinLowerEdge(i);
      const double hi = BinUpperEdge(i);
      // Clamp the interpolated value into the truly observed range so that
      // out-of-range clamping into edge bins cannot report impossible values.
      return std::clamp(lo + within * (hi - lo), stats_.Min(), stats_.Max());
    }
    cum += counts_[i];
  }
  return stats_.Max();
}

double StreamingHistogram::CdfAt(double x) const {
  const double total = stats_.Count();
  if (total <= 0.0) {
    return 0.0;
  }
  if (x < lo_) {
    return 0.0;
  }
  if (x >= hi_) {
    return 1.0;
  }
  const size_t idx = BinIndex(x);
  double cum = 0.0;
  for (size_t i = 0; i < idx; ++i) {
    cum += counts_[i];
  }
  const double lo = BinLowerEdge(idx);
  const double hi = BinUpperEdge(idx);
  const double frac = hi > lo ? (x - lo) / (hi - lo) : 1.0;
  cum += counts_[idx] * std::clamp(frac, 0.0, 1.0);
  return cum / total;
}

std::vector<StreamingHistogram::CdfPoint> StreamingHistogram::CdfSeries() const {
  std::vector<CdfPoint> out;
  const double total = stats_.Count();
  if (total <= 0.0) {
    return out;
  }
  out.reserve(counts_.size());
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    out.push_back({BinUpperEdge(i), cum / total});
  }
  return out;
}

Summary Summarize(const StreamingHistogram& h) {
  Summary s;
  s.count = h.Count();
  s.mean = h.Mean();
  s.p50 = h.Quantile(0.50);
  s.p90 = h.Quantile(0.90);
  s.p95 = h.Quantile(0.95);
  s.p99 = h.Quantile(0.99);
  s.min = h.Min();
  s.max = h.Max();
  return s;
}

namespace {

// Shared interpolation kernel so Percentile and Percentiles cannot drift.
double InterpolateSorted(const std::vector<double>& sorted, double p) {
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Percentile(std::span<const double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return InterpolateSorted(sorted, p);
}

std::vector<double> Percentiles(std::span<const double> samples,
                                std::span<const double> ps) {
  std::vector<double> out(ps.size(), 0.0);
  if (samples.empty()) {
    return out;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < ps.size(); ++i) {
    out[i] = InterpolateSorted(sorted, ps[i]);
  }
  return out;
}

Reservoir::Reservoir(size_t capacity, uint64_t seed)
    : capacity_(capacity), state_(seed ? seed : 1) {
  samples_.reserve(capacity);
}

void Reservoir::Add(double x) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // splitmix64 step for the replacement draw.
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const uint64_t j = z % seen_;
  if (j < capacity_) {
    samples_[static_cast<size_t>(j)] = x;
  }
}

}  // namespace philly
