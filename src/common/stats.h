// Streaming statistics used throughout the analysis pipeline.
//
// The paper's figures are CDFs and percentile tables over very large sample
// populations (per-minute GPU utilization at cluster scale is ~1e8 samples at
// full trace length). We therefore never materialize raw sample vectors in the
// steady state: accumulators here are O(1) per observation and O(bins) memory.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace philly {

// Welford mean/variance plus min/max, with optional observation weights.
// Add is defined inline: it sits in the innermost loop of the telemetry
// analyses (tens of millions of per-minute observations per run).
class RunningStats {
 public:
  void Add(double x, double weight = 1.0) {
    if (weight <= 0.0) {
      return;
    }
    count_ += weight;
    const double delta = x - mean_;
    mean_ += delta * weight / count_;
    m2_ += weight * delta * (x - mean_);
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }

  // Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  double Count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance of the weighted sample.
  double Variance() const;
  double Stddev() const;
  double Min() const { return count_ > 0 ? min_ : 0.0; }
  double Max() const { return count_ > 0 ? max_ : 0.0; }
  double Sum() const { return mean_ * count_; }

 private:
  double count_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bin streaming histogram supporting linear or logarithmic bin spacing.
// Percentiles are interpolated within bins, which is exact enough for the
// CDF-shaped results the paper reports (we use >= 200 bins everywhere).
class StreamingHistogram {
 public:
  enum class Scale { kLinear, kLog };

  // For kLog, `lo` must be > 0. Values outside [lo, hi] are clamped into the
  // first/last bin (and tracked exactly by RunningStats for mean/min/max).
  StreamingHistogram(double lo, double hi, size_t bins, Scale scale = Scale::kLinear);

  // Inline for the same reason as RunningStats::Add: this is the telemetry
  // analyses' per-observation sink.
  void Add(double x, double weight = 1.0) {
    if (weight <= 0.0) {
      return;
    }
    counts_[BinIndex(x)] += weight;
    stats_.Add(x, weight);
  }
  void Merge(const StreamingHistogram& other);

  double Count() const { return stats_.Count(); }
  double Mean() const { return stats_.Mean(); }
  double Min() const { return stats_.Min(); }
  double Max() const { return stats_.Max(); }
  const RunningStats& Stats() const { return stats_; }

  // Interpolated p-quantile, p in [0, 1]. Returns 0 for an empty histogram.
  double Quantile(double p) const;
  double Median() const { return Quantile(0.5); }

  // Fraction of observed mass with value <= x.
  double CdfAt(double x) const;

  // Returns (value, cumulative_fraction) pairs at bin upper edges, suitable
  // for plotting the CDF curves in the paper's figures.
  struct CdfPoint {
    double value = 0.0;
    double cumulative = 0.0;
  };
  std::vector<CdfPoint> CdfSeries() const;

  size_t NumBins() const { return counts_.size(); }
  double BinWeight(size_t i) const { return counts_[i]; }
  double BinLowerEdge(size_t i) const;
  double BinUpperEdge(size_t i) const { return BinLowerEdge(i + 1); }

 private:
  size_t BinIndex(double x) const {
    double frac = 0.0;
    if (scale_ == Scale::kLinear) {
      frac = (x - lo_) / (hi_ - lo_);
    } else {
      frac = x <= 0.0 ? -1.0 : (std::log(x) - log_lo_) / (log_hi_ - log_lo_);
    }
    if (frac <= 0.0) {
      return 0;
    }
    const auto idx = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
    return idx < counts_.size() - 1 ? idx : counts_.size() - 1;
  }

  double lo_;
  double hi_;
  Scale scale_;
  double log_lo_ = 0.0;
  double log_hi_ = 0.0;
  std::vector<double> counts_;
  RunningStats stats_;
};

// Convenience summary of a sample population.
struct Summary {
  double count = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary Summarize(const StreamingHistogram& h);

// Exact percentile of an explicit sample vector (sorts a copy; use only for
// small populations such as per-job aggregates). `p` in [0, 1]; linear
// interpolation between order statistics.
double Percentile(std::span<const double> samples, double p);

// Exact percentiles of an explicit sample vector, sorting the copy ONCE and
// evaluating every requested quantile against the same order statistics.
// Element i of the result equals Percentile(samples, ps[i]) bit-for-bit; use
// this whenever more than one quantile of the same population is needed.
std::vector<double> Percentiles(std::span<const double> samples,
                                std::span<const double> ps);

// Weighted reservoir of bounded size: keeps a uniform random subset of a
// stream (A-Res algorithm degenerates to uniform for equal weights). Used to
// keep representative raw samples for scatter-style figures (e.g. Figure 10)
// without unbounded memory.
class Reservoir {
 public:
  explicit Reservoir(size_t capacity, uint64_t seed = 1);

  void Add(double x);
  const std::vector<double>& Samples() const { return samples_; }
  uint64_t SeenCount() const { return seen_; }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  uint64_t state_;
  std::vector<double> samples_;
};

}  // namespace philly

#endif  // SRC_COMMON_STATS_H_
