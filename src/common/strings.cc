#include "src/common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace philly {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && is_space(s.front())) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(s.back())) {
    s.remove_suffix(1);
  }
  return s;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) {
    return true;
  }
  const auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [&](char a, char b) { return lower(a) == lower(b); });
  return it != haystack.end();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace philly
