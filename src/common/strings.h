// Small string helpers shared across modules.

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace philly {

// Splits on `sep`; keeps empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string_view> Split(std::string_view s, char sep);

// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool Contains(std::string_view haystack, std::string_view needle);

// Case-insensitive substring search (ASCII).
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// Formats a double with `digits` decimal places ("%.Nf").
std::string FormatDouble(double v, int digits = 2);

// Formats a fraction in [0,1] as a percentage string, e.g. 0.123 -> "12.3%".
std::string FormatPercent(double fraction, int digits = 1);

// Escapes `s` for use inside a double-quoted JSON string (no surrounding
// quotes added).
std::string JsonEscape(std::string_view s);

}  // namespace philly

#endif  // SRC_COMMON_STRINGS_H_
