#include "src/common/table.h"

#include <algorithm>
#include <sstream>

namespace philly {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back({std::move(row), pending_rule_});
  pending_rule_ = false;
}

void TextTable::AddRule() { pending_rule_ = true; }

std::string TextTable::Render() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) {
    cols = std::max(cols, row.cells.size());
  }
  std::vector<size_t> widths(cols, 0);
  const auto measure = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) {
    measure(row.cells);
  }

  std::ostringstream out;
  const auto emit_cells = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cols; ++i) {
      if (i > 0) {
        out << " | ";
      }
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << cell;
      out << std::string(widths[i] - cell.size(), ' ');
    }
    out << '\n';
  };
  const auto emit_rule = [&] {
    for (size_t i = 0; i < cols; ++i) {
      if (i > 0) {
        out << "-+-";
      }
      out << std::string(widths[i], '-');
    }
    out << '\n';
  };

  emit_cells(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.rule_before) {
      emit_rule();
    }
    emit_cells(row.cells);
  }
  return out.str();
}

}  // namespace philly
