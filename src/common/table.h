// Fixed-width ASCII table rendering for bench/report output.
//
// Every reproduction bench prints a paper-style table with `paper` vs
// `measured` columns; this renderer keeps that output aligned and uniform.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace philly {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Inserts a horizontal rule before the next added row.
  void AddRule();

  // Renders with a header rule and column padding, e.g.
  //   Job size | Passed | Killed
  //   ---------+--------+-------
  //   1 GPU    |  53.51 |  37.02
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace philly

#endif  // SRC_COMMON_TABLE_H_
