#include "src/core/analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/failure/failure_logs.h"
#include "src/telemetry/host_model.h"
#include "src/workload/loss_curve.h"

namespace philly {
namespace {

// Histogram shapes: the paper plots run times and delays on log axes from
// 10^-1 to 10^4+ minutes, and utilization linearly in percent.
StreamingHistogram MinutesLogHistogram() {
  return StreamingHistogram(0.02, 200000.0, 400, StreamingHistogram::Scale::kLog);
}
StreamingHistogram PercentHistogram() {
  return StreamingHistogram(0.0, 100.0, 200, StreamingHistogram::Scale::kLinear);
}
StreamingHistogram FractionHistogram() {
  return StreamingHistogram(0.0, 1.0, 200, StreamingHistogram::Scale::kLinear);
}

// Representative sizes for Fig 5 / Table 3.
int RepresentativeIndex(int num_gpus) {
  for (int i = 0; i < UtilizationResult::kNumRepresentative; ++i) {
    if (kRepresentativeSizes[i] == num_gpus) {
      return i;
    }
  }
  return -1;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

// ------------------------------------------------------------------- Fig 2

RunTimeResult::RunTimeResult()
    : cdf_minutes{MinutesLogHistogram(), MinutesLogHistogram(), MinutesLogHistogram(),
                  MinutesLogHistogram()} {}

RunTimeResult AnalyzeRunTimes(const std::vector<JobRecord>& jobs) {
  RunTimeResult result;
  int64_t over_week = 0;
  int64_t counted = 0;
  for (const auto& job : jobs) {
    const SimDuration run = job.TotalRunTime();
    if (run <= 0) {
      continue;
    }
    ++counted;
    const double minutes = ToMinutes(run);
    result.cdf_minutes[static_cast<size_t>(BucketOf(job.spec.num_gpus))].Add(minutes);
    if (minutes > 7.0 * 1440.0) {
      ++over_week;
    }
  }
  result.fraction_over_one_week =
      counted > 0 ? static_cast<double>(over_week) / counted : 0.0;
  return result;
}

// ------------------------------------------------------------------- Fig 3

QueueDelayResult::QueueDelayResult()
    : overall{MinutesLogHistogram(), MinutesLogHistogram(), MinutesLogHistogram(),
              MinutesLogHistogram()} {}

QueueDelayResult AnalyzeQueueDelays(const std::vector<JobRecord>& jobs) {
  QueueDelayResult result;
  for (const auto& job : jobs) {
    if (job.waits.empty()) {
      continue;
    }
    const double minutes = ToMinutes(job.InitialQueueDelay());
    const auto bucket = static_cast<size_t>(BucketOf(job.spec.num_gpus));
    auto it = result.by_vc.find(job.spec.vc);
    if (it == result.by_vc.end()) {
      it = result.by_vc
               .emplace(job.spec.vc, std::array<StreamingHistogram, kNumSizeBuckets>{
                                         MinutesLogHistogram(), MinutesLogHistogram(),
                                         MinutesLogHistogram(), MinutesLogHistogram()})
               .first;
    }
    it->second[bucket].Add(minutes);
    result.overall[bucket].Add(minutes);
  }
  return result;
}

// ------------------------------------------------------------------- Fig 4

LocalityDelayResult AnalyzeLocalityDelay(const std::vector<JobRecord>& jobs) {
  std::map<int, StreamingHistogram> five_eight;
  std::map<int, StreamingHistogram> gt_eight;
  for (const auto& job : jobs) {
    if (job.attempts.empty()) {
      continue;
    }
    const SizeBucket bucket = BucketOf(job.spec.num_gpus);
    if (bucket != SizeBucket::k5To8Gpu && bucket != SizeBucket::kGt8Gpu) {
      continue;
    }
    auto& target = bucket == SizeBucket::k5To8Gpu ? five_eight : gt_eight;
    const int servers = job.FirstPlacementServers();
    auto it = target.find(servers);
    if (it == target.end()) {
      it = target.emplace(servers, MinutesLogHistogram()).first;
    }
    it->second.Add(ToMinutes(job.InitialQueueDelay()));
  }
  LocalityDelayResult result;
  for (auto& [servers, hist] : five_eight) {
    result.five_to_eight.push_back(
        {servers, Summarize(hist), static_cast<int>(hist.Count())});
  }
  for (auto& [servers, hist] : gt_eight) {
    result.gt_eight.push_back(
        {servers, Summarize(hist), static_cast<int>(hist.Count())});
  }
  return result;
}

// ------------------------------------------------------------------ Table 2

DelayCauseResult AnalyzeDelayCauses(const std::vector<JobRecord>& jobs,
                                    const SimulationResult* sim) {
  DelayCauseResult result;
  double fair_time = 0.0;
  double frag_time = 0.0;
  std::array<int64_t, kNumSizeBuckets> overtaken_count = {};
  std::array<int64_t, kNumSizeBuckets> waited_count = {};

  for (const auto& job : jobs) {
    // Paper's filter: jobs that ran for at least one minute.
    if (job.TotalRunTime() < Minutes(1)) {
      continue;
    }
    const auto bucket = static_cast<size_t>(BucketOf(job.spec.num_gpus));
    for (const auto& wait : job.waits) {
      fair_time += static_cast<double>(wait.fair_share_time);
      frag_time += static_cast<double>(wait.fragmentation_time);
    }
    if (!job.waits.empty()) {
      switch (job.waits.front().DominantCause()) {
        case DelayCause::kFairShare:
          ++result.by_bucket[bucket].fair_share;
          break;
        case DelayCause::kFragmentation:
          ++result.by_bucket[bucket].fragmentation;
          break;
        case DelayCause::kNone:
          break;
      }
      if (job.waits.front().wait > 0) {
        ++waited_count[bucket];
        if (job.overtaken || job.started_out_of_order) {
          ++overtaken_count[bucket];
        }
      }
    }
  }
  const double total_time = fair_time + frag_time;
  if (total_time > 0) {
    result.fair_share_time_fraction = fair_time / total_time;
    result.fragmentation_time_fraction = frag_time / total_time;
  }
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    result.out_of_order_by_bucket[static_cast<size_t>(b)] =
        waited_count[static_cast<size_t>(b)] > 0
            ? static_cast<double>(overtaken_count[static_cast<size_t>(b)]) /
                  waited_count[static_cast<size_t>(b)]
            : 0.0;
  }
  if (sim != nullptr) {
    if (sim->scheduling_decisions > 0) {
      result.out_of_order_fraction =
          static_cast<double>(sim->out_of_order_decisions) / sim->scheduling_decisions;
    }
    if (sim->out_of_order_decisions > 0) {
      result.out_of_order_benign_fraction =
          static_cast<double>(sim->out_of_order_benign) / sim->out_of_order_decisions;
    }
    double empty_sum = 0.0;
    int empty_n = 0;
    double racks_sum = 0.0;
    int racks_n = 0;
    for (const auto& snap : sim->occupancy_snapshots) {
      if (snap.occupancy >= 0.60 && snap.occupancy <= 0.73) {
        empty_sum += snap.empty_server_fraction;
        ++empty_n;
      }
      racks_sum += snap.racks_with_empty_servers;
      ++racks_n;
    }
    result.empty_server_fraction_at_two_thirds = empty_n > 0 ? empty_sum / empty_n : 0.0;
    result.mean_racks_with_empty_servers = racks_n > 0 ? racks_sum / racks_n : 0.0;
  }
  return result;
}

// -------------------------------------------- Fig 5 / Table 3 / Fig 6 / Table 5

UtilizationResult::UtilizationResult()
    : by_status_size{{{PercentHistogram(), PercentHistogram(), PercentHistogram(),
                       PercentHistogram()},
                      {PercentHistogram(), PercentHistogram(), PercentHistogram(),
                       PercentHistogram()},
                      {PercentHistogram(), PercentHistogram(), PercentHistogram(),
                       PercentHistogram()}}},
      by_size{PercentHistogram(), PercentHistogram(), PercentHistogram(),
              PercentHistogram()},
      all(PercentHistogram()),
      dedicated_8gpu(PercentHistogram()),
      dedicated_16gpu(PercentHistogram()) {}

double UtilizationResult::MeanFor(JobStatus status, int size_index) const {
  return by_status_size[static_cast<size_t>(status)][static_cast<size_t>(size_index)]
      .Mean();
}

double UtilizationResult::MeanForSize(int size_index) const {
  return by_size[static_cast<size_t>(size_index)].Mean();
}

UtilizationResult AnalyzeUtilization(const std::vector<JobRecord>& jobs,
                                     SamplerConfig sampler_config, uint64_t seed) {
  UtilizationResult result;
  GangliaSampler sampler(sampler_config);
  for (const auto& job : jobs) {
    const int rep = RepresentativeIndex(job.spec.num_gpus);
    const double gpu_weight = job.spec.num_gpus;
    int segment_index = 0;
    for (const auto& segment : job.util_segments) {
      const uint64_t seg_seed =
          Mix64(seed ^ (static_cast<uint64_t>(job.spec.id) << 18) ^
                static_cast<uint64_t>(segment_index));
      ++segment_index;
      sampler.SampleSegment(
          segment.expected_util, segment.duration, seg_seed,
          [&](double value, double weight) {
            const double w = weight * gpu_weight;
            result.all.Add(value, w);
            if (rep >= 0) {
              result.by_size[static_cast<size_t>(rep)].Add(value, w);
              result
                  .by_status_size[static_cast<size_t>(job.status)]
                                 [static_cast<size_t>(rep)]
                  .Add(value, w);
            }
            if (job.spec.num_gpus == 8 && segment.num_servers == 1) {
              result.dedicated_8gpu.Add(value, w);
            }
            if (job.spec.num_gpus == 16) {
              if (segment.num_servers == 2) {
                result.dedicated_16gpu.Add(value, w);
              }
              auto it = result.sixteen_by_servers.find(segment.num_servers);
              if (it == result.sixteen_by_servers.end()) {
                it = result.sixteen_by_servers
                         .emplace(segment.num_servers, PercentHistogram())
                         .first;
              }
              it->second.Add(value, w);
            }
          });
    }
  }
  return result;
}

TelemetryDigest ComputeUtilDigest(const std::vector<JobRecord>& jobs,
                                  SamplerConfig sampler_config, uint64_t seed) {
  TelemetryDigest digest;
  GangliaSampler sampler(sampler_config);
  digest.jobs = static_cast<int64_t>(jobs.size());
  // Mirrors AnalyzeUtilization exactly — same per-segment seed, same sample
  // stream, same accumulation order — so writer and checker agree bitwise.
  for (const auto& job : jobs) {
    const int rep = RepresentativeIndex(job.spec.num_gpus);
    const double gpu_weight = job.spec.num_gpus;
    int segment_index = 0;
    for (const auto& segment : job.util_segments) {
      ++digest.segments;
      const uint64_t seg_seed =
          Mix64(seed ^ (static_cast<uint64_t>(job.spec.id) << 18) ^
                static_cast<uint64_t>(segment_index));
      ++segment_index;
      sampler.SampleSegment(
          segment.expected_util, segment.duration, seg_seed,
          [&](double value, double weight) {
            const double w = weight * gpu_weight;
            digest.util_weight[TelemetryDigest::kOverallClass] += w;
            digest.util_weighted_sum[TelemetryDigest::kOverallClass] +=
                value * w;
            if (rep >= 0) {
              digest.util_weight[static_cast<size_t>(rep)] += w;
              digest.util_weighted_sum[static_cast<size_t>(rep)] += value * w;
            }
          });
    }
  }
  return digest;
}

// ------------------------------------------------------------------- Fig 7

HostResourceResult::HostResourceResult()
    : cpu_util(PercentHistogram()), memory_util(PercentHistogram()) {}

HostResourceResult AnalyzeHostResources(const std::vector<JobRecord>& jobs,
                                        uint64_t seed) {
  HostResourceResult result;
  for (const auto& job : jobs) {
    const SimDuration run = job.TotalRunTime();
    if (run <= 0) {
      continue;
    }
    const HostActivity activity = HostActivityFor(job.spec, seed);
    const double weight = ToMinutes(run) * job.spec.num_gpus;
    result.cpu_util.Add(activity.cpu_fraction * 100.0, weight);
    result.memory_util.Add(activity.memory_fraction * 100.0, weight);
  }
  return result;
}

// ------------------------------------------------------------------ Table 6

StatusResult AnalyzeStatus(const std::vector<JobRecord>& jobs) {
  StatusResult result;
  for (const auto& job : jobs) {
    auto& row = result.by_status[static_cast<size_t>(job.status)];
    ++row.count;
    row.gpu_time_share += job.gpu_seconds;  // raw sum; normalized below
    ++result.total_jobs;
    result.total_gpu_seconds += job.gpu_seconds;
  }
  for (auto& row : result.by_status) {
    row.count_share =
        result.total_jobs > 0 ? static_cast<double>(row.count) / result.total_jobs : 0.0;
    row.gpu_time_share = result.total_gpu_seconds > 0
                             ? row.gpu_time_share / result.total_gpu_seconds
                             : 0.0;
  }
  return result;
}

// ------------------------------------------------------------------- Fig 8

ConvergenceResult::ConvergenceResult()
    : passed_lowest(FractionHistogram()),
      passed_within(FractionHistogram()),
      killed_lowest(FractionHistogram()),
      killed_within(FractionHistogram()) {}

ConvergenceResult AnalyzeConvergence(const std::vector<JobRecord>& jobs) {
  ConvergenceResult result;
  double passed_last_sum = 0.0;
  int64_t passed_n = 0;
  double killed_last_sum = 0.0;
  int64_t killed_n = 0;
  for (const auto& job : jobs) {
    if (!job.spec.logs_convergence || job.executed_epochs < 2) {
      continue;
    }
    if (job.status != JobStatus::kPassed && job.status != JobStatus::kKilled) {
      continue;
    }
    ++result.jobs_with_convergence_info;
    const LossCurve curve(job.spec.loss_curve, job.spec.planned_epochs,
                          LossCurveSeed(job.spec.id));
    const int executed = std::min(job.executed_epochs, job.spec.planned_epochs);
    const double denom = executed;
    const double lowest_frac = curve.BestEpoch(executed) / denom;
    const double within_frac = curve.FirstEpochWithin(0.001, executed) / denom;
    if (job.status == JobStatus::kPassed) {
      result.passed_lowest.Add(lowest_frac);
      result.passed_within.Add(within_frac);
      passed_last_sum += 1.0 - within_frac;
      ++passed_n;
    } else {
      result.killed_lowest.Add(lowest_frac);
      result.killed_within.Add(within_frac);
      killed_last_sum += 1.0 - within_frac;
      ++killed_n;
    }
  }
  result.passed_gpu_time_for_last_tenth_pct =
      passed_n > 0 ? passed_last_sum / passed_n : 0.0;
  result.killed_gpu_time_for_last_tenth_pct =
      killed_n > 0 ? killed_last_sum / killed_n : 0.0;
  return result;
}

// --------------------------------------------------------- per-VC load

VcLoadResult AnalyzeVcLoad(const std::vector<JobRecord>& jobs,
                           const std::vector<VcConfig>& vcs,
                           SimDuration sample_period) {
  VcLoadResult result;
  VcId max_vc = -1;
  SimTime horizon = 0;
  for (const auto& job : jobs) {
    max_vc = std::max(max_vc, job.spec.vc);
    horizon = std::max(horizon, job.finish_time);
    // Records assembled outside the simulator may not populate finish_time;
    // size the grid from attempt ends too so indexing stays in bounds.
    for (const auto& attempt : job.attempts) {
      horizon = std::max(horizon, attempt.end);
    }
  }
  if (max_vc < 0) {
    return result;
  }
  sample_period = std::max<SimDuration>(60, sample_period);
  const auto buckets = static_cast<size_t>(horizon / sample_period) + 1;
  const auto num_vcs = static_cast<size_t>(max_vc) + 1;

  // busy[vc][bucket] = GPU-seconds held in that bucket.
  std::vector<std::vector<double>> busy(num_vcs, std::vector<double>(buckets, 0.0));
  std::vector<VcLoadResult::Row> rows(num_vcs);
  for (size_t v = 0; v < num_vcs; ++v) {
    rows[v].vc = static_cast<VcId>(v);
    if (v < vcs.size()) {
      rows[v].quota_gpus = vcs[v].quota_gpus;
    }
  }

  for (const auto& job : jobs) {
    auto& row = rows[static_cast<size_t>(job.spec.vc)];
    ++row.jobs;
    row.mean_queue_delay_min += ToMinutes(job.InitialQueueDelay());
    for (const auto& wait : job.waits) {
      row.fair_share_delay_share += static_cast<double>(wait.fair_share_time);
      // fragmentation accumulated below via total; reuse field temporarily.
    }
    for (const auto& attempt : job.attempts) {
      if (attempt.prerun) {
        continue;
      }
      const int gpus = attempt.placement.NumGpus();
      SimTime t = attempt.start;
      SimDuration remaining = attempt.Duration();
      auto& series = busy[static_cast<size_t>(job.spec.vc)];
      while (remaining > 0) {
        const auto bucket = static_cast<size_t>(t / sample_period);
        const SimDuration bucket_end =
            static_cast<SimDuration>(bucket + 1) * sample_period;
        const SimDuration take = std::min<SimDuration>(remaining, bucket_end - t);
        series[bucket] += static_cast<double>(take) * gpus;
        t += take;
        remaining -= take;
      }
    }
  }

  // Second pass for the delay-share denominator.
  std::vector<double> total_delay(num_vcs, 0.0);
  for (const auto& job : jobs) {
    for (const auto& wait : job.waits) {
      total_delay[static_cast<size_t>(job.spec.vc)] +=
          static_cast<double>(wait.fair_share_time + wait.fragmentation_time);
    }
  }

  for (size_t v = 0; v < num_vcs; ++v) {
    auto& row = rows[v];
    double sum = 0.0;
    double peak = 0.0;
    int64_t over_quota = 0;
    for (size_t b = 0; b < buckets; ++b) {
      const double mean_gpus = busy[v][b] / static_cast<double>(sample_period);
      sum += mean_gpus;
      peak = std::max(peak, mean_gpus);
      if (row.quota_gpus > 0 && mean_gpus > row.quota_gpus) {
        ++over_quota;
      }
    }
    row.mean_busy_gpus = sum / static_cast<double>(buckets);
    row.peak_busy_gpus = peak;
    row.over_quota_time_share =
        static_cast<double>(over_quota) / static_cast<double>(buckets);
    row.mean_queue_delay_min =
        row.jobs > 0 ? row.mean_queue_delay_min / static_cast<double>(row.jobs) : 0.0;
    row.fair_share_delay_share =
        total_delay[v] > 0 ? row.fair_share_delay_share / total_delay[v] : 0.0;
  }
  result.rows = std::move(rows);
  return result;
}

// ------------------------------------------- Table 7 / Fig 9 / Fig 10

FailureAnalysisResult AnalyzeFailures(const std::vector<JobRecord>& jobs) {
  FailureAnalysisResult result;
  FailureClassifier classifier;

  struct ReasonAgg {
    std::vector<double> rtfs;  // minutes
    std::unordered_set<JobId> job_ids;
    std::unordered_set<UserId> user_ids;
    double rtf_sum = 0.0;
    double rtf_x_demand = 0.0;
  };
  std::array<ReasonAgg, kNumFailureReasons> agg;
  double rtf_total = 0.0;
  double rtf_x_demand_total = 0.0;

  std::array<double, kNumSizeBuckets> retries_sum = {};
  std::array<int64_t, kNumSizeBuckets> bucket_jobs = {};
  std::array<int64_t, kNumSizeBuckets> bucket_unsuccessful = {};
  double retries_all = 0.0;
  int64_t unsuccessful_all = 0;

  static constexpr FailureReason kScatterReasons[] = {
      FailureReason::kIncorrectInputs, FailureReason::kSemanticError,
      FailureReason::kModelCkptError, FailureReason::kMpiRuntimeFailure};

  for (const auto& job : jobs) {
    const auto bucket = static_cast<size_t>(BucketOf(job.spec.num_gpus));
    ++bucket_jobs[bucket];
    retries_sum[bucket] += job.NumRetries();
    retries_all += job.NumRetries();
    if (job.status == JobStatus::kUnsuccessful) {
      ++bucket_unsuccessful[bucket];
      ++unsuccessful_all;
    }
    for (const auto& attempt : job.attempts) {
      if (!attempt.failed) {
        continue;
      }
      const FailureReason reason = classifier.Classify(attempt.log_tail);
      const auto r = static_cast<size_t>(reason);
      auto& a = agg[r];
      const double rtf_min = ToMinutes(attempt.Duration());
      a.rtfs.push_back(rtf_min);
      a.job_ids.insert(job.spec.id);
      a.user_ids.insert(job.spec.user);
      a.rtf_sum += rtf_min;
      a.rtf_x_demand += rtf_min * job.spec.num_gpus;
      rtf_total += rtf_min;
      rtf_x_demand_total += rtf_min * job.spec.num_gpus;
      ++result.rows[r].demand[static_cast<size_t>(DemandBucketOf(job.spec.num_gpus))];
      for (FailureReason scatter_reason : kScatterReasons) {
        if (reason == scatter_reason) {
          auto& samples = result.rtf_demand_scatter[reason];
          if (samples.size() < 2000) {
            samples.emplace_back(job.spec.num_gpus, rtf_min);
          }
        }
      }
    }
  }

  for (int r = 0; r < kNumFailureReasons; ++r) {
    auto& row = result.rows[static_cast<size_t>(r)];
    auto& a = agg[static_cast<size_t>(r)];
    row.reason = static_cast<FailureReason>(r);
    row.trials = static_cast<int64_t>(a.rtfs.size());
    row.jobs = static_cast<int64_t>(a.job_ids.size());
    row.users = static_cast<int64_t>(a.user_ids.size());
    if (!a.rtfs.empty()) {
      constexpr double kRtfQuantiles[] = {0.50, 0.90, 0.95};
      const std::vector<double> q = Percentiles(a.rtfs, kRtfQuantiles);
      row.rtf_p50_min = q[0];
      row.rtf_p90_min = q[1];
      row.rtf_p95_min = q[2];
    }
    row.rtf_total_share = rtf_total > 0 ? a.rtf_sum / rtf_total : 0.0;
    row.rtf_x_demand_share =
        rtf_x_demand_total > 0 ? a.rtf_x_demand / rtf_x_demand_total : 0.0;
    result.total_trials += row.trials;
  }
  if (result.total_trials > 0) {
    result.no_signature_fraction =
        static_cast<double>(
            result.rows[static_cast<size_t>(FailureReason::kNoSignature)].trials) /
        result.total_trials;
  }

  for (int b = 0; b < kNumSizeBuckets; ++b) {
    const auto bi = static_cast<size_t>(b);
    if (bucket_jobs[bi] > 0) {
      result.mean_retries_by_bucket[bi] = retries_sum[bi] / bucket_jobs[bi];
      result.unsuccessful_rate_by_bucket[bi] =
          static_cast<double>(bucket_unsuccessful[bi]) / bucket_jobs[bi];
    }
  }
  if (!jobs.empty()) {
    result.mean_retries_all = retries_all / static_cast<double>(jobs.size());
    result.unsuccessful_rate_all =
        static_cast<double>(unsuccessful_all) / static_cast<double>(jobs.size());
  }

  // Top-8 repetition factors (mean of per-reason ratios, as in §4.2.2).
  std::vector<const FailureAnalysisResult::ReasonRow*> sorted;
  for (const auto& row : result.rows) {
    sorted.push_back(&row);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->trials > b->trials; });
  double job_ratio_sum = 0.0;
  double user_ratio_sum = 0.0;
  int top_n = 0;
  for (const auto* row : sorted) {
    if (top_n >= 8 || row->trials == 0) {
      break;
    }
    if (row->jobs > 0) {
      job_ratio_sum += static_cast<double>(row->trials) / row->jobs;
    }
    if (row->users > 0) {
      user_ratio_sum += static_cast<double>(row->trials) / row->users;
    }
    ++top_n;
  }
  if (top_n > 0) {
    result.top8_job_repetition = job_ratio_sum / top_n;
    result.top8_user_repetition = user_ratio_sum / top_n;
  }
  return result;
}

}  // namespace philly
