// The paper's analysis pipeline: every figure and table of the evaluation,
// computed from simulation logs (JobRecords = joined scheduler + framework +
// telemetry streams).
//
// Each AnalyzeX function consumes records and returns a plain result struct;
// rendering lives in src/core/report.h. The mapping to the paper:
//
//   AnalyzeRunTimes          -> Figure 2
//   AnalyzeQueueDelays       -> Figure 3
//   AnalyzeLocalityDelay     -> Figure 4
//   AnalyzeDelayCauses       -> Table 2 (+ §3.1.1 out-of-order & fragmentation)
//   AnalyzeUtilization       -> Figure 5, Table 3, Figure 6, Table 5
//   AnalyzeHostResources     -> Figure 7
//   AnalyzeStatus            -> Table 6
//   AnalyzeConvergence       -> Figure 8 (+ §4.1 GPU-time-for-last-0.1% stats)
//   AnalyzeFailures          -> Table 7, Figure 9, Figure 10

#ifndef SRC_CORE_ANALYSIS_H_
#define SRC_CORE_ANALYSIS_H_

#include <array>
#include <map>
#include <vector>

#include "src/common/stats.h"
#include "src/failure/failure_catalog.h"
#include "src/obs/rollup.h"
#include "src/sched/records.h"
#include "src/workload/generator.h"
#include "src/telemetry/sampler.h"

namespace philly {

// ---------------------------------------------------------------- Figure 2
struct RunTimeResult {
  // One CDF of run time (minutes) per GPU-demand bucket.
  std::array<StreamingHistogram, kNumSizeBuckets> cdf_minutes;
  double fraction_over_one_week = 0.0;

  RunTimeResult();
};
RunTimeResult AnalyzeRunTimes(const std::vector<JobRecord>& jobs);

// ---------------------------------------------------------------- Figure 3
struct QueueDelayResult {
  // vc -> per-bucket CDF of initial queueing delay (minutes).
  std::map<VcId, std::array<StreamingHistogram, kNumSizeBuckets>> by_vc;
  // Aggregate over all VCs.
  std::array<StreamingHistogram, kNumSizeBuckets> overall;

  QueueDelayResult();
};
QueueDelayResult AnalyzeQueueDelays(const std::vector<JobRecord>& jobs);

// ---------------------------------------------------------------- Figure 4
struct LocalityDelayResult {
  struct Cell {
    int num_servers = 0;
    Summary delay_minutes;  // distribution of queueing delay at this spread
    int count = 0;
  };
  std::vector<Cell> five_to_eight;  // 5-8 GPU jobs
  std::vector<Cell> gt_eight;       // >8 GPU jobs
};
LocalityDelayResult AnalyzeLocalityDelay(const std::vector<JobRecord>& jobs);

// ----------------------------------------------------------------- Table 2
struct DelayCauseResult {
  struct BucketCauses {
    int64_t fair_share = 0;
    int64_t fragmentation = 0;
    double FairShareFraction() const {
      const int64_t total = fair_share + fragmentation;
      return total > 0 ? static_cast<double>(fair_share) / total : 0.0;
    }
  };
  // Indexed by SizeBucket; the paper's table covers 2-4 / 5-8 / >8 only, and
  // filters to jobs that ran for at least one minute.
  std::array<BucketCauses, kNumSizeBuckets> by_bucket;
  // Waiting-time-weighted split across all jobs (paper: fragmentation is
  // ~80% of total waiting time).
  double fair_share_time_fraction = 0.0;
  double fragmentation_time_fraction = 0.0;
  // §3.1.1 out-of-order statistics.
  double out_of_order_fraction = 0.0;         // of all scheduling decisions
  double out_of_order_benign_fraction = 0.0;  // of out-of-order decisions
  std::array<double, kNumSizeBuckets> out_of_order_by_bucket = {};
  // §3.1.1 fragmentation prose facts, from occupancy snapshots nearest 2/3
  // occupancy.
  double empty_server_fraction_at_two_thirds = 0.0;
  double mean_racks_with_empty_servers = 0.0;
};
DelayCauseResult AnalyzeDelayCauses(const std::vector<JobRecord>& jobs,
                                    const SimulationResult* sim = nullptr);

// --------------------------------------------- Figure 5 / Table 3 / Fig 6 / Table 5
struct UtilizationResult {
  // Figure 5: per-minute GPU utilization (percent) CDFs for representative
  // sizes {1, 4, 8, 16} x final status.
  static constexpr int kNumRepresentative = 4;
  std::array<std::array<StreamingHistogram, kNumRepresentative>, 3> by_status_size;
  std::array<StreamingHistogram, kNumRepresentative> by_size;  // all statuses
  StreamingHistogram all;

  // Table 3: means are read off the histograms above.
  double MeanFor(JobStatus status, int size_index) const;
  double MeanForSize(int size_index) const;

  // Figure 6: dedicated-server comparison.
  StreamingHistogram dedicated_8gpu;   // 8-GPU jobs on one full server
  StreamingHistogram dedicated_16gpu;  // 16-GPU jobs on two full servers

  // Table 5: 16-GPU jobs by number of servers (2 / 4 / 8).
  std::map<int, StreamingHistogram> sixteen_by_servers;

  UtilizationResult();
};
UtilizationResult AnalyzeUtilization(const std::vector<JobRecord>& jobs,
                                     SamplerConfig sampler = {}, uint64_t seed = 17);

// Fills the job-derived half of a TelemetryDigest: exact Table 3 utilization
// aggregates (per representative size class plus overall), accumulated with
// the SAME per-segment sampling and iteration order as AnalyzeUtilization so
// two invocations over equal job records are bitwise-equal. This is the
// cross-check `phillyctl analyze --telemetry` runs against the digest the
// writer embedded in the telemetry stream.
TelemetryDigest ComputeUtilDigest(const std::vector<JobRecord>& jobs,
                                  SamplerConfig sampler = {}, uint64_t seed = 17);

// ---------------------------------------------------------------- Figure 7
struct HostResourceResult {
  StreamingHistogram cpu_util;     // percent of allocated CPU, job-time weighted
  StreamingHistogram memory_util;  // percent of allocated memory

  HostResourceResult();
};
HostResourceResult AnalyzeHostResources(const std::vector<JobRecord>& jobs,
                                        uint64_t seed = 23);

// ----------------------------------------------------------------- Table 6
struct StatusResult {
  struct Row {
    int64_t count = 0;
    double count_share = 0.0;
    double gpu_time_share = 0.0;
  };
  std::array<Row, 3> by_status;  // indexed by JobStatus
  int64_t total_jobs = 0;
  double total_gpu_seconds = 0.0;
};
StatusResult AnalyzeStatus(const std::vector<JobRecord>& jobs);

// ---------------------------------------------------------------- Figure 8
struct ConvergenceResult {
  // CDFs over the fraction of executed epochs needed to reach the lowest loss
  // and to come within 0.1% of it, for passed and killed jobs separately.
  StreamingHistogram passed_lowest;
  StreamingHistogram passed_within;
  StreamingHistogram killed_lowest;
  StreamingHistogram killed_within;
  // §4.1: average fraction of a job's GPU time spent improving the final 0.1%.
  double passed_gpu_time_for_last_tenth_pct = 0.0;
  double killed_gpu_time_for_last_tenth_pct = 0.0;
  int64_t jobs_with_convergence_info = 0;

  ConvergenceResult();
};
ConvergenceResult AnalyzeConvergence(const std::vector<JobRecord>& jobs);

// ----------------------------------- per-VC load (§2.3 / Figure 3 context)
struct VcLoadResult {
  struct Row {
    VcId vc = 0;
    int64_t jobs = 0;
    int quota_gpus = 0;              // from the config, if provided
    double mean_busy_gpus = 0.0;     // time-averaged GPUs held by this VC
    double peak_busy_gpus = 0.0;     // max over sample grid
    double over_quota_time_share = 0.0;  // fraction of sampled time above quota
    double mean_queue_delay_min = 0.0;
    double fair_share_delay_share = 0.0;  // of this VC's attributed delay time
  };
  std::vector<Row> rows;  // ordered by VC id
};
// `vcs` supplies quotas (may be empty); `sample_period` sets the averaging
// grid for busy-GPU time series.
VcLoadResult AnalyzeVcLoad(const std::vector<JobRecord>& jobs,
                           const std::vector<VcConfig>& vcs,
                           SimDuration sample_period = Hours(1));

// ----------------------------------------- Table 7 / Figure 9 / Figure 10
struct FailureAnalysisResult {
  struct ReasonRow {
    FailureReason reason = FailureReason::kNoSignature;
    int64_t trials = 0;
    int64_t jobs = 0;
    int64_t users = 0;
    double rtf_p50_min = 0.0;
    double rtf_p90_min = 0.0;
    double rtf_p95_min = 0.0;
    double rtf_total_share = 0.0;  // share of summed RTF across all failures
    std::array<int64_t, kNumDemandBuckets> demand = {0, 0, 0};
    double rtf_x_demand_share = 0.0;
  };
  std::array<ReasonRow, kNumFailureReasons> rows;  // indexed by classified reason
  int64_t total_trials = 0;
  double no_signature_fraction = 0.0;

  // Figure 9.
  std::array<double, kNumSizeBuckets> mean_retries_by_bucket = {};
  std::array<double, kNumSizeBuckets> unsuccessful_rate_by_bucket = {};
  double mean_retries_all = 0.0;
  double unsuccessful_rate_all = 0.0;

  // Figure 10: (gpu_demand, rtf_minutes) scatter samples for the four most
  // RTF-dominant reasons.
  std::map<FailureReason, std::vector<std::pair<int, double>>> rtf_demand_scatter;

  // Aggregate repetition factors over the top-8 reasons by trials (paper:
  // 2.3 per job, 38.8 per user).
  double top8_job_repetition = 0.0;
  double top8_user_repetition = 0.0;
};
FailureAnalysisResult AnalyzeFailures(const std::vector<JobRecord>& jobs);

}  // namespace philly

#endif  // SRC_CORE_ANALYSIS_H_
