#include "src/core/event_join.h"

#include <unordered_map>
#include <utility>

namespace philly {
namespace {

void SetError(std::string* error, const SchedEvent& event, const char* what) {
  if (error != nullptr && error->empty()) {
    *error = std::string(what) + " (event '" + std::string(ToString(event.kind)) +
             "' for job " + std::to_string(event.job) + " at t=" +
             std::to_string(event.time) + ")";
  }
}

}  // namespace

SimulationResult JoinSchedulerEvents(const std::vector<SchedEvent>& events,
                                     std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  SimulationResult result;
  std::unordered_map<JobId, size_t> index;

  const auto find_job = [&](const SchedEvent& e) -> JobRecord* {
    const auto it = index.find(e.job);
    if (it == index.end()) {
      SetError(error, e, "event for a job that was never submitted");
      return nullptr;
    }
    return &result.jobs[it->second];
  };
  // Closes the job's open attempt at the event's timestamp, copying the
  // attempt-outcome flags the closing event carries.
  const auto close_attempt = [&](JobRecord& job, const SchedEvent& e) {
    if (e.attempt < 0) {
      return;
    }
    if (job.attempts.empty() || job.attempts.back().index != e.attempt) {
      SetError(error, e, "closing event does not match the open attempt");
      return;
    }
    AttemptRecord& attempt = job.attempts.back();
    attempt.end = e.time;
    attempt.failed = e.failed;
    attempt.preempted = e.preempted;
    attempt.machine_fault = e.machine_fault;
    if (attempt.prerun) {
      result.prerun_gpu_seconds += static_cast<double>(attempt.Duration());
      if (attempt.failed) {
        ++result.prerun_catches;
      }
    }
  };

  for (const SchedEvent& e : events) {
    switch (e.kind) {
      case SchedEventKind::kSubmit: {
        if (index.count(e.job) != 0) {
          SetError(error, e, "job submitted twice");
          break;
        }
        JobRecord job;
        job.spec.id = e.job;
        job.spec.vc = e.vc;
        job.spec.user = e.user;
        job.spec.num_gpus = e.gpus;
        job.spec.submit_time = e.time;
        index.emplace(e.job, result.jobs.size());
        result.jobs.push_back(std::move(job));
        break;
      }
      case SchedEventKind::kQueued:
      case SchedEventKind::kLocalityRelax:
      case SchedEventKind::kBackoff:
      case SchedEventKind::kRoute:
        // Queue entries, pass mechanics, and fleet routing decisions carry no
        // record state; they exist for timeline inspection. (Route events
        // live in the fleet-level stream, not a cluster's scheduler stream,
        // but a reader that concatenates them must still not trip here.)
        break;
      case SchedEventKind::kSchedule: {
        JobRecord* job = find_job(e);
        if (job == nullptr) {
          break;
        }
        WaitRecord wait;
        wait.ready_time = e.ready_time;
        wait.wait = e.wait;
        wait.fair_share_time = e.fair_share_time;
        wait.fragmentation_time = e.fragmentation_time;
        wait.sched_attempts = e.sched_attempts;
        job->waits.push_back(wait);
        AttemptRecord attempt;
        attempt.index = e.attempt;
        attempt.start = e.time;
        attempt.end = e.time;  // closed by the matching requeue/complete
        if (e.detail == "prerun") {
          attempt.prerun = true;
          ++result.prerun_jobs;
        } else {
          attempt.placement = DecodePlacement(e.placement);
        }
        if (static_cast<int>(job->attempts.size()) != e.attempt) {
          SetError(error, e, "attempt index out of sequence");
        }
        job->attempts.push_back(std::move(attempt));
        if (e.detail == "pass") {
          ++result.scheduling_decisions;
          if (e.out_of_order) {
            ++result.out_of_order_decisions;
            job->started_out_of_order = true;
            job->out_of_order_benign = e.benign;
            if (e.benign) {
              ++result.out_of_order_benign;
            }
          }
        }
        break;
      }
      case SchedEventKind::kPreempt: {
        if (find_job(e) == nullptr) {
          break;
        }
        if (e.detail == "fairshare") {
          ++result.preemptions;
        } else if (e.detail == "priority") {
          ++result.priority_preemptions;
        }
        // Timeslice suspensions have no dedicated counter; the requeue that
        // follows closes the attempt.
        break;
      }
      case SchedEventKind::kMigrate: {
        if (find_job(e) == nullptr) {
          break;
        }
        ++result.migrations;
        break;
      }
      case SchedEventKind::kFaultKill: {
        if (find_job(e) == nullptr) {
          break;
        }
        ++result.machine_fault_kills;
        result.machine_fault_lost_gpu_seconds += e.lost_gpu_seconds;
        break;
      }
      case SchedEventKind::kRequeue: {
        JobRecord* job = find_job(e);
        if (job == nullptr) {
          break;
        }
        close_attempt(*job, e);
        break;
      }
      case SchedEventKind::kComplete: {
        JobRecord* job = find_job(e);
        if (job == nullptr) {
          break;
        }
        close_attempt(*job, e);
        if (e.status < 0 || e.status > static_cast<int>(JobStatus::kUnsuccessful)) {
          SetError(error, e, "completion carries an unknown status");
          break;
        }
        job->status = static_cast<JobStatus>(e.status);
        job->finish_time = e.time;
        job->started_out_of_order = e.started_out_of_order;
        // The record default is benign=true; the event carries the flag only
        // for jobs that actually started out of order.
        job->out_of_order_benign =
            !e.started_out_of_order || e.out_of_order_benign;
        job->overtaken = e.overtaken;
        break;
      }
      case SchedEventKind::kCkptBegin:
      case SchedEventKind::kCkptEnd:
      case SchedEventKind::kCkptStall:
        // Checkpoint I/O timeline markers; the stall/overhead accounting they
        // mirror lives in SimulationResult counters, not per-job records.
        break;
    }
  }

  for (JobRecord& job : result.jobs) {
    double gpu_seconds = 0.0;
    for (const AttemptRecord& attempt : job.attempts) {
      gpu_seconds += attempt.GpuTime();
    }
    job.gpu_seconds = gpu_seconds;
  }
  return result;
}

}  // namespace philly
