// Rebuilds simulation results from the scheduler event stream alone.
//
// The paper's pipeline works from logs, not from the scheduler's memory: its
// analyses join the YARN scheduler log with framework and telemetry streams.
// JoinSchedulerEvents is that join for our event log — it replays an NDJSON
// scheduler stream (src/obs/event_log.h) into JobRecords and decision
// counters, so Fig. 3 queueing-delay CDFs and the Table 2 delay-cause split
// can be recomputed without the original SimulationResult. Round-trip tests
// assert the rebuilt records agree with the native ones.
//
// Not reconstructible from scheduler events (left at defaults): utilization
// segments and executed-epoch counts (telemetry/framework streams), log
// tails, occupancy snapshots, and cluster-level fault tallies other than
// kills/lost GPU-time.

#ifndef SRC_CORE_EVENT_JOIN_H_
#define SRC_CORE_EVENT_JOIN_H_

#include <string>
#include <vector>

#include "src/obs/event_log.h"
#include "src/sched/records.h"

namespace philly {

// Replays `events` (in stream order) into a SimulationResult. Malformed
// streams — an event for a job never submitted, an attempt index that does
// not match — are reported through *error (first problem wins); the join
// still returns everything it could rebuild.
SimulationResult JoinSchedulerEvents(const std::vector<SchedEvent>& events,
                                     std::string* error = nullptr);

}  // namespace philly

#endif  // SRC_CORE_EVENT_JOIN_H_
