#include "src/core/experiment.h"

#include <chrono>
#include <vector>

#include "src/obs/trace_profiler.h"

namespace philly {

ExperimentConfig ExperimentConfig::PaperScale(uint64_t seed) {
  ExperimentConfig c;
  c.workload = WorkloadConfig::PaperScale();
  c.workload.seed = seed;
  c.simulation.vcs = c.workload.vcs;
  c.simulation.seed = seed;
  return c;
}

ExperimentConfig ExperimentConfig::BenchScale(int days, uint64_t seed) {
  ExperimentConfig c = PaperScale(seed);
  c.workload.duration = Days(days);
  return c;
}

ExperimentRun RunExperiment(const ExperimentConfig& config) {
  const ObservabilityConfig& obs = config.simulation.obs;
  ScopedTimer experiment_timer(obs.profiler, "experiment");
  std::vector<JobSpec> jobs;
  {
    ScopedTimer generate_timer(obs.profiler, "generate");
    WorkloadGenerator generator(config.workload);
    jobs = generator.Generate();
  }
  ExperimentRun run;
  run.config = config;
  run.num_jobs = static_cast<int64_t>(jobs.size());
  ClusterSimulation sim(config.simulation, std::move(jobs));
  {
    ScopedTimer simulate_timer(obs.profiler, "simulate");
    if (obs.metrics != nullptr) {
      const auto wall_start = std::chrono::steady_clock::now();
      run.result = sim.Run();
      const double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (wall_seconds > 0.0) {
        obs.metrics->GetHistogram("sim.events_per_sec")
            ->Observe(static_cast<double>(run.result.sim_events_processed) /
                      wall_seconds);
      }
    } else {
      run.result = sim.Run();
    }
  }
  return run;
}

}  // namespace philly
