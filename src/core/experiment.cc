#include "src/core/experiment.h"

namespace philly {

ExperimentConfig ExperimentConfig::PaperScale(uint64_t seed) {
  ExperimentConfig c;
  c.workload = WorkloadConfig::PaperScale();
  c.workload.seed = seed;
  c.simulation.vcs = c.workload.vcs;
  c.simulation.seed = seed;
  return c;
}

ExperimentConfig ExperimentConfig::BenchScale(int days, uint64_t seed) {
  ExperimentConfig c = PaperScale(seed);
  c.workload.duration = Days(days);
  return c;
}

ExperimentRun RunExperiment(const ExperimentConfig& config) {
  WorkloadGenerator generator(config.workload);
  auto jobs = generator.Generate();
  ExperimentRun run;
  run.config = config;
  run.num_jobs = static_cast<int64_t>(jobs.size());
  ClusterSimulation sim(config.simulation, std::move(jobs));
  run.result = sim.Run();
  return run;
}

}  // namespace philly
