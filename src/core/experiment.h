// Experiment driver: generate a workload, simulate it, and hand the logs to
// the analyses. Every bench and example goes through this so scale/seed
// handling is uniform.

#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <string>

#include "src/sched/simulation.h"
#include "src/workload/generator.h"

namespace philly {

struct ExperimentConfig {
  WorkloadConfig workload;
  SimulationConfig simulation;

  // The full paper-scale run: 75 days, ~96k jobs, 1600 GPUs.
  static ExperimentConfig PaperScale(uint64_t seed = 42);

  // Default bench/test scale: `days` of arrivals at paper rates with the
  // warm-start cohort, so steady-state behaviour shows up immediately.
  static ExperimentConfig BenchScale(int days = 10, uint64_t seed = 42);
};

struct ExperimentRun {
  ExperimentConfig config;
  SimulationResult result;
  int64_t num_jobs = 0;
};

// Generates, simulates, and returns the logs. Deterministic per config.
ExperimentRun RunExperiment(const ExperimentConfig& config);

}  // namespace philly

#endif  // SRC_CORE_EXPERIMENT_H_
