#include "src/core/html_report.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/core/analysis.h"
#include "src/core/span_analysis.h"
#include "src/obs/rollup.h"
#include "src/workload/job.h"

namespace philly {
namespace {

// Fixed chart geometry; every chart shares it so the page lines up.
constexpr double kWidth = 640.0;
constexpr double kHeight = 260.0;
constexpr double kPadLeft = 56.0;
constexpr double kPadRight = 16.0;
constexpr double kPadTop = 28.0;
constexpr double kPadBottom = 40.0;

const char* const kPalette[] = {"#2563eb", "#dc2626", "#059669", "#d97706",
                                "#7c3aed", "#0891b2"};

std::string HtmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// Short presentation-only number format (charts, tiles); NOT the round-trip
// codec the NDJSON streams use.
std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

struct Series {
  std::string label;
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void Cover(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool Valid() const { return lo <= hi; }
};

// A multi-line chart with axes, tick labels, and a legend. Degenerate ranges
// (single point, empty series) are widened so the math stays finite.
std::string LineChartSvg(const std::string& title, const std::vector<Series>& series,
                         const std::string& x_label, const std::string& y_label) {
  Range xr;
  Range yr;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      xr.Cover(x);
      yr.Cover(y);
    }
  }
  if (!xr.Valid()) {
    xr = {0.0, 1.0};
  }
  if (!yr.Valid()) {
    yr = {0.0, 1.0};
  }
  if (xr.hi == xr.lo) {
    xr.hi = xr.lo + 1.0;
  }
  if (yr.hi == yr.lo) {
    yr.hi = yr.lo + 1.0;
  }
  const double plot_w = kWidth - kPadLeft - kPadRight;
  const double plot_h = kHeight - kPadTop - kPadBottom;
  const auto px = [&](double x) {
    return kPadLeft + (x - xr.lo) / (xr.hi - xr.lo) * plot_w;
  };
  const auto py = [&](double y) {
    return kPadTop + plot_h - (y - yr.lo) / (yr.hi - yr.lo) * plot_h;
  };

  std::ostringstream out;
  // Inline SVG in an HTML document needs no xmlns (the parser namespaces
  // <svg> itself), and omitting it keeps the file free of any URL at all.
  out << "<svg viewBox=\"0 0 " << kWidth << " " << kHeight
      << "\" role=\"img\">\n";
  out << "<text x=\"" << kWidth / 2 << "\" y=\"16\" class=\"ct\">"
      << HtmlEscape(title) << "</text>\n";
  // Frame + gridlines with tick labels (5 ticks per axis).
  out << "<rect x=\"" << kPadLeft << "\" y=\"" << kPadTop << "\" width=\""
      << plot_w << "\" height=\"" << plot_h << "\" class=\"frame\"/>\n";
  for (int i = 0; i <= 4; ++i) {
    const double fx = xr.lo + (xr.hi - xr.lo) * i / 4.0;
    const double fy = yr.lo + (yr.hi - yr.lo) * i / 4.0;
    out << "<line x1=\"" << px(fx) << "\" y1=\"" << kPadTop << "\" x2=\""
        << px(fx) << "\" y2=\"" << kPadTop + plot_h << "\" class=\"grid\"/>\n";
    out << "<line x1=\"" << kPadLeft << "\" y1=\"" << py(fy) << "\" x2=\""
        << kPadLeft + plot_w << "\" y2=\"" << py(fy) << "\" class=\"grid\"/>\n";
    out << "<text x=\"" << px(fx) << "\" y=\"" << kHeight - kPadBottom + 16
        << "\" class=\"tick\">" << Num(fx) << "</text>\n";
    out << "<text x=\"" << kPadLeft - 6 << "\" y=\"" << py(fy) + 4
        << "\" class=\"tick ty\">" << Num(fy) << "</text>\n";
  }
  out << "<text x=\"" << kPadLeft + plot_w / 2 << "\" y=\"" << kHeight - 6
      << "\" class=\"al\">" << HtmlEscape(x_label) << "</text>\n";
  out << "<text x=\"14\" y=\"" << kPadTop + plot_h / 2
      << "\" class=\"al\" transform=\"rotate(-90 14 " << kPadTop + plot_h / 2
      << ")\">" << HtmlEscape(y_label) << "</text>\n";

  for (size_t i = 0; i < series.size(); ++i) {
    const char* color = kPalette[i % (sizeof(kPalette) / sizeof(kPalette[0]))];
    out << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"1.5\" points=\"";
    for (const auto& [x, y] : series[i].points) {
      out << Num(px(x)) << ',' << Num(py(y)) << ' ';
    }
    out << "\"/>\n";
    // Legend swatch + label, top-right, one row per series.
    const double ly = kPadTop + 12 + 14.0 * static_cast<double>(i);
    out << "<rect x=\"" << kWidth - kPadRight - 130 << "\" y=\"" << ly - 8
        << "\" width=\"10\" height=\"3\" fill=\"" << color << "\"/>\n";
    out << "<text x=\"" << kWidth - kPadRight - 116 << "\" y=\"" << ly - 3
        << "\" class=\"lg\">" << HtmlEscape(series[i].label) << "</text>\n";
  }
  out << "</svg>\n";
  return out.str();
}

// Horizontal bar chart (the Fig 1 lifecycle funnel).
std::string BarChartSvg(const std::string& title,
                        const std::vector<std::pair<std::string, int64_t>>& rows) {
  int64_t max_count = 1;
  for (const auto& [label, count] : rows) {
    max_count = std::max(max_count, count);
  }
  const double row_h = 22.0;
  const double height = kPadTop + row_h * static_cast<double>(rows.size()) + 12.0;
  const double label_w = 120.0;
  const double plot_w = kWidth - label_w - kPadRight - 60.0;

  std::ostringstream out;
  out << "<svg viewBox=\"0 0 " << kWidth << " " << height
      << "\" role=\"img\">\n";
  out << "<text x=\"" << kWidth / 2 << "\" y=\"16\" class=\"ct\">"
      << HtmlEscape(title) << "</text>\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const double y = kPadTop + row_h * static_cast<double>(i);
    const double w =
        plot_w * static_cast<double>(rows[i].second) / static_cast<double>(max_count);
    out << "<text x=\"" << label_w - 6 << "\" y=\"" << y + 14
        << "\" class=\"tick ty\">" << HtmlEscape(rows[i].first) << "</text>\n";
    out << "<rect x=\"" << label_w << "\" y=\"" << y + 4 << "\" width=\""
        << std::max(w, 0.5) << "\" height=\"14\" fill=\"" << kPalette[0]
        << "\"/>\n";
    out << "<text x=\"" << label_w + std::max(w, 0.5) + 6 << "\" y=\"" << y + 14
        << "\" class=\"lg\">" << rows[i].second << "</text>\n";
  }
  out << "</svg>\n";
  return out.str();
}

Series CdfSeriesOf(const StreamingHistogram& hist, const std::string& label,
                   bool log10_x) {
  Series s;
  s.label = label;
  for (const auto& point : hist.CdfSeries()) {
    const double x = log10_x ? std::log10(std::max(point.value, 1e-3)) : point.value;
    s.points.emplace_back(x, point.cumulative);
  }
  return s;
}

void SummaryTile(std::ostringstream& out, const std::string& label,
                 const std::string& value) {
  out << "<div class=\"tile\"><div class=\"tv\">" << HtmlEscape(value)
      << "</div><div class=\"tl\">" << HtmlEscape(label) << "</div></div>\n";
}

}  // namespace

std::string RenderHtmlDashboard(const HtmlDashboardInput& input) {
  static const std::vector<TelemetrySample> kNoSamples;
  const std::vector<TelemetrySample>& samples =
      input.samples != nullptr ? *input.samples : kNoSamples;

  TelemetryRollup rollup(input.rollup_window);
  rollup.AddAll(samples);

  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      << "<title>" << HtmlEscape(input.title) << "</title>\n"
      << "<style>\n"
      << "body{font-family:system-ui,sans-serif;margin:24px;color:#111}\n"
      << "h1{font-size:20px}h2{font-size:16px;margin-top:28px}\n"
      << ".tiles{display:flex;flex-wrap:wrap;gap:12px}\n"
      << ".tile{border:1px solid #ddd;border-radius:6px;padding:10px 16px;"
      << "min-width:110px}\n"
      << ".tv{font-size:20px;font-weight:600}.tl{font-size:12px;color:#666}\n"
      << ".charts{display:flex;flex-wrap:wrap;gap:16px}\n"
      << "svg{max-width:660px;border:1px solid #eee;border-radius:6px}\n"
      << ".ct{font-size:13px;font-weight:600;text-anchor:middle}\n"
      << ".tick{font-size:10px;fill:#555;text-anchor:middle}\n"
      << ".ty{text-anchor:end}\n.al{font-size:11px;fill:#333;text-anchor:middle}\n"
      << ".lg{font-size:10px;fill:#333}\n"
      << ".frame{fill:none;stroke:#999}\n.grid{stroke:#eee}\n"
      << "table{border-collapse:collapse;margin:8px 0}\n"
      << "th,td{border:1px solid #ddd;padding:4px 10px;font-size:12px;"
      << "text-align:right}\nth{background:#f5f5f5}td:first-child,"
      << "th:first-child{text-align:left}\n"
      << "</style>\n</head>\n<body>\n"
      << "<h1>" << HtmlEscape(input.title) << "</h1>\n";

  // ---- summary tiles ----
  out << "<div class=\"tiles\">\n";
  SummaryTile(out, "telemetry samples", std::to_string(samples.size()));
  double peak_occ = 0.0;
  int64_t queue_max = 0;
  for (const TelemetrySample& s : samples) {
    peak_occ = std::max(peak_occ, s.occupancy);
    queue_max = std::max<int64_t>(queue_max, s.queued_jobs);
  }
  SummaryTile(out, "peak occupancy", Num(peak_occ * 100.0) + "%");
  SummaryTile(out, "peak queue depth", std::to_string(queue_max));
  SummaryTile(out, "median util (observed)",
              Num(rollup.util_observed_pct().Quantile(0.5)) + "%");
  if (!samples.empty()) {
    const TelemetrySample& last = samples.back();
    SummaryTile(out, "locality relaxations",
                std::to_string(last.locality_relaxations));
    SummaryTile(out, "scheduler backoffs", std::to_string(last.backoffs));
    SummaryTile(out, "preemptions", std::to_string(last.preemptions));
    SummaryTile(out, "fault kills", std::to_string(last.fault_kills));
  }
  if (input.jobs != nullptr) {
    SummaryTile(out, "jobs", std::to_string(input.jobs->size()));
  }
  out << "</div>\n";

  // ---- time series from the rollup ----
  out << "<h2>Cluster time series</h2>\n<div class=\"charts\">\n";
  {
    Series occ{"occupancy %", {}};
    Series exp{"util expected %", {}};
    Series obs{"util observed %", {}};
    for (const auto& [start, w] : rollup.windows()) {
      const double days = static_cast<double>(start) / static_cast<double>(Hours(24));
      occ.points.emplace_back(days, w.MeanOccupancy() * 100.0);
      exp.points.emplace_back(days, w.MeanUtilExpected());
      obs.points.emplace_back(days, w.MeanUtilObserved());
    }
    out << LineChartSvg("GPU occupancy and utilization", {occ, exp, obs}, "days",
                        "percent");
  }
  {
    Series queued{"queued (window max)", {}};
    Series running{"running (window max)", {}};
    for (const auto& [start, w] : rollup.windows()) {
      const double days = static_cast<double>(start) / static_cast<double>(Hours(24));
      queued.points.emplace_back(days, static_cast<double>(w.queued_max));
      running.points.emplace_back(days, static_cast<double>(w.running_max));
    }
    out << LineChartSvg("Queue depth and running jobs", {queued, running}, "days",
                        "jobs");
  }
  out << "</div>\n";

  // ---- fleet routing section (phillyctl fleet --html) ----
  if (input.fleet != nullptr) {
    const FleetDashboardSection& fleet = *input.fleet;
    out << "<h2>Fleet routing (" << HtmlEscape(fleet.router) << ")</h2>\n";
    out << "<div class=\"tiles\">\n";
    SummaryTile(out, "clusters", std::to_string(fleet.clusters.size()));
    SummaryTile(out, "jobs routed", std::to_string(fleet.total_jobs));
    SummaryTile(out, "spilled off home", std::to_string(fleet.spilled_jobs));
    out << "</div>\n";
    out << "<table><tr><th>cluster</th><th>GPUs</th><th>jobs</th>"
        << "<th>home</th><th>routed in</th><th>routed away</th>"
        << "<th>mean occ %</th><th>p95 queue (min)</th></tr>\n";
    std::vector<std::pair<std::string, int64_t>> rows;
    rows.reserve(fleet.clusters.size());
    for (const FleetDashboardSection::Cluster& c : fleet.clusters) {
      out << "<tr><td>" << HtmlEscape(c.name) << "</td><td>" << c.total_gpus
          << "</td><td>" << c.jobs << "</td><td>" << c.home_jobs << "</td><td>"
          << c.routed_in << "</td><td>" << c.routed_away << "</td><td>"
          << Num(c.mean_occupancy * 100.0) << "</td><td>"
          << Num(c.p95_queue_minutes) << "</td></tr>\n";
      rows.emplace_back(c.name, c.jobs);
    }
    out << "</table>\n<div class=\"charts\">\n"
        << BarChartSvg("Jobs per cluster", rows) << "</div>\n";
  }

  // ---- Fig 1 analogue: lifecycle funnel from the event stream ----
  if (input.events != nullptr) {
    std::array<int64_t, kNumSchedEventKinds> counts = {};
    for (const SchedEvent& e : *input.events) {
      ++counts[static_cast<size_t>(e.kind)];
    }
    std::vector<std::pair<std::string, int64_t>> rows;
    rows.reserve(kNumSchedEventKinds);
    for (int k = 0; k < kNumSchedEventKinds; ++k) {
      rows.emplace_back(std::string(ToString(static_cast<SchedEventKind>(k))),
                        counts[static_cast<size_t>(k)]);
    }
    out << "<h2>Job lifecycle (Fig 1 analogue)</h2>\n<div class=\"charts\">\n"
        << BarChartSvg("Scheduler events by kind", rows) << "</div>\n";
  }

  // ---- "Why jobs waited": per-VC x per-cause blame from the span stream ----
  if (input.spans != nullptr && !input.spans->empty()) {
    const auto totals = VcBlameTotalsFromSpans(*input.spans);
    std::array<int64_t, kNumBlameCodes> overall = {};
    for (const auto& per_vc : totals) {
      for (int c = 0; c < kNumBlameCodes; ++c) {
        overall[static_cast<size_t>(c)] += per_vc[static_cast<size_t>(c)];
      }
    }
    out << "<h2>Why jobs waited (blame attribution)</h2>\n";
    out << "<table><tr><th>VC</th>";
    for (int c = 0; c < kNumBlameCodes; ++c) {
      out << "<th>" << HtmlEscape(ToString(static_cast<BlameCode>(c)))
          << " (h)</th>";
    }
    out << "</tr>\n";
    const auto hours = [](int64_t seconds) {
      return Num(static_cast<double>(seconds) / static_cast<double>(Hours(1)));
    };
    for (size_t vc = 0; vc < totals.size(); ++vc) {
      out << "<tr><td>vc " << vc << "</td>";
      for (int c = 0; c < kNumBlameCodes; ++c) {
        out << "<td>" << hours(totals[vc][static_cast<size_t>(c)]) << "</td>";
      }
      out << "</tr>\n";
    }
    out << "<tr><td>all</td>";
    for (int c = 0; c < kNumBlameCodes; ++c) {
      out << "<td>" << hours(overall[static_cast<size_t>(c)]) << "</td>";
    }
    out << "</tr>\n</table>\n";
    std::vector<std::pair<std::string, int64_t>> rows;
    rows.reserve(kNumBlameCodes);
    for (int c = 0; c < kNumBlameCodes; ++c) {
      rows.emplace_back(std::string(ToString(static_cast<BlameCode>(c))),
                        overall[static_cast<size_t>(c)]);
    }
    out << "<div class=\"charts\">\n"
        << BarChartSvg("Attributed waiting seconds by cause", rows) << "</div>\n";
  }

  // ---- Fig 3 / Fig 8 analogues from job records ----
  if (input.jobs != nullptr) {
    const QueueDelayResult delays = AnalyzeQueueDelays(*input.jobs);
    std::vector<Series> delay_series;
    for (int b = 0; b < kNumSizeBuckets; ++b) {
      delay_series.push_back(CdfSeriesOf(
          delays.overall[static_cast<size_t>(b)],
          std::string(ToString(static_cast<SizeBucket>(b))), /*log10_x=*/true));
    }
    out << "<h2>Queue delay CDFs (Fig 3 analogue)</h2>\n<div class=\"charts\">\n"
        << LineChartSvg("Queueing delay by job size", delay_series,
                        "log10 minutes", "CDF")
        << "</div>\n";

    const ConvergenceResult conv = AnalyzeConvergence(*input.jobs);
    const std::vector<Series> conv_series = {
        CdfSeriesOf(conv.passed_lowest, "passed: lowest loss", false),
        CdfSeriesOf(conv.passed_within, "passed: within 0.1%", false),
        CdfSeriesOf(conv.killed_lowest, "killed: lowest loss", false),
        CdfSeriesOf(conv.killed_within, "killed: within 0.1%", false),
    };
    out << "<h2>Convergence CDFs (Fig 8 analogue)</h2>\n<div class=\"charts\">\n"
        << LineChartSvg("Fraction of epochs to reach final loss", conv_series,
                        "fraction of executed epochs", "CDF")
        << "</div>\n";
  }

  out << "</body>\n</html>\n";
  return out.str();
}

bool WriteHtmlDashboard(const std::string& path, const HtmlDashboardInput& input) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << RenderHtmlDashboard(input);
  return out.good();
}

}  // namespace philly
