// Self-contained HTML dashboard for a simulated run — the visual layer over
// the three log streams. Renders inline SVG only: no scripts, no external
// stylesheets, no fetched assets, so the file can be archived next to the
// run's manifest and opened anywhere (including the CI artifact browser).
//
// Charts: utilization / occupancy and queue-depth time series from the
// telemetry rollup, the Fig 1 job-lifecycle funnel from the scheduler event
// stream, Fig 3 queue-delay CDFs, and Fig 8 convergence CDFs from the job
// records.

#ifndef SRC_CORE_HTML_REPORT_H_
#define SRC_CORE_HTML_REPORT_H_

#include <string>
#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/sched/records.h"

namespace philly {

// Fleet summary (docs/fleet.md): one row per member cluster plus the router's
// fleet-wide counters. Rendered as its own section when attached below.
struct FleetDashboardSection {
  struct Cluster {
    std::string name;
    int total_gpus = 0;
    int64_t jobs = 0;  // jobs that ran here
    int64_t home_jobs = 0;
    int64_t routed_in = 0;
    int64_t routed_away = 0;
    double mean_occupancy = 0.0;  // fraction
    double p95_queue_minutes = 0.0;
  };
  std::string router;  // policy name
  int64_t total_jobs = 0;
  int64_t spilled_jobs = 0;
  std::vector<Cluster> clusters;
};

struct HtmlDashboardInput {
  std::string title = "philly run";
  // Required: the per-minute telemetry stream.
  const std::vector<TelemetrySample>* samples = nullptr;
  // Optional: scheduler events (Fig 1 funnel) and job records (Fig 3/8 CDFs).
  const std::vector<SchedEvent>* events = nullptr;
  const std::vector<JobRecord>* jobs = nullptr;
  // Optional: causal span stream ("Why jobs waited" blame breakdown).
  const std::vector<SpanRecord>* spans = nullptr;
  // Optional: fleet routing section (phillyctl fleet --html).
  const FleetDashboardSection* fleet = nullptr;
  // Downsampling window for the time-series charts.
  SimDuration rollup_window = Hours(1);
};

std::string RenderHtmlDashboard(const HtmlDashboardInput& input);
// Writes the dashboard to `path`; returns false if the file cannot be opened.
bool WriteHtmlDashboard(const std::string& path, const HtmlDashboardInput& input);

}  // namespace philly

#endif  // SRC_CORE_HTML_REPORT_H_
