// Self-contained HTML dashboard for a simulated run — the visual layer over
// the three log streams. Renders inline SVG only: no scripts, no external
// stylesheets, no fetched assets, so the file can be archived next to the
// run's manifest and opened anywhere (including the CI artifact browser).
//
// Charts: utilization / occupancy and queue-depth time series from the
// telemetry rollup, the Fig 1 job-lifecycle funnel from the scheduler event
// stream, Fig 3 queue-delay CDFs, and Fig 8 convergence CDFs from the job
// records.

#ifndef SRC_CORE_HTML_REPORT_H_
#define SRC_CORE_HTML_REPORT_H_

#include <string>
#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/sched/records.h"

namespace philly {

struct HtmlDashboardInput {
  std::string title = "philly run";
  // Required: the per-minute telemetry stream.
  const std::vector<TelemetrySample>* samples = nullptr;
  // Optional: scheduler events (Fig 1 funnel) and job records (Fig 3/8 CDFs).
  const std::vector<SchedEvent>* events = nullptr;
  const std::vector<JobRecord>* jobs = nullptr;
  // Downsampling window for the time-series charts.
  SimDuration rollup_window = Hours(1);
};

std::string RenderHtmlDashboard(const HtmlDashboardInput& input);
// Writes the dashboard to `path`; returns false if the file cannot be opened.
bool WriteHtmlDashboard(const std::string& path, const HtmlDashboardInput& input);

}  // namespace philly

#endif  // SRC_CORE_HTML_REPORT_H_
