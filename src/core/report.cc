#include "src/core/report.h"

#include <fstream>
#include <sstream>

#include "src/common/csv.h"
#include "src/common/strings.h"

namespace philly {

std::string RenderCdfProbes(const StreamingHistogram& hist,
                            std::initializer_list<double> probes,
                            const std::string& unit) {
  std::ostringstream out;
  bool first = true;
  for (double x : probes) {
    if (!first) {
      out << "  ";
    }
    first = false;
    out << "P(<=" << FormatDouble(x, x < 1 ? 2 : 0) << unit
        << ")=" << FormatPercent(hist.CdfAt(x), 1);
  }
  return out.str();
}

std::string RenderSummary(const Summary& summary, int digits) {
  std::ostringstream out;
  out << "n=" << FormatDouble(summary.count, 0)
      << " mean=" << FormatDouble(summary.mean, digits)
      << " p50=" << FormatDouble(summary.p50, digits)
      << " p90=" << FormatDouble(summary.p90, digits)
      << " p95=" << FormatDouble(summary.p95, digits);
  return out.str();
}

bool WriteCdfCsv(const StreamingHistogram& hist, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  CsvWriter csv(out);
  csv.Row("value", "cumulative");
  for (const auto& point : hist.CdfSeries()) {
    csv.Row(point.value, point.cumulative);
  }
  return true;
}

void ShapeChecker::Check(const std::string& name, bool ok, const std::string& detail) {
  entries_.push_back({name, ok, detail});
  if (!ok) {
    ++failures_;
  }
}

void ShapeChecker::CheckWithin(const std::string& name, double measured,
                               double expected, double rel_tol) {
  const double lo = expected * (1.0 - rel_tol);
  const double hi = expected * (1.0 + rel_tol);
  Check(name, measured >= lo && measured <= hi,
        "measured=" + FormatDouble(measured, 3) + " expected=" +
            FormatDouble(expected, 3) + " (+/-" + FormatPercent(rel_tol, 0) + ")");
}

void ShapeChecker::CheckBand(const std::string& name, double measured, double lo,
                             double hi) {
  Check(name, measured >= lo && measured <= hi,
        "measured=" + FormatDouble(measured, 3) + " band=[" + FormatDouble(lo, 3) +
            ", " + FormatDouble(hi, 3) + "]");
}

std::string ShapeChecker::Render() const {
  std::ostringstream out;
  for (const auto& entry : entries_) {
    out << (entry.ok ? "  [ok]   " : "  [FAIL] ") << entry.name;
    if (!entry.detail.empty()) {
      out << "  (" << entry.detail << ")";
    }
    out << '\n';
  }
  out << "shape checks: " << (num_checks() - failures_) << "/" << num_checks()
      << " passed\n";
  return out.str();
}

}  // namespace philly
