// Rendering and shape-validation helpers for the reproduction benches.
//
// Every bench prints paper-vs-measured tables and runs a set of *shape
// checks*: qualitative/structural assertions from the per-experiment index in
// DESIGN.md (orderings, who-dominates, monotonicity, factors within bands).
// Absolute values are not expected to match — the substrate is a simulator —
// so checks encode the findings, not the digits.

#ifndef SRC_CORE_REPORT_H_
#define SRC_CORE_REPORT_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"

namespace philly {

// "P(X <= x)" rows for a CDF at chosen probe points (minutes, percent, ...).
std::string RenderCdfProbes(const StreamingHistogram& hist,
                            std::initializer_list<double> probes,
                            const std::string& unit);

// Percentile row ("p50=..., p90=..., mean=...") for one histogram.
std::string RenderSummary(const Summary& summary, int digits = 2);

// Writes a histogram's CDF as a two-column CSV (value,cumulative) for
// plotting the paper's figures. Returns false if the file cannot be opened.
bool WriteCdfCsv(const StreamingHistogram& hist, const std::string& path);

class ShapeChecker {
 public:
  // Records a named check. `detail` should state measured vs expected.
  void Check(const std::string& name, bool ok, const std::string& detail = "");

  // measured within [expected*(1-tol), expected*(1+tol)].
  void CheckWithin(const std::string& name, double measured, double expected,
                   double rel_tol);

  // measured in [lo, hi].
  void CheckBand(const std::string& name, double measured, double lo, double hi);

  int num_checks() const { return static_cast<int>(entries_.size()); }
  int num_failures() const { return failures_; }
  bool AllPassed() const { return failures_ == 0; }

  // "[ok] name  detail" lines plus a tally.
  std::string Render() const;

 private:
  struct Entry {
    std::string name;
    bool ok = false;
    std::string detail;
  };
  std::vector<Entry> entries_;
  int failures_ = 0;
};

}  // namespace philly

#endif  // SRC_CORE_REPORT_H_
