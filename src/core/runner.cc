#include "src/core/runner.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace philly {
namespace {

// Parses the full string as an integer in [min, max]; returns false on any
// trailing garbage, empty input, or range violation.
bool ParseExact(const char* text, int64_t min, int64_t max, uint64_t* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  if (min < 0 || *text == '-') {
    const long long v = std::strtoll(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || v < min ||
        (max >= 0 && v > max)) {
      return false;
    }
    *out = static_cast<uint64_t>(v);
    return true;
  }
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' ||
      v < static_cast<unsigned long long>(min) ||
      (max >= 0 && v > static_cast<unsigned long long>(max))) {
    return false;
  }
  *out = v;
  return true;
}

[[noreturn]] void DieOnKnob(const char* name, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "%s='%s' is invalid: expected %s\n", name, value,
               expected);
  std::exit(2);
}

}  // namespace

int PositiveIntFromEnv(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  uint64_t value = 0;
  if (!ParseExact(env, 1, INT32_MAX, &value)) {
    DieOnKnob(name, env, "a positive integer");
  }
  return static_cast<int>(value);
}

uint64_t U64FromEnv(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  uint64_t value = 0;
  if (!ParseExact(env, 0, -1, &value)) {
    DieOnKnob(name, env, "an unsigned integer");
  }
  return value;
}

int DefaultPoolThreads() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return PositiveIntFromEnv("PHILLY_BENCH_THREADS", hw > 0 ? hw : 1);
}

ExperimentPool::ExperimentPool(int num_threads)
    : num_threads_(num_threads > 0 ? num_threads : DefaultPoolThreads()) {}

void ExperimentPool::ParallelFor(int n, const std::function<void(int)>& fn) const {
  if (n <= 0) {
    return;
  }
  const int workers = std::min(num_threads_, n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back(worker);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

std::vector<ExperimentRun> ExperimentPool::RunMany(
    std::vector<ExperimentConfig> configs) const {
  // Shared metrics/profiler sinks are thread-safe and may appear in every
  // config, but an EventLog or ClusterTimeSeries belongs to exactly one run:
  // concurrent appends from two simulations would interleave (and race).
  // Catch the misuse before it corrupts a stream.
  for (size_t i = 0; i < configs.size(); ++i) {
    const EventLog* log = configs[i].simulation.obs.event_log;
    const ClusterTimeSeries* ts = configs[i].simulation.obs.timeseries;
    for (size_t j = i + 1; j < configs.size(); ++j) {
      if (log != nullptr && configs[j].simulation.obs.event_log == log) {
        throw std::invalid_argument(
            "ExperimentPool::RunMany: the same EventLog is attached to more "
            "than one config; event logs are per-run");
      }
      if (ts != nullptr && configs[j].simulation.obs.timeseries == ts) {
        throw std::invalid_argument(
            "ExperimentPool::RunMany: the same ClusterTimeSeries is attached "
            "to more than one config; telemetry recorders are per-run");
      }
    }
  }
  std::vector<ExperimentRun> runs(configs.size());
  ParallelFor(static_cast<int>(configs.size()), [&](int i) {
    runs[static_cast<size_t>(i)] =
        RunExperiment(configs[static_cast<size_t>(i)]);
  });
  return runs;
}

std::vector<ExperimentRun> ExperimentPool::RunSeeds(
    const ExperimentConfig& base, const std::vector<uint64_t>& seeds) const {
  return RunMany(ConfigsForSeeds(base, seeds));
}

std::vector<ExperimentConfig> ConfigsForSeeds(const ExperimentConfig& base,
                                              const std::vector<uint64_t>& seeds) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    ExperimentConfig config = base;
    config.workload.seed = seed;
    config.simulation.seed = seed;
    configs.push_back(std::move(config));
  }
  return configs;
}

}  // namespace philly
