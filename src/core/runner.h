// Parallel experiment runner: fans independent `RunExperiment` calls across a
// thread pool so multi-seed/multi-config sweeps cost one simulation of
// wall-clock instead of N.
//
// Threading/determinism contract:
//   * Each task owns its `ExperimentConfig` and runs a fully independent
//     `WorkloadGenerator` + `ClusterSimulation` (all RNGs and caches are
//     per-instance state; nothing in the library mutates globals).
//   * Results are collected by task index, never by completion order, so
//     `RunMany(configs)[i] == RunExperiment(configs[i])` byte-for-byte
//     regardless of thread count or OS scheduling.
//   * Worker count defaults to `PHILLY_BENCH_THREADS` if set, otherwise
//     `std::thread::hardware_concurrency()`.

#ifndef SRC_CORE_RUNNER_H_
#define SRC_CORE_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/experiment.h"

namespace philly {

// Strict environment-knob parsing. Unset (or empty) variables return the
// fallback; malformed or out-of-range values print a clear message to stderr
// and exit(2) — silently treating garbage as 0 yields empty workloads and
// vacuously passing shape checks.
int PositiveIntFromEnv(const char* name, int fallback);
uint64_t U64FromEnv(const char* name, uint64_t fallback);

// Worker count for pools constructed without an explicit thread count:
// `PHILLY_BENCH_THREADS` if set (must be a positive integer), else
// `std::thread::hardware_concurrency()` (at least 1).
int DefaultPoolThreads();

class ExperimentPool {
 public:
  // `num_threads <= 0` falls back to DefaultPoolThreads().
  explicit ExperimentPool(int num_threads = 0);

  int num_threads() const { return num_threads_; }

  // Invokes fn(0) .. fn(n-1), each exactly once, fanned across the pool.
  // `fn` must be safe to call concurrently for distinct indices. Blocks until
  // all indices complete; the first exception thrown by any task is
  // rethrown after the pool drains.
  void ParallelFor(int n, const std::function<void(int)>& fn) const;

  // Runs every config and returns the runs in config order.
  std::vector<ExperimentRun> RunMany(std::vector<ExperimentConfig> configs) const;

  // Convenience: one run per seed, applying each seed to both the workload
  // and the simulation of a copy of `base`. Results are in seed order.
  std::vector<ExperimentRun> RunSeeds(const ExperimentConfig& base,
                                      const std::vector<uint64_t>& seeds) const;

 private:
  int num_threads_ = 1;
};

// The per-seed configs RunSeeds runs, exposed for callers that need to tweak
// them further before RunMany.
std::vector<ExperimentConfig> ConfigsForSeeds(const ExperimentConfig& base,
                                              const std::vector<uint64_t>& seeds);

}  // namespace philly

#endif  // SRC_CORE_RUNNER_H_
