#include "src/core/span_analysis.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace philly {
namespace {

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
  return false;
}

bool IsQueueBlame(BlameCode code) {
  switch (code) {
    case BlameCode::kFairnessShareCap:
    case BlameCode::kFragmentation:
    case BlameCode::kLocalityWait:
    case BlameCode::kBackoff:
    case BlameCode::kFaultRecovery:
    case BlameCode::kRouterQueue:
      return true;
    case BlameCode::kCkptStall:
      return false;
  }
  return false;
}

std::string JobTag(JobId job) { return "job " + std::to_string(job); }

// "2d03h", "4h07m", "12m05s", "42s" — compact human durations for explain.
std::string HumanDuration(SimDuration seconds) {
  char buf[32];
  if (seconds >= Hours(48)) {
    std::snprintf(buf, sizeof(buf), "%lldd%02lldh",
                  static_cast<long long>(seconds / Hours(24)),
                  static_cast<long long>(seconds % Hours(24) / Hours(1)));
  } else if (seconds >= Hours(1)) {
    std::snprintf(buf, sizeof(buf), "%lldh%02lldm",
                  static_cast<long long>(seconds / Hours(1)),
                  static_cast<long long>(seconds % Hours(1) / Minutes(1)));
  } else if (seconds >= Minutes(1)) {
    std::snprintf(buf, sizeof(buf), "%lldm%02llds",
                  static_cast<long long>(seconds / Minutes(1)),
                  static_cast<long long>(seconds % Minutes(1)));
  } else {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(seconds));
  }
  return buf;
}

}  // namespace

bool VerifyBlameConservation(const std::vector<SpanRecord>& spans,
                             const std::vector<JobRecord>& jobs,
                             std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  struct PerJob {
    std::vector<const SpanRecord*> queued;
    std::vector<const SpanRecord*> blame;  // emission order == chronological
    int64_t running = 0;
  };
  std::map<JobId, PerJob> per_job;
  for (const SpanRecord& s : spans) {
    PerJob& pj = per_job[s.job];
    switch (s.kind) {
      case SpanKind::kQueued:
        pj.queued.push_back(&s);
        break;
      case SpanKind::kBlame:
        if (!IsQueueBlame(s.code)) {
          return Fail(error, JobTag(s.job) + ": blame span with non-queue code '" +
                                 std::string(ToString(s.code)) + "'");
        }
        pj.blame.push_back(&s);
        break;
      case SpanKind::kRunning:
        pj.running += s.dur;
        break;
      case SpanKind::kCkpt:
        break;  // inside running spans; not part of the queueing identity
    }
    if (s.dur <= 0 && s.kind != SpanKind::kCkpt) {
      return Fail(error, JobTag(s.job) + ": zero-duration " +
                             std::string(ToString(s.kind)) + " span at t=" +
                             std::to_string(s.start));
    }
  }

  std::map<JobId, const JobRecord*> records;
  for (const JobRecord& job : jobs) {
    records.emplace(job.spec.id, &job);
  }
  for (const auto& [id, pj] : per_job) {
    if (records.find(id) == records.end()) {
      return Fail(error, JobTag(id) + ": spans for a job absent from the records");
    }
  }

  const PerJob kNone;
  for (const JobRecord& job : jobs) {
    const auto it = per_job.find(job.spec.id);
    const PerJob& pj = it != per_job.end() ? it->second : kNone;
    const std::string tag = JobTag(job.spec.id);

    if (pj.running != job.TotalRunTime()) {
      return Fail(error, tag + ": running spans sum to " +
                             std::to_string(pj.running) + "s but TotalRunTime is " +
                             std::to_string(job.TotalRunTime()) + "s");
    }

    // Slot queued/blame spans by wait index.
    const size_t num_waits = job.waits.size();
    std::vector<const SpanRecord*> queued_at(num_waits, nullptr);
    std::vector<std::vector<const SpanRecord*>> blame_at(num_waits);
    for (const SpanRecord* s : pj.queued) {
      if (s->wait_index < 0 || static_cast<size_t>(s->wait_index) >= num_waits) {
        return Fail(error, tag + ": queued span with out-of-range wait index " +
                               std::to_string(s->wait_index));
      }
      if (queued_at[static_cast<size_t>(s->wait_index)] != nullptr) {
        return Fail(error, tag + ": duplicate queued span for wait " +
                               std::to_string(s->wait_index));
      }
      queued_at[static_cast<size_t>(s->wait_index)] = s;
    }
    for (const SpanRecord* s : pj.blame) {
      if (s->wait_index < 0 || static_cast<size_t>(s->wait_index) >= num_waits) {
        return Fail(error, tag + ": blame span with out-of-range wait index " +
                               std::to_string(s->wait_index));
      }
      blame_at[static_cast<size_t>(s->wait_index)].push_back(s);
    }

    for (size_t w = 0; w < num_waits; ++w) {
      const WaitRecord& wait = job.waits[w];
      const std::string wait_tag = tag + " wait " + std::to_string(w);
      const SpanRecord* queued = queued_at[w];
      if (wait.wait <= 0) {
        // Zero-length waits (prerun pseudo-waits, same-instant migration
        // restarts) produce no spans at all.
        if (queued != nullptr || !blame_at[w].empty()) {
          return Fail(error, wait_tag + ": spans emitted for a zero-length wait");
        }
        continue;
      }
      if (queued == nullptr) {
        return Fail(error, wait_tag + ": no queued span for a " +
                               std::to_string(wait.wait) + "s wait");
      }
      if (queued->start != wait.ready_time || queued->dur != wait.wait) {
        return Fail(error, wait_tag + ": queued span [" +
                               std::to_string(queued->start) + " +" +
                               std::to_string(queued->dur) + "s] != wait [" +
                               std::to_string(wait.ready_time) + " +" +
                               std::to_string(wait.wait) + "s]");
      }
      // The blame children must tile [ready_time, ready_time + wait] with no
      // gaps or overlaps — this IS the conservation identity: durations sum
      // to the measured delay because the tiling is exact.
      SimTime cursor = wait.ready_time;
      SimDuration fair = 0;
      SimDuration frag = 0;
      for (const SpanRecord* s : blame_at[w]) {
        if (s->start != cursor) {
          return Fail(error, wait_tag + ": blame span starts at " +
                                 std::to_string(s->start) + ", expected " +
                                 std::to_string(cursor) + " (gap or overlap)");
        }
        cursor += s->dur;
        if (s->code == BlameCode::kFairnessShareCap) {
          fair += s->dur;
        } else if (s->code == BlameCode::kFragmentation ||
                   s->code == BlameCode::kLocalityWait) {
          frag += s->dur;
        }
      }
      if (cursor != wait.ready_time + wait.wait) {
        return Fail(error, wait_tag + ": blame spans cover " +
                               std::to_string(cursor - wait.ready_time) +
                               "s of a " + std::to_string(wait.wait) + "s wait");
      }
      if (fair != wait.fair_share_time) {
        return Fail(error, wait_tag + ": fair_share_cap spans sum to " +
                               std::to_string(fair) + "s, native fair_share_time is " +
                               std::to_string(wait.fair_share_time) + "s");
      }
      if (frag != wait.fragmentation_time) {
        return Fail(error,
                    wait_tag + ": fragmentation + locality_wait spans sum to " +
                        std::to_string(frag) + "s, native fragmentation_time is " +
                        std::to_string(wait.fragmentation_time) + "s");
      }
    }
  }
  return true;
}

DelayCauseResult DelayCausesFromSpans(const std::vector<SpanRecord>& spans) {
  struct Acc {
    int64_t run = 0;
    int gpus = 0;
    bool has_wait0 = false;
    SimDuration fair0 = 0;
    SimDuration frag0 = 0;
    SimDuration fair_all = 0;
    SimDuration frag_all = 0;
  };
  std::map<JobId, Acc> jobs;
  for (const SpanRecord& s : spans) {
    Acc& a = jobs[s.job];
    if (s.gpus > 0) {
      a.gpus = s.gpus;
    }
    switch (s.kind) {
      case SpanKind::kQueued:
        if (s.wait_index == 0) {
          a.has_wait0 = true;
        }
        break;
      case SpanKind::kBlame: {
        const bool fair = s.code == BlameCode::kFairnessShareCap;
        const bool frag = s.code == BlameCode::kFragmentation ||
                          s.code == BlameCode::kLocalityWait;
        if (fair) {
          a.fair_all += s.dur;
        } else if (frag) {
          a.frag_all += s.dur;
        }
        if (s.wait_index == 0) {
          if (fair) {
            a.fair0 += s.dur;
          } else if (frag) {
            a.frag0 += s.dur;
          }
        }
        break;
      }
      case SpanKind::kRunning:
        a.run += s.dur;
        break;
      case SpanKind::kCkpt:
        break;
    }
  }

  DelayCauseResult result;
  double fair_time = 0.0;
  double frag_time = 0.0;
  for (const auto& [id, a] : jobs) {
    // The paper's filter, reproduced exactly: running spans sum to
    // TotalRunTime (zero-length attempts contribute nothing either way).
    if (a.run < Minutes(1)) {
      continue;
    }
    fair_time += static_cast<double>(a.fair_all);
    frag_time += static_cast<double>(a.frag_all);
    // First-wait dominant cause, mirroring WaitRecord::DominantCause: a job
    // without a wait-0 queued span had a zero first wait (dominant cause
    // kNone), as did one with only backoff-family blame.
    if (a.has_wait0 && (a.fair0 > 0 || a.frag0 > 0)) {
      const auto bucket = static_cast<size_t>(BucketOf(a.gpus));
      if (a.fair0 > a.frag0) {
        ++result.by_bucket[bucket].fair_share;
      } else {
        ++result.by_bucket[bucket].fragmentation;
      }
    }
  }
  const double total_time = fair_time + frag_time;
  if (total_time > 0) {
    result.fair_share_time_fraction = fair_time / total_time;
    result.fragmentation_time_fraction = frag_time / total_time;
  }
  return result;
}

bool CrossCheckDelayCauses(const DelayCauseResult& native,
                           const DelayCauseResult& from_spans,
                           std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    const auto& n = native.by_bucket[static_cast<size_t>(b)];
    const auto& s = from_spans.by_bucket[static_cast<size_t>(b)];
    if (n.fair_share != s.fair_share) {
      return Fail(error, "bucket " + std::to_string(b) + " fair-share count: native " +
                             std::to_string(n.fair_share) + ", from spans " +
                             std::to_string(s.fair_share));
    }
    if (n.fragmentation != s.fragmentation) {
      return Fail(error,
                  "bucket " + std::to_string(b) + " fragmentation count: native " +
                      std::to_string(n.fragmentation) + ", from spans " +
                      std::to_string(s.fragmentation));
    }
  }
  // Both sides sum exact integral seconds (exactly representable in doubles),
  // so the fractions must match bit for bit.
  if (native.fair_share_time_fraction != from_spans.fair_share_time_fraction) {
    return Fail(error, "fair-share time fraction: native " +
                           std::to_string(native.fair_share_time_fraction) +
                           ", from spans " +
                           std::to_string(from_spans.fair_share_time_fraction));
  }
  if (native.fragmentation_time_fraction !=
      from_spans.fragmentation_time_fraction) {
    return Fail(error, "fragmentation time fraction: native " +
                           std::to_string(native.fragmentation_time_fraction) +
                           ", from spans " +
                           std::to_string(from_spans.fragmentation_time_fraction));
  }
  return true;
}

std::vector<std::array<int64_t, kNumBlameCodes>> VcBlameTotalsFromSpans(
    const std::vector<SpanRecord>& spans) {
  std::vector<std::array<int64_t, kNumBlameCodes>> totals;
  for (const SpanRecord& s : spans) {
    if (s.kind != SpanKind::kBlame && s.kind != SpanKind::kCkpt) {
      continue;
    }
    const size_t vc = s.vc >= 0 ? static_cast<size_t>(s.vc) : 0;
    if (vc >= totals.size()) {
      totals.resize(vc + 1, {});
    }
    totals[vc][static_cast<size_t>(s.code)] += s.dur;
  }
  return totals;
}

std::string RenderJobExplanation(JobId job,
                                 const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> mine;
  for (const SpanRecord& s : spans) {
    if (s.job == job) {
      mine.push_back(&s);
    }
  }
  if (mine.empty()) {
    return "";
  }
  // Emission order is chronological except that running spans are appended
  // when the attempt ends; a stable sort by start restores the timeline while
  // keeping queued spans ahead of their same-start blame children.
  std::stable_sort(mine.begin(), mine.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->start < b->start;
                   });

  const SpanRecord& first = *mine.front();
  std::string out = "job " + std::to_string(job) + ": vc " +
                    std::to_string(first.vc) + ", user " +
                    std::to_string(first.user) + ", " +
                    std::to_string(first.gpus) + " GPUs\n";

  std::array<int64_t, kNumBlameCodes> blame_totals = {};
  int64_t total_queued = 0;
  int64_t total_running = 0;
  for (const SpanRecord* s : mine) {
    const std::string window = "[t=" + std::to_string(s->start) + " +" +
                               HumanDuration(s->dur) + "]";
    switch (s->kind) {
      case SpanKind::kQueued:
        out += "  " + window + " queued (wait " + std::to_string(s->wait_index) +
               ")\n";
        total_queued += s->dur;
        break;
      case SpanKind::kBlame:
        out += "      " + window + " " + std::string(ToString(s->code)) + "\n";
        blame_totals[static_cast<size_t>(s->code)] += s->dur;
        break;
      case SpanKind::kRunning:
        out += "  " + window + " running (attempt " +
               std::to_string(s->attempt) + ") -> " + s->detail + "\n";
        total_running += s->dur;
        break;
      case SpanKind::kCkpt:
        out += "      " + window + " " + std::string(ToString(s->code)) + " (" +
               s->detail + ")\n";
        blame_totals[static_cast<size_t>(s->code)] += s->dur;
        break;
    }
  }

  out += "totals: queued " + HumanDuration(total_queued) + ", running " +
         HumanDuration(total_running) + "\n";
  if (total_queued > 0) {
    out += "why it waited:\n";
    for (int c = 0; c < kNumBlameCodes; ++c) {
      const int64_t t = blame_totals[static_cast<size_t>(c)];
      if (t == 0 || static_cast<BlameCode>(c) == BlameCode::kCkptStall) {
        continue;
      }
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.1f%%",
                    100.0 * static_cast<double>(t) /
                        static_cast<double>(total_queued));
      out += "  " + std::string(ToString(static_cast<BlameCode>(c))) + " " +
             HumanDuration(t) + " (" + pct + ")\n";
    }
  }
  if (blame_totals[static_cast<size_t>(BlameCode::kCkptStall)] > 0) {
    out += "checkpoint stalls while running: " +
           HumanDuration(
               blame_totals[static_cast<size_t>(BlameCode::kCkptStall)]) +
           "\n";
  }
  return out;
}

}  // namespace philly
