// Span-stream analysis: the verification and reconstruction half of the
// queueing-delay attribution engine (src/obs/span.h).
//
// Three consumers share this module:
//   * VerifyBlameConservation — the exact identity the tracer promises: for
//     every wait of every job, the blame child spans tile [ready_time, start]
//     with no gaps or overlaps (their durations sum to the measured queueing
//     delay to the integral second), and the fairness/fragmentation subtotals
//     equal the native WaitRecord attribution.
//   * DelayCausesFromSpans + CrossCheckDelayCauses — rebuilds the span-derived
//     half of Table 2 from the span stream alone and compares it against the
//     native AnalyzeDelayCauses result, field by field, exactly
//     (`phillyctl analyze --from-events --spans`).
//   * RenderJobExplanation — the human-readable causal timeline behind
//     `phillyctl explain --job`.

#ifndef SRC_CORE_SPAN_ANALYSIS_H_
#define SRC_CORE_SPAN_ANALYSIS_H_

#include <array>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/obs/span.h"
#include "src/sched/records.h"

namespace philly {

// Checks the blame-conservation identity of `spans` against the native job
// records. For every wait: exactly one queued span (none when the wait is
// zero — prerun pseudo-waits and same-instant migration restarts), blame
// children contiguously tiling [ready_time, ready_time + wait],
// sum(fair_share_cap) == fair_share_time, sum(fragmentation + locality_wait)
// == fragmentation_time; and per job, running-span durations sum to
// TotalRunTime(). Returns false with a description in *error on the first
// violation.
bool VerifyBlameConservation(const std::vector<SpanRecord>& spans,
                             const std::vector<JobRecord>& jobs,
                             std::string* error);

// Rebuilds the span-derived Table 2 fields from the stream alone: per-bucket
// first-wait dominant-cause counts and the two time-weighted cause fractions.
// Jobs are enumerated by their running spans (a job's running durations sum
// to its TotalRunTime, so the paper's >= 1 minute filter applies exactly);
// the out-of-order and snapshot-derived fields are not reconstructible from
// spans and stay zero.
DelayCauseResult DelayCausesFromSpans(const std::vector<SpanRecord>& spans);

// Compares the span-reconstructible fields of two Table 2 results exactly
// (by-bucket fair/frag counts and both time fractions; both sides accumulate
// exact integral seconds, so equality is well-defined on the doubles too).
// Returns false with the first mismatch described in *error.
bool CrossCheckDelayCauses(const DelayCauseResult& native,
                           const DelayCauseResult& from_spans,
                           std::string* error);

// Per-VC x per-blame-code attributed seconds summed from the stream
// (queueing blame spans plus ckpt_stall spans), VC-major; index = VC id.
std::vector<std::array<int64_t, kNumBlameCodes>> VcBlameTotalsFromSpans(
    const std::vector<SpanRecord>& spans);

// Renders the causal timeline of one job from the span stream alone, in
// chronological order with per-wait blame breakdowns and a "why it waited"
// summary. Returns an empty string when the stream has no spans for `job`
// (the caller reports that as an error).
std::string RenderJobExplanation(JobId job,
                                 const std::vector<SpanRecord>& spans);

}  // namespace philly

#endif  // SRC_CORE_SPAN_ANALYSIS_H_
