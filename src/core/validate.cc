#include "src/core/validate.h"

#include <cmath>
#include <sstream>

#include "src/core/analysis.h"

namespace philly {
namespace {

void Report(ValidationReport* report, const ValidateOptions& options, JobId job,
            std::string what) {
  if (report->issues.size() < options.max_issues) {
    report->issues.push_back({job, std::move(what)});
  }
}

}  // namespace

std::string ValidationReport::Summary(size_t max_issues) const {
  std::ostringstream out;
  out << issues.size() << " issue(s) across " << jobs_checked << " jobs";
  for (size_t i = 0; i < issues.size() && i < max_issues; ++i) {
    out << "\n  job " << issues[i].job << ": " << issues[i].what;
  }
  return out.str();
}

ValidationReport ValidateJobs(const std::vector<JobRecord>& jobs,
                              ValidateOptions options) {
  ValidationReport report;
  for (const JobRecord& job : jobs) {
    ++report.jobs_checked;
    const JobId id = job.spec.id;
    if (job.spec.num_gpus <= 0) {
      Report(&report, options, id, "non-positive GPU demand");
    }
    if (job.finish_time < job.spec.submit_time) {
      Report(&report, options, id, "finished before submission");
    }
    if (job.waits.size() != job.attempts.size() && !job.attempts.empty()) {
      Report(&report, options, id,
             "waits (" + std::to_string(job.waits.size()) + ") != attempts (" +
                 std::to_string(job.attempts.size()) + ")");
    }

    SimTime prev_end = job.spec.submit_time;
    double gpu_seconds = 0.0;
    SimDuration attempt_time = 0;
    for (const AttemptRecord& attempt : job.attempts) {
      ++report.attempts_checked;
      if (attempt.start < prev_end) {
        Report(&report, options, id,
               "attempt " + std::to_string(attempt.index) + " starts before the "
               "previous attempt ended");
      }
      if (attempt.end < attempt.start) {
        Report(&report, options, id,
               "attempt " + std::to_string(attempt.index) + " ends before it starts");
      }
      if (attempt.prerun) {
        if (!attempt.placement.Empty()) {
          Report(&report, options, id, "pre-run attempt carries a gang placement");
        }
      } else {
        if (attempt.placement.NumGpus() != job.spec.num_gpus) {
          Report(&report, options, id,
                 "attempt " + std::to_string(attempt.index) + " gang size " +
                     std::to_string(attempt.placement.NumGpus()) + " != demand " +
                     std::to_string(job.spec.num_gpus));
        }
        for (size_t i = 0; i < attempt.placement.shards.size(); ++i) {
          for (size_t k = 0; k < i; ++k) {
            if (attempt.placement.shards[i].server ==
                attempt.placement.shards[k].server) {
              Report(&report, options, id, "placement repeats a server");
            }
          }
        }
        attempt_time += attempt.Duration();
      }
      if (!attempt.failed && !attempt.log_tail.empty()) {
        Report(&report, options, id, "clean attempt carries a failure log tail");
      }
      gpu_seconds += attempt.GpuTime();
      prev_end = attempt.end;
    }
    if (std::abs(gpu_seconds - job.gpu_seconds) > 0.5) {
      Report(&report, options, id,
             "gpu_seconds mismatch: recorded " + std::to_string(job.gpu_seconds) +
                 " vs recomputed " + std::to_string(gpu_seconds));
    }
    if (options.check_segment_coverage) {
      SimDuration segment_time = 0;
      for (const UtilSegment& segment : job.util_segments) {
        if (segment.expected_util < 0.0 || segment.expected_util > 1.0) {
          Report(&report, options, id, "segment utilization out of [0, 1]");
        }
        if (segment.duration <= 0) {
          Report(&report, options, id, "non-positive segment duration");
        }
        segment_time += segment.duration;
      }
      if (segment_time != attempt_time) {
        Report(&report, options, id,
               "segments cover " + std::to_string(segment_time) +
                   "s but gang attempts total " + std::to_string(attempt_time) + "s");
      }
    }
    for (const WaitRecord& wait : job.waits) {
      if (wait.wait < 0) {
        Report(&report, options, id, "negative wait");
      }
      if (wait.fair_share_time + wait.fragmentation_time > wait.wait) {
        Report(&report, options, id, "wait cause attribution exceeds the wait");
      }
    }
  }
  return report;
}

ValidationReport ValidateFailureShares(const std::vector<JobRecord>& jobs,
                                       FailureShareOptions options) {
  ValidationReport report;
  report.jobs_checked = static_cast<int64_t>(jobs.size());
  const FailureAnalysisResult failures = AnalyzeFailures(jobs);
  report.attempts_checked = failures.total_trials;
  if (failures.total_trials < options.min_trials) {
    return report;  // too few failures to estimate shares
  }
  const double paper_total = TotalPaperTrials();
  const double sim_total = static_cast<double>(failures.total_trials);
  for (const FailureAnalysisResult::ReasonRow& row : failures.rows) {
    const FailureReasonInfo& info = InfoOf(row.reason);
    if (info.paper_trials <= 0) {
      continue;  // not in the published table (machine-fault family)
    }
    const double expected = info.paper_trials / paper_total;
    const double measured = static_cast<double>(row.trials) / sim_total;
    const double deviation = std::abs(measured - expected);
    if (deviation > options.tolerance) {
      std::ostringstream what;
      what << "failure share of '" << ToString(row.reason) << "' is "
           << measured << " vs published " << expected << " (|diff| "
           << deviation << " > tolerance " << options.tolerance << ")";
      Report(&report, ValidateOptions{}, kNoJob, what.str());
    }
  }
  return report;
}

}  // namespace philly
