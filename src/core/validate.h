// Structural validation of simulation output.
//
// ValidateResult checks the invariants every well-formed SimulationResult
// must satisfy (attempt ordering, gang sizes, GPU-time accounting, segment
// coverage, wait attribution bounds). The checks live in the library — not
// only in tests — so downstream consumers of traces (including phillyctl
// after loading a trace from disk) can assert integrity before analyzing.

#ifndef SRC_CORE_VALIDATE_H_
#define SRC_CORE_VALIDATE_H_

#include <string>
#include <vector>

#include "src/sched/records.h"

namespace philly {

struct ValidationIssue {
  JobId job = kNoJob;
  std::string what;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  int64_t jobs_checked = 0;
  int64_t attempts_checked = 0;

  bool ok() const { return issues.empty(); }
  // First few issues, one per line, for error messages.
  std::string Summary(size_t max_issues = 10) const;
};

struct ValidateOptions {
  // When true, require utilization segments to exactly cover attempt time
  // (true for simulator output; trace round trips preserve it).
  bool check_segment_coverage = true;
  // Cap on recorded issues (validation keeps scanning but stops recording).
  size_t max_issues = 100;
};

// Validates per-job invariants. Cheap: O(total attempts + segments).
ValidationReport ValidateJobs(const std::vector<JobRecord>& jobs,
                              ValidateOptions options = {});

struct FailureShareOptions {
  // Max absolute deviation allowed between a reason's simulated share of
  // classified failure trials and its published Table 7 share. The injector
  // conditions reason choice on job duration and demand, which shifts a
  // couple of high-volume reasons by up to ~10 points at bench scale, so the
  // default leaves headroom above that systemic bias while still catching a
  // grossly skewed mix.
  double tolerance = 0.13;
  // Below this many classified trials the share estimate is too noisy to
  // judge; the check passes vacuously.
  int64_t min_trials = 200;
};

// Distributional validation: the classified failure-reason mix of a simulated
// workload must track the published Table 7 shares. Reasons absent from the
// published table (paper_trials == 0, e.g. the machine-fault family) are not
// checked directly, but their trials inflate the simulated denominator — so a
// fault process heavy enough to distort the published mix fails the check.
ValidationReport ValidateFailureShares(const std::vector<JobRecord>& jobs,
                                       FailureShareOptions options = {});

}  // namespace philly

#endif  // SRC_CORE_VALIDATE_H_
