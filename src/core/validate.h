// Structural validation of simulation output.
//
// ValidateResult checks the invariants every well-formed SimulationResult
// must satisfy (attempt ordering, gang sizes, GPU-time accounting, segment
// coverage, wait attribution bounds). The checks live in the library — not
// only in tests — so downstream consumers of traces (including phillyctl
// after loading a trace from disk) can assert integrity before analyzing.

#ifndef SRC_CORE_VALIDATE_H_
#define SRC_CORE_VALIDATE_H_

#include <string>
#include <vector>

#include "src/sched/records.h"

namespace philly {

struct ValidationIssue {
  JobId job = kNoJob;
  std::string what;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  int64_t jobs_checked = 0;
  int64_t attempts_checked = 0;

  bool ok() const { return issues.empty(); }
  // First few issues, one per line, for error messages.
  std::string Summary(size_t max_issues = 10) const;
};

struct ValidateOptions {
  // When true, require utilization segments to exactly cover attempt time
  // (true for simulator output; trace round trips preserve it).
  bool check_segment_coverage = true;
  // Cap on recorded issues (validation keeps scanning but stops recording).
  size_t max_issues = 100;
};

// Validates per-job invariants. Cheap: O(total attempts + segments).
ValidationReport ValidateJobs(const std::vector<JobRecord>& jobs,
                              ValidateOptions options = {});

}  // namespace philly

#endif  // SRC_CORE_VALIDATE_H_
