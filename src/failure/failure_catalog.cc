#include "src/failure/failure_catalog.h"

#include <cassert>

namespace philly {
namespace {

// One catalog row. Category flags are assigned semantically per §4.2.1's
// descriptions (the published table marks membership; e.g. "traceback from
// crash" appears in all three categories).
FailureReasonInfo Row(FailureReason reason, std::string_view name, bool inf, bool ae,
                      bool user, double trials, double jobs, double users, double p50,
                      double p90, double p95, double rtf_share, double d1, double d24,
                      double dgt4, double rtfxd, double unsuccessful_prob,
                      double killed_prob) {
  FailureReasonInfo info;
  info.reason = reason;
  info.name = name;
  info.infrastructure = inf;
  info.ai_engine = ae;
  info.user = user;
  info.paper_trials = trials;
  info.paper_jobs = jobs;
  info.paper_users = users;
  info.rtf_p50_min = p50;
  info.rtf_p90_min = p90;
  info.rtf_p95_min = p95;
  info.rtf_total_share = rtf_share;
  info.demand_counts = {d1, d24, dgt4};
  info.rtf_x_demand_share = rtfxd;
  info.rtf_fit = LognormalSpec::FromMedianP90(p50, p90);
  if (reason == FailureReason::kSemanticError) {
    info.demand_rtf_exponent = 0.65;
  }
  info.mean_trials_per_job = jobs > 0 ? trials / jobs : 1.0;
  info.unsuccessful_prob = unsuccessful_prob;
  info.killed_after_failure_prob = killed_prob;
  return info;
}

const std::array<FailureReasonInfo, kNumFailureReasons> kCatalog = {{
    // reason, name, IF, AE, U, Trial, Job, User, p50, p90, p95, Total%,
    //   demand(1, 2-4, >4), RTFxDemand%, P(unsuccessful), P(killed after)
    Row(FailureReason::kCpuOutOfMemory, "CPU out of memory", false, true, true,  //
        12076, 2803, 65, 13.45, 17.73, 33.97, 6.62, 11465, 235, 376, 8.05, 0.93, 0.03),
    Row(FailureReason::kIncorrectInputs, "Incorrect inputs", true, false, true,  //
        9690, 4936, 208, 1.87, 404.83, 2095.73, 30.43, 5844, 2638, 1208, 24.21, 0.95,
        0.03),
    Row(FailureReason::kSemanticError, "Semantic error", false, true, true,  //
        2943, 2049, 159, 2.72, 376.00, 1436.88, 9.22, 1603, 494, 846, 17.06, 0.95, 0.03),
    Row(FailureReason::kCoreDump, "Core dump", false, true, true,  //
        2912, 1784, 122, 0.85, 72.75, 431.65, 3.35, 1936, 496, 480, 3.02, 0.95, 0.03),
    Row(FailureReason::kInvalidMemAccess, "Invalid mem access", false, true, false,  //
        2602, 1235, 108, 1.03, 403.50, 1357.38, 3.82, 712, 774, 1116, 4.75, 0.95, 0.03),
    Row(FailureReason::kModelCkptError, "Model ckpt error", true, false, false,  //
        1995, 948, 85, 181.67, 3728.93, 8196.02, 21.73, 743, 384, 868, 16.33, 0.85,
        0.05),
    Row(FailureReason::kCudaFailure, "CUDA failure", false, true, false,  //
        1484, 571, 70, 1.32, 19.87, 82.17, 0.62, 133, 1153, 198, 0.72, 0.92, 0.03),
    Row(FailureReason::kSyntaxError, "Syntax error", false, true, true,  //
        1132, 883, 110, 0.58, 5.02, 12.00, 0.19, 780, 184, 168, 0.26, 0.90, 0.08),
    Row(FailureReason::kTracebackFromCrash, "Traceback from crash", true, true, true,  //
        777, 271, 44, 1.02, 894.33, 1394.07, 2.34, 356, 277, 144, 1.74, 0.93, 0.03),
    Row(FailureReason::kMpiError, "MPI error", false, true, false,  //
        634, 166, 28, 1.62, 3015.27, 5143.98, 3.70, 456, 54, 124, 1.24, 0.90, 0.03),
    Row(FailureReason::kGpuOutOfMemory, "GPU out of memory", false, true, false,  //
        487, 261, 35, 18.53, 353.62, 2740.28, 1.08, 237, 70, 180, 2.10, 0.93, 0.03),
    Row(FailureReason::kMpiRuntimeFailure, "MPI runtime failure", true, false, false,  //
        478, 420, 96, 1389.48, 13778.60, 18090.88, 14.63, 240, 141, 97, 15.34, 0.80,
        0.05),
    Row(FailureReason::kPermissionError, "Permission error", true, false, false,  //
        299, 151, 37, 1.00, 8.15, 15.85, 0.07, 56, 202, 41, 0.03, 0.95, 0.02),
    Row(FailureReason::kImportError, "Import error", false, true, true,  //
        148, 148, 41, 0.67, 4.58, 10.73, 0.06, 108, 30, 10, 0.02, 0.95, 0.03),
    Row(FailureReason::kJobPreempted, "Job preempted", true, false, false,  //
        147, 95, 34, 559.08, 2682.85, 5892.23, 1.66, 25, 95, 27, 4.73, 0.20, 0.05),
    Row(FailureReason::kCudaInitFailed, "CUDA init failed", true, false, false,  //
        141, 69, 20, 1.08, 2.18, 4.63, 0.03, 16, 66, 59, 0.13, 0.70, 0.05),
    Row(FailureReason::kModelDiverged, "Model diverged", false, false, true,  //
        84, 30, 5, 1.48, 44.37, 76.53, 0.01, 78, 5, 1, 0.01, 0.80, 0.15),
    Row(FailureReason::kCudaVersionMismatch, "CUDA ver. mismatch", false, false, true,  //
        49, 49, 19, 0.83, 1.65, 1.67, 0.00, 1, 1, 47, 0.00, 0.95, 0.02),
    Row(FailureReason::kGpuEccError, "GPU ECC error", true, false, false,  //
        10, 10, 2, 26.82, 671.92, 2035.02, 0.03, 1, 5, 4, 0.05, 0.50, 0.05),
    Row(FailureReason::kOutputNodeError, "Output node error", false, true, false,  //
        3, 3, 1, 0.85, 0.95, 0.95, 0.00, 3, 0, 0, 0.00, 0.95, 0.02),
    Row(FailureReason::kCannotLoadLibs, "Cannot load libs", false, true, false,  //
        1, 1, 1, 0.12, 0.12, 0.12, 0.00, 1, 0, 0, 0.00, 0.95, 0.02),
    Row(FailureReason::kNoSignature, "No signature", false, false, false,  //
        1684, 698, 94, 1.87, 28.00, 95.17, 0.42, 1235, 294, 155, 0.21, 0.93, 0.03),
    // Machine-fault family: emitted by the scheduler when src/fault kills an
    // attempt, never sampled by the injector (paper_trials and demand counts
    // are zero, so injector weights — and its RNG stream — are untouched).
    // The RTF percentiles are placeholders for the lognormal fit only.
    Row(FailureReason::kNodeCrash, "Node crash", true, false, false,  //
        0, 0, 0, 30.0, 600.0, 1200.0, 0.00, 0, 0, 0, 0.00, 0.10, 0.02),
    Row(FailureReason::kNodeEccDegraded, "Node ECC degraded", true, false, false,  //
        0, 0, 0, 60.0, 900.0, 1800.0, 0.00, 0, 0, 0, 0.00, 0.10, 0.02),
    Row(FailureReason::kRackSwitchOutage, "Rack switch outage", true, false, false,  //
        0, 0, 0, 30.0, 300.0, 600.0, 0.00, 0, 0, 0, 0.00, 0.10, 0.02),
}};

}  // namespace

std::string_view ToString(FailureReason reason) { return InfoOf(reason).name; }

DemandBucket DemandBucketOf(int num_gpus) {
  if (num_gpus <= 1) {
    return DemandBucket::k1Gpu;
  }
  if (num_gpus <= 4) {
    return DemandBucket::k2To4Gpu;
  }
  return DemandBucket::kGt4Gpu;
}

std::string_view ToString(DemandBucket bucket) {
  switch (bucket) {
    case DemandBucket::k1Gpu:
      return "1";
    case DemandBucket::k2To4Gpu:
      return "2-4";
    case DemandBucket::kGt4Gpu:
      return ">4";
  }
  return "?";
}

std::span<const FailureReasonInfo, kNumFailureReasons> FailureCatalog() {
  return kCatalog;
}

const FailureReasonInfo& InfoOf(FailureReason reason) {
  const auto idx = static_cast<size_t>(reason);
  assert(idx < kCatalog.size());
  return kCatalog[idx];
}

double TotalPaperTrials() {
  double total = 0.0;
  for (const auto& info : kCatalog) {
    total += info.paper_trials;
  }
  return total;
}

}  // namespace philly
