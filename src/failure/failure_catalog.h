// Failure taxonomy: the 22 failure reasons of Table 7 with their published
// statistics, used both to drive the failure injector and as the reference the
// reproduced table is compared against.
//
// Category flags follow the paper's three sources: Infrastructure (IF) —
// YARN/HDFS/framework components; AI Engine (AE) — TensorFlow/Torch/etc.;
// User (U) — programmer errors. A reason may belong to several categories.

#ifndef SRC_FAILURE_FAILURE_CATALOG_H_
#define SRC_FAILURE_FAILURE_CATALOG_H_

#include <array>
#include <span>
#include <string_view>

#include "src/common/distributions.h"
#include "src/workload/job.h"

namespace philly {

enum class FailureReason {
  kCpuOutOfMemory,
  kIncorrectInputs,
  kSemanticError,
  kCoreDump,
  kInvalidMemAccess,
  kModelCkptError,
  kCudaFailure,
  kSyntaxError,
  kTracebackFromCrash,
  kMpiError,
  kGpuOutOfMemory,
  kMpiRuntimeFailure,
  kPermissionError,
  kImportError,
  kJobPreempted,
  kCudaInitFailed,
  kModelDiverged,
  kCudaVersionMismatch,
  kGpuEccError,
  kOutputNodeError,
  kCannotLoadLibs,
  kNoSignature,
  // Machine-level fault family (src/fault): attempts killed because their
  // server crashed, was drained for GPU ECC degradation, or lost its rack
  // switch. Not in the published Table 7 (paper stats stay zero), so the
  // per-job injector never samples them; only the scheduler emits them.
  // Deliberately AFTER kNoSignature: the injector's cursed-pair hash keys on
  // the numeric enum value, so the 22 published reasons must keep the values
  // they had before this family existed.
  kNodeCrash,
  kNodeEccDegraded,
  kRackSwitchOutage,
};

inline constexpr int kNumFailureReasons = 25;

std::string_view ToString(FailureReason reason);

// Demand-mix buckets used by Table 7's "GPU Demand" columns.
enum class DemandBucket { k1Gpu, k2To4Gpu, kGt4Gpu };
inline constexpr int kNumDemandBuckets = 3;
DemandBucket DemandBucketOf(int num_gpus);
std::string_view ToString(DemandBucket bucket);

struct FailureReasonInfo {
  FailureReason reason = FailureReason::kNoSignature;
  std::string_view name;

  // Category membership.
  bool infrastructure = false;
  bool ai_engine = false;
  bool user = false;

  // Published occurrence statistics (Table 7 columns 3).
  double paper_trials = 0.0;
  double paper_jobs = 0.0;
  double paper_users = 0.0;

  // Published runtime-to-failure percentiles, in minutes (columns 4).
  double rtf_p50_min = 0.0;
  double rtf_p90_min = 0.0;
  double rtf_p95_min = 0.0;
  // Published share of summed RTF across all failures (column "Total %").
  double rtf_total_share = 0.0;

  // Published GPU-demand occurrence counts (columns 5: 1 / 2-4 / >4 GPUs).
  std::array<double, kNumDemandBuckets> demand_counts = {0, 0, 0};

  // Published RTF x demand share (column 6, %).
  double rtf_x_demand_share = 0.0;

  // --- Derived / modeling parameters (not printed by the paper) ---
  // Lognormal fitted from (p50, p90); p95 is then implied by the fit.
  LognormalSpec rtf_fit;
  // Mean number of failure trials a job affected by this reason accrues
  // (Trial / Job from the table).
  double mean_trials_per_job = 1.0;
  // Exponent of the RTF scaling with GPU demand: sampled RTFs are multiplied
  // by num_gpus^demand_rtf_exponent. Zero for most reasons; positive for
  // semantic errors, whose distributed-synchronization bugs surface only
  // after long runs on large jobs (§4.2.4 / Figure 10).
  double demand_rtf_exponent = 0.0;
  // Probability the affected job ends `unsuccessful` (vs. the user killing it
  // after failures, vs. recovering and running clean). Transient
  // infrastructure reasons recover more often.
  double unsuccessful_prob = 0.94;
  double killed_after_failure_prob = 0.03;
};

// The full catalog, indexed by FailureReason.
std::span<const FailureReasonInfo, kNumFailureReasons> FailureCatalog();

const FailureReasonInfo& InfoOf(FailureReason reason);

// Sum of paper_trials over the catalog (the denominator of "Total %"-style
// shares; 39776 events in the published table).
double TotalPaperTrials();

}  // namespace philly

#endif  // SRC_FAILURE_FAILURE_CATALOG_H_
