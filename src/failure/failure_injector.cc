#include "src/failure/failure_injector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace philly {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

FailureInjector::FailureInjector(FailureInjectorConfig config) : config_(config) {
  const auto catalog = FailureCatalog();
  for (int b = 0; b < kNumDemandBuckets; ++b) {
    for (int r = 0; r < kNumFailureReasons; ++r) {
      const auto& info = catalog[static_cast<size_t>(r)];
      double demand_total = 0.0;
      for (double d : info.demand_counts) {
        demand_total += d;
      }
      const double share =
          demand_total > 0 ? info.demand_counts[static_cast<size_t>(b)] / demand_total
                           : 0.0;
      // Scheduler-driven preemption is emitted by the scheduler itself, not
      // injected, so its weight here is zero.
      const bool injectable = info.reason != FailureReason::kJobPreempted;
      bucket_weights_[static_cast<size_t>(b)][static_cast<size_t>(r)] =
          injectable ? info.paper_trials * share : 0.0;
    }
  }
}

double FailureInjector::UserReasonMultiplier(UserId user, FailureReason reason) const {
  const uint64_t h = Mix64((static_cast<uint64_t>(user) << 20) ^
                           static_cast<uint64_t>(reason) ^ (config_.seed * 0x9E37ull));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.cursed_pair_prob ? config_.cursed_pair_multiplier : 1.0;
}

FailureReason FailureInjector::SampleReason(const JobSpec& job, Rng& rng) const {
  const auto bucket = static_cast<size_t>(DemandBucketOf(job.num_gpus));
  const double planned_min = ToMinutes(job.planned_duration);
  std::array<double, kNumFailureReasons> weights = bucket_weights_[bucket];
  for (int r = 0; r < kNumFailureReasons; ++r) {
    const auto& info = FailureCatalog()[static_cast<size_t>(r)];
    // Jobs much shorter than a reason's median RTF are unlikely to live long
    // enough to hit it (checkpoint/MPI-runtime failures happen to long jobs).
    if (planned_min < info.rtf_p50_min && info.rtf_p50_min > 0) {
      weights[static_cast<size_t>(r)] *= std::pow(planned_min / info.rtf_p50_min, 0.8);
    }
    // Reasons whose RTF grows with demand (distributed-sync semantic bugs)
    // also need the long-job population: a big job must run long enough for
    // the scaled RTF to materialize (§4.2.4).
    if (info.demand_rtf_exponent > 0.0 && planned_min > info.rtf_p50_min) {
      weights[static_cast<size_t>(r)] *=
          std::min(5.0, std::pow(planned_min / info.rtf_p50_min, 0.25));
    }
    weights[static_cast<size_t>(r)] *=
        UserReasonMultiplier(job.user, static_cast<FailureReason>(r));
  }
  return static_cast<FailureReason>(rng.Categorical(weights));
}

SimDuration FailureInjector::SampleRtf(const FailureReasonInfo& info, SimDuration planned,
                                       int num_gpus, Rng& rng) const {
  constexpr int kMaxRejects = 40;
  const auto planned_min = ToMinutes(planned);
  const double demand_scale =
      info.demand_rtf_exponent > 0.0
          ? std::pow(static_cast<double>(num_gpus), info.demand_rtf_exponent)
          : 1.0;
  for (int i = 0; i < kMaxRejects; ++i) {
    const double rtf_min = info.rtf_fit.Sample(rng) * demand_scale;
    if (rtf_min <= planned_min) {
      return std::max<SimDuration>(2, static_cast<SimDuration>(rtf_min * 60.0));
    }
  }
  // The job is simply too short for this reason's typical RTF: fail somewhere
  // in the back half of the run.
  return std::max<SimDuration>(
      2, static_cast<SimDuration>(planned * rng.Uniform(0.5, 1.0)));
}

FailurePlan FailureInjector::PlanFor(const JobSpec& job) const {
  FailurePlan plan;
  Rng rng(Mix64(config_.seed ^ (static_cast<uint64_t>(job.id) * 0x9E3779B97F4A7C15ull)));

  const auto bucket = static_cast<size_t>(BucketOf(job.num_gpus));
  // A user-level proneness multiplier (lognormal around 1) concentrates
  // failures on some users beyond the per-reason curses.
  const uint64_t uh = Mix64(static_cast<uint64_t>(job.user) ^ (config_.seed << 7));
  const double u = (static_cast<double>(uh >> 11) + 0.5) * 0x1.0p-53;
  const double user_proneness = std::exp(0.5 * Probit(u));

  // Long jobs live through more opportunities to fail (checkpoints, network
  // incidents); this also gives infra failures the long-job population their
  // large RTFs require.
  const double dur_factor = std::clamp(
      std::log(ToMinutes(job.planned_duration) / 30.0) / std::log(10000.0 / 30.0), 0.0,
      1.0);
  const double p_fail = std::clamp(config_.failure_prob_by_bucket[bucket] *
                                       user_proneness * (0.7 + 1.5 * dur_factor) *
                                       config_.failure_scale,
                                   0.0, 0.95);
  if (!rng.Bernoulli(p_fail)) {
    return plan;
  }

  plan.fails = true;
  plan.reason = SampleReason(job, rng);
  const FailureReasonInfo& info = InfoOf(plan.reason);

  // Trials: floor/ceil mixture matching the catalog's mean trials per job.
  const double mean = std::max(1.0, info.mean_trials_per_job);
  const double fl = std::floor(mean);
  const int n = static_cast<int>(fl) + (rng.Bernoulli(mean - fl) ? 1 : 0);
  plan.num_failure_trials = std::clamp(n, 1, config_.max_failure_trials);
  plan.trial_rtfs.reserve(static_cast<size_t>(plan.num_failure_trials));
  for (int i = 0; i < plan.num_failure_trials; ++i) {
    plan.trial_rtfs.push_back(
        SampleRtf(info, job.planned_duration, job.num_gpus, rng));
  }

  const double roll = rng.Uniform();
  if (roll < info.unsuccessful_prob) {
    plan.disposition = PostFailureDisposition::kUnsuccessful;
  } else if (roll < info.unsuccessful_prob + info.killed_after_failure_prob) {
    plan.disposition = PostFailureDisposition::kKilledByUser;
  } else {
    plan.disposition = PostFailureDisposition::kRecoversClean;
  }
  return plan;
}

}  // namespace philly
