// Failure injection: decides, per job, whether and how it fails.
//
// The injector is the exogenous half of §4.2: it assigns each job a failure
// plan — reason, number of failure trials, per-trial runtime-to-failure, and
// the terminal disposition after failures stop — sampled from the Table 7
// catalog. The endogenous half (actual retry execution, preemption events,
// GPU-time accounting) happens in the scheduler/runtime.
//
// Plans are deterministic per (seed, job id): calling PlanFor twice for the
// same job returns the same plan regardless of call order, which keeps the
// simulation reproducible under scheduler changes.
//
// Modeling choices (calibrated in tests, documented in DESIGN.md):
//  * P(job experiences failures) rises with GPU count — Fig 9 shows larger
//    jobs retry more and finish unsuccessful more often.
//  * A per-(user, reason) "cursed" multiplier concentrates some reasons on a
//    few users (§4.2.2: one engineer caused most CPU-OOM trials; user-level
//    repetition factor 38.8 vs job-level 2.3).
//  * Reason choice is conditioned on the job's demand bucket (Table 7 demand
//    columns) and penalized when the job is too short to plausibly reach the
//    reason's typical RTF — this is exactly the paper's observation that
//    infrastructure failures appear only after long executions.

#ifndef SRC_FAILURE_FAILURE_INJECTOR_H_
#define SRC_FAILURE_FAILURE_INJECTOR_H_

#include <vector>

#include "src/common/rng.h"
#include "src/failure/failure_catalog.h"
#include "src/workload/job.h"

namespace philly {

// What the job does after its failure trials stop.
enum class PostFailureDisposition {
  kUnsuccessful,   // retries exhausted; scheduler marks the job unsuccessful
  kKilledByUser,   // user notices the failures and terminates the job
  kRecoversClean,  // transient issue; next attempt runs to the intrinsic outcome
};

struct FailurePlan {
  bool fails = false;
  FailureReason reason = FailureReason::kNoSignature;
  // Number of consecutive failing attempts (>= 1 when fails).
  int num_failure_trials = 0;
  // Runtime-to-failure for each failing attempt, seconds.
  std::vector<SimDuration> trial_rtfs;
  PostFailureDisposition disposition = PostFailureDisposition::kRecoversClean;
};

struct FailureInjectorConfig {
  uint64_t seed = 7;
  // Per-size-bucket probability that a job experiences failures at all
  // (1 / 2-4 / 5-8 / >8 GPUs). Overall ~18% of jobs under the default mix.
  std::array<double, kNumSizeBuckets> failure_prob_by_bucket = {0.095, 0.15, 0.21, 0.33};
  // Probability that a given (user, reason) pair is "cursed" and the weight
  // multiplier applied when it is.
  double cursed_pair_prob = 0.006;
  double cursed_pair_multiplier = 40.0;
  // Hard cap on failing attempts (the scheduler may stop earlier via its
  // retry policy).
  int max_failure_trials = 6;
  // Global scale on failure probability (ablations set this to explore
  // failure-handling design implications).
  double failure_scale = 1.0;
};

class FailureInjector {
 public:
  explicit FailureInjector(FailureInjectorConfig config = {});

  // Deterministic plan for `job` (same result for the same seed and job id).
  FailurePlan PlanFor(const JobSpec& job) const;

  const FailureInjectorConfig& config() const { return config_; }

 private:
  FailureReason SampleReason(const JobSpec& job, Rng& rng) const;
  SimDuration SampleRtf(const FailureReasonInfo& info, SimDuration planned,
                        int num_gpus, Rng& rng) const;
  double UserReasonMultiplier(UserId user, FailureReason reason) const;

  FailureInjectorConfig config_;
  // Precomputed reason weights per demand bucket: paper_trials scaled by the
  // reason's demand-column share.
  std::array<std::array<double, kNumFailureReasons>, kNumDemandBuckets> bucket_weights_;
};

}  // namespace philly

#endif  // SRC_FAILURE_FAILURE_INJECTOR_H_
