#include "src/failure/failure_logs.h"

#include <algorithm>
#include <cstdio>

#include "src/common/strings.h"

namespace philly {
namespace {

// Message templates per reason. {} placeholders are filled with small random
// integers to vary the text without changing the signature.
struct TemplateSet {
  FailureReason reason;
  std::vector<const char*> templates;
  bool wrap_in_traceback;  // render inside a Python traceback
};

const std::vector<TemplateSet>& Templates() {
  static const std::vector<TemplateSet> kTemplates = {
      {FailureReason::kCpuOutOfMemory,
       {"MemoryError",
        "OSError: [Errno 12] Cannot allocate memory",
        "Out of memory: Kill process {} (python) score 987 or sacrifice child",
        "Container killed by the ApplicationMaster. Exit code is 137"},
       true},
      {FailureReason::kIncorrectInputs,
       {"FileNotFoundError: [Errno 2] No such file or directory: "
        "'hdfs://cluster/data/train_{}.tfrecord'",
        "org.apache.hadoop.hdfs.BlockMissingException: Could not obtain block "
        "blk_{}",
        "ValueError: could not parse serialized Example from record {}",
        "IOError: corrupted record at offset {}",
        "tf.errors.DataLossError: truncated record at {}"},
       true},
      {FailureReason::kSemanticError,
       {"AttributeError: module 'tensorflow' has no attribute 'contrib_{}'",
        "TypeError: forward() takes {} positional arguments but 4 were given",
        "ValueError: Dimensions must be equal, but are {} and 512",
        "KeyError: 'layer_{}/weights'",
        "RuntimeError: Error(s) in loading state_dict: size mismatch for fc.weight"},
       true},
      {FailureReason::kCoreDump,
       {"Segmentation fault (core dumped)", "Aborted (core dumped)",
        "*** Error in `python': double free or corruption (!prev): 0x{}",
        "Bus error (core dumped)"},
       false},
      {FailureReason::kInvalidMemAccess,
       {"RuntimeError: CUDA error: an illegal memory access was encountered",
        "RuntimeError: CUDA error: misaligned address",
        "terminate called after throwing an instance of 'c10::Error': invalid "
        "pointer 0x{}"},
       false},
      {FailureReason::kModelCkptError,
       {"Failed to save checkpoint to hdfs://cluster/models/ckpt-{}: lease "
        "recovery in progress",
        "org.apache.hadoop.ipc.RemoteException: Name node is in safe mode",
        "checkpoint write failed after epoch {}: HDFS pipeline broken"},
       false},
      {FailureReason::kCudaFailure,
       {"RuntimeError: CUDA error: unspecified launch failure",
        "cudaErrorLaunchTimeout: the launch timed out and was terminated",
        "CUDNN_STATUS_EXECUTION_FAILED", "CUDNN_STATUS_INTERNAL_ERROR at layer {}"},
       false},
      {FailureReason::kSyntaxError,
       {"SyntaxError: invalid syntax", "IndentationError: unexpected indent",
        "SyntaxError: EOL while scanning string literal",
        "SyntaxError: unexpected EOF while parsing"},
       true},
      {FailureReason::kTracebackFromCrash,
       {"Exception: training aborted unexpectedly",
        "RuntimeError: unknown error at iteration {}",
        "Exception in thread worker-{}: unhandled exception"},
       true},
      {FailureReason::kMpiError,
       {"MPI_ABORT was invoked on rank {} in communicator MPI_COMM_WORLD",
        "MPI_ERR_TRUNCATE: message truncated",
        "mpirun noticed that process rank {} exited on signal 6"},
       false},
      {FailureReason::kGpuOutOfMemory,
       {"RuntimeError: CUDA out of memory. Tried to allocate {}.00 MiB",
        "cudaErrorMemoryAllocation: out of memory", "CUDNN_STATUS_ALLOC_FAILED"},
       false},
      {FailureReason::kMpiRuntimeFailure,
       {"ORTE daemon has unexpectedly failed after launch on node gpu-{}",
        "btl_tcp_endpoint: connection reset by peer (rank {})",
        "MPI runtime: socket closed by remote peer during allreduce"},
       false},
      {FailureReason::kPermissionError,
       {"PermissionError: [Errno 13] Permission denied: '/var/storage/out_{}'",
        "org.apache.hadoop.security.AccessControlException: Permission denied: "
        "user=svc{}"},
       true},
      {FailureReason::kImportError,
       {"ImportError: No module named custom_ops_{}",
        "ModuleNotFoundError: No module named 'apex'"},
       true},
      {FailureReason::kJobPreempted,
       {"Container preempted by scheduler: releasing GPUs for queue rebalance",
        "YARN: container container_{} released on preemption request"},
       false},
      {FailureReason::kCudaInitFailed,
       {"failed call to cuInit: CUDA_ERROR_NO_DEVICE",
        "CUDA initialization failure with error {}",
        "cudaErrorDevicesUnavailable: all CUDA-capable devices are busy"},
       false},
      {FailureReason::kModelDiverged,
       {"training diverged: loss is NaN at iteration {}",
        "gradient overflow detected, loss=inf, aborting",
        "assert not torch.isnan(loss).any(): Loss is NaN"},
       false},
      {FailureReason::kCudaVersionMismatch,
       {"CUDA driver version is insufficient for CUDA runtime version",
        "cuDNN library version mismatch: compiled 7.{}, loaded 6.0"},
       false},
      {FailureReason::kGpuEccError,
       {"NVRM: Xid 48: double bit ECC error detected",
        "GPU {} has fallen off the bus: double-bit ECC row remap failure"},
       false},
      {FailureReason::kOutputNodeError,
       {"tf.errors.NotFoundError: Output node 'softmax_{}' not found in graph",
        "fetch target 'output' cannot be found in the graph"},
       false},
      {FailureReason::kCannotLoadLibs,
       {"error while loading shared libraries: libcudart.so.9.{}: cannot open "
        "shared object file",
        "OSError: libcudnn.so.7: cannot open shared object file"},
       false},
      {FailureReason::kNodeCrash,
       {"node gpu-{} marked LOST: missed 3 consecutive heartbeats",
        "kernel panic - not syncing: fatal machine check on physical node",
        "NodeManager on gpu-{} stopped responding; draining containers"},
       false},
      {FailureReason::kNodeEccDegraded,
       {"NVRM: Xid 64: ECC page retirement pending on GPU {}",
        "DBE rate threshold exceeded: node drained for GPU swap",
        "row remapping pending on device {}: scheduling node maintenance"},
       false},
      {FailureReason::kRackSwitchOutage,
       {"top-of-rack switch unreachable: rack {} isolated from fabric",
        "ibv_poll_cq: transport retry counter exceeded on all QPs",
        "InfiniBand port down on leaf switch {}: links lost to every member"},
       false},
      {FailureReason::kNoSignature,
       {"job process exited with code -1 and no diagnostics",
        "worker {} terminated unexpectedly", "exit status 255",
        "application master signalled shutdown"},
       false},
  };
  return kTemplates;
}

std::string FillTemplate(const char* tmpl, Rng& rng) {
  std::string out;
  for (const char* p = tmpl; *p != '\0'; ++p) {
    if (p[0] == '{' && p[1] == '}') {
      out += std::to_string(rng.Between(1, 4096));
      ++p;
    } else {
      out += *p;
    }
  }
  return out;
}

const TemplateSet& SetFor(FailureReason reason) {
  for (const auto& set : Templates()) {
    if (set.reason == reason) {
      return set;
    }
  }
  return Templates().back();  // kNoSignature
}

}  // namespace

std::vector<std::string> FailureLogSynthesizer::LinesFor(FailureReason reason,
                                                         Rng& rng) const {
  std::vector<std::string> lines;
  // Normal progress noise first.
  const int noise = static_cast<int>(rng.Between(1, 4));
  for (int i = 0; i < noise; ++i) {
    lines.push_back("INFO worker " + std::to_string(rng.Between(0, 15)) +
                    ": step time " + FormatDouble(rng.Uniform(0.1, 2.0), 3) + "s");
  }
  const TemplateSet& set = SetFor(reason);
  const auto& tmpl = set.templates[rng.Below(set.templates.size())];
  const std::string message = FillTemplate(tmpl, rng);
  if (set.wrap_in_traceback && rng.Bernoulli(0.7)) {
    lines.push_back("Traceback (most recent call last):");
    lines.push_back("  File \"train.py\", line " + std::to_string(rng.Between(10, 900)) +
                    ", in main");
    lines.push_back("  File \"model.py\", line " + std::to_string(rng.Between(10, 400)) +
                    ", in forward");
  }
  lines.push_back(message);
  return lines;
}

std::string FailureLogSynthesizer::EpochLossLine(int epoch, int total_epochs,
                                                 double loss) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Epoch %d/%d: loss=%.6f", epoch, total_epochs, loss);
  return buf;
}

bool ParseEpochLossLine(std::string_view line, EpochLoss* out) {
  int epoch = 0;
  int total = 0;
  double loss = 0.0;
  // std::sscanf needs a NUL-terminated buffer.
  const std::string buf(line);
  if (std::sscanf(buf.c_str(), "Epoch %d/%d: loss=%lf", &epoch, &total, &loss) != 3) {
    return false;
  }
  out->epoch = epoch;
  out->total_epochs = total;
  out->loss = loss;
  return true;
}

FailureClassifier::FailureClassifier() {
  const auto add = [this](FailureReason reason, int priority,
                          std::initializer_list<const char*> patterns) {
    for (const char* p : patterns) {
      rules_.push_back({p, reason, priority});
    }
  };
  // Root-cause signatures (priority 10): most specific first.
  add(FailureReason::kGpuOutOfMemory, 10,
      {"CUDA out of memory", "cudaErrorMemoryAllocation", "CUDNN_STATUS_ALLOC_FAILED"});
  add(FailureReason::kCpuOutOfMemory, 10,
      {"MemoryError", "Cannot allocate memory", "Out of memory: Kill process",
       "Exit code is 137", "std::bad_alloc", "Killed process", "oom-killer",
       "virtual memory exhausted"});
  add(FailureReason::kIncorrectInputs, 10,
      {"No such file or directory: 'hdfs://", "BlockMissingException",
       "could not parse serialized Example", "corrupted record at offset",
       "DataLossError", "FileNotFoundError", "truncated record",
       "cannot read input shard", "inconsistent number of columns"});
  add(FailureReason::kModelCkptError, 10,
      {"Failed to save checkpoint", "Name node is in safe mode",
       "checkpoint write failed", "lease recovery in progress",
       "HDFS pipeline broken", "could not complete file /models"});
  add(FailureReason::kInvalidMemAccess, 10,
      {"illegal memory access", "misaligned address", "invalid pointer"});
  add(FailureReason::kCudaVersionMismatch, 10,
      {"driver version is insufficient", "library version mismatch"});
  add(FailureReason::kCudaInitFailed, 10,
      {"cuInit", "CUDA initialization failure", "cudaErrorDevicesUnavailable"});
  add(FailureReason::kGpuEccError, 10,
      {"double bit ECC", "double-bit ECC", "Xid 48", "Xid 63",
       "fallen off the bus", "uncorrectable ECC"});
  // Machine-fault family (src/fault): health-infrastructure signatures, kept
  // disjoint from the per-GPU ECC signatures above.
  add(FailureReason::kNodeCrash, 10,
      {"marked LOST", "consecutive heartbeats", "kernel panic",
       "NodeManager", "stopped responding"});
  add(FailureReason::kNodeEccDegraded, 10,
      {"Xid 64", "page retirement pending", "row remapping pending",
       "DBE rate threshold", "drained for GPU swap"});
  add(FailureReason::kRackSwitchOutage, 10,
      {"top-of-rack switch", "transport retry counter exceeded",
       "InfiniBand port down", "isolated from fabric"});
  add(FailureReason::kCudaFailure, 20,
      {"unspecified launch failure", "cudaErrorLaunchTimeout",
       "CUDNN_STATUS_EXECUTION_FAILED", "CUDNN_STATUS_INTERNAL_ERROR",
       "CUDNN_STATUS_NOT_INITIALIZED", "device-side assert triggered"});
  // Generic CUDA catch-all after every specific CUDA signature.
  add(FailureReason::kCudaFailure, 40, {"CUDA error:", "cudaError"});
  add(FailureReason::kSyntaxError, 10,
      {"SyntaxError", "IndentationError", "unexpected EOF while parsing"});
  add(FailureReason::kImportError, 10, {"ImportError", "ModuleNotFoundError"});
  add(FailureReason::kPermissionError, 10,
      {"PermissionError", "Permission denied", "AccessControlException"});
  add(FailureReason::kSemanticError, 20,
      {"AttributeError", "TypeError", "KeyError", "Dimensions must be equal",
       "size mismatch for"});
  add(FailureReason::kModelDiverged, 10,
      {"loss is NaN", "Loss is NaN", "loss=inf", "gradient overflow"});
  add(FailureReason::kMpiRuntimeFailure, 10,
      {"ORTE daemon", "connection reset by peer", "socket closed by remote peer"});
  add(FailureReason::kMpiError, 20,
      {"MPI_ABORT", "MPI_ERR", "exited on signal", "PMIX ERROR"});
  add(FailureReason::kCoreDump, 30,
      {"core dumped", "double free or corruption", "Exit code is 134",
       "stack smashing detected", "SIGSEGV", "SIGABRT"});
  add(FailureReason::kJobPreempted, 10,
      {"preempted by scheduler", "released on preemption"});
  add(FailureReason::kOutputNodeError, 10,
      {"Output node", "fetch target 'output'"});
  add(FailureReason::kCannotLoadLibs, 10,
      {"error while loading shared libraries", "cannot open shared object file"});
  // Implicit signature (priority 900): a traceback whose root cause none of
  // the explicit rules recognized.
  add(FailureReason::kTracebackFromCrash, 900,
      {"Traceback (most recent call last):", "unhandled exception",
       "training aborted unexpectedly", "RuntimeError: unknown error"});

  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const SignatureRule& a, const SignatureRule& b) {
                     return a.priority < b.priority;
                   });
}

FailureReason FailureClassifier::Classify(std::span<const std::string> lines) const {
  for (const auto& rule : rules_) {
    for (const auto& line : lines) {
      if (Contains(line, rule.pattern)) {
        return rule.reason;
      }
    }
  }
  return FailureReason::kNoSignature;
}

}  // namespace philly
