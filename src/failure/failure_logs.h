// Failure log synthesis and signature-based classification (§4.2.1).
//
// The paper's pipeline captures failure root causes from the stdout/stderr of
// failed jobs using a classifier with >230 signature rules — explicit
// signatures (e.g. "CUDA out of memory") plus implicit ones (a Python
// traceback with no recognizable root cause). We reproduce that path: the
// synthesizer renders realistic log tails for a failing attempt (several
// templates per reason, some wrapped in tracebacks, plus innocuous progress
// noise), and the classifier re-derives the reason from the raw text alone.
// The analysis pipeline (src/core) only ever sees the text — tests compare
// classifier output against the injected ground truth.

#ifndef SRC_FAILURE_FAILURE_LOGS_H_
#define SRC_FAILURE_FAILURE_LOGS_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/failure/failure_catalog.h"

namespace philly {

class FailureLogSynthesizer {
 public:
  FailureLogSynthesizer() = default;

  // Log tail (stdout+stderr interleaved) for an attempt failing with `reason`.
  // Includes a few lines of normal progress noise before the failure.
  std::vector<std::string> LinesFor(FailureReason reason, Rng& rng) const;

  // A framework progress line announcing per-epoch loss, parseable by
  // ParseEpochLossLine below (drives the Figure 8 analysis).
  static std::string EpochLossLine(int epoch, int total_epochs, double loss);
};

// Parses a line produced by EpochLossLine. Returns false if the line is not a
// loss line.
struct EpochLoss {
  int epoch = 0;
  int total_epochs = 0;
  double loss = 0.0;
};
bool ParseEpochLossLine(std::string_view line, EpochLoss* out);

// One signature rule: substring pattern -> reason, with a priority (lower
// fires first) so specific root-cause signatures win over the generic
// traceback rule.
struct SignatureRule {
  std::string pattern;
  FailureReason reason = FailureReason::kNoSignature;
  int priority = 100;
};

class FailureClassifier {
 public:
  FailureClassifier();

  // Classifies a failed attempt's log tail; kNoSignature when nothing
  // matches (4.2% of trials in the paper).
  FailureReason Classify(std::span<const std::string> lines) const;

  size_t NumRules() const { return rules_.size(); }
  std::span<const SignatureRule> Rules() const { return rules_; }

 private:
  std::vector<SignatureRule> rules_;  // sorted by priority
};

}  // namespace philly

#endif  // SRC_FAILURE_FAILURE_LOGS_H_
