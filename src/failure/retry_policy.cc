#include "src/failure/retry_policy.h"

namespace philly {

bool AdaptiveRetryPolicy::ShouldRetry(FailureReason reason, int attempt_index) const {
  if (attempt_index >= max_retries_) {
    return false;
  }
  switch (reason) {
    // Deterministic user/programming errors: retrying re-runs the same bug.
    case FailureReason::kSyntaxError:
    case FailureReason::kImportError:
    case FailureReason::kSemanticError:
    case FailureReason::kIncorrectInputs:
    case FailureReason::kPermissionError:
    case FailureReason::kCudaVersionMismatch:
    case FailureReason::kCannotLoadLibs:
    case FailureReason::kOutputNodeError:
    case FailureReason::kModelDiverged:
    case FailureReason::kCpuOutOfMemory:
    case FailureReason::kGpuOutOfMemory:
      return false;
    // Transient infrastructure / runtime conditions: retry.
    case FailureReason::kModelCkptError:
    case FailureReason::kMpiError:
    case FailureReason::kMpiRuntimeFailure:
    case FailureReason::kJobPreempted:
    case FailureReason::kCudaInitFailed:
    case FailureReason::kGpuEccError:
    case FailureReason::kCudaFailure:
    case FailureReason::kCoreDump:
    case FailureReason::kInvalidMemAccess:
    case FailureReason::kTracebackFromCrash:
    // Machine faults are the canonical transient class: the job itself is
    // healthy, the hardware under it died.
    case FailureReason::kNodeCrash:
    case FailureReason::kNodeEccDegraded:
    case FailureReason::kRackSwitchOutage:
    case FailureReason::kNoSignature:
      return true;
  }
  return true;
}

}  // namespace philly
