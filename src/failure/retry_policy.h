// Retry policies (§2.3 and the §5 "improving failure handling" implication).
//
// Philly retried every failed job a fixed number of times before marking it
// unsuccessful. The paper argues for an adaptive policy that classifies the
// failure in real time and stops retrying error categories that retries
// cannot fix (user/programming errors), while still retrying transient ones
// (network timeouts, preemption). Both are implemented here; the ablation
// bench quantifies the GPU-time the adaptive policy saves.

#ifndef SRC_FAILURE_RETRY_POLICY_H_
#define SRC_FAILURE_RETRY_POLICY_H_

#include <map>
#include <memory>
#include <utility>

#include "src/failure/failure_catalog.h"
#include "src/workload/job.h"

namespace philly {

class RetryPolicy {
 public:
  virtual ~RetryPolicy() = default;

  // Whether to re-execute a job whose attempt `attempt_index` (0-based) just
  // failed with `reason` (as classified from its logs).
  virtual bool ShouldRetry(FailureReason reason, int attempt_index) const = 0;

  // User-aware refinement used by the scheduler runtime; the default ignores
  // the user. Stateful policies override this to correlate failures across a
  // user's jobs (§5: "classify error messages in real time ... adapting
  // scheduling parameters per job as well as across jobs").
  virtual bool ShouldRetryFor(UserId /*user*/, FailureReason reason,
                              int attempt_index) const {
    return ShouldRetry(reason, attempt_index);
  }

  // Online observation hook, called once per failure trial. Default no-op.
  virtual void ObserveFailure(UserId /*user*/, FailureReason /*reason*/) {}

  virtual std::string_view Name() const = 0;
};

// The production baseline: always retry, up to a fixed budget.
class FixedRetryPolicy final : public RetryPolicy {
 public:
  explicit FixedRetryPolicy(int max_retries = 2) : max_retries_(max_retries) {}

  bool ShouldRetry(FailureReason /*reason*/, int attempt_index) const override {
    return attempt_index < max_retries_;
  }
  std::string_view Name() const override { return "fixed"; }

 private:
  int max_retries_;
};

// The paper's proposed improvement: stop immediately on failure reasons that
// are deterministic user/programming errors; keep the fixed budget for
// everything else.
class AdaptiveRetryPolicy : public RetryPolicy {
 public:
  explicit AdaptiveRetryPolicy(int max_retries = 2) : max_retries_(max_retries) {}

  bool ShouldRetry(FailureReason reason, int attempt_index) const override;
  std::string_view Name() const override { return "adaptive"; }

 private:
  int max_retries_;
};

// §5's predictive mitigation system: watches failures online and, once a
// (user, reason) pair has repeated `repeat_threshold` times across that
// user's jobs, stops retrying it entirely — the generalized form of "input
// data blacklisting" and per-user error correlation the paper motivates with
// the engineer whose jobs all died of the same CPU OOM (§4.2.2).
class PredictiveRetryPolicy final : public RetryPolicy {
 public:
  explicit PredictiveRetryPolicy(int max_retries = 2, int repeat_threshold = 3)
      : max_retries_(max_retries), repeat_threshold_(repeat_threshold) {}

  // Both overloads route through Decide so the blacklist is always consulted.
  // Without a user context the policy is conservative: a reason blacklisted
  // for *any* user stops retries (the caller cannot prove it is a different
  // user's job). Previously this overload ignored pair_failures_ entirely.
  bool ShouldRetry(FailureReason reason, int attempt_index) const override {
    return Decide(nullptr, reason, attempt_index);
  }

  bool ShouldRetryFor(UserId user, FailureReason reason,
                      int attempt_index) const override {
    return Decide(&user, reason, attempt_index);
  }

  void ObserveFailure(UserId user, FailureReason reason) override {
    ++pair_failures_[{user, reason}];
  }

  // Pairs currently blacklisted (for reporting).
  int NumBlacklistedPairs() const {
    int n = 0;
    for (const auto& [pair, count] : pair_failures_) {
      n += count >= repeat_threshold_;
    }
    return n;
  }

  std::string_view Name() const override { return "predictive"; }

 private:
  bool Decide(const UserId* user, FailureReason reason, int attempt_index) const {
    if (attempt_index >= max_retries_) {
      return false;
    }
    if (user != nullptr) {
      const auto it = pair_failures_.find({*user, reason});
      return it == pair_failures_.end() || it->second < repeat_threshold_;
    }
    for (const auto& [pair, count] : pair_failures_) {
      if (pair.second == reason && count >= repeat_threshold_) {
        return false;
      }
    }
    return true;
  }

  int max_retries_;
  int repeat_threshold_;
  std::map<std::pair<UserId, FailureReason>, int> pair_failures_;
};

}  // namespace philly

#endif  // SRC_FAILURE_RETRY_POLICY_H_
