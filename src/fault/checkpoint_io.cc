#include "src/fault/checkpoint_io.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace philly {
namespace {

// Below this many GB a write counts as drained: completion events land on the
// integral-second grid (ceil), so the fluid model can be left with a dust
// residue of rounding error when the event fires.
constexpr double kDrainedEpsilonGb = 1e-6;

}  // namespace

SimDuration DalyOptimalPeriod(double write_cost_seconds, double mtbf_seconds,
                              SimDuration min_period, SimDuration max_period) {
  if (!(write_cost_seconds > 0.0) || !(mtbf_seconds > 0.0) ||
      !std::isfinite(write_cost_seconds) || !std::isfinite(mtbf_seconds)) {
    return 0;
  }
  const double tau = std::sqrt(2.0 * write_cost_seconds * mtbf_seconds);
  const auto period = static_cast<SimDuration>(std::llround(tau));
  return std::clamp(period, std::max<SimDuration>(1, min_period), max_period);
}

CheckpointIoModel::CheckpointIoModel(double bandwidth_gbps, int num_racks)
    : bandwidth_(bandwidth_gbps),
      racks_(static_cast<size_t>(std::max(0, num_racks))) {
  assert(bandwidth_ > 0.0);
}

void CheckpointIoModel::Advance(RackState& rack, SimTime now) {
  assert(now >= rack.last_update);
  if (!rack.writers.empty() && now > rack.last_update) {
    const double drained = static_cast<double>(now - rack.last_update) *
                           bandwidth_ /
                           static_cast<double>(rack.writers.size());
    for (Writer& writer : rack.writers) {
      writer.remaining_gb -= drained;
    }
  }
  rack.last_update = now;
}

void CheckpointIoModel::BeginWrite(RackId rack, JobId job, double size_gb,
                                   SimTime now) {
  assert(rack >= 0 && static_cast<size_t>(rack) < racks_.size());
  assert(size_gb > 0.0);
  RackState& state = racks_[static_cast<size_t>(rack)];
  Advance(state, now);
  state.writers.push_back({job, size_gb});
}

void CheckpointIoModel::AbortWrite(RackId rack, JobId job, SimTime now) {
  assert(rack >= 0 && static_cast<size_t>(rack) < racks_.size());
  RackState& state = racks_[static_cast<size_t>(rack)];
  Advance(state, now);
  const auto it =
      std::find_if(state.writers.begin(), state.writers.end(),
                   [job](const Writer& w) { return w.job == job; });
  assert(it != state.writers.end());
  state.writers.erase(it);
}

int CheckpointIoModel::Writers(RackId rack) const {
  assert(rack >= 0 && static_cast<size_t>(rack) < racks_.size());
  return static_cast<int>(racks_[static_cast<size_t>(rack)].writers.size());
}

std::optional<SimTime> CheckpointIoModel::NextCompletion(RackId rack,
                                                         SimTime now) {
  assert(rack >= 0 && static_cast<size_t>(rack) < racks_.size());
  RackState& state = racks_[static_cast<size_t>(rack)];
  Advance(state, now);
  if (state.writers.empty()) {
    return std::nullopt;
  }
  double min_remaining = state.writers.front().remaining_gb;
  for (const Writer& writer : state.writers) {
    min_remaining = std::min(min_remaining, writer.remaining_gb);
  }
  if (min_remaining <= kDrainedEpsilonGb) {
    // Already drained (event-grid dust): complete at the next grid point.
    return now;
  }
  const double seconds = min_remaining *
                         static_cast<double>(state.writers.size()) / bandwidth_;
  return now + std::max<SimDuration>(
                   1, static_cast<SimDuration>(std::ceil(seconds)));
}

std::vector<JobId> CheckpointIoModel::CollectCompleted(RackId rack,
                                                       SimTime now) {
  assert(rack >= 0 && static_cast<size_t>(rack) < racks_.size());
  RackState& state = racks_[static_cast<size_t>(rack)];
  Advance(state, now);
  std::vector<JobId> done;
  auto keep = state.writers.begin();
  for (Writer& writer : state.writers) {
    if (writer.remaining_gb <= kDrainedEpsilonGb) {
      done.push_back(writer.job);
    } else {
      *keep++ = writer;
    }
  }
  state.writers.erase(keep, state.writers.end());
  return done;
}

}  // namespace philly
