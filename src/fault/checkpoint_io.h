// Checkpoint I/O interference model (robustness milestone, PR 7).
//
// PR 2's fault layer priced checkpoints at zero: a machine-fault kill rolled a
// job back to the last multiple of its checkpoint period, but writing the
// checkpoint itself was free and instantaneous. Real clusters pay twice: the
// gang stalls while its state drains to storage, and concurrent writers in the
// same rack contend for the shared storage uplink, stretching every in-flight
// write. This header models that contention as per-rack processor sharing —
// the n writers of a rack each receive bandwidth/n, recomputed whenever the
// writer set changes — plus the Daly first-order optimum used by the
// kDalyOptimal checkpoint policy.
//
// The model is a pure state machine: it owns no simulator events. The
// simulation drives it (BeginWrite/AbortWrite/CollectCompleted) and schedules
// one completion event per rack from NextCompletion. Completion times are
// rounded up to the integral-second event grid, so a write can occupy its
// writer slot up to one second past its exact fluid-model finish; within that
// ceiling the drained volume is exact in doubles.
//
// Determinism contract: state evolves only through the calls above, in event
// order, with no randomness — two runs of the same config replay the same
// write timeline byte-for-byte, and a disabled model (bandwidth or size 0)
// leaves every output stream byte-identical to pre-PR builds.

#ifndef SRC_FAULT_CHECKPOINT_IO_H_
#define SRC_FAULT_CHECKPOINT_IO_H_

#include <optional>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"

namespace philly {

struct CheckpointIoConfig {
  // Shared checkpoint-storage bandwidth per rack in GB/s. 0 (the default)
  // disables the I/O model entirely: writes cost nothing and recovery keeps
  // the PR 2 floor-of-period semantics.
  double rack_bandwidth_gbps = 0.0;

  // Checkpoint image size per GPU in GB (model replica + optimizer shard).
  // The gang's write is size_gb_per_gpu x its GPU count.
  double size_gb_per_gpu = 2.0;

  // kCooperativeStagger admission limit: concurrent writers allowed per rack.
  // Requests beyond the limit defer (training continues) until a slot frees.
  int max_writers_per_rack = 2;

  // kCooperativeStagger phase-shift granularity: a rack's gangs take first-
  // write phases of slot/stagger_slots of their period, round-robin.
  int stagger_slots = 8;

  // Clamps for the kDalyOptimal per-gang period.
  SimDuration min_period = Minutes(5);
  SimDuration max_period = Hours(48);

  bool Enabled() const {
    return rack_bandwidth_gbps > 0.0 && size_gb_per_gpu > 0.0;
  }
};

// Daly's first-order optimal checkpoint interval: tau = sqrt(2 * delta * M)
// for write cost delta and gang MTBF M (J. T. Daly, "A higher order estimate
// of the optimum checkpoint interval for restart dumps", FGCS 2006). Returns
// the clamped integral-second period, or 0 when either input is non-positive
// or non-finite (no faults expected => checkpointing is pure overhead).
SimDuration DalyOptimalPeriod(double write_cost_seconds, double mtbf_seconds,
                              SimDuration min_period, SimDuration max_period);

// Per-rack fair-share storage model. Writers are keyed by job id; at most one
// write per job can be in flight (the gang stalls while it drains).
class CheckpointIoModel {
 public:
  CheckpointIoModel(double bandwidth_gbps, int num_racks);

  // Starts draining `size_gb` for `job` on `rack`'s storage at time `now`.
  void BeginWrite(RackId rack, JobId job, double size_gb, SimTime now);

  // Drops `job`'s in-flight write (fault or suspension mid-write); the
  // remaining writers immediately share the reclaimed bandwidth.
  void AbortWrite(RackId rack, JobId job, SimTime now);

  // In-flight writes on `rack` right now.
  int Writers(RackId rack) const;

  // Earliest time any write on `rack` fully drains (integral seconds, rounded
  // up), or nullopt when the rack is idle. Valid until the writer set changes.
  std::optional<SimTime> NextCompletion(RackId rack, SimTime now);

  // Removes and returns every writer fully drained as of `now`, in write
  // start order.
  std::vector<JobId> CollectCompleted(RackId rack, SimTime now);

 private:
  struct Writer {
    JobId job = kNoJob;
    double remaining_gb = 0.0;
  };
  struct RackState {
    std::vector<Writer> writers;  // in write start order
    SimTime last_update = 0;
  };

  // Drains elapsed x bandwidth / n from every writer since last_update.
  void Advance(RackState& rack, SimTime now);

  double bandwidth_;
  std::vector<RackState> racks_;
};

}  // namespace philly

#endif  // SRC_FAULT_CHECKPOINT_IO_H_
