#include "src/fault/fault_process.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace philly {
namespace {

// splitmix64 finalizer, the same per-entity stream-seeding idiom the failure
// injector uses for per-job plans.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

SimDuration HoursToSeconds(double hours) {
  return std::max<SimDuration>(1, static_cast<SimDuration>(hours * 3600.0));
}

// Degenerate configs used to be silently clamped, which turned typos like a
// negative MTBF into a surprise renewal stream instead of an error. Reject
// them at construction with the offending field named (0 MTBF stays the
// documented "class disabled" value).
void ValidateConfig(const FaultProcessConfig& config) {
  const auto require = [](bool ok, const char* field, double value) {
    if (!ok) {
      throw std::invalid_argument(
          std::string("FaultProcessConfig: ") + field + " = " +
          std::to_string(value) + " is invalid (must be finite and >= 0; " +
          "repair medians/p90s must be > 0)");
    }
  };
  const auto mtbf_ok = [](double v) { return std::isfinite(v) && v >= 0.0; };
  const auto repair_ok = [](double v) { return std::isfinite(v) && v > 0.0; };
  require(mtbf_ok(config.server_crash_mtbf_hours), "server_crash_mtbf_hours",
          config.server_crash_mtbf_hours);
  require(mtbf_ok(config.gpu_ecc_mtbf_hours), "gpu_ecc_mtbf_hours",
          config.gpu_ecc_mtbf_hours);
  require(mtbf_ok(config.rack_outage_mtbf_hours), "rack_outage_mtbf_hours",
          config.rack_outage_mtbf_hours);
  require(repair_ok(config.server_repair_median_hours),
          "server_repair_median_hours", config.server_repair_median_hours);
  require(repair_ok(config.server_repair_p90_hours), "server_repair_p90_hours",
          config.server_repair_p90_hours);
  require(repair_ok(config.rack_repair_median_hours),
          "rack_repair_median_hours", config.rack_repair_median_hours);
  require(repair_ok(config.rack_repair_p90_hours), "rack_repair_p90_hours",
          config.rack_repair_p90_hours);
  require(config.detection_delay >= 0, "detection_delay",
          static_cast<double>(config.detection_delay));
}

}  // namespace

std::string_view ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash:
      return "server-crash";
    case FaultKind::kGpuEccDegraded:
      return "gpu-ecc-degraded";
    case FaultKind::kSwitchOutage:
      return "switch-outage";
  }
  return "?";
}

FaultProcessConfig FaultProcessConfig::Calibrated() {
  FaultProcessConfig c;
  c.server_crash_mtbf_hours = 24.0 * 90.0;   // one crash per server-quarter
  c.gpu_ecc_mtbf_hours = 24.0 * 120.0;       // ECC drains slightly rarer
  c.rack_outage_mtbf_hours = 24.0 * 75.0;    // per rack
  c.detection_delay = Minutes(10);
  return c;
}

FaultProcess::FaultProcess(const FaultProcessConfig& config, int num_servers,
                           int num_racks)
    : config_((ValidateConfig(config), config)),
      server_repair_fit_(LognormalSpec::FromMedianP90(
          config.server_repair_median_hours,
          std::max(config.server_repair_median_hours,
                   config.server_repair_p90_hours))),
      rack_repair_fit_(LognormalSpec::FromMedianP90(
          config.rack_repair_median_hours,
          std::max(config.rack_repair_median_hours,
                   config.rack_repair_p90_hours))) {
  assert(num_servers >= 0 && num_racks >= 0);
  server_rng_.reserve(static_cast<size_t>(num_servers));
  for (int s = 0; s < num_servers; ++s) {
    server_rng_.emplace_back(
        Mix64(config_.seed ^ (0x5E1FAB1Eull + static_cast<uint64_t>(s) *
                                                  0x9E3779B97F4A7C15ull)));
  }
  rack_rng_.reserve(static_cast<size_t>(num_racks));
  for (int r = 0; r < num_racks; ++r) {
    rack_rng_.emplace_back(
        Mix64(config_.seed ^ (0x2ACCF417ull + static_cast<uint64_t>(r) *
                                                  0xD1B54A32D192ED03ull)));
  }
}

std::optional<FaultEvent> FaultProcess::NextServerFault(ServerId server,
                                                        SimTime after) {
  const double crash_rate = config_.server_crash_mtbf_hours > 0.0
                                ? 1.0 / config_.server_crash_mtbf_hours
                                : 0.0;
  const double ecc_rate =
      config_.gpu_ecc_mtbf_hours > 0.0 ? 1.0 / config_.gpu_ecc_mtbf_hours : 0.0;
  const double total_rate = crash_rate + ecc_rate;
  if (total_rate <= 0.0) {
    return std::nullopt;
  }
  assert(server >= 0 && static_cast<size_t>(server) < server_rng_.size());
  Rng& rng = server_rng_[static_cast<size_t>(server)];
  // Superposition of the two Poisson processes: one exponential gap at the
  // combined rate, then attribute the event proportionally. Both draws happen
  // even when one class is disabled, so enabling a class never shifts the
  // other's timeline.
  const double gap_hours = rng.Exponential(1.0 / total_rate);
  FaultEvent event;
  event.server = server;
  event.at = after + HoursToSeconds(gap_hours);
  event.kind = rng.Bernoulli(total_rate > 0.0 ? crash_rate / total_rate : 0.0)
                   ? FaultKind::kServerCrash
                   : FaultKind::kGpuEccDegraded;
  event.repair = HoursToSeconds(server_repair_fit_.Sample(rng));
  return event;
}

std::optional<FaultEvent> FaultProcess::NextRackFault(RackId rack, SimTime after) {
  if (config_.rack_outage_mtbf_hours <= 0.0) {
    return std::nullopt;
  }
  assert(rack >= 0 && static_cast<size_t>(rack) < rack_rng_.size());
  Rng& rng = rack_rng_[static_cast<size_t>(rack)];
  const double gap_hours = rng.Exponential(config_.rack_outage_mtbf_hours);
  FaultEvent event;
  event.kind = FaultKind::kSwitchOutage;
  event.rack = rack;
  event.at = after + HoursToSeconds(gap_hours);
  event.repair = HoursToSeconds(rack_repair_fit_.Sample(rng));
  return event;
}

}  // namespace philly
