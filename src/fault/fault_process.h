// Machine-level fault processes (tentpole of the robustness milestone).
//
// The per-job failure injector in src/failure models §4.2's taxonomy as
// exogenous *job* plans; what it cannot express are correlated machine-level
// incidents — a server crashing under every tenant at once, a GPU degrading
// until the node is drained, a top-of-rack switch outage killing every gang
// in its RDMA domain. FaultProcess samples those events: server-scoped
// crashes and ECC degradations, and rack-scoped switch outages, each from a
// configurable MTBF (exponential inter-fault gaps) with lognormal repair
// times.
//
// Determinism contract: each server and each rack owns an independent RNG
// stream seeded by (seed, id), so the fault timeline of server s is a pure
// function of (seed, s) — unchanged by scheduler behaviour, by other servers'
// faults, or by how often the scheduler queries other streams. This mirrors
// the FailureInjector's per-(seed, job id) plans and keeps runs byte-for-byte
// reproducible under policy changes.
//
// The scheduler-facing half (heartbeat detection delay, draining,
// blacklisting, repair return) lives in NodeHealthTracker and
// ClusterSimulation; this class only emits the exogenous event timeline.

#ifndef SRC_FAULT_FAULT_PROCESS_H_
#define SRC_FAULT_FAULT_PROCESS_H_

#include <optional>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/distributions.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace philly {

enum class FaultKind {
  kServerCrash,     // node reboot / kernel panic / heartbeat loss
  kGpuEccDegraded,  // GPU ECC page-retirement pressure: node drained for swap
  kSwitchOutage,    // top-of-rack switch / IB fabric outage (rack-scoped)
};

std::string_view ToString(FaultKind kind);

// One machine fault. Server-scoped events carry server >= 0 and rack == -1;
// rack-scoped events the reverse. `at` is when the fault physically occurs;
// the scheduler only notices it a detection delay later. `repair` counts from
// detection (the repair ticket opens when the health tracker flags the node).
struct FaultEvent {
  FaultKind kind = FaultKind::kServerCrash;
  ServerId server = -1;
  RackId rack = -1;
  SimTime at = 0;
  SimDuration repair = 0;
};

struct FaultProcessConfig {
  uint64_t seed = 0xFA177ull;

  // Mean time between faults, per server (crash, ECC) or per rack (outage),
  // in hours. A value of 0 disables that fault class; all zero (the default)
  // disables sampling entirely, reproducing pre-fault behaviour exactly.
  double server_crash_mtbf_hours = 0.0;
  double gpu_ecc_mtbf_hours = 0.0;
  double rack_outage_mtbf_hours = 0.0;

  // Lognormal repair times, fitted from (median, p90) in hours. Server
  // repairs (reimage, GPU swap) take longer than switch restarts.
  double server_repair_median_hours = 4.0;
  double server_repair_p90_hours = 12.0;
  double rack_repair_median_hours = 1.0;
  double rack_repair_p90_hours = 4.0;

  // Heartbeat timeout: the scheduler learns of a fault only this long after
  // it occurs. Attempts on the faulted machine keep "running" (and burning
  // GPU time) until detection.
  SimDuration detection_delay = Minutes(10);

  // Scripted events injected in addition to the sampled processes. Unit
  // tests and what-if replays use these for exact timelines.
  std::vector<FaultEvent> scripted;

  bool Enabled() const {
    return server_crash_mtbf_hours > 0.0 || gpu_ecc_mtbf_hours > 0.0 ||
           rack_outage_mtbf_hours > 0.0 || !scripted.empty();
  }

  // Modest production-like rates for benches and ablations: a server fails
  // every few months, racks lose their switch about once a quarter.
  static FaultProcessConfig Calibrated();
};

class FaultProcess {
 public:
  // Throws std::invalid_argument for degenerate configs: negative or
  // non-finite MTBFs, non-positive or non-finite repair medians/p90s, or a
  // negative detection delay. A 0 MTBF remains the documented "class
  // disabled" value.
  FaultProcess(const FaultProcessConfig& config, int num_servers, int num_racks);

  bool enabled() const { return config_.Enabled(); }
  const FaultProcessConfig& config() const { return config_; }

  // Next sampled fault on `server` strictly after `after`, or nullopt when
  // both server-scoped classes are disabled. Consecutive calls walk the
  // server's private timeline; `after` anchors the gap (call with the repair
  // completion time to continue after an outage).
  std::optional<FaultEvent> NextServerFault(ServerId server, SimTime after);

  // Rack-scoped analogue for switch outages.
  std::optional<FaultEvent> NextRackFault(RackId rack, SimTime after);

 private:
  FaultProcessConfig config_;
  LognormalSpec server_repair_fit_;
  LognormalSpec rack_repair_fit_;
  // One independent stream per server / per rack (see file comment).
  std::vector<Rng> server_rng_;
  std::vector<Rng> rack_rng_;
};

}  // namespace philly

#endif  // SRC_FAULT_FAULT_PROCESS_H_
