#include "src/fault/node_health.h"

#include <cassert>

namespace philly {

NodeHealthTracker::NodeHealthTracker(int num_servers)
    : servers_(static_cast<size_t>(num_servers)) {}

bool NodeHealthTracker::MarkFault(ServerId server, SimTime at, FaultKind kind) {
  ServerHealth& health = servers_[static_cast<size_t>(server)];
  if (health.state != State::kHealthy) {
    return false;
  }
  health.state = State::kFaultPending;
  health.kind = kind;
  health.fault_time = at;
  ++faults_marked_;
  return true;
}

void NodeHealthTracker::MarkOffline(ServerId server) {
  ServerHealth& health = servers_[static_cast<size_t>(server)];
  assert(health.state == State::kFaultPending);
  health.state = State::kOffline;
  ++num_offline_;
}

void NodeHealthTracker::MarkRepaired(ServerId server) {
  ServerHealth& health = servers_[static_cast<size_t>(server)];
  assert(health.state == State::kOffline);
  health.state = State::kHealthy;
  --num_offline_;
  ++repairs_completed_;
}

}  // namespace philly
