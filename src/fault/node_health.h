// Scheduler-side node health state machine.
//
// Production schedulers do not see faults the instant they happen: a crashed
// node is noticed when it misses enough heartbeats, and only then is it
// drained, blacklisted from placement, and handed to repair. NodeHealthTracker
// models that per-server lifecycle:
//
//   kHealthy --fault occurs--> kFaultPending --heartbeat timeout-->
//   kOffline (drained + blacklisted, under repair) --repair done--> kHealthy
//
// While kFaultPending the cluster keeps scheduling onto the machine and
// resident attempts keep burning GPU time — exactly the detection-delay waste
// the paper's §4.2 infrastructure failures incur. While kOffline the server
// reports zero free GPUs (Cluster::SetServerOffline) so placement naturally
// routes around it.
//
// The tracker records state transitions only; event timing (when detection
// and repair fire) is driven by ClusterSimulation's event queue.

#ifndef SRC_FAULT_NODE_HEALTH_H_
#define SRC_FAULT_NODE_HEALTH_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"
#include "src/fault/fault_process.h"

namespace philly {

class NodeHealthTracker {
 public:
  enum class State { kHealthy, kFaultPending, kOffline };

  explicit NodeHealthTracker(int num_servers);

  State StateOf(ServerId server) const {
    return servers_[static_cast<size_t>(server)].state;
  }
  bool Healthy(ServerId server) const {
    return StateOf(server) == State::kHealthy;
  }

  // A fault hit `server` at `at`. Returns false (and changes nothing) if the
  // server is already pending or offline — an overlapping event cannot break
  // a machine twice.
  bool MarkFault(ServerId server, SimTime at, FaultKind kind);

  // The heartbeat timeout for the pending fault expired: the server is now
  // drained and blacklisted. Requires state kFaultPending.
  void MarkOffline(ServerId server);

  // Repair completed; the server rejoins the healthy pool.
  void MarkRepaired(ServerId server);

  // Valid while the server is pending or offline.
  FaultKind KindOf(ServerId server) const {
    return servers_[static_cast<size_t>(server)].kind;
  }
  SimTime FaultTimeOf(ServerId server) const {
    return servers_[static_cast<size_t>(server)].fault_time;
  }

  int num_offline() const { return num_offline_; }
  int64_t faults_marked() const { return faults_marked_; }
  int64_t repairs_completed() const { return repairs_completed_; }

 private:
  struct ServerHealth {
    State state = State::kHealthy;
    FaultKind kind = FaultKind::kServerCrash;
    SimTime fault_time = 0;
  };

  std::vector<ServerHealth> servers_;
  int num_offline_ = 0;
  int64_t faults_marked_ = 0;
  int64_t repairs_completed_ = 0;
};

}  // namespace philly

#endif  // SRC_FAULT_NODE_HEALTH_H_
