#include "src/fleet/fleet.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/core/runner.h"
#include "src/sched/simulation.h"
#include "src/workload/generator.h"

namespace philly {
namespace {

// Derived per-cluster seed: sibling clusters of one fleet run must draw
// independent traces, and the derivation must be stable (the differential
// test re-derives it to configure the standalone runs).
uint64_t ClusterSeed(uint64_t base_seed, int cluster_index) {
  return base_seed + 1000003ull * static_cast<uint64_t>(cluster_index);
}

// Whole-string unsigned parse; rejects signs, whitespace, and trailing bytes.
bool StrictUint(std::string_view text, int64_t* value) {
  if (text.empty()) {
    return false;
  }
  int64_t v = 0;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), v);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return false;
  }
  *value = v;
  return true;
}

}  // namespace

FleetSimulation::FleetSimulation(FleetConfig config) : config_(std::move(config)) {
  if (config_.clusters.empty()) {
    throw std::invalid_argument("fleet needs at least one cluster");
  }
  size_t vc_count = 0;
  for (size_t i = 0; i < config_.clusters.size(); ++i) {
    const FleetClusterSpec& spec = config_.clusters[i];
    if (spec.experiment.workload.vcs.empty()) {
      throw std::invalid_argument("fleet cluster " + std::to_string(i) +
                                  " has no virtual clusters");
    }
    if (spec.experiment.simulation.cluster.TotalGpus() <= 0) {
      throw std::invalid_argument("fleet cluster " + std::to_string(i) +
                                  " has no GPUs");
    }
    if (i == 0) {
      vc_count = spec.experiment.workload.vcs.size();
    } else if (config_.router.policy != RouterPolicy::kPinnedHome &&
               spec.experiment.workload.vcs.size() != vc_count) {
      // A dynamically routed job's VC id must resolve on any destination.
      throw std::invalid_argument(
          "dynamic router policies require an equal VC count on every cluster");
    }
  }
  if (config_.router.spill_threshold < 0) {
    throw std::invalid_argument("spill threshold must be >= 0");
  }
}

FleetResult FleetSimulation::Run() {
  const int n = static_cast<int>(config_.clusters.size());
  const bool pinned = config_.router.policy == RouterPolicy::kPinnedHome;
  ExperimentPool pool(config_.threads);

  // 1. Per-cluster traces, generated in parallel (each generator owns its
  // RNG; results land by index).
  std::vector<std::vector<JobSpec>> traces(static_cast<size_t>(n));
  pool.ParallelFor(n, [&](int i) {
    WorkloadGenerator generator(config_.clusters[static_cast<size_t>(i)].experiment.workload);
    traces[static_cast<size_t>(i)] = generator.Generate();
  });

  // Fleet-unique id bases for the dynamic policies (pinned keeps original
  // ids — the byte-identity ground rule).
  std::vector<JobId> id_base(static_cast<size_t>(n), 0);
  if (!pinned) {
    JobId base = 0;
    for (int i = 0; i < n; ++i) {
      id_base[static_cast<size_t>(i)] = base;
      JobId max_id = 0;
      for (const JobSpec& job : traces[static_cast<size_t>(i)]) {
        max_id = std::max(max_id, job.id);
      }
      base += max_id;
    }
  }

  // 2. Route the merged submission stream, serially and deterministically:
  // global submit-time order, ties by home-cluster index, each trace's
  // internal order preserved (traces are submit-sorted, and equal-time jobs
  // within one trace stay in generator order).
  FleetResult out;
  out.clusters.resize(static_cast<size_t>(n));
  std::vector<int> cluster_gpus;
  cluster_gpus.reserve(static_cast<size_t>(n));
  size_t total_jobs = 0;
  for (int i = 0; i < n; ++i) {
    cluster_gpus.push_back(
        config_.clusters[static_cast<size_t>(i)].experiment.simulation.cluster.TotalGpus());
    total_jobs += traces[static_cast<size_t>(i)].size();
  }
  JobRouter router(config_.router, cluster_gpus);
  out.route_events.Reserve(total_jobs);

  std::vector<std::vector<JobSpec>> routed(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Pinned routes everything home; reserving the exact trace size keeps the
    // common case allocation-flat.
    routed[static_cast<size_t>(i)].reserve(traces[static_cast<size_t>(i)].size());
  }
  std::vector<size_t> pos(static_cast<size_t>(n), 0);
  for (size_t done = 0; done < total_jobs; ++done) {
    int home = -1;
    for (int i = 0; i < n; ++i) {
      if (pos[static_cast<size_t>(i)] >= traces[static_cast<size_t>(i)].size()) {
        continue;
      }
      if (home < 0 ||
          traces[static_cast<size_t>(i)][pos[static_cast<size_t>(i)]].submit_time <
              traces[static_cast<size_t>(home)][pos[static_cast<size_t>(home)]].submit_time) {
        home = i;
      }
    }
    assert(home >= 0);
    JobSpec job = traces[static_cast<size_t>(home)][pos[static_cast<size_t>(home)]++];
    if (!pinned) {
      job.id += id_base[static_cast<size_t>(home)];
    }
    const RouteDecision d = router.Route(job, home);
    SchedEvent& ev =
        out.route_events.Append(SchedEventKind::kRoute, job.submit_time, job.id);
    ev.vc = job.vc;
    ev.user = job.user;
    ev.gpus = job.num_gpus;
    ev.cluster = d.dest;
    ev.home = d.home;
    ev.home_queue = d.home_queue;
    ev.dest_queue = d.dest_queue;
    ev.dest_free = d.dest_free;
    ev.detail = std::string(ToString(config_.router.policy));
    out.clusters[static_cast<size_t>(home)].home_jobs += 1;
    if (d.dest != home) {
      out.spilled_jobs += 1;
      out.clusters[static_cast<size_t>(d.dest)].routed_in += 1;
      out.clusters[static_cast<size_t>(home)].routed_away += 1;
      if (config_.collect_spans) {
        // Router blame: the spilled job's pre-evaluation stretch at its
        // destination is the front door's fault, not backoff. Marked here —
        // before the destination run starts — so the tracer sees it on the
        // job's first enqueue. Pinned mode spills nothing, keeping its span
        // streams byte-identical to standalone runs.
        out.clusters[static_cast<size_t>(d.dest)].spans.MarkRouterQueued(job.id);
      }
    }
    routed[static_cast<size_t>(d.dest)].push_back(std::move(job));
  }
  out.total_jobs = static_cast<int64_t>(total_jobs);
  traces.clear();

  // 3. Per-cluster simulations on the pool. Sinks live in the (pre-sized)
  // result vector, so their addresses are stable across the parallel region
  // and no two runs share a sink.
  for (int i = 0; i < n; ++i) {
    FleetClusterResult& cluster = out.clusters[static_cast<size_t>(i)];
    cluster.name = config_.clusters[static_cast<size_t>(i)].name;
    cluster.num_jobs = static_cast<int64_t>(routed[static_cast<size_t>(i)].size());
    cluster.telemetry = ClusterTimeSeries(config_.telemetry_period);
  }
  pool.ParallelFor(n, [&](int i) {
    FleetClusterResult& cluster = out.clusters[static_cast<size_t>(i)];
    SimulationConfig sim = config_.clusters[static_cast<size_t>(i)].experiment.simulation;
    sim.obs = ObservabilityConfig{};
    if (config_.collect_events) {
      sim.obs.event_log = &cluster.events;
    }
    if (config_.collect_telemetry) {
      sim.obs.timeseries = &cluster.telemetry;
    }
    if (config_.collect_spans) {
      sim.obs.spans = &cluster.spans;
    }
    cluster.result =
        ClusterSimulation(sim, std::move(routed[static_cast<size_t>(i)])).Run();
  });

  // 4. Aggregate: per-cluster rollups, the fleet rollup (MergeFrom in
  // cluster-index order), and the fleet GPU-time ledger.
  if (config_.collect_telemetry) {
    out.fleet_rollup = std::make_unique<TelemetryRollup>(config_.rollup_window);
    for (FleetClusterResult& cluster : out.clusters) {
      cluster.rollup = std::make_unique<TelemetryRollup>(config_.rollup_window);
      cluster.rollup->AddAll(cluster.telemetry.samples());
      out.fleet_rollup->MergeFrom(*cluster.rollup);
    }
  }
  for (const FleetClusterResult& cluster : out.clusters) {
    out.allocated_gpu_seconds += cluster.result.allocated_gpu_seconds;
    out.useful_gpu_seconds += cluster.result.useful_gpu_seconds;
    out.machine_fault_lost_gpu_seconds += cluster.result.machine_fault_lost_gpu_seconds;
    out.ckpt_overhead_gpu_seconds += cluster.result.ckpt_overhead_gpu_seconds;
    out.ckpt_stall_gpu_seconds += cluster.result.ckpt_stall_gpu_seconds;
  }
  return out;
}

bool ParseClustersSpec(std::string_view text, std::vector<ClusterConfig>* clusters,
                       std::string* error) {
  constexpr int kMaxClusters = 64;
  const auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  if (text.empty()) {
    return fail("--clusters is empty; expected a count or RxS[xG] entries");
  }
  std::vector<ClusterConfig> parsed;
  if (text.find(',') == std::string_view::npos &&
      text.find('x') == std::string_view::npos) {
    int64_t count = 0;
    if (!StrictUint(text, &count)) {
      return fail("--clusters value '" + std::string(text) +
                  "' is not a cluster count or RxS[xG] list");
    }
    if (count < 1 || count > kMaxClusters) {
      return fail("--clusters count must be in [1, " +
                  std::to_string(kMaxClusters) + "], got '" + std::string(text) + "'");
    }
    parsed.assign(static_cast<size_t>(count), ClusterConfig::PaperScale());
    *clusters = std::move(parsed);
    return true;
  }
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string_view entry =
        text.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    // Entry grammar: RxS or RxSxG, all strictly positive integers.
    int64_t dims[3] = {0, 0, 8};
    size_t field = 0;
    size_t field_start = 0;
    bool ok = true;
    for (size_t i = 0; ok && i <= entry.size(); ++i) {
      if (i == entry.size() || entry[i] == 'x') {
        if (field >= 3 || !StrictUint(entry.substr(field_start, i - field_start),
                                      &dims[field])) {
          ok = false;
        }
        ++field;
        field_start = i + 1;
      }
    }
    if (!ok || field < 2) {
      return fail("--clusters entry '" + std::string(entry) +
                  "' is not RxS or RxSxG (positive integers)");
    }
    if (dims[0] < 1 || dims[0] > 1024 || dims[1] < 1 || dims[1] > 1024 ||
        dims[2] < 1 || dims[2] > 16) {
      return fail("--clusters entry '" + std::string(entry) +
                  "' out of range (racks/servers in [1, 1024], GPUs in [1, 16])");
    }
    ClusterConfig cluster;
    cluster.skus.push_back({static_cast<int>(dims[0]), static_cast<int>(dims[1]),
                            static_cast<int>(dims[2])});
    parsed.push_back(std::move(cluster));
    if (static_cast<int>(parsed.size()) > kMaxClusters) {
      return fail("--clusters lists more than " + std::to_string(kMaxClusters) +
                  " clusters");
    }
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
    if (start == text.size()) {
      return fail("--clusters has a trailing comma");
    }
  }
  *clusters = std::move(parsed);
  return true;
}

ExperimentConfig FleetClusterExperiment(const ClusterConfig& cluster, int days,
                                        uint64_t base_seed, int cluster_index) {
  ExperimentConfig config =
      ExperimentConfig::BenchScale(days, ClusterSeed(base_seed, cluster_index));
  config.simulation.cluster = cluster;
  // Scale demand to the member's capacity: paper-rate arrivals against a
  // quarter-size cluster would just measure a permanent backlog.
  const double scale = static_cast<double>(cluster.TotalGpus()) /
                       static_cast<double>(ClusterConfig::PaperScale().TotalGpus());
  for (VcConfig& vc : config.workload.vcs) {
    vc.quota_gpus = std::max<int>(1, static_cast<int>(std::llround(vc.quota_gpus * scale)));
    vc.arrival_rate_per_hour *= scale;
  }
  config.workload.prepopulate_busy_gpus = static_cast<int>(
      std::llround(config.workload.prepopulate_busy_gpus * scale));
  config.simulation.vcs = config.workload.vcs;
  return config;
}

}  // namespace philly
