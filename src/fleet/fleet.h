// Fleet mode: N independent ClusterSimulations behind a front-door JobRouter
// (docs/fleet.md). ROADMAP item 2: the paper analyzes one cluster, but the
// production shape of this workload is a fleet of coordinated clusters
// (Helios runs four); the calendar-queue core made N-clusters-per-run cheap.
//
// The ground rule the differential test enforces: with RouterPolicy::
// kPinnedHome and a partitioned trace, every per-cluster stream — scheduler
// events, telemetry, and the analyses derived from them — is byte-identical
// to N separate single-cluster runs. The fleet layer adds routing, never
// perturbation.
//
// Job identity across the fleet: each cluster's trace carries its own dense
// ids starting at 1. Under kPinnedHome jobs keep their original ids (that is
// what byte-identity requires). Under the dynamic policies a job routed off
// its home cluster would collide with the destination's ids, so ALL jobs are
// remapped to fleet-unique ids (home-cluster base offset + original id)
// before routing; the route stream records the remapped id.

#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/experiment.h"
#include "src/fleet/router.h"
#include "src/obs/event_log.h"
#include "src/obs/rollup.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"

namespace philly {

// One member cluster: a name for reporting plus the full experiment config
// (workload + simulation) it would run standalone. Heterogeneous sizes and
// SKUs are fine; the router only consults total GPU counts.
struct FleetClusterSpec {
  std::string name;
  ExperimentConfig experiment;
};

struct FleetConfig {
  std::vector<FleetClusterSpec> clusters;
  RouterConfig router;

  // Observability for the per-cluster runs. Sinks live in the FleetResult
  // (one event log / telemetry recorder per cluster), so enabling them never
  // shares state across the pool's threads.
  bool collect_events = false;
  bool collect_telemetry = false;
  // Per-cluster causal span streams. Jobs spilled off their home cluster are
  // marked router-queued at their destination tracer before the run, so the
  // pre-evaluation stretch of their first wait is blamed on kRouterQueue.
  bool collect_spans = false;
  SimDuration telemetry_period = Minutes(1);
  SimDuration rollup_window = Hours(1);

  // ExperimentPool worker count; <= 0 means DefaultPoolThreads()
  // (PHILLY_BENCH_THREADS-aware).
  int threads = 0;
};

// Per-cluster outcome: the standalone SimulationResult plus the routing view
// and this cluster's streams.
struct FleetClusterResult {
  std::string name;
  SimulationResult result;
  int64_t num_jobs = 0;     // jobs that ran here
  int64_t home_jobs = 0;    // jobs whose home cluster is this one
  int64_t routed_in = 0;    // ran here, homed elsewhere
  int64_t routed_away = 0;  // homed here, ran elsewhere
  EventLog events;              // scheduler stream (collect_events)
  ClusterTimeSeries telemetry;  // per-minute stream (collect_telemetry)
  SpanTracer spans;             // causal span stream (collect_spans)
  // Rollup of this cluster's telemetry stream. unique_ptr because
  // TelemetryRollup's histograms are atomics (non-movable).
  std::unique_ptr<TelemetryRollup> rollup;
};

struct FleetResult {
  std::vector<FleetClusterResult> clusters;

  // Fleet-level route stream: one kRoute event per submitted job, in global
  // submission order (ties by home-cluster index), carrying the destination
  // and the router's decision inputs.
  EventLog route_events;

  // MergeFrom-fold of the per-cluster rollups, in cluster-index order
  // (collect_telemetry only).
  std::unique_ptr<TelemetryRollup> fleet_rollup;

  int64_t total_jobs = 0;
  int64_t spilled_jobs = 0;  // routed to a cluster other than home

  // Fleet GPU-time ledger: per-cluster sums in cluster-index order. The
  // conservation identity allocated == useful + fault_lost + ckpt_overhead +
  // ckpt_stall holds exactly per cluster and therefore over the sums.
  double allocated_gpu_seconds = 0.0;
  double useful_gpu_seconds = 0.0;
  double machine_fault_lost_gpu_seconds = 0.0;
  double ckpt_overhead_gpu_seconds = 0.0;
  double ckpt_stall_gpu_seconds = 0.0;
};

class FleetSimulation {
 public:
  // Validates the config: at least one cluster, non-empty VC lists, and —
  // for the dynamic policies, where a job may run on any cluster — an equal
  // VC count on every cluster (a routed job's VC id must resolve at its
  // destination). Throws std::invalid_argument on violation.
  explicit FleetSimulation(FleetConfig config);

  // Generates each cluster's trace (in parallel), routes the merged
  // submission stream through the JobRouter (serially, deterministically),
  // runs the per-cluster simulations on the pool, and aggregates. Call once.
  FleetResult Run();

 private:
  FleetConfig config_;
};

// --- phillyctl/bench spec helpers (also exercised directly by the fuzz
// test, so malformed specs are rejected in exactly one place) --------------

// Parses a `--clusters` spec. Either "N" (1 <= N <= 64): N paper-scale
// clusters; or a comma list of per-cluster topologies "RxS" (R racks of S
// 8-GPU servers) or "RxSxG" (G GPUs per server). Returns false and sets
// *error (no partial output) on anything malformed: empty entries, zero or
// negative dimensions, trailing garbage, overflow.
bool ParseClustersSpec(std::string_view text, std::vector<ClusterConfig>* clusters,
                       std::string* error);

// Builds the standalone experiment config for one fleet member: BenchScale
// workload with arrival rates, VC quotas, and the warm-start cohort scaled to
// the cluster's GPU count (relative to paper scale), and a per-cluster seed
// derived from `base_seed` and the cluster index so sibling clusters draw
// independent traces.
ExperimentConfig FleetClusterExperiment(const ClusterConfig& cluster, int days,
                                        uint64_t base_seed, int cluster_index);

}  // namespace philly

#endif  // SRC_FLEET_FLEET_H_
