#include "src/fleet/router.h"

#include <cassert>

namespace philly {
namespace {

constexpr std::string_view kPolicyNames[] = {
    "pinned", "least-loaded", "spillover",
};

}  // namespace

std::string_view ToString(RouterPolicy policy) {
  return kPolicyNames[static_cast<size_t>(policy)];
}

bool RouterPolicyFromString(std::string_view text, RouterPolicy* policy) {
  for (size_t i = 0; i < std::size(kPolicyNames); ++i) {
    if (text == kPolicyNames[i]) {
      *policy = static_cast<RouterPolicy>(i);
      return true;
    }
  }
  return false;
}

RouterClusterModel::RouterClusterModel(int total_gpus)
    : total_gpus_(total_gpus), free_gpus_(total_gpus) {
  assert(total_gpus > 0);
}

void RouterClusterModel::Start(int gpus, SimDuration duration, SimTime at) {
  free_gpus_ -= gpus;
  running_.push(Running{at + duration, next_seq_++, gpus});
}

void RouterClusterModel::DrainWaiting(SimTime at) {
  while (!waiting_.empty() && waiting_.front().gpus <= free_gpus_) {
    const Waiting head = waiting_.front();
    waiting_.pop_front();
    Start(head.gpus, head.duration, at);
  }
}

void RouterClusterModel::Advance(SimTime now) {
  while (!running_.empty() && running_.top().finish <= now) {
    const Running done = running_.top();
    running_.pop();
    free_gpus_ += done.gpus;
    // Admissions start at the freeing finish time; their own finish may also
    // be <= now, in which case the loop retires them in turn.
    DrainWaiting(done.finish);
  }
}

void RouterClusterModel::Admit(const JobSpec& job, SimTime now) {
  // Demands beyond the cluster's capacity would wait forever in the fluid
  // model; cap them so the model stays live (the real simulator's placer has
  // the same full-cluster ceiling via relaxed locality).
  const int gpus = job.num_gpus > total_gpus_ ? total_gpus_ : job.num_gpus;
  if (waiting_.empty() && gpus <= free_gpus_) {
    Start(gpus, job.planned_duration, now);
  } else {
    waiting_.push_back(Waiting{gpus, job.planned_duration});
  }
}

JobRouter::JobRouter(RouterConfig config, const std::vector<int>& cluster_gpus)
    : config_(config) {
  assert(!cluster_gpus.empty());
  models_.reserve(cluster_gpus.size());
  for (int gpus : cluster_gpus) {
    models_.emplace_back(gpus);
  }
}

int JobRouter::LeastLoaded() const {
  int best = 0;
  for (int i = 1; i < num_clusters(); ++i) {
    const RouterClusterModel& m = models_[static_cast<size_t>(i)];
    const RouterClusterModel& b = models_[static_cast<size_t>(best)];
    if (m.QueueDepth() < b.QueueDepth() ||
        (m.QueueDepth() == b.QueueDepth() && m.FreeGpus() > b.FreeGpus())) {
      best = i;
    }
  }
  return best;
}

RouteDecision JobRouter::Route(const JobSpec& job, int home) {
  assert(home >= 0 && home < num_clusters());
  for (RouterClusterModel& model : models_) {
    model.Advance(job.submit_time);
  }
  RouteDecision d;
  d.home = home;
  d.home_queue = models_[static_cast<size_t>(home)].QueueDepth();
  switch (config_.policy) {
    case RouterPolicy::kPinnedHome:
      d.dest = home;
      break;
    case RouterPolicy::kLeastLoaded:
      d.dest = LeastLoaded();
      break;
    case RouterPolicy::kSpillover:
      // Home stays the destination until its queue exceeds the threshold;
      // overflow goes least-loaded over ALL clusters (home included), so the
      // destination's queue never exceeds home's at decision time.
      d.dest = d.home_queue <= config_.spill_threshold ? home : LeastLoaded();
      break;
  }
  RouterClusterModel& dest = models_[static_cast<size_t>(d.dest)];
  d.dest_queue = dest.QueueDepth();
  d.dest_free = dest.FreeGpus();
  dest.Admit(job, job.submit_time);
  return d;
}

}  // namespace philly
