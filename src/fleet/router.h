// Fleet front-door job router (docs/fleet.md).
//
// The router decides, at submission time, which cluster of the fleet a job
// runs on. Its decision inputs come from a deterministic fluid load model it
// maintains per cluster — a planned-duration/free-GPU estimator, not the
// simulators' ground truth — because the N ClusterSimulations run
// independently after routing and cannot be consulted mid-decision. The
// model's queue depths and free-GPU counts at each decision are recorded in
// the `route` event, so every routing choice is auditable from the stream.
//
// Policies:
//   kPinnedHome   route to the job's home cluster unconditionally. With a
//                 partitioned trace this makes the fleet layer exactly
//                 conservative: per-cluster streams are byte-identical to N
//                 single-cluster runs (the differential test's ground rule).
//   kLeastLoaded  route to the cluster with the smallest model queue depth,
//                 ties broken by most free GPUs, then lowest cluster index.
//   kSpillover    home first; when the home queue exceeds spill_threshold,
//                 overflow to the least-loaded cluster (home included, so the
//                 destination's queue is never longer than home's).

#ifndef SRC_FLEET_ROUTER_H_
#define SRC_FLEET_ROUTER_H_

#include <cstdint>
#include <deque>
#include <queue>
#include <string_view>
#include <vector>

#include "src/common/sim_time.h"
#include "src/workload/job.h"

namespace philly {

enum class RouterPolicy {
  kPinnedHome,
  kLeastLoaded,
  kSpillover,
};

std::string_view ToString(RouterPolicy policy);
bool RouterPolicyFromString(std::string_view text, RouterPolicy* policy);

struct RouterConfig {
  RouterPolicy policy = RouterPolicy::kPinnedHome;
  // kSpillover: home queue depth (jobs waiting in the router's model) above
  // which submissions overflow to the least-loaded cluster.
  int64_t spill_threshold = 4;
};

// What the router decided for one job, plus the model state it consulted.
// These fields map 1:1 onto the route event's cluster/home/*_queue/dest_free.
struct RouteDecision {
  int dest = 0;
  int home = 0;
  int64_t home_queue = 0;
  int64_t dest_queue = 0;
  int64_t dest_free = 0;
};

// Deterministic fluid model of one cluster's load, advanced in submission
// order. Jobs run for exactly their planned duration on their requested GPUs;
// the waiting queue is FIFO with head-of-line blocking (the head admits as
// soon as its demand fits, matching the spirit of gang scheduling without
// modeling placement). Deliberately simple: the router needs a consistent,
// cheap load signal, not a second simulator.
class RouterClusterModel {
 public:
  explicit RouterClusterModel(int total_gpus);

  // Retires every modeled job finishing at or before `now`, admitting waiting
  // jobs as capacity frees. Must be called with non-decreasing `now`.
  void Advance(SimTime now);

  // Accounts a routed job: starts it immediately if it fits and nothing is
  // waiting, otherwise appends it to the FIFO queue.
  void Admit(const JobSpec& job, SimTime now);

  int64_t QueueDepth() const { return static_cast<int64_t>(waiting_.size()); }
  int64_t FreeGpus() const { return free_gpus_; }
  int total_gpus() const { return total_gpus_; }

 private:
  struct Running {
    SimTime finish = 0;
    int64_t seq = 0;  // admission order; makes the heap order total
    int gpus = 0;
    bool operator>(const Running& other) const {
      if (finish != other.finish) {
        return finish > other.finish;
      }
      return seq > other.seq;
    }
  };
  struct Waiting {
    int gpus = 0;
    SimDuration duration = 0;
  };

  void Start(int gpus, SimDuration duration, SimTime at);
  // Admits queued jobs (in FIFO order) while the head fits.
  void DrainWaiting(SimTime at);

  int total_gpus_ = 0;
  int64_t free_gpus_ = 0;
  int64_t next_seq_ = 0;
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>> running_;
  std::deque<Waiting> waiting_;
};

// The fleet front door. Route() must be called in global submission order
// (the fleet merge guarantees it); the returned decision is a pure function
// of the routed-job history, so it is identical across thread counts.
class JobRouter {
 public:
  JobRouter(RouterConfig config, const std::vector<int>& cluster_gpus);

  RouteDecision Route(const JobSpec& job, int home);

  const RouterConfig& config() const { return config_; }
  int num_clusters() const { return static_cast<int>(models_.size()); }
  const RouterClusterModel& model(int cluster) const {
    return models_[static_cast<size_t>(cluster)];
  }

 private:
  // Cluster with the smallest queue depth; ties by most free GPUs, then
  // lowest index. Pure read of the (already advanced) models.
  int LeastLoaded() const;

  RouterConfig config_;
  std::vector<RouterClusterModel> models_;
};

}  // namespace philly

#endif  // SRC_FLEET_ROUTER_H_
