#include "src/obs/event_log.h"

#include <charconv>
#include <istream>
#include <ostream>

#include "src/common/json.h"
#include "src/common/strings.h"

namespace philly {
namespace {

constexpr std::string_view kKindNames[kNumSchedEventKinds] = {
    "submit",  "queued",  "locality_relax", "backoff",    "schedule",
    "preempt", "migrate", "fault_kill",     "requeue",    "complete",
    "ckpt_begin", "ckpt_end", "ckpt_stall", "route",
};

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  out += JsonEscape(s);
  out += '"';
}

// Shortest round-trip double encoding keeps the stream byte-stable across
// runs without printing 17 digits for every value.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void AppendField(std::string& out, std::string_view key, int64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendField(std::string& out, std::string_view key, double value) {
  out += ",\"";
  out += key;
  out += "\":";
  AppendDouble(out, value);
}

void AppendField(std::string& out, std::string_view key, std::string_view value) {
  out += ",\"";
  out += key;
  out += "\":";
  AppendEscaped(out, value);
}

void AppendFlag(std::string& out, std::string_view key, bool value) {
  if (value) {
    AppendField(out, key, static_cast<int64_t>(1));
  }
}

}  // namespace

std::string_view ToString(SchedEventKind kind) {
  return kKindNames[static_cast<size_t>(kind)];
}

bool SchedEventKindFromString(std::string_view text, SchedEventKind* kind) {
  for (int i = 0; i < kNumSchedEventKinds; ++i) {
    if (text == kKindNames[static_cast<size_t>(i)]) {
      *kind = static_cast<SchedEventKind>(i);
      return true;
    }
  }
  return false;
}

SchedEvent& EventLog::Append(SchedEventKind kind, SimTime time, JobId job) {
  SchedEvent& event = events_.emplace_back();
  event.kind = kind;
  event.time = time;
  event.job = job;
  return event;
}

std::string ToNdjsonLine(const SchedEvent& e) {
  std::string out;
  out.reserve(96);
  out += "{\"t\":";
  out += std::to_string(e.time);
  out += ",\"ev\":\"";
  out += ToString(e.kind);
  out += '"';
  if (e.job != kNoJob) {
    AppendField(out, "job", e.job);
  }
  if (e.vc >= 0) {
    AppendField(out, "vc", static_cast<int64_t>(e.vc));
  }
  if (e.user >= 0) {
    AppendField(out, "user", static_cast<int64_t>(e.user));
  }
  if (e.gpus > 0) {
    AppendField(out, "gpus", static_cast<int64_t>(e.gpus));
  }
  if (e.attempt >= 0) {
    AppendField(out, "attempt", static_cast<int64_t>(e.attempt));
  }
  if (e.rack >= 0) {
    AppendField(out, "rack", static_cast<int64_t>(e.rack));
  }
  if (e.cluster >= 0) {
    AppendField(out, "cluster", static_cast<int64_t>(e.cluster));
  }
  if (e.home >= 0) {
    AppendField(out, "home", static_cast<int64_t>(e.home));
  }
  if (e.home_queue >= 0) {
    AppendField(out, "home_queue", e.home_queue);
  }
  if (e.dest_queue >= 0) {
    AppendField(out, "dest_queue", e.dest_queue);
  }
  if (e.dest_free >= 0) {
    AppendField(out, "dest_free", e.dest_free);
  }
  if (e.kind == SchedEventKind::kSchedule) {
    AppendField(out, "ready", e.ready_time);
    AppendField(out, "wait", e.wait);
    AppendField(out, "fair", e.fair_share_time);
    AppendField(out, "frag", e.fragmentation_time);
    AppendField(out, "evals", static_cast<int64_t>(e.sched_attempts));
    AppendFlag(out, "ooo", e.out_of_order);
    AppendFlag(out, "benign", e.benign);
    if (!e.placement.empty()) {
      AppendField(out, "placement", e.placement);
    }
  }
  AppendFlag(out, "failed", e.failed);
  AppendFlag(out, "preempted", e.preempted);
  AppendFlag(out, "mfault", e.machine_fault);
  if (e.status >= 0) {
    AppendField(out, "status", static_cast<int64_t>(e.status));
  }
  AppendFlag(out, "ooo_started", e.started_out_of_order);
  AppendFlag(out, "ooo_benign", e.out_of_order_benign);
  AppendFlag(out, "overtaken", e.overtaken);
  if (e.relax_level > 0) {
    AppendField(out, "relax", static_cast<int64_t>(e.relax_level));
  }
  if (e.delay > 0) {
    AppendField(out, "delay", e.delay);
  }
  if (e.lost_gpu_seconds > 0) {
    AppendField(out, "lost_gpu_s", e.lost_gpu_seconds);
  }
  if (!e.detail.empty()) {
    AppendField(out, "detail", e.detail);
  }
  out += '}';
  return out;
}

bool SchedEventFromNdjsonLine(std::string_view line, SchedEvent* event,
                              std::string* error) {
  std::string parse_error;
  const JsonValue v = JsonValue::Parse(line, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) {
      *error = parse_error;
    }
    return false;
  }
  if (v.type() != JsonValue::Type::kObject) {
    if (error != nullptr) {
      *error = "event line is not a JSON object";
    }
    return false;
  }
  SchedEvent e;
  if (!SchedEventKindFromString(v["ev"].AsString(), &e.kind)) {
    if (error != nullptr) {
      *error = "unknown event kind '" + v["ev"].AsString() + "'";
    }
    return false;
  }
  const auto as_i64 = [&v](std::string_view key, int64_t fallback) {
    const JsonValue& field = v[key];
    return field.is_null() ? fallback : static_cast<int64_t>(field.AsNumber());
  };
  e.time = as_i64("t", 0);
  e.job = as_i64("job", kNoJob);
  e.vc = static_cast<int32_t>(as_i64("vc", -1));
  e.user = static_cast<int32_t>(as_i64("user", -1));
  e.gpus = static_cast<int>(as_i64("gpus", 0));
  e.attempt = static_cast<int>(as_i64("attempt", -1));
  e.rack = static_cast<int32_t>(as_i64("rack", -1));
  e.cluster = static_cast<int32_t>(as_i64("cluster", -1));
  e.home = static_cast<int32_t>(as_i64("home", -1));
  e.home_queue = as_i64("home_queue", -1);
  e.dest_queue = as_i64("dest_queue", -1);
  e.dest_free = as_i64("dest_free", -1);
  e.ready_time = as_i64("ready", 0);
  e.wait = as_i64("wait", 0);
  e.fair_share_time = as_i64("fair", 0);
  e.fragmentation_time = as_i64("frag", 0);
  e.sched_attempts = static_cast<int>(as_i64("evals", 0));
  e.out_of_order = as_i64("ooo", 0) != 0;
  e.benign = as_i64("benign", 0) != 0;
  e.placement = v["placement"].AsString();
  e.failed = as_i64("failed", 0) != 0;
  e.preempted = as_i64("preempted", 0) != 0;
  e.machine_fault = as_i64("mfault", 0) != 0;
  e.status = static_cast<int>(as_i64("status", -1));
  e.started_out_of_order = as_i64("ooo_started", 0) != 0;
  e.out_of_order_benign = as_i64("ooo_benign", 0) != 0;
  e.overtaken = as_i64("overtaken", 0) != 0;
  e.relax_level = static_cast<int>(as_i64("relax", 0));
  e.delay = as_i64("delay", 0);
  e.lost_gpu_seconds = v["lost_gpu_s"].AsNumber(0.0);
  e.detail = v["detail"].AsString();
  *event = std::move(e);
  return true;
}

void EventLog::WriteNdjson(std::ostream& out) const {
  for (const SchedEvent& event : events_) {
    out << ToNdjsonLine(event) << '\n';
  }
}

std::vector<SchedEvent> EventLog::ReadNdjson(std::istream& in,
                                             std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  std::vector<SchedEvent> events;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    SchedEvent event;
    std::string line_error;
    if (!SchedEventFromNdjsonLine(line, &event, &line_error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": " + line_error;
      }
      break;
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace philly
