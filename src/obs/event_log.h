// Structured scheduler event stream — the YARN-scheduler-log analogue of the
// paper's log join (§3). The simulation's in-memory records already carry the
// framework (stdout) and telemetry streams; the EventLog adds the missing
// scheduler-decision stream so analyses can be rebuilt from logs alone, the
// way the paper's pipeline joins its three sources.
//
// One SchedEvent per scheduler decision, appended in simulation callback
// order (which is deterministic), serialized as NDJSON: one JSON object per
// line with a fixed key order, so two runs of the same config produce
// byte-identical streams regardless of thread count.
//
// The log is intentionally NOT thread-safe: one EventLog belongs to exactly
// one simulation run. Cross-run aggregation belongs in MetricsRegistry.

#ifndef SRC_OBS_EVENT_LOG_H_
#define SRC_OBS_EVENT_LOG_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"

namespace philly {

// The scheduler decision vocabulary. Every kind maps 1:1 to a stable NDJSON
// `ev` tag (see ToString); new kinds must be appended to keep tags stable.
enum class SchedEventKind {
  kSubmit,         // job arrived at the scheduler
  kQueued,         // job entered its VC queue
  kLocalityRelax,  // waiting job's placement constraint was relaxed a level
  kBackoff,        // a pass left jobs waiting; next pass delayed by `delay`
  kSchedule,       // attempt started (detail: pass | migrate | prerun)
  kPreempt,        // attempt stopped for another job (detail: fairshare |
                   // priority | timeslice)
  kMigrate,        // attempt suspended by the defragmentation pass
  kFaultKill,      // attempt killed by a machine fault (detail: reason)
  kRequeue,        // job re-entered its VC queue after an attempt ended
  kComplete,       // job reached a final status
  kCkptBegin,      // checkpoint write started draining (detail: policy)
  kCkptEnd,        // checkpoint write completed, or aborted mid-flight
                   // (detail: "interrupted"); delay = elapsed write time
  kCkptStall,      // contention stretch of a completed write beyond its
                   // uncontended cost; delay = stall seconds
  kRoute,          // fleet front door routed a job to a cluster (detail:
                   // router policy; cluster/home + queue/free inputs below)
};

inline constexpr int kNumSchedEventKinds = 14;

std::string_view ToString(SchedEventKind kind);
bool SchedEventKindFromString(std::string_view text, SchedEventKind* kind);

// One scheduler decision. Only the fields relevant to `kind` are meaningful;
// the rest keep their defaults and are omitted from the NDJSON encoding.
struct SchedEvent {
  SimTime time = 0;
  SchedEventKind kind = SchedEventKind::kSubmit;
  JobId job = kNoJob;  // kNoJob for cluster-level events (backoff)
  int32_t vc = -1;
  int32_t user = -1;
  int gpus = 0;
  int attempt = -1;  // attempt index for schedule/preempt/requeue/complete

  // kSchedule: the wait record this start closed, plus decision context.
  SimTime ready_time = 0;
  SimDuration wait = 0;
  SimDuration fair_share_time = 0;
  SimDuration fragmentation_time = 0;
  int sched_attempts = 0;       // failed placement evaluations in the wait
  bool out_of_order = false;    // started while an earlier job waited
  bool benign = false;          // the overtaken job's opportunity survived
  std::string placement;        // EncodePlacement of the gang

  // kRequeue/kComplete: state of the attempt the event closes.
  bool failed = false;
  bool preempted = false;
  bool machine_fault = false;

  // kComplete: final status (JobStatus as int; -1 = not a completion) and the
  // job-level out-of-order flags the record accumulated.
  int status = -1;
  bool started_out_of_order = false;
  bool out_of_order_benign = false;
  bool overtaken = false;

  // kLocalityRelax / kBackoff.
  int relax_level = 0;
  SimDuration delay = 0;

  // kFaultKill: GPU-seconds thrown away by this kill.
  // kCkptStall: GPU-seconds of contention stretch (stall x gang GPUs).
  double lost_gpu_seconds = 0.0;

  // kCkpt*: rack whose shared storage the write drains (-1 = not a
  // checkpoint event; omitted from the encoding).
  int32_t rack = -1;

  // kRoute: destination cluster, the job's home cluster, and the router's
  // decision inputs at submission time (its fluid-model queue depths and the
  // destination's free-GPU estimate). All omitted at defaults, so streams
  // from single-cluster runs are unchanged.
  int32_t cluster = -1;
  int32_t home = -1;
  int64_t home_queue = -1;
  int64_t dest_queue = -1;
  int64_t dest_free = -1;

  // Kind-specific tag: schedule source ("pass" | "migrate" | "prerun"),
  // preemption mode ("fairshare" | "priority" | "timeslice"), or the
  // fault-kill failure reason.
  std::string detail;
};

class EventLog {
 public:
  // Appends and returns a new event for the caller to fill in.
  SchedEvent& Append(SchedEventKind kind, SimTime time, JobId job);

  // Pre-sizes the stream. Growth reallocations move every buffered event
  // (~176 bytes each), which dominates append cost on hot paths; the
  // simulation reserves an events-per-job estimate up front.
  void Reserve(size_t n) { events_.reserve(n); }

  // Drops buffered events but keeps capacity, so one log can be reused
  // across sequential runs (write the stream out, clear, run again) without
  // re-faulting its buffer. A log still belongs to one run at a time.
  void Clear() { events_.clear(); }

  const std::vector<SchedEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // One JSON object per line, fixed key order, default-valued fields omitted.
  void WriteNdjson(std::ostream& out) const;

  // Parses a stream written by WriteNdjson. Stops at the first malformed
  // line and reports it via *error (error stays empty on success).
  static std::vector<SchedEvent> ReadNdjson(std::istream& in,
                                            std::string* error = nullptr);

 private:
  std::vector<SchedEvent> events_;
};

// Serialization of a single event (the NDJSON line, without the newline).
std::string ToNdjsonLine(const SchedEvent& event);
bool SchedEventFromNdjsonLine(std::string_view line, SchedEvent* event,
                              std::string* error);

}  // namespace philly

#endif  // SRC_OBS_EVENT_LOG_H_
