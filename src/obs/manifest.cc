#include "src/obs/manifest.h"

#include <fstream>
#include <ostream>

#include "src/common/strings.h"

namespace philly {
namespace {

void WriteStringMap(std::ostream& out, const char* key,
                    const std::map<std::string, std::string>& values) {
  out << "  \"" << key << "\": {";
  bool first = true;
  for (const auto& [name, value] : values) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": \""
        << JsonEscape(value) << '"';
    first = false;
  }
  out << (first ? "}" : "\n  }");
}

}  // namespace

void RunManifest::WriteJson(std::ostream& out) const {
  out << "{\n";
  out << "  \"tool\": \"" << JsonEscape(tool) << "\",\n";
  out << "  \"command\": \"" << JsonEscape(command) << "\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"days\": " << days << ",\n";
  out << "  \"threads\": " << threads << ",\n";
  WriteStringMap(out, "knobs", knobs);
  out << ",\n";
  WriteStringMap(out, "outputs", outputs);
  out << ",\n";
  WriteStringMap(out, "digests", digests);
  out << "\n}\n";
}

bool RunManifest::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteJson(out);
  return out.good();
}

}  // namespace philly
