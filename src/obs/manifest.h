// Run manifest: the reproducibility sidecar written next to every trace or
// observability output directory. Records what produced the artifacts —
// command, seed, workload scale, scheduler knobs, thread count — so a trace
// directory found on disk months later can be regenerated bit-for-bit.

#ifndef SRC_OBS_MANIFEST_H_
#define SRC_OBS_MANIFEST_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace philly {

struct RunManifest {
  std::string tool;         // producing binary, e.g. "phillyctl"
  std::string command;      // subcommand, e.g. "simulate"
  uint64_t seed = 0;
  double days = 0.0;        // simulated trace-window length
  int threads = 1;          // pool worker threads (1 = serial)
  // Free-form configuration knobs, e.g. "scheduler" -> "locality_aware",
  // "retry" -> "on". String values keep the schema stable as knobs evolve.
  std::map<std::string, std::string> knobs;
  // Logical artifact name -> path as written, e.g. "events" -> "events.ndjson".
  std::map<std::string, std::string> outputs;
  // Logical artifact name -> SHA-256 hex digest of the bytes written, so a
  // stream found on disk can be checked for truncation or tampering before
  // anyone joins or cross-checks it.
  std::map<std::string, std::string> digests;

  void WriteJson(std::ostream& out) const;
  // Writes the manifest to `path`; returns false if the file cannot be opened.
  bool WriteFile(const std::string& path) const;
};

}  // namespace philly

#endif  // SRC_OBS_MANIFEST_H_
