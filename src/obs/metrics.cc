#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace philly {
namespace {

void UpdateAtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void UpdateAtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void WriteJsonNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << 0;
    return;
  }
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    out << static_cast<int64_t>(v);
    return;
  }
  out << v;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty() || bounds_.size() > kNumBuckets - 1) {
    throw std::invalid_argument(
        "Histogram: custom layout needs 1.." + std::to_string(kNumBuckets - 1) +
        " bucket bounds, got " + std::to_string(bounds_.size()));
  }
  for (size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly ascending");
    }
  }
}

int Histogram::NumBuckets() const {
  return bounds_.empty() ? kNumBuckets : static_cast<int>(bounds_.size()) + 1;
}

// Default layout covers [2^-10, 2^53): bucket i holds values with upper bound
// 2^(i - 10). Values below 2^-10 land in bucket 0, values at or above the
// last bound in bucket kNumBuckets - 1. A custom layout buckets by
// lower_bound over its ascending upper bounds, with one overflow bucket.
int Histogram::BucketFor(double v) const {
  if (!bounds_.empty()) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    return static_cast<int>(it - bounds_.begin());
  }
  if (!(v > 0.0)) {
    return 0;
  }
  const int exponent = std::ilogb(v);
  const int bucket = exponent + 11;  // value < 2^(bucket - 10)
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

double Histogram::BucketUpperBound(int bucket) const {
  if (!bounds_.empty()) {
    return bucket < static_cast<int>(bounds_.size())
               ? bounds_[static_cast<size_t>(bucket)]
               : std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, bucket - 10);
}

void Histogram::Observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  UpdateAtomicMin(&min_, v);
  UpdateAtomicMax(&max_, v);
  buckets_[static_cast<size_t>(BucketFor(v))].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const int64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  // Extremes are exact: the running min/max are the true order statistics,
  // and interpolating inside the edge buckets would drift (e.g. with mixed
  // signs the first bucket's nominal lower edge is 0, not the negative min).
  if (q <= 0.0) {
    return min();
  }
  if (q >= 1.0) {
    return max();
  }
  const double rank = q * static_cast<double>(n);
  double seen = 0.0;
  const int num_buckets = NumBuckets();
  for (int i = 0; i < num_buckets; ++i) {
    const auto in_bucket = static_cast<double>(
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) {
      continue;
    }
    if (seen + in_bucket >= rank) {
      const double lower = i == 0 ? min() : BucketUpperBound(i - 1);
      // The overflow bucket has no finite nominal bound; max() caps it (and
      // every other bucket — observed extremes beat nominal edges).
      const double upper = std::min(BucketUpperBound(i), max());
      const double fraction = (rank - seen) / in_bucket;
      const double estimate = lower + fraction * (upper - lower);
      return std::clamp(estimate, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

void Histogram::MergeFrom(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument(
        "Histogram::MergeFrom: mismatched bucket layouts (" +
        std::to_string(NumBuckets()) + " vs " +
        std::to_string(other.NumBuckets()) + " buckets)");
  }
  const int64_t n = other.count();
  if (n == 0) {
    return;
  }
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  UpdateAtomicMin(&min_, other.min_.load(std::memory_order_relaxed));
  UpdateAtomicMax(&max_, other.max_.load(std::memory_order_relaxed));
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t b =
        other.buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (b != 0) {
      buckets_[static_cast<size_t>(i)].fetch_add(b, std::memory_order_relaxed);
    }
  }
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot the other registry's instrument pointers under its lock, then
  // fold them in through the public lookup path (which takes our own lock).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, counter] : other.counters_) {
      counters.emplace_back(name, counter.get());
    }
    for (const auto& [name, gauge] : other.gauges_) {
      gauges.emplace_back(name, gauge.get());
    }
    for (const auto& [name, histogram] : other.histograms_) {
      histograms.emplace_back(name, histogram.get());
    }
  }
  for (const auto& [name, counter] : counters) {
    GetCounter(name)->Increment(counter->value());
  }
  for (const auto& [name, gauge] : gauges) {
    GetGauge(name)->Add(gauge->value());
  }
  for (const auto& [name, histogram] : histograms) {
    GetHistogram(name)->MergeFrom(*histogram);
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
    WriteJsonNumber(out, gauge->value());
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
        << histogram->count() << ", \"sum\": ";
    WriteJsonNumber(out, histogram->sum());
    out << ", \"min\": ";
    WriteJsonNumber(out, histogram->min());
    out << ", \"max\": ";
    WriteJsonNumber(out, histogram->max());
    out << ", \"mean\": ";
    WriteJsonNumber(out, histogram->mean());
    out << ", \"p50\": ";
    WriteJsonNumber(out, histogram->Quantile(0.5));
    out << ", \"p90\": ";
    WriteJsonNumber(out, histogram->Quantile(0.9));
    out << ", \"p99\": ";
    WriteJsonNumber(out, histogram->Quantile(0.99));
    out << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

}  // namespace philly
