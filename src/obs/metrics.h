// Thread-safe run metrics: named counters, gauges, and histograms.
//
// A MetricsRegistry may be shared by every worker of an ExperimentPool —
// instruments are registered under a mutex and then updated lock-free, so a
// single registry aggregates across concurrently running simulations. The
// resulting numbers are order-independent (sums, counts, bucketed
// histograms), which keeps multi-threaded sweeps reportable even though the
// per-sample interleaving is not deterministic.
//
// Instrument pointers returned by the registry are stable for the registry's
// lifetime; callers resolve them once and cache them on hot paths.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace philly {

class Counter {
 public:
  void Increment(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed exponential (base-2) buckets spanning ~1e-3 to ~1e12, plus running
// count/sum/min/max. Quantiles are interpolated within the hit bucket, which
// is plenty for the ~order-of-magnitude spreads the paper reports (queue
// delays of minutes vs. days).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  // Default layout: the fixed exponential base-2 buckets described above.
  Histogram() = default;
  // Custom layout: `bounds` are strictly ascending bucket upper bounds (at
  // most kNumBuckets - 1 of them); values above the last bound land in a
  // final overflow bucket. Throws std::invalid_argument on a bad layout.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;
  // Interpolated quantile estimate. Returns 0 when empty; q <= 0 returns the
  // observed min and q >= 1 the observed max.
  double Quantile(double q) const;

  // Folds another histogram's samples into this one. Throws
  // std::invalid_argument when the bucket layouts differ — adding counts
  // bucket-by-bucket across layouts would silently corrupt both.
  void MergeFrom(const Histogram& other);

  // Empty for the default exponential layout.
  const std::vector<double>& bucket_bounds() const { return bounds_; }

 private:
  int NumBuckets() const;
  int BucketFor(double v) const;
  double BucketUpperBound(int bucket) const;

  std::vector<double> bounds_;  // empty = default exponential layout
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  // Lookup-or-create by name. Names are dotted paths, e.g.
  // "sched.queue_delay_minutes". Pointers stay valid for the registry's
  // lifetime. A name registered as one instrument kind must not be reused as
  // another.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Folds another registry's instruments into this one (matching by name);
  // used to combine per-run registries after a sweep.
  void MergeFrom(const MetricsRegistry& other);

  // Stable JSON snapshot: instruments grouped by kind, sorted by name.
  void WriteJson(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace philly

#endif  // SRC_OBS_METRICS_H_
