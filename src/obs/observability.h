// The single knob that threads observability through the stack.
//
// All sinks are optional, non-owning, and default to null. A
// default-constructed ObservabilityConfig is the "off" state, and the
// instrumented code promises that the off state is free: no allocation, no
// clock reads, no RNG perturbation, byte-identical simulation output to a
// build without observability. Enabling any sink must never change
// simulation behavior — events observe decisions, they do not make them.

#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace_profiler.h"

namespace philly {

struct ObservabilityConfig {
  // Per-run scheduler decision stream (one log per simulation; not shared
  // across concurrent runs).
  EventLog* event_log = nullptr;
  // Aggregated counters/gauges/histograms; thread-safe, may be shared by
  // every run in an ExperimentPool sweep.
  MetricsRegistry* metrics = nullptr;
  // Wall-clock phase slices; thread-safe, may be shared.
  TraceProfiler* profiler = nullptr;
  // Per-minute cluster telemetry stream (one recorder per simulation; not
  // shared across concurrent runs).
  ClusterTimeSeries* timeseries = nullptr;
  // Per-job causal span stream with blame attribution (one tracer per
  // simulation; not shared across concurrent runs).
  SpanTracer* spans = nullptr;

  bool enabled() const {
    return event_log != nullptr || metrics != nullptr || profiler != nullptr ||
           timeseries != nullptr || spans != nullptr;
  }
};

}  // namespace philly

#endif  // SRC_OBS_OBSERVABILITY_H_
