#include "src/obs/rollup.h"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <stdexcept>

#include "src/common/json.h"

namespace philly {
namespace {

void AppendDouble(std::string& out, double v) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void AppendField(std::string& out, std::string_view key, int64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendField(std::string& out, std::string_view key, double value) {
  out += ",\"";
  out += key;
  out += "\":";
  AppendDouble(out, value);
}

void AppendDoubleArray(std::string& out, std::string_view key,
                       const std::array<double, TelemetryDigest::kNumClasses>& values) {
  out += ",\"";
  out += key;
  out += "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    AppendDouble(out, values[i]);
  }
  out += ']';
}

// Decile bucket bounds in percent; the tenth (overflow) bucket catches
// 90-100%. Used for the rollup's percentile digests — a custom Histogram
// layout, so cross-shard MergeFrom exercises the layout validation.
std::vector<double> DecileBoundsPct() {
  return {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0};
}

void WriteHistogramJson(std::ostream& out, const char* name,
                        const Histogram& h) {
  out << "    \"" << name << "\": {\"count\": " << h.count() << ", \"mean\": "
      << h.mean() << ", \"min\": " << h.min() << ", \"max\": " << h.max()
      << ", \"p50\": " << h.Quantile(0.5) << ", \"p90\": " << h.Quantile(0.9)
      << ", \"p99\": " << h.Quantile(0.99) << "}";
}

}  // namespace

bool SampleAggregatesEqual(const TelemetryDigest& a, const TelemetryDigest& b) {
  return a.samples == b.samples && a.used_gpu_samples == b.used_gpu_samples &&
         a.queue_depth_max == b.queue_depth_max &&
         a.occupancy_sum == b.occupancy_sum &&
         a.util_expected_sum == b.util_expected_sum &&
         a.util_observed_sum == b.util_observed_sum;
}

bool JobAggregatesEqual(const TelemetryDigest& a, const TelemetryDigest& b) {
  return a.jobs == b.jobs && a.segments == b.segments &&
         a.util_weight == b.util_weight &&
         a.util_weighted_sum == b.util_weighted_sum;
}

TelemetryDigest DigestOfSamples(const std::vector<TelemetrySample>& samples) {
  TelemetryDigest digest;
  for (const TelemetrySample& s : samples) {
    ++digest.samples;
    digest.used_gpu_samples += s.used_gpus;
    digest.queue_depth_max = std::max<int64_t>(digest.queue_depth_max, s.queued_jobs);
    digest.occupancy_sum += s.occupancy;
    digest.util_expected_sum += s.util_expected_pct;
    digest.util_observed_sum += s.util_observed_pct;
  }
  return digest;
}

std::string ToNdjsonLine(const TelemetryDigest& digest) {
  std::string out;
  out.reserve(256);
  out += "{\"digest\":1";
  AppendField(out, "samples", digest.samples);
  AppendField(out, "used_gpu_samples", digest.used_gpu_samples);
  AppendField(out, "queue_max", digest.queue_depth_max);
  AppendField(out, "occ_sum", digest.occupancy_sum);
  AppendField(out, "util_exp_sum", digest.util_expected_sum);
  AppendField(out, "util_obs_sum", digest.util_observed_sum);
  AppendField(out, "jobs", digest.jobs);
  AppendField(out, "segments", digest.segments);
  AppendDoubleArray(out, "util_weight", digest.util_weight);
  AppendDoubleArray(out, "util_wsum", digest.util_weighted_sum);
  out += '}';
  return out;
}

bool IsTelemetryDigestLine(std::string_view line) {
  return line.rfind("{\"digest\":", 0) == 0;
}

bool TelemetryDigestFromNdjsonLine(std::string_view line, TelemetryDigest* digest,
                                   std::string* error) {
  std::string parse_error;
  const JsonValue v = JsonValue::Parse(line, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) {
      *error = parse_error;
    }
    return false;
  }
  if (v.type() != JsonValue::Type::kObject || v["digest"].is_null()) {
    if (error != nullptr) {
      *error = "not a telemetry digest line";
    }
    return false;
  }
  TelemetryDigest d;
  d.samples = static_cast<int64_t>(v["samples"].AsNumber());
  d.used_gpu_samples = static_cast<int64_t>(v["used_gpu_samples"].AsNumber());
  d.queue_depth_max = static_cast<int64_t>(v["queue_max"].AsNumber());
  d.occupancy_sum = v["occ_sum"].AsNumber();
  d.util_expected_sum = v["util_exp_sum"].AsNumber();
  d.util_observed_sum = v["util_obs_sum"].AsNumber();
  d.jobs = static_cast<int64_t>(v["jobs"].AsNumber());
  d.segments = static_cast<int64_t>(v["segments"].AsNumber());
  const auto& weights = v["util_weight"].AsArray();
  const auto& sums = v["util_wsum"].AsArray();
  const auto num_classes = static_cast<size_t>(TelemetryDigest::kNumClasses);
  if (weights.size() != num_classes || sums.size() != num_classes) {
    if (error != nullptr) {
      *error = "digest class arrays must have " +
               std::to_string(TelemetryDigest::kNumClasses) + " entries";
    }
    return false;
  }
  for (size_t i = 0; i < num_classes; ++i) {
    d.util_weight[i] = weights[i].AsNumber();
    d.util_weighted_sum[i] = sums[i].AsNumber();
  }
  *digest = d;
  return true;
}

TelemetryRollup::TelemetryRollup(SimDuration window)
    : window_(window),
      occupancy_pct_(DecileBoundsPct()),
      util_observed_pct_(DecileBoundsPct()),
      queue_depth_() {
  if (window_ <= 0) {
    throw std::invalid_argument("TelemetryRollup: window must be positive");
  }
}

void TelemetryRollup::Add(const TelemetrySample& sample) {
  const SimTime start = (sample.time / window_) * window_;
  TelemetryWindow& w = windows_[start];
  w.start = start;
  ++w.samples;
  w.occupancy_sum += sample.occupancy;
  w.occupancy_min = std::min(w.occupancy_min, sample.occupancy);
  w.occupancy_max = std::max(w.occupancy_max, sample.occupancy);
  w.util_expected_sum += sample.util_expected_pct;
  w.util_observed_sum += sample.util_observed_pct;
  w.used_gpu_samples += sample.used_gpus;
  w.queued_max = std::max<int64_t>(w.queued_max, sample.queued_jobs);
  w.running_max = std::max<int64_t>(w.running_max, sample.running_jobs);
  occupancy_pct_.Observe(sample.occupancy * 100.0);
  util_observed_pct_.Observe(sample.util_observed_pct);
  queue_depth_.Observe(static_cast<double>(sample.queued_jobs));
}

void TelemetryRollup::AddAll(const std::vector<TelemetrySample>& samples) {
  for (const TelemetrySample& sample : samples) {
    Add(sample);
  }
}

void TelemetryRollup::MergeFrom(const TelemetryRollup& other) {
  if (window_ != other.window_) {
    throw std::invalid_argument(
        "TelemetryRollup::MergeFrom: window mismatch (" +
        std::to_string(window_) + "s vs " + std::to_string(other.window_) +
        "s)");
  }
  for (const auto& [start, w] : other.windows_) {
    TelemetryWindow& mine = windows_[start];
    mine.start = start;
    mine.samples += w.samples;
    mine.occupancy_sum += w.occupancy_sum;
    mine.occupancy_min = std::min(mine.occupancy_min, w.occupancy_min);
    mine.occupancy_max = std::max(mine.occupancy_max, w.occupancy_max);
    mine.util_expected_sum += w.util_expected_sum;
    mine.util_observed_sum += w.util_observed_sum;
    mine.used_gpu_samples += w.used_gpu_samples;
    mine.queued_max = std::max(mine.queued_max, w.queued_max);
    mine.running_max = std::max(mine.running_max, w.running_max);
  }
  occupancy_pct_.MergeFrom(other.occupancy_pct_);
  util_observed_pct_.MergeFrom(other.util_observed_pct_);
  queue_depth_.MergeFrom(other.queue_depth_);
}

void TelemetryRollup::WriteJson(std::ostream& out) const {
  out << "{\n  \"window_seconds\": " << window_ << ",\n  \"windows\": [";
  bool first = true;
  for (const auto& [start, w] : windows_) {
    out << (first ? "\n" : ",\n") << "    {\"start\": " << start
        << ", \"samples\": " << w.samples << ", \"occ_mean\": "
        << w.MeanOccupancy() << ", \"occ_min\": "
        << (w.samples == 0 ? 0.0 : w.occupancy_min) << ", \"occ_max\": "
        << (w.samples == 0 ? 0.0 : w.occupancy_max) << ", \"util_exp_mean\": "
        << w.MeanUtilExpected() << ", \"util_obs_mean\": "
        << w.MeanUtilObserved() << ", \"queued_max\": " << w.queued_max
        << ", \"running_max\": " << w.running_max << "}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"digests\": {\n";
  WriteHistogramJson(out, "occupancy_pct", occupancy_pct_);
  out << ",\n";
  WriteHistogramJson(out, "util_observed_pct", util_observed_pct_);
  out << ",\n";
  WriteHistogramJson(out, "queue_depth", queue_depth_);
  out << "\n  }\n}\n";
}

}  // namespace philly
