// Rollups and integrity digests for the telemetry stream (timeseries.h).
//
// TelemetryDigest is the stream's self-check record: order-sensitive exact
// aggregates over the sample lines (recomputable by any reader, in file
// order, with bitwise-equal results) plus the Table 3 utilization aggregates
// the writer derived from the native job records. `phillyctl analyze
// --telemetry` recomputes both sides and exits non-zero on any mismatch —
// the same reconstruct-and-cross-check discipline event_join.h applies to
// the scheduler stream.
//
// TelemetryRollup downsamples a stream into fixed windows (default one hour)
// for reporting, with Histogram-backed percentile digests; MergeFrom folds
// per-shard rollups together after an ExperimentPool sweep and rejects
// mismatched window sizes or histogram layouts loudly.

#ifndef SRC_OBS_ROLLUP_H_
#define SRC_OBS_ROLLUP_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/sim_time.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"

namespace philly {

// Exact aggregates for cross-checking a telemetry stream. All sums are
// accumulated in a fixed order (file order for samples, job order for the
// utilization aggregates), so equal inputs give bitwise-equal digests.
struct TelemetryDigest {
  // Size classes for the utilization aggregates: the paper's representative
  // job sizes (1, 4, 8, 16 GPUs) plus an all-jobs overall class.
  static constexpr int kNumClasses = 5;
  static constexpr int kOverallClass = 4;

  // --- derived from the sample lines, in file order ---
  int64_t samples = 0;
  int64_t used_gpu_samples = 0;  // sum of used_gpus
  int64_t queue_depth_max = 0;
  double occupancy_sum = 0.0;
  double util_expected_sum = 0.0;  // percent-valued samples
  double util_observed_sum = 0.0;

  // --- derived from the native job records (ComputeUtilDigest) ---
  int64_t jobs = 0;
  int64_t segments = 0;
  std::array<double, kNumClasses> util_weight = {};        // sample weights
  std::array<double, kNumClasses> util_weighted_sum = {};  // value * weight

  bool operator==(const TelemetryDigest&) const = default;
};

// Exact-equality views for the two digest halves.
bool SampleAggregatesEqual(const TelemetryDigest& a, const TelemetryDigest& b);
bool JobAggregatesEqual(const TelemetryDigest& a, const TelemetryDigest& b);

// Recomputes the sample-derived half from a stream, in file order.
TelemetryDigest DigestOfSamples(const std::vector<TelemetrySample>& samples);

// Digest NDJSON line ({"digest":1,...}); appended after the sample lines.
std::string ToNdjsonLine(const TelemetryDigest& digest);
bool IsTelemetryDigestLine(std::string_view line);
bool TelemetryDigestFromNdjsonLine(std::string_view line, TelemetryDigest* digest,
                                   std::string* error);

// One downsampling window of a rollup.
struct TelemetryWindow {
  SimTime start = 0;
  int64_t samples = 0;
  double occupancy_sum = 0.0;
  double occupancy_min = std::numeric_limits<double>::infinity();
  double occupancy_max = -std::numeric_limits<double>::infinity();
  double util_expected_sum = 0.0;
  double util_observed_sum = 0.0;
  int64_t used_gpu_samples = 0;
  int64_t queued_max = 0;
  int64_t running_max = 0;

  double MeanOccupancy() const {
    return samples == 0 ? 0.0 : occupancy_sum / static_cast<double>(samples);
  }
  double MeanUtilExpected() const {
    return samples == 0 ? 0.0 : util_expected_sum / static_cast<double>(samples);
  }
  double MeanUtilObserved() const {
    return samples == 0 ? 0.0 : util_observed_sum / static_cast<double>(samples);
  }
};

class TelemetryRollup {
 public:
  explicit TelemetryRollup(SimDuration window = Hours(1));

  SimDuration window() const { return window_; }

  void Add(const TelemetrySample& sample);
  void AddAll(const std::vector<TelemetrySample>& samples);

  // Windows keyed (and iterated) by start time.
  const std::map<SimTime, TelemetryWindow>& windows() const { return windows_; }

  // Whole-stream percentile digests (custom decile bucket layouts).
  const Histogram& occupancy_pct() const { return occupancy_pct_; }
  const Histogram& util_observed_pct() const { return util_observed_pct_; }
  const Histogram& queue_depth() const { return queue_depth_; }

  // Folds another rollup's windows and digests into this one. Throws
  // std::invalid_argument on a window-size mismatch (and the histograms
  // reject layout mismatches themselves).
  void MergeFrom(const TelemetryRollup& other);

  // Stable JSON snapshot: window table plus histogram percentiles.
  void WriteJson(std::ostream& out) const;

 private:
  SimDuration window_;
  std::map<SimTime, TelemetryWindow> windows_;
  Histogram occupancy_pct_;
  Histogram util_observed_pct_;
  Histogram queue_depth_;
};

}  // namespace philly

#endif  // SRC_OBS_ROLLUP_H_
