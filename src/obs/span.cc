#include "src/obs/span.h"

#include <cassert>
#include <istream>
#include <ostream>

#include "src/common/json.h"
#include "src/common/strings.h"

namespace philly {
namespace {

constexpr std::string_view kBlameNames[kNumBlameCodes] = {
    "fair_share_cap", "fragmentation", "locality_wait", "backoff",
    "fault_recovery", "ckpt_stall",    "router_queue",
};

constexpr std::string_view kSpanKindNames[kNumSpanKinds] = {
    "queued",
    "blame",
    "running",
    "ckpt",
};

void AppendField(std::string& out, std::string_view key, int64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendField(std::string& out, std::string_view key, std::string_view value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  out += JsonEscape(value);
  out += '"';
}

}  // namespace

std::string_view ToString(BlameCode code) {
  return kBlameNames[static_cast<size_t>(code)];
}

bool BlameCodeFromString(std::string_view text, BlameCode* code) {
  for (int i = 0; i < kNumBlameCodes; ++i) {
    if (text == kBlameNames[static_cast<size_t>(i)]) {
      *code = static_cast<BlameCode>(i);
      return true;
    }
  }
  return false;
}

std::string_view ToString(SpanKind kind) {
  return kSpanKindNames[static_cast<size_t>(kind)];
}

bool SpanKindFromString(std::string_view text, SpanKind* kind) {
  for (int i = 0; i < kNumSpanKinds; ++i) {
    if (text == kSpanKindNames[static_cast<size_t>(i)]) {
      *kind = static_cast<SpanKind>(i);
      return true;
    }
  }
  return false;
}

std::string ToNdjsonLine(const SpanRecord& s) {
  std::string out;
  out.reserve(96);
  out += "{\"t\":";
  out += std::to_string(s.start);
  out += ",\"sp\":\"";
  out += ToString(s.kind);
  out += '"';
  AppendField(out, "dur", s.dur);
  if (s.kind == SpanKind::kBlame || s.kind == SpanKind::kCkpt) {
    AppendField(out, "code", ToString(s.code));
  }
  if (s.job != kNoJob) {
    AppendField(out, "job", s.job);
  }
  if (s.vc >= 0) {
    AppendField(out, "vc", static_cast<int64_t>(s.vc));
  }
  if (s.user >= 0) {
    AppendField(out, "user", static_cast<int64_t>(s.user));
  }
  if (s.gpus > 0) {
    AppendField(out, "gpus", static_cast<int64_t>(s.gpus));
  }
  if (s.wait_index >= 0) {
    AppendField(out, "wait", static_cast<int64_t>(s.wait_index));
  }
  if (s.attempt >= 0) {
    AppendField(out, "attempt", static_cast<int64_t>(s.attempt));
  }
  if (!s.detail.empty()) {
    AppendField(out, "detail", s.detail);
  }
  out += '}';
  return out;
}

bool SpanRecordFromNdjsonLine(std::string_view line, SpanRecord* span,
                              std::string* error) {
  std::string parse_error;
  const JsonValue v = JsonValue::Parse(line, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) {
      *error = parse_error;
    }
    return false;
  }
  if (v.type() != JsonValue::Type::kObject) {
    if (error != nullptr) {
      *error = "span line is not a JSON object";
    }
    return false;
  }
  // `t`, `sp`, and `dur` are written unconditionally, so a line missing any
  // of them is truncation or hand-editing, not a default-omitted field.
  if (v["t"].is_null() || v["dur"].is_null()) {
    if (error != nullptr) {
      *error = "span line is missing 't' or 'dur'";
    }
    return false;
  }
  SpanRecord s;
  if (!SpanKindFromString(v["sp"].AsString(), &s.kind)) {
    if (error != nullptr) {
      *error = "unknown span kind '" + v["sp"].AsString() + "'";
    }
    return false;
  }
  if (s.kind == SpanKind::kBlame || s.kind == SpanKind::kCkpt) {
    if (!BlameCodeFromString(v["code"].AsString(), &s.code)) {
      if (error != nullptr) {
        *error = "unknown blame code '" + v["code"].AsString() + "'";
      }
      return false;
    }
  }
  const auto as_i64 = [&v](std::string_view key, int64_t fallback) {
    const JsonValue& field = v[key];
    return field.is_null() ? fallback : static_cast<int64_t>(field.AsNumber());
  };
  s.start = as_i64("t", 0);
  s.dur = as_i64("dur", 0);
  s.job = as_i64("job", kNoJob);
  s.vc = static_cast<int32_t>(as_i64("vc", -1));
  s.user = static_cast<int32_t>(as_i64("user", -1));
  s.gpus = static_cast<int>(as_i64("gpus", 0));
  s.wait_index = static_cast<int>(as_i64("wait", -1));
  s.attempt = static_cast<int>(as_i64("attempt", -1));
  s.detail = v["detail"].AsString();
  *span = std::move(s);
  return true;
}

void SpanLog::WriteNdjson(std::ostream& out) const {
  for (const SpanRecord& span : spans_) {
    out << ToNdjsonLine(span) << '\n';
  }
}

std::vector<SpanRecord> SpanLog::ReadNdjson(std::istream& in, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  std::vector<SpanRecord> spans;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    SpanRecord span;
    std::string line_error;
    if (!SpanRecordFromNdjsonLine(line, &span, &line_error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": " + line_error;
      }
      break;
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

void WriteSpanChromeTrace(std::ostream& out, const std::vector<SpanRecord>& spans) {
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& s : spans) {
    out << (first ? "\n" : ",\n");
    out << "  {\"name\": \"" << ToString(s.kind);
    if (s.kind == SpanKind::kBlame || s.kind == SpanKind::kCkpt) {
      out << ':' << ToString(s.code);
    }
    if (!s.detail.empty()) {
      // Details are identifier-ish tags we emit ourselves; escape the two
      // characters that could still break the JSON string.
      out << ':';
      for (char c : s.detail) {
        if (c == '"' || c == '\\') {
          out << '\\';
        }
        out << c;
      }
    }
    // Simulated seconds -> trace microseconds; pid groups by VC, tid by job,
    // so Perfetto's track view shows one lifecycle lane per job.
    out << "\", \"ph\": \"X\", \"ts\": " << s.start * 1000000
        << ", \"dur\": " << s.dur * 1000000
        << ", \"pid\": " << (s.vc >= 0 ? s.vc : 0) << ", \"tid\": "
        << (s.job != kNoJob ? s.job : 0) << "}";
    first = false;
  }
  out << (first ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
}

void SpanTracer::Reserve(size_t num_jobs) {
  tracks_.reserve(num_jobs);
  log_.Reserve(num_jobs * 4);
}

void SpanTracer::Clear() {
  tracks_.clear();
  vc_blame_.clear();
  log_.Clear();
}

SpanTracer::Track& SpanTracer::TrackOf(JobId job) {
  assert(job >= 0);
  if (static_cast<size_t>(job) >= tracks_.size()) {
    tracks_.resize(static_cast<size_t>(job) + 1);
  }
  return tracks_[static_cast<size_t>(job)];
}

void SpanTracer::MarkRouterQueued(JobId job) {
  TrackOf(job).router_queued = true;
}

void SpanTracer::Charge(Track& track, SimTime upto) {
  const SimDuration dt = upto - track.mark;
  if (dt <= 0) {
    return;
  }
  if (!track.segs.empty() && track.segs.back().code == track.pending) {
    // Intervals are contiguous by construction, so same-code neighbours merge.
    track.segs.back().end = upto;
  } else {
    track.segs.push_back({track.mark, upto, track.pending});
  }
  if (track.vc >= 0) {
    if (static_cast<size_t>(track.vc) >= vc_blame_.size()) {
      vc_blame_.resize(static_cast<size_t>(track.vc) + 1, {});
    }
    vc_blame_[static_cast<size_t>(track.vc)]
             [static_cast<size_t>(track.pending)] += dt;
  }
  track.mark = upto;
}

SpanRecord& SpanTracer::Emit(SpanKind kind, const Track& track, JobId job,
                             SimTime start, SimDuration dur) {
  SpanRecord& span = log_.Append();
  span.kind = kind;
  span.start = start;
  span.dur = dur;
  span.job = job;
  span.vc = track.vc;
  span.user = track.user;
  span.gpus = track.gpus;
  return span;
}

void SpanTracer::OnEnqueue(JobId job, int32_t vc, int32_t user, int gpus,
                           SimTime now, bool fault_recovery) {
  Track& track = TrackOf(job);
  track.vc = vc;
  track.user = user;
  track.gpus = gpus;
  track.queued = true;
  track.queued_at = now;
  track.mark = now;
  track.segs.clear();
  if (fault_recovery) {
    track.pending = BlameCode::kFaultRecovery;
  } else if (track.router_queued && !track.ever_enqueued) {
    track.pending = BlameCode::kRouterQueue;
  } else {
    track.pending = BlameCode::kBackoff;
  }
  track.ever_enqueued = true;
}

void SpanTracer::OnEvalFail(JobId job, SimTime now, BlameCode code) {
  Track& track = TrackOf(job);
  assert(track.queued);
  Charge(track, now);
  track.pending = code;
}

void SpanTracer::OnStart(JobId job, int32_t vc, int32_t user, int gpus,
                         SimTime now, int wait_index, int attempt) {
  Track& track = TrackOf(job);
  track.vc = vc;
  track.user = user;
  track.gpus = gpus;
  if (track.queued) {
    Charge(track, now);
    if (now > track.queued_at) {
      Emit(SpanKind::kQueued, track, job, track.queued_at, now - track.queued_at)
          .wait_index = wait_index;
      for (const Seg& seg : track.segs) {
        SpanRecord& span =
            Emit(SpanKind::kBlame, track, job, seg.start, seg.end - seg.start);
        span.code = seg.code;
        span.wait_index = wait_index;
      }
    }
    track.queued = false;
    track.segs.clear();
  }
  track.running = true;
  track.run_start = now;
  track.run_attempt = attempt;
}

void SpanTracer::OnRunStart(JobId job, int32_t vc, int32_t user, int gpus,
                            SimTime now, int attempt) {
  Track& track = TrackOf(job);
  track.vc = vc;
  track.user = user;
  track.gpus = gpus;
  track.running = true;
  track.run_start = now;
  track.run_attempt = attempt;
}

void SpanTracer::OnRunEnd(JobId job, SimTime now, std::string_view reason) {
  Track& track = TrackOf(job);
  if (!track.running) {
    return;
  }
  track.running = false;
  if (now <= track.run_start) {
    return;
  }
  SpanRecord& span =
      Emit(SpanKind::kRunning, track, job, track.run_start, now - track.run_start);
  span.attempt = track.run_attempt;
  span.detail = reason;
}

void SpanTracer::OnCkptStall(JobId job, SimTime now, SimDuration stall,
                             std::string_view detail) {
  if (stall <= 0) {
    return;
  }
  Track& track = TrackOf(job);
  SpanRecord& span = Emit(SpanKind::kCkpt, track, job, now - stall, stall);
  span.code = BlameCode::kCkptStall;
  span.attempt = track.run_attempt;
  span.detail = detail;
  if (track.vc >= 0) {
    if (static_cast<size_t>(track.vc) >= vc_blame_.size()) {
      vc_blame_.resize(static_cast<size_t>(track.vc) + 1, {});
    }
    vc_blame_[static_cast<size_t>(track.vc)]
             [static_cast<size_t>(BlameCode::kCkptStall)] += stall;
  }
}

void SpanTracer::FillVcBlame(std::vector<int64_t>& out) const {
  if (vc_blame_.empty()) {
    return;
  }
  out.reserve(vc_blame_.size() * kNumBlameCodes);
  for (const auto& per_vc : vc_blame_) {
    for (const int64_t seconds : per_vc) {
      out.push_back(seconds);
    }
  }
}

}  // namespace philly
