// Causal span tracer — the queueing-delay attribution engine (§3.1.1, Table 2
// made per-job). The EventLog records *that* the scheduler decided; the span
// stream records *why a job waited*: every failed placement evaluation charges
// the elapsed interval to an explicit blame code emitted at the decision site,
// so each job's lifecycle reads as a span tree
//
//   submit -> queued[blame...] -> running -> (preempted | ckpt-stalled |
//   fault-killed) -> queued[blame...] -> ... -> complete
//
// The stream satisfies an exact *blame-conservation identity*: for every
// waiting period, the blame child spans tile [ready_time, start] with no gaps
// or overlaps, so their durations sum to the measured queueing delay to the
// integral second — and the fairness/fragmentation subtotals equal the native
// WaitRecord attribution exactly (src/core/span_analysis.h verifies both).
//
// Like the other sinks, the tracer is per-run, not thread-safe, and strictly
// observational: attaching it never perturbs the simulation (the PR 3
// null-sink ground rule), and the off state costs nothing.

#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"

namespace philly {

// Why a waiting interval elapsed. The first two refine the paper's two-way
// split at the decision site; the rest cover the intervals the native
// attribution leaves uncharged, so the blame always sums to the full wait.
// Appended-only (stable NDJSON tags), like SchedEventKind.
enum class BlameCode {
  kFairnessShareCap,  // VC at/over quota at the failed evaluation (Table 2
                      // "fair-share"; equals WaitRecord::fair_share_time)
  kFragmentation,     // no placement even fully relaxed: free GPUs exist but
                      // not in a usable shape
  kLocalityWait,      // a fully-relaxed placement existed; the job is holding
                      // out for locality at its current relax level
                      // (kFragmentation + kLocalityWait equal
                      // WaitRecord::fragmentation_time)
  kBackoff,           // pre-first-evaluation stretch of a wait: the job sat
                      // queued until the next scheduling pass looked at it
  kFaultRecovery,     // pre-evaluation stretch after a machine-fault kill
  kCkptStall,         // checkpoint-write contention stretch (within a running
                      // span; not part of the queueing identity)
  kRouterQueue,       // fleet mode: pre-evaluation stretch of a spilled job's
                      // first wait, charged to the front-door router
};

inline constexpr int kNumBlameCodes = 7;

std::string_view ToString(BlameCode code);
bool BlameCodeFromString(std::string_view text, BlameCode* code);

// Span vocabulary. `queued` spans cover a whole waiting period and own the
// `blame` children that tile it; `running` spans cover one placed (or prerun)
// attempt; `ckpt` spans mark checkpoint-write stalls inside a running span.
enum class SpanKind { kQueued, kBlame, kRunning, kCkpt };

inline constexpr int kNumSpanKinds = 4;

std::string_view ToString(SpanKind kind);
bool SpanKindFromString(std::string_view text, SpanKind* kind);

// One closed span. Only the fields relevant to `kind` are meaningful; the
// rest keep defaults and are omitted from the NDJSON encoding.
struct SpanRecord {
  SimTime start = 0;
  SimDuration dur = 0;
  SpanKind kind = SpanKind::kQueued;
  BlameCode code = BlameCode::kBackoff;  // blame / ckpt spans only
  JobId job = kNoJob;
  int32_t vc = -1;
  int32_t user = -1;
  int gpus = 0;
  int wait_index = -1;  // queued/blame: index into JobRecord::waits
  int attempt = -1;     // running/ckpt: attempt index
  // running: how the attempt ended ("passed" | "killed" | "unsuccessful" |
  // "preempt" | "fault" | "fail" | "suspend" | "prerun");
  // ckpt: "write" | "interrupted".
  std::string detail;
};

std::string ToNdjsonLine(const SpanRecord& span);
bool SpanRecordFromNdjsonLine(std::string_view line, SpanRecord* span,
                              std::string* error);

// Buffered span stream, one per simulation run (EventLog discipline: not
// thread-safe, fixed NDJSON key order, byte-identical across thread counts).
class SpanLog {
 public:
  SpanRecord& Append() { return spans_.emplace_back(); }
  void Reserve(size_t n) { spans_.reserve(n); }
  void Clear() { spans_.clear(); }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }

  void WriteNdjson(std::ostream& out) const;
  static std::vector<SpanRecord> ReadNdjson(std::istream& in,
                                            std::string* error = nullptr);

 private:
  std::vector<SpanRecord> spans_;
};

// Chrome trace-event export (the TraceProfiler format): one complete slice
// per span, pid = VC, tid = job, ts/dur in microseconds of simulated time.
// Open chrome://tracing or Perfetto on the result to browse the span tree.
void WriteSpanChromeTrace(std::ostream& out, const std::vector<SpanRecord>& spans);

// The sink ClusterSimulation drives. It mirrors the scheduler's native
// attribution exactly: each failed evaluation closes the interval since the
// previous one and charges it to the blame code diagnosed *at that interval's
// start* (AttributeWaitTime's convention), and the stretch before the first
// evaluation — which the native WaitRecord leaves uncharged — is charged to
// kBackoff / kFaultRecovery / kRouterQueue depending on how the wait began.
// Adjacent same-code intervals coalesce, so stream size stays proportional to
// cause *changes*, not scheduling passes.
class SpanTracer {
 public:
  // Pre-sizes per-job tracking and the span buffer (~4 spans/job).
  void Reserve(size_t num_jobs);
  void Clear();

  // Fleet front door: the job was routed off its home cluster, so the
  // pre-evaluation stretch of its *first* wait is the router's fault.
  void MarkRouterQueued(JobId job);

  // --- ClusterSimulation hooks (deterministic callback order) ---
  void OnEnqueue(JobId job, int32_t vc, int32_t user, int gpus, SimTime now,
                 bool fault_recovery);
  // A placement evaluation failed; `code` is the refined cause diagnosed now
  // (it blames the interval that STARTS here, closing the previous one).
  void OnEvalFail(JobId job, SimTime now, BlameCode code);
  // The wait closed and a placed attempt starts: emits the queued span, its
  // blame children, and opens the running span.
  void OnStart(JobId job, int32_t vc, int32_t user, int gpus, SimTime now,
               int wait_index, int attempt);
  // Opens a running span without a preceding wait (prerun pool attempts).
  void OnRunStart(JobId job, int32_t vc, int32_t user, int gpus, SimTime now,
                  int attempt);
  // Closes the open running span, if any; `reason` lands in `detail`.
  void OnRunEnd(JobId job, SimTime now, std::string_view reason);
  // A checkpoint write's contention stretch [now - stall, now].
  void OnCkptStall(JobId job, SimTime now, SimDuration stall,
                   std::string_view detail);

  // Cumulative per-VC x per-code attributed seconds (VC-major, kNumBlameCodes
  // per VC), for the telemetry rollup. Empty until the first attribution.
  void FillVcBlame(std::vector<int64_t>& out) const;

  const SpanLog& log() const { return log_; }
  SpanLog& log() { return log_; }

 private:
  struct Seg {
    SimTime start = 0;
    SimTime end = 0;
    BlameCode code = BlameCode::kBackoff;
  };
  struct Track {
    int32_t vc = -1;
    int32_t user = -1;
    int gpus = 0;
    bool queued = false;
    bool ever_enqueued = false;
    bool router_queued = false;
    bool running = false;
    SimTime queued_at = 0;
    SimTime mark = 0;  // start of the interval the next evaluation closes
    BlameCode pending = BlameCode::kBackoff;  // code for [mark, next eval]
    SimTime run_start = 0;
    int run_attempt = -1;
    std::vector<Seg> segs;  // coalesced blame intervals of the current wait
  };

  Track& TrackOf(JobId job);
  void Charge(Track& track, SimTime upto);
  SpanRecord& Emit(SpanKind kind, const Track& track, JobId job, SimTime start,
                   SimDuration dur);

  std::vector<Track> tracks_;  // indexed by JobId (dense ids)
  std::vector<std::array<int64_t, kNumBlameCodes>> vc_blame_;
  SpanLog log_;
};

}  // namespace philly

#endif  // SRC_OBS_SPAN_H_
