#include "src/obs/timeseries.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>

#include "src/common/distributions.h"
#include "src/common/json.h"
#include "src/obs/rollup.h"

namespace philly {
namespace {

// Same deterministic noise primitives as GangliaSampler (sampler.cc): the
// telemetry join must be reproducible from (seed, job, attempt) alone.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

double HashedNormal(uint64_t seed, uint64_t index) {
  const uint64_t h = Mix64(seed ^ (index * 0x9E3779B97F4A7C15ull));
  const double u = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
  return Probit(u);
}

// Shortest round-trip double encoding, mirroring event_log.cc.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void AppendField(std::string& out, std::string_view key, int64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendField(std::string& out, std::string_view key, double value) {
  out += ",\"";
  out += key;
  out += "\":";
  AppendDouble(out, value);
}

template <typename IntSequence>
void AppendIntArray(std::string& out, std::string_view key,
                    const IntSequence& values) {
  out += ",\"";
  out += key;
  out += "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  out += ']';
}

std::vector<int> ReadIntArray(const JsonValue& v, std::string_view key) {
  std::vector<int> out;
  const auto& items = v[key].AsArray();
  out.reserve(items.size());
  for (const JsonValue& item : items) {
    out.push_back(static_cast<int>(item.AsNumber()));
  }
  return out;
}

std::vector<int64_t> ReadInt64Array(const JsonValue& v, std::string_view key) {
  std::vector<int64_t> out;
  const auto& items = v[key].AsArray();
  out.reserve(items.size());
  for (const JsonValue& item : items) {
    out.push_back(static_cast<int64_t>(item.AsNumber()));
  }
  return out;
}

}  // namespace

std::string ToNdjsonLine(const TelemetrySample& s) {
  std::string out;
  out.reserve(256);
  out += "{\"t\":";
  out += std::to_string(s.time);
  if (s.used_gpus != 0) {
    AppendField(out, "used", static_cast<int64_t>(s.used_gpus));
  }
  if (s.free_gpus != 0) {
    AppendField(out, "free", static_cast<int64_t>(s.free_gpus));
  }
  if (s.occupancy != 0.0) {
    AppendField(out, "occ", s.occupancy);
  }
  if (s.running_jobs != 0) {
    AppendField(out, "running", static_cast<int64_t>(s.running_jobs));
  }
  if (s.queued_jobs != 0) {
    AppendField(out, "queued", static_cast<int64_t>(s.queued_jobs));
  }
  if (s.busy_servers != 0) {
    AppendField(out, "busy_srv", static_cast<int64_t>(s.busy_servers));
  }
  if (s.empty_servers != 0) {
    AppendField(out, "empty_srv", static_cast<int64_t>(s.empty_servers));
  }
  if (s.racks_with_empty != 0) {
    AppendField(out, "racks_empty", static_cast<int64_t>(s.racks_with_empty));
  }
  if (s.offline_servers != 0) {
    AppendField(out, "offline", static_cast<int64_t>(s.offline_servers));
  }
  if (s.locality_relaxations != 0) {
    AppendField(out, "relax", s.locality_relaxations);
  }
  if (s.backoffs != 0) {
    AppendField(out, "backoffs", s.backoffs);
  }
  if (s.preemptions != 0) {
    AppendField(out, "preempt", s.preemptions);
  }
  if (s.migrations != 0) {
    AppendField(out, "migrate", s.migrations);
  }
  if (s.fault_kills != 0) {
    AppendField(out, "fault_kill", s.fault_kills);
  }
  if (s.lost_gpu_seconds != 0.0) {
    AppendField(out, "lost_gpu_s", s.lost_gpu_seconds);
  }
  if (s.ckpt_writes != 0) {
    AppendField(out, "ckpt_writes", s.ckpt_writes);
  }
  if (s.ckpt_overhead_gpu_seconds != 0.0) {
    AppendField(out, "ckpt_overhead_gpu_s", s.ckpt_overhead_gpu_seconds);
  }
  if (s.ckpt_stall_gpu_seconds != 0.0) {
    AppendField(out, "ckpt_stall_gpu_s", s.ckpt_stall_gpu_seconds);
  }
  if (s.util_expected_pct != 0.0) {
    AppendField(out, "util_exp", s.util_expected_pct);
  }
  if (s.util_observed_pct != 0.0) {
    AppendField(out, "util_obs", s.util_observed_pct);
  }
  AppendIntArray(out, "rack_free", s.rack_free_gpus);
  AppendIntArray(out, "vc_queued", s.vc_queued);
  AppendIntArray(out, "vc_running", s.vc_running);
  AppendIntArray(out, "vc_gpus", s.vc_used_gpus);
  AppendIntArray(out, "util_deciles", s.util_deciles);
  // Present only when the checkpoint I/O model is enabled (byte-identity for
  // disabled-model streams).
  if (!s.ckpt_rack_writers.empty()) {
    AppendIntArray(out, "ckpt_writers", s.ckpt_rack_writers);
  }
  // Present only when the span tracer is attached (same byte-identity rule).
  if (!s.vc_blame_s.empty()) {
    AppendIntArray(out, "vc_blame_s", s.vc_blame_s);
  }
  out += '}';
  return out;
}

bool TelemetrySampleFromNdjsonLine(std::string_view line, TelemetrySample* sample,
                                   std::string* error) {
  std::string parse_error;
  const JsonValue v = JsonValue::Parse(line, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) {
      *error = parse_error;
    }
    return false;
  }
  if (v.type() != JsonValue::Type::kObject || v["t"].is_null()) {
    if (error != nullptr) {
      *error = "telemetry line is not a sample object";
    }
    return false;
  }
  const auto as_i64 = [&v](std::string_view key, int64_t fallback) {
    const JsonValue& field = v[key];
    return field.is_null() ? fallback : static_cast<int64_t>(field.AsNumber());
  };
  TelemetrySample s;
  s.time = as_i64("t", 0);
  s.used_gpus = static_cast<int>(as_i64("used", 0));
  s.free_gpus = static_cast<int>(as_i64("free", 0));
  s.occupancy = v["occ"].AsNumber(0.0);
  s.running_jobs = static_cast<int>(as_i64("running", 0));
  s.queued_jobs = static_cast<int>(as_i64("queued", 0));
  s.busy_servers = static_cast<int>(as_i64("busy_srv", 0));
  s.empty_servers = static_cast<int>(as_i64("empty_srv", 0));
  s.racks_with_empty = static_cast<int>(as_i64("racks_empty", 0));
  s.offline_servers = static_cast<int>(as_i64("offline", 0));
  s.locality_relaxations = as_i64("relax", 0);
  s.backoffs = as_i64("backoffs", 0);
  s.preemptions = as_i64("preempt", 0);
  s.migrations = as_i64("migrate", 0);
  s.fault_kills = as_i64("fault_kill", 0);
  s.lost_gpu_seconds = v["lost_gpu_s"].AsNumber(0.0);
  s.ckpt_writes = as_i64("ckpt_writes", 0);
  s.ckpt_overhead_gpu_seconds = v["ckpt_overhead_gpu_s"].AsNumber(0.0);
  s.ckpt_stall_gpu_seconds = v["ckpt_stall_gpu_s"].AsNumber(0.0);
  s.util_expected_pct = v["util_exp"].AsNumber(0.0);
  s.util_observed_pct = v["util_obs"].AsNumber(0.0);
  s.rack_free_gpus = ReadIntArray(v, "rack_free");
  s.vc_queued = ReadIntArray(v, "vc_queued");
  s.vc_running = ReadIntArray(v, "vc_running");
  s.vc_used_gpus = ReadIntArray(v, "vc_gpus");
  s.ckpt_rack_writers = ReadIntArray(v, "ckpt_writers");
  s.vc_blame_s = ReadInt64Array(v, "vc_blame_s");
  const std::vector<int> deciles = ReadIntArray(v, "util_deciles");
  for (size_t i = 0; i < s.util_deciles.size() && i < deciles.size(); ++i) {
    s.util_deciles[i] = deciles[i];
  }
  *sample = std::move(s);
  return true;
}

ClusterTimeSeries::ClusterTimeSeries(SimDuration period, SamplerConfig sampler)
    : period_(period), sampler_(sampler) {
  assert(period_ > 0);
}

void ClusterTimeSeries::Reserve(size_t samples) { samples_.reserve(samples); }

void ClusterTimeSeries::Clear() {
  samples_.clear();
  util_streams_.clear();
  last_index_ = 0;
  run_seed_ = 0;
}

void ClusterTimeSeries::BeginRun(uint64_t seed) {
  samples_.clear();
  util_streams_.clear();
  last_index_ = 0;
  run_seed_ = seed;
}

SimTime ClusterTimeSeries::NextSampleTime() const {
  return (last_index_ + 1) * period_;
}

TelemetrySample& ClusterTimeSeries::AppendSample(SimTime t) {
  assert(t == NextSampleTime());
  ++last_index_;
  TelemetrySample& sample = samples_.emplace_back();
  sample.time = t;
  return sample;
}

double ClusterTimeSeries::ObserveUtilPct(JobId job, int attempt,
                                         double expected_util) {
  // Flat per-job slots: job ids are dense in practice, and this runs once per
  // running job per sampled minute — a hash lookup here is measurable.
  if (static_cast<size_t>(job) >= util_streams_.size()) {
    util_streams_.resize(static_cast<size_t>(job) + 1);
  }
  UtilStream& stream = util_streams_[static_cast<size_t>(job)];
  if (stream.attempt != attempt) {
    // New attempt: reseed, stationary start (same construction as
    // GangliaSampler::SampleSegment).
    stream.attempt = attempt;
    stream.seed = Mix64(run_seed_ ^ (static_cast<uint64_t>(job) << 18) ^
                        (static_cast<uint64_t>(attempt) + 0x9E3779B97F4A7C15ull));
    stream.x = sampler_.jitter_sigma * HashedNormal(stream.seed, 0);
    stream.next_index = 1;
  }
  const double value = std::clamp(expected_util + stream.x, 0.0, 1.0) * 100.0;
  const double rho = sampler_.ar1_rho;
  const double innovation_sigma =
      sampler_.jitter_sigma * std::sqrt(1.0 - rho * rho);
  stream.x = rho * stream.x +
             innovation_sigma *
                 HashedNormal(stream.seed,
                              static_cast<uint64_t>(stream.next_index++));
  return value;
}

void ClusterTimeSeries::WriteNdjson(std::ostream& out,
                                    const TelemetryDigest* digest) const {
  for (const TelemetrySample& sample : samples_) {
    out << ToNdjsonLine(sample) << '\n';
  }
  if (digest != nullptr) {
    out << ToNdjsonLine(*digest) << '\n';
  }
}

std::vector<TelemetrySample> ClusterTimeSeries::ReadNdjson(
    std::istream& in, TelemetryDigest* digest, bool* found_digest,
    std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  if (found_digest != nullptr) {
    *found_digest = false;
  }
  std::vector<TelemetrySample> samples;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::string line_error;
    if (IsTelemetryDigestLine(line)) {
      TelemetryDigest parsed;
      if (!TelemetryDigestFromNdjsonLine(line, &parsed, &line_error)) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_number) + ": " + line_error;
        }
        break;
      }
      if (digest != nullptr) {
        *digest = parsed;
      }
      if (found_digest != nullptr) {
        *found_digest = true;
      }
      continue;
    }
    TelemetrySample sample;
    if (!TelemetrySampleFromNdjsonLine(line, &sample, &line_error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": " + line_error;
      }
      break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace philly
