// Per-minute cluster telemetry stream — the Ganglia analogue of the paper's
// three-way log join (§2.4). The EventLog captures scheduler decisions and
// the trace writer the per-job framework logs; the ClusterTimeSeries adds the
// third source: cluster state sampled on a fixed wall-clock cadence,
// independent of when scheduler events happen to fire.
//
// Samples are taken from a Simulator time-advance hook, so recording is
// passive: it never schedules events, and the sampled state at minute m is
// the piecewise-constant pre-event state (an event AT m has not yet run).
// One ClusterTimeSeries belongs to exactly one simulation run (not
// thread-safe, like EventLog); serialization is NDJSON with fixed key order
// and shortest-round-trip doubles, so streams are byte-identical across
// PHILLY_BENCH_THREADS.
//
// Per-server GPU utilization is joined in with the same AR(1) jitter model
// GangliaSampler applies in analysis: one observed-utilization step per
// running job per sampled minute, seeded per (run seed, job, attempt), so
// the stream's observed utilization is deterministic and cross-checkable
// against AnalyzeUtilization's digest (see rollup.h).

#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"
#include "src/telemetry/sampler.h"

namespace philly {

// One telemetry scan line. Scalars with default values are omitted from the
// NDJSON encoding (event_log style); array fields are always present.
struct TelemetrySample {
  SimTime time = 0;  // sample timestamp, aligned to the sampling grid

  // Cluster occupancy.
  int used_gpus = 0;
  int free_gpus = 0;
  double occupancy = 0.0;  // used / (used + free), 0 when the cluster is empty
  int running_jobs = 0;
  int queued_jobs = 0;

  // Fragmentation / placement-index view.
  int busy_servers = 0;
  int empty_servers = 0;
  int racks_with_empty = 0;
  int offline_servers = 0;
  std::vector<int> rack_free_gpus;  // index = rack id

  // Per-VC scheduler state (index = VC id).
  std::vector<int> vc_queued;
  std::vector<int> vc_running;
  std::vector<int> vc_used_gpus;

  // Busy servers bucketed by mean observed GPU utilization decile
  // (0-10%, ..., 90-100%); Fig 8-style fleet utilization shape. Fixed-size
  // so a sample costs one fewer heap allocation per simulated minute.
  std::array<int, 10> util_deciles = {};

  // Cumulative scheduler/fault counters as of this sample (monotone).
  int64_t locality_relaxations = 0;
  int64_t backoffs = 0;
  int64_t preemptions = 0;
  int64_t migrations = 0;
  int64_t fault_kills = 0;
  double lost_gpu_seconds = 0.0;

  // Checkpoint I/O view (populated only when the I/O model is enabled; the
  // array is omitted from the encoding when empty so disabled-model streams
  // stay byte-identical to pre-checkpoint builds). ckpt_rack_writers[r] is
  // the number of writes draining rack r's storage at sample time; the
  // scalars are cumulative completed-write and cost counters.
  std::vector<int> ckpt_rack_writers;
  int64_t ckpt_writes = 0;
  double ckpt_overhead_gpu_seconds = 0.0;
  double ckpt_stall_gpu_seconds = 0.0;

  // Per-VC x per-blame-code cumulative attributed queueing seconds, VC-major
  // (kNumBlameCodes entries per VC; see src/obs/span.h). Populated only when
  // the span tracer is attached — empty arrays are omitted from the encoding
  // so tracer-off streams stay byte-identical to pre-span builds.
  std::vector<int64_t> vc_blame_s;

  // Busy-GPU-weighted utilization, percent.
  double util_expected_pct = 0.0;  // from the loss-curve expectation
  double util_observed_pct = 0.0;  // with the Ganglia AR(1) jitter join
};

std::string ToNdjsonLine(const TelemetrySample& s);
bool TelemetrySampleFromNdjsonLine(std::string_view line, TelemetrySample* sample,
                                   std::string* error);

struct TelemetryDigest;  // rollup.h

// Deterministic per-minute recorder. The owning ClusterSimulation drives it:
// BeginRun once, then AppendSample at every grid time crossed by the clock,
// filling the returned sample in place; ObserveUtilPct advances the per-job
// AR(1) jitter stream (exactly once per running job per sampled minute).
class ClusterTimeSeries {
 public:
  explicit ClusterTimeSeries(SimDuration period = Minutes(1),
                             SamplerConfig sampler = {});

  SimDuration period() const { return period_; }

  // Pre-sizes the sample buffer (cheap enabled-path, like EventLog::Reserve).
  void Reserve(size_t samples);
  // Drops all samples and jitter state so the recorder can be reused.
  void Clear();

  // Starts a run: resets per-run state and seeds the utilization join.
  void BeginRun(uint64_t seed);

  // Next unsampled grid time (first grid point strictly after the last
  // sample; the grid starts at time 0, which is never sampled — it is the
  // run's epoch, before any arrival).
  SimTime NextSampleTime() const;

  // Appends a sample at grid time `t` (must equal NextSampleTime()) and
  // returns it for the caller to fill.
  TelemetrySample& AppendSample(SimTime t);

  // Advances the AR(1) jitter stream for `job` and returns the observed
  // utilization in percent for `expected_util` (a fraction). Streams are
  // (re)seeded per (run seed, job, attempt).
  double ObserveUtilPct(JobId job, int attempt, double expected_util);

  const std::vector<TelemetrySample>& samples() const { return samples_; }

  // NDJSON: one sample per line, fixed key order; when `digest` is non-null a
  // final digest line is appended for self-integrity checks.
  void WriteNdjson(std::ostream& out, const TelemetryDigest* digest = nullptr) const;

  // Reads a stream written by WriteNdjson. Stops at the first malformed line
  // ("line N: ..." in *error). A trailing digest line, when present, is
  // decoded into *digest (found_digest reports whether one was seen).
  static std::vector<TelemetrySample> ReadNdjson(std::istream& in,
                                                 TelemetryDigest* digest,
                                                 bool* found_digest,
                                                 std::string* error);

 private:
  struct UtilStream {
    int attempt = -1;
    uint64_t seed = 0;
    int64_t next_index = 0;  // next HashedNormal index to consume
    double x = 0.0;          // current AR(1) deviation
  };

  SimDuration period_;
  SamplerConfig sampler_;
  uint64_t run_seed_ = 0;
  int64_t last_index_ = 0;  // grid index of the last appended sample
  std::vector<TelemetrySample> samples_;
  std::vector<UtilStream> util_streams_;  // indexed by JobId (dense ids)
};

}  // namespace philly

#endif  // SRC_OBS_TIMESERIES_H_
