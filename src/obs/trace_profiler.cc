#include "src/obs/trace_profiler.h"

#include <algorithm>
#include <ostream>

namespace philly {

int TraceProfiler::TrackForThisThreadLocked() {
  const std::thread::id self = std::this_thread::get_id();
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == self) {
      return static_cast<int>(i);
    }
  }
  tracks_.push_back(self);
  return static_cast<int>(tracks_.size() - 1);
}

void TraceProfiler::RecordSlice(std::string_view name, int64_t ts_us,
                                int64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slices_.capacity() == slices_.size()) {
    // Jump straight to a useful capacity; a simulated day records thousands
    // of scheduling-pass slices.
    slices_.reserve(slices_.empty() ? 4096 : slices_.size() * 2);
  }
  Slice& slice = slices_.emplace_back();
  slice.name = name;
  slice.ts_us = ts_us;
  slice.dur_us = std::max<int64_t>(dur_us, 0);
  slice.tid = TrackForThisThreadLocked();
}

size_t TraceProfiler::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slices_.size();
}

int64_t TraceProfiler::TotalDurationOf(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const Slice& slice : slices_) {
    if (slice.name == name) {
      total += slice.dur_us;
    }
  }
  return total;
}

void TraceProfiler::WriteChromeTrace(std::ostream& out) const {
  std::vector<Slice> slices;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slices = slices_;
  }
  std::stable_sort(slices.begin(), slices.end(),
                   [](const Slice& a, const Slice& b) {
                     return a.ts_us < b.ts_us;
                   });
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const Slice& slice : slices) {
    out << (first ? "\n" : ",\n");
    out << "  {\"name\": \"";
    // Phase names are identifiers we choose; escape the two characters that
    // could still break the JSON string.
    for (char c : slice.name) {
      if (c == '"' || c == '\\') {
        out << '\\';
      }
      out << c;
    }
    out << "\", \"ph\": \"X\", \"ts\": " << slice.ts_us
        << ", \"dur\": " << slice.dur_us << ", \"pid\": 0, \"tid\": "
        << slice.tid << "}";
    first = false;
  }
  out << (first ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace philly
