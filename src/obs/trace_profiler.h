// Wall-clock phase profiling as Chrome trace events.
//
// ScopedTimer records one complete ("ph":"X") slice per scope into a shared
// TraceProfiler; WriteChromeTrace emits the Chrome trace-event JSON format,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Slices measure
// host wall time, not simulated time — this is for finding where a run
// spends real seconds (generation vs. scheduler passes vs. analysis), not
// for simulation semantics.
//
// The profiler is thread-safe so ExperimentPool workers can share one; each
// host thread gets its own trace-track (tid) assigned on first use. A null
// profiler disables timing entirely: ScopedTimer(nullptr, ...) never reads
// the clock.

#ifndef SRC_OBS_TRACE_PROFILER_H_
#define SRC_OBS_TRACE_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace philly {

class TraceProfiler {
 public:
  TraceProfiler() : epoch_(std::chrono::steady_clock::now()) {}

  // Appends one complete slice on the calling thread's track. `ts_us` is
  // microseconds since the profiler's construction.
  void RecordSlice(std::string_view name, int64_t ts_us, int64_t dur_us);

  // Microseconds elapsed since the profiler was constructed.
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  size_t size() const;

  // Sum of the durations of every recorded slice named `name`, across all
  // tracks. What the placement-index perf bench reads to compare the
  // scheduling_pass phase between runs without round-tripping Chrome JSON.
  int64_t TotalDurationOf(std::string_view name) const;

  // {"traceEvents": [...]} — the Chrome trace-event JSON format.
  void WriteChromeTrace(std::ostream& out) const;

 private:
  struct Slice {
    std::string name;
    int64_t ts_us = 0;
    int64_t dur_us = 0;
    int tid = 0;
  };

  int TrackForThisThreadLocked();

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Slice> slices_;
  std::vector<std::thread::id> tracks_;
};

// RAII slice: times its own lifetime and records it on destruction. With a
// null profiler this is a no-op (and costs no clock reads), which is how
// phase tracing stays free when observability is off.
class ScopedTimer {
 public:
  ScopedTimer(TraceProfiler* profiler, std::string_view name)
      : profiler_(profiler) {
    if (profiler_ != nullptr) {
      name_ = name;
      start_us_ = profiler_->NowMicros();
    }
  }

  ~ScopedTimer() {
    if (profiler_ != nullptr) {
      profiler_->RecordSlice(name_, start_us_, profiler_->NowMicros() - start_us_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TraceProfiler* profiler_;
  std::string name_;
  int64_t start_us_ = 0;
};

}  // namespace philly

#endif  // SRC_OBS_TRACE_PROFILER_H_
