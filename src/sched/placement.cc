#include "src/sched/placement.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace philly {
namespace {

// Racks ordered emptiest-first (by free GPUs, descending), ties by id for
// determinism.
std::vector<RackId> RankedRacks(const Cluster& cluster) {
  std::vector<RackId> racks(static_cast<size_t>(cluster.NumRacks()));
  for (int r = 0; r < cluster.NumRacks(); ++r) {
    racks[static_cast<size_t>(r)] = r;
  }
  std::sort(racks.begin(), racks.end(), [&](RackId a, RackId b) {
    const int fa = cluster.RackFreeGpus(a);
    const int fb = cluster.RackFreeGpus(b);
    if (fa != fb) {
      return fa > fb;
    }
    return a < b;
  });
  return racks;
}

// Servers of one rack ordered emptiest-first.
std::vector<ServerId> RankedServers(const Cluster& cluster, RackId rack) {
  std::vector<ServerId> servers = cluster.ServersInRack(rack);
  std::stable_sort(servers.begin(), servers.end(), [&](ServerId a, ServerId b) {
    return cluster.ServerFree(a) > cluster.ServerFree(b);
  });
  return servers;
}

// Greedy shard assignment over `servers`: biggest shards first.
std::optional<Placement> TakeGreedy(const Cluster& cluster,
                                    const std::vector<ServerId>& servers, int gpus,
                                    int max_servers) {
  Placement placement;
  int remaining = gpus;
  for (ServerId s : servers) {
    if (remaining <= 0 || placement.NumServers() >= max_servers) {
      break;
    }
    const int take = std::min(remaining, cluster.ServerFree(s));
    if (take > 0) {
      placement.shards.push_back({s, take});
      remaining -= take;
    }
  }
  if (remaining > 0) {
    return std::nullopt;
  }
  return placement;
}

}  // namespace

LocalityPlacer::LocalityPlacer(PlacerConfig config) : config_(config) {}

std::optional<Placement> LocalityPlacer::PlaceOnSingleServer(const Cluster& cluster,
                                                             int gpus) const {
  ServerId best = -1;
  int best_free = 0;
  for (ServerId s = 0; s < cluster.NumServers(); ++s) {
    const int free = cluster.ServerFree(s);
    if (free < gpus) {
      continue;
    }
    if (config_.pack_small_jobs && gpus < cluster.ServerCapacity(s)) {
      // Best-fit: tightest server that fits, to limit fragmentation.
      if (best == -1 || free < best_free) {
        best = s;
        best_free = free;
      }
    } else {
      // Whole-server (or dedicated-placement mode): emptiest server first.
      if (best == -1 || free > best_free) {
        best = s;
        best_free = free;
      }
    }
  }
  if (best == -1) {
    return std::nullopt;
  }
  Placement placement;
  placement.shards.push_back({best, gpus});
  return placement;
}

std::optional<Placement> LocalityPlacer::PlaceInSingleRack(const Cluster& cluster,
                                                           int gpus,
                                                           bool min_servers) const {
  for (RackId rack : RankedRacks(cluster)) {
    if (cluster.RackFreeGpus(rack) < gpus) {
      continue;
    }
    const std::vector<ServerId> servers = RankedServers(cluster, rack);
    if (min_servers) {
      // Strict: only fully-free (or max-capacity-free) shards so the job uses
      // the theoretical minimum number of servers in this rack.
      int max_cap = 0;
      for (ServerId s : servers) {
        max_cap = std::max(max_cap, cluster.ServerCapacity(s));
      }
      const int needed = (gpus + max_cap - 1) / max_cap;
      auto placement = TakeGreedy(cluster, servers, gpus, needed);
      if (placement.has_value()) {
        return placement;
      }
      continue;
    }
    auto placement = TakeGreedy(cluster, servers, gpus, config_.max_spread_servers);
    if (placement.has_value()) {
      return placement;
    }
  }
  return std::nullopt;
}

std::optional<Placement> LocalityPlacer::PlaceAnywhere(const Cluster& cluster, int gpus,
                                                       bool min_servers) const {
  // Rack-major scan, emptiest racks and servers first.
  std::vector<ServerId> servers;
  servers.reserve(static_cast<size_t>(cluster.NumServers()));
  for (RackId rack : RankedRacks(cluster)) {
    for (ServerId s : RankedServers(cluster, rack)) {
      servers.push_back(s);
    }
  }
  if (min_servers) {
    // Emptiest-first across everything minimizes server count greedily.
    std::stable_sort(servers.begin(), servers.end(), [&](ServerId a, ServerId b) {
      return cluster.ServerFree(a) > cluster.ServerFree(b);
    });
  }
  return TakeGreedy(cluster, servers, gpus, config_.max_spread_servers);
}

std::optional<Placement> LocalityPlacer::FindPlacement(const Cluster& cluster, int gpus,
                                                       int relax_level) const {
  assert(gpus > 0);
  if (gpus > cluster.NumFreeGpus()) {
    return std::nullopt;
  }
  int max_server_cap = 0;
  for (ServerId s = 0; s < cluster.NumServers(); ++s) {
    max_server_cap = std::max(max_server_cap, cluster.ServerCapacity(s));
  }

  if (gpus <= max_server_cap) {
    // Sub-server or whole-server job: strict locality means one server.
    auto single = PlaceOnSingleServer(cluster, gpus);
    if (single.has_value() || relax_level == 0) {
      return single;
    }
    // Relaxed: allow spreading within a rack, then anywhere.
    if (relax_level >= 1) {
      auto in_rack = PlaceInSingleRack(cluster, gpus, /*min_servers=*/false);
      if (in_rack.has_value() &&
          in_rack->NumServers() <= (relax_level == 1 ? 2 : 4)) {
        return in_rack;
      }
    }
    if (relax_level >= 2) {
      // Even fully relaxed, a sub-server job never spreads beyond 4 servers:
      // shards of one or two GPUs are all overhead and no locality.
      auto anywhere = PlaceAnywhere(cluster, gpus, /*min_servers=*/true);
      if (anywhere.has_value() && anywhere->NumServers() <= 4) {
        return anywhere;
      }
    }
    return std::nullopt;
  }

  // Multi-server job.
  switch (relax_level) {
    case 0:
      return PlaceInSingleRack(cluster, gpus, /*min_servers=*/true);
    case 1:
      return PlaceInSingleRack(cluster, gpus, /*min_servers=*/false);
    case 2:
      return PlaceAnywhere(cluster, gpus, /*min_servers=*/true);
    default:
      return PlaceAnywhere(cluster, gpus, /*min_servers=*/false);
  }
}

}  // namespace philly
