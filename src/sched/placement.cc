#include "src/sched/placement.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace philly {
namespace {

// Racks ordered emptiest-first (by free GPUs, descending), ties by id for
// determinism.
std::vector<RackId> RankedRacks(const Cluster& cluster) {
  std::vector<RackId> racks(static_cast<size_t>(cluster.NumRacks()));
  for (int r = 0; r < cluster.NumRacks(); ++r) {
    racks[static_cast<size_t>(r)] = r;
  }
  std::sort(racks.begin(), racks.end(), [&](RackId a, RackId b) {
    const int fa = cluster.RackFreeGpus(a);
    const int fb = cluster.RackFreeGpus(b);
    if (fa != fb) {
      return fa > fb;
    }
    return a < b;
  });
  return racks;
}

// Servers of one rack in the canonical order (free GPUs descending, server id
// ascending). The id tie-break is explicit so the order is a property of the
// comparator, not of stable_sort preserving ServersInRack()'s id ordering.
std::vector<ServerId> RankedServers(const Cluster& cluster, RackId rack) {
  std::vector<ServerId> servers = cluster.ServersInRack(rack);
  std::sort(servers.begin(), servers.end(), [&](ServerId a, ServerId b) {
    const int fa = cluster.ServerFree(a);
    const int fb = cluster.ServerFree(b);
    if (fa != fb) {
      return fa > fb;
    }
    return a < b;
  });
  return servers;
}

// Greedy shard assignment over `servers`: biggest shards first.
std::optional<Placement> TakeGreedy(const Cluster& cluster,
                                    const std::vector<ServerId>& servers, int gpus,
                                    int max_servers) {
  Placement placement;
  int remaining = gpus;
  for (ServerId s : servers) {
    if (remaining <= 0 || placement.NumServers() >= max_servers) {
      break;
    }
    const int take = std::min(remaining, cluster.ServerFree(s));
    if (take > 0) {
      placement.shards.push_back({s, take});
      remaining -= take;
    }
  }
  if (remaining > 0) {
    return std::nullopt;
  }
  return placement;
}

// Index-side counterpart of TakeGreedy: callers feed it candidate servers in
// the canonical order and it accumulates shards under the same stop rules.
struct GreedyTake {
  int remaining = 0;
  int max_servers = 0;
  std::vector<PlacementShard> shards;

  bool Full() const {
    return remaining <= 0 || static_cast<int>(shards.size()) >= max_servers;
  }
  void Take(ServerId s, int free) {
    const int take = std::min(remaining, free);
    if (take > 0) {
      shards.push_back({s, take});
      remaining -= take;
    }
  }
  // Commits the accumulated shards if the demand was met; -1 otherwise, with
  // `out` untouched either way on failure.
  int Commit(Placement* out) const {
    if (remaining > 0) {
      return -1;
    }
    if (out != nullptr) {
      out->shards.insert(out->shards.end(), shards.begin(), shards.end());
    }
    return static_cast<int>(shards.size());
  }
};

}  // namespace

LocalityPlacer::LocalityPlacer(PlacerConfig config) : config_(config) {}

// --------------------------------------------------------------------------
// Index-backed search. Every helper walks the Cluster's free-capacity buckets
// in the canonical candidate order documented in placement.h, so the shards it
// emits are byte-identical to the legacy scan's.

int LocalityPlacer::SingleServerIndexed(const Cluster& cluster, int gpus,
                                        Placement* out) const {
  // The legacy scan folds over servers in id order, keeping the tightest fit
  // (best-fit) for packing groups and the emptiest server otherwise, ties to
  // the lower id. Server ids are capacity-contiguous, so folding one champion
  // per capacity group in group order reproduces that fold exactly: within a
  // group the scan's winner is the lowest id in the extremal non-empty bucket.
  ServerId best = -1;
  int best_free = 0;
  for (int g = 0; g < cluster.NumCapacityGroups(); ++g) {
    const Cluster::CapacityGroup& group = cluster.Group(g);
    if (gpus > group.capacity) {
      continue;
    }
    if (config_.pack_small_jobs && gpus < group.capacity) {
      // Best-fit: tightest server that fits, to limit fragmentation.
      for (int f = gpus; f <= group.capacity; ++f) {
        const Cluster::ServerBucket& bucket = cluster.GroupFreeBucket(g, f);
        if (bucket.empty()) {
          continue;
        }
        if (best == -1 || f < best_free) {
          best = *bucket.begin();
          best_free = f;
        }
        break;
      }
    } else {
      // Whole-server (or dedicated-placement mode): emptiest server first.
      for (int f = group.capacity; f >= gpus; --f) {
        const Cluster::ServerBucket& bucket = cluster.GroupFreeBucket(g, f);
        if (bucket.empty()) {
          continue;
        }
        if (best == -1 || f > best_free) {
          best = *bucket.begin();
          best_free = f;
        }
        break;
      }
    }
  }
  if (best == -1) {
    return -1;
  }
  if (out != nullptr) {
    out->shards.push_back({best, gpus});
  }
  return 1;
}

int LocalityPlacer::SingleRackIndexed(const Cluster& cluster, int gpus,
                                      bool min_servers, Placement* out) const {
  for (const RackRank& rank : cluster.RankedRackIndex()) {
    if (rank.free < gpus) {
      // Racks are ordered free-descending: nothing further down fits either.
      break;
    }
    const RackId rack = rank.rack;
    const int rack_cap = cluster.RackMaxServerCapacity(rack);
    // Strict mode caps the job at the theoretical minimum server count for
    // this rack's SKU (static capacity, so an offline 8-GPU server still
    // implies ceil(gpus/8) — matching the legacy scan).
    const int max_servers =
        min_servers ? (gpus + rack_cap - 1) / rack_cap : config_.max_spread_servers;
    GreedyTake take{gpus, max_servers, {}};
    for (int f = rack_cap; f >= 1 && !take.Full(); --f) {
      for (ServerId s : cluster.RackFreeBucket(rack, f)) {
        if (take.Full()) {
          break;
        }
        take.Take(s, f);
      }
    }
    if (take.remaining <= 0) {
      return take.Commit(out);
    }
  }
  return -1;
}

int LocalityPlacer::AnywhereIndexed(const Cluster& cluster, int gpus,
                                    bool min_servers, Placement* out) const {
  GreedyTake take{gpus, config_.max_spread_servers, {}};
  if (min_servers) {
    // Emptiest-first across everything minimizes server count greedily:
    // (free desc, rack free desc, rack id asc, server id asc).
    for (int f = cluster.MaxServerCapacity(); f >= 1 && !take.Full(); --f) {
      for (const RackRank& rank : cluster.RankedRackIndex()) {
        if (take.Full()) {
          break;
        }
        if (f > cluster.RackMaxServerCapacity(rank.rack)) {
          continue;
        }
        for (ServerId s : cluster.RackFreeBucket(rank.rack, f)) {
          if (take.Full()) {
            break;
          }
          take.Take(s, f);
        }
      }
    }
  } else {
    // Rack-major scan, emptiest racks and servers first.
    for (const RackRank& rank : cluster.RankedRackIndex()) {
      if (take.Full()) {
        break;
      }
      for (int f = cluster.RackMaxServerCapacity(rank.rack); f >= 1 && !take.Full();
           --f) {
        for (ServerId s : cluster.RackFreeBucket(rank.rack, f)) {
          if (take.Full()) {
            break;
          }
          take.Take(s, f);
        }
      }
    }
  }
  return take.Commit(out);
}

int LocalityPlacer::SearchIndexed(const Cluster& cluster, int gpus, int relax_level,
                                  Placement* out) const {
  assert(gpus > 0);
  if (gpus > cluster.NumFreeGpus()) {
    return -1;
  }
  const int max_server_cap = cluster.MaxServerCapacity();

  if (gpus <= max_server_cap) {
    // Sub-server or whole-server job: strict locality means one server.
    const int single = SingleServerIndexed(cluster, gpus, out);
    if (single >= 0 || relax_level == 0) {
      return single;
    }
    // Relaxed: allow spreading within a rack, then anywhere. The spread caps
    // apply to the placement the search found, not as a search constraint —
    // an over-spread result fails the level rather than trying further racks.
    if (relax_level >= 1) {
      Placement tmp;
      const int n =
          SingleRackIndexed(cluster, gpus, /*min_servers=*/false, out ? &tmp : nullptr);
      if (n >= 0 && n <= (relax_level == 1 ? 2 : 4)) {
        if (out != nullptr) {
          out->shards.insert(out->shards.end(), tmp.shards.begin(), tmp.shards.end());
        }
        return n;
      }
    }
    if (relax_level >= 2) {
      // Even fully relaxed, a sub-server job never spreads beyond 4 servers:
      // shards of one or two GPUs are all overhead and no locality.
      Placement tmp;
      const int n =
          AnywhereIndexed(cluster, gpus, /*min_servers=*/true, out ? &tmp : nullptr);
      if (n >= 0 && n <= 4) {
        if (out != nullptr) {
          out->shards.insert(out->shards.end(), tmp.shards.begin(), tmp.shards.end());
        }
        return n;
      }
    }
    return -1;
  }

  // Multi-server job.
  switch (relax_level) {
    case 0:
      return SingleRackIndexed(cluster, gpus, /*min_servers=*/true, out);
    case 1:
      return SingleRackIndexed(cluster, gpus, /*min_servers=*/false, out);
    case 2:
      return AnywhereIndexed(cluster, gpus, /*min_servers=*/true, out);
    default:
      return AnywhereIndexed(cluster, gpus, /*min_servers=*/false, out);
  }
}

std::optional<Placement> LocalityPlacer::FindPlacement(const Cluster& cluster, int gpus,
                                                       int relax_level) const {
  if (config_.use_scan_reference) {
    return FindPlacementScan(cluster, gpus, relax_level);
  }
  Placement placement;
  if (SearchIndexed(cluster, gpus, relax_level, &placement) < 0) {
    return std::nullopt;
  }
  return placement;
}

bool LocalityPlacer::CanPlace(const Cluster& cluster, int gpus,
                              int relax_level) const {
  if (config_.use_scan_reference) {
    return FindPlacementScan(cluster, gpus, relax_level).has_value();
  }
  return SearchIndexed(cluster, gpus, relax_level, /*out=*/nullptr) >= 0;
}

// --------------------------------------------------------------------------
// Legacy full-scan reference implementation.

std::optional<Placement> LocalityPlacer::PlaceOnSingleServer(const Cluster& cluster,
                                                             int gpus) const {
  ServerId best = -1;
  int best_free = 0;
  for (ServerId s = 0; s < cluster.NumServers(); ++s) {
    const int free = cluster.ServerFree(s);
    if (free < gpus) {
      continue;
    }
    if (config_.pack_small_jobs && gpus < cluster.ServerCapacity(s)) {
      // Best-fit: tightest server that fits, to limit fragmentation.
      if (best == -1 || free < best_free) {
        best = s;
        best_free = free;
      }
    } else {
      // Whole-server (or dedicated-placement mode): emptiest server first.
      if (best == -1 || free > best_free) {
        best = s;
        best_free = free;
      }
    }
  }
  if (best == -1) {
    return std::nullopt;
  }
  Placement placement;
  placement.shards.push_back({best, gpus});
  return placement;
}

std::optional<Placement> LocalityPlacer::PlaceInSingleRack(const Cluster& cluster,
                                                           int gpus,
                                                           bool min_servers) const {
  for (RackId rack : RankedRacks(cluster)) {
    if (cluster.RackFreeGpus(rack) < gpus) {
      continue;
    }
    const std::vector<ServerId> servers = RankedServers(cluster, rack);
    if (min_servers) {
      // Strict: only fully-free (or max-capacity-free) shards so the job uses
      // the theoretical minimum number of servers in this rack.
      int max_cap = 0;
      for (ServerId s : servers) {
        max_cap = std::max(max_cap, cluster.ServerCapacity(s));
      }
      const int needed = (gpus + max_cap - 1) / max_cap;
      auto placement = TakeGreedy(cluster, servers, gpus, needed);
      if (placement.has_value()) {
        return placement;
      }
      continue;
    }
    auto placement = TakeGreedy(cluster, servers, gpus, config_.max_spread_servers);
    if (placement.has_value()) {
      return placement;
    }
  }
  return std::nullopt;
}

std::optional<Placement> LocalityPlacer::PlaceAnywhere(const Cluster& cluster, int gpus,
                                                       bool min_servers) const {
  // Rack-major scan, emptiest racks and servers first.
  std::vector<ServerId> servers;
  servers.reserve(static_cast<size_t>(cluster.NumServers()));
  for (RackId rack : RankedRacks(cluster)) {
    for (ServerId s : RankedServers(cluster, rack)) {
      servers.push_back(s);
    }
  }
  if (min_servers) {
    // Emptiest-first across everything minimizes server count greedily. The
    // comparator spells out the full canonical key — (free desc, rack free
    // desc, rack id asc, server id asc) — which is exactly what stable-sorting
    // the rack-major list by free GPUs used to produce implicitly.
    std::sort(servers.begin(), servers.end(), [&](ServerId a, ServerId b) {
      const int fa = cluster.ServerFree(a);
      const int fb = cluster.ServerFree(b);
      if (fa != fb) {
        return fa > fb;
      }
      const RackId ra = cluster.ServerRack(a);
      const RackId rb = cluster.ServerRack(b);
      const int rfa = cluster.RackFreeGpus(ra);
      const int rfb = cluster.RackFreeGpus(rb);
      if (rfa != rfb) {
        return rfa > rfb;
      }
      if (ra != rb) {
        return ra < rb;
      }
      return a < b;
    });
  }
  return TakeGreedy(cluster, servers, gpus, config_.max_spread_servers);
}

std::optional<Placement> LocalityPlacer::FindPlacementScan(const Cluster& cluster,
                                                           int gpus,
                                                           int relax_level) const {
  assert(gpus > 0);
  if (gpus > cluster.NumFreeGpus()) {
    return std::nullopt;
  }
  const int max_server_cap = cluster.MaxServerCapacity();

  if (gpus <= max_server_cap) {
    // Sub-server or whole-server job: strict locality means one server.
    auto single = PlaceOnSingleServer(cluster, gpus);
    if (single.has_value() || relax_level == 0) {
      return single;
    }
    // Relaxed: allow spreading within a rack, then anywhere.
    if (relax_level >= 1) {
      auto in_rack = PlaceInSingleRack(cluster, gpus, /*min_servers=*/false);
      if (in_rack.has_value() &&
          in_rack->NumServers() <= (relax_level == 1 ? 2 : 4)) {
        return in_rack;
      }
    }
    if (relax_level >= 2) {
      // Even fully relaxed, a sub-server job never spreads beyond 4 servers:
      // shards of one or two GPUs are all overhead and no locality.
      auto anywhere = PlaceAnywhere(cluster, gpus, /*min_servers=*/true);
      if (anywhere.has_value() && anywhere->NumServers() <= 4) {
        return anywhere;
      }
    }
    return std::nullopt;
  }

  // Multi-server job.
  switch (relax_level) {
    case 0:
      return PlaceInSingleRack(cluster, gpus, /*min_servers=*/true);
    case 1:
      return PlaceInSingleRack(cluster, gpus, /*min_servers=*/false);
    case 2:
      return PlaceAnywhere(cluster, gpus, /*min_servers=*/true);
    default:
      return PlaceAnywhere(cluster, gpus, /*min_servers=*/false);
  }
}

}  // namespace philly
