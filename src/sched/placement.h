// Locality-aware gang placement (§2.3).
//
// The scheduler ranks racks (RDMA domains) by increasing occupancy and
// servers within a rack the same way, so it considers the emptiest domains
// first — that is where a gang has the best chance of landing with locality.
// Small jobs are packed best-fit into partially used servers to limit
// fragmentation; whole-server and multi-server jobs take the emptiest
// servers.
//
// Locality is expressed as a relaxation level, raised by the scheduler after
// repeated failed acquisition attempts (§2.3: "locality constraints are
// relaxed after a scheduling request has been retried a fixed number of
// times"):
//   level 0 — strict: minimum possible server count, single RDMA domain
//   level 1 — single RDMA domain, any server count
//   level 2 — minimum server count per rack-major scan, domains may be mixed
//   level 3 — any free GPUs anywhere (up to a spread cap)
//
// Deterministic candidate order (the contract both implementations obey, and
// the one the free-capacity index reproduces bit-for-bit — see
// docs/placement-index.md):
//   racks:                (free GPUs descending, rack id ascending)
//   servers in a rack:    (free GPUs descending, server id ascending)
//   rack-major scan:      racks in rack order, each rack's servers in
//                         server order
//   emptiest-first scan:  (free GPUs descending, rack free descending,
//                         rack id ascending, server id ascending) — i.e. the
//                         rack-major scan re-sorted by free GPUs with ties
//                         broken by the rack-major position
//   single-server search: one pass over servers in id order, keeping the
//                         tightest fit (best-fit) or the emptiest server
//                         (worst-fit) depending on whether the job packs;
//                         ties keep the lower id
//
// FindPlacement resolves these orders against the Cluster's incrementally
// maintained free-capacity index in O(result) instead of scanning and
// sorting every server per call. FindPlacementScan is the legacy full-scan
// reference implementation; tests/placement_index_diff_test.cc holds the two
// byte-identical over randomized alloc/release/offline sequences.

#ifndef SRC_SCHED_PLACEMENT_H_
#define SRC_SCHED_PLACEMENT_H_

#include <optional>

#include "src/cluster/cluster.h"

namespace philly {

inline constexpr int kMaxRelaxLevel = 3;

struct PlacerConfig {
  // Pack sub-server jobs into partially occupied servers (best-fit). The §5
  // "mitigating interference" ablation turns this off to give small jobs
  // dedicated servers.
  bool pack_small_jobs = true;
  // Upper bound on servers a fully relaxed job may spread over (the paper
  // observes >8-GPU jobs landing on up to 16 servers).
  int max_spread_servers = 16;
  // Route FindPlacement through the legacy full-scan reference instead of
  // the free-capacity index. Exists for differential testing and for the
  // perf baseline in bench/placement_index.cc; results are identical.
  bool use_scan_reference = false;
};

class LocalityPlacer {
 public:
  explicit LocalityPlacer(PlacerConfig config = {});

  // Finds a gang placement for `gpus` GPUs at the given relaxation level, or
  // nullopt if none exists. Never allocates — the caller owns that.
  std::optional<Placement> FindPlacement(const Cluster& cluster, int gpus,
                                         int relax_level) const;

  // Feasibility-only form of FindPlacement: answers "would a placement
  // exist?" through the same index-backed search without materializing the
  // shards. Used by the scheduling pass's out-of-order benign precheck.
  bool CanPlace(const Cluster& cluster, int gpus, int relax_level) const;

  // Legacy full-scan reference implementation (sorts racks and servers from
  // scratch per call). Kept as the ground truth for the differential test
  // harness and the perf baseline; FindPlacement must match it exactly.
  std::optional<Placement> FindPlacementScan(const Cluster& cluster, int gpus,
                                             int relax_level) const;

  const PlacerConfig& config() const { return config_; }

 private:
  // --- index-backed search (shared by FindPlacement and CanPlace) ---
  // Each helper returns the number of servers in the found placement, or -1
  // if none exists. With a non-null `out`, the winning shards are appended;
  // a failed search leaves `out` untouched.
  int SearchIndexed(const Cluster& cluster, int gpus, int relax_level,
                    Placement* out) const;
  int SingleServerIndexed(const Cluster& cluster, int gpus, Placement* out) const;
  int SingleRackIndexed(const Cluster& cluster, int gpus, bool min_servers,
                        Placement* out) const;
  int AnywhereIndexed(const Cluster& cluster, int gpus, bool min_servers,
                      Placement* out) const;

  // --- legacy scan helpers ---
  std::optional<Placement> PlaceOnSingleServer(const Cluster& cluster, int gpus) const;
  std::optional<Placement> PlaceInSingleRack(const Cluster& cluster, int gpus,
                                             bool min_servers) const;
  std::optional<Placement> PlaceAnywhere(const Cluster& cluster, int gpus,
                                         bool min_servers) const;

  PlacerConfig config_;
};

}  // namespace philly

#endif  // SRC_SCHED_PLACEMENT_H_
