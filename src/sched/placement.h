// Locality-aware gang placement (§2.3).
//
// The scheduler ranks racks (RDMA domains) by increasing occupancy and
// servers within a rack the same way, so it considers the emptiest domains
// first — that is where a gang has the best chance of landing with locality.
// Small jobs are packed best-fit into partially used servers to limit
// fragmentation; whole-server and multi-server jobs take the emptiest
// servers.
//
// Locality is expressed as a relaxation level, raised by the scheduler after
// repeated failed acquisition attempts (§2.3: "locality constraints are
// relaxed after a scheduling request has been retried a fixed number of
// times"):
//   level 0 — strict: minimum possible server count, single RDMA domain
//   level 1 — single RDMA domain, any server count
//   level 2 — minimum server count per rack-major scan, domains may be mixed
//   level 3 — any free GPUs anywhere (up to a spread cap)

#ifndef SRC_SCHED_PLACEMENT_H_
#define SRC_SCHED_PLACEMENT_H_

#include <optional>

#include "src/cluster/cluster.h"

namespace philly {

inline constexpr int kMaxRelaxLevel = 3;

struct PlacerConfig {
  // Pack sub-server jobs into partially occupied servers (best-fit). The §5
  // "mitigating interference" ablation turns this off to give small jobs
  // dedicated servers.
  bool pack_small_jobs = true;
  // Upper bound on servers a fully relaxed job may spread over (the paper
  // observes >8-GPU jobs landing on up to 16 servers).
  int max_spread_servers = 16;
};

class LocalityPlacer {
 public:
  explicit LocalityPlacer(PlacerConfig config = {});

  // Finds a gang placement for `gpus` GPUs at the given relaxation level, or
  // nullopt if none exists. Never allocates — the caller owns that.
  std::optional<Placement> FindPlacement(const Cluster& cluster, int gpus,
                                         int relax_level) const;

  const PlacerConfig& config() const { return config_; }

 private:
  std::optional<Placement> PlaceOnSingleServer(const Cluster& cluster, int gpus) const;
  std::optional<Placement> PlaceInSingleRack(const Cluster& cluster, int gpus,
                                             bool min_servers) const;
  std::optional<Placement> PlaceAnywhere(const Cluster& cluster, int gpus,
                                         bool min_servers) const;

  PlacerConfig config_;
};

}  // namespace philly

#endif  // SRC_SCHED_PLACEMENT_H_
