// Simulation output records — the joinable "three log sources" of §2.4.
//
// The simulator emits (1) scheduler-level job records (arrival, demand,
// placement, queueing, final status — what YARN logs provide), (2) per-attempt
// records with the attempt's stdout/stderr tail (what the ML frameworks
// print), and (3) per-job utilization segments from which Ganglia-style
// per-minute telemetry is sampled. The analysis pipeline in src/core joins
// these by job/attempt id exactly as the paper's pipeline joins its logs.

#ifndef SRC_SCHED_RECORDS_H_
#define SRC_SCHED_RECORDS_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/failure/failure_catalog.h"
#include "src/workload/job.h"

namespace philly {

// Why a waiting period dragged on (§3.1.1): the VC was out of quota
// (fair-share) or GPUs existed but not with the required locality
// (fragmentation).
enum class DelayCause { kNone, kFairShare, kFragmentation };

// One continuous period a job spent waiting in the queue before (re)starting.
struct WaitRecord {
  SimTime ready_time = 0;
  SimDuration wait = 0;
  // Accumulated waiting time attributed to each cause.
  SimDuration fair_share_time = 0;
  SimDuration fragmentation_time = 0;
  int sched_attempts = 0;  // failed placement evaluations during the wait

  DelayCause DominantCause() const {
    if (wait <= 0 || (fair_share_time == 0 && fragmentation_time == 0)) {
      return DelayCause::kNone;
    }
    return fair_share_time > fragmentation_time ? DelayCause::kFairShare
                                                : DelayCause::kFragmentation;
  }
};

// A constant-expected-utilization stretch of a running attempt. Segments
// close when co-tenancy changes materially or the attempt ends.
struct UtilSegment {
  double expected_util = 0.0;  // fraction in [0, 1]
  SimDuration duration = 0;
  int num_servers = 1;
};

struct AttemptRecord {
  int index = 0;  // 0-based attempt number
  SimTime start = 0;
  SimTime end = 0;
  Placement placement;
  bool failed = false;
  bool preempted = false;
  // Killed because the hardware under it went away (src/fault machine fault),
  // not because the attempt itself misbehaved. Not serialized to traces.
  bool machine_fault = false;
  // Ran on one GPU of the pre-run pool rather than a gang placement (§5
  // failure-handling ablation); placement is empty for these.
  bool prerun = false;
  // Ground truth (what the injector decided) — tests only; the analysis
  // pipeline must use the classified reason derived from log_tail.
  FailureReason true_reason = FailureReason::kNoSignature;
  // Log tail printed by the attempt (empty for clean attempts).
  std::vector<std::string> log_tail;

  SimDuration Duration() const { return end - start; }
  double GpuTime() const {
    const int gpus = prerun ? 1 : placement.NumGpus();
    return static_cast<double>(end - start) * gpus;
  }
};

struct JobRecord {
  JobSpec spec;
  JobStatus status = JobStatus::kPassed;
  SimTime finish_time = 0;

  std::vector<WaitRecord> waits;
  std::vector<AttemptRecord> attempts;
  std::vector<UtilSegment> util_segments;

  // Scheduling metadata.
  bool started_out_of_order = false;  // overtook an earlier job in its VC
  bool out_of_order_benign = true;    // the overtaken job could not run anyway
  bool overtaken = false;             // a later arrival started while this waited

  // Execution accounting.
  int executed_epochs = 0;       // clean-training epochs completed
  double gpu_seconds = 0.0;      // sum over attempts of duration x GPUs

  // First-start queueing delay (what Fig 3/4 plot). Returns 0 if never ran.
  SimDuration InitialQueueDelay() const {
    return waits.empty() ? 0 : waits.front().wait;
  }
  SimDuration TotalRunTime() const {
    SimDuration total = 0;
    for (const auto& a : attempts) {
      total += a.Duration();
    }
    return total;
  }
  int NumRetries() const {
    return attempts.empty() ? 0 : static_cast<int>(attempts.size()) - 1;
  }
  // Servers used by the first successful placement (Fig 4's x-axis).
  int FirstPlacementServers() const {
    return attempts.empty() ? 0 : attempts.front().placement.NumServers();
  }
  // Time-weighted mean expected utilization over all running segments.
  double MeanExpectedUtil() const {
    double weighted = 0.0;
    double total = 0.0;
    for (const auto& seg : util_segments) {
      weighted += seg.expected_util * static_cast<double>(seg.duration);
      total += static_cast<double>(seg.duration);
    }
    return total > 0 ? weighted / total : 0.0;
  }
};

// Everything a simulation run produces.
struct SimulationResult {
  std::vector<JobRecord> jobs;
  // Cluster-level snapshots for fragmentation statistics (§3.1.1).
  struct OccupancySnapshot {
    SimTime time = 0;
    double occupancy = 0.0;
    double empty_server_fraction = 0.0;
    int racks_with_empty_servers = 0;
    // Sum of recorded executed_epochs across all jobs at snapshot time
    // (epochs are recorded when an attempt ends or is suspended; epochs of
    // the in-flight portion of a running attempt are not yet included).
    int64_t executed_epochs_total = 0;
    // Machine-fault state at snapshot time (all zero when faults disabled).
    int offline_servers = 0;
    int64_t machine_fault_kills_total = 0;
    double machine_fault_lost_gpu_seconds_total = 0.0;
    // Checkpoint I/O state at snapshot time (all zero when the I/O model is
    // disabled).
    int64_t ckpt_writes_completed_total = 0;
    double ckpt_overhead_gpu_seconds_total = 0.0;
    double ckpt_stall_gpu_seconds_total = 0.0;
  };
  std::vector<OccupancySnapshot> occupancy_snapshots;

  // Scheduling-decision counters.
  int64_t scheduling_decisions = 0;
  int64_t out_of_order_decisions = 0;
  int64_t out_of_order_benign = 0;
  int64_t preemptions = 0;
  int64_t migrations = 0;
  // Waiting jobs whose locality constraint was relaxed a level, and
  // scheduling passes that ended in a backoff with jobs still waiting
  // (telemetry counters; also emitted as locality_relax/backoff events).
  int64_t locality_relaxations = 0;
  int64_t sched_backoffs = 0;
  // Checkpoint-suspensions performed by priority-preemptive baselines
  // (Optimus/Tiresias); progress is preserved, unlike fair-share preemption.
  int64_t priority_preemptions = 0;
  // Pre-run pool accounting (§5 ablation).
  int64_t prerun_jobs = 0;
  int64_t prerun_catches = 0;
  double prerun_gpu_seconds = 0.0;

  // Machine-fault accounting (src/fault; all zero when faults disabled).
  int64_t machine_faults_injected = 0;      // fault events hitting >=1 healthy server
  int64_t machine_fault_server_downs = 0;   // servers taken offline
  int64_t machine_fault_kills = 0;          // running attempts killed by faults
  // GPU-seconds thrown away by faults: work past the last checkpoint plus the
  // undetected dead window between fault and detection.
  double machine_fault_lost_gpu_seconds = 0.0;

  // Checkpoint I/O accounting (src/fault/checkpoint_io; all zero when the
  // I/O model is disabled). Every write's elapsed time splits exactly into
  // overhead (up to the uncontended cost) and stall (the contention stretch),
  // each charged across the gang's GPUs.
  int64_t ckpt_writes_started = 0;
  int64_t ckpt_writes_completed = 0;
  int64_t ckpt_writes_interrupted = 0;  // aborted by fault/suspension mid-write
  double ckpt_overhead_gpu_seconds = 0.0;
  double ckpt_stall_gpu_seconds = 0.0;

  // GPU-time conservation ledger over non-prerun attempts: allocated equals
  // useful + machine_fault_lost + ckpt_overhead + ckpt_stall exactly (the
  // property the conservation test asserts). Useful can dip negative for a
  // single attempt whose fault kill discards prior attempts' progress; the
  // run-level sum is the meaningful quantity.
  double allocated_gpu_seconds = 0.0;
  double useful_gpu_seconds = 0.0;

  // Discrete events the simulator processed for this run (engine throughput
  // denominator for events/sec reporting; not a scheduler statistic).
  int64_t sim_events_processed = 0;
};

}  // namespace philly

#endif  // SRC_SCHED_RECORDS_H_
