#include "src/sched/scheduler_config.h"

namespace philly {

std::string_view ToString(CheckpointPolicy policy) {
  switch (policy) {
    case CheckpointPolicy::kFixedPeriod:
      return "fixed-period";
    case CheckpointPolicy::kDalyOptimal:
      return "daly-optimal";
    case CheckpointPolicy::kCooperativeStagger:
      return "cooperative-stagger";
  }
  return "?";
}

SchedulerConfig SchedulerConfig::Philly() {
  SchedulerConfig c;
  c.name = "philly";
  return c;
}

SchedulerConfig SchedulerConfig::Fifo() {
  SchedulerConfig c;
  c.name = "fifo";
  c.allow_out_of_order = false;
  return c;
}

SchedulerConfig SchedulerConfig::Optimus() {
  SchedulerConfig c;
  c.name = "optimus-srtf";
  c.ordering = QueueOrdering::kShortestRemainingFirst;
  c.priority_preemption = true;
  return c;
}

SchedulerConfig SchedulerConfig::Tiresias() {
  SchedulerConfig c;
  c.name = "tiresias-las";
  c.ordering = QueueOrdering::kLeastAttainedServiceFirst;
  c.priority_preemption = true;
  return c;
}

SchedulerConfig SchedulerConfig::Gandiva() {
  SchedulerConfig c;
  c.name = "gandiva-timeslice";
  c.time_slicing = true;
  return c;
}

}  // namespace philly
