// Scheduler policy configuration and the Table 1 presets.
//
// One runtime (src/sched/simulation.h) executes all scheduler variants; the
// policy differences from Table 1 — queue ordering, time-slicing, locality
// handling — are expressed in this config:
//
//                Philly      Gandiva      Optimus     Tiresias
//   Objective    consolid.   consolid.    avg JCT     avg JCT
//   Algorithm    locality    time-share   SRTF        LAS (attained service)
//   Input        arrival     n/a          remaining   attained service
//   Preemption   checkpoint  ctx switch   checkpoint  checkpoint

#ifndef SRC_SCHED_SCHEDULER_CONFIG_H_
#define SRC_SCHED_SCHEDULER_CONFIG_H_

#include <string>
#include <string_view>

#include "src/common/sim_time.h"
#include "src/sched/placement.h"

namespace philly {

// No periodic checkpointing: a machine-fault kill restarts the job from zero
// clean progress.
inline constexpr SimDuration kNoCheckpoint = 0;

// How running gangs pick their checkpoint cadence. Only consulted when the
// checkpoint I/O model (SimulationConfig::ckpt_io) is enabled; with the model
// off, checkpoints are free and kFixedPeriod semantics apply implicitly.
enum class CheckpointPolicy {
  // Every gang checkpoints every checkpoint_period (today's behaviour).
  kFixedPeriod,
  // Per-gang period from Daly's tau = sqrt(2 * write_cost * MTBF), using the
  // configured fault MTBFs scaled to the gang's server/rack footprint and the
  // gang's uncontended write cost. Faults disabled => no checkpoints.
  kDalyOptimal,
  // Fixed period, plus a per-rack coordinator that phase-shifts first writes
  // across gangs and admission-limits concurrent writers (deferred gangs keep
  // training until a slot frees).
  kCooperativeStagger,
};

std::string_view ToString(CheckpointPolicy policy);

enum class QueueOrdering {
  kFifoArrival,                // Philly / Gandiva: arrival time
  kShortestRemainingFirst,     // Optimus: oracle remaining time
  kLeastAttainedServiceFirst,  // Tiresias: GPU-time attained so far
};

struct SchedulerConfig {
  std::string name = "philly";
  QueueOrdering ordering = QueueOrdering::kFifoArrival;

  // Gang acquisition: retry cadence and the relaxation ladder (§2.3: 2-3
  // minute acquisition timeout, 2 minute backoff, relax after a fixed number
  // of retries). A waiting job's relax level rises one step per relax_period
  // of waiting, capped at max_relax_level — time-based, mirroring the
  // timeout-and-backoff loop, so a job gets a real window to acquire its
  // strict-locality placement before it starts spreading.
  SimDuration sched_backoff = Minutes(2);
  SimDuration relax_period = Minutes(30);
  // Locality-wait ablation (§5 "prioritizing locality"): minimum time a job
  // must wait before any relaxation is considered, regardless of attempts.
  SimDuration min_wait_before_relax = 0;
  // Cap the relax level (paper scheduler: kMaxRelaxLevel; the strict-locality
  // ablation sets 0).
  int max_relax_level = kMaxRelaxLevel;

  // Fair share / preemption (§2.3): preemption starts only when >=90% of
  // GPUs are in use; victims come from over-quota VCs, checkpoint + requeue.
  bool enable_preemption = true;
  double preemption_threshold = 0.90;
  // Preempt only for jobs that have already waited this long, and at most
  // once per cooldown window — production preemption is a rare, last-resort
  // action (147 preemption events in the paper's 75-day trace).
  SimDuration preemption_min_wait = Hours(1);
  SimDuration preemption_cooldown = Hours(5);

  // Tiresias discretizes attained service into bands (its "discretized
  // 2D-LAS"): jobs in the same band are FIFO-ordered, which prevents the
  // perpetual mutual preemption a continuous least-attained-service rule
  // suffers. Band width in attained GPU-hours.
  double las_band_gpu_hours = 8.0;

  // JCT-oriented baselines (Optimus/Tiresias) preempt running jobs whose
  // priority key is worse than a waiting job's, via model-checkpoint
  // suspension (Table 1). Victims must have run at least `min_run` to bound
  // churn.
  bool priority_preemption = false;
  SimDuration priority_preemption_min_run = Minutes(10);

  // Allow scheduling a later-arrived job when earlier ones do not fit
  // (work-conserving YARN behaviour; §3.1.1 out-of-order analysis).
  bool allow_out_of_order = true;

  // §5 "improving failure handling": pre-run every multi-GPU job briefly on
  // a single GPU from a dedicated cheap pool before gang scheduling it ("we
  // plan to set up a pool of cheaper VMs to pre-run jobs ... even running
  // multi-GPU jobs on a single GPU will catch such errors"). Failures whose
  // first iterations crash are caught at 1-GPU cost instead of full-gang
  // cost, for a small start delay and pool GPU time.
  bool enable_prerun_pool = false;
  int prerun_pool_gpus = 16;
  SimDuration prerun_cap = Minutes(10);

  // §5 "mitigating interference": checkpoint-based migration that
  // periodically evacuates lightly-used servers (suspending their small
  // local jobs for re-placement elsewhere) to defragment the cluster —
  // the paper's prerequisite for dedicated-server placement to pay off.
  bool enable_migration = false;
  SimDuration migration_period = Minutes(30);
  // Hard cap on jobs migrated per defragmentation pass (per job, not per
  // server: a server is evacuated only as far as the remaining budget).
  int max_migrations_per_pass = 8;

  // Gandiva-style time-slicing: suspend a running job after `quantum` when
  // same-VC demand is waiting, context-switch the waiter in.
  bool time_slicing = false;
  SimDuration time_slice_quantum = Minutes(30);

  // Failure retries (§2.3 fixed budget; §5 proposes adaptive and predictive
  // alternatives — see src/failure/retry_policy.h).
  enum class RetryPolicyKind { kFixed, kAdaptive, kPredictive };
  int max_retries = 4;
  RetryPolicyKind retry_policy = RetryPolicyKind::kFixed;
  int predictive_repeat_threshold = 3;
  // Back-compat convenience for the adaptive ablation.
  bool adaptive_retry = false;

  // Checkpoint-aware machine-fault recovery: with period K > 0, a job killed
  // by a machine fault resumes from the largest multiple of K of its clean
  // executed time (the last periodic checkpoint); with kNoCheckpoint it
  // restarts from zero. Only machine-fault kills consult this — scheduler
  // preemption already checkpoints at epoch granularity (§2.3).
  SimDuration checkpoint_period = kNoCheckpoint;
  // Cadence policy for explicit checkpoint writes when the I/O model is on.
  CheckpointPolicy checkpoint_policy = CheckpointPolicy::kFixedPeriod;

  PlacerConfig placer;

  static SchedulerConfig Philly();
  static SchedulerConfig Fifo();      // strict arrival order, no out-of-order
  static SchedulerConfig Optimus();   // SRTF on oracle remaining time
  static SchedulerConfig Tiresias();  // least attained service
  static SchedulerConfig Gandiva();   // packing + time-slicing
};

}  // namespace philly

#endif  // SRC_SCHED_SCHEDULER_CONFIG_H_
