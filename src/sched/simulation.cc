#include "src/sched/simulation.h"

#include <cassert>
#include <cmath>

#include "src/workload/model_zoo.h"

namespace philly {
namespace {

// Segment-boundary threshold: co-tenancy changes smaller than this do not
// close a telemetry segment (keeps segment counts bounded under churn).
constexpr double kSegmentUtilEpsilon = 0.005;

// Out-of-order queue scan depth per VC per pass.
constexpr int kMaxQueueScan = 64;

FailureReason ReasonForFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash:
      return FailureReason::kNodeCrash;
    case FaultKind::kGpuEccDegraded:
      return FailureReason::kNodeEccDegraded;
    case FaultKind::kSwitchOutage:
      return FailureReason::kRackSwitchOutage;
  }
  return FailureReason::kNodeCrash;
}

}  // namespace

ClusterSimulation::ClusterSimulation(SimulationConfig config, std::vector<JobSpec> jobs)
    : config_(std::move(config)),
      sim_(config_.engine),
      cluster_(config_.cluster),
      placer_(config_.scheduler.placer),
      defrag_placer_([&] {
        PlacerConfig pc = config_.scheduler.placer;
        pc.pack_small_jobs = true;
        return pc;
      }()),
      util_model_(config_.util_model),
      injector_([&] {
        FailureInjectorConfig fc = config_.failure;
        fc.seed ^= config_.seed;
        return fc;
      }()),
      rng_(config_.seed ^ 0xC0FFEEull),
      fault_process_(
          [&] {
            FaultProcessConfig fc = config_.fault;
            fc.seed ^= config_.seed;
            return fc;
          }(),
          cluster_.NumServers(), cluster_.NumRacks()),
      health_(cluster_.NumServers()) {
  if (config_.ckpt_io.Enabled()) {
    ckpt_model_ = std::make_unique<CheckpointIoModel>(
        config_.ckpt_io.rack_bandwidth_gbps, cluster_.NumRacks());
    ckpt_rack_event_.assign(static_cast<size_t>(cluster_.NumRacks()), EventId{});
    ckpt_wait_queue_.assign(static_cast<size_t>(cluster_.NumRacks()), {});
    ckpt_stagger_slot_.assign(static_cast<size_t>(cluster_.NumRacks()), 0);
  }
  SchedulerConfig::RetryPolicyKind kind = config_.scheduler.retry_policy;
  if (config_.scheduler.adaptive_retry) {
    kind = SchedulerConfig::RetryPolicyKind::kAdaptive;
  }
  switch (kind) {
    case SchedulerConfig::RetryPolicyKind::kAdaptive:
      retry_policy_ =
          std::make_unique<AdaptiveRetryPolicy>(config_.scheduler.max_retries);
      break;
    case SchedulerConfig::RetryPolicyKind::kPredictive:
      retry_policy_ = std::make_unique<PredictiveRetryPolicy>(
          config_.scheduler.max_retries, config_.scheduler.predictive_repeat_threshold);
      break;
    case SchedulerConfig::RetryPolicyKind::kFixed:
      retry_policy_ =
          std::make_unique<FixedRetryPolicy>(config_.scheduler.max_retries);
      break;
  }

  assert(!config_.vcs.empty());
  vcs_.reserve(config_.vcs.size());
  for (const auto& vc : config_.vcs) {
    vcs_.push_back(VcState{vc, 0, {}});
  }

  jobs_.reserve(jobs.size());
  JobId max_id = 0;
  for (const auto& spec : jobs) {
    max_id = std::max(max_id, spec.id);
  }
  job_index_.assign(static_cast<size_t>(max_id) + 1, SIZE_MAX);
  for (auto& spec : jobs) {
    assert(spec.vc >= 0 && static_cast<size_t>(spec.vc) < vcs_.size());
    JobState state;
    state.spec = spec;
    state.plan = injector_.PlanFor(spec);
    state.record.spec = spec;
    state.queue_key = static_cast<double>(spec.submit_time);
    state.comm_intensity = ProfileOf(spec.model).comm_intensity;
    assert(job_index_[static_cast<size_t>(spec.id)] == SIZE_MAX);
    job_index_[static_cast<size_t>(spec.id)] = jobs_.size();
    jobs_.push_back(std::move(state));
  }

  if (EventLog* log = config_.obs.event_log; log != nullptr) {
    // ~5 events/job in practice (submit/queued/schedule/complete + retries
    // and backoffs); reserving avoids growth reallocations that would
    // otherwise dominate append cost.
    log->Reserve(jobs_.size() * 6);
  }
  if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
    spans->Reserve(jobs_.size());
  }
  if (MetricsRegistry* metrics = config_.obs.metrics; metrics != nullptr) {
    queue_delay_hist_ = metrics->GetHistogram("sched.queue_delay_minutes");
    fair_share_wait_hist_ = metrics->GetHistogram("sched.wait.fair_share_minutes");
    fragmentation_wait_hist_ =
        metrics->GetHistogram("sched.wait.fragmentation_minutes");
    fair_share_evals_ = metrics->GetCounter("sched.eval_failure.fair_share");
    fragmentation_evals_ = metrics->GetCounter("sched.eval_failure.fragmentation");
    decisions_metric_ = metrics->GetCounter("sched.decisions");
    preemptions_metric_ = metrics->GetCounter("sched.preemptions");
    migrations_metric_ = metrics->GetCounter("sched.migrations");
    fault_kills_metric_ = metrics->GetCounter("fault.kills");
    lost_gpu_metric_ = metrics->GetGauge("fault.lost_gpu_seconds");
    occupancy_metric_ = metrics->GetGauge("cluster.occupancy");
  }
}

SchedEvent* ClusterSimulation::EmitEvent(SchedEventKind kind, const JobState* job) {
  if (config_.obs.event_log == nullptr) {
    return nullptr;
  }
  SchedEvent& event = config_.obs.event_log->Append(
      kind, sim_.Now(), job != nullptr ? job->spec.id : kNoJob);
  if (job != nullptr) {
    event.vc = job->spec.vc;
    event.user = job->spec.user;
    event.gpus = job->spec.num_gpus;
  }
  return &event;
}

void ClusterSimulation::RecordEvalFailure(DelayCause cause) {
  if (fair_share_evals_ == nullptr) {
    return;
  }
  (cause == DelayCause::kFairShare ? fair_share_evals_ : fragmentation_evals_)
      ->Increment();
}

void ClusterSimulation::SpanNoteEvalFail(JobState& job, DelayCause cause) {
  SpanTracer* spans = config_.obs.spans;
  if (spans == nullptr) {
    return;
  }
  BlameCode code;
  if (cause == DelayCause::kFairShare) {
    code = BlameCode::kFairnessShareCap;
  } else {
    // A fragmentation-delayed job is either truly blocked (no placement even
    // fully relaxed) or holding out for locality at its current relax level.
    // CanPlace is a pure query on the placement index, so probing it here —
    // only when the span sink is attached — cannot perturb the run. The probe
    // is memoized on (cluster allocation version, gpu count): a scheduling
    // pass fails many evals against an unchanged cluster, and same-sized jobs
    // share the answer, so most calls are a hash lookup instead of an index
    // search (keeps the span sink inside the < ~5% observability budget).
    const int64_t version = cluster_.AllocVersion();
    auto [it, missed] = span_probe_cache_.try_emplace(job.spec.num_gpus);
    if (missed || it->second.first != version) {
      it->second = {version,
                    placer_.CanPlace(cluster_, job.spec.num_gpus,
                                     config_.scheduler.max_relax_level)};
    }
    code = it->second.second ? BlameCode::kLocalityWait
                             : BlameCode::kFragmentation;
  }
  spans->OnEvalFail(job.spec.id, sim_.Now(), code);
}

ClusterSimulation::JobState& ClusterSimulation::StateOf(JobId id) {
  assert(id >= 0 && static_cast<size_t>(id) < job_index_.size());
  const size_t index = job_index_[static_cast<size_t>(id)];
  assert(index != SIZE_MAX);
  return jobs_[index];
}

SimulationResult ClusterSimulation::Run() {
  for (const auto& job : jobs_) {
    const JobId id = job.spec.id;
    last_arrival_time_ = std::max(last_arrival_time_, job.spec.submit_time);
    sim_.ScheduleAt(job.spec.submit_time, [this, id] { OnArrival(id); });
  }
  if (!jobs_.empty()) {
    sim_.ScheduleAfter(config_.snapshot_period, [this] { TakeSnapshot(); });
    if (config_.scheduler.enable_migration) {
      sim_.ScheduleAfter(config_.scheduler.migration_period, [this] { MigrationPass(); });
    }
    if (fault_process_.enabled()) {
      for (ServerId s = 0; s < cluster_.NumServers(); ++s) {
        ScheduleNextServerFault(s, 0);
      }
      for (RackId r = 0; r < cluster_.NumRacks(); ++r) {
        ScheduleNextRackFault(r, 0);
      }
      for (const FaultEvent& scripted : fault_process_.config().scripted) {
        sim_.ScheduleAt(scripted.at,
                        [this, scripted] { OnFaultOccurred(scripted, false); });
      }
    }
  }
  if (ClusterTimeSeries* ts = config_.obs.timeseries; ts != nullptr) {
    ts->BeginRun(config_.seed);
    ts->Reserve(static_cast<size_t>(last_arrival_time_ / ts->period()) + 64);
    telemetry_srv_util_.assign(static_cast<size_t>(cluster_.NumServers()), 0.0);
    telemetry_srv_gpus_.assign(static_cast<size_t>(cluster_.NumServers()), 0);
    telemetry_touched_.reserve(static_cast<size_t>(cluster_.NumServers()));
    // Sampling rides the clock-advance hook: it adds zero simulator events,
    // so enabling the sink cannot perturb the run (each sample sees the
    // piecewise-constant pre-event state of its minute).
    sim_.SetTimeAdvanceObserver([this](SimTime target) { TelemetryAdvance(target); });
  }
  sim_.Run();
  if (config_.obs.timeseries != nullptr) {
    TelemetryAdvance(sim_.Now());  // flush grid points up to the final event
    sim_.SetTimeAdvanceObserver(nullptr);
  }

  result_.sim_events_processed = static_cast<int64_t>(sim_.ProcessedCount());
  if (MetricsRegistry* metrics = config_.obs.metrics; metrics != nullptr) {
    metrics->GetCounter("sim.events_processed")
        ->Increment(result_.sim_events_processed);
  }
  result_.jobs.reserve(jobs_.size());
  for (auto& job : jobs_) {
    assert(job.phase == Phase::kDone);
    result_.jobs.push_back(std::move(job.record));
  }
  return std::move(result_);
}

void ClusterSimulation::OnArrival(JobId id) {
  JobState& job = StateOf(id);
  EmitEvent(SchedEventKind::kSubmit, &job);
  if (job.spec.num_gpus > cluster_.NumGpus()) {
    // Cannot ever be satisfied; reject at submission.
    job.phase = Phase::kRunning;  // FinishJob expects a non-queued phase
    FinishJob(job, JobStatus::kUnsuccessful);
    return;
  }
  // §5 pre-run pool: multi-GPU jobs first run briefly on one pool GPU; a
  // failure whose first RTF fits inside the cap is caught there.
  const auto& sched = config_.scheduler;
  if (sched.enable_prerun_pool && !job.prerun_done && job.spec.num_gpus > 1 &&
      prerun_in_use_ < sched.prerun_pool_gpus) {
    job.prerun_done = true;
    ++prerun_in_use_;
    ++result_.prerun_jobs;
    const bool caught = job.plan.fails && job.failure_trials_used == 0 &&
                        job.plan.trial_rtfs[0] <= sched.prerun_cap;
    const SimDuration duration =
        caught ? std::max<SimDuration>(1, job.plan.trial_rtfs[0])
               : std::min<SimDuration>(sched.prerun_cap,
                                       std::max<SimDuration>(1, job.spec.planned_duration));
    result_.prerun_gpu_seconds += static_cast<double>(duration);
    job.phase = Phase::kRunning;  // occupying a pool slot
    job.attempt_start = sim_.Now();
    AttemptRecord attempt;
    attempt.index = static_cast<int>(job.record.attempts.size());
    attempt.start = sim_.Now();
    attempt.end = sim_.Now();
    attempt.prerun = true;
    job.record.attempts.push_back(std::move(attempt));
    WaitRecord wait;
    wait.ready_time = sim_.Now();
    job.record.waits.push_back(wait);
    if (SchedEvent* e = EmitEvent(SchedEventKind::kSchedule, &job); e != nullptr) {
      e->attempt = job.record.attempts.back().index;
      e->ready_time = sim_.Now();
      e->detail = "prerun";
    }
    if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
      // Pool attempts skip the queue entirely: open the running span directly
      // (the zero-length pseudo-wait produces no queued span).
      spans->OnRunStart(id, job.spec.vc, job.spec.user, job.spec.num_gpus,
                        sim_.Now(), job.record.attempts.back().index);
    }
    sim_.ScheduleAfter(duration, [this, id, caught] { OnPrerunEnd(id, caught); });
    return;
  }
  job.phase = Phase::kQueued;
  job.ready_time = sim_.Now();
  job.wait = WaitRecord{};
  job.wait.ready_time = sim_.Now();
  job.eval_failures = 0;
  job.last_eval_time = -1;
  job.last_cause = DelayCause::kNone;
  job.relax_emitted = 0;
  EnqueueSorted(job);
  EmitEvent(SchedEventKind::kQueued, &job);
  if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
    spans->OnEnqueue(job.spec.id, job.spec.vc, job.spec.user,
                     job.spec.num_gpus, sim_.Now(), /*fault_recovery=*/false);
  }
  RequestSchedulingPass(0);
}

void ClusterSimulation::OnPrerunEnd(JobId id, bool caught) {
  JobState& job = StateOf(id);
  --prerun_in_use_;
  AttemptRecord& attempt = job.record.attempts.back();
  attempt.end = sim_.Now();
  job.record.gpu_seconds += attempt.GpuTime();
  if (!caught) {
    Requeue(job);
    RequestSchedulingPass(0);
    return;
  }
  ++result_.prerun_catches;
  ++job.failure_trials_used;
  attempt.failed = true;
  attempt.true_reason = job.plan.reason;
  attempt.log_tail = synthesizer_.LinesFor(job.plan.reason, rng_);
  const FailureReason classified = classifier_.Classify(attempt.log_tail);
  retry_policy_->ObserveFailure(job.spec.user, classified);
  const int failure_index = job.failure_trials_used - 1;
  const bool more_trials = job.failure_trials_used < job.plan.num_failure_trials;
  const bool retry =
      retry_policy_->ShouldRetryFor(job.spec.user, classified, failure_index);
  if (more_trials) {
    if (retry) {
      Requeue(job);
      RequestSchedulingPass(0);
    } else {
      FinishJob(job, JobStatus::kUnsuccessful);
    }
    return;
  }
  switch (job.plan.disposition) {
    case PostFailureDisposition::kUnsuccessful:
      FinishJob(job, JobStatus::kUnsuccessful);
      break;
    case PostFailureDisposition::kKilledByUser:
      FinishJob(job, JobStatus::kKilled);
      break;
    case PostFailureDisposition::kRecoversClean:
      if (retry) {
        Requeue(job);
        RequestSchedulingPass(0);
      } else {
        FinishJob(job, JobStatus::kUnsuccessful);
      }
      break;
  }
}

void ClusterSimulation::RequestSchedulingPass(SimDuration delay) {
  const SimTime t = sim_.Now() + delay;
  if (pass_pending_ && pending_pass_time_ <= t) {
    return;
  }
  if (pass_pending_) {
    sim_.Cancel(pending_pass_event_);
  }
  pass_pending_ = true;
  pending_pass_time_ = t;
  pending_pass_event_ = sim_.ScheduleAt(t, [this] {
    pass_pending_ = false;
    SchedulingPass();
  });
}

int ClusterSimulation::RelaxLevelFor(const JobState& job) const {
  const auto& sched = config_.scheduler;
  const SimDuration waited = sim_.Now() - job.ready_time;
  if (waited < sched.min_wait_before_relax) {
    return 0;
  }
  // Sub-server jobs hold out for a single server twice as long: their strict
  // placement frees up at whole-server churn rate, and spreading them is
  // costlier per GPU than for jobs that must cross servers anyway.
  const SimDuration period = job.spec.num_gpus <= 8
                                 ? 2 * sched.relax_period
                                 : sched.relax_period;
  const auto level = static_cast<int>((waited - sched.min_wait_before_relax) /
                                      std::max<SimDuration>(1, period));
  return std::min(level, sched.max_relax_level);
}

void ClusterSimulation::AttributeWaitTime(JobState& job, DelayCause cause) {
  const SimTime now = sim_.Now();
  if (job.last_eval_time >= 0 && job.last_cause != DelayCause::kNone) {
    const SimDuration dt = now - job.last_eval_time;
    if (job.last_cause == DelayCause::kFairShare) {
      job.wait.fair_share_time += dt;
    } else {
      job.wait.fragmentation_time += dt;
    }
  }
  job.last_eval_time = now;
  job.last_cause = cause;
}

void ClusterSimulation::EnqueueSorted(JobState& job) {
  std::vector<JobId>& q = VcOf(job).queue;
  const double key = QueueKeyFor(job);
  const auto pos = std::upper_bound(
      q.begin(), q.end(), key, [this](double k, JobId other) {
        return k < QueueKeyFor(StateOf(other));
      });
  q.insert(pos, job.spec.id);
}

double ClusterSimulation::QueueKeyFor(const JobState& job) const {
  switch (config_.scheduler.ordering) {
    case QueueOrdering::kFifoArrival:
      return job.queue_key;
    case QueueOrdering::kShortestRemainingFirst:
      return static_cast<double>(job.CleanRemaining());
    case QueueOrdering::kLeastAttainedServiceFirst: {
      // Discretized 2D-LAS: band by attained GPU-time, FIFO within a band.
      const double band_seconds =
          std::max(1.0, config_.scheduler.las_band_gpu_hours * 3600.0);
      const double band = std::floor(job.record.gpu_seconds / band_seconds);
      return band * 1e10 + job.queue_key;
    }
  }
  return job.queue_key;
}

void ClusterSimulation::SchedulingPass() {
  ScopedTimer pass_timer(config_.obs.profiler, "scheduling_pass");
  // Fair share: serve VCs in increasing order of quota usage ratio.
  std::vector<size_t>& vc_order = pass_vc_order_;
  vc_order.resize(vcs_.size());
  for (size_t i = 0; i < vcs_.size(); ++i) {
    vc_order[i] = i;
  }
  std::sort(vc_order.begin(), vc_order.end(), [&](size_t a, size_t b) {
    const double ra = static_cast<double>(vcs_[a].used_gpus) /
                      std::max(1, vcs_[a].config.quota_gpus);
    const double rb = static_cast<double>(vcs_[b].used_gpus) /
                      std::max(1, vcs_[b].config.quota_gpus);
    if (ra != rb) {
      return ra < rb;
    }
    return a < b;
  });

  // Per-pass feasibility cache: if a placement search for demand d failed at
  // relax level L, any demand >= d fails at L too (placements are monotone in
  // demand at a fixed level), until an allocation-freeing action invalidates
  // the pass state. Every freeing action counts — fair-share preemption,
  // priority (checkpoint) suspension, and migration all release GPUs mid-pass
  // and stale entries would wrongly skip jobs those GPUs could now serve.
  std::array<int, kMaxRelaxLevel + 1> failed_demand_at_level;
  failed_demand_at_level.fill(INT32_MAX);
  const auto freeing_actions = [this] {
    return result_.preemptions + result_.priority_preemptions + result_.migrations;
  };
  int64_t freeing_actions_seen = freeing_actions();

  bool any_waiting = false;
  for (size_t vi : vc_order) {
    VcState& vc = vcs_[vi];
    if (vc.queue.empty()) {
      continue;
    }
    // The VC queue is maintained in policy order by EnqueueSorted (keys are
    // constant while a job is queued, ties in insertion order — identical to
    // the stable sort this pass used to run). Snapshot it into reused scratch
    // because starting a job erases it from vc.queue mid-iteration.
    std::vector<JobId>& order = pass_queue_;
    order.assign(vc.queue.begin(), vc.queue.end());

    bool earlier_waiting = false;
    int earlier_min_demand = INT32_MAX;
    std::vector<JobId>& blocked = pass_blocked_;
    blocked.clear();
    int scanned = 0;
    for (const JobId id : order) {
      if (++scanned > kMaxQueueScan) {
        any_waiting = true;
        break;
      }
      JobState& job = StateOf(id);
      const int level = RelaxLevelFor(job);
      if (level > job.relax_emitted) {
        job.relax_emitted = level;
        ++result_.locality_relaxations;
        if (SchedEvent* e = EmitEvent(SchedEventKind::kLocalityRelax, &job);
            e != nullptr) {
          e->relax_level = level;
        }
      }
      if (freeing_actions() != freeing_actions_seen) {
        failed_demand_at_level.fill(INT32_MAX);
        freeing_actions_seen = freeing_actions();
      }
      if (job.spec.num_gpus >= failed_demand_at_level[static_cast<size_t>(level)]) {
        // A smaller-or-equal request already failed at this level this pass.
        const DelayCause cause =
            VcOf(job).used_gpus >= VcOf(job).config.quota_gpus
                ? DelayCause::kFairShare
                : DelayCause::kFragmentation;
        AttributeWaitTime(job, cause);
        RecordEvalFailure(cause);
        SpanNoteEvalFail(job, cause);
        ++job.eval_failures;
        any_waiting = true;
        earlier_waiting = true;
        earlier_min_demand = std::min(earlier_min_demand, job.spec.num_gpus);
        blocked.push_back(id);
        if (!config_.scheduler.allow_out_of_order) {
          break;
        }
        continue;
      }
      if (TryStartJob(job, earlier_waiting, earlier_min_demand)) {
        if (earlier_waiting) {
          for (JobId bid : blocked) {
            StateOf(bid).record.overtaken = true;
          }
        }
        continue;
      }
      any_waiting = true;
      earlier_waiting = true;
      earlier_min_demand = std::min(earlier_min_demand, job.spec.num_gpus);
      // The evaluation itself may have freed GPUs (suspension that still
      // left too little room): drop entries that predate the freeing so the
      // fresh failure below is recorded against the current cluster state.
      if (freeing_actions() != freeing_actions_seen) {
        failed_demand_at_level.fill(INT32_MAX);
        freeing_actions_seen = freeing_actions();
      }
      failed_demand_at_level[static_cast<size_t>(level)] = std::min(
          failed_demand_at_level[static_cast<size_t>(level)], job.spec.num_gpus);
      blocked.push_back(id);
      if (!config_.scheduler.allow_out_of_order) {
        break;  // strict FIFO: the head blocks the queue
      }
    }
  }
  if (any_waiting) {
    ++result_.sched_backoffs;
    if (SchedEvent* e = EmitEvent(SchedEventKind::kBackoff, nullptr); e != nullptr) {
      e->delay = config_.scheduler.sched_backoff;
    }
    RequestSchedulingPass(config_.scheduler.sched_backoff);
  }
}

bool ClusterSimulation::TryStartJob(JobState& job, bool earlier_job_waiting,
                                    int earlier_waiting_demand) {
  const int demand = job.spec.num_gpus;
  VcState& vc = VcOf(job);
  // Fair-share delay per the paper's definition: "the virtual cluster uses up
  // its assigned quota". A VC sitting just under quota that cannot gang-place
  // a large job is a fragmentation delay, not a fair-share one.
  const bool over_quota = vc.used_gpus >= vc.config.quota_gpus;
  const int level = RelaxLevelFor(job);

  auto placement = placer_.FindPlacement(cluster_, demand, level);
  if (!placement.has_value() && !over_quota && config_.scheduler.enable_preemption &&
      cluster_.Occupancy() >= config_.scheduler.preemption_threshold &&
      sim_.Now() - job.ready_time >= config_.scheduler.preemption_min_wait &&
      sim_.Now() - last_preemption_time_ >= config_.scheduler.preemption_cooldown) {
    // The job is within its VC's share but the cluster is saturated by
    // borrowers: reclaim GPUs from over-quota VCs (§2.3).
    if (TryPreemptFor(job)) {
      placement = placer_.FindPlacement(cluster_, demand, level);
    }
  }
  if (!placement.has_value() && config_.scheduler.priority_preemption) {
    if (TryPrioritySuspendFor(job)) {
      placement = placer_.FindPlacement(cluster_, demand, level);
    }
  }
  if (!placement.has_value()) {
    const DelayCause cause =
        over_quota ? DelayCause::kFairShare : DelayCause::kFragmentation;
    AttributeWaitTime(job, cause);
    RecordEvalFailure(cause);
    SpanNoteEvalFail(job, cause);
    ++job.eval_failures;
    return false;
  }

  AttributeWaitTime(job, DelayCause::kNone);

  ++result_.scheduling_decisions;
  if (decisions_metric_ != nullptr) {
    decisions_metric_->Increment();
  }
  bool benign_pending = false;
  bool before_feasible = false;
  if (earlier_job_waiting) {
    ++result_.out_of_order_decisions;
    job.record.started_out_of_order = true;
    benign_pending = true;
    // "Idle GPUs are effectively utilized without prolonging the scheduling
    // time of those waiting jobs" (§3.1.1): the overtaken job is waiting for
    // *locality*; overtaking it is benign as long as its fully-relaxed
    // placement opportunity survives this job's allocation (or never existed).
    before_feasible =
        placer_.CanPlace(cluster_, earlier_waiting_demand, kMaxRelaxLevel);
  }

  StartAttempt(job, *placement);
  if (benign_pending) {
    const bool after_feasible =
        placer_.CanPlace(cluster_, earlier_waiting_demand, kMaxRelaxLevel);
    job.record.out_of_order_benign = !before_feasible || after_feasible;
    if (job.record.out_of_order_benign) {
      ++result_.out_of_order_benign;
    }
  }
  if (SchedEvent* e = EmitEvent(SchedEventKind::kSchedule, &job); e != nullptr) {
    const WaitRecord& wait = job.record.waits.back();
    const AttemptRecord& attempt = job.record.attempts.back();
    e->attempt = attempt.index;
    e->ready_time = wait.ready_time;
    e->wait = wait.wait;
    e->fair_share_time = wait.fair_share_time;
    e->fragmentation_time = wait.fragmentation_time;
    e->sched_attempts = wait.sched_attempts;
    e->out_of_order = benign_pending;
    e->benign = benign_pending && job.record.out_of_order_benign;
    e->placement = EncodePlacement(attempt.placement);
    e->detail = "pass";
  }
  return true;
}

bool ClusterSimulation::TryPreemptFor(const JobState& job) {
  // Victims: most recently started attempts of jobs whose VC is over quota.
  // One preemption action per scheduling evaluation. The running set is
  // sorted by id (== jobs_ index order), so iterating it preserves the
  // original full-scan tie-breaks while skipping queued/done jobs entirely;
  // prerun pool attempts are not in the set (they hold no cluster GPUs).
  JobId victim = kNoJob;
  SimTime victim_start = -1;
  for (const auto& entry : running_jobs_) {
    JobState& candidate = jobs_[entry.second];
    assert(candidate.phase == Phase::kRunning);
    if (candidate.spec.vc == job.spec.vc) {
      continue;
    }
    const VcState& cvc = vcs_[static_cast<size_t>(candidate.spec.vc)];
    if (cvc.used_gpus <= cvc.config.quota_gpus) {
      continue;  // only over-quota VCs lose GPUs to fair share
    }
    if (candidate.attempt_start > victim_start) {
      victim_start = candidate.attempt_start;
      victim = candidate.spec.id;
    }
  }
  if (victim == kNoJob) {
    return false;
  }
  PreemptJob(StateOf(victim));
  return true;
}

bool ClusterSimulation::TryPrioritySuspendFor(const JobState& job) {
  const double waiter_key = QueueKeyFor(job);
  JobState* victim = nullptr;
  double worst_key = waiter_key;
  for (const auto& entry : running_jobs_) {
    JobState& candidate = jobs_[entry.second];
    assert(candidate.phase == Phase::kRunning);
    if (candidate.kind != AttemptKind::kClean || candidate.kill_at_end) {
      continue;
    }
    if (sim_.Now() - candidate.attempt_start <
        config_.scheduler.priority_preemption_min_run) {
      continue;
    }
    const double key = QueueKeyFor(candidate);
    if (key > worst_key) {
      worst_key = key;
      victim = &candidate;
    }
  }
  if (victim == nullptr) {
    return false;
  }
  SuspendAttempt(*victim);
  if (SchedEvent* e = EmitEvent(SchedEventKind::kPreempt, victim); e != nullptr) {
    e->attempt = victim->record.attempts.back().index;
    e->detail = "priority";
  }
  Requeue(*victim);
  ++result_.priority_preemptions;
  return true;
}

void ClusterSimulation::StartAttempt(JobState& job, const Placement& placement) {
  const SimTime now = sim_.Now();
  // Close the waiting period.
  job.wait.wait = now - job.ready_time;
  job.wait.sched_attempts = job.eval_failures;
  job.record.waits.push_back(job.wait);
  if (queue_delay_hist_ != nullptr) {
    // First-start delay only: this is the Fig. 3 statistic (InitialQueueDelay).
    if (job.record.waits.size() == 1) {
      queue_delay_hist_->Observe(ToMinutes(job.wait.wait));
    }
    if (job.wait.fair_share_time > 0) {
      fair_share_wait_hist_->Observe(ToMinutes(job.wait.fair_share_time));
    }
    if (job.wait.fragmentation_time > 0) {
      fragmentation_wait_hist_->Observe(ToMinutes(job.wait.fragmentation_time));
    }
  }

  // Remove from the VC queue.
  VcState& vc = VcOf(job);
  vc.queue.erase(std::remove(vc.queue.begin(), vc.queue.end(), job.spec.id),
                 vc.queue.end());
  vc.used_gpus += job.spec.num_gpus;

  const bool ok = cluster_.Allocate(job.spec.id, placement);
  assert(ok);
  (void)ok;
  job.phase = Phase::kRunning;
  job.attempt_start = now;
  RunningSetInsert(job);

  // Decide what this attempt is.
  SimDuration duration = 0;
  job.kill_at_end = false;
  if (job.plan.fails && job.failure_trials_used < job.plan.num_failure_trials) {
    job.kind = AttemptKind::kFailing;
    duration = std::max<SimDuration>(
        1, job.plan.trial_rtfs[static_cast<size_t>(job.failure_trials_used)] -
               job.failing_resume);
  } else {
    job.kind = AttemptKind::kClean;
    SimDuration remaining = std::max<SimDuration>(1, job.CleanRemaining());
    if (job.spec.intrinsic == IntrinsicOutcome::kKilledByUser) {
      const auto kill_total = static_cast<SimDuration>(
          job.spec.kill_fraction * static_cast<double>(job.spec.planned_duration));
      const SimDuration kill_remaining = kill_total - job.clean_executed;
      if (kill_remaining <= remaining) {
        remaining = std::max<SimDuration>(1, kill_remaining);
        job.kill_at_end = true;
      }
    }
    duration = remaining;
  }

  AttemptRecord attempt;
  attempt.index = static_cast<int>(job.record.attempts.size());
  attempt.start = now;
  attempt.end = now;  // finalized in OnAttemptEnd/PreemptJob
  attempt.placement = placement;
  job.record.attempts.push_back(std::move(attempt));

  if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
    spans->OnStart(job.spec.id, job.spec.vc, job.spec.user, job.spec.num_gpus,
                   now, static_cast<int>(job.record.waits.size()) - 1,
                   job.record.attempts.back().index);
  }

  const JobId id = job.spec.id;
  job.end_event = sim_.ScheduleAfter(duration, [this, id] { OnAttemptEnd(id); });
  if (config_.scheduler.time_slicing &&
      duration > config_.scheduler.time_slice_quantum) {
    job.quantum_event = sim_.ScheduleAfter(config_.scheduler.time_slice_quantum,
                                           [this, id] { OnQuantumExpired(id); });
  } else {
    job.quantum_event = EventId{};
  }
  CkptSetupAttempt(job, duration);

  OpenSegment(job);
  RefreshCotenantSegments(placement, id);
}

SimDuration ClusterSimulation::ResolveCheckpointPeriod(const JobState& job) const {
  const auto& io = config_.ckpt_io;
  switch (config_.scheduler.checkpoint_policy) {
    case CheckpointPolicy::kFixedPeriod:
    case CheckpointPolicy::kCooperativeStagger:
      return config_.scheduler.checkpoint_period;
    case CheckpointPolicy::kDalyOptimal: {
      // Gang MTBF from the configured fault rates scaled to the placement's
      // footprint: each spanned server contributes the crash and ECC rates,
      // each spanned rack the switch-outage rate.
      const auto& fault = config_.fault;
      const Placement& placement = job.record.attempts.back().placement;
      double rate_per_hour = 0.0;
      if (fault.server_crash_mtbf_hours > 0.0) {
        rate_per_hour += placement.NumServers() / fault.server_crash_mtbf_hours;
      }
      if (fault.gpu_ecc_mtbf_hours > 0.0) {
        rate_per_hour += placement.NumServers() / fault.gpu_ecc_mtbf_hours;
      }
      if (fault.rack_outage_mtbf_hours > 0.0) {
        std::vector<RackId> racks;
        for (const auto& shard : placement.shards) {
          const RackId r = cluster_.ServerRack(shard.server);
          if (std::find(racks.begin(), racks.end(), r) == racks.end()) {
            racks.push_back(r);
          }
        }
        rate_per_hour += racks.size() / fault.rack_outage_mtbf_hours;
      }
      if (rate_per_hour <= 0.0) {
        return 0;  // no faults expected: checkpointing is pure overhead
      }
      const double write_cost =
          io.size_gb_per_gpu * placement.NumGpus() / io.rack_bandwidth_gbps;
      return DalyOptimalPeriod(write_cost, 3600.0 / rate_per_hour,
                               io.min_period, io.max_period);
    }
  }
  return 0;
}

void ClusterSimulation::CkptSetupAttempt(JobState& job, SimDuration duration) {
  job.ckpt_period = 0;
  job.ckpt_time_attempt = 0;
  job.ckpt_writing = false;
  job.ckpt_waiting = false;
  job.ckpt_trigger_event = EventId{};
  if (ckpt_model_ == nullptr || job.kind != AttemptKind::kClean) {
    return;
  }
  const SimDuration period = ResolveCheckpointPeriod(job);
  if (period <= 0) {
    return;
  }
  const Placement& placement = job.record.attempts.back().placement;
  job.ckpt_period = period;
  job.ckpt_progress_needed = duration;
  // Multi-rack gangs write through the rack of their first shard (one
  // storage target per gang; see docs/failure-model.md).
  job.ckpt_rack = cluster_.ServerRack(placement.shards.front().server);
  const double size_gb = config_.ckpt_io.size_gb_per_gpu * placement.NumGpus();
  job.ckpt_nominal = std::max<SimDuration>(
      1, static_cast<SimDuration>(
             std::ceil(size_gb / config_.ckpt_io.rack_bandwidth_gbps)));
  job.ckpt_durable = job.clean_executed;
  SimDuration phase = 0;
  if (config_.scheduler.checkpoint_policy ==
      CheckpointPolicy::kCooperativeStagger) {
    const int slots = std::max(1, config_.ckpt_io.stagger_slots);
    int& slot = ckpt_stagger_slot_[static_cast<size_t>(job.ckpt_rack)];
    phase = static_cast<SimDuration>(slot) * (period / slots);
    slot = (slot + 1) % slots;
  }
  CkptScheduleTrigger(job, sim_.Now() + period + phase);
}

void ClusterSimulation::CkptScheduleTrigger(JobState& job, SimTime at) {
  const JobId id = job.spec.id;
  job.ckpt_trigger_event = sim_.ScheduleAt(at, [this, id] { OnCkptTrigger(id); });
}

void ClusterSimulation::OnCkptTrigger(JobId id) {
  JobState& job = StateOf(id);
  job.ckpt_trigger_event = EventId{};
  if (job.phase != Phase::kRunning || job.ckpt_period <= 0) {
    return;  // stale trigger (attempt already ended this instant)
  }
  const SimDuration progress =
      (sim_.Now() - job.attempt_start) - job.ckpt_time_attempt;
  if (progress >= job.ckpt_progress_needed) {
    return;  // the attempt completes at this same instant; nothing to write
  }
  CkptAdmitOrQueue(job);
}

void ClusterSimulation::CkptAdmitOrQueue(JobState& job) {
  if (config_.scheduler.checkpoint_policy ==
          CheckpointPolicy::kCooperativeStagger &&
      ckpt_model_->Writers(job.ckpt_rack) >=
          config_.ckpt_io.max_writers_per_rack) {
    job.ckpt_waiting = true;
    ckpt_wait_queue_[static_cast<size_t>(job.ckpt_rack)].push_back(job.spec.id);
    return;  // training continues; admitted when a slot frees
  }
  CkptBeginWrite(job);
}

void ClusterSimulation::CkptBeginWrite(JobState& job) {
  const SimTime now = sim_.Now();
  job.ckpt_waiting = false;
  job.ckpt_writing = true;
  job.ckpt_write_start = now;
  job.ckpt_progress_at_write =
      (now - job.attempt_start) - job.ckpt_time_attempt;
  // Progress stalls while the write drains: park the end event until the
  // write completes (CkptCompleteWrite reschedules it for the remainder).
  sim_.Cancel(job.end_event);
  job.end_event = EventId{};
  ++result_.ckpt_writes_started;
  const Placement& placement = job.record.attempts.back().placement;
  ckpt_model_->BeginWrite(job.ckpt_rack, job.spec.id,
                          config_.ckpt_io.size_gb_per_gpu * placement.NumGpus(),
                          now);
  CkptRescheduleRack(job.ckpt_rack);
  if (SchedEvent* e = EmitEvent(SchedEventKind::kCkptBegin, &job); e != nullptr) {
    e->attempt = job.record.attempts.back().index;
    e->rack = job.ckpt_rack;
    e->delay = job.ckpt_nominal;
    e->detail = std::string(ToString(config_.scheduler.checkpoint_policy));
  }
}

void ClusterSimulation::CkptCompleteWrite(JobState& job) {
  const SimTime now = sim_.Now();
  const SimDuration elapsed = now - job.ckpt_write_start;
  const SimDuration overhead = std::min(elapsed, job.ckpt_nominal);
  const SimDuration stall = elapsed - overhead;
  const int gpus = job.record.attempts.back().placement.NumGpus();
  job.ckpt_writing = false;
  job.ckpt_time_attempt += elapsed;
  job.ckpt_durable = job.clean_executed + job.ckpt_progress_at_write;
  ++result_.ckpt_writes_completed;
  result_.ckpt_overhead_gpu_seconds += static_cast<double>(overhead) * gpus;
  result_.ckpt_stall_gpu_seconds += static_cast<double>(stall) * gpus;
  // Resume training for the remaining progress (strictly positive: a write
  // never begins once the attempt's progress target is reached).
  const JobId id = job.spec.id;
  job.end_event =
      sim_.ScheduleAfter(job.ckpt_progress_needed - job.ckpt_progress_at_write,
                         [this, id] { OnAttemptEnd(id); });
  CkptScheduleTrigger(job, now + job.ckpt_period);
  if (SchedEvent* e = EmitEvent(SchedEventKind::kCkptEnd, &job); e != nullptr) {
    e->attempt = job.record.attempts.back().index;
    e->rack = job.ckpt_rack;
    e->delay = elapsed;
  }
  if (stall > 0) {
    if (SchedEvent* e = EmitEvent(SchedEventKind::kCkptStall, &job);
        e != nullptr) {
      e->attempt = job.record.attempts.back().index;
      e->rack = job.ckpt_rack;
      e->delay = stall;
      e->lost_gpu_seconds = static_cast<double>(stall) * gpus;
    }
    if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
      spans->OnCkptStall(job.spec.id, now, stall, "write");
    }
  }
}

void ClusterSimulation::OnCkptRackEvent(RackId rack) {
  ckpt_rack_event_[static_cast<size_t>(rack)] = EventId{};
  for (JobId id : ckpt_model_->CollectCompleted(rack, sim_.Now())) {
    CkptCompleteWrite(StateOf(id));
  }
  CkptAdmitWaiters(rack);
  CkptRescheduleRack(rack);
}

void ClusterSimulation::CkptAdmitWaiters(RackId rack) {
  auto& queue = ckpt_wait_queue_[static_cast<size_t>(rack)];
  while (!queue.empty() && ckpt_model_->Writers(rack) <
                               config_.ckpt_io.max_writers_per_rack) {
    JobState& job = StateOf(queue.front());
    queue.erase(queue.begin());
    job.ckpt_waiting = false;
    // A deferred gang kept training; if it reached its progress target while
    // waiting, its end event fires this instant — drop the stale request.
    const SimDuration progress =
        (sim_.Now() - job.attempt_start) - job.ckpt_time_attempt;
    if (progress >= job.ckpt_progress_needed) {
      continue;
    }
    CkptBeginWrite(job);
  }
}

void ClusterSimulation::CkptRescheduleRack(RackId rack) {
  EventId& event = ckpt_rack_event_[static_cast<size_t>(rack)];
  if (event.value != 0) {
    sim_.Cancel(event);
    event = EventId{};
  }
  const auto next = ckpt_model_->NextCompletion(rack, sim_.Now());
  if (next.has_value()) {
    event = sim_.ScheduleAt(*next, [this, rack] { OnCkptRackEvent(rack); });
  }
}

void ClusterSimulation::CkptOnAttemptStopped(JobState& job) {
  if (job.ckpt_period <= 0) {
    return;
  }
  if (job.ckpt_trigger_event.value != 0) {
    sim_.Cancel(job.ckpt_trigger_event);
    job.ckpt_trigger_event = EventId{};
  }
  if (job.ckpt_waiting) {
    auto& queue = ckpt_wait_queue_[static_cast<size_t>(job.ckpt_rack)];
    queue.erase(std::remove(queue.begin(), queue.end(), job.spec.id),
                queue.end());
    job.ckpt_waiting = false;
  }
  if (job.ckpt_writing) {
    // Abort mid-write: the partial elapsed time is still paid for (split
    // into overhead and stall like a completed write), but nothing becomes
    // durable. The freed bandwidth immediately speeds up the rack's other
    // writers, and a deferred writer may take the slot.
    const SimTime now = sim_.Now();
    const SimDuration elapsed = now - job.ckpt_write_start;
    const SimDuration overhead = std::min(elapsed, job.ckpt_nominal);
    const SimDuration stall = elapsed - overhead;
    const int gpus = job.record.attempts.back().placement.NumGpus();
    job.ckpt_time_attempt += elapsed;
    job.ckpt_writing = false;
    ++result_.ckpt_writes_interrupted;
    result_.ckpt_overhead_gpu_seconds += static_cast<double>(overhead) * gpus;
    result_.ckpt_stall_gpu_seconds += static_cast<double>(stall) * gpus;
    ckpt_model_->AbortWrite(job.ckpt_rack, job.spec.id, now);
    if (SchedEvent* e = EmitEvent(SchedEventKind::kCkptEnd, &job); e != nullptr) {
      e->attempt = job.record.attempts.back().index;
      e->rack = job.ckpt_rack;
      e->delay = elapsed;
      e->detail = "interrupted";
    }
    if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
      spans->OnCkptStall(job.spec.id, now, stall, "interrupted");
    }
    CkptAdmitWaiters(job.ckpt_rack);
    CkptRescheduleRack(job.ckpt_rack);
  }
}

double ClusterSimulation::ComputeExpectedUtil(const JobState& job,
                                              const Placement& placement) const {
  // Table 3 reports a consistent by-status ordering: unsuccessful jobs show
  // the *highest* utilization (crash-bound jobs — OOMs, invalid accesses —
  // hammer their GPUs until they die), while killed jobs show the lowest
  // (users terminate jobs whose throughput is lagging). Model both as
  // modest multipliers on the job's expected utilization.
  double status_factor = 1.0;
  if (job.kind == AttemptKind::kFailing) {
    status_factor = 1.12;
  } else if (job.kill_at_end) {
    status_factor = 0.85;
  }
  const auto activity_of = [this](JobId id) {
    const size_t index = job_index_[static_cast<size_t>(id)];
    assert(index != SIZE_MAX);
    const JobState& other = jobs_[index];
    JobActivity activity;
    activity.base_utilization = other.spec.base_utilization;
    activity.comm_intensity = other.comm_intensity;
    activity.num_gpus = other.spec.num_gpus;
    activity.num_servers =
        other.record.attempts.empty()
            ? 1
            : other.record.attempts.back().placement.NumServers();
    return activity;
  };
  return std::min(
      1.0, status_factor * util_model_.ExpectedUtilization(job.spec, placement,
                                                           cluster_, activity_of));
}

void ClusterSimulation::OpenSegment(JobState& job) {
  job.segment_start = sim_.Now();
  job.segment_util = ComputeExpectedUtil(job, job.record.attempts.back().placement);
}

void ClusterSimulation::CloseSegment(JobState& job) {
  const SimDuration duration = sim_.Now() - job.segment_start;
  if (duration > 0) {
    job.record.util_segments.push_back(
        {job.segment_util, duration, job.record.attempts.back().placement.NumServers()});
  }
  job.segment_start = sim_.Now();
}

void ClusterSimulation::RefreshCotenantSegments(const Placement& placement,
                                                JobId except) {
  // Co-tenant sets are tiny (a handful of jobs across <= a few servers), so a
  // reused flat vector with linear dedup beats a hash set; per-job updates
  // are independent, so visit order does not affect any output stream.
  std::vector<JobId>& touched = pass_touched_;
  touched.clear();
  for (const auto& shard : placement.shards) {
    for (const auto& tenant : cluster_.TenantsOnServer(shard.server)) {
      if (tenant.job != except &&
          std::find(touched.begin(), touched.end(), tenant.job) == touched.end()) {
        touched.push_back(tenant.job);
      }
    }
  }
  for (JobId id : touched) {
    JobState& job = StateOf(id);
    if (job.phase != Phase::kRunning) {
      continue;
    }
    const double updated =
        ComputeExpectedUtil(job, job.record.attempts.back().placement);
    if (std::abs(updated - job.segment_util) > kSegmentUtilEpsilon) {
      CloseSegment(job);
      job.segment_util = updated;
    }
  }
}

void ClusterSimulation::RunningSetInsert(const JobState& job) {
  const std::pair<JobId, size_t> entry{
      job.spec.id, static_cast<size_t>(&job - jobs_.data())};
  const auto it = std::lower_bound(running_jobs_.begin(),
                                   running_jobs_.end(), entry);
  running_jobs_.insert(it, entry);
}

void ClusterSimulation::RunningSetErase(const JobState& job) {
  const auto it = std::lower_bound(
      running_jobs_.begin(), running_jobs_.end(), job.spec.id,
      [](const auto& entry, JobId id) { return entry.first < id; });
  assert(it != running_jobs_.end() && it->first == job.spec.id);
  running_jobs_.erase(it);
}

void ClusterSimulation::TelemetryAdvance(SimTime target) {
  ClusterTimeSeries* ts = config_.obs.timeseries;
  if (ts == nullptr) {
    return;
  }
  while (ts->NextSampleTime() <= target) {
    FillTelemetrySample(ts->AppendSample(ts->NextSampleTime()));
  }
}

void ClusterSimulation::FillTelemetrySample(TelemetrySample& s) {
  ClusterTimeSeries* ts = config_.obs.timeseries;

  // Cluster occupancy and fragmentation, straight off the placement index.
  s.used_gpus = cluster_.NumUsedGpus();
  s.free_gpus = cluster_.NumFreeGpus();
  s.occupancy = cluster_.Occupancy();
  s.racks_with_empty = cluster_.RacksWithEmptyServers();
  s.offline_servers = cluster_.NumOfflineServers();
  s.rack_free_gpus.reserve(static_cast<size_t>(cluster_.NumRacks()));
  for (RackId r = 0; r < cluster_.NumRacks(); ++r) {
    s.rack_free_gpus.push_back(cluster_.RackFreeGpus(r));
  }

  // Per-VC scheduler state.
  s.vc_queued.reserve(vcs_.size());
  s.vc_running.reserve(vcs_.size());
  s.vc_used_gpus.reserve(vcs_.size());
  for (const VcState& vc : vcs_) {
    s.vc_queued.push_back(static_cast<int>(vc.queue.size()));
    s.vc_running.push_back(0);  // filled from the running set below
    s.vc_used_gpus.push_back(vc.used_gpus);
    s.queued_jobs += static_cast<int>(vc.queue.size());
  }

  // Utilization join: one AR(1) step per running job per sampled minute,
  // iterated in job-id order so the stream is deterministic. Each job's
  // observed utilization is scattered onto its placement's servers through
  // the per-server scratch, so the whole sample costs O(running jobs + busy
  // servers) rather than a full-cluster scan (prerun attempts hold pool
  // slots, not cluster GPUs, so the running set covers every allocation).
  double exp_weighted = 0.0;
  double obs_weighted = 0.0;
  int64_t weight = 0;
  for (const auto& [id, index] : running_jobs_) {
    const JobState& job = jobs_[index];
    const double obs_pct = ts->ObserveUtilPct(
        id, job.record.attempts.back().index, job.segment_util);
    const int gpus = job.spec.num_gpus;
    exp_weighted += job.segment_util * 100.0 * gpus;
    obs_weighted += obs_pct * gpus;
    weight += gpus;
    ++s.vc_running[static_cast<size_t>(job.spec.vc)];
    for (const auto& shard : job.record.attempts.back().placement.shards) {
      const auto sv = static_cast<size_t>(shard.server);
      if (telemetry_srv_gpus_[sv] == 0) {
        telemetry_touched_.push_back(shard.server);
      }
      telemetry_srv_util_[sv] += obs_pct * shard.gpus;
      telemetry_srv_gpus_[sv] += shard.gpus;
    }
  }
  s.running_jobs = static_cast<int>(running_jobs_.size());
  if (weight > 0) {
    s.util_expected_pct = exp_weighted / static_cast<double>(weight);
    s.util_observed_pct = obs_weighted / static_cast<double>(weight);
  }

  // Per-server observed utilization, bucketed by decile over busy servers;
  // empty = neither busy nor offline, computed without the full server scan.
  int busy_offline = 0;
  for (const ServerId server : telemetry_touched_) {
    const auto sv = static_cast<size_t>(server);
    const double mean_pct =
        telemetry_srv_util_[sv] / static_cast<double>(telemetry_srv_gpus_[sv]);
    const int decile = std::clamp(static_cast<int>(mean_pct / 10.0), 0, 9);
    ++s.util_deciles[static_cast<size_t>(decile)];
    if (cluster_.ServerOffline(server)) {
      ++busy_offline;
    }
    telemetry_srv_util_[sv] = 0.0;
    telemetry_srv_gpus_[sv] = 0;
  }
  s.busy_servers = static_cast<int>(telemetry_touched_.size());
  s.empty_servers = cluster_.NumServers() - s.busy_servers -
                    (s.offline_servers - busy_offline);
  telemetry_touched_.clear();

  // Cumulative scheduler/fault counters.
  s.locality_relaxations = result_.locality_relaxations;
  s.backoffs = result_.sched_backoffs;
  s.preemptions = result_.preemptions;
  s.migrations = result_.migrations;
  s.fault_kills = result_.machine_fault_kills;
  s.lost_gpu_seconds = result_.machine_fault_lost_gpu_seconds;

  // Checkpoint I/O occupancy: per-rack in-flight writers plus the cumulative
  // cost counters. Left at defaults (and omitted from the encoding) when the
  // model is disabled so streams stay byte-identical to pre-checkpoint builds.
  if (ckpt_model_ != nullptr) {
    const int racks = cluster_.NumRacks();
    s.ckpt_rack_writers.resize(racks);
    for (int r = 0; r < racks; ++r) {
      s.ckpt_rack_writers[r] = ckpt_model_->Writers(r);
    }
    s.ckpt_writes = result_.ckpt_writes_completed;
    s.ckpt_overhead_gpu_seconds = result_.ckpt_overhead_gpu_seconds;
    s.ckpt_stall_gpu_seconds = result_.ckpt_stall_gpu_seconds;
  }

  // Per-VC x per-blame-code attributed seconds, cumulative (left empty — and
  // omitted from the encoding — unless the span tracer is attached).
  if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
    spans->FillVcBlame(s.vc_blame_s);
  }
}

void ClusterSimulation::OnAttemptEnd(JobId id) {
  JobState& job = StateOf(id);
  assert(job.phase == Phase::kRunning);
  const SimTime now = sim_.Now();
  if (job.quantum_event.value != 0) {
    sim_.Cancel(job.quantum_event);
    job.quantum_event = EventId{};
  }

  CloseSegment(job);
  AttemptRecord& attempt = job.record.attempts.back();
  attempt.end = now;
  job.record.gpu_seconds += attempt.GpuTime();
  CkptOnAttemptStopped(job);  // not writing here (the end event was parked
                              // during writes); cancels the pending trigger
  result_.allocated_gpu_seconds += attempt.GpuTime();
  result_.useful_gpu_seconds +=
      attempt.GpuTime() - static_cast<double>(job.ckpt_time_attempt) *
                              attempt.placement.NumGpus();

  cluster_.Release(id);
  RunningSetErase(job);
  VcOf(job).used_gpus -= job.spec.num_gpus;
  RefreshCotenantSegments(attempt.placement, id);

  if (job.kind == AttemptKind::kClean) {
    job.clean_executed += AttemptExecuted(job, attempt);
    const SimDuration epoch = std::max<SimDuration>(1, job.spec.EpochDuration());
    SetExecutedEpochs(job, static_cast<int>(std::min<int64_t>(
                               job.spec.planned_epochs, job.clean_executed / epoch)));
    if (job.kill_at_end) {
      FinishJob(job, JobStatus::kKilled);
    } else if (job.CleanRemaining() <= 0) {
      FinishJob(job, JobStatus::kPassed);
    } else {
      Requeue(job);  // suspended mid-run (time slicing)
    }
  } else {
    ++job.failure_trials_used;
    job.failing_resume = 0;  // the trial fired; nothing carries forward
    attempt.failed = true;
    attempt.true_reason = job.plan.reason;
    attempt.log_tail = synthesizer_.LinesFor(job.plan.reason, rng_);
    const FailureReason classified = classifier_.Classify(attempt.log_tail);
    const int failure_index = job.failure_trials_used - 1;
    retry_policy_->ObserveFailure(job.spec.user, classified);

    if (job.failure_trials_used < job.plan.num_failure_trials) {
      if (retry_policy_->ShouldRetryFor(job.spec.user, classified, failure_index)) {
        Requeue(job);
      } else {
        FinishJob(job, JobStatus::kUnsuccessful);
      }
    } else {
      switch (job.plan.disposition) {
        case PostFailureDisposition::kUnsuccessful:
          FinishJob(job, JobStatus::kUnsuccessful);
          break;
        case PostFailureDisposition::kKilledByUser:
          FinishJob(job, JobStatus::kKilled);
          break;
        case PostFailureDisposition::kRecoversClean:
          if (retry_policy_->ShouldRetryFor(job.spec.user, classified,
                                            failure_index)) {
            Requeue(job);
          } else {
            FinishJob(job, JobStatus::kUnsuccessful);
          }
          break;
      }
    }
  }
  RequestSchedulingPass(0);
}

void ClusterSimulation::OnQuantumExpired(JobId id) {
  JobState& job = StateOf(id);
  if (job.phase != Phase::kRunning) {
    return;
  }
  job.quantum_event = EventId{};
  // Only clean attempts are context-switched; failing attempts run to their
  // failure (their RTF schedule must not be disturbed).
  if (job.kind != AttemptKind::kClean) {
    return;
  }
  // Switch out only if a same-VC job is waiting and could use the space.
  const VcState& vc = VcOf(job);
  bool waiter = false;
  for (JobId qid : vc.queue) {
    if (StateOf(qid).spec.num_gpus <=
        job.spec.num_gpus + cluster_.NumFreeGpus()) {
      waiter = true;
      break;
    }
  }
  if (!waiter) {
    const JobId jid = job.spec.id;
    job.quantum_event = sim_.ScheduleAfter(config_.scheduler.time_slice_quantum,
                                           [this, jid] { OnQuantumExpired(jid); });
    return;
  }

  // Suspend: Gandiva-style context switch preserves full progress.
  SuspendAttempt(job);
  if (SchedEvent* e = EmitEvent(SchedEventKind::kPreempt, &job); e != nullptr) {
    e->attempt = job.record.attempts.back().index;
    e->detail = "timeslice";
  }
  job.queue_key = static_cast<double>(sim_.Now());  // go behind the round-robin
  Requeue(job);
  RequestSchedulingPass(0);
}

void ClusterSimulation::SuspendAttempt(JobState& job) {
  assert(job.phase == Phase::kRunning);
  assert(job.kind == AttemptKind::kClean);
  sim_.Cancel(job.end_event);
  if (job.quantum_event.value != 0) {
    sim_.Cancel(job.quantum_event);
    job.quantum_event = EventId{};
  }
  CloseSegment(job);
  AttemptRecord& attempt = job.record.attempts.back();
  attempt.end = sim_.Now();
  job.record.gpu_seconds += attempt.GpuTime();
  CkptOnAttemptStopped(job);  // may abort an in-flight write mid-suspension
  result_.allocated_gpu_seconds += attempt.GpuTime();
  result_.useful_gpu_seconds +=
      attempt.GpuTime() - static_cast<double>(job.ckpt_time_attempt) *
                              attempt.placement.NumGpus();
  job.clean_executed += AttemptExecuted(job, attempt);
  // Keep the recorded epoch count current while the job sits requeued:
  // time-sliced and migrated jobs otherwise undercount epochs until their
  // next clean attempt completes (OnAttemptEnd and PreemptJob both do this).
  const SimDuration epoch = std::max<SimDuration>(1, job.spec.EpochDuration());
  SetExecutedEpochs(job, static_cast<int>(std::min<int64_t>(
                             job.spec.planned_epochs, job.clean_executed / epoch)));
  cluster_.Release(job.spec.id);
  RunningSetErase(job);
  VcOf(job).used_gpus -= job.spec.num_gpus;
  RefreshCotenantSegments(attempt.placement, job.spec.id);
}

void ClusterSimulation::MigrationPass() {
  ScopedTimer pass_timer(config_.obs.profiler, "migration_pass");
  // Defragmentation (§5): evacuate the most lightly used servers whose
  // tenants are all small single-server clean jobs, so whole servers open up
  // for gangs that need locality. The evacuated jobs requeue with progress
  // intact and re-pack best-fit elsewhere.
  struct Candidate {
    ServerId server = -1;
    int used = 0;
  };
  std::vector<Candidate> candidates;
  for (ServerId s = 0; s < cluster_.NumServers(); ++s) {
    const int used = cluster_.ServerUsed(s);
    if (used == 0 || used > cluster_.ServerCapacity(s) / 2) {
      continue;
    }
    bool evacuable = true;
    for (const auto& tenant : cluster_.TenantsOnServer(s)) {
      const JobState& job = StateOf(tenant.job);
      if (job.kind != AttemptKind::kClean ||
          job.record.attempts.back().placement.NumServers() > 1) {
        evacuable = false;
        break;
      }
    }
    if (evacuable) {
      candidates.push_back({s, used});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.used != b.used) {
                return a.used < b.used;
              }
              return a.server < b.server;
            });

  int migrated = 0;
  for (const Candidate& candidate : candidates) {
    if (migrated >= config_.scheduler.max_migrations_per_pass) {
      break;
    }
    // Evacuate the server (ideally fully, so packing re-placement cannot
    // choose it — an empty server is the packer's last resort), then re-place
    // each evacuee best-fit; anything unplaceable right now stays queued.
    // `max_migrations_per_pass` is a per-job cap, enforced per evacuee: a
    // server with more tenants than the remaining budget is evacuated only
    // partially, never overshooting the cap.
    const auto tenants = cluster_.TenantsOnServer(candidate.server);
    std::vector<JobId> evacuated;
    for (const auto& tenant : tenants) {
      if (migrated >= config_.scheduler.max_migrations_per_pass) {
        break;
      }
      JobState& job = StateOf(tenant.job);
      if (job.phase != Phase::kRunning) {
        continue;
      }
      SuspendAttempt(job);
      if (SchedEvent* e = EmitEvent(SchedEventKind::kMigrate, &job); e != nullptr) {
        e->attempt = job.record.attempts.back().index;
      }
      Requeue(job);
      evacuated.push_back(tenant.job);
      ++migrated;
      ++result_.migrations;
      if (migrations_metric_ != nullptr) {
        migrations_metric_->Increment();
      }
    }
    for (JobId id : evacuated) {
      JobState& job = StateOf(id);
      const auto placement =
          defrag_placer_.FindPlacement(cluster_, job.spec.num_gpus, 0);
      if (placement.has_value() &&
          !(placement->NumServers() == 1 &&
            placement->shards[0].server == candidate.server)) {
        StartAttempt(job, *placement);
        if (SchedEvent* e = EmitEvent(SchedEventKind::kSchedule, &job);
            e != nullptr) {
          const WaitRecord& wait = job.record.waits.back();
          const AttemptRecord& attempt = job.record.attempts.back();
          e->attempt = attempt.index;
          e->ready_time = wait.ready_time;
          e->wait = wait.wait;
          e->fair_share_time = wait.fair_share_time;
          e->fragmentation_time = wait.fragmentation_time;
          e->sched_attempts = wait.sched_attempts;
          e->placement = EncodePlacement(attempt.placement);
          e->detail = "migrate";
        }
      }
    }
  }
  if (migrated > 0) {
    RequestSchedulingPass(0);
  }
  if (jobs_done_ < static_cast<int>(jobs_.size())) {
    sim_.ScheduleAfter(config_.scheduler.migration_period, [this] { MigrationPass(); });
  }
}

void ClusterSimulation::PreemptJob(JobState& victim) {
  assert(victim.phase == Phase::kRunning);
  const SimTime now = sim_.Now();
  sim_.Cancel(victim.end_event);
  if (victim.quantum_event.value != 0) {
    sim_.Cancel(victim.quantum_event);
    victim.quantum_event = EventId{};
  }
  CloseSegment(victim);
  AttemptRecord& attempt = victim.record.attempts.back();
  attempt.end = now;
  attempt.failed = true;
  attempt.preempted = true;
  attempt.true_reason = FailureReason::kJobPreempted;
  attempt.log_tail = synthesizer_.LinesFor(FailureReason::kJobPreempted, rng_);
  victim.record.gpu_seconds += attempt.GpuTime();
  CkptOnAttemptStopped(victim);  // may abort an in-flight write
  result_.allocated_gpu_seconds += attempt.GpuTime();
  result_.useful_gpu_seconds +=
      attempt.GpuTime() - static_cast<double>(victim.ckpt_time_attempt) *
                              attempt.placement.NumGpus();

  if (victim.kind == AttemptKind::kClean) {
    // Model-checkpoint preemption: progress persists at epoch granularity.
    const SimDuration epoch = std::max<SimDuration>(1, victim.spec.EpochDuration());
    const SimDuration executed = AttemptExecuted(victim, attempt);
    victim.clean_executed += (executed / epoch) * epoch;
    SetExecutedEpochs(victim,
                      static_cast<int>(std::min<int64_t>(
                          victim.spec.planned_epochs, victim.clean_executed / epoch)));
  }
  // A preempted failing attempt is restarted later: the trial is not consumed.

  cluster_.Release(victim.spec.id);
  RunningSetErase(victim);
  VcOf(victim).used_gpus -= victim.spec.num_gpus;
  RefreshCotenantSegments(attempt.placement, victim.spec.id);
  ++result_.preemptions;
  if (preemptions_metric_ != nullptr) {
    preemptions_metric_->Increment();
  }
  last_preemption_time_ = now;
  if (SchedEvent* e = EmitEvent(SchedEventKind::kPreempt, &victim); e != nullptr) {
    e->attempt = attempt.index;
    e->failed = attempt.failed;
    e->preempted = attempt.preempted;
    e->detail = "fairshare";
  }
  Requeue(victim);
}

void ClusterSimulation::Requeue(JobState& job) {
  job.phase = Phase::kQueued;
  job.ready_time = sim_.Now();
  job.wait = WaitRecord{};
  job.wait.ready_time = sim_.Now();
  job.eval_failures = 0;
  job.last_eval_time = -1;
  job.last_cause = DelayCause::kNone;
  job.relax_emitted = 0;
  EnqueueSorted(job);
  if (SchedEvent* e = EmitEvent(SchedEventKind::kRequeue, &job); e != nullptr) {
    if (!job.record.attempts.empty()) {
      const AttemptRecord& attempt = job.record.attempts.back();
      e->attempt = attempt.index;
      e->failed = attempt.failed;
      e->preempted = attempt.preempted;
      e->machine_fault = attempt.machine_fault;
    }
  }
  if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
    std::string_view reason = "suspend";
    bool fault_recovery = false;
    if (!job.record.attempts.empty()) {
      const AttemptRecord& attempt = job.record.attempts.back();
      if (attempt.machine_fault) {
        reason = "fault";
        fault_recovery = true;
      } else if (attempt.preempted) {
        reason = "preempt";
      } else if (attempt.failed) {
        reason = "fail";
      } else if (attempt.prerun) {
        reason = "prerun";
      }
    }
    spans->OnRunEnd(job.spec.id, sim_.Now(), reason);
    spans->OnEnqueue(job.spec.id, job.spec.vc, job.spec.user,
                     job.spec.num_gpus, sim_.Now(), fault_recovery);
  }
}

void ClusterSimulation::FinishJob(JobState& job, JobStatus status) {
  job.phase = Phase::kDone;
  job.record.status = status;
  job.record.finish_time = sim_.Now();
  ++jobs_done_;
  if (SpanTracer* spans = config_.obs.spans; spans != nullptr) {
    const std::string_view reason = status == JobStatus::kPassed ? "passed"
                                    : status == JobStatus::kKilled
                                        ? "killed"
                                        : "unsuccessful";
    // No-op for jobs rejected at submission (no running span was opened).
    spans->OnRunEnd(job.spec.id, sim_.Now(), reason);
  }
  if (SchedEvent* e = EmitEvent(SchedEventKind::kComplete, &job); e != nullptr) {
    e->status = static_cast<int>(status);
    if (!job.record.attempts.empty()) {
      const AttemptRecord& attempt = job.record.attempts.back();
      e->attempt = attempt.index;
      e->failed = attempt.failed;
      e->preempted = attempt.preempted;
      e->machine_fault = attempt.machine_fault;
    }
    e->started_out_of_order = job.record.started_out_of_order;
    e->out_of_order_benign =
        job.record.started_out_of_order && job.record.out_of_order_benign;
    e->overtaken = job.record.overtaken;
  }
}

void ClusterSimulation::ScheduleNextServerFault(ServerId s, SimTime after) {
  const auto event = fault_process_.NextServerFault(s, after);
  if (!event.has_value()) {
    return;
  }
  const FaultEvent e = *event;
  sim_.ScheduleAt(e.at, [this, e] { OnFaultOccurred(e, true); });
}

void ClusterSimulation::ScheduleNextRackFault(RackId r, SimTime after) {
  const auto event = fault_process_.NextRackFault(r, after);
  if (!event.has_value()) {
    return;
  }
  const FaultEvent e = *event;
  sim_.ScheduleAt(e.at, [this, e] { OnFaultOccurred(e, true); });
}

void ClusterSimulation::OnFaultOccurred(const FaultEvent& event, bool sampled) {
  if (jobs_done_ >= static_cast<int>(jobs_.size())) {
    return;  // trace finished; let the simulator drain
  }
  std::vector<ServerId> affected;
  if (event.rack >= 0) {
    affected = cluster_.ServersInRack(event.rack);
  } else {
    affected.push_back(event.server);
  }
  std::vector<ServerId> marked;
  for (ServerId s : affected) {
    if (health_.MarkFault(s, event.at, event.kind)) {
      marked.push_back(s);
    }
  }
  if (marked.empty()) {
    // Every target is already faulted/offline (e.g. a rack outage hitting a
    // crashed server). The renewal stream still continues.
    if (sampled) {
      if (event.rack >= 0) {
        ScheduleNextRackFault(event.rack, sim_.Now());
      } else {
        ScheduleNextServerFault(event.server, sim_.Now());
      }
    }
    return;
  }
  ++result_.machine_faults_injected;
  // The scheduler notices only after the heartbeat timeout: jobs keep
  // "running" (and burning GPU-time) through the detection window.
  sim_.ScheduleAfter(fault_process_.config().detection_delay,
                     [this, event, marked = std::move(marked), sampled] {
                       OnFaultDetected(event, marked, sampled);
                     });
}

void ClusterSimulation::OnFaultDetected(const FaultEvent& event,
                                        std::vector<ServerId> servers, bool sampled) {
  if (jobs_done_ >= static_cast<int>(jobs_.size())) {
    // Nothing left to protect; skip the drain but keep health bookkeeping
    // consistent so asserts hold.
    for (ServerId s : servers) {
      health_.MarkOffline(s);
      health_.MarkRepaired(s);
    }
    return;
  }
  // Collect victims before draining: first-seen order over the marked
  // servers' tenant lists keeps this deterministic.
  std::vector<JobId> victims;
  for (ServerId s : servers) {
    for (const auto& tenant : cluster_.TenantsOnServer(s)) {
      if (std::find(victims.begin(), victims.end(), tenant.job) == victims.end()) {
        victims.push_back(tenant.job);
      }
    }
  }
  const FailureReason reason = ReasonForFault(event.kind);
  for (JobId id : victims) {
    JobState& job = StateOf(id);
    if (job.phase == Phase::kRunning) {
      KillAttemptForFault(job, reason, event.at);
    }
  }
  for (ServerId s : servers) {
    health_.MarkOffline(s);
    cluster_.SetServerOffline(s, true);
  }
  result_.machine_fault_server_downs += static_cast<int64_t>(servers.size());
  const SimDuration repair = std::max<SimDuration>(1, event.repair);
  sim_.ScheduleAfter(repair, [this, event, servers = std::move(servers), sampled] {
    OnFaultRepaired(event, servers, sampled);
  });
  if (!victims.empty()) {
    RequestSchedulingPass(0);
  }
}

void ClusterSimulation::OnFaultRepaired(const FaultEvent& event,
                                        std::vector<ServerId> servers, bool sampled) {
  for (ServerId s : servers) {
    cluster_.SetServerOffline(s, false);
    health_.MarkRepaired(s);
  }
  if (jobs_done_ >= static_cast<int>(jobs_.size())) {
    return;  // no reschedule: let the simulator terminate
  }
  RequestSchedulingPass(0);
  if (sampled) {
    if (event.rack >= 0) {
      ScheduleNextRackFault(event.rack, sim_.Now());
    } else {
      ScheduleNextServerFault(event.server, sim_.Now());
    }
  }
}

void ClusterSimulation::KillAttemptForFault(JobState& job, FailureReason reason,
                                            SimTime fault_time) {
  assert(job.phase == Phase::kRunning);
  const SimTime now = sim_.Now();
  sim_.Cancel(job.end_event);
  if (job.quantum_event.value != 0) {
    sim_.Cancel(job.quantum_event);
    job.quantum_event = EventId{};
  }
  CloseSegment(job);
  AttemptRecord& attempt = job.record.attempts.back();
  attempt.end = now;
  attempt.failed = true;
  attempt.machine_fault = true;
  attempt.true_reason = reason;
  attempt.log_tail = synthesizer_.LinesFor(reason, rng_);
  job.record.gpu_seconds += attempt.GpuTime();
  const bool ckpt_explicit = job.ckpt_period > 0;  // before teardown clears it
  CkptOnAttemptStopped(job);  // a fault mid-write aborts the write: nothing
                              // becomes durable, per the I/O model contract

  // Work attribution: the attempt produced nothing after the fault struck
  // (the detection window is dead time), and everything after the last
  // checkpoint is lost too.
  const SimTime fault_clamped =
      std::min(now, std::max(fault_time, attempt.start));
  const int gpus = attempt.placement.NumGpus();
  double lost;
  if (ckpt_explicit) {
    // Explicit checkpoint writes: only *completed* writes are durable, so the
    // job rolls back to ckpt_durable and everything since — training past the
    // last completed write plus the undetected dead window — is lost.
    const SimDuration training = AttemptExecuted(job, attempt);
    lost = static_cast<double>(job.clean_executed + training -
                               job.ckpt_durable) *
           gpus;
    job.clean_executed = job.ckpt_durable;
    const SimDuration epoch = std::max<SimDuration>(1, job.spec.EpochDuration());
    SetExecutedEpochs(job, static_cast<int>(std::min<int64_t>(
                               job.spec.planned_epochs, job.clean_executed / epoch)));
  } else if (job.kind == AttemptKind::kClean) {
    lost = static_cast<double>(now - fault_clamped) * gpus;
    const SimDuration produced =
        job.clean_executed + (fault_clamped - attempt.start);
    const SimDuration ckpt = config_.scheduler.checkpoint_period;
    const SimDuration resumed = ckpt > 0 ? (produced / ckpt) * ckpt : 0;
    lost += static_cast<double>(produced - resumed) * gpus;
    job.clean_executed = resumed;
    const SimDuration epoch = std::max<SimDuration>(1, job.spec.EpochDuration());
    SetExecutedEpochs(job, static_cast<int>(std::min<int64_t>(
                               job.spec.planned_epochs, job.clean_executed / epoch)));
  } else {
    lost = static_cast<double>(now - fault_clamped) * gpus;
    // The trial is not consumed, but checkpoints still bound the loss: a
    // deterministic bug re-manifests after the remaining RTF, so the retried
    // attempt resumes from the last checkpoint of the doomed run.
    const SimDuration produced =
        job.failing_resume + (fault_clamped - attempt.start);
    const SimDuration ckpt = config_.scheduler.checkpoint_period;
    const SimDuration resumed = ckpt > 0 ? (produced / ckpt) * ckpt : 0;
    lost += static_cast<double>(produced - resumed) * gpus;
    job.failing_resume = resumed;
  }
  result_.machine_fault_lost_gpu_seconds += lost;
  ++result_.machine_fault_kills;
  result_.allocated_gpu_seconds += attempt.GpuTime();
  result_.useful_gpu_seconds +=
      attempt.GpuTime() - lost -
      static_cast<double>(job.ckpt_time_attempt) * gpus;
  if (fault_kills_metric_ != nullptr) {
    fault_kills_metric_->Increment();
    lost_gpu_metric_->Add(lost);
  }
  if (SchedEvent* e = EmitEvent(SchedEventKind::kFaultKill, &job); e != nullptr) {
    e->attempt = attempt.index;
    e->failed = true;
    e->machine_fault = true;
    e->lost_gpu_seconds = lost;
    e->detail = std::string(ToString(reason));
  }

  cluster_.Release(job.spec.id);
  RunningSetErase(job);
  VcOf(job).used_gpus -= job.spec.num_gpus;
  RefreshCotenantSegments(attempt.placement, job.spec.id);
  // Machine faults are the cluster's fault, not the job's: no retry-policy
  // consult, no ObserveFailure (they must not poison the predictive
  // blacklist), no failure-trial consumption — just requeue and resume.
  Requeue(job);
}

void ClusterSimulation::TakeSnapshot() {
  SimulationResult::OccupancySnapshot snap;
  snap.time = sim_.Now();
  snap.occupancy = cluster_.Occupancy();
  snap.empty_server_fraction = cluster_.EmptyServerFraction();
  snap.racks_with_empty_servers = cluster_.RacksWithEmptyServers();
  if (config_.legacy_snapshot_scan) {
    // Pre-PR behavior, kept selectable for the bench baseline: O(jobs) per
    // snapshot, which dominates long traces (456 snapshots x all jobs at the
    // 75-day scale was the single largest profiler slice).
    for (const auto& job : jobs_) {
      snap.executed_epochs_total += job.record.executed_epochs;
    }
  } else {
    snap.executed_epochs_total = executed_epochs_total_;
  }
  snap.offline_servers = cluster_.NumOfflineServers();
  snap.machine_fault_kills_total = result_.machine_fault_kills;
  snap.machine_fault_lost_gpu_seconds_total = result_.machine_fault_lost_gpu_seconds;
  snap.ckpt_writes_completed_total = result_.ckpt_writes_completed;
  snap.ckpt_overhead_gpu_seconds_total = result_.ckpt_overhead_gpu_seconds;
  snap.ckpt_stall_gpu_seconds_total = result_.ckpt_stall_gpu_seconds;
  if (occupancy_metric_ != nullptr) {
    occupancy_metric_->Set(snap.occupancy);
  }
  result_.occupancy_snapshots.push_back(snap);
  if (jobs_done_ < static_cast<int>(jobs_.size())) {
    sim_.ScheduleAfter(config_.snapshot_period, [this] { TakeSnapshot(); });
  }
}

}  // namespace philly
