// The cluster simulation runtime: executes a workload trace against a
// scheduler policy on a modeled cluster, producing the three joinable log
// streams the analysis pipeline consumes (DESIGN.md §1).
//
// Responsibilities:
//   * job lifecycle (Figure 1): queueing -> gang placement -> execution ->
//     pass/kill/fail -> retries -> final status
//   * fair share across virtual clusters with work-conserving borrowing and
//     threshold-triggered preemption (§2.3)
//   * locality acquisition with backoff and progressive relaxation (§2.3)
//   * queueing-delay cause attribution: fair-share vs fragmentation (§3.1.1)
//   * out-of-order scheduling bookkeeping (§3.1.1)
//   * per-attempt failure injection, log synthesis, classification-driven
//     retry (§4.2)
//   * utilization segments reflecting distribution and co-tenant interference
//     (§3.2), sampled into Ganglia-style telemetry downstream
//   * optional Gandiva-style time-slicing and the §5 ablation knobs

#ifndef SRC_SCHED_SIMULATION_H_
#define SRC_SCHED_SIMULATION_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/failure/failure_injector.h"
#include "src/fault/checkpoint_io.h"
#include "src/fault/fault_process.h"
#include "src/fault/node_health.h"
#include "src/failure/failure_logs.h"
#include "src/failure/retry_policy.h"
#include "src/obs/observability.h"
#include "src/sched/placement.h"
#include "src/sched/records.h"
#include "src/sched/scheduler_config.h"
#include "src/sim/simulator.h"
#include "src/telemetry/util_model.h"
#include "src/workload/generator.h"

namespace philly {

struct SimulationConfig {
  ClusterConfig cluster = ClusterConfig::PaperScale();
  SchedulerConfig scheduler = SchedulerConfig::Philly();
  FailureInjectorConfig failure;
  // Machine-level fault process (disabled by default: zero MTBFs).
  FaultProcessConfig fault;
  // Checkpoint I/O interference model (disabled by default: zero bandwidth).
  // When enabled, clean gangs with a checkpoint cadence issue explicit writes
  // against per-rack shared storage; see scheduler.checkpoint_policy.
  CheckpointIoConfig ckpt_io;
  UtilModelConfig util_model;
  // Virtual-cluster definitions (quota per VC); normally taken from the
  // workload config so indices line up.
  std::vector<VcConfig> vcs;
  uint64_t seed = 42;
  SimDuration snapshot_period = Hours(6);
  // Core-engine selection for A/B benchmarking and differential tests. The
  // legacy heap event queue plus the O(jobs)-per-snapshot epoch scan
  // reproduce the pre-calendar core exactly; bench/end_to_end flips both to
  // measure the in-process old-vs-new ratio on identical output streams.
  SimEngine engine = SimEngine::kCalendar;
  bool legacy_snapshot_scan = false;
  // Optional observability sinks (non-owning; all null by default). Sinks
  // observe scheduler decisions without influencing them: a run with sinks
  // attached produces byte-identical records to a run without.
  ObservabilityConfig obs;
};

class ClusterSimulation {
 public:
  ClusterSimulation(SimulationConfig config, std::vector<JobSpec> jobs);

  // Runs the whole trace to completion and returns the logs. Call once.
  SimulationResult Run();

 private:
  enum class Phase { kPending, kQueued, kRunning, kDone };
  enum class AttemptKind { kFailing, kClean };

  struct JobState {
    JobSpec spec;
    FailurePlan plan;
    JobRecord record;

    Phase phase = Phase::kPending;
    // Model-zoo communication intensity, resolved once at construction so
    // the co-tenant utilization join never re-hits the string-keyed zoo.
    double comm_intensity = 0.0;
    // Queueing state.
    SimTime ready_time = 0;
    WaitRecord wait;
    int eval_failures = 0;        // failed evaluations in the current wait
    SimTime last_eval_time = -1;  // for cause-time attribution
    DelayCause last_cause = DelayCause::kNone;
    int relax_emitted = 0;        // highest relax level already event-logged
    double queue_key = 0.0;       // ordering key (policy-dependent)

    // Execution state.
    bool prerun_done = false;
    int failure_trials_used = 0;
    SimDuration clean_executed = 0;
    // Checkpointed progress toward the current failure trial. Non-zero only
    // after a machine fault killed a failing attempt under checkpointing: a
    // deterministic bug re-manifests after the *remaining* RTF, not from
    // scratch. Always 0 with faults disabled.
    SimDuration failing_resume = 0;
    AttemptKind kind = AttemptKind::kClean;
    bool kill_at_end = false;
    SimTime attempt_start = 0;
    SimTime segment_start = 0;
    double segment_util = 0.0;
    EventId end_event;
    EventId quantum_event;

    // Checkpoint I/O state for the current attempt (inert when the model is
    // disabled; see CkptSetupAttempt). Writes stall progress, so an attempt's
    // wall time is training time + ckpt_time_attempt.
    SimDuration ckpt_period = 0;           // policy-resolved cadence; 0 = none
    SimDuration ckpt_progress_needed = 0;  // training time this attempt targets
    SimDuration ckpt_nominal = 0;          // uncontended write cost, seconds
    RackId ckpt_rack = -1;                 // rack whose storage the gang writes
    EventId ckpt_trigger_event;
    bool ckpt_writing = false;   // a write is draining (progress stalled)
    bool ckpt_waiting = false;   // deferred by the rack coordinator (stagger)
    SimTime ckpt_write_start = 0;
    // Training time of this attempt captured by the in-flight write (the
    // checkpoint snapshots state as of the write's begin).
    SimDuration ckpt_progress_at_write = 0;
    // Total write-elapsed seconds charged to this attempt so far (completed
    // and aborted writes alike).
    SimDuration ckpt_time_attempt = 0;
    // Total clean progress recoverable after a machine fault: progress at
    // attempt start plus the last *completed* write's capture.
    SimDuration ckpt_durable = 0;

    SimDuration CleanRemaining() const {
      return std::max<SimDuration>(0, spec.planned_duration - clean_executed);
    }
  };

  struct VcState {
    VcConfig config;
    int used_gpus = 0;
    std::vector<JobId> queue;  // maintained in arrival order; ordering applied per pass
  };

  // --- event handlers ---
  void OnArrival(JobId id);
  void OnAttemptEnd(JobId id);
  void OnQuantumExpired(JobId id);
  void OnPrerunEnd(JobId id, bool caught);
  void MigrationPass();
  void TakeSnapshot();

  // --- machine faults (src/fault) ---
  // `sampled` distinguishes renewal-process events (which reschedule the next
  // fault for their server/rack after repair) from scripted one-shots.
  void ScheduleNextServerFault(ServerId s, SimTime after);
  void ScheduleNextRackFault(RackId r, SimTime after);
  void OnFaultOccurred(const FaultEvent& event, bool sampled);
  void OnFaultDetected(const FaultEvent& event, std::vector<ServerId> servers,
                       bool sampled);
  void OnFaultRepaired(const FaultEvent& event, std::vector<ServerId> servers,
                       bool sampled);
  void KillAttemptForFault(JobState& job, FailureReason reason, SimTime fault_time);

  // --- checkpoint I/O (src/fault/checkpoint_io; no-ops when disabled) ---
  // Resolves the attempt's cadence per the configured policy and schedules
  // its first trigger; called from StartAttempt after the end event exists.
  void CkptSetupAttempt(JobState& job, SimDuration duration);
  SimDuration ResolveCheckpointPeriod(const JobState& job) const;
  void CkptScheduleTrigger(JobState& job, SimTime at);
  void OnCkptTrigger(JobId id);
  // Stagger admission control: begins the write or defers the gang into the
  // rack's FIFO wait queue (training continues while deferred).
  void CkptAdmitOrQueue(JobState& job);
  void CkptBeginWrite(JobState& job);
  void CkptCompleteWrite(JobState& job);
  // A write on `rack` finished draining: complete it, admit deferred writers.
  void OnCkptRackEvent(RackId rack);
  void CkptAdmitWaiters(RackId rack);
  // Re-arms the rack's single completion event after any writer-set change.
  void CkptRescheduleRack(RackId rack);
  // Central teardown for every attempt-termination path: cancels the pending
  // trigger, leaves the wait queue, and aborts an in-flight write (charging
  // its partial elapsed time to the attempt).
  void CkptOnAttemptStopped(JobState& job);
  // Training time the attempt actually progressed (wall time minus write
  // stalls); equals attempt.Duration() whenever the model is off.
  SimDuration AttemptExecuted(const JobState& job,
                              const AttemptRecord& attempt) const {
    return attempt.Duration() - job.ckpt_time_attempt;
  }

  // --- scheduling ---
  void RequestSchedulingPass(SimDuration delay);
  void SchedulingPass();
  // Evaluates one queued job; returns true if it started.
  bool TryStartJob(JobState& job, bool earlier_job_waiting, int earlier_waiting_demand);
  void StartAttempt(JobState& job, const Placement& placement);
  void FinishJob(JobState& job, JobStatus status);
  void Requeue(JobState& job);
  int RelaxLevelFor(const JobState& job) const;
  void AttributeWaitTime(JobState& job, DelayCause cause);
  bool TryPreemptFor(const JobState& job);
  void PreemptJob(JobState& victim);
  // Optimus/Tiresias: checkpoint-suspend the worst-priority running job so a
  // better-priority waiter can take its place. Returns true if one was
  // suspended.
  bool TryPrioritySuspendFor(const JobState& job);
  // Context-switch a running clean attempt out, preserving full progress
  // (used by time-slicing and migration).
  void SuspendAttempt(JobState& job);
  double QueueKeyFor(const JobState& job) const;
  // Inserts the job into its VC queue at its scheduling-key position (after
  // all equal keys). Every policy's key is constant while a job is queued, so
  // the queue stays sorted without the per-pass rebuild-and-stable-sort the
  // scheduler used to do; ties land in insertion order, exactly where the
  // stable sort put them.
  void EnqueueSorted(JobState& job);

  // --- telemetry segments ---
  double ComputeExpectedUtil(const JobState& job, const Placement& placement) const;
  void OpenSegment(JobState& job);
  void CloseSegment(JobState& job);
  void RefreshCotenantSegments(const Placement& placement, JobId except);

  // --- per-minute telemetry stream (all no-ops when the sink is null) ---
  // Emits every unsampled grid point <= target; wired to the simulator's
  // time-advance hook so sampling adds zero simulator events.
  void TelemetryAdvance(SimTime target);
  void FillTelemetrySample(TelemetrySample& sample);

  JobState& StateOf(JobId id);
  VcState& VcOf(const JobState& job) { return vcs_[static_cast<size_t>(job.spec.vc)]; }

  // Single write path for record.executed_epochs: keeps the cluster-wide
  // running total in sync so TakeSnapshot never rescans all jobs.
  void SetExecutedEpochs(JobState& job, int epochs) {
    executed_epochs_total_ += epochs - job.record.executed_epochs;
    job.record.executed_epochs = epochs;
  }
  // Adds/removes the job from the sorted running set (all cluster-GPU-holding
  // jobs; prerun pool attempts excluded).
  void RunningSetInsert(const JobState& job);
  void RunningSetErase(const JobState& job);

  // --- observability (no-ops when the corresponding sink is null) ---
  // Appends an event pre-filled with the job's identity fields; returns null
  // when event logging is off so hot paths skip payload construction.
  SchedEvent* EmitEvent(SchedEventKind kind, const JobState* job);
  void RecordEvalFailure(DelayCause cause);
  // Span-sink refinement of a failed evaluation: maps the native two-way
  // DelayCause onto the span blame vocabulary (kFairShare ->
  // kFairnessShareCap; kFragmentation -> kLocalityWait when a fully-relaxed
  // placement existed, else kFragmentation). No-op when the sink is null.
  void SpanNoteEvalFail(JobState& job, DelayCause cause);

  // SpanNoteEvalFail's memoized CanPlace probes: gpu count -> (cluster
  // allocation version, feasible). Touched only with the span sink attached.
  std::unordered_map<int, std::pair<int64_t, bool>> span_probe_cache_;

  SimulationConfig config_;
  Simulator sim_;
  Cluster cluster_;
  LocalityPlacer placer_;
  // Migration re-placement always packs (consolidation is the point of
  // defragmentation), regardless of the main placer's policy.
  LocalityPlacer defrag_placer_;
  UtilizationModel util_model_;
  FailureInjector injector_;
  FailureLogSynthesizer synthesizer_;
  FailureClassifier classifier_;
  std::unique_ptr<RetryPolicy> retry_policy_;
  Rng rng_;
  FaultProcess fault_process_;
  NodeHealthTracker health_;
  // Checkpoint I/O state (engaged only when config_.ckpt_io.Enabled()).
  std::unique_ptr<CheckpointIoModel> ckpt_model_;
  std::vector<EventId> ckpt_rack_event_;          // one completion event/rack
  std::vector<std::vector<JobId>> ckpt_wait_queue_;  // stagger FIFO deferrals
  std::vector<int> ckpt_stagger_slot_;            // next phase slot per rack

  std::vector<JobState> jobs_;   // dense storage
  // Flat id -> jobs_ index map (ids are dense and small, so this is a plain
  // vector lookup on the hottest path in the scheduler); SIZE_MAX = no job.
  std::vector<size_t> job_index_;
  std::vector<VcState> vcs_;
  SimulationResult result_;
  bool pass_pending_ = false;
  EventId pending_pass_event_;
  SimTime pending_pass_time_ = 0;
  SimTime last_arrival_time_ = 0;
  SimTime last_preemption_time_ = -(1 << 30);
  int prerun_in_use_ = 0;
  int jobs_done_ = 0;
  // Cluster-wide executed-epochs total, maintained incrementally through
  // SetExecutedEpochs (TakeSnapshot reads it in O(1)).
  int64_t executed_epochs_total_ = 0;
  // Jobs holding cluster GPUs right now, sorted by id (== jobs_ index order),
  // paired with their jobs_ index. The per-minute sampler iterates it for the
  // utilization join, and the preemption/priority-suspension victim scans use
  // it instead of walking every job in the trace. Prerun attempts hold pool
  // slots, not cluster GPUs, and are excluded.
  std::vector<std::pair<JobId, size_t>> running_jobs_;
  // Per-pass scratch, reserved once and reused so a scheduling pass performs
  // no allocations in steady state.
  std::vector<size_t> pass_vc_order_;
  std::vector<JobId> pass_queue_;  // snapshot of one VC's (sorted) queue
  std::vector<JobId> pass_blocked_;
  std::vector<JobId> pass_touched_;  // co-tenant refresh scratch
  // Per-server scratch for the sampler's utilization join, sized NumServers
  // and zeroed between samples via telemetry_touched_ (so a sample costs
  // O(running jobs + busy servers), not O(cluster servers)).
  std::vector<double> telemetry_srv_util_;
  std::vector<int> telemetry_srv_gpus_;
  std::vector<ServerId> telemetry_touched_;

  // Metric handles resolved once at construction (null when metrics are off).
  Histogram* queue_delay_hist_ = nullptr;
  Histogram* fair_share_wait_hist_ = nullptr;
  Histogram* fragmentation_wait_hist_ = nullptr;
  Counter* fair_share_evals_ = nullptr;
  Counter* fragmentation_evals_ = nullptr;
  Counter* decisions_metric_ = nullptr;
  Counter* preemptions_metric_ = nullptr;
  Counter* migrations_metric_ = nullptr;
  Counter* fault_kills_metric_ = nullptr;
  Gauge* lost_gpu_metric_ = nullptr;
  Gauge* occupancy_metric_ = nullptr;
};

}  // namespace philly

#endif  // SRC_SCHED_SIMULATION_H_
