// Small-buffer event callback for the discrete-event engine.
//
// The simulator schedules hundreds of thousands of events per simulated
// month, almost all of which capture a `this` pointer plus a job id or a
// small POD. std::function's type-erasure works, but its 16-byte inline
// buffer forces a heap allocation for anything larger, and its copyability
// requirement drags in a copy-constructor thunk per lambda. InlineCallback is
// the minimal move-only alternative: a 48-byte inline buffer stores every
// scheduler lambda in-place (measured: the largest hot-path capture is
// {this, FaultEvent} at 40 bytes), and rare larger captures (fault detection
// with a marked-server vector) fall back to a single heap cell.

#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace philly {

class InlineCallback {
 public:
  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Destroys the stored callable (freeing any heap cell) and becomes empty.
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  static constexpr size_t kInlineSize = 48;

  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs the callable at `dst` from `src`'s storage and destroys
    // the source (heap callables just steal the pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); }
    static void Relocate(void* dst, void* src) noexcept {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* s) noexcept {
      std::launder(reinterpret_cast<Fn*>(s))->~Fn();
    }
    static constexpr Ops ops{Invoke, Relocate, Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& Cell(void* s) { return *reinterpret_cast<Fn**>(s); }
    static void Invoke(void* s) { (*Cell(s))(); }
    static void Relocate(void* dst, void* src) noexcept {
      *reinterpret_cast<Fn**>(dst) = Cell(src);
    }
    static void Destroy(void* s) noexcept { delete Cell(s); }
    static constexpr Ops ops{Invoke, Relocate, Destroy};
  };

  void MoveFrom(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace philly

#endif  // SRC_SIM_CALLBACK_H_
