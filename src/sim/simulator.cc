#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace philly {

EventId Simulator::ScheduleAt(SimTime t, Callback cb) {
  assert(t >= now_);
  assert(cb);
  const uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq, std::move(cb)});
  pending_ids_.insert(seq);
  return EventId{seq};
}

EventId Simulator::ScheduleAfter(SimDuration d, Callback cb) {
  assert(d >= 0);
  return ScheduleAt(now_ + d, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  if (pending_ids_.erase(id.value) == 0) {
    return false;  // never scheduled, already fired, or already cancelled
  }
  cancelled_.insert(id.value);
  return true;
}

bool Simulator::SkipCancelled() {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    const auto it = cancelled_.find(top.seq);
    if (it == cancelled_.end()) {
      return true;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
  return false;
}

bool Simulator::Step() {
  if (!SkipCancelled()) {
    return false;
  }
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_ids_.erase(top.seq);
  assert(top.time >= now_);
  if (top.time > now_ && time_advance_observer_) {
    time_advance_observer_(top.time);
  }
  now_ = top.time;
  ++processed_;
  top.callback();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (SkipCancelled() && heap_.top().time <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    if (time_advance_observer_) {
      time_advance_observer_(deadline);
    }
    now_ = deadline;
  }
}

}  // namespace philly
