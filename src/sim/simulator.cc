#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace philly {

Simulator::Simulator(SimEngine engine) : engine_(engine) {
  if (engine_ == SimEngine::kCalendar) {
    buckets_.resize(kNumBuckets);
    occupied_.resize(kWordCount, 0);
  }
}

EventId Simulator::ScheduleAt(SimTime t, Callback cb) {
  assert(t >= now_);
  assert(cb);
  const uint64_t seq = next_seq_++;
  if (engine_ == SimEngine::kLegacyHeap) {
    legacy_heap_.push(LegacyEntry{t, seq, std::move(cb)});
    legacy_pending_.insert(seq);
    return EventId{seq};
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  assert(!s.cb);
  s.cb = std::move(cb);
  PushEntry(QEntry{t, seq, slot, s.gen});
  ++live_;
  ++physical_;
  // slot+1 keeps the low word nonzero so no issued id ever equals EventId{}.
  return EventId{(uint64_t{s.gen} << 32) | (slot + 1)};
}

EventId Simulator::ScheduleAfter(SimDuration d, Callback cb) {
  assert(d >= 0);
  return ScheduleAt(now_ + d, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  if (engine_ == SimEngine::kLegacyHeap) {
    if (legacy_pending_.erase(id.value) == 0) {
      return false;  // never scheduled, already fired, or already cancelled
    }
    legacy_cancelled_.insert(id.value);
    return true;
  }
  const uint32_t low = static_cast<uint32_t>(id.value);
  if (low == 0) {
    return false;  // EventId{} or a value this engine never issued
  }
  const uint32_t slot = low - 1;
  const uint32_t gen = static_cast<uint32_t>(id.value >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen || !slots_[slot].cb) {
    return false;  // already fired, already cancelled, or never issued
  }
  RetireSlot(slot);  // queue entry becomes a tombstone via the gen bump
  --live_;
  MaybeCompact();
  return true;
}

void Simulator::RetireSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.Reset();
  ++s.gen;
  free_slots_.push_back(slot);
}

void Simulator::PushEntry(const QEntry& e) {
  const int64_t minute = e.time / 60;
  assert(minute >= base_minute_);
  if (minute < base_minute_ + static_cast<int64_t>(kNumBuckets)) {
    const uint32_t ring = static_cast<uint32_t>(minute) & kBucketMask;
    std::vector<QEntry>& b = buckets_[ring];
    b.push_back(e);
    std::push_heap(b.begin(), b.end(), QAfter{});
    SetBit(ring);
  } else {
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), QAfter{});
  }
}

void Simulator::PurgeDeadTop(std::vector<QEntry>& heap) {
  while (!heap.empty() && IsDead(heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), QAfter{});
    heap.pop_back();
    --physical_;
  }
}

int Simulator::FindOccupiedBucket() const {
  const uint32_t start = static_cast<uint32_t>(base_minute_) & kBucketMask;
  const uint32_t start_word = start >> 6;
  const uint32_t start_bit = start & 63;
  // First word: only bits at or after the window's ring position.
  const uint64_t head = occupied_[start_word] & (~uint64_t{0} << start_bit);
  if (head != 0) {
    return static_cast<int>((start_word << 6) + std::countr_zero(head));
  }
  for (uint32_t k = 1; k <= kWordCount; ++k) {
    const uint32_t wi = (start_word + k) & (kWordCount - 1);
    uint64_t w = occupied_[wi];
    if (wi == start_word) {
      w &= ~(~uint64_t{0} << start_bit);  // wrapped: bits before start
    }
    if (w != 0) {
      return static_cast<int>((wi << 6) + std::countr_zero(w));
    }
  }
  return -1;
}

Simulator::PeekResult Simulator::PeekNext() {
  if (live_ == 0) {
    return PeekResult{};
  }
  // Ring first: every bucket entry is earlier than every overflow entry
  // (buckets hold minutes in [base, base+N), overflow holds >= base+N).
  // A bucket may also hold tombstones from long-gone minutes that alias the
  // same ring index; they sort first (smaller time) and are purged here.
  for (;;) {
    const int ring = FindOccupiedBucket();
    if (ring < 0) {
      break;
    }
    std::vector<QEntry>& b = buckets_[static_cast<uint32_t>(ring)];
    PurgeDeadTop(b);
    if (b.empty()) {
      ClearBit(static_cast<uint32_t>(ring));  // stale bit; rescan
      continue;
    }
    return PeekResult{PeekResult::kBucket, static_cast<uint32_t>(ring)};
  }
  PurgeDeadTop(overflow_);
  assert(!overflow_.empty());  // live_ > 0 and the ring is empty
  return PeekResult{PeekResult::kOverflow, 0};
}

void Simulator::AdvanceBase(int64_t new_base) {
  assert(new_base >= base_minute_);
  if (new_base == base_minute_) {
    return;
  }
  base_minute_ = new_base;
  const int64_t window_end = base_minute_ + static_cast<int64_t>(kNumBuckets);
  for (;;) {
    PurgeDeadTop(overflow_);
    if (overflow_.empty() || overflow_.front().time / 60 >= window_end) {
      break;
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), QAfter{});
    const QEntry e = overflow_.back();
    overflow_.pop_back();
    const uint32_t ring = static_cast<uint32_t>(e.time / 60) & kBucketMask;
    std::vector<QEntry>& b = buckets_[ring];
    b.push_back(e);
    std::push_heap(b.begin(), b.end(), QAfter{});
    SetBit(ring);
  }
}

void Simulator::Compact() {
  for (uint32_t wi = 0; wi < kWordCount; ++wi) {
    uint64_t w = occupied_[wi];
    while (w != 0) {
      const uint32_t bit = static_cast<uint32_t>(std::countr_zero(w));
      w &= w - 1;
      std::vector<QEntry>& b = buckets_[(wi << 6) + bit];
      b.erase(std::remove_if(b.begin(), b.end(),
                             [this](const QEntry& e) { return IsDead(e); }),
              b.end());
      if (b.empty()) {
        occupied_[wi] &= ~(uint64_t{1} << bit);
      } else {
        std::make_heap(b.begin(), b.end(), QAfter{});
      }
    }
  }
  overflow_.erase(std::remove_if(overflow_.begin(), overflow_.end(),
                                 [this](const QEntry& e) { return IsDead(e); }),
                  overflow_.end());
  std::make_heap(overflow_.begin(), overflow_.end(), QAfter{});
  physical_ = live_;
}

bool Simulator::CalendarStep() {
  const PeekResult next = PeekNext();
  if (next.kind == PeekResult::kNone) {
    return false;
  }
  std::vector<QEntry>& heap =
      next.kind == PeekResult::kBucket ? buckets_[next.ring] : overflow_;
  std::pop_heap(heap.begin(), heap.end(), QAfter{});
  const QEntry e = heap.back();
  heap.pop_back();
  --physical_;
  if (next.kind == PeekResult::kBucket && heap.empty()) {
    ClearBit(next.ring);
  }
  Callback cb = std::move(slots_[e.slot].cb);
  RetireSlot(e.slot);
  --live_;
  assert(e.time >= now_);
  if (e.time > now_ && time_advance_observer_) {
    time_advance_observer_(e.time);
  }
  now_ = e.time;
  AdvanceBase(now_ / 60);
  ++processed_;
  cb();
  return true;
}

void Simulator::CalendarRunUntil(SimTime deadline) {
  for (;;) {
    const PeekResult next = PeekNext();
    if (next.kind == PeekResult::kNone) {
      break;
    }
    const SimTime t = next.kind == PeekResult::kBucket
                          ? buckets_[next.ring].front().time
                          : overflow_.front().time;
    if (t > deadline) {
      break;
    }
    CalendarStep();
  }
  if (now_ < deadline) {
    if (time_advance_observer_) {
      time_advance_observer_(deadline);
    }
    now_ = deadline;
    AdvanceBase(now_ / 60);
  }
}

bool Simulator::LegacySkipCancelled() {
  while (!legacy_heap_.empty()) {
    const LegacyEntry& top = legacy_heap_.top();
    const auto it = legacy_cancelled_.find(top.seq);
    if (it == legacy_cancelled_.end()) {
      return true;
    }
    legacy_cancelled_.erase(it);
    legacy_heap_.pop();
  }
  return false;
}

bool Simulator::LegacyStep() {
  if (!LegacySkipCancelled()) {
    return false;
  }
  LegacyEntry top = std::move(const_cast<LegacyEntry&>(legacy_heap_.top()));
  legacy_heap_.pop();
  legacy_pending_.erase(top.seq);
  assert(top.time >= now_);
  if (top.time > now_ && time_advance_observer_) {
    time_advance_observer_(top.time);
  }
  now_ = top.time;
  ++processed_;
  top.callback();
  return true;
}

void Simulator::LegacyRunUntil(SimTime deadline) {
  while (LegacySkipCancelled() && legacy_heap_.top().time <= deadline) {
    LegacyStep();
  }
  if (now_ < deadline) {
    if (time_advance_observer_) {
      time_advance_observer_(deadline);
    }
    now_ = deadline;
  }
}

bool Simulator::Step() {
  return engine_ == SimEngine::kCalendar ? CalendarStep() : LegacyStep();
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  if (engine_ == SimEngine::kCalendar) {
    CalendarRunUntil(deadline);
  } else {
    LegacyRunUntil(deadline);
  }
}

}  // namespace philly
