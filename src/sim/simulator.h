// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and a time-ordered event queue. Ties are
// broken by scheduling order, so runs are fully deterministic. Events may be
// cancelled, which the scheduler uses for timeout/backoff machinery. There is
// intentionally no global simulator instance.
//
// Two queue engines implement the same contract:
//
//  - kCalendar (default): a calendar queue keyed on the minute grid. Events
//    within a ~2.8-day window live in per-minute ring buckets (each a small
//    binary heap ordered by (time, seq)); events beyond the window wait in an
//    overflow heap and migrate into the ring as the clock advances. Callback
//    storage is a slot slab with generation counters, so Cancel is O(1): it
//    destroys the callback immediately (freeing its captures), bumps the
//    slot's generation, and leaves a tombstone entry in the queue that is
//    skipped when it surfaces. A compaction sweep runs whenever tombstones
//    outnumber live events, so internal size stays O(live) under arbitrary
//    cancel churn.
//  - kLegacyHeap: the original std::priority_queue + dual unordered_set
//    design, kept as the reference implementation for differential tests and
//    as the in-process baseline for bench/end_to_end.
//
// Both engines produce byte-identical event orderings; tests/sim_queue_test.cc
// runs randomized schedules through both and compares traces.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/callback.h"

namespace philly {

// Opaque handle for a scheduled event; valid until the event fires or is
// cancelled. A default-constructed id (value == 0) is never issued.
struct EventId {
  uint64_t value = 0;
  bool operator==(const EventId&) const = default;
};

enum class SimEngine {
  kCalendar,    // minute-bucket calendar queue (default)
  kLegacyHeap,  // reference priority_queue implementation
};

class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() : Simulator(SimEngine::kCalendar) {}
  explicit Simulator(SimEngine engine);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimEngine engine() const { return engine_; }

  SimTime Now() const { return now_; }

  // Schedules `cb` to run at absolute time `t`. Requires t >= Now().
  EventId ScheduleAt(SimTime t, Callback cb);

  // Schedules `cb` to run `d` from now. Requires d >= 0.
  EventId ScheduleAfter(SimDuration d, Callback cb);

  // Cancels a pending event. Returns false if it already fired or was
  // cancelled. The callback (and anything it captured) is destroyed before
  // this returns.
  bool Cancel(EventId id);

  // Processes events in time order until the queue is empty.
  void Run();

  // Processes events with time <= `deadline`, then advances the clock to
  // `deadline` (if it is later than the last event processed).
  void RunUntil(SimTime deadline);

  // Processes exactly one event if any is pending; returns false otherwise.
  bool Step();

  // Observer fired whenever the clock is about to advance past Now(), with
  // the target time, BEFORE the event at that time runs (and before the final
  // advance of RunUntil). The simulation state visible to the observer is the
  // pre-event state, so samplers see piecewise-constant values between
  // events. The observer must not schedule or cancel events. Pass an empty
  // function to detach.
  void SetTimeAdvanceObserver(std::function<void(SimTime)> observer) {
    time_advance_observer_ = std::move(observer);
  }

  // Number of live (scheduled, not yet fired or cancelled) events.
  size_t PendingCount() const {
    return engine_ == SimEngine::kCalendar ? live_ : legacy_pending_.size();
  }
  // Number of entries physically held in queue structures, including
  // cancelled tombstones awaiting compaction. The bounded-growth regression
  // test asserts PhysicalCount() = O(PendingCount()) under cancel churn.
  size_t PhysicalCount() const {
    return engine_ == SimEngine::kCalendar ? physical_ : legacy_heap_.size();
  }
  uint64_t ProcessedCount() const { return processed_; }

 private:
  // ---- calendar engine ----

  // Ring of 2^12 one-minute buckets: 4096 minutes ≈ 2.8 simulated days per
  // window lap, sized so that scheduler backoffs, quantum timers, and
  // checkpoint writes (minutes-to-hours scale) land in the ring and only
  // long-horizon events (job end times, fault renewals) touch the overflow
  // heap.
  static constexpr uint32_t kBucketBits = 12;
  static constexpr uint32_t kNumBuckets = 1u << kBucketBits;
  static constexpr uint32_t kBucketMask = kNumBuckets - 1;
  static constexpr uint32_t kWordCount = kNumBuckets / 64;
  // Compaction fires when at least this many tombstones exist AND they
  // outnumber live entries; the floor keeps tiny queues from re-sweeping on
  // every cancel.
  static constexpr size_t kCompactMinDead = 64;

  struct Slot {
    Callback cb;
    uint32_t gen = 0;
  };
  // 24-byte queue entry; the callback stays put in its slot, so heap sifts
  // move only this.
  struct QEntry {
    SimTime time = 0;
    uint64_t seq = 0;  // tie-break: FIFO among same-time events
    uint32_t slot = 0;
    uint32_t gen = 0;
  };
  // Min-heap comparator for std::push_heap/pop_heap (which build max-heaps):
  // "a sorts after b".
  struct QAfter {
    bool operator()(const QEntry& a, const QEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  struct PeekResult {
    enum Kind { kNone, kBucket, kOverflow } kind = kNone;
    uint32_t ring = 0;  // valid when kind == kBucket
  };

  bool IsDead(const QEntry& e) const { return slots_[e.slot].gen != e.gen; }
  void SetBit(uint32_t ring) {
    occupied_[ring >> 6] |= uint64_t{1} << (ring & 63);
  }
  void ClearBit(uint32_t ring) {
    occupied_[ring >> 6] &= ~(uint64_t{1} << (ring & 63));
  }

  void RetireSlot(uint32_t slot);
  void PushEntry(const QEntry& e);
  // Drops tombstones off the top of a bucket/overflow heap.
  void PurgeDeadTop(std::vector<QEntry>& heap);
  // First occupied ring index at or after base_minute_'s ring position
  // (wrapping the full ring), or -1 if every bucket is empty.
  int FindOccupiedBucket() const;
  // Locates the earliest live event without removing it. May purge
  // tombstones and clear stale occupancy bits along the way.
  PeekResult PeekNext();
  // Advances the bucket window and migrates overflow events that now fall
  // inside it. `new_base` must be now_ / 60.
  void AdvanceBase(int64_t new_base);
  // Rebuilds every bucket and the overflow heap with tombstones removed.
  void Compact();
  void MaybeCompact() {
    const size_t dead = physical_ - live_;
    if (dead >= kCompactMinDead && dead > live_) {
      Compact();
    }
  }

  bool CalendarStep();
  void CalendarRunUntil(SimTime deadline);

  // ---- legacy engine (reference) ----

  struct LegacyEntry {
    SimTime time = 0;
    uint64_t seq = 0;
    Callback callback;
  };
  struct LegacyLater {
    bool operator()(const LegacyEntry& a, const LegacyEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the top; returns false when the queue is empty.
  bool LegacySkipCancelled();
  bool LegacyStep();
  void LegacyRunUntil(SimTime deadline);

  // ---- shared state ----
  SimEngine engine_;
  SimTime now_ = 0;
  std::function<void(SimTime)> time_advance_observer_;
  uint64_t next_seq_ = 1;
  uint64_t processed_ = 0;

  // ---- calendar state ----
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<std::vector<QEntry>> buckets_;  // size kNumBuckets
  std::vector<uint64_t> occupied_;            // size kWordCount
  std::vector<QEntry> overflow_;              // min-heap via QAfter
  int64_t base_minute_ = 0;                   // == now_ / 60
  size_t live_ = 0;                           // scheduled, not fired/cancelled
  size_t physical_ = 0;                       // entries incl. tombstones

  // ---- legacy state ----
  std::priority_queue<LegacyEntry, std::vector<LegacyEntry>, LegacyLater>
      legacy_heap_;
  // Ids scheduled but not yet fired or cancelled.
  std::unordered_set<uint64_t> legacy_pending_;
  // Cancelled ids still physically present in the heap (lazy deletion).
  std::unordered_set<uint64_t> legacy_cancelled_;
};

}  // namespace philly

#endif  // SRC_SIM_SIMULATOR_H_
