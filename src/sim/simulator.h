// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and a time-ordered event queue. Ties are
// broken by scheduling order, so runs are fully deterministic. Events may be
// cancelled (lazily removed), which the scheduler uses for timeout/backoff
// machinery. There is intentionally no global simulator instance.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/sim_time.h"

namespace philly {

// Opaque handle for a scheduled event; valid until the event fires or is
// cancelled.
struct EventId {
  uint64_t value = 0;
  bool operator==(const EventId&) const = default;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` to run at absolute time `t`. Requires t >= Now().
  EventId ScheduleAt(SimTime t, Callback cb);

  // Schedules `cb` to run `d` from now. Requires d >= 0.
  EventId ScheduleAfter(SimDuration d, Callback cb);

  // Cancels a pending event. Returns false if it already fired or was
  // cancelled.
  bool Cancel(EventId id);

  // Processes events in time order until the queue is empty.
  void Run();

  // Processes events with time <= `deadline`, then advances the clock to
  // `deadline` (if it is later than the last event processed).
  void RunUntil(SimTime deadline);

  // Processes exactly one event if any is pending; returns false otherwise.
  bool Step();

  // Observer fired whenever the clock is about to advance past Now(), with
  // the target time, BEFORE the event at that time runs (and before the final
  // advance of RunUntil). The simulation state visible to the observer is the
  // pre-event state, so samplers see piecewise-constant values between
  // events. The observer must not schedule or cancel events. Pass an empty
  // function to detach.
  void SetTimeAdvanceObserver(std::function<void(SimTime)> observer) {
    time_advance_observer_ = std::move(observer);
  }

  size_t PendingCount() const { return pending_ids_.size(); }
  uint64_t ProcessedCount() const { return processed_; }

 private:
  struct Entry {
    SimTime time = 0;
    uint64_t seq = 0;  // tie-break: FIFO among same-time events
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the top; returns false when the queue is empty.
  bool SkipCancelled();

  SimTime now_ = 0;
  std::function<void(SimTime)> time_advance_observer_;
  uint64_t next_seq_ = 1;
  uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids scheduled but not yet fired or cancelled.
  std::unordered_set<uint64_t> pending_ids_;
  // Cancelled ids still physically present in the heap (lazy deletion).
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace philly

#endif  // SRC_SIM_SIMULATOR_H_
