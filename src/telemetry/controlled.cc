#include "src/telemetry/controlled.h"

#include <algorithm>
#include <cassert>

#include "src/workload/model_zoo.h"

namespace philly {

ControlledExperiment::ControlledExperiment(const ClusterConfig& testbed,
                                           UtilModelConfig model)
    : cluster_(testbed), model_(model) {}

bool ControlledExperiment::Place(const JobSpec& job, const Placement& placement,
                                 bool study) {
  if (!cluster_.Allocate(job.id, placement)) {
    return false;
  }
  jobs_.push_back({job, placement});
  if (study || study_ == kNoJob) {
    study_ = job.id;
  }
  return true;
}

void ControlledExperiment::Remove(JobId id) {
  cluster_.Release(id);
  jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                             [id](const PlacedJob& j) { return j.spec.id == id; }),
              jobs_.end());
  if (study_ == id) {
    study_ = jobs_.empty() ? kNoJob : jobs_.front().spec.id;
  }
}

const ControlledExperiment::PlacedJob* ControlledExperiment::Find(JobId id) const {
  for (const auto& job : jobs_) {
    if (job.spec.id == id) {
      return &job;
    }
  }
  return nullptr;
}

JobActivity ControlledExperiment::ActivityOf(JobId id) const {
  const PlacedJob* job = Find(id);
  if (job == nullptr) {
    return JobActivity{};
  }
  return JobActivity{job->spec.base_utilization,
                     ProfileOf(job->spec.model).comm_intensity, job->spec.num_gpus,
                     job->placement.NumServers()};
}

double ControlledExperiment::UtilizationOf(JobId id) const {
  const PlacedJob* job = Find(id);
  if (job == nullptr) {
    return 0.0;
  }
  return model_.ExpectedUtilization(
      job->spec, job->placement, cluster_,
      [this](JobId other) { return ActivityOf(other); });
}

double ControlledExperiment::StudyUtilization() const {
  return study_ == kNoJob ? 0.0 : UtilizationOf(study_);
}

double ControlledExperiment::StudyImagesPerSecond() const {
  const PlacedJob* job = Find(study_);
  if (job == nullptr) {
    return 0.0;
  }
  return model_.ImagesPerSecond(job->spec, StudyUtilization());
}

}  // namespace philly
