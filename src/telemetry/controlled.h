// Controlled placement experiments (§3.2.1's methodology as an API).
//
// The paper validates its utilization findings with an offline experiment:
// place a job-under-study in specific locality/colocation configurations and
// measure its utilization and throughput. ControlledExperiment reproduces
// that workflow against the utilization model: declare a testbed, place a
// study job and background jobs explicitly, and read off the metrics. The
// Table 4 bench and downstream what-if studies are built on this.

#ifndef SRC_TELEMETRY_CONTROLLED_H_
#define SRC_TELEMETRY_CONTROLLED_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/telemetry/util_model.h"
#include "src/workload/job.h"

namespace philly {

class ControlledExperiment {
 public:
  // `testbed` describes the servers (e.g. two 4-GPU machines for the paper's
  // ResNet-50 experiment).
  explicit ControlledExperiment(const ClusterConfig& testbed,
                                UtilModelConfig model = {});

  // Places a job. Returns false (placing nothing) if the placement does not
  // fit. The first job added is the job under study unless `study` is given.
  bool Place(const JobSpec& job, const Placement& placement, bool study = false);

  // Expected utilization of the study job in the current configuration.
  double StudyUtilization() const;

  // Training throughput of the study job (images/s; 0 for non-image models).
  double StudyImagesPerSecond() const;

  // Expected utilization of any placed job by id.
  double UtilizationOf(JobId id) const;

  // Removes a placed job (e.g. to vary the background set).
  void Remove(JobId id);

  const Cluster& cluster() const { return cluster_; }

 private:
  struct PlacedJob {
    JobSpec spec;
    Placement placement;
  };
  const PlacedJob* Find(JobId id) const;
  JobActivity ActivityOf(JobId id) const;

  Cluster cluster_;
  UtilizationModel model_;
  std::vector<PlacedJob> jobs_;
  JobId study_ = kNoJob;
};

}  // namespace philly

#endif  // SRC_TELEMETRY_CONTROLLED_H_
