#include "src/telemetry/host_model.h"

#include <algorithm>

#include "src/common/distributions.h"

namespace philly {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

double HashedNormal(uint64_t seed, uint64_t salt) {
  const uint64_t h = Mix64(seed ^ (salt * 0xD6E8FEB86659FD93ull));
  const double u = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
  return Probit(u);
}

}  // namespace

HostActivity HostActivityFor(const JobSpec& job, uint64_t seed) {
  const uint64_t base = Mix64(static_cast<uint64_t>(job.id) ^ (seed << 9));
  double cpu_mean = 0.28;
  double mem_mean = 0.78;
  switch (job.model) {
    case ModelFamily::kEmbedding:
      cpu_mean = 0.45;  // heavy input pipeline / sparse lookups on host
      mem_mean = 0.90;
      break;
    case ModelFamily::kVggLike:
      mem_mean = 0.88;  // large activations cached on host
      break;
    case ModelFamily::kLstm:
    case ModelFamily::kRnnLanguage:
      cpu_mean = 0.32;  // tokenization on host
      break;
    case ModelFamily::kResNet:
      break;
  }
  HostActivity activity;
  activity.cpu_fraction =
      std::clamp(cpu_mean + 0.15 * HashedNormal(base, 1), 0.02, 1.0);
  activity.memory_fraction =
      std::clamp(mem_mean + 0.15 * HashedNormal(base, 2), 0.05, 1.0);
  return activity;
}

}  // namespace philly
