// Host-resource (CPU / memory) usage model, driving Figure 7.
//
// Philly allocates CPU cores and host memory proportionally to requested
// GPUs (§2.3). The paper observes that servers generally underutilize CPU
// cycles but highly utilize memory (input caching, model aggregation,
// validation). Each job gets deterministic per-job CPU and memory activity
// levels relative to its proportional allocation, with family-dependent
// shifts (input-pipeline-heavy models use more CPU).

#ifndef SRC_TELEMETRY_HOST_MODEL_H_
#define SRC_TELEMETRY_HOST_MODEL_H_

#include "src/workload/job.h"

namespace philly {

struct HostActivity {
  double cpu_fraction = 0.3;     // of the job's proportional CPU allocation
  double memory_fraction = 0.8;  // of the job's proportional memory allocation
};

// Deterministic given (job id, model family); `seed` decorrelates runs.
HostActivity HostActivityFor(const JobSpec& job, uint64_t seed);

}  // namespace philly

#endif  // SRC_TELEMETRY_HOST_MODEL_H_
