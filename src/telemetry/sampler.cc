#include "src/telemetry/sampler.h"

#include <algorithm>
#include <cmath>

#include "src/common/distributions.h"

namespace philly {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

double HashedNormal(uint64_t seed, uint64_t index) {
  const uint64_t h = Mix64(seed ^ (index * 0x9E3779B97F4A7C15ull));
  const double u = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
  return Probit(u);
}

}  // namespace

GangliaSampler::GangliaSampler(SamplerConfig config) : config_(config) {}

void GangliaSampler::SampleSegment(
    double expected_util, SimDuration duration, uint64_t seed,
    const std::function<void(double value, double weight)>& sink) const {
  if (duration <= 0) {
    return;
  }
  const double total_minutes = std::max(1.0, ToMinutes(duration));
  const int samples = static_cast<int>(std::min<double>(
      config_.max_samples_per_segment, std::ceil(total_minutes)));
  const double weight = total_minutes / samples;

  // AR(1) around the expected level, stationary: x_t = rho*x_{t-1} + e_t with
  // e ~ N(0, sigma*sqrt(1-rho^2)) so the marginal stddev is jitter_sigma.
  const double rho = config_.ar1_rho;
  const double innovation_sigma = config_.jitter_sigma * std::sqrt(1.0 - rho * rho);
  double x = config_.jitter_sigma * HashedNormal(seed, 0);
  for (int i = 0; i < samples; ++i) {
    const double value = std::clamp(expected_util + x, 0.0, 1.0);
    sink(value * 100.0, weight);  // Ganglia reports percent
    x = rho * x + innovation_sigma * HashedNormal(seed, static_cast<uint64_t>(i) + 1);
  }
}

}  // namespace philly
