#include "src/telemetry/sampler.h"

namespace philly {

GangliaSampler::GangliaSampler(SamplerConfig config) : config_(config) {}

}  // namespace philly
