// Ganglia-style per-minute telemetry sampling (§2.4).
//
// Ganglia reports hardware counters once per minute per GPU. At paper scale
// that is ~1e8 GPU-minutes over the trace window, so raw samples are never
// materialized: a job's execution is split into segments of constant expected
// utilization (segments change when co-tenants arrive/leave), and each
// segment contributes a bounded number of representative per-minute samples,
// weight-scaled so aggregate statistics are unchanged. Within-segment
// variation follows an AR(1) process — successive minutes of a training job
// are strongly correlated (iterations look alike), with occasional dips from
// checkpointing and input stalls.

#ifndef SRC_TELEMETRY_SAMPLER_H_
#define SRC_TELEMETRY_SAMPLER_H_

#include <cstdint>
#include <functional>

#include "src/common/sim_time.h"

namespace philly {

struct SamplerConfig {
  double ar1_rho = 0.80;
  double jitter_sigma = 0.08;  // absolute utilization points
  // Cap on representative samples per segment; weights preserve total mass.
  int max_samples_per_segment = 64;
};

class GangliaSampler {
 public:
  explicit GangliaSampler(SamplerConfig config = {});

  // Emits per-minute utilization observations for a segment with expected
  // utilization `expected_util` lasting `duration`. `sink(value, weight)` is
  // called with weight = number of GPU-minutes the observation represents
  // (per GPU; multiply by the job's GPU count at the call site if needed).
  // Deterministic given `seed`.
  void SampleSegment(double expected_util, SimDuration duration, uint64_t seed,
                     const std::function<void(double value, double weight)>& sink) const;

  const SamplerConfig& config() const { return config_; }

 private:
  SamplerConfig config_;
};

}  // namespace philly

#endif  // SRC_TELEMETRY_SAMPLER_H_
