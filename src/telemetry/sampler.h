// Ganglia-style per-minute telemetry sampling (§2.4).
//
// Ganglia reports hardware counters once per minute per GPU. At paper scale
// that is ~1e8 GPU-minutes over the trace window, so raw samples are never
// materialized: a job's execution is split into segments of constant expected
// utilization (segments change when co-tenants arrive/leave), and each
// segment contributes a bounded number of representative per-minute samples,
// weight-scaled so aggregate statistics are unchanged. Within-segment
// variation follows an AR(1) process — successive minutes of a training job
// are strongly correlated (iterations look alike), with occasional dips from
// checkpointing and input stalls.

#ifndef SRC_TELEMETRY_SAMPLER_H_
#define SRC_TELEMETRY_SAMPLER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/distributions.h"
#include "src/common/sim_time.h"

namespace philly {

struct SamplerConfig {
  double ar1_rho = 0.80;
  double jitter_sigma = 0.08;  // absolute utilization points
  // Cap on representative samples per segment; weights preserve total mass.
  int max_samples_per_segment = 64;
};

namespace sampler_internal {

inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

inline double HashedNormal(uint64_t seed, uint64_t index) {
  const uint64_t h = Mix64(seed ^ (index * 0x9E3779B97F4A7C15ull));
  const double u = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
  return Probit(u);
}

}  // namespace sampler_internal

class GangliaSampler {
 public:
  explicit GangliaSampler(SamplerConfig config = {});

  // Emits per-minute utilization observations for a segment with expected
  // utilization `expected_util` lasting `duration`. `sink(value, weight)` is
  // called with weight = number of GPU-minutes the observation represents
  // (per GPU; multiply by the job's GPU count at the call site if needed).
  // Deterministic given `seed`. Templated over the sink so the hottest inner
  // loop of analysis (millions of per-segment observations) inlines the sink
  // instead of dispatching through a std::function per observation.
  template <typename Sink>
  void SampleSegment(double expected_util, SimDuration duration, uint64_t seed,
                     const Sink& sink) const {
    if (duration <= 0) {
      return;
    }
    const double total_minutes = std::max(1.0, ToMinutes(duration));
    const int samples = static_cast<int>(std::min<double>(
        config_.max_samples_per_segment, std::ceil(total_minutes)));
    const double weight = total_minutes / samples;

    // AR(1) around the expected level, stationary: x_t = rho*x_{t-1} + e_t
    // with e ~ N(0, sigma*sqrt(1-rho^2)) so the marginal stddev is
    // jitter_sigma.
    const double rho = config_.ar1_rho;
    const double innovation_sigma =
        config_.jitter_sigma * std::sqrt(1.0 - rho * rho);
    double x = config_.jitter_sigma * sampler_internal::HashedNormal(seed, 0);
    for (int i = 0; i < samples; ++i) {
      const double value = std::clamp(expected_util + x, 0.0, 1.0);
      sink(value * 100.0, weight);  // Ganglia reports percent
      x = rho * x + innovation_sigma *
                        sampler_internal::HashedNormal(
                            seed, static_cast<uint64_t>(i) + 1);
    }
  }

  const SamplerConfig& config() const { return config_; }

 private:
  SamplerConfig config_;
};

}  // namespace philly

#endif  // SRC_TELEMETRY_SAMPLER_H_
