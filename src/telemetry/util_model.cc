#include "src/telemetry/util_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/workload/model_zoo.h"

namespace philly {

UtilizationModel::UtilizationModel(UtilModelConfig config) : config_(config) {}

double UtilizationModel::DistributionPenalty(int num_servers, double comm_intensity,
                                             int num_gpus) const {
  assert(num_servers >= 1);
  if (num_servers <= 1) {
    return 1.0;
  }
  const double spread = 1.0 - 1.0 / static_cast<double>(num_servers);
  const double gang_growth =
      num_gpus > 2 ? 1.0 + config_.gang_size_comm_growth *
                               std::log2(static_cast<double>(num_gpus) / 2.0)
                   : 1.0;
  return std::max(
      0.05, 1.0 - config_.dist_sync_coeff * comm_intensity * gang_growth * spread);
}

double UtilizationModel::ShardUtilization(double base_after_dist,
                                          const ShardContext& shard) const {
  const double pcie = std::min(shard.pcie_load, config_.pcie_load_cap);
  const double net = std::min(shard.net_load, config_.net_load_cap);
  const double factor =
      (1.0 - config_.pcie_coeff * pcie) * (1.0 - config_.net_coeff * net);
  return std::clamp(base_after_dist * factor, 0.0, 1.0);
}

double UtilizationModel::ActivityOf(const JobActivity& activity) const {
  return activity.base_utilization * DistributionPenalty(activity.num_servers,
                                                         activity.comm_intensity,
                                                         activity.num_gpus);
}

double UtilizationModel::NeighborLoadShare(const JobActivity& cotenant,
                                           int cotenant_shard_gpus,
                                           int server_capacity) const {
  assert(server_capacity > 0);
  const double share =
      static_cast<double>(cotenant_shard_gpus) / static_cast<double>(server_capacity);
  const double discount =
      cotenant.num_gpus <= 1 ? config_.single_gpu_comm_discount : 1.0;
  return share * ActivityOf(cotenant) * cotenant.comm_intensity * discount;
}

double UtilizationModel::ExpectedUtilization(
    const JobSpec& job, const Placement& placement, const Cluster& cluster,
    FunctionRef<JobActivity(JobId)> activity_of) const {
  if (placement.Empty()) {
    return 0.0;
  }
  const ModelProfile& profile = ProfileOf(job.model);
  const double base_after_dist =
      job.base_utilization * DistributionPenalty(placement.NumServers(),
                                                 profile.comm_intensity, job.num_gpus);

  double weighted = 0.0;
  int total_gpus = 0;
  for (const auto& shard : placement.shards) {
    ShardContext ctx;
    ctx.shard_gpus = shard.gpus;
    ctx.server_capacity = cluster.ServerCapacity(shard.server);
    for (const auto& tenant : cluster.TenantsOnServer(shard.server)) {
      if (tenant.job == job.id) {
        continue;
      }
      const JobActivity cotenant = activity_of(tenant.job);
      const double load = NeighborLoadShare(cotenant, tenant.gpus, ctx.server_capacity);
      ctx.pcie_load += load;
      if (cotenant.num_servers > 1) {
        ctx.net_load += load;
      }
    }
    weighted += ShardUtilization(base_after_dist, ctx) * shard.gpus;
    total_gpus += shard.gpus;
  }
  return total_gpus > 0 ? weighted / static_cast<double>(total_gpus) : 0.0;
}

double UtilizationModel::ImagesPerSecond(const JobSpec& job, double utilization) const {
  const ModelProfile& profile = ProfileOf(job.model);
  if (profile.images_per_sec_at_full_util <= 0.0) {
    return 0.0;
  }
  return profile.images_per_sec_at_full_util * utilization * job.num_gpus;
}

}  // namespace philly
