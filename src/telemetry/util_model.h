// GPU utilization model (§3.2), calibrated to the paper's controlled
// ResNet-50 experiment (Table 4).
//
// A job's utilization of its (exclusively allocated) GPUs is modeled as
//
//   util = base
//        x DistributionPenalty(num_servers, comm_intensity)   [multi-server sync]
//        x (1 - pcie_coeff * pcie_load)                       [PCIe contention]
//        x (1 - net_coeff * net_load)                         [RDMA contention]
//
// where `base` is the job's single-dedicated-server utilization (model family
// x batch size prior from src/workload), and the load terms aggregate the
// activity of co-tenant jobs sharing the server/fabric. Calibration points,
// all from Table 4 (ResNet-50, 2 GPUs, 4-GPU P100 servers, batch 32):
//
//   SameServer  57.7%  -> base = 0.577, no penalties
//   DiffServer  49.6%  -> DistributionPenalty(2, 1.0) = 0.8596
//   IntraServer 37.5%  -> one 2-GPU co-tenant per server: pcie factor 0.755
//   InterServer 36.5%  -> two distributed co-tenants: pcie x net factor 0.736
//
// The same mechanism extrapolated to the aggregate workload produces the
// shapes of Fig 5/6, Table 3, and Table 5 (validated in tests and benches).

#ifndef SRC_TELEMETRY_UTIL_MODEL_H_
#define SRC_TELEMETRY_UTIL_MODEL_H_

#include <span>

#include "src/cluster/cluster.h"
#include "src/common/function_ref.h"
#include "src/workload/job.h"

namespace philly {

struct UtilModelConfig {
  // sigma1: asymptotic fraction of time lost to cross-server model
  // aggregation for a comm_intensity-1.0 model. Fitted from DiffServer:
  // 1 - 0.2808 * (1 - 1/2) = 0.8596.
  double dist_sync_coeff = 0.2808;
  // Gangs larger than the 2-GPU calibration point push more gradient traffic
  // per aggregation round: effective comm intensity grows with
  // log2(num_gpus / 2). Fitted so a 16-GPU job on two dedicated servers lands
  // near Table 5's 43.7% (and Fig 6's qualitative gap to 8-GPU jobs).
  double gang_size_comm_growth = 0.27;
  // PCIe contention: factor = 1 - pcie_coeff * min(load, pcie_load_cap).
  double pcie_coeff = 0.85;
  double pcie_load_cap = 0.60;
  // RDMA/network contention for distributed jobs on shared servers.
  double net_coeff = 0.27;
  double net_load_cap = 1.0;
  // 1-GPU co-tenants exercise PCIe only for input loading, not gradient
  // exchange; their contribution to neighbor load is discounted.
  double single_gpu_comm_discount = 0.25;
};

// A co-tenant-visible summary of a running job's activity.
struct JobActivity {
  double base_utilization = 0.0;
  double comm_intensity = 1.0;
  int num_gpus = 1;
  int num_servers = 1;
};

// Per-shard contention context for the job under evaluation.
struct ShardContext {
  int shard_gpus = 0;
  int server_capacity = 1;
  double pcie_load = 0.0;  // sum of co-tenant activity shares on this server
  double net_load = 0.0;   // same, restricted to multi-server co-tenants
};

class UtilizationModel {
 public:
  explicit UtilizationModel(UtilModelConfig config = {});

  // Multiplicative penalty for running on `num_servers` servers with a gang
  // of `num_gpus` workers (the default matches the 2-GPU calibration point).
  double DistributionPenalty(int num_servers, double comm_intensity,
                             int num_gpus = 2) const;

  // Utilization of the GPUs in one shard, all penalties applied.
  double ShardUtilization(double base_after_dist, const ShardContext& shard) const;

  // Activity proxy a job exposes to its neighbors: base utilization after the
  // distribution penalty (interference is deliberately not recursed — see
  // DESIGN.md).
  double ActivityOf(const JobActivity& activity) const;

  // One co-tenant shard's contribution to a neighbor's PCIe load.
  double NeighborLoadShare(const JobActivity& cotenant, int cotenant_shard_gpus,
                           int server_capacity) const;

  // Expected utilization (weighted by shard size) of `job` placed as
  // `placement` on `cluster`; `activity_of` resolves co-tenant jobs. The
  // resolver is taken by non-owning reference (this is the hottest call in a
  // scheduling-heavy run: one invocation per co-tenant per refresh).
  double ExpectedUtilization(const JobSpec& job, const Placement& placement,
                             const Cluster& cluster,
                             FunctionRef<JobActivity(JobId)> activity_of) const;

  // Training throughput (images/s across the whole job) for image models, 0
  // for models without a throughput conversion; reproduces Table 4 row 2.
  double ImagesPerSecond(const JobSpec& job, double utilization) const;

  const UtilModelConfig& config() const { return config_; }

 private:
  UtilModelConfig config_;
};

}  // namespace philly

#endif  // SRC_TELEMETRY_UTIL_MODEL_H_
