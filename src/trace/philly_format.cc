#include "src/trace/philly_format.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <ostream>

#include "src/common/csv.h"
#include "src/common/json.h"
#include "src/telemetry/host_model.h"

namespace philly {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::string Hex(uint64_t v, int digits) {
  // Keep exactly `digits` hex characters (the public trace uses short hashes).
  if (digits < 16) {
    v &= (1ull << (4 * digits)) - 1;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%0*" PRIx64, digits, v);
  return buf;
}

// Reconstructs each segment's absolute interval by replaying the job's
// attempts in order (segments never span attempt boundaries).
template <typename Visitor>
void ForEachSegmentInterval(const JobRecord& job, Visitor&& visit) {
  size_t segment_index = 0;
  for (const auto& attempt : job.attempts) {
    if (attempt.prerun) {
      continue;  // pool time; not on cluster machines
    }
    SimTime cursor = attempt.start;
    SimDuration remaining = attempt.Duration();
    while (remaining > 0 && segment_index < job.util_segments.size()) {
      const UtilSegment& segment = job.util_segments[segment_index];
      const SimDuration take = std::min<SimDuration>(segment.duration, remaining);
      visit(attempt, segment, cursor, take);
      cursor += take;
      remaining -= take;
      ++segment_index;
    }
  }
}

}  // namespace

PhillyTracesExporter::PhillyTracesExporter(const ClusterConfig& cluster,
                                           PhillyTracesOptions options)
    : cluster_(cluster), options_(options), num_servers_(cluster.TotalServers()) {}

std::string PhillyTracesExporter::Timestamp(SimTime t) const {
  const std::time_t wall = static_cast<std::time_t>(options_.epoch_offset + t);
  std::tm tm_utc{};
  gmtime_r(&wall, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_utc);
  return buf;
}

std::string PhillyTracesExporter::JobIdOf(const JobRecord& job) {
  return "application_" + std::to_string(1506816000 + job.spec.submit_time) + "_" +
         std::to_string(job.spec.id);
}

std::string PhillyTracesExporter::VcHash(VcId vc) {
  return Hex(Mix64(static_cast<uint64_t>(vc) ^ 0x5C0FFull), 10);
}

std::string PhillyTracesExporter::UserHash(UserId user) {
  return Hex(Mix64(static_cast<uint64_t>(user) ^ 0xA11CEull), 10);
}

std::string PhillyTracesExporter::MachineIp(ServerId server) {
  return "10." + std::to_string(server / 256 + 1) + "." +
         std::to_string(server % 256) + ".42";
}

void PhillyTracesExporter::WriteJobLog(const std::vector<JobRecord>& jobs,
                                       std::ostream& out) const {
  out << "[\n";
  bool first_job = true;
  for (const auto& job : jobs) {
    if (!first_job) {
      out << ",\n";
    }
    first_job = false;
    const char* status = "Failed";
    if (job.status == JobStatus::kPassed) {
      status = "Pass";
    } else if (job.status == JobStatus::kKilled) {
      status = "Killed";
    }
    out << "  {\"status\": \"" << status << "\", \"vc\": \"" << VcHash(job.spec.vc)
        << "\", \"jobid\": \"" << JobIdOf(job) << "\", \"user\": \""
        << UserHash(job.spec.user) << "\", \"submitted_time\": \""
        << Timestamp(job.spec.submit_time) << "\", \"attempts\": [";
    bool first_attempt = true;
    for (const auto& attempt : job.attempts) {
      if (attempt.prerun) {
        continue;
      }
      if (!first_attempt) {
        out << ", ";
      }
      first_attempt = false;
      out << "{\"start_time\": \"" << Timestamp(attempt.start)
          << "\", \"end_time\": \"" << Timestamp(attempt.end) << "\", \"detail\": [";
      bool first_shard = true;
      for (const auto& shard : attempt.placement.shards) {
        if (!first_shard) {
          out << ", ";
        }
        first_shard = false;
        out << "{\"ip\": \"" << MachineIp(shard.server) << "\", \"gpus\": [";
        for (int g = 0; g < shard.gpus; ++g) {
          if (g > 0) {
            out << ", ";
          }
          out << "\"gpu" << g << "\"";
        }
        out << "]}";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "\n]\n";
}

void PhillyTracesExporter::WriteMachineList(std::ostream& out) const {
  CsvWriter csv(out);
  csv.Row("machineId", "number of GPUs");
  int server = 0;
  for (const auto& sku : cluster_.skus) {
    for (int i = 0; i < sku.racks * sku.servers_per_rack; ++i) {
      csv.Row("m" + std::to_string(server++), sku.gpus_per_server);
    }
  }
}

std::vector<PhillyTracesExporter::MachineSeries> PhillyTracesExporter::BuildSeries(
    const std::vector<JobRecord>& jobs, size_t* num_buckets) const {
  SimTime horizon = 0;
  for (const auto& job : jobs) {
    horizon = std::max(horizon, job.finish_time);
    for (const auto& attempt : job.attempts) {
      horizon = std::max(horizon, attempt.end);
    }
  }
  const SimDuration period = std::max<SimDuration>(60, options_.util_sample_period);
  *num_buckets = static_cast<size_t>(horizon / period) + 1;

  std::vector<MachineSeries> series(static_cast<size_t>(num_servers_));
  for (auto& machine : series) {
    machine.busy_gpu_seconds.assign(*num_buckets, 0.0);
    machine.util_gpu_seconds.assign(*num_buckets, 0.0);
  }
  for (const auto& job : jobs) {
    ForEachSegmentInterval(job, [&](const AttemptRecord& attempt,
                                    const UtilSegment& segment, SimTime start,
                                    SimDuration length) {
      for (const auto& shard : attempt.placement.shards) {
        if (shard.server < 0 || shard.server >= num_servers_) {
          continue;
        }
        auto& machine = series[static_cast<size_t>(shard.server)];
        // Spread the interval across the sample buckets it covers.
        SimTime t = start;
        SimDuration remaining = length;
        while (remaining > 0) {
          const auto bucket = static_cast<size_t>(t / period);
          const SimDuration bucket_end = static_cast<SimDuration>(bucket + 1) * period;
          const SimDuration take = std::min<SimDuration>(remaining, bucket_end - t);
          machine.busy_gpu_seconds[bucket] += static_cast<double>(take) * shard.gpus;
          machine.util_gpu_seconds[bucket] +=
              static_cast<double>(take) * shard.gpus * segment.expected_util;
          t += take;
          remaining -= take;
        }
      }
    });
  }
  return series;
}

void PhillyTracesExporter::WriteGpuUtil(const std::vector<JobRecord>& jobs,
                                        std::ostream& out) const {
  size_t num_buckets = 0;
  const auto series = BuildSeries(jobs, &num_buckets);
  CsvWriter csv(out);
  csv.Row("time", "machineId", "gpu_util");
  const SimDuration period = std::max<SimDuration>(60, options_.util_sample_period);
  for (size_t bucket = 0; bucket < num_buckets; ++bucket) {
    const std::string when = Timestamp(static_cast<SimTime>(bucket) *
                                       static_cast<SimTime>(period));
    for (int server = 0; server < num_servers_; ++server) {
      const auto& machine = series[static_cast<size_t>(server)];
      if (machine.busy_gpu_seconds[bucket] <= 0.0) {
        continue;  // the public trace omits idle machines' rows at times too
      }
      const double util =
          100.0 * machine.util_gpu_seconds[bucket] / machine.busy_gpu_seconds[bucket];
      csv.Row(when, "m" + std::to_string(server), util);
    }
  }
}

void PhillyTracesExporter::WriteCpuUtil(const std::vector<JobRecord>& jobs,
                                        std::ostream& out) const {
  size_t num_buckets = 0;
  const auto series = BuildSeries(jobs, &num_buckets);
  // Host CPU activity tracks the allocated share times per-job CPU activity;
  // approximate with a fleet-typical 30% of the allocated share.
  CsvWriter csv(out);
  csv.Row("time", "machineId", "cpu_util");
  const SimDuration period = std::max<SimDuration>(60, options_.util_sample_period);
  Cluster cluster(cluster_);
  for (size_t bucket = 0; bucket < num_buckets; ++bucket) {
    const std::string when = Timestamp(static_cast<SimTime>(bucket) *
                                       static_cast<SimTime>(period));
    for (int server = 0; server < num_servers_; ++server) {
      const auto& machine = series[static_cast<size_t>(server)];
      if (machine.busy_gpu_seconds[bucket] <= 0.0) {
        continue;
      }
      const double gpu_share =
          machine.busy_gpu_seconds[bucket] /
          (static_cast<double>(period) * cluster.ServerCapacity(server));
      csv.Row(when, "m" + std::to_string(server), 100.0 * 0.30 * gpu_share);
    }
  }
}

void PhillyTracesExporter::WriteMemUtil(const std::vector<JobRecord>& jobs,
                                        std::ostream& out) const {
  size_t num_buckets = 0;
  const auto series = BuildSeries(jobs, &num_buckets);
  CsvWriter csv(out);
  csv.Row("time", "machineId", "mem_total_gb", "mem_free_gb");
  const SimDuration period = std::max<SimDuration>(60, options_.util_sample_period);
  Cluster cluster(cluster_);
  const double total = cluster_.memory_gb_per_server;
  for (size_t bucket = 0; bucket < num_buckets; ++bucket) {
    const std::string when = Timestamp(static_cast<SimTime>(bucket) *
                                       static_cast<SimTime>(period));
    for (int server = 0; server < num_servers_; ++server) {
      const auto& machine = series[static_cast<size_t>(server)];
      if (machine.busy_gpu_seconds[bucket] <= 0.0) {
        continue;
      }
      const double gpu_share =
          machine.busy_gpu_seconds[bucket] /
          (static_cast<double>(period) * cluster.ServerCapacity(server));
      // Memory runs hot (Fig 7): ~80% of the proportional allocation.
      const double used = total * gpu_share * 0.80;
      csv.Row(when, "m" + std::to_string(server), total, total - used);
    }
  }
}

bool PhillyTracesExporter::WriteDirectory(const std::vector<JobRecord>& jobs,
                                          const std::string& directory) const {
  std::ofstream job_log(directory + "/cluster_job_log");
  std::ofstream machines(directory + "/cluster_machine_list");
  std::ofstream gpu_util(directory + "/cluster_gpu_util");
  std::ofstream cpu_util(directory + "/cluster_cpu_util");
  std::ofstream mem_util(directory + "/cluster_mem_util");
  if (!job_log || !machines || !gpu_util || !cpu_util || !mem_util) {
    return false;
  }
  WriteJobLog(jobs, job_log);
  WriteMachineList(machines);
  WriteGpuUtil(jobs, gpu_util);
  WriteCpuUtil(jobs, cpu_util);
  WriteMemUtil(jobs, mem_util);
  return true;
}

PhillyTracesImporter::PhillyTracesImporter(PhillyTracesOptions options)
    : options_(options) {}

bool PhillyTracesImporter::ParseTimestamp(std::string_view text, SimTime* out) const {
  std::tm tm_utc{};
  int year = 0;
  int month = 0;
  int day = 0;
  int hour = 0;
  int minute = 0;
  int second = 0;
  const std::string buf(text);
  if (std::sscanf(buf.c_str(), "%d-%d-%d %d:%d:%d", &year, &month, &day, &hour,
                  &minute, &second) != 6) {
    return false;
  }
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_mon = month - 1;
  tm_utc.tm_mday = day;
  tm_utc.tm_hour = hour;
  tm_utc.tm_min = minute;
  tm_utc.tm_sec = second;
  const std::time_t wall = timegm(&tm_utc);
  if (wall == static_cast<std::time_t>(-1)) {
    return false;
  }
  *out = static_cast<SimTime>(wall) - options_.epoch_offset;
  return true;
}

std::vector<JobRecord> PhillyTracesImporter::ImportJobLog(std::string_view json_text,
                                                          std::string* error) {
  std::vector<JobRecord> jobs;
  std::string parse_error;
  const JsonValue root = JsonValue::Parse(json_text, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) {
      *error = parse_error;
    }
    return jobs;
  }
  const auto intern = [](auto& table, const std::string& key) {
    const auto it = table.find(key);
    if (it != table.end()) {
      return it->second;
    }
    const auto id = static_cast<typename std::decay_t<decltype(table)>::mapped_type>(
        table.size());
    table.emplace(key, id);
    return id;
  };

  JobId next_id = 1;
  for (const JsonValue& entry : root.AsArray()) {
    JobRecord job;
    job.spec.id = next_id++;
    job.spec.vc = intern(vc_ids_, entry["vc"].AsString());
    job.spec.user = intern(user_ids_, entry["user"].AsString());
    SimTime submitted = 0;
    if (!ParseTimestamp(entry["submitted_time"].AsString(), &submitted)) {
      continue;  // unusable without a submission time
    }
    job.spec.submit_time = submitted;

    const std::string& status = entry["status"].AsString();
    if (status == "Pass") {
      job.status = JobStatus::kPassed;
    } else if (status == "Killed") {
      job.status = JobStatus::kKilled;
    } else {
      job.status = JobStatus::kUnsuccessful;
    }

    const auto& attempts = entry["attempts"].AsArray();
    for (const JsonValue& attempt_json : attempts) {
      SimTime start = 0;
      SimTime end = 0;
      if (!ParseTimestamp(attempt_json["start_time"].AsString(), &start) ||
          !ParseTimestamp(attempt_json["end_time"].AsString(), &end) || end < start) {
        continue;  // unstarted or truncated attempt
      }
      AttemptRecord attempt;
      attempt.index = static_cast<int>(job.attempts.size());
      attempt.start = start;
      attempt.end = end;
      for (const JsonValue& detail : attempt_json["detail"].AsArray()) {
        const int gpus = static_cast<int>(detail["gpus"].size());
        if (gpus <= 0) {
          continue;
        }
        attempt.placement.shards.push_back(
            {intern(machine_ids_, detail["ip"].AsString()), gpus});
      }
      job.attempts.push_back(std::move(attempt));
    }
    if (!job.attempts.empty()) {
      // Demand: the gang size of the first placed attempt.
      job.spec.num_gpus = std::max(1, job.attempts.front().placement.NumGpus());
      // Non-final attempts failed (that is why there was another attempt);
      // the final one failed iff the job ended unsuccessful.
      for (size_t i = 0; i + 1 < job.attempts.size(); ++i) {
        job.attempts[i].failed = true;
      }
      if (job.status == JobStatus::kUnsuccessful) {
        job.attempts.back().failed = true;
      }
      WaitRecord wait;
      wait.ready_time = job.spec.submit_time;
      wait.wait = std::max<SimDuration>(
          0, job.attempts.front().start - job.spec.submit_time);
      job.waits.push_back(wait);
      job.finish_time = job.attempts.back().end;
      double gpu_seconds = 0.0;
      for (const auto& attempt : job.attempts) {
        gpu_seconds += attempt.GpuTime();
      }
      job.gpu_seconds = gpu_seconds;
    } else {
      job.spec.num_gpus = 1;
      job.finish_time = job.spec.submit_time;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace philly
