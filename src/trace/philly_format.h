// Exporter for the *published* philly-traces artifact layout [38]
// (https://github.com/msr-fiddle/philly-traces), so tooling written against
// the public release can run on simulated traces.
//
// Files produced (best-effort match to the public schema):
//   cluster_job_log          JSON array; per job: status ("Pass"/"Killed"/
//                            "Failed"), vc hash, jobid ("application_<ts>_<n>"),
//                            submitted_time, user hash, attempts[] each with
//                            start_time/end_time and detail[] of {ip, gpus[]}
//   cluster_machine_list     CSV: machineId,number of GPUs
//   cluster_gpu_util         CSV: time,machineId,<per-GPU utilization>, one
//                            row per machine per sample period, averaged from
//                            the jobs' utilization segments
//   cluster_cpu_util         CSV: time,machineId,cpu_util
//   cluster_mem_util         CSV: time,machineId,mem_total,mem_free
//
// Known approximations (documented in DESIGN.md): timestamps are rendered
// from simulated seconds against a fixed epoch (the trace window's nominal
// start); vc/user identifiers are deterministic hashes, not Microsoft's; GPU
// utilization is reported per machine (mean over its in-use GPUs) rather than
// per physical GPU index.

#ifndef SRC_TRACE_PHILLY_FORMAT_H_
#define SRC_TRACE_PHILLY_FORMAT_H_

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sched/records.h"

namespace philly {

struct PhillyTracesOptions {
  // Sampling period for the utilization CSVs. The public trace is per-minute;
  // 10 minutes keeps full-scale exports a few hundred MB smaller while
  // preserving the curves.
  SimDuration util_sample_period = Minutes(10);
  // Nominal wall-clock of simulated t=0, seconds since the Unix epoch
  // (2017-10-01 00:00:00 UTC, matching the paper's collection window).
  int64_t epoch_offset = 1506816000;
};

class PhillyTracesExporter {
 public:
  PhillyTracesExporter(const ClusterConfig& cluster, PhillyTracesOptions options = {});

  void WriteJobLog(const std::vector<JobRecord>& jobs, std::ostream& out) const;
  void WriteMachineList(std::ostream& out) const;
  // Reconstructs per-machine utilization over time from the jobs' placement
  // and segment records, then emits one row per (sample period, machine).
  void WriteGpuUtil(const std::vector<JobRecord>& jobs, std::ostream& out) const;
  void WriteCpuUtil(const std::vector<JobRecord>& jobs, std::ostream& out) const;
  void WriteMemUtil(const std::vector<JobRecord>& jobs, std::ostream& out) const;

  // Writes all five files into `directory`. Returns false on I/O failure.
  bool WriteDirectory(const std::vector<JobRecord>& jobs,
                      const std::string& directory) const;

  // Formatting helpers (exposed for tests).
  std::string Timestamp(SimTime t) const;
  static std::string JobIdOf(const JobRecord& job);
  static std::string VcHash(VcId vc);
  static std::string UserHash(UserId user);
  static std::string MachineIp(ServerId server);

 private:
  // Per-machine busy GPU-time and utilization-weighted GPU-time per sample
  // bucket, rebuilt from segments.
  struct MachineSeries {
    std::vector<double> busy_gpu_seconds;
    std::vector<double> util_gpu_seconds;
  };
  std::vector<MachineSeries> BuildSeries(const std::vector<JobRecord>& jobs,
                                         size_t* num_buckets) const;

  ClusterConfig cluster_;
  PhillyTracesOptions options_;
  int num_servers_ = 0;
};

// Importer for the real public release: parses a cluster_job_log (the JSON
// file shipped by msr-fiddle/philly-traces, or our exporter's output) into
// JobRecords so the analysis pipeline can run on actual production data.
// Only the information present in the job log is populated: status, VC and
// user (hashes mapped to dense ids), submission time, attempts with start /
// end / placement. Telemetry-dependent analyses (Fig 5/6/7, Tables 3/5) need
// utilization segments the public job log does not carry.
class PhillyTracesImporter {
 public:
  explicit PhillyTracesImporter(PhillyTracesOptions options = {});

  // Parses the JSON text. On malformed input returns an empty vector and
  // sets *error (when provided).
  std::vector<JobRecord> ImportJobLog(std::string_view json_text,
                                      std::string* error = nullptr);

  // Identifier spaces discovered during import.
  int num_vcs() const { return static_cast<int>(vc_ids_.size()); }
  int num_users() const { return static_cast<int>(user_ids_.size()); }
  int num_machines() const { return static_cast<int>(machine_ids_.size()); }

  // Parses "YYYY-MM-DD HH:MM:SS" into seconds relative to the options'
  // epoch_offset. Returns false on malformed input (e.g. "None").
  bool ParseTimestamp(std::string_view text, SimTime* out) const;

 private:
  PhillyTracesOptions options_;
  std::map<std::string, VcId, std::less<>> vc_ids_;
  std::map<std::string, UserId, std::less<>> user_ids_;
  std::map<std::string, ServerId, std::less<>> machine_ids_;
};

}  // namespace philly

#endif  // SRC_TRACE_PHILLY_FORMAT_H_
