#include "src/trace/trace_io.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "src/common/csv.h"
#include "src/common/strings.h"

namespace philly {
namespace {

// Per-row numeric parser. The old ToInt ignored std::from_chars errors, so
// "garbage" and "" silently became 0 and flowed into analyses; every
// malformed field now counts into the stats, and `row_ok` lets strict mode
// drop the row.
class FieldParser {
 public:
  explicit FieldParser(TraceReadStats* stats) : stats_(stats) {}

  void BeginRow() { row_ok_ = true; }
  bool row_ok() const { return row_ok_; }

  int64_t Int(std::string_view s) {
    int64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || ptr != s.data() + s.size()) {
      RecordError();
      return 0;
    }
    return v;
  }

  double Double(std::string_view s) {
    const std::string text(s);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      RecordError();
      return 0.0;
    }
    return v;
  }

 private:
  void RecordError() {
    row_ok_ = false;
    if (stats_ != nullptr) {
      ++stats_->numeric_parse_errors;
    }
  }

  TraceReadStats* stats_;
  bool row_ok_ = true;
};

JobStatus StatusFromString(std::string_view s) {
  if (s == "Passed") {
    return JobStatus::kPassed;
  }
  if (s == "Killed") {
    return JobStatus::kKilled;
  }
  return JobStatus::kUnsuccessful;
}

}  // namespace

void TraceWriter::WriteJobs(const std::vector<JobRecord>& jobs, std::ostream& out) {
  CsvWriter csv(out);
  csv.Row("job_id", "vc", "user", "submit_time", "num_gpus", "status", "queue_delay_s",
          "finish_time", "attempts", "retries", "gpu_seconds", "executed_epochs",
          "planned_epochs", "logs_convergence");
  for (const auto& job : jobs) {
    csv.Row(job.spec.id, job.spec.vc, job.spec.user, job.spec.submit_time,
            job.spec.num_gpus, std::string(ToString(job.status)),
            job.InitialQueueDelay(), job.finish_time,
            static_cast<int64_t>(job.attempts.size()),
            static_cast<int64_t>(job.NumRetries()), job.gpu_seconds,
            job.executed_epochs, job.spec.planned_epochs,
            static_cast<int>(job.spec.logs_convergence));
  }
}

void TraceWriter::WriteAttempts(const std::vector<JobRecord>& jobs, std::ostream& out) {
  CsvWriter csv(out);
  csv.Row("job_id", "attempt", "start", "end", "failed", "preempted", "placement");
  for (const auto& job : jobs) {
    for (const auto& attempt : job.attempts) {
      csv.Row(job.spec.id, attempt.index, attempt.start, attempt.end,
              static_cast<int>(attempt.failed), static_cast<int>(attempt.preempted),
              EncodePlacement(attempt.placement));
    }
  }
}

void TraceWriter::WriteUtilSegments(const std::vector<JobRecord>& jobs,
                                    std::ostream& out) {
  CsvWriter csv(out);
  csv.Row("job_id", "segment", "expected_util", "duration_s", "num_servers");
  for (const auto& job : jobs) {
    int index = 0;
    for (const auto& segment : job.util_segments) {
      csv.Row(job.spec.id, index++, segment.expected_util, segment.duration,
              segment.num_servers);
    }
  }
}

void TraceWriter::WriteStdoutLogs(const std::vector<JobRecord>& jobs,
                                  std::ostream& out) {
  for (const auto& job : jobs) {
    for (const auto& attempt : job.attempts) {
      if (attempt.log_tail.empty()) {
        continue;
      }
      // Length-prefixed frame: a tail line that itself looks like a frame
      // marker must not be re-parsed as one on read.
      out << "=== job " << job.spec.id << " attempt " << attempt.index
          << " lines " << attempt.log_tail.size() << '\n';
      for (const auto& line : attempt.log_tail) {
        out << line << '\n';
      }
    }
  }
}

bool TraceWriter::WriteDirectory(const std::vector<JobRecord>& jobs,
                                 const std::string& directory) {
  std::ofstream jobs_out(directory + "/jobs.csv");
  std::ofstream attempts_out(directory + "/attempts.csv");
  std::ofstream util_out(directory + "/gpu_util.csv");
  std::ofstream log_out(directory + "/stdout.log");
  if (!jobs_out || !attempts_out || !util_out || !log_out) {
    return false;
  }
  WriteJobs(jobs, jobs_out);
  WriteAttempts(jobs, attempts_out);
  WriteUtilSegments(jobs, util_out);
  WriteStdoutLogs(jobs, log_out);
  return true;
}

std::vector<JobRecord> TraceReader::ReadJobs(std::istream& jobs_csv,
                                             std::istream& attempts_csv,
                                             std::istream& util_csv,
                                             std::istream& stdout_log,
                                             const TraceReadOptions& options,
                                             TraceReadStats* stats) {
  std::vector<JobRecord> jobs;
  std::map<JobId, size_t> index;
  FieldParser parse(stats);
  const auto reject_row = [&] {
    if (stats != nullptr) {
      ++stats->rows_rejected;
    }
  };

  const auto rows = ReadCsv(jobs_csv);
  for (size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& r = rows[i];
    if (r.size() < 14) {
      reject_row();
      continue;
    }
    parse.BeginRow();
    JobRecord job;
    job.spec.id = parse.Int(r[0]);
    if (job.spec.id <= 0) {
      reject_row();
      continue;  // malformed or empty row
    }
    job.spec.vc = static_cast<VcId>(parse.Int(r[1]));
    job.spec.user = static_cast<UserId>(parse.Int(r[2]));
    job.spec.submit_time = parse.Int(r[3]);
    job.spec.num_gpus = static_cast<int>(parse.Int(r[4]));
    job.status = StatusFromString(r[5]);
    job.finish_time = parse.Int(r[7]);
    job.gpu_seconds = parse.Double(r[10]);
    job.executed_epochs = static_cast<int>(parse.Int(r[11]));
    job.spec.planned_epochs = static_cast<int>(parse.Int(r[12]));
    job.spec.logs_convergence = parse.Int(r[13]) != 0;
    WaitRecord wait;
    wait.ready_time = job.spec.submit_time;
    wait.wait = parse.Int(r[6]);
    job.waits.push_back(wait);
    if (options.strict && !parse.row_ok()) {
      reject_row();
      continue;
    }
    index.emplace(job.spec.id, jobs.size());
    jobs.push_back(std::move(job));
  }

  const auto attempt_rows = ReadCsv(attempts_csv);
  for (size_t i = 1; i < attempt_rows.size(); ++i) {
    const auto& r = attempt_rows[i];
    if (r.size() < 7) {
      reject_row();
      continue;
    }
    parse.BeginRow();
    const auto it = index.find(parse.Int(r[0]));
    if (it == index.end()) {
      reject_row();
      continue;
    }
    AttemptRecord attempt;
    attempt.index = static_cast<int>(parse.Int(r[1]));
    attempt.start = parse.Int(r[2]);
    attempt.end = parse.Int(r[3]);
    attempt.failed = parse.Int(r[4]) != 0;
    attempt.preempted = parse.Int(r[5]) != 0;
    attempt.placement = DecodePlacement(r[6]);
    if (options.strict && !parse.row_ok()) {
      reject_row();
      continue;
    }
    jobs[it->second].attempts.push_back(std::move(attempt));
  }

  const auto util_rows = ReadCsv(util_csv);
  for (size_t i = 1; i < util_rows.size(); ++i) {
    const auto& r = util_rows[i];
    if (r.size() < 5) {
      reject_row();
      continue;
    }
    parse.BeginRow();
    const auto it = index.find(parse.Int(r[0]));
    if (it == index.end()) {
      reject_row();
      continue;
    }
    UtilSegment segment{parse.Double(r[2]), parse.Int(r[3]),
                        static_cast<int>(parse.Int(r[4]))};
    if (options.strict && !parse.row_ok()) {
      reject_row();
      continue;
    }
    jobs[it->second].util_segments.push_back(segment);
  }

  // Log tails: length-prefixed frames ("=== job I attempt K lines N" followed
  // by exactly N verbatim lines), with a fallback for the legacy prefix-free
  // framing where lines attach to the current frame until the next marker.
  std::string line;
  AttemptRecord* current_attempt = nullptr;
  const auto find_attempt = [&](int64_t job_id,
                                int attempt_index) -> AttemptRecord* {
    const auto it = index.find(job_id);
    if (it == index.end()) {
      return nullptr;
    }
    for (auto& attempt : jobs[it->second].attempts) {
      if (attempt.index == attempt_index) {
        return &attempt;
      }
    }
    return nullptr;
  };
  while (std::getline(stdout_log, line)) {
    if (StartsWith(line, "=== job ")) {
      long long job_id = 0;
      int attempt_index = 0;
      long long num_lines = 0;
      const int matched =
          std::sscanf(line.c_str(), "=== job %lld attempt %d lines %lld",
                      &job_id, &attempt_index, &num_lines);
      if (matched == 3) {
        // Consume exactly num_lines lines verbatim — even ones that look
        // like frame markers.
        AttemptRecord* attempt = find_attempt(job_id, attempt_index);
        for (long long k = 0; k < num_lines && std::getline(stdout_log, line);
             ++k) {
          if (attempt != nullptr) {
            attempt->log_tail.push_back(line);
          }
        }
        current_attempt = nullptr;
        continue;
      }
      if (matched == 2) {
        current_attempt = find_attempt(job_id, attempt_index);
        continue;
      }
    }
    if (current_attempt != nullptr) {
      current_attempt->log_tail.push_back(line);
    }
  }
  return jobs;
}

}  // namespace philly
