#include "src/trace/trace_io.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "src/common/csv.h"
#include "src/common/strings.h"

namespace philly {
namespace {

int64_t ToInt(std::string_view s) {
  int64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

double ToDouble(std::string_view s) { return std::strtod(std::string(s).c_str(), nullptr); }

JobStatus StatusFromString(std::string_view s) {
  if (s == "Passed") {
    return JobStatus::kPassed;
  }
  if (s == "Killed") {
    return JobStatus::kKilled;
  }
  return JobStatus::kUnsuccessful;
}

}  // namespace

std::string EncodePlacement(const Placement& placement) {
  std::string out;
  for (size_t i = 0; i < placement.shards.size(); ++i) {
    if (i > 0) {
      out += '|';
    }
    out += std::to_string(placement.shards[i].server);
    out += ':';
    out += std::to_string(placement.shards[i].gpus);
  }
  return out;
}

Placement DecodePlacement(std::string_view text) {
  Placement placement;
  if (text.empty()) {
    return placement;
  }
  for (std::string_view part : Split(text, '|')) {
    const auto fields = Split(part, ':');
    if (fields.size() != 2) {
      continue;
    }
    placement.shards.push_back({static_cast<ServerId>(ToInt(fields[0])),
                                static_cast<int>(ToInt(fields[1]))});
  }
  return placement;
}

void TraceWriter::WriteJobs(const std::vector<JobRecord>& jobs, std::ostream& out) {
  CsvWriter csv(out);
  csv.Row("job_id", "vc", "user", "submit_time", "num_gpus", "status", "queue_delay_s",
          "finish_time", "attempts", "retries", "gpu_seconds", "executed_epochs",
          "planned_epochs", "logs_convergence");
  for (const auto& job : jobs) {
    csv.Row(job.spec.id, job.spec.vc, job.spec.user, job.spec.submit_time,
            job.spec.num_gpus, std::string(ToString(job.status)),
            job.InitialQueueDelay(), job.finish_time,
            static_cast<int64_t>(job.attempts.size()),
            static_cast<int64_t>(job.NumRetries()), job.gpu_seconds,
            job.executed_epochs, job.spec.planned_epochs,
            static_cast<int>(job.spec.logs_convergence));
  }
}

void TraceWriter::WriteAttempts(const std::vector<JobRecord>& jobs, std::ostream& out) {
  CsvWriter csv(out);
  csv.Row("job_id", "attempt", "start", "end", "failed", "preempted", "placement");
  for (const auto& job : jobs) {
    for (const auto& attempt : job.attempts) {
      csv.Row(job.spec.id, attempt.index, attempt.start, attempt.end,
              static_cast<int>(attempt.failed), static_cast<int>(attempt.preempted),
              EncodePlacement(attempt.placement));
    }
  }
}

void TraceWriter::WriteUtilSegments(const std::vector<JobRecord>& jobs,
                                    std::ostream& out) {
  CsvWriter csv(out);
  csv.Row("job_id", "segment", "expected_util", "duration_s", "num_servers");
  for (const auto& job : jobs) {
    int index = 0;
    for (const auto& segment : job.util_segments) {
      csv.Row(job.spec.id, index++, segment.expected_util, segment.duration,
              segment.num_servers);
    }
  }
}

void TraceWriter::WriteStdoutLogs(const std::vector<JobRecord>& jobs,
                                  std::ostream& out) {
  for (const auto& job : jobs) {
    for (const auto& attempt : job.attempts) {
      if (attempt.log_tail.empty()) {
        continue;
      }
      out << "=== job " << job.spec.id << " attempt " << attempt.index << '\n';
      for (const auto& line : attempt.log_tail) {
        out << line << '\n';
      }
    }
  }
}

bool TraceWriter::WriteDirectory(const std::vector<JobRecord>& jobs,
                                 const std::string& directory) {
  std::ofstream jobs_out(directory + "/jobs.csv");
  std::ofstream attempts_out(directory + "/attempts.csv");
  std::ofstream util_out(directory + "/gpu_util.csv");
  std::ofstream log_out(directory + "/stdout.log");
  if (!jobs_out || !attempts_out || !util_out || !log_out) {
    return false;
  }
  WriteJobs(jobs, jobs_out);
  WriteAttempts(jobs, attempts_out);
  WriteUtilSegments(jobs, util_out);
  WriteStdoutLogs(jobs, log_out);
  return true;
}

std::vector<JobRecord> TraceReader::ReadJobs(std::istream& jobs_csv,
                                             std::istream& attempts_csv,
                                             std::istream& util_csv,
                                             std::istream& stdout_log) {
  std::vector<JobRecord> jobs;
  std::map<JobId, size_t> index;

  const auto rows = ReadCsv(jobs_csv);
  for (size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& r = rows[i];
    if (r.size() < 14) {
      continue;
    }
    JobRecord job;
    job.spec.id = ToInt(r[0]);
    if (job.spec.id <= 0) {
      continue;  // malformed or empty row
    }
    job.spec.vc = static_cast<VcId>(ToInt(r[1]));
    job.spec.user = static_cast<UserId>(ToInt(r[2]));
    job.spec.submit_time = ToInt(r[3]);
    job.spec.num_gpus = static_cast<int>(ToInt(r[4]));
    job.status = StatusFromString(r[5]);
    job.finish_time = ToInt(r[7]);
    job.gpu_seconds = ToDouble(r[10]);
    job.executed_epochs = static_cast<int>(ToInt(r[11]));
    job.spec.planned_epochs = static_cast<int>(ToInt(r[12]));
    job.spec.logs_convergence = ToInt(r[13]) != 0;
    WaitRecord wait;
    wait.ready_time = job.spec.submit_time;
    wait.wait = ToInt(r[6]);
    job.waits.push_back(wait);
    index.emplace(job.spec.id, jobs.size());
    jobs.push_back(std::move(job));
  }

  const auto attempt_rows = ReadCsv(attempts_csv);
  for (size_t i = 1; i < attempt_rows.size(); ++i) {
    const auto& r = attempt_rows[i];
    if (r.size() < 7) {
      continue;
    }
    const auto it = index.find(ToInt(r[0]));
    if (it == index.end()) {
      continue;
    }
    AttemptRecord attempt;
    attempt.index = static_cast<int>(ToInt(r[1]));
    attempt.start = ToInt(r[2]);
    attempt.end = ToInt(r[3]);
    attempt.failed = ToInt(r[4]) != 0;
    attempt.preempted = ToInt(r[5]) != 0;
    attempt.placement = DecodePlacement(r[6]);
    jobs[it->second].attempts.push_back(std::move(attempt));
  }

  const auto util_rows = ReadCsv(util_csv);
  for (size_t i = 1; i < util_rows.size(); ++i) {
    const auto& r = util_rows[i];
    if (r.size() < 5) {
      continue;
    }
    const auto it = index.find(ToInt(r[0]));
    if (it == index.end()) {
      continue;
    }
    jobs[it->second].util_segments.push_back(
        {ToDouble(r[2]), ToInt(r[3]), static_cast<int>(ToInt(r[4]))});
  }

  // Log tails: framed blocks.
  std::string line;
  JobRecord* current_job = nullptr;
  AttemptRecord* current_attempt = nullptr;
  while (std::getline(stdout_log, line)) {
    if (StartsWith(line, "=== job ")) {
      int64_t job_id = 0;
      int attempt_index = 0;
      if (std::sscanf(line.c_str(), "=== job %lld attempt %d",
                      reinterpret_cast<long long*>(&job_id), &attempt_index) == 2) {
        current_job = nullptr;
        current_attempt = nullptr;
        const auto it = index.find(job_id);
        if (it != index.end()) {
          current_job = &jobs[it->second];
          for (auto& attempt : current_job->attempts) {
            if (attempt.index == attempt_index) {
              current_attempt = &attempt;
              break;
            }
          }
        }
      }
      continue;
    }
    if (current_attempt != nullptr) {
      current_attempt->log_tail.push_back(line);
    }
  }
  return jobs;
}

}  // namespace philly
