// Trace serialization in the style of the public philly-traces release [38].
//
// The released trace ships cluster_job_log (per-job scheduling metadata with
// per-attempt `server:gpu` placements), cluster_gpu_util, and
// cluster_mem_util/cpu_util CSVs. We write the same information from a
// SimulationResult and can read it back, so downstream tooling (and our own
// analysis round-trip tests) can treat a simulated run exactly like the
// published artifact.
//
// Schemas (one header row each):
//   jobs.csv:     job_id,vc,user,submit_time,num_gpus,status,queue_delay_s,
//                 finish_time,attempts,retries,gpu_seconds,executed_epochs,
//                 planned_epochs,logs_convergence
//   attempts.csv: job_id,attempt,start,end,failed,preempted,placement
//                 (placement is "server:gpus|server:gpus|...")
//   gpu_util.csv: job_id,segment,expected_util,duration_s,num_servers
//   stdout.log:   per-attempt log tails, framed by
//                 "=== job <id> attempt <k> lines <n>" markers followed by
//                 exactly n verbatim lines (the raw text the failure
//                 classifier consumes). The length prefix makes the framing
//                 injection-proof: a log line that itself looks like a frame
//                 marker survives the round trip. The reader also accepts the
//                 legacy prefix-free "=== job <id> attempt <k>" framing.

#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/sched/records.h"

namespace philly {

class TraceWriter {
 public:
  static void WriteJobs(const std::vector<JobRecord>& jobs, std::ostream& out);
  static void WriteAttempts(const std::vector<JobRecord>& jobs, std::ostream& out);
  static void WriteUtilSegments(const std::vector<JobRecord>& jobs, std::ostream& out);
  static void WriteStdoutLogs(const std::vector<JobRecord>& jobs, std::ostream& out);

  // Writes all four streams into `directory` (jobs.csv, attempts.csv,
  // gpu_util.csv, stdout.log). Returns false if any file cannot be opened.
  static bool WriteDirectory(const std::vector<JobRecord>& jobs,
                             const std::string& directory);
};

struct TraceReadOptions {
  // When true, a row containing any unparseable numeric field is rejected
  // whole instead of keeping the field as 0. Default preserves the tolerant
  // behavior analyses rely on for hand-edited traces.
  bool strict = false;
};

// Tally of what the reader had to tolerate (or, in strict mode, reject).
struct TraceReadStats {
  int64_t numeric_parse_errors = 0;  // fields that did not parse cleanly
  int64_t rows_rejected = 0;         // rows skipped (short, bad id, or strict)
};

class TraceReader {
 public:
  // Reads the three CSV streams back into JobRecords (specs carry the fields
  // present in the trace; modeling-only spec fields are defaulted). Attempt
  // log tails are restored from the stdout log. Numeric fields that fail to
  // parse count into *stats (historically they became 0 silently); with
  // options.strict the whole row is dropped instead.
  static std::vector<JobRecord> ReadJobs(std::istream& jobs_csv,
                                         std::istream& attempts_csv,
                                         std::istream& util_csv,
                                         std::istream& stdout_log,
                                         const TraceReadOptions& options = {},
                                         TraceReadStats* stats = nullptr);
};

}  // namespace philly

#endif  // SRC_TRACE_TRACE_IO_H_
