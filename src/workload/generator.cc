#include "src/workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/workload/model_zoo.h"

namespace philly {
namespace {

// Global GPU-demand mix (values, weights). Whole-server 8-GPU jobs are the
// dominant distributed size; >8-GPU jobs are roughly 4-5x rarer than 5-8 GPU
// ones, matching the relative frequencies behind Table 2.
constexpr int kDemandValues[] = {1, 2, 3, 4, 8, 16, 24, 32, 64};
constexpr double kDemandWeights[] = {50.0, 8.0, 1.0, 13.0, 22.0, 3.5, 0.9, 0.9, 0.45};
static_assert(std::size(kDemandValues) == std::size(kDemandWeights));

constexpr double kMinutes = 60.0;

LognormalMixture MakeDurationMixture(SizeBucket bucket) {
  // Components are (weight, median minutes, sigma): a quick debug/smoke-run
  // mode, the main training mode, and a multi-day tail. Larger jobs shift
  // right (Figure 2: jobs with more GPUs tend to run longer; ~0.5% of all
  // jobs exceed one week).
  LognormalMixture mix;
  switch (bucket) {
    case SizeBucket::k1Gpu:
      mix.AddComponent(0.25, LognormalSpec::FromMedianP90(3.0, 25.0));
      mix.AddComponent(0.70, LognormalSpec::FromMedianP90(35.0, 350.0));
      mix.AddComponent(0.05, LognormalSpec::FromMedianP90(1200.0, 7000.0));
      break;
    case SizeBucket::k2To4Gpu:
      mix.AddComponent(0.20, LognormalSpec::FromMedianP90(4.0, 30.0));
      mix.AddComponent(0.72, LognormalSpec::FromMedianP90(60.0, 600.0));
      mix.AddComponent(0.08, LognormalSpec::FromMedianP90(1500.0, 8500.0));
      break;
    case SizeBucket::k5To8Gpu:
      mix.AddComponent(0.15, LognormalSpec::FromMedianP90(5.0, 35.0));
      mix.AddComponent(0.73, LognormalSpec::FromMedianP90(95.0, 900.0));
      mix.AddComponent(0.12, LognormalSpec::FromMedianP90(1800.0, 10000.0));
      break;
    case SizeBucket::kGt8Gpu:
      mix.AddComponent(0.10, LognormalSpec::FromMedianP90(6.0, 40.0));
      mix.AddComponent(0.70, LognormalSpec::FromMedianP90(150.0, 1400.0));
      mix.AddComponent(0.20, LognormalSpec::FromMedianP90(2400.0, 13000.0));
      break;
  }
  return mix;
}

}  // namespace

WorkloadConfig WorkloadConfig::PaperScale() {
  WorkloadConfig c;
  // Five large VCs (the ones Figure 3 plots) and nine small ones; quota shares
  // oversubscribe the 2240-GPU paper-scale cluster by ~1.4x (typical for
  // fair-share YARN deployments, and what makes quota exhaustion transient
  // rather than chronic), except vc4 whose demand chronically exceeds its
  // deliberately small quota (the paper's fair-share-delay-heavy VC5). vc3 mirrors the paper's VC4 (no
  // >8-GPU jobs); vc4 mirrors VC5 (arrival load high relative to quota, so
  // fair-share delay dominates more often).
  c.vcs = {
      // Base rates are ~8% below the headline per-VC demand so that the
      // deadline-push bursts bring the 75-day job count to the paper's ~96k.
      {"vc0", 680, 11.5, 1.0, true},
      {"vc1", 600, 9.7, 1.1, true},
      {"vc2", 520, 8.7, 1.2, true},
      {"vc3", 410, 5.5, 0.9, false},
      {"vc4", 110, 5.5, 1.0, true},
      {"vc5", 122, 1.38, 0.8, true},
      {"vc6", 109, 1.29, 0.8, true},
      {"vc7", 101, 1.10, 0.8, true},
      {"vc8", 93, 1.01, 0.7, true},
      {"vc9", 89, 0.92, 0.7, true},
      {"vc10", 78, 0.83, 0.6, true},
      {"vc11", 74, 0.74, 0.6, true},
      {"vc12", 72, 0.74, 0.6, true},
      {"vc13", 62, 0.74, 0.6, true},
  };
  c.prepopulate_busy_gpus = 2800;
  return c;
}

WorkloadConfig WorkloadConfig::Scaled(int days, uint64_t seed) {
  WorkloadConfig c = PaperScale();
  c.duration = Days(days);
  c.seed = seed;
  return c;
}

int WorkloadConfig::TotalQuota() const {
  int q = 0;
  for (const auto& vc : vcs) {
    q += vc.quota_gpus;
  }
  return q;
}

double WorkloadConfig::TotalArrivalRate() const {
  double r = 0.0;
  for (const auto& vc : vcs) {
    r += vc.arrival_rate_per_hour;
  }
  return r;
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config) : config_(std::move(config)) {
  assert(!config_.vcs.empty());
  duration_by_bucket_.reserve(kNumSizeBuckets);
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    duration_by_bucket_.push_back(MakeDurationMixture(static_cast<SizeBucket>(b)));
  }
}

int WorkloadGenerator::SampleGpuDemand(const VcConfig& vc, Rng& rng) const {
  double weights[std::size(kDemandValues)];
  for (size_t i = 0; i < std::size(kDemandValues); ++i) {
    weights[i] = kDemandWeights[i];
    if (kDemandValues[i] > 1) {
      weights[i] *= vc.multi_gpu_bias;
    }
    if (kDemandValues[i] > 8 && !vc.allows_gt8) {
      weights[i] = 0.0;
    }
  }
  return kDemandValues[rng.Categorical(weights)];
}

SimDuration WorkloadGenerator::SampleDuration(SizeBucket bucket, Rng& rng) const {
  const double minutes = duration_by_bucket_[static_cast<size_t>(bucket)].Sample(rng);
  const double seconds = std::clamp(minutes * kMinutes, 30.0, 60.0 * 86400.0);
  return static_cast<SimDuration>(seconds);
}

JobSpec WorkloadGenerator::MakeJob(JobId id, VcId vc_id, SimTime submit_time, Rng& rng) {
  const VcConfig& vc = config_.vcs[static_cast<size_t>(vc_id)];
  JobSpec job;
  job.id = id;
  job.vc = vc_id;
  job.submit_time = submit_time;
  job.num_gpus = SampleGpuDemand(vc, rng);
  const SizeBucket bucket = BucketOf(job.num_gpus);

  // Users: each VC draws from its own slice of the user population, with a
  // quadratic skew so a handful of engineers submit most of a VC's jobs
  // (failure analysis in §4.2.2 depends on per-user concentration).
  const int users_per_vc =
      std::max(3, config_.num_users / static_cast<int>(config_.vcs.size()));
  const double skew = rng.Uniform();
  const int user_rank = static_cast<int>(skew * skew * users_per_vc);
  job.user = static_cast<UserId>(vc_id * users_per_vc + std::min(user_rank, users_per_vc - 1));

  // Model family & batch size.
  double family_weights[kNumModelFamilies];
  for (int f = 0; f < kNumModelFamilies; ++f) {
    family_weights[f] = ProfileOf(static_cast<ModelFamily>(f)).mix_weight;
  }
  job.model = static_cast<ModelFamily>(rng.Categorical(family_weights));
  const ModelProfile& profile = ProfileOf(job.model);
  constexpr double kBatchMultWeights[] = {0.15, 0.50, 0.25, 0.10};
  constexpr double kBatchMult[] = {0.5, 1.0, 2.0, 4.0};
  const size_t batch_pick = rng.Categorical(kBatchMultWeights);
  job.batch_size =
      std::max(1, static_cast<int>(profile.reference_batch * kBatchMult[batch_pick]));

  job.planned_duration = SampleDuration(bucket, rng);
  job.planned_epochs = static_cast<int>(
      std::clamp(rng.Lognormal(std::log(40.0), 0.9), 2.0, 1000.0));

  // Base utilization: family prior x batch scaling, clamped.
  const double raw_util = rng.Normal(profile.base_util_mean, profile.base_util_sigma) *
                          BatchUtilizationScale(job.batch_size, profile.reference_batch);
  job.base_utilization = std::clamp(raw_util, 0.05, 1.0);

  job.logs_convergence = rng.Bernoulli(config_.convergence_logging_fraction);

  // Loss-curve parameters (§4.1 / Figure 8). `f_star` is the fraction of
  // epochs needed to come within 0.1% of the final minimum.
  LossCurveParams& curve = job.loss_curve;
  curve.floor = rng.Uniform(0.3, 2.0);
  curve.amplitude = curve.floor * rng.Uniform(1.0, 3.0);
  const double f_star =
      std::clamp(rng.Lognormal(std::log(0.30), 0.40), 0.05, 0.85);
  curve.decay_rate = std::log(curve.amplitude / (0.001 * curve.floor)) /
                     (f_star * static_cast<double>(job.planned_epochs));
  curve.end_drift = 0.0005 * curve.floor;
  // 80% of curves keep improving (argmin in the final epochs): their noise is
  // kept well below the per-epoch drift so the minimum lands at the end. The
  // rest are noisy and bottom out somewhere in the flat tail.
  curve.noise_sigma = rng.Bernoulli(0.80)
                          ? curve.end_drift / (10.0 * job.planned_epochs)
                          : 0.004 * curve.floor;

  // Kill propensity rises with run length and job size: users watch long/large
  // jobs and terminate ones that stop improving, which is why killed jobs are
  // 13.5% of jobs but 37.7% of consumed GPU time (Table 6). The kill point is
  // coupled to the loss plateau: users kill some time after the curve comes
  // within noise of its floor (Figure 8b shows killed jobs spend most epochs
  // past the 0.1%-of-minimum point, like passed jobs).
  const double dur_minutes = ToMinutes(job.planned_duration);
  const double dur_factor =
      std::clamp(std::log(dur_minutes / 30.0) / std::log(10000.0 / 30.0), 0.0, 1.0);
  const double size_factor = static_cast<double>(static_cast<int>(bucket)) / 3.0;
  const double p_kill =
      0.095 + 0.50 * std::pow(dur_factor, 2.2) + 0.04 * size_factor;
  if (rng.Bernoulli(p_kill)) {
    job.intrinsic = IntrinsicOutcome::kKilledByUser;
    job.kill_fraction =
        std::clamp(f_star * rng.Uniform(1.1, 5.0) + 0.05, 0.05, 1.0);
  }

  return job;
}

std::vector<JobSpec> WorkloadGenerator::Generate() {
  Rng root(config_.seed);
  std::vector<JobSpec> jobs;
  JobId next_warm_id = 1;

  if (config_.prepopulate_busy_gpus > 0) {
    // Warm cohort: sample jobs length-biased (long jobs dominate the standing
    // population) and give each a uniform residual of its duration, the
    // stationary-renewal residual-life distribution.
    Rng warm = root.Fork();
    std::vector<double> quota_weights;
    quota_weights.reserve(config_.vcs.size());
    for (const auto& vc : config_.vcs) {
      quota_weights.push_back(static_cast<double>(vc.quota_gpus));
    }
    const double kLengthBiasRef = 5.0 * 1440.0;  // minutes; >=5-day jobs always kept
    int busy = 0;
    while (busy < config_.prepopulate_busy_gpus) {
      const auto vc_id = static_cast<VcId>(warm.Categorical(quota_weights));
      JobSpec job = MakeJob(next_warm_id, vc_id, 0, warm);
      const double minutes = ToMinutes(job.planned_duration);
      if (!warm.Bernoulli(std::min(1.0, minutes / kLengthBiasRef))) {
        continue;
      }
      job.planned_duration = std::max<SimDuration>(
          60, static_cast<SimDuration>(warm.Uniform() * job.planned_duration));
      jobs.push_back(job);
      busy += job.num_gpus;
      ++next_warm_id;
    }
  }

  struct VcStream {
    ArrivalProcess process;
    Rng rng;
    SimTime next = 0;
  };
  std::vector<VcStream> streams;
  streams.reserve(config_.vcs.size());
  for (size_t vc_index = 0; vc_index < config_.vcs.size(); ++vc_index) {
    const auto& vc = config_.vcs[vc_index];
    const double weekly_phase = 2.0 * 3.14159265358979 *
                                static_cast<double>(vc_index) /
                                static_cast<double>(config_.vcs.size());
    VcStream s{ArrivalProcess(vc.arrival_rate_per_hour, config_.diurnal_amplitude,
                              config_.weekly_amplitude, weekly_phase),
               root.Fork(), 0};
    // Deadline-push bursts, sampled up front so the schedule is deterministic.
    if (config_.mean_burst_interval > 0) {
      SimTime t = 0;
      for (;;) {
        t += static_cast<SimTime>(s.rng.Exponential(
            static_cast<double>(config_.mean_burst_interval)));
        if (t >= config_.duration) {
          break;
        }
        const auto duration = static_cast<SimDuration>(
            s.rng.Uniform(static_cast<double>(config_.min_burst_duration),
                          static_cast<double>(config_.max_burst_duration)));
        s.process.AddBurst(t, t + duration,
                           s.rng.Uniform(config_.min_burst_multiplier,
                                         config_.max_burst_multiplier));
        t += duration;
      }
    }
    s.next = s.process.NextAfter(0, s.rng);
    streams.push_back(std::move(s));
  }

  JobId next_id = next_warm_id;
  for (;;) {
    // Pick the VC with the earliest pending arrival (deterministic ties).
    size_t best = 0;
    for (size_t i = 1; i < streams.size(); ++i) {
      if (streams[i].next < streams[best].next) {
        best = i;
      }
    }
    const SimTime t = streams[best].next;
    if (t >= config_.duration) {
      break;
    }
    jobs.push_back(MakeJob(next_id++, static_cast<VcId>(best), t, streams[best].rng));
    streams[best].next = streams[best].process.NextAfter(t, streams[best].rng);
  }
  // Arrival interleaving above already yields submit-time order; enforce it
  // defensively (stable for equal times by construction of ids).
  std::stable_sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    return a.submit_time < b.submit_time;
  });
  return jobs;
}

}  // namespace philly
