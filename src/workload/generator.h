// Synthetic trace generation, calibrated to the paper's published workload.
//
// This is the substitution for the proprietary Philly production trace
// (DESIGN.md §1): per-virtual-cluster Poisson arrivals with diurnal
// modulation, a GPU-demand mix whose bucket shares match the paper's
// (majority 1-GPU; 5-8 GPU — dominated by whole-server 8-GPU jobs — roughly
// 4-5x as common as >8 GPU), heavy-tailed lognormal-mixture run times
// (Figure 2: minutes to weeks, ~0.5% beyond one week, larger jobs run
// longer), a user population with skewed per-user submission counts, and
// intrinsic kill propensities that rise with job size and length so killed
// jobs consume a disproportionate share of GPU time (Table 6).

#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "src/common/distributions.h"
#include "src/common/rng.h"
#include "src/workload/job.h"

namespace philly {

// One virtual cluster (production group) — §2.3: each VC has a GPU quota and
// its own Fair Scheduler queue.
struct VcConfig {
  std::string name;
  int quota_gpus = 0;
  double arrival_rate_per_hour = 1.0;
  // Scales the probability of multi-GPU demand relative to the global mix.
  double multi_gpu_bias = 1.0;
  // VC4 in the paper contains no >8-GPU jobs (Figure 3 caption).
  bool allows_gt8 = true;
};

struct WorkloadConfig {
  std::vector<VcConfig> vcs;
  SimDuration duration = Days(75);
  double diurnal_amplitude = 0.25;
  // Week-periodic modulation, phase-shifted per VC so teams peak on
  // different days.
  double weekly_amplitude = 0.20;
  // Transient per-VC demand bursts ("deadline pushes"): exponential gaps with
  // this mean, uniform durations and rate multipliers in the given ranges.
  // Bursts are what produce the heavy queueing-delay tails the paper's
  // Figure 3 shows; set mean_burst_interval to 0 to disable.
  SimDuration mean_burst_interval = Days(18);
  SimDuration min_burst_duration = Hours(12);
  SimDuration max_burst_duration = Hours(60);
  double min_burst_multiplier = 1.6;
  double max_burst_multiplier = 2.8;
  int num_users = 300;
  uint64_t seed = 42;
  // Fraction of jobs whose frameworks print per-epoch loss (paper: 2502 of
  // 96260 jobs had recoverable convergence information).
  double convergence_logging_fraction = 0.026;

  // Warm start: inject a cohort of already-in-flight jobs at t=0 whose GPU
  // demand sums to roughly this many GPUs, with length-biased residual
  // durations — the steady-state population a long-running production cluster
  // carries. 0 disables. This lets short windows exhibit steady-state
  // queueing/occupancy instead of a multi-week ramp-up.
  int prepopulate_busy_gpus = 0;

  // 14 VCs sized against the paper-scale cluster (1984 GPUs); arrival rates
  // total ~53.5 jobs/hour so a 75-day window yields ~96k jobs.
  static WorkloadConfig PaperScale();

  // Same structure, shorter window (`days`), for examples/benches/tests.
  static WorkloadConfig Scaled(int days, uint64_t seed = 42);

  int TotalQuota() const;
  double TotalArrivalRate() const;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  // Generates the full trace, sorted by submit time. Deterministic given the
  // config (including seed).
  std::vector<JobSpec> Generate();

  const WorkloadConfig& config() const { return config_; }

 private:
  JobSpec MakeJob(JobId id, VcId vc, SimTime submit_time, Rng& rng);
  int SampleGpuDemand(const VcConfig& vc, Rng& rng) const;
  SimDuration SampleDuration(SizeBucket bucket, Rng& rng) const;

  WorkloadConfig config_;
  std::vector<LognormalMixture> duration_by_bucket_;
};

}  // namespace philly

#endif  // SRC_WORKLOAD_GENERATOR_H_
