#include "src/workload/job.h"

namespace philly {

std::string_view ToString(JobStatus status) {
  switch (status) {
    case JobStatus::kPassed:
      return "Passed";
    case JobStatus::kKilled:
      return "Killed";
    case JobStatus::kUnsuccessful:
      return "Unsuccessful";
  }
  return "Unknown";
}

SizeBucket BucketOf(int num_gpus) {
  if (num_gpus <= 1) {
    return SizeBucket::k1Gpu;
  }
  if (num_gpus <= 4) {
    return SizeBucket::k2To4Gpu;
  }
  if (num_gpus <= 8) {
    return SizeBucket::k5To8Gpu;
  }
  return SizeBucket::kGt8Gpu;
}

std::string_view ToString(SizeBucket bucket) {
  switch (bucket) {
    case SizeBucket::k1Gpu:
      return "1 GPU";
    case SizeBucket::k2To4Gpu:
      return "2-4 GPU";
    case SizeBucket::k5To8Gpu:
      return "5-8 GPU";
    case SizeBucket::kGt8Gpu:
      return ">8 GPU";
  }
  return "Unknown";
}

std::string_view ToString(ModelFamily family) {
  switch (family) {
    case ModelFamily::kResNet:
      return "resnet";
    case ModelFamily::kVggLike:
      return "vgg";
    case ModelFamily::kLstm:
      return "lstm";
    case ModelFamily::kRnnLanguage:
      return "rnnlm";
    case ModelFamily::kEmbedding:
      return "embed";
  }
  return "unknown";
}

}  // namespace philly
