// Job model: the unit of work submitted to the cluster.
//
// A JobSpec captures everything exogenous about a training job — who submitted
// it, when, how many GPUs, which model family, its intended number of epochs
// and duration, and its intrinsic outcome propensities. Everything endogenous
// (queueing delay, placement, utilization, failures, retries, final status)
// is produced by the simulation and recorded in logs.

#ifndef SRC_WORKLOAD_JOB_H_
#define SRC_WORKLOAD_JOB_H_

#include <cstdint>
#include <string>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"

namespace philly {

using UserId = int32_t;
using VcId = int32_t;

// Final status of a job (§2.3): passed = completed successfully, killed =
// terminated by the user, unsuccessful = failed repeatedly until retries were
// exhausted.
enum class JobStatus {
  kPassed,
  kKilled,
  kUnsuccessful,
};

std::string_view ToString(JobStatus status);

// GPU-demand buckets used throughout the paper's figures (Fig 2, 3, 9;
// Table 2).
enum class SizeBucket {
  k1Gpu,
  k2To4Gpu,
  k5To8Gpu,
  kGt8Gpu,
};

inline constexpr int kNumSizeBuckets = 4;

SizeBucket BucketOf(int num_gpus);
std::string_view ToString(SizeBucket bucket);

// Representative job sizes used in Fig 5 / Table 3 / Table 5 ("we use these
// job sizes as representative of small, medium and large jobs").
inline constexpr int kRepresentativeSizes[] = {1, 4, 8, 16};

// Model families in the workload mix (§2.1: CNNs, LSTMs, RNNs across image,
// speech, NLP production groups). Families differ in their base GPU
// utilization prior and communication intensity.
enum class ModelFamily {
  kResNet,       // image classification CNN (the paper's controlled experiment)
  kVggLike,      // heavier CNN, memory bound
  kLstm,         // speech/NLP recurrent, lower SM occupancy
  kRnnLanguage,  // language model RNN
  kEmbedding,    // sparse embedding-dominated, I/O bound
};

inline constexpr int kNumModelFamilies = 5;

std::string_view ToString(ModelFamily family);

// Intrinsic user intent for a job, decided at submission time by the
// generator. Whether the job actually passes also depends on injected
// failures and the retry policy.
enum class IntrinsicOutcome {
  kRunToCompletion,  // user lets it finish
  kKilledByUser,     // user will terminate it part-way
};

// Loss-curve parameterization (drives Fig 8). The synthesized training loss at
// epoch e in [1, num_epochs] is
//   loss(e) = floor + amplitude * exp(-decay_rate * e) - end_drift * e / E
//             + noise_sigma * N(0,1)
// The saturating exponential gives the "most improvement early" shape; the
// small monotone end_drift (kept below the 0.1% threshold so it does not
// dominate the within-0.1% epoch) keeps clean jobs improving to the end, so
// ~80% of them attain their minimum in the final epochs unless noise_sigma
// dominates (§4.1).
struct LossCurveParams {
  double floor = 1.0;
  double amplitude = 2.0;
  double decay_rate = 0.05;
  double end_drift = 0.0005;
  double noise_sigma = 0.0002;
};

struct JobSpec {
  JobId id = kNoJob;
  VcId vc = 0;
  UserId user = 0;
  SimTime submit_time = 0;
  int num_gpus = 1;
  ModelFamily model = ModelFamily::kResNet;
  int batch_size = 32;

  // Intended clean run length, end to end, if nothing fails and the user does
  // not kill it.
  SimDuration planned_duration = Minutes(60);
  int planned_epochs = 50;

  IntrinsicOutcome intrinsic = IntrinsicOutcome::kRunToCompletion;
  // For kKilledByUser: fraction of planned_duration after which the user
  // terminates the job.
  double kill_fraction = 1.0;

  // Per-job base GPU utilization in (0, 1]: what this job achieves on a single
  // dedicated server before distribution/interference penalties.
  double base_utilization = 0.6;

  // Whether this job's framework prints per-epoch loss lines to stdout (only
  // ~2.6% of jobs in the paper exposed convergence information).
  bool logs_convergence = false;
  LossCurveParams loss_curve;

  SimDuration EpochDuration() const {
    return planned_epochs > 0 ? planned_duration / planned_epochs : planned_duration;
  }
};

}  // namespace philly

#endif  // SRC_WORKLOAD_JOB_H_
