#include "src/workload/loss_curve.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/distributions.h"

namespace philly {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

uint64_t LossCurveSeed(JobId id) {
  return Mix64(static_cast<uint64_t>(id) ^ 0x10552CA1B5EEDull);
}

LossCurve::LossCurve(const LossCurveParams& params, int num_epochs, uint64_t seed)
    : params_(params), num_epochs_(num_epochs), seed_(seed) {
  assert(num_epochs > 0);
}

double LossCurve::NoiseAt(int epoch) const {
  const uint64_t h = Mix64(seed_ ^ (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(epoch)));
  // Map to (0, 1) strictly, then to a standard normal.
  const double u = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
  return Probit(u);
}

double LossCurve::LossAt(int epoch) const {
  assert(epoch >= 1 && epoch <= num_epochs_);
  const double e = static_cast<double>(epoch);
  const double trend = params_.floor + params_.amplitude * std::exp(-params_.decay_rate * e) -
                       params_.end_drift * e / static_cast<double>(num_epochs_);
  return trend + params_.noise_sigma * NoiseAt(epoch);
}

int LossCurve::BestEpoch(int executed_epochs) const {
  executed_epochs = std::clamp(executed_epochs, 1, num_epochs_);
  int best = 1;
  double best_loss = LossAt(1);
  for (int e = 2; e <= executed_epochs; ++e) {
    const double l = LossAt(e);
    if (l < best_loss) {
      best_loss = l;
      best = e;
    }
  }
  return best;
}

int LossCurve::FirstEpochWithin(double rel_delta, int executed_epochs) const {
  executed_epochs = std::clamp(executed_epochs, 1, num_epochs_);
  double best_loss = LossAt(1);
  for (int e = 2; e <= executed_epochs; ++e) {
    best_loss = std::min(best_loss, LossAt(e));
  }
  const double threshold = best_loss + std::abs(best_loss) * rel_delta;
  for (int e = 1; e <= executed_epochs; ++e) {
    if (LossAt(e) <= threshold) {
      return e;
    }
  }
  return executed_epochs;
}

}  // namespace philly
