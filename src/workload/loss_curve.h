// Synthetic training-loss curves (drives Figure 8 and §4.1).
//
// The curve is deterministic given (params, num_epochs, seed): the noise term
// at epoch e is derived from a hash of (seed, e). Determinism matters because
// the same curve is evaluated twice — once by the job-log synthesizer that
// prints per-epoch loss lines, and once by tests validating the analysis
// pipeline against ground truth.

#ifndef SRC_WORKLOAD_LOSS_CURVE_H_
#define SRC_WORKLOAD_LOSS_CURVE_H_

#include <cstdint>

#include "src/workload/job.h"

namespace philly {

// Canonical noise seed for a job's loss curve. Both the log synthesizer and
// the analysis pipeline must use this so the curves agree.
uint64_t LossCurveSeed(JobId id);

class LossCurve {
 public:
  LossCurve(const LossCurveParams& params, int num_epochs, uint64_t seed);

  int NumEpochs() const { return num_epochs_; }

  // Training loss after epoch `e`, e in [1, NumEpochs()].
  double LossAt(int epoch) const;

  // Epoch (in [1, executed_epochs]) attaining the minimum loss.
  int BestEpoch(int executed_epochs) const;

  // First epoch whose loss is within `rel_delta` (relative, e.g. 0.001 for
  // 0.1%) of the minimum over the executed prefix.
  int FirstEpochWithin(double rel_delta, int executed_epochs) const;

 private:
  double NoiseAt(int epoch) const;

  LossCurveParams params_;
  int num_epochs_;
  uint64_t seed_;
};

}  // namespace philly

#endif  // SRC_WORKLOAD_LOSS_CURVE_H_
