#include "src/workload/model_zoo.h"

#include <array>
#include <cassert>
#include <cmath>

namespace philly {
namespace {

// Base-utilization means are chosen so that, combined with the telemetry
// model's distribution/interference penalties, the aggregate workload lands
// on the paper's Table 3 (overall mean ~52% for in-use GPUs). The ResNet mean
// is pinned by the controlled experiment: SameServer 2-GPU batch-32 = 57.7%.
// images_per_sec_at_full_util is per GPU; Table 4 implies ~99.5 img/s/GPU for
// ResNet-50 on a P100 (114.8 img/s across 2 GPUs at 57.7% utilization).
constexpr std::array<ModelProfile, kNumModelFamilies> kProfiles = {{
    {ModelFamily::kResNet, 0.577, 0.13, 1.00, 99.5, 32, 0.30},
    {ModelFamily::kVggLike, 0.680, 0.14, 1.35, 45.0, 32, 0.10},
    {ModelFamily::kLstm, 0.560, 0.17, 0.85, 0.0, 64, 0.25},
    {ModelFamily::kRnnLanguage, 0.600, 0.16, 0.90, 0.0, 64, 0.20},
    {ModelFamily::kEmbedding, 0.480, 0.18, 0.70, 0.0, 128, 0.15},
}};

}  // namespace

const ModelProfile& ProfileOf(ModelFamily family) {
  const auto idx = static_cast<size_t>(family);
  assert(idx < kProfiles.size());
  return kProfiles[idx];
}

std::span<const ModelProfile> AllProfiles() { return kProfiles; }

double BatchUtilizationScale(int batch, int reference_batch) {
  assert(batch > 0 && reference_batch > 0);
  const double ratio = static_cast<double>(batch) / static_cast<double>(reference_batch);
  if (ratio >= 1.0) {
    // 1.0 at the reference batch, 1.23 at 2x (57.7% -> 71.1% for ResNet-50),
    // saturating at 1.31 ("increases marginally for larger batches").
    return 1.0 + 0.31 * (1.0 - 1.0 / (ratio * ratio));
  }
  // Smaller batches lose utilization gently.
  return std::pow(ratio, 0.3);
}

}  // namespace philly
