// Per-model-family performance priors.
//
// The paper's aggregate workload mixes model types and batch sizes ("the type
// of model trained and the batch sizes used vary across jobs", §3.2.1), which
// is what widens the utilization CDFs in Figure 5. Each family carries a base
// utilization prior — what a job of this family achieves on dedicated,
// single-server GPUs — plus a communication-intensity factor that scales the
// distribution penalty, and a throughput conversion used for the images/s row
// of Table 4.

#ifndef SRC_WORKLOAD_MODEL_ZOO_H_
#define SRC_WORKLOAD_MODEL_ZOO_H_

#include <span>

#include "src/workload/job.h"

namespace philly {

struct ModelProfile {
  ModelFamily family = ModelFamily::kResNet;
  // Mean/stddev of the per-job base utilization prior (clamped to [0.05, 1]).
  double base_util_mean = 0.6;
  double base_util_sigma = 0.15;
  // Relative weight of gradient-synchronization time; 1.0 = ResNet-50-like.
  // Scales the multi-server distribution penalty in the telemetry model.
  double comm_intensity = 1.0;
  // Throughput conversion for image-style models: images/s per GPU at 100%
  // utilization with batch 32 (calibrated so ResNet-50 reproduces Table 4).
  double images_per_sec_at_full_util = 199.0;
  // Reference batch size for the utilization prior; larger batches raise
  // utilization with diminishing returns (§3.2.1: 57.7% at 32 -> 71.1% at 64,
  // "only marginally" beyond).
  int reference_batch = 32;
  // Share of this family in the submitted job mix.
  double mix_weight = 0.2;
};

// Profile table indexed by ModelFamily.
const ModelProfile& ProfileOf(ModelFamily family);

// All profiles, for mix sampling.
std::span<const ModelProfile> AllProfiles();

// Multiplier applied to base utilization for a batch size relative to the
// family's reference batch: 1.0 at the reference, rising with diminishing
// returns, saturating around 1.30 (calibrated to the ResNet-50 batch-64
// observation).
double BatchUtilizationScale(int batch, int reference_batch);

}  // namespace philly

#endif  // SRC_WORKLOAD_MODEL_ZOO_H_
