// Unit tests for the analysis pipeline over hand-crafted records with known
// answers.

#include "src/core/analysis.h"

#include <gtest/gtest.h>

#include "src/failure/failure_logs.h"
#include "src/workload/loss_curve.h"

namespace philly {
namespace {

JobRecord MakeJobRecord(JobId id, int gpus, SimDuration run, JobStatus status,
                        SimDuration delay = 0, VcId vc = 0) {
  JobRecord job;
  job.spec.id = id;
  job.spec.vc = vc;
  job.spec.user = static_cast<UserId>(id % 17);
  job.spec.num_gpus = gpus;
  job.status = status;
  WaitRecord wait;
  wait.wait = delay;
  job.waits.push_back(wait);
  AttemptRecord attempt;
  attempt.start = delay;
  attempt.end = delay + run;
  attempt.placement.shards.push_back({0, gpus});
  job.attempts.push_back(attempt);
  job.gpu_seconds = static_cast<double>(run) * gpus;
  return job;
}

TEST(RunTimeAnalysisTest, BucketsAndWeekTail) {
  std::vector<JobRecord> jobs;
  jobs.push_back(MakeJobRecord(1, 1, Minutes(10), JobStatus::kPassed));
  jobs.push_back(MakeJobRecord(2, 4, Hours(2), JobStatus::kPassed));
  jobs.push_back(MakeJobRecord(3, 8, Days(10), JobStatus::kPassed));
  jobs.push_back(MakeJobRecord(4, 16, Days(1), JobStatus::kKilled));
  const auto result = AnalyzeRunTimes(jobs);
  EXPECT_EQ(result.cdf_minutes[0].Count(), 1.0);
  EXPECT_EQ(result.cdf_minutes[1].Count(), 1.0);
  EXPECT_EQ(result.cdf_minutes[2].Count(), 1.0);
  EXPECT_EQ(result.cdf_minutes[3].Count(), 1.0);
  EXPECT_NEAR(result.cdf_minutes[0].Mean(), 10.0, 1e-6);
  EXPECT_DOUBLE_EQ(result.fraction_over_one_week, 0.25);
}

TEST(RunTimeAnalysisTest, SkipsNeverRunJobs) {
  std::vector<JobRecord> jobs;
  JobRecord never;
  never.spec.num_gpus = 1;
  jobs.push_back(never);
  const auto result = AnalyzeRunTimes(jobs);
  EXPECT_EQ(result.cdf_minutes[0].Count(), 0.0);
}

TEST(QueueDelayAnalysisTest, PerVcSeparation) {
  std::vector<JobRecord> jobs;
  jobs.push_back(MakeJobRecord(1, 1, Hours(1), JobStatus::kPassed, Minutes(5), 0));
  jobs.push_back(MakeJobRecord(2, 16, Hours(1), JobStatus::kPassed, Minutes(50), 1));
  const auto result = AnalyzeQueueDelays(jobs);
  ASSERT_EQ(result.by_vc.size(), 2u);
  EXPECT_NEAR(result.by_vc.at(0)[0].Mean(), 5.0, 1e-6);
  EXPECT_NEAR(result.by_vc.at(1)[3].Mean(), 50.0, 1e-6);
  EXPECT_NEAR(result.overall[3].Mean(), 50.0, 1e-6);
}

TEST(LocalityDelayAnalysisTest, GroupsByServerCount) {
  std::vector<JobRecord> jobs;
  auto spread = MakeJobRecord(1, 16, Hours(1), JobStatus::kPassed, Minutes(2));
  spread.attempts[0].placement.shards = {{0, 8}, {1, 4}, {2, 4}};
  jobs.push_back(spread);
  auto tight = MakeJobRecord(2, 16, Hours(1), JobStatus::kPassed, Minutes(60));
  tight.attempts[0].placement.shards = {{0, 8}, {1, 8}};
  jobs.push_back(tight);
  jobs.push_back(MakeJobRecord(3, 8, Hours(1), JobStatus::kPassed, Minutes(7)));
  const auto result = AnalyzeLocalityDelay(jobs);
  ASSERT_EQ(result.gt_eight.size(), 2u);
  EXPECT_EQ(result.gt_eight[0].num_servers, 2);
  EXPECT_NEAR(result.gt_eight[0].delay_minutes.mean, 60.0, 0.5);
  EXPECT_EQ(result.gt_eight[1].num_servers, 3);
  ASSERT_EQ(result.five_to_eight.size(), 1u);
  EXPECT_EQ(result.five_to_eight[0].num_servers, 1);
}

TEST(DelayCauseAnalysisTest, DominantCauseCounting) {
  std::vector<JobRecord> jobs;
  auto fair = MakeJobRecord(1, 4, Hours(1), JobStatus::kPassed, Minutes(10));
  fair.waits[0].fair_share_time = Minutes(9);
  fair.waits[0].fragmentation_time = Minutes(1);
  jobs.push_back(fair);
  auto frag = MakeJobRecord(2, 16, Hours(1), JobStatus::kPassed, Minutes(20));
  frag.waits[0].fragmentation_time = Minutes(20);
  jobs.push_back(frag);
  // Too short to count (paper filters jobs that ran < 1 minute).
  auto brief = MakeJobRecord(3, 4, Seconds(30), JobStatus::kKilled, Minutes(5));
  brief.waits[0].fragmentation_time = Minutes(5);
  jobs.push_back(brief);

  const auto result = AnalyzeDelayCauses(jobs);
  EXPECT_EQ(result.by_bucket[1].fair_share, 1);
  EXPECT_EQ(result.by_bucket[1].fragmentation, 0);
  EXPECT_EQ(result.by_bucket[3].fragmentation, 1);
  EXPECT_NEAR(result.fragmentation_time_fraction, 21.0 / 30.0, 1e-9);
}

TEST(DelayCauseAnalysisTest, SimCountersFlowThrough) {
  SimulationResult sim;
  sim.scheduling_decisions = 100;
  sim.out_of_order_decisions = 40;
  sim.out_of_order_benign = 30;
  sim.occupancy_snapshots.push_back({0, 0.66, 0.04, 7});
  sim.occupancy_snapshots.push_back({1, 0.20, 0.80, 12});
  const auto result = AnalyzeDelayCauses({}, &sim);
  EXPECT_DOUBLE_EQ(result.out_of_order_fraction, 0.4);
  EXPECT_DOUBLE_EQ(result.out_of_order_benign_fraction, 0.75);
  EXPECT_DOUBLE_EQ(result.empty_server_fraction_at_two_thirds, 0.04);
}

TEST(UtilizationAnalysisTest, MeansMatchSegments) {
  std::vector<JobRecord> jobs;
  auto job = MakeJobRecord(1, 8, Hours(10), JobStatus::kPassed);
  job.util_segments.push_back({0.6, Hours(10), 1});
  jobs.push_back(job);
  SamplerConfig quiet;
  quiet.jitter_sigma = 0.0;
  const auto result = AnalyzeUtilization(jobs, quiet);
  EXPECT_NEAR(result.MeanForSize(2), 60.0, 0.1);  // size index 2 = 8 GPUs
  EXPECT_NEAR(result.MeanFor(JobStatus::kPassed, 2), 60.0, 0.1);
  EXPECT_NEAR(result.dedicated_8gpu.Mean(), 60.0, 0.1);
  EXPECT_EQ(result.by_size[0].Count(), 0.0);  // no 1-GPU jobs
}

TEST(UtilizationAnalysisTest, SixteenGpuSpreadBuckets) {
  std::vector<JobRecord> jobs;
  auto job = MakeJobRecord(1, 16, Hours(4), JobStatus::kPassed);
  job.util_segments.push_back({0.5, Hours(2), 2});
  job.util_segments.push_back({0.3, Hours(2), 8});
  jobs.push_back(job);
  SamplerConfig quiet;
  quiet.jitter_sigma = 0.0;
  const auto result = AnalyzeUtilization(jobs, quiet);
  ASSERT_EQ(result.sixteen_by_servers.size(), 2u);
  EXPECT_NEAR(result.sixteen_by_servers.at(2).Mean(), 50.0, 0.1);
  EXPECT_NEAR(result.sixteen_by_servers.at(8).Mean(), 30.0, 0.1);
  EXPECT_NEAR(result.dedicated_16gpu.Mean(), 50.0, 0.1);
}

TEST(UtilizationAnalysisTest, WeightsByGpuCountAndDuration) {
  std::vector<JobRecord> jobs;
  auto small = MakeJobRecord(1, 1, Hours(1), JobStatus::kPassed);
  small.util_segments.push_back({1.0, Hours(1), 1});
  auto big = MakeJobRecord(2, 16, Hours(1), JobStatus::kPassed);
  big.util_segments.push_back({0.0, Hours(1), 2});
  jobs.push_back(small);
  jobs.push_back(big);
  SamplerConfig quiet;
  quiet.jitter_sigma = 0.0;
  const auto result = AnalyzeUtilization(jobs, quiet);
  // 1 GPU-hour at 100% + 16 GPU-hours at 0% -> overall mean 100/17.
  EXPECT_NEAR(result.all.Mean(), 100.0 / 17.0, 0.1);
}

TEST(HostResourceAnalysisTest, WeightedByRunTime) {
  std::vector<JobRecord> jobs;
  jobs.push_back(MakeJobRecord(1, 2, Hours(5), JobStatus::kPassed));
  jobs.push_back(MakeJobRecord(2, 2, 0, JobStatus::kKilled));  // never ran
  const auto result = AnalyzeHostResources(jobs);
  EXPECT_GT(result.cpu_util.Count(), 0.0);
  EXPECT_GT(result.memory_util.Mean(), result.cpu_util.Mean());
}

TEST(StatusAnalysisTest, SharesComputed) {
  std::vector<JobRecord> jobs;
  jobs.push_back(MakeJobRecord(1, 1, Hours(10), JobStatus::kPassed));
  jobs.push_back(MakeJobRecord(2, 1, Hours(10), JobStatus::kPassed));
  jobs.push_back(MakeJobRecord(3, 1, Hours(30), JobStatus::kKilled));
  jobs.push_back(MakeJobRecord(4, 1, Hours(50), JobStatus::kUnsuccessful));
  const auto result = AnalyzeStatus(jobs);
  EXPECT_EQ(result.total_jobs, 4);
  EXPECT_DOUBLE_EQ(result.by_status[0].count_share, 0.5);
  EXPECT_DOUBLE_EQ(result.by_status[0].gpu_time_share, 0.2);
  EXPECT_DOUBLE_EQ(result.by_status[1].gpu_time_share, 0.3);
  EXPECT_DOUBLE_EQ(result.by_status[2].gpu_time_share, 0.5);
}

TEST(ConvergenceAnalysisTest, CleanCurveNeedsAllEpochs) {
  std::vector<JobRecord> jobs;
  auto job = MakeJobRecord(1, 1, Hours(10), JobStatus::kPassed);
  job.spec.logs_convergence = true;
  job.spec.planned_epochs = 100;
  job.executed_epochs = 100;
  job.spec.loss_curve.noise_sigma = 0.0;  // perfectly clean: min at last epoch
  job.spec.loss_curve.decay_rate = 0.2;   // within 0.1% early
  jobs.push_back(job);
  const auto result = AnalyzeConvergence(jobs);
  EXPECT_EQ(result.jobs_with_convergence_info, 1);
  EXPECT_NEAR(result.passed_lowest.Mean(), 1.0, 1e-6);
  EXPECT_LT(result.passed_within.Mean(), 0.6);
  EXPECT_GT(result.passed_gpu_time_for_last_tenth_pct, 0.4);
}

TEST(ConvergenceAnalysisTest, FiltersNonLoggingAndUnsuccessful) {
  std::vector<JobRecord> jobs;
  auto a = MakeJobRecord(1, 1, Hours(1), JobStatus::kPassed);
  a.executed_epochs = 50;  // logs_convergence false
  jobs.push_back(a);
  auto b = MakeJobRecord(2, 1, Hours(1), JobStatus::kUnsuccessful);
  b.spec.logs_convergence = true;
  b.executed_epochs = 50;
  jobs.push_back(b);
  const auto result = AnalyzeConvergence(jobs);
  EXPECT_EQ(result.jobs_with_convergence_info, 0);
}

TEST(VcLoadAnalysisTest, ComputesBusyAndQuotaStats) {
  std::vector<JobRecord> jobs;
  // VC 0: one 8-GPU job running 2h within a 10-GPU quota.
  auto a = MakeJobRecord(1, 8, Hours(2), JobStatus::kPassed, Minutes(30), 0);
  a.waits[0].fair_share_time = Minutes(30);
  jobs.push_back(a);
  // VC 1: one 16-GPU job running 1h against a 4-GPU quota (over quota).
  jobs.push_back(MakeJobRecord(2, 16, Hours(1), JobStatus::kPassed, 0, 1));
  const std::vector<VcConfig> vcs = {{"vc0", 10, 1.0, 1.0, true},
                                     {"vc1", 4, 1.0, 1.0, true}};
  const auto result = AnalyzeVcLoad(jobs, vcs, Hours(1));
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].jobs, 1);
  EXPECT_EQ(result.rows[0].quota_gpus, 10);
  EXPECT_NEAR(result.rows[0].peak_busy_gpus, 8.0, 0.01);
  EXPECT_NEAR(result.rows[0].mean_queue_delay_min, 30.0, 0.01);
  EXPECT_NEAR(result.rows[0].fair_share_delay_share, 1.0, 1e-9);
  EXPECT_NEAR(result.rows[1].peak_busy_gpus, 16.0, 0.01);
  EXPECT_GT(result.rows[1].over_quota_time_share, 0.2);
  EXPECT_DOUBLE_EQ(result.rows[1].fair_share_delay_share, 0.0);
}

TEST(VcLoadAnalysisTest, EmptyInput) {
  EXPECT_TRUE(AnalyzeVcLoad({}, {}).rows.empty());
}

TEST(FailureAnalysisTest, ClassifiesFromLogTails) {
  FailureLogSynthesizer synthesizer;
  Rng rng(3);
  std::vector<JobRecord> jobs;
  // Two jobs failing with CPU OOM (2 trials each), one with ckpt error.
  for (JobId id = 1; id <= 2; ++id) {
    auto job = MakeJobRecord(id, 1, Minutes(30), JobStatus::kUnsuccessful);
    job.attempts.clear();
    for (int k = 0; k < 2; ++k) {
      AttemptRecord attempt;
      attempt.index = k;
      attempt.start = k * Minutes(20);
      attempt.end = attempt.start + Minutes(10);
      attempt.failed = true;
      attempt.placement.shards.push_back({0, 1});
      attempt.log_tail = synthesizer.LinesFor(FailureReason::kCpuOutOfMemory, rng);
      job.attempts.push_back(attempt);
    }
    jobs.push_back(job);
  }
  auto ckpt = MakeJobRecord(3, 8, Hours(10), JobStatus::kUnsuccessful);
  ckpt.attempts[0].failed = true;
  ckpt.attempts[0].log_tail = synthesizer.LinesFor(FailureReason::kModelCkptError, rng);
  jobs.push_back(ckpt);

  const auto result = AnalyzeFailures(jobs);
  const auto& oom = result.rows[static_cast<size_t>(FailureReason::kCpuOutOfMemory)];
  EXPECT_EQ(oom.trials, 4);
  EXPECT_EQ(oom.jobs, 2);
  EXPECT_NEAR(oom.rtf_p50_min, 10.0, 0.5);
  const auto& ckpt_row =
      result.rows[static_cast<size_t>(FailureReason::kModelCkptError)];
  EXPECT_EQ(ckpt_row.trials, 1);
  EXPECT_EQ(ckpt_row.demand[static_cast<size_t>(DemandBucket::kGt4Gpu)], 1);
  EXPECT_EQ(result.total_trials, 5);
  // RTF x demand: ckpt failure is 600 min x 8 GPUs vs 40 min x 1 GPU.
  EXPECT_GT(ckpt_row.rtf_x_demand_share, 0.9);
}

TEST(FailureAnalysisTest, RetriesAndUnsuccessfulRates) {
  std::vector<JobRecord> jobs;
  auto retried = MakeJobRecord(1, 16, Hours(1), JobStatus::kUnsuccessful);
  retried.attempts.push_back(retried.attempts[0]);
  retried.attempts.push_back(retried.attempts[0]);
  jobs.push_back(retried);
  jobs.push_back(MakeJobRecord(2, 1, Hours(1), JobStatus::kPassed));
  const auto result = AnalyzeFailures(jobs);
  EXPECT_DOUBLE_EQ(result.mean_retries_by_bucket[3], 2.0);
  EXPECT_DOUBLE_EQ(result.mean_retries_by_bucket[0], 0.0);
  EXPECT_DOUBLE_EQ(result.unsuccessful_rate_by_bucket[3], 1.0);
  EXPECT_DOUBLE_EQ(result.unsuccessful_rate_all, 0.5);
  EXPECT_DOUBLE_EQ(result.mean_retries_all, 1.0);
}

TEST(FailureAnalysisTest, ScatterCollectsTargetReasons) {
  FailureLogSynthesizer synthesizer;
  Rng rng(5);
  std::vector<JobRecord> jobs;
  auto job = MakeJobRecord(1, 24, Hours(20), JobStatus::kUnsuccessful);
  job.attempts[0].failed = true;
  job.attempts[0].log_tail = synthesizer.LinesFor(FailureReason::kSemanticError, rng);
  jobs.push_back(job);
  const auto result = AnalyzeFailures(jobs);
  const auto it = result.rtf_demand_scatter.find(FailureReason::kSemanticError);
  ASSERT_NE(it, result.rtf_demand_scatter.end());
  ASSERT_EQ(it->second.size(), 1u);
  EXPECT_EQ(it->second[0].first, 24);
  EXPECT_NEAR(it->second[0].second, 1200.0, 1.0);
}

}  // namespace
}  // namespace philly
