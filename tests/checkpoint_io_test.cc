// Tests for the checkpoint I/O interference subsystem (src/fault) and its
// integration into ClusterSimulation:
//
//   * DalyOptimalPeriod: the sqrt(2 * write_cost * MTBF) optimum, clamping,
//     and degenerate inputs.
//   * CheckpointIoModel: per-rack fair-share bandwidth, nominal single-writer
//     service, stretching under contention, aborts, rack independence.
//   * FaultProcess config validation: degenerate MTBF/repair/detection values
//     are rejected at construction (regression for the silent-clamp bug).
//   * Durable recovery end-to-end: with the I/O model on, a fault rolls a job
//     back to its last *completed* checkpoint write, with exact timelines for
//     both the clean-kill and the killed-mid-write case.
//   * Cooperative stagger: phase shifts and the per-rack admission limit
//     remove contention stalls that the fixed-period policy incurs.
//   * Byte-identity: with the I/O model disabled, the policy knob must leave
//     every output stream byte-identical; with it enabled, streams must be
//     identical across experiment-pool thread counts (runs under
//     `ctest -L tsan` with -DPHILLY_SANITIZE=thread).
//   * GPU-time conservation (property test): for randomized fault/policy
//     configs, allocated == useful + fault-lost + ckpt-overhead + ckpt-stall
//     over all non-prerun attempts.

#include "src/fault/checkpoint_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/runner.h"
#include "src/fault/fault_process.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/sched/simulation.h"

namespace philly {
namespace {

// --------------------------------------------------------- DalyOptimalPeriod

TEST(DalyOptimalPeriodTest, MatchesTheFirstOrderOptimum) {
  // delta = 50 s per write, M = 100 h: tau = sqrt(2 * 50 * 360000) = 6000 s.
  EXPECT_EQ(DalyOptimalPeriod(50.0, 3600.0 * 100, Minutes(5), Hours(48)),
            6000);
}

TEST(DalyOptimalPeriodTest, ClampsToTheConfiguredBand) {
  // Cheap writes against a flaky machine: the raw optimum undershoots the
  // floor. sqrt(2 * 1 * 3600) = 85 s < 5 min.
  EXPECT_EQ(DalyOptimalPeriod(1.0, 3600.0, Minutes(5), Hours(48)), Minutes(5));
  // Expensive writes against a solid machine: the raw optimum overshoots the
  // ceiling. sqrt(2 * 10000 * 3.6e9) ~ 8.5e6 s > 48 h.
  EXPECT_EQ(DalyOptimalPeriod(10000.0, 3.6e9, Minutes(5), Hours(48)),
            Hours(48));
}

TEST(DalyOptimalPeriodTest, DegenerateInputsDisableCheckpointing) {
  EXPECT_EQ(DalyOptimalPeriod(0.0, 3600.0, Minutes(5), Hours(48)), 0);
  EXPECT_EQ(DalyOptimalPeriod(-1.0, 3600.0, Minutes(5), Hours(48)), 0);
  EXPECT_EQ(DalyOptimalPeriod(10.0, 0.0, Minutes(5), Hours(48)), 0);
  const double nan = std::nan("");
  EXPECT_EQ(DalyOptimalPeriod(nan, 3600.0, Minutes(5), Hours(48)), 0);
  EXPECT_EQ(DalyOptimalPeriod(10.0, nan, Minutes(5), Hours(48)), 0);
}

// --------------------------------------------------------- CheckpointIoModel

TEST(CheckpointIoModelTest, SingleWriterFinishesAtNominalTime) {
  CheckpointIoModel model(/*bandwidth_gbps=*/1.0, /*num_racks=*/2);
  EXPECT_EQ(model.Writers(0), 0);
  EXPECT_FALSE(model.NextCompletion(0, 100).has_value());

  model.BeginWrite(/*rack=*/0, /*job=*/7, /*size_gb=*/16.0, /*now=*/100);
  EXPECT_EQ(model.Writers(0), 1);
  ASSERT_TRUE(model.NextCompletion(0, 100).has_value());
  EXPECT_EQ(*model.NextCompletion(0, 100), 116);

  EXPECT_TRUE(model.CollectCompleted(0, 110).empty());
  const std::vector<JobId> done = model.CollectCompleted(0, 116);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 7);
  EXPECT_EQ(model.Writers(0), 0);
  EXPECT_FALSE(model.NextCompletion(0, 116).has_value());
}

TEST(CheckpointIoModelTest, ConcurrentWritersShareTheBandwidthFairly) {
  CheckpointIoModel model(1.0, 1);
  model.BeginWrite(0, 1, 8.0, 0);
  model.BeginWrite(0, 2, 8.0, 0);
  EXPECT_EQ(model.Writers(0), 2);
  // 8 GB each at an effective 0.5 GB/s: both complete at t=16, in start
  // order.
  EXPECT_EQ(*model.NextCompletion(0, 0), 16);
  const std::vector<JobId> done = model.CollectCompleted(0, 16);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 1);
  EXPECT_EQ(done[1], 2);
}

TEST(CheckpointIoModelTest, LateJoinerStretchesTheFirstWriter) {
  CheckpointIoModel model(1.0, 1);
  model.BeginWrite(0, 1, 16.0, 0);
  EXPECT_EQ(*model.NextCompletion(0, 0), 16);
  // At t=8 job 1 has 8 GB left; job 2 joins with 8 GB. Both drain at
  // 0.5 GB/s and finish together at t=24.
  model.BeginWrite(0, 2, 8.0, 8);
  EXPECT_EQ(*model.NextCompletion(0, 8), 24);
  EXPECT_EQ(model.CollectCompleted(0, 24).size(), 2u);
}

TEST(CheckpointIoModelTest, AbortReturnsBandwidthToTheSurvivors) {
  CheckpointIoModel model(1.0, 1);
  model.BeginWrite(0, 1, 16.0, 0);
  model.BeginWrite(0, 2, 16.0, 0);
  // At t=8 each has 12 GB left. Aborting job 1 gives job 2 the full rate:
  // done at 8 + 12 = 20.
  model.AbortWrite(0, 1, 8);
  EXPECT_EQ(model.Writers(0), 1);
  EXPECT_EQ(*model.NextCompletion(0, 8), 20);
  const std::vector<JobId> done = model.CollectCompleted(0, 20);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2);
}

TEST(CheckpointIoModelTest, RacksAreIndependent) {
  CheckpointIoModel model(1.0, 2);
  model.BeginWrite(0, 1, 8.0, 0);
  model.BeginWrite(1, 2, 8.0, 0);
  // Same-size writes on different racks do not contend.
  EXPECT_EQ(model.Writers(0), 1);
  EXPECT_EQ(model.Writers(1), 1);
  EXPECT_EQ(*model.NextCompletion(0, 0), 8);
  EXPECT_EQ(*model.NextCompletion(1, 0), 8);
}

// ------------------------------------------- FaultProcess config validation

TEST(FaultProcessValidationTest, RejectsDegenerateConfigs) {
  const auto expect_throws = [](FaultProcessConfig config) {
    EXPECT_THROW(FaultProcess(config, 8, 2), std::invalid_argument);
  };
  FaultProcessConfig config;

  config.server_crash_mtbf_hours = -1.0;
  expect_throws(config);
  config.server_crash_mtbf_hours = std::nan("");
  expect_throws(config);
  config = {};
  config.gpu_ecc_mtbf_hours = std::numeric_limits<double>::infinity();
  expect_throws(config);
  config = {};
  config.rack_outage_mtbf_hours = -0.5;
  expect_throws(config);

  config = {};
  config.server_repair_median_hours = 0.0;
  expect_throws(config);
  config = {};
  config.server_repair_p90_hours = -2.0;
  expect_throws(config);
  config = {};
  config.rack_repair_median_hours = std::nan("");
  expect_throws(config);
  config = {};
  config.rack_repair_p90_hours = std::numeric_limits<double>::infinity();
  expect_throws(config);

  config = {};
  config.detection_delay = -1;
  expect_throws(config);
}

TEST(FaultProcessValidationTest, AcceptsValidAndDisabledConfigs) {
  EXPECT_NO_THROW(FaultProcess(FaultProcessConfig{}, 8, 2));  // all disabled
  EXPECT_NO_THROW(FaultProcess(FaultProcessConfig::Calibrated(), 8, 2));
  FaultProcessConfig zero_detection = FaultProcessConfig::Calibrated();
  zero_detection.detection_delay = 0;
  EXPECT_NO_THROW(FaultProcess(zero_detection, 8, 2));
}

// ------------------------------------------------------ simulation scenarios

JobSpec MakeJob(JobId id, SimTime submit, int gpus, SimDuration planned,
                int epochs) {
  JobSpec spec;
  spec.id = id;
  spec.vc = 0;
  spec.user = static_cast<UserId>(id);
  spec.submit_time = submit;
  spec.num_gpus = gpus;
  spec.planned_duration = planned;
  spec.planned_epochs = epochs;
  return spec;
}

SimulationConfig BaseConfig(int racks, int servers_per_rack, int gpus_per_server,
                            SchedulerConfig sched) {
  SimulationConfig config;
  config.cluster = ClusterConfig{};
  config.cluster.skus.push_back({racks, servers_per_rack, gpus_per_server});
  config.scheduler = std::move(sched);
  config.failure.failure_scale = 0.0;  // machine faults are the only failures
  config.vcs.push_back(
      {"vc0", racks * servers_per_rack * gpus_per_server, 1.0, 1.0, true});
  config.seed = 1;
  return config;
}

double ConservationResidual(const SimulationResult& r) {
  return r.allocated_gpu_seconds -
         (r.useful_gpu_seconds + r.machine_fault_lost_gpu_seconds +
          r.ckpt_overhead_gpu_seconds + r.ckpt_stall_gpu_seconds);
}

// One 8-GPU, 10h job with hourly explicit writes (2 GB/GPU at 1 GB/s: 16 s
// nominal). A server crash at t=6h kills the attempt at 6h10m. The exact
// cadence: write k begins at t = 3616k - 16 and completes at 3616k, making
// 3600k of training durable; six writes complete before the kill, so the job
// rolls back to 6h of durable progress and loses only the training since —
// (22200 - 96) - 21600 = 504 s at 8 GPUs.
TEST(CheckpointDurableRecoveryTest, FaultRollsBackToLastCompletedWrite) {
  SimulationConfig config = BaseConfig(1, 1, 8, SchedulerConfig::Philly());
  config.scheduler.checkpoint_period = Hours(1);
  config.ckpt_io.rack_bandwidth_gbps = 1.0;
  config.ckpt_io.size_gb_per_gpu = 2.0;
  config.fault.detection_delay = Minutes(10);
  config.fault.scripted.push_back(
      {FaultKind::kServerCrash, 0, -1, Hours(6), Minutes(30)});
  std::vector<JobSpec> jobs;
  jobs.push_back(MakeJob(1, 0, 8, Hours(10), 10));
  ClusterSimulation sim(config, std::move(jobs));
  const SimulationResult result = sim.Run();

  const SimTime detection = Hours(6) + Minutes(10);
  const SimTime repaired = detection + Minutes(30);

  ASSERT_EQ(result.jobs.size(), 1u);
  const JobRecord& job = result.jobs[0];
  ASSERT_EQ(job.attempts.size(), 2u);
  EXPECT_EQ(job.attempts[0].end, detection);
  EXPECT_TRUE(job.attempts[0].machine_fault);

  // Attempt 1: six completed writes (3616k <= 22200 for k <= 6) at 16 s each.
  // Attempt 2: 14400 s of training remain; writes at training marks 3600,
  // 7200, 10800 (the trigger at 14400 coincides with completion and is
  // skipped), so it runs 14400 + 3*16 s.
  EXPECT_EQ(job.attempts[1].start, repaired);
  EXPECT_EQ(job.attempts[1].Duration(), 14400 + 3 * 16);
  EXPECT_EQ(job.finish_time, repaired + 14400 + 3 * 16);
  EXPECT_EQ(job.status, JobStatus::kPassed);

  EXPECT_EQ(result.ckpt_writes_started, 9);
  EXPECT_EQ(result.ckpt_writes_completed, 9);
  EXPECT_EQ(result.ckpt_writes_interrupted, 0);
  EXPECT_DOUBLE_EQ(result.machine_fault_lost_gpu_seconds, 504.0 * 8);
  EXPECT_DOUBLE_EQ(result.ckpt_overhead_gpu_seconds, 9.0 * 16 * 8);
  EXPECT_DOUBLE_EQ(result.ckpt_stall_gpu_seconds, 0.0);
  // Every useful GPU-second is exactly the planned training time.
  EXPECT_DOUBLE_EQ(result.useful_gpu_seconds, 36000.0 * 8);
  EXPECT_DOUBLE_EQ(ConservationResidual(result), 0.0);
}

// The fault now lands *during* the first write (t=3600..3616, fault at
// t=3605 with zero detection delay): the write aborts, nothing is durable,
// and the whole 3600 s of training is lost. The retried attempt re-runs the
// full job with nine completed writes.
TEST(CheckpointDurableRecoveryTest, FaultMidWriteLosesTheWholeAttempt) {
  SimulationConfig config = BaseConfig(1, 1, 8, SchedulerConfig::Philly());
  config.scheduler.checkpoint_period = Hours(1);
  config.ckpt_io.rack_bandwidth_gbps = 1.0;
  config.ckpt_io.size_gb_per_gpu = 2.0;
  config.fault.detection_delay = 0;
  config.fault.scripted.push_back(
      {FaultKind::kServerCrash, 0, -1, 3605, Minutes(30)});
  std::vector<JobSpec> jobs;
  jobs.push_back(MakeJob(1, 0, 8, Hours(10), 10));
  ClusterSimulation sim(config, std::move(jobs));
  const SimulationResult result = sim.Run();

  ASSERT_EQ(result.jobs.size(), 1u);
  const JobRecord& job = result.jobs[0];
  ASSERT_EQ(job.attempts.size(), 2u);
  EXPECT_EQ(job.attempts[0].end, 3605);
  // Full restart: 36000 s of training plus nine 16 s writes (the tenth
  // trigger coincides with completion and is skipped).
  EXPECT_EQ(job.attempts[1].Duration(), 36000 + 9 * 16);
  EXPECT_EQ(job.status, JobStatus::kPassed);

  EXPECT_EQ(result.ckpt_writes_started, 10);
  EXPECT_EQ(result.ckpt_writes_completed, 9);
  EXPECT_EQ(result.ckpt_writes_interrupted, 1);
  // Lost: all 3600 s of attempt-1 training (the 5 s of aborted write time is
  // checkpoint overhead, not lost training).
  EXPECT_DOUBLE_EQ(result.machine_fault_lost_gpu_seconds, 3600.0 * 8);
  EXPECT_DOUBLE_EQ(result.ckpt_overhead_gpu_seconds, (5.0 + 9.0 * 16) * 8);
  EXPECT_DOUBLE_EQ(result.ckpt_stall_gpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ConservationResidual(result), 0.0);
}

// Two 4-GPU gangs on one server, 2 h jobs, hourly checkpoints (8 GB at
// 1 GB/s: 8 s nominal). Fixed-period fires both writes at t=3600: fair
// sharing stretches each to 16 s, charging 8 s of stall per gang. The
// cooperative policy phase-shifts the second gang (stagger slot) so the
// writes never overlap — same protection, zero stall.
TEST(CheckpointStaggerTest, PhaseShiftRemovesContentionStall) {
  const auto run_with_policy = [](CheckpointPolicy policy) {
    SimulationConfig config = BaseConfig(1, 1, 8, SchedulerConfig::Philly());
    config.scheduler.checkpoint_period = Hours(1);
    config.scheduler.checkpoint_policy = policy;
    config.ckpt_io.rack_bandwidth_gbps = 1.0;
    config.ckpt_io.size_gb_per_gpu = 2.0;
    std::vector<JobSpec> jobs;
    jobs.push_back(MakeJob(1, 0, 4, Hours(2), 2));
    jobs.push_back(MakeJob(2, 0, 4, Hours(2), 2));
    ClusterSimulation sim(config, std::move(jobs));
    return sim.Run();
  };

  const SimulationResult fixed = run_with_policy(CheckpointPolicy::kFixedPeriod);
  EXPECT_EQ(fixed.ckpt_writes_completed, 2);
  EXPECT_DOUBLE_EQ(fixed.ckpt_overhead_gpu_seconds, 2.0 * 8 * 4);
  EXPECT_DOUBLE_EQ(fixed.ckpt_stall_gpu_seconds, 2.0 * 8 * 4);
  EXPECT_DOUBLE_EQ(ConservationResidual(fixed), 0.0);

  const SimulationResult stagger =
      run_with_policy(CheckpointPolicy::kCooperativeStagger);
  EXPECT_EQ(stagger.ckpt_writes_completed, 2);
  EXPECT_DOUBLE_EQ(stagger.ckpt_overhead_gpu_seconds, 2.0 * 8 * 4);
  EXPECT_DOUBLE_EQ(stagger.ckpt_stall_gpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ConservationResidual(stagger), 0.0);

  EXPECT_LT(stagger.ckpt_overhead_gpu_seconds + stagger.ckpt_stall_gpu_seconds,
            fixed.ckpt_overhead_gpu_seconds + fixed.ckpt_stall_gpu_seconds);
}

// With a single stagger slot every phase collapses to zero, so the admission
// limit is what prevents the overlap: the second gang's write is deferred
// (training continues — deferral is not a stall) and admitted when the first
// finishes. Both writes run at nominal speed.
TEST(CheckpointStaggerTest, AdmissionLimitDefersInsteadOfStalling) {
  SimulationConfig config = BaseConfig(1, 1, 8, SchedulerConfig::Philly());
  config.scheduler.checkpoint_period = Hours(1);
  config.scheduler.checkpoint_policy = CheckpointPolicy::kCooperativeStagger;
  config.ckpt_io.rack_bandwidth_gbps = 1.0;
  config.ckpt_io.size_gb_per_gpu = 2.0;
  config.ckpt_io.stagger_slots = 1;
  config.ckpt_io.max_writers_per_rack = 1;
  std::vector<JobSpec> jobs;
  jobs.push_back(MakeJob(1, 0, 4, Hours(2), 2));
  jobs.push_back(MakeJob(2, 0, 4, Hours(2), 2));
  ClusterSimulation sim(config, std::move(jobs));
  const SimulationResult result = sim.Run();

  EXPECT_EQ(result.ckpt_writes_completed, 2);
  EXPECT_DOUBLE_EQ(result.ckpt_overhead_gpu_seconds, 2.0 * 8 * 4);
  EXPECT_DOUBLE_EQ(result.ckpt_stall_gpu_seconds, 0.0);
  // Both gangs finish at the same time: each paused for exactly one nominal
  // write (job 2's deferred write started 8 s later but cost the same).
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.jobs[0].finish_time, result.jobs[1].finish_time);
  EXPECT_DOUBLE_EQ(ConservationResidual(result), 0.0);
}

// ------------------------------------------------------------ byte identity

struct SinkBytes {
  std::string events;
  std::string telemetry;
};

ExperimentConfig DifferentialConfig(uint64_t seed, CheckpointPolicy policy,
                                    bool io_enabled) {
  ExperimentConfig config = ExperimentConfig::BenchScale(/*days=*/1, seed);
  config.simulation.fault = FaultProcessConfig::Calibrated();
  // Compress MTBFs so the one-day window sees a healthy number of faults.
  config.simulation.fault.server_crash_mtbf_hours = 24.0 * 8;
  config.simulation.fault.gpu_ecc_mtbf_hours = 24.0 * 12;
  config.simulation.fault.rack_outage_mtbf_hours = 24.0 * 20;
  config.simulation.scheduler.checkpoint_period = Minutes(30);
  config.simulation.scheduler.checkpoint_policy = policy;
  if (io_enabled) {
    config.simulation.ckpt_io.rack_bandwidth_gbps = 0.5;
    config.simulation.ckpt_io.size_gb_per_gpu = 4.0;
  }
  return config;
}

SinkBytes RunForBytes(ExperimentConfig config, EventLog* log,
                      ClusterTimeSeries* timeseries) {
  config.simulation.obs.event_log = log;
  config.simulation.obs.timeseries = timeseries;
  RunExperiment(config);
  std::ostringstream events;
  std::ostringstream telemetry;
  log->WriteNdjson(events);
  timeseries->WriteNdjson(telemetry);
  return {events.str(), telemetry.str()};
}

SinkBytes RunForBytes(const ExperimentConfig& config) {
  EventLog log;
  ClusterTimeSeries timeseries(Hours(6));
  return RunForBytes(config, &log, &timeseries);
}

// With the I/O model disabled (bandwidth 0), the policy knob must be
// completely inert: every output stream byte-identical to the fixed-period
// default.
TEST(CheckpointDifferentialTest, DisabledIoModelKeepsStreamsByteIdentical) {
  const SinkBytes base =
      RunForBytes(DifferentialConfig(7, CheckpointPolicy::kFixedPeriod, false));
  ASSERT_FALSE(base.events.empty());
  EXPECT_NE(base.events.find("fault_kill"), std::string::npos)
      << "differential config must actually exercise the fault path";
  EXPECT_EQ(base.events.find("ckpt_"), std::string::npos)
      << "disabled model must emit no checkpoint events";

  for (const CheckpointPolicy policy : {CheckpointPolicy::kDalyOptimal,
                                        CheckpointPolicy::kCooperativeStagger}) {
    SCOPED_TRACE(std::string(ToString(policy)));
    const SinkBytes other = RunForBytes(DifferentialConfig(7, policy, false));
    EXPECT_EQ(other.events, base.events);
    EXPECT_EQ(other.telemetry, base.telemetry);
  }
}

// Output streams must be identical across experiment-pool thread counts, both
// with the I/O model disabled (the legacy guarantee) and enabled (the new
// subsystem joins the determinism contract). Runs under `ctest -L tsan`.
TEST(CheckpointDifferentialTest, StreamsIdenticalAcrossThreadCounts) {
  const std::vector<uint64_t> seeds = {42, 7};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const bool io_enabled : {false, true}) {
    SCOPED_TRACE(io_enabled ? "io on" : "io off");
    std::vector<SinkBytes> expected;
    for (const uint64_t seed : seeds) {
      expected.push_back(RunForBytes(DifferentialConfig(
          seed, CheckpointPolicy::kCooperativeStagger, io_enabled)));
    }
    if (io_enabled) {
      EXPECT_NE(expected[0].events.find("ckpt_begin"), std::string::npos)
          << "enabled model must emit checkpoint events";
    }
    for (const int threads : {2, hw > 0 ? hw : 1}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      std::vector<EventLog> logs(seeds.size());
      std::vector<ClusterTimeSeries> series(seeds.size(),
                                            ClusterTimeSeries(Hours(6)));
      std::vector<ExperimentConfig> configs;
      for (size_t i = 0; i < seeds.size(); ++i) {
        ExperimentConfig config = DifferentialConfig(
            seeds[i], CheckpointPolicy::kCooperativeStagger, io_enabled);
        config.simulation.obs.event_log = &logs[i];
        config.simulation.obs.timeseries = &series[i];
        configs.push_back(std::move(config));
      }
      const ExperimentPool pool(threads);
      pool.RunMany(std::move(configs));
      for (size_t i = 0; i < seeds.size(); ++i) {
        SCOPED_TRACE("seed=" + std::to_string(seeds[i]));
        std::ostringstream events;
        std::ostringstream telemetry;
        logs[i].WriteNdjson(events);
        series[i].WriteNdjson(telemetry);
        EXPECT_EQ(events.str(), expected[i].events);
        EXPECT_EQ(telemetry.str(), expected[i].telemetry);
      }
    }
  }
}

// ------------------------------------------------- GPU-time conservation

// Property test: across randomized fault rates, checkpoint policies, and
// bandwidth settings, every allocated GPU-second of a non-prerun attempt is
// exactly one of useful, lost-to-fault, checkpoint overhead, or contention
// stall. Runs through the experiment pool so `ctest -L tsan` also proves the
// accounting is data-race free.
TEST(CheckpointConservationPropertyTest, AllocatedGpuTimeIsFullyAttributed) {
  std::mt19937_64 rng(0xC0DE2026ull);
  const auto uniform = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  const CheckpointPolicy kPolicies[] = {CheckpointPolicy::kFixedPeriod,
                                        CheckpointPolicy::kDalyOptimal,
                                        CheckpointPolicy::kCooperativeStagger};
  std::vector<ExperimentConfig> configs;
  for (int i = 0; i < 12; ++i) {
    ExperimentConfig config =
        ExperimentConfig::BenchScale(/*days=*/1, /*seed=*/1000 + i);
    config.simulation.fault = FaultProcessConfig::Calibrated();
    const double compression = uniform(4.0, 16.0);
    config.simulation.fault.server_crash_mtbf_hours = 24.0 * 90 / compression;
    config.simulation.fault.gpu_ecc_mtbf_hours = 24.0 * 120 / compression;
    config.simulation.fault.rack_outage_mtbf_hours = 24.0 * 180 / compression;
    config.simulation.scheduler.checkpoint_period =
        Minutes(10 + i * 10);
    config.simulation.scheduler.checkpoint_policy = kPolicies[i % 3];
    if (i % 4 != 3) {  // every fourth run keeps the legacy free-I/O model
      config.simulation.ckpt_io.rack_bandwidth_gbps = uniform(0.1, 2.0);
      config.simulation.ckpt_io.size_gb_per_gpu = uniform(0.5, 8.0);
    }
    configs.push_back(std::move(config));
  }

  const ExperimentPool pool;
  const std::vector<ExperimentRun> runs = pool.RunMany(std::move(configs));
  int64_t total_writes = 0;
  int64_t total_kills = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    const SimulationResult& r = runs[i].result;
    total_writes += r.ckpt_writes_completed;
    total_kills += r.machine_fault_kills;
    ASSERT_GT(r.allocated_gpu_seconds, 0.0);
    EXPECT_NEAR(ConservationResidual(r), 0.0,
                1e-6 * r.allocated_gpu_seconds);
  }
  EXPECT_GT(total_writes, 0) << "property test must exercise the I/O model";
  EXPECT_GT(total_kills, 0) << "property test must exercise fault kills";
}

}  // namespace
}  // namespace philly
