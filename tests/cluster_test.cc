#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace philly {
namespace {

TEST(ClusterConfigTest, PaperScaleShape) {
  const auto config = ClusterConfig::PaperScale();
  EXPECT_EQ(config.TotalGpus(), 2112);
  EXPECT_EQ(config.TotalServers(), 336);
  // Two SKUs, 8-GPU and 2-GPU, per the paper.
  ASSERT_EQ(config.skus.size(), 2u);
  EXPECT_EQ(config.skus[0].gpus_per_server, 8);
  EXPECT_EQ(config.skus[1].gpus_per_server, 2);
}

TEST(ClusterTest, TopologyConstruction) {
  Cluster cluster(ClusterConfig::Small());
  EXPECT_EQ(cluster.NumRacks(), 3);
  EXPECT_EQ(cluster.NumServers(), 12);
  EXPECT_EQ(cluster.NumGpus(), 2 * 4 * 8 + 4 * 2);
  EXPECT_EQ(cluster.NumFreeGpus(), cluster.NumGpus());
  EXPECT_EQ(cluster.RackCapacity(0), 32);
  EXPECT_EQ(cluster.RackCapacity(2), 8);
  // RDMA domains are homogeneous in SKU.
  for (ServerId s : cluster.ServersInRack(2)) {
    EXPECT_EQ(cluster.ServerCapacity(s), 2);
  }
}

TEST(ClusterTest, AllocateAndRelease) {
  Cluster cluster(ClusterConfig::Small());
  Placement p;
  p.shards.push_back({0, 4});
  p.shards.push_back({1, 4});
  EXPECT_TRUE(cluster.Allocate(7, p));
  EXPECT_EQ(cluster.NumUsedGpus(), 8);
  EXPECT_EQ(cluster.ServerUsed(0), 4);
  EXPECT_EQ(cluster.ServerFree(1), 4);
  EXPECT_EQ(cluster.RackFreeGpus(0), 24);
  EXPECT_TRUE(cluster.Holds(7));
  EXPECT_EQ(cluster.Release(7), 8);
  EXPECT_EQ(cluster.NumUsedGpus(), 0);
  EXPECT_FALSE(cluster.Holds(7));
}

TEST(ClusterTest, GangAllocationIsAtomic) {
  Cluster cluster(ClusterConfig::Small());
  Placement over;
  over.shards.push_back({0, 8});
  over.shards.push_back({1, 9});  // exceeds server capacity
  EXPECT_FALSE(cluster.Allocate(1, over));
  EXPECT_EQ(cluster.NumUsedGpus(), 0);  // nothing leaked
}

TEST(ClusterTest, RejectsDuplicateServerInPlacement) {
  Cluster cluster(ClusterConfig::Small());
  Placement p;
  p.shards.push_back({0, 4});
  p.shards.push_back({0, 4});
  EXPECT_FALSE(cluster.Allocate(1, p));
  EXPECT_EQ(cluster.NumUsedGpus(), 0);
}

TEST(ClusterTest, RejectsDoubleAllocationForSameJob) {
  Cluster cluster(ClusterConfig::Small());
  Placement p;
  p.shards.push_back({0, 2});
  EXPECT_TRUE(cluster.Allocate(1, p));
  EXPECT_FALSE(cluster.Allocate(1, p));
  EXPECT_EQ(cluster.NumUsedGpus(), 2);
}

TEST(ClusterTest, ReleaseUnknownJobIsNoop) {
  Cluster cluster(ClusterConfig::Small());
  EXPECT_EQ(cluster.Release(99), 0);
}

TEST(ClusterTest, TenantsTracked) {
  Cluster cluster(ClusterConfig::Small());
  Placement a;
  a.shards.push_back({0, 2});
  Placement b;
  b.shards.push_back({0, 3});
  ASSERT_TRUE(cluster.Allocate(1, a));
  ASSERT_TRUE(cluster.Allocate(2, b));
  const auto& tenants = cluster.TenantsOnServer(0);
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].job, 1);
  EXPECT_EQ(tenants[0].gpus, 2);
  EXPECT_EQ(tenants[1].job, 2);
  cluster.Release(1);
  ASSERT_EQ(cluster.TenantsOnServer(0).size(), 1u);
  EXPECT_EQ(cluster.TenantsOnServer(0)[0].job, 2);
}

TEST(ClusterTest, PlacementOfReturnsSortedShards) {
  Cluster cluster(ClusterConfig::Small());
  Placement p;
  p.shards.push_back({3, 1});
  p.shards.push_back({1, 2});
  ASSERT_TRUE(cluster.Allocate(5, p));
  const Placement held = cluster.PlacementOf(5);
  ASSERT_EQ(held.shards.size(), 2u);
  EXPECT_EQ(held.shards[0].server, 1);
  EXPECT_EQ(held.shards[1].server, 3);
  EXPECT_EQ(held.NumGpus(), 3);
  EXPECT_TRUE(cluster.PlacementOf(999).Empty());
}

TEST(ClusterTest, FragmentationMetrics) {
  Cluster cluster(ClusterConfig::Small());
  EXPECT_DOUBLE_EQ(cluster.EmptyServerFraction(), 1.0);
  EXPECT_EQ(cluster.RacksWithEmptyServers(), 3);
  // Put one GPU on every server: no server empty.
  for (ServerId s = 0; s < cluster.NumServers(); ++s) {
    Placement p;
    p.shards.push_back({s, 1});
    ASSERT_TRUE(cluster.Allocate(100 + s, p));
  }
  EXPECT_DOUBLE_EQ(cluster.EmptyServerFraction(), 0.0);
  EXPECT_EQ(cluster.RacksWithEmptyServers(), 0);
}

TEST(ClusterTest, OccupancyFraction) {
  Cluster cluster(ClusterConfig::Small());
  Placement p;
  p.shards.push_back({0, 8});
  ASSERT_TRUE(cluster.Allocate(1, p));
  EXPECT_NEAR(cluster.Occupancy(), 8.0 / 72.0, 1e-12);
}

TEST(ClusterTest, HostResourceProportionality) {
  ClusterConfig config = ClusterConfig::Small();
  config.cpu_cores_per_server = 64;
  config.memory_gb_per_server = 512;
  Cluster cluster(config);
  // Server 0 has 8 GPUs: 2 GPUs get a quarter of the host.
  EXPECT_DOUBLE_EQ(cluster.CpuCoresFor(0, 2), 16.0);
  EXPECT_DOUBLE_EQ(cluster.MemoryGbFor(0, 2), 128.0);
  // The 2-GPU SKU (rack 2): 1 GPU gets half.
  const ServerId small_server = cluster.ServersInRack(2)[0];
  EXPECT_DOUBLE_EQ(cluster.CpuCoresFor(small_server, 1), 32.0);
}

// Property: random allocate/release sequences conserve GPU accounting.
class ClusterFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterFuzz, ConservationUnderRandomOps) {
  Cluster cluster(ClusterConfig::Small());
  Rng rng(GetParam());
  std::vector<JobId> held;
  int expected_used = 0;

  for (int step = 0; step < 2000; ++step) {
    if (rng.Bernoulli(0.6)) {
      // Try an allocation on a random server set.
      Placement p;
      const int shards = static_cast<int>(rng.Between(1, 3));
      for (int i = 0; i < shards; ++i) {
        const auto server = static_cast<ServerId>(rng.Below(
            static_cast<uint64_t>(cluster.NumServers())));
        const int want = static_cast<int>(rng.Between(1, 4));
        p.shards.push_back({server, want});
      }
      const JobId id = step + 1;
      const int gpus = p.NumGpus();
      if (cluster.Allocate(id, p)) {
        held.push_back(id);
        expected_used += gpus;
      }
    } else if (!held.empty()) {
      const size_t pick = rng.Below(held.size());
      const JobId id = held[pick];
      const Placement held_placement = cluster.PlacementOf(id);
      EXPECT_EQ(cluster.Release(id), held_placement.NumGpus());
      expected_used -= held_placement.NumGpus();
      held.erase(held.begin() + static_cast<long>(pick));
    }
    ASSERT_EQ(cluster.NumUsedGpus(), expected_used);
    ASSERT_GE(cluster.NumFreeGpus(), 0);
    // Per-server and per-rack invariants.
    int sum_used = 0;
    for (ServerId s = 0; s < cluster.NumServers(); ++s) {
      ASSERT_GE(cluster.ServerUsed(s), 0);
      ASSERT_LE(cluster.ServerUsed(s), cluster.ServerCapacity(s));
      sum_used += cluster.ServerUsed(s);
    }
    ASSERT_EQ(sum_used, expected_used);
    int rack_free_sum = 0;
    for (RackId r = 0; r < cluster.NumRacks(); ++r) {
      rack_free_sum += cluster.RackFreeGpus(r);
    }
    ASSERT_EQ(rack_free_sum, cluster.NumFreeGpus());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFuzz,
                         ::testing::Values(3, 17, 71, 333, 9001));

}  // namespace
}  // namespace philly
