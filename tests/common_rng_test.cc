#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace philly {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform(5.0, 9.0);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 9.0);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Between(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(23);
  std::vector<double> xs(20001);
  for (auto& x : xs) {
    x = rng.Lognormal(std::log(42.0), 0.8);
  }
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 42.0, 2.0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Exponential(5.0);
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(RngTest, ParetoBoundedBelowByScale) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(37);
  double small_sum = 0.0;
  double large_sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    small_sum += static_cast<double>(rng.Poisson(3.0));
    large_sum += static_cast<double>(rng.Poisson(120.0));
  }
  EXPECT_NEAR(small_sum / kN, 3.0, 0.05);
  EXPECT_NEAR(large_sum / kN, 120.0, 0.5);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(41);
  const double weights[] = {1.0, 3.0, 0.0, 6.0};
  int counts[4] = {0, 0, 0, 0};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(RngTest, CategoricalNegativeWeightsTreatedAsZero) {
  Rng rng(43);
  const double weights[] = {-5.0, 1.0};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.Fork();
  // Parent and child should not produce the same sequence.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  }
}

// Property sweep: sampling helpers stay in-range across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, SamplersStayInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.Uniform(), 0.0);
    EXPECT_LT(rng.Uniform(), 1.0);
    EXPECT_LT(rng.Below(17), 17u);
    EXPECT_GT(rng.Exponential(2.0), 0.0);
    EXPECT_GT(rng.Lognormal(0.0, 1.0), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace philly
