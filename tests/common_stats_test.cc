#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace philly {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Count(), 8.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStatsTest, WeightsActLikeRepeats) {
  RunningStats weighted;
  weighted.Add(3.0, 2.0);
  weighted.Add(6.0, 1.0);
  RunningStats repeated;
  repeated.Add(3.0);
  repeated.Add(3.0);
  repeated.Add(6.0);
  EXPECT_NEAR(weighted.Mean(), repeated.Mean(), 1e-12);
  EXPECT_NEAR(weighted.Variance(), repeated.Variance(), 1e-12);
}

TEST(RunningStatsTest, NonPositiveWeightIgnored) {
  RunningStats s;
  s.Add(10.0, 0.0);
  s.Add(10.0, -1.0);
  EXPECT_EQ(s.Count(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  Rng rng(5);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(StreamingHistogramTest, QuantilesOfUniformGrid) {
  StreamingHistogram h(0.0, 100.0, 1000);
  for (int i = 0; i < 10000; ++i) {
    h.Add(i % 100 + 0.5);
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.1), 10.0, 1.0);
}

TEST(StreamingHistogramTest, MeanIsExactRegardlessOfBinning) {
  StreamingHistogram h(0.0, 10.0, 4);  // coarse bins
  h.Add(1.0);
  h.Add(2.0);
  h.Add(9.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 9.0);
}

TEST(StreamingHistogramTest, OutOfRangeClampsIntoEdgeBins) {
  StreamingHistogram h(0.0, 10.0, 10);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_DOUBLE_EQ(h.Count(), 2.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(10.0), 1.0);
}

TEST(StreamingHistogramTest, LogScaleQuantiles) {
  StreamingHistogram h(0.1, 10000.0, 500, StreamingHistogram::Scale::kLog);
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    h.Add(rng.Lognormal(std::log(30.0), 1.0));
  }
  EXPECT_NEAR(h.Quantile(0.5), 30.0, 3.0);
  // p90 of lognormal(ln30, 1) = 30 * exp(1.2816) = 108.1
  EXPECT_NEAR(h.Quantile(0.9), 108.0, 12.0);
}

TEST(StreamingHistogramTest, CdfAtIsMonotone) {
  StreamingHistogram h(0.0, 100.0, 50);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    h.Add(rng.Uniform(0, 100));
  }
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 2.5) {
    const double c = h.CdfAt(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.CdfAt(100.0), 1.0);
}

TEST(StreamingHistogramTest, CdfSeriesEndsAtOne) {
  StreamingHistogram h(0.0, 10.0, 20);
  h.Add(3.0);
  h.Add(7.0);
  const auto series = h.CdfSeries();
  ASSERT_EQ(series.size(), 20u);
  EXPECT_DOUBLE_EQ(series.back().cumulative, 1.0);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].cumulative, series[i - 1].cumulative);
    EXPECT_GT(series[i].value, series[i - 1].value);
  }
}

TEST(StreamingHistogramTest, MergeAddsMass) {
  StreamingHistogram a(0.0, 10.0, 10);
  StreamingHistogram b(0.0, 10.0, 10);
  a.Add(1.0);
  b.Add(9.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Count(), 2.0);
  EXPECT_NEAR(a.Quantile(0.75), 9.0, 1.1);
}

TEST(StreamingHistogramTest, EmptyQuantileIsZero) {
  StreamingHistogram h(0.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(0.5), 0.0);
  EXPECT_TRUE(h.CdfSeries().empty());
}

TEST(SummarizeTest, FieldsPopulated) {
  StreamingHistogram h(0.0, 100.0, 200);
  for (int i = 1; i <= 100; ++i) {
    h.Add(i);
  }
  const Summary s = Summarize(h);
  EXPECT_DOUBLE_EQ(s.count, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.5, 1.0);
  EXPECT_NEAR(s.p90, 90.5, 1.5);
}

TEST(PercentileTest, ExactOrderStatistics) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.25), 2.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 5.0);
}

// The sort-once multi-quantile helper must agree with the one-at-a-time
// Percentile bit-for-bit, including unsorted input, repeated values, clamped
// p, and out-of-order quantile requests (AnalyzeRtf regression).
TEST(PercentilesTest, MatchesSingleQuantileCallsExactly) {
  const std::vector<double> xs = {5.0, 1.0,  3.0, 2.0,  4.0, 4.0,
                                  0.1, 99.5, 2.7, -3.0, 2.7, 8.25};
  const std::vector<double> ps = {0.95, 0.0, 0.5, 0.9, 1.0, 0.25, -0.5, 1.5};
  const std::vector<double> got = Percentiles(xs, ps);
  ASSERT_EQ(got.size(), ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(got[i], Percentile(xs, ps[i])) << "p=" << ps[i];
  }
}

TEST(PercentilesTest, EmptySamplesYieldZeros) {
  const std::vector<double> ps = {0.5, 0.9};
  const std::vector<double> got = Percentiles({}, ps);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], 0.0);
  EXPECT_DOUBLE_EQ(got[1], 0.0);
}

// Pre-fix-failing regression: with mass {2.0 in bin0, 2.0 in bin5} and
// p = 0.5, the cumulative target (2.0) lands exactly on the running sum after
// bin 0, so the old `cum + counts_[i] >= target` scan stopped at the *empty*
// bin 1 and returned its lower edge (1.0). The quantile of the observed mass
// is the lower edge of the next populated bin.
TEST(StreamingHistogramTest, QuantileSkipsEmptyBinsOnExactBoundary) {
  StreamingHistogram h(0.0, 10.0, 10);
  h.Add(0.5, 2.0);  // bin 0
  h.Add(5.5, 2.0);  // bin 5
  const double q = h.Quantile(0.5);
  // Old behavior: 1.0 (lower edge of empty bin 1). Fixed: lower edge of the
  // populated bin 5, clamped into [min, max] = [0.5, 5.5].
  EXPECT_DOUBLE_EQ(q, 5.0);
  // And a boundary landing inside a populated bin is untouched.
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5.5);
}

TEST(ReservoirTest, KeepsAllWhenUnderCapacity) {
  Reservoir r(10);
  for (int i = 0; i < 5; ++i) {
    r.Add(i);
  }
  EXPECT_EQ(r.Samples().size(), 5u);
  EXPECT_EQ(r.SeenCount(), 5u);
}

TEST(ReservoirTest, BoundedAndRepresentative) {
  Reservoir r(100, 3);
  for (int i = 0; i < 100000; ++i) {
    r.Add(i);
  }
  EXPECT_EQ(r.Samples().size(), 100u);
  EXPECT_EQ(r.SeenCount(), 100000u);
  double mean = 0.0;
  for (double x : r.Samples()) {
    mean += x;
  }
  mean /= 100.0;
  // Uniform subset of [0, 1e5): mean near 5e4.
  EXPECT_NEAR(mean, 50000.0, 10000.0);
}

// Histogram quantile accuracy across bin counts (property sweep).
class HistogramBinSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(HistogramBinSweep, MedianAccuracyScalesWithBins) {
  StreamingHistogram h(0.0, 1000.0, GetParam());
  Rng rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    h.Add(rng.Uniform(0.0, 1000.0));
  }
  const double bin_width = 1000.0 / static_cast<double>(GetParam());
  EXPECT_NEAR(h.Quantile(0.5), 500.0, bin_width + 15.0);
}

INSTANTIATE_TEST_SUITE_P(Bins, HistogramBinSweep,
                         ::testing::Values(10, 50, 100, 200, 500, 1000));

}  // namespace
}  // namespace philly
