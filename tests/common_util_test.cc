// Tests for distributions, CSV, strings, table, and sim-time helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/common/csv.h"
#include "src/common/distributions.h"
#include "src/common/sim_time.h"
#include "src/common/strings.h"
#include "src/common/table.h"

namespace philly {
namespace {

// ------------------------------------------------------------ distributions

TEST(ProbitTest, KnownQuantiles) {
  EXPECT_NEAR(Probit(0.5), 0.0, 1e-9);
  EXPECT_NEAR(Probit(0.9), 1.2815515655, 1e-6);
  EXPECT_NEAR(Probit(0.975), 1.9599639845, 1e-6);
  EXPECT_NEAR(Probit(0.025), -1.9599639845, 1e-6);
  EXPECT_NEAR(Probit(0.0001), -3.7190164855, 1e-5);
}

TEST(LognormalSpecTest, FitRecoversMedianAndP90) {
  const auto spec = LognormalSpec::FromMedianP90(35.0, 350.0);
  EXPECT_NEAR(spec.Median(), 35.0, 1e-9);
  EXPECT_NEAR(spec.Quantile(0.9), 350.0, 1e-6);
}

TEST(LognormalSpecTest, DegenerateWhenMedianEqualsP90) {
  const auto spec = LognormalSpec::FromMedianP90(10.0, 10.0);
  EXPECT_DOUBLE_EQ(spec.sigma, 0.0);
  EXPECT_NEAR(spec.Quantile(0.99), 10.0, 1e-9);
}

TEST(LognormalSpecTest, SampleMedianMatchesFit) {
  const auto spec = LognormalSpec::FromMedianP90(100.0, 1000.0);
  Rng rng(3);
  int below = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    below += spec.Sample(rng) < 100.0 ? 1 : 0;
  }
  EXPECT_NEAR(below / static_cast<double>(kN), 0.5, 0.01);
}

TEST(LognormalSpecTest, MeanFormula) {
  LognormalSpec spec{std::log(10.0), 0.5};
  EXPECT_NEAR(spec.Mean(), 10.0 * std::exp(0.125), 1e-9);
}

TEST(LognormalMixtureTest, SamplesFromAllComponents) {
  LognormalMixture mix;
  mix.AddComponent(0.5, LognormalSpec::FromMedianP90(1.0, 1.1));
  mix.AddComponent(0.5, LognormalSpec::FromMedianP90(1000.0, 1100.0));
  Rng rng(5);
  int small = 0;
  int large = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = mix.Sample(rng);
    (x < 100.0 ? small : large) += 1;
  }
  EXPECT_NEAR(small / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(large / 10000.0, 0.5, 0.03);
}

TEST(ArrivalProcessTest, HomogeneousRateMatches) {
  ArrivalProcess process(60.0);  // 60/hour = 1/minute
  Rng rng(7);
  int64_t t = 0;
  int count = 0;
  while (t < Hours(200)) {
    t = process.NextAfter(t, rng);
    ++count;
  }
  EXPECT_NEAR(count / 200.0, 60.0, 2.5);
}

TEST(ArrivalProcessTest, DiurnalRateOscillates) {
  ArrivalProcess process(10.0, 0.5);
  const double noon = process.RateAt(Hours(12));
  const double midnight = process.RateAt(0);
  EXPECT_GT(noon, 14.0);
  EXPECT_LT(midnight, 6.0);
}

TEST(ArrivalProcessTest, ArrivalsStrictlyIncrease) {
  ArrivalProcess process(100.0, 0.3);
  Rng rng(11);
  int64_t t = 0;
  for (int i = 0; i < 1000; ++i) {
    const int64_t next = process.NextAfter(t, rng);
    ASSERT_GT(next, t);
    t = next;
  }
}

// --------------------------------------------------------------------- csv

TEST(CsvTest, SimpleRowRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.Row("a", 1, 2.5, "text");
  const auto fields = ParseCsvLine("a,1,2.500000,text");
  EXPECT_EQ(fields.size(), 4u);
  EXPECT_EQ(out.str().substr(0, 2), "a,");
}

TEST(CsvTest, QuotingRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"plain", "has,comma", "has\"quote", "multi\nline"});
  std::string line = out.str();
  // Strip the trailing newline but keep the embedded (quoted) one.
  line.pop_back();
  const auto fields = ParseCsvLine(line);
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "plain");
  EXPECT_EQ(fields[1], "has,comma");
  EXPECT_EQ(fields[2], "has\"quote");
}

TEST(CsvTest, ParseEmptyFields) {
  const auto fields = ParseCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvTest, ReadCsvSkipsBlankLines) {
  std::istringstream in("a,b\n\n1,2\n");
  const auto rows = ReadCsv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

// Regression: ReadCsv used to split records on every physical newline, so a
// quoted field containing '\n' (written legally by CsvWriter) came back as
// two broken rows.
TEST(CsvTest, ReadCsvJoinsQuotedMultilineRecords) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"1", "first\nsecond", "tail"});
  writer.WriteRow({"2", "with\n\nblank line inside", "end"});
  writer.WriteRow({"3", "plain", "last"});
  std::istringstream in(out.str());
  const auto rows = ReadCsv(in);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], "first\nsecond");
  EXPECT_EQ(rows[1][1], "with\n\nblank line inside");
  EXPECT_EQ(rows[1][2], "end");
  EXPECT_EQ(rows[2][1], "plain");
}

TEST(CsvTest, ReadCsvSalvagesUnterminatedQuote) {
  std::istringstream in("a,\"open quote\nnext line\n");
  const auto rows = ReadCsv(in);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][1], "open quote\nnext line");
}

// ------------------------------------------------------------------ strings

TEST(StringsTest, SplitKeepsEmpty) {
  const auto parts = Split("a::b:", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ContainsAndStartsWith) {
  EXPECT_TRUE(StartsWith("CUDA error: foo", "CUDA"));
  EXPECT_FALSE(StartsWith("x", "xy"));
  EXPECT_TRUE(Contains("RuntimeError: CUDA out of memory", "out of memory"));
  EXPECT_TRUE(ContainsIgnoreCase("MEMORYERROR", "MemoryError"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.523, 1), "52.3%");
}

// -------------------------------------------------------------------- table

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string rendered = table.Render();
  EXPECT_NE(rendered.find("name   | value"), std::string::npos);
  EXPECT_NE(rendered.find("longer | 22"), std::string::npos);
}

TEST(TextTableTest, RuleInsertion) {
  TextTable table({"h"});
  table.AddRow({"a"});
  table.AddRule();
  table.AddRow({"b"});
  const std::string rendered = table.Render();
  // Header rule + explicit rule.
  size_t rules = 0;
  size_t pos = 0;
  while ((pos = rendered.find("-\n", pos)) != std::string::npos) {
    ++rules;
    ++pos;
  }
  EXPECT_GE(rules, 2u);
}

// ----------------------------------------------------------------- sim_time

TEST(SimTimeTest, UnitHelpers) {
  EXPECT_EQ(Minutes(2), 120);
  EXPECT_EQ(Hours(1), 3600);
  EXPECT_EQ(Days(1), 86400);
  EXPECT_DOUBLE_EQ(ToMinutes(90), 1.5);
  EXPECT_DOUBLE_EQ(ToDays(Days(3)), 3.0);
}

TEST(SimTimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(Days(2) + Hours(3) + Minutes(15) + 42), "2d 03:15:42");
  EXPECT_EQ(FormatDuration(Minutes(5)), "00:05:00");
  EXPECT_EQ(FormatDuration(-Minutes(1)), "-00:01:00");
}

}  // namespace
}  // namespace philly
