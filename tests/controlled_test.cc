#include "src/telemetry/controlled.h"

#include <gtest/gtest.h>

#include "src/workload/model_zoo.h"

namespace philly {
namespace {

ClusterConfig Testbed() {
  ClusterConfig config;
  config.skus.push_back({1, 2, 4});  // two 4-GPU servers
  return config;
}

JobSpec ResNet(JobId id, int gpus) {
  JobSpec job;
  job.id = id;
  job.num_gpus = gpus;
  job.model = ModelFamily::kResNet;
  job.base_utilization = ProfileOf(ModelFamily::kResNet).base_util_mean;
  return job;
}

TEST(ControlledExperimentTest, ReproducesTable4Calibration) {
  ControlledExperiment experiment(Testbed());
  Placement same;
  same.shards = {{0, 2}};
  ASSERT_TRUE(experiment.Place(ResNet(1, 2), same));
  EXPECT_NEAR(experiment.StudyUtilization(), 0.577, 1e-6);
  EXPECT_NEAR(experiment.StudyImagesPerSecond(), 114.8, 1.0);
}

TEST(ControlledExperimentTest, BackgroundJobsInterfere) {
  ControlledExperiment experiment(Testbed());
  Placement diff;
  diff.shards = {{0, 1}, {1, 1}};
  ASSERT_TRUE(experiment.Place(ResNet(1, 2), diff, /*study=*/true));
  const double alone = experiment.StudyUtilization();
  EXPECT_NEAR(alone, 0.496, 0.002);

  Placement bg0;
  bg0.shards = {{0, 2}};
  Placement bg1;
  bg1.shards = {{1, 2}};
  ASSERT_TRUE(experiment.Place(ResNet(2, 2), bg0));
  ASSERT_TRUE(experiment.Place(ResNet(3, 2), bg1));
  const double crowded = experiment.StudyUtilization();
  EXPECT_NEAR(crowded, 0.375, 0.004);

  // Removing the background restores the baseline.
  experiment.Remove(2);
  experiment.Remove(3);
  EXPECT_NEAR(experiment.StudyUtilization(), alone, 1e-9);
}

TEST(ControlledExperimentTest, RejectsOverfullPlacement) {
  ControlledExperiment experiment(Testbed());
  Placement too_big;
  too_big.shards = {{0, 5}};  // server has 4 GPUs
  EXPECT_FALSE(experiment.Place(ResNet(1, 5), too_big));
  EXPECT_DOUBLE_EQ(experiment.StudyUtilization(), 0.0);
}

TEST(ControlledExperimentTest, FirstJobIsStudyByDefault) {
  ControlledExperiment experiment(Testbed());
  Placement a;
  a.shards = {{0, 2}};
  Placement b;
  b.shards = {{1, 2}};
  ASSERT_TRUE(experiment.Place(ResNet(7, 2), a));
  ASSERT_TRUE(experiment.Place(ResNet(8, 2), b));
  EXPECT_NEAR(experiment.StudyUtilization(), experiment.UtilizationOf(7), 1e-12);
  EXPECT_DOUBLE_EQ(experiment.UtilizationOf(999), 0.0);
}

}  // namespace
}  // namespace philly
