// Tests for the report helpers and the experiment driver.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/experiment.h"
#include "src/core/report.h"

namespace philly {
namespace {

TEST(ShapeCheckerTest, CountsPassesAndFailures) {
  ShapeChecker checker;
  checker.Check("a", true);
  checker.Check("b", false, "detail");
  checker.Check("c", true);
  EXPECT_EQ(checker.num_checks(), 3);
  EXPECT_EQ(checker.num_failures(), 1);
  EXPECT_FALSE(checker.AllPassed());
  const std::string rendered = checker.Render();
  EXPECT_NE(rendered.find("[ok]   a"), std::string::npos);
  EXPECT_NE(rendered.find("[FAIL] b"), std::string::npos);
  EXPECT_NE(rendered.find("(detail)"), std::string::npos);
  EXPECT_NE(rendered.find("2/3 passed"), std::string::npos);
}

TEST(ShapeCheckerTest, CheckWithinTolerance) {
  ShapeChecker checker;
  checker.CheckWithin("exact", 100.0, 100.0, 0.01);
  checker.CheckWithin("close", 102.0, 100.0, 0.03);
  checker.CheckWithin("far", 110.0, 100.0, 0.03);
  EXPECT_EQ(checker.num_failures(), 1);
}

TEST(ShapeCheckerTest, CheckBandInclusive) {
  ShapeChecker checker;
  checker.CheckBand("lo-edge", 1.0, 1.0, 2.0);
  checker.CheckBand("hi-edge", 2.0, 1.0, 2.0);
  checker.CheckBand("below", 0.99, 1.0, 2.0);
  EXPECT_EQ(checker.num_failures(), 1);
}

TEST(RenderTest, CdfProbesFormat) {
  StreamingHistogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    hist.Add(i + 0.5);
  }
  const std::string probes = RenderCdfProbes(hist, {50.0}, "%");
  EXPECT_NE(probes.find("P(<=50%)"), std::string::npos);
  EXPECT_NE(probes.find("50.0%"), std::string::npos);
}

TEST(RenderTest, SummaryFormat) {
  Summary summary;
  summary.count = 10;
  summary.mean = 1.5;
  summary.p50 = 1.0;
  summary.p90 = 3.0;
  summary.p95 = 4.0;
  const std::string rendered = RenderSummary(summary, 1);
  EXPECT_NE(rendered.find("n=10"), std::string::npos);
  EXPECT_NE(rendered.find("mean=1.5"), std::string::npos);
  EXPECT_NE(rendered.find("p95=4.0"), std::string::npos);
}

TEST(RenderTest, WriteCdfCsvRoundTrip) {
  StreamingHistogram hist(0.0, 10.0, 10);
  hist.Add(2.5);
  hist.Add(7.5);
  const std::string path = ::testing::TempDir() + "/cdf_test.csv";
  ASSERT_TRUE(WriteCdfCsv(hist, path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "value,cumulative");
  int rows = 0;
  double last_cum = -1.0;
  while (std::getline(in, line)) {
    ++rows;
    double value = 0.0;
    double cum = 0.0;
    ASSERT_EQ(std::sscanf(line.c_str(), "%lf,%lf", &value, &cum), 2);
    EXPECT_GE(cum, last_cum);
    last_cum = cum;
  }
  EXPECT_EQ(rows, 10);
  EXPECT_DOUBLE_EQ(last_cum, 1.0);
  std::remove(path.c_str());
}

TEST(RenderTest, WriteCdfCsvFailsOnBadPath) {
  StreamingHistogram hist(0.0, 1.0, 4);
  EXPECT_FALSE(WriteCdfCsv(hist, "/nonexistent/dir/file.csv"));
}

TEST(ExperimentTest, BenchScaleIsConsistent) {
  const auto config = ExperimentConfig::BenchScale(3, 9);
  EXPECT_EQ(config.workload.duration, Days(3));
  EXPECT_EQ(config.workload.seed, 9u);
  EXPECT_EQ(config.simulation.seed, 9u);
  // VC definitions shared between workload and simulation.
  ASSERT_EQ(config.workload.vcs.size(), config.simulation.vcs.size());
  for (size_t i = 0; i < config.workload.vcs.size(); ++i) {
    EXPECT_EQ(config.workload.vcs[i].quota_gpus, config.simulation.vcs[i].quota_gpus);
  }
}

TEST(ExperimentTest, RunExperimentDeterministic) {
  const auto config = ExperimentConfig::BenchScale(1, 77);
  const ExperimentRun a = RunExperiment(config);
  const ExperimentRun b = RunExperiment(config);
  ASSERT_EQ(a.result.jobs.size(), b.result.jobs.size());
  EXPECT_EQ(a.num_jobs, b.num_jobs);
  double ga = 0.0;
  double gb = 0.0;
  for (const auto& job : a.result.jobs) {
    ga += job.gpu_seconds;
  }
  for (const auto& job : b.result.jobs) {
    gb += job.gpu_seconds;
  }
  EXPECT_DOUBLE_EQ(ga, gb);
}

TEST(ExperimentTest, SeedChangesOutcome) {
  const ExperimentRun a = RunExperiment(ExperimentConfig::BenchScale(1, 1));
  const ExperimentRun b = RunExperiment(ExperimentConfig::BenchScale(1, 2));
  double ga = 0.0;
  double gb = 0.0;
  for (const auto& job : a.result.jobs) {
    ga += job.gpu_seconds;
  }
  for (const auto& job : b.result.jobs) {
    gb += job.gpu_seconds;
  }
  EXPECT_NE(ga, gb);
}

}  // namespace
}  // namespace philly
