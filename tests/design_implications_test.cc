// Tests for the §5 design-implication mechanisms: migration defragmentation,
// the predictive retry policy, and the single-GPU pre-run pool.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/failure/retry_policy.h"
#include "src/sched/simulation.h"

namespace philly {
namespace {

struct SimSetup {
  WorkloadConfig workload;
  SimulationConfig simulation;
  std::vector<JobSpec> jobs;

  explicit SimSetup(int days = 2, uint64_t seed = 19,
                 SchedulerConfig sched = SchedulerConfig::Philly()) {
    workload = WorkloadConfig::Scaled(days, seed);
    simulation.vcs = workload.vcs;
    simulation.scheduler = std::move(sched);
    simulation.seed = seed;
    jobs = WorkloadGenerator(workload).Generate();
  }
  SimulationResult Run() {
    ClusterSimulation sim(simulation, jobs);
    return sim.Run();
  }
};

// ---------------------------------------------------------------- predictive

TEST(PredictiveRetryPolicyTest, BlacklistsRepeatingPairs) {
  PredictiveRetryPolicy policy(/*max_retries=*/5, /*repeat_threshold=*/3);
  const UserId user = 7;
  EXPECT_TRUE(policy.ShouldRetryFor(user, FailureReason::kCpuOutOfMemory, 0));
  policy.ObserveFailure(user, FailureReason::kCpuOutOfMemory);
  policy.ObserveFailure(user, FailureReason::kCpuOutOfMemory);
  EXPECT_TRUE(policy.ShouldRetryFor(user, FailureReason::kCpuOutOfMemory, 0));
  policy.ObserveFailure(user, FailureReason::kCpuOutOfMemory);
  EXPECT_FALSE(policy.ShouldRetryFor(user, FailureReason::kCpuOutOfMemory, 0));
  // Other users and other reasons are unaffected.
  EXPECT_TRUE(policy.ShouldRetryFor(user + 1, FailureReason::kCpuOutOfMemory, 0));
  EXPECT_TRUE(policy.ShouldRetryFor(user, FailureReason::kMpiError, 0));
  EXPECT_EQ(policy.NumBlacklistedPairs(), 1);
}

TEST(PredictiveRetryPolicyTest, RespectsRetryBudget) {
  PredictiveRetryPolicy policy(/*max_retries=*/2, /*repeat_threshold=*/100);
  EXPECT_TRUE(policy.ShouldRetryFor(1, FailureReason::kMpiError, 1));
  EXPECT_FALSE(policy.ShouldRetryFor(1, FailureReason::kMpiError, 2));
}

// Regression: the reason-only overload used to return `attempt_index <
// max_retries` without ever consulting pair_failures_, so any caller without
// a user context silently bypassed the blacklist. Both overloads now route
// through one decision; without a user the policy is conservative and treats
// a reason blacklisted for *any* user as stop-worthy.
TEST(PredictiveRetryPolicyTest, ReasonOnlyOverloadConsultsBlacklist) {
  PredictiveRetryPolicy policy(/*max_retries=*/5, /*repeat_threshold=*/3);
  const UserId user = 11;
  EXPECT_TRUE(policy.ShouldRetry(FailureReason::kCpuOutOfMemory, 0));
  policy.ObserveFailure(user, FailureReason::kCpuOutOfMemory);
  policy.ObserveFailure(user, FailureReason::kCpuOutOfMemory);
  EXPECT_TRUE(policy.ShouldRetry(FailureReason::kCpuOutOfMemory, 0));
  policy.ObserveFailure(user, FailureReason::kCpuOutOfMemory);
  // Pre-fix this returned true: the blacklist only worked via ShouldRetryFor.
  EXPECT_FALSE(policy.ShouldRetry(FailureReason::kCpuOutOfMemory, 0));
  // Other reasons still retry, and the user-aware overload agrees.
  EXPECT_TRUE(policy.ShouldRetry(FailureReason::kMpiError, 0));
  EXPECT_FALSE(policy.ShouldRetryFor(user, FailureReason::kCpuOutOfMemory, 0));
  // The budget cap still applies through the shared path.
  EXPECT_FALSE(policy.ShouldRetry(FailureReason::kMpiError, 5));
}

TEST(PredictiveRetryPolicyTest, ReducesWastedGpuTimeInSimulation) {
  SchedulerConfig fixed = SchedulerConfig::Philly();
  SchedulerConfig predictive = SchedulerConfig::Philly();
  predictive.retry_policy = SchedulerConfig::RetryPolicyKind::kPredictive;
  predictive.predictive_repeat_threshold = 2;
  const auto wasted = [](const SimulationResult& result) {
    double gpu = 0.0;
    for (const auto& job : result.jobs) {
      for (const auto& attempt : job.attempts) {
        if (attempt.failed) {
          gpu += attempt.GpuTime();
        }
      }
    }
    return gpu;
  };
  const double fixed_waste = wasted(SimSetup(2, 19, fixed).Run());
  const double predictive_waste = wasted(SimSetup(2, 19, predictive).Run());
  EXPECT_LT(predictive_waste, fixed_waste);
}

// ------------------------------------------------------------------- prerun

TEST(PrerunPoolTest, CatchesEarlyFailuresOnOneGpu) {
  SchedulerConfig sched = SchedulerConfig::Philly();
  sched.enable_prerun_pool = true;
  SimSetup setup(2, 19, sched);
  const auto result = setup.Run();
  EXPECT_GT(result.prerun_jobs, 0);
  EXPECT_GT(result.prerun_catches, 0);
  EXPECT_GT(result.prerun_gpu_seconds, 0.0);
  // Caught attempts are 1-GPU pre-runs with logs and empty placements.
  int caught = 0;
  for (const auto& job : result.jobs) {
    for (const auto& attempt : job.attempts) {
      if (attempt.prerun) {
        EXPECT_GT(job.spec.num_gpus, 1);
        EXPECT_TRUE(attempt.placement.Empty());
        EXPECT_DOUBLE_EQ(attempt.GpuTime(),
                         static_cast<double>(attempt.Duration()));
        if (attempt.failed) {
          ++caught;
          EXPECT_FALSE(attempt.log_tail.empty());
        }
      }
    }
  }
  EXPECT_EQ(caught, result.prerun_catches);
}

TEST(PrerunPoolTest, SavesMultiGpuFailureTime) {
  SchedulerConfig baseline = SchedulerConfig::Philly();
  SchedulerConfig prerun = SchedulerConfig::Philly();
  prerun.enable_prerun_pool = true;
  const auto multi_gpu_failure_time = [](const SimulationResult& result) {
    double gpu = 0.0;
    for (const auto& job : result.jobs) {
      if (job.spec.num_gpus <= 1) {
        continue;
      }
      for (const auto& attempt : job.attempts) {
        if (attempt.failed && !attempt.prerun && !attempt.preempted) {
          gpu += attempt.GpuTime();
        }
      }
    }
    return gpu;
  };
  const auto base = SimSetup(2, 19, baseline).Run();
  const auto with_pool = SimSetup(2, 19, prerun).Run();
  // Gang-scale failure time for multi-GPU jobs drops: first deterministic
  // failures are absorbed by the pool at 1-GPU cost.
  EXPECT_LT(multi_gpu_failure_time(with_pool), multi_gpu_failure_time(base));
  // And the pool's own GPU time is far below the savings' scale.
  EXPECT_LT(with_pool.prerun_gpu_seconds,
            multi_gpu_failure_time(base));
}

TEST(PrerunPoolTest, DisabledByDefault) {
  SimSetup setup(1, 19);
  const auto result = setup.Run();
  EXPECT_EQ(result.prerun_jobs, 0);
  for (const auto& job : result.jobs) {
    for (const auto& attempt : job.attempts) {
      EXPECT_FALSE(attempt.prerun);
    }
  }
}

// --------------------------------------------------------- priority preempt

TEST(PriorityPreemptionTest, SrtfSuspendsLongRunningJobs) {
  SimSetup setup(2, 19, SchedulerConfig::Optimus());
  const auto result = setup.Run();
  EXPECT_GT(result.priority_preemptions, 0);
  // Suspended jobs must not lose progress: passed clean jobs still complete
  // their planned duration across attempts.
  for (const auto& job : result.jobs) {
    if (job.status != JobStatus::kPassed ||
        job.spec.intrinsic != IntrinsicOutcome::kRunToCompletion) {
      continue;
    }
    SimDuration clean = 0;
    for (const auto& attempt : job.attempts) {
      if (!attempt.failed && !attempt.prerun) {
        clean += attempt.Duration();
      }
    }
    EXPECT_GE(clean, job.spec.planned_duration);
  }
}

TEST(PriorityPreemptionTest, LasBandsDampPerJobChurn) {
  // Tiresias's discretization exists to stop continuous LAS from suspending
  // the *same* job over and over (every sliver of attained service makes it
  // the worst-priority candidate again). Wide bands must cap the maximum
  // suspensions any single job suffers.
  const auto max_suspensions = [](const SimulationResult& result) {
    int max_per_job = 0;
    for (const auto& job : result.jobs) {
      int suspensions = 0;
      for (size_t i = 0; i + 1 < job.attempts.size(); ++i) {
        suspensions += !job.attempts[i].failed && !job.attempts[i].prerun;
      }
      max_per_job = std::max(max_per_job, suspensions);
    }
    return max_per_job;
  };
  SchedulerConfig fine = SchedulerConfig::Tiresias();
  fine.las_band_gpu_hours = 0.01;
  SchedulerConfig coarse = SchedulerConfig::Tiresias();
  coarse.las_band_gpu_hours = 64.0;
  const auto fine_result = SimSetup(2, 19, fine).Run();
  const auto coarse_result = SimSetup(2, 19, coarse).Run();
  EXPECT_GT(fine_result.priority_preemptions, 0);
  EXPECT_GT(coarse_result.priority_preemptions, 0);
  EXPECT_LT(max_suspensions(coarse_result), max_suspensions(fine_result) / 2);
}

TEST(PriorityPreemptionTest, DisabledForPhilly) {
  SimSetup setup(1, 19, SchedulerConfig::Philly());
  const auto result = setup.Run();
  EXPECT_EQ(result.priority_preemptions, 0);
}

TEST(PriorityPreemptionTest, ImprovesShortJobLatencyUnderLas) {
  SimSetup fifo_setup(2, 23, SchedulerConfig::Fifo());
  SimSetup las_setup(2, 23, SchedulerConfig::Tiresias());
  const auto measure_short_queue = [](const SimulationResult& result) {
    double sum = 0.0;
    int64_t n = 0;
    for (const auto& job : result.jobs) {
      if (job.spec.planned_duration <= Hours(1)) {
        sum += static_cast<double>(job.InitialQueueDelay());
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  };
  EXPECT_LE(measure_short_queue(las_setup.Run()),
            measure_short_queue(fifo_setup.Run()));
}

// ---------------------------------------------------------------- migration

TEST(MigrationTest, DefragmentsWithoutLosingWork) {
  SchedulerConfig sched = SchedulerConfig::Philly();
  sched.placer.pack_small_jobs = false;  // create fragmentation to clean up
  sched.enable_migration = true;
  sched.migration_period = Minutes(20);
  SimSetup setup(2, 19, sched);
  const auto result = setup.Run();
  EXPECT_GT(result.migrations, 0);
  // Migrated jobs appear as multi-attempt jobs whose non-final attempts are
  // clean (not failed); total executed clean time still completes the job.
  for (const auto& job : result.jobs) {
    if (job.status != JobStatus::kPassed ||
        job.spec.intrinsic != IntrinsicOutcome::kRunToCompletion) {
      continue;
    }
    SimDuration clean = 0;
    for (const auto& attempt : job.attempts) {
      if (!attempt.failed && !attempt.prerun) {
        clean += attempt.Duration();
      }
    }
    EXPECT_GE(clean, job.spec.planned_duration);
  }
}

}  // namespace
}  // namespace philly
