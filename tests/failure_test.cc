#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/failure/failure_catalog.h"
#include "src/failure/failure_injector.h"
#include "src/failure/failure_logs.h"
#include "src/failure/retry_policy.h"
#include "src/workload/generator.h"

namespace philly {
namespace {

// ------------------------------------------------------------------ catalog

TEST(FailureCatalogTest, HasAllTwentyTwoReasons) {
  // 22 published Table 7 rows plus the three machine-fault reasons
  // (node crash / GPU ECC / rack switch outage), which carry zero paper
  // stats so they never perturb the injector's sampling weights.
  const auto catalog = FailureCatalog();
  EXPECT_EQ(catalog.size(), 25u);
  std::set<std::string_view> names;
  int published = 0;
  for (const auto& info : catalog) {
    names.insert(info.name);
    published += info.paper_trials > 0;
    EXPECT_EQ(&InfoOf(info.reason), &info);
  }
  EXPECT_EQ(names.size(), 25u);  // unique names
  EXPECT_EQ(published, 22);
}

TEST(FailureCatalogTest, TotalsMatchPaper) {
  // Published column sums: 39776 failure trials, with no-signature at 4.2%.
  EXPECT_NEAR(TotalPaperTrials(), 39776.0, 1.0);
  const auto& nosig = InfoOf(FailureReason::kNoSignature);
  EXPECT_NEAR(nosig.paper_trials / TotalPaperTrials(), 0.042, 0.002);
}

TEST(FailureCatalogTest, TopReasonsOrderedByTrials) {
  EXPECT_GT(InfoOf(FailureReason::kCpuOutOfMemory).paper_trials,
            InfoOf(FailureReason::kIncorrectInputs).paper_trials);
  EXPECT_GT(InfoOf(FailureReason::kIncorrectInputs).paper_trials,
            InfoOf(FailureReason::kSemanticError).paper_trials);
}

TEST(FailureCatalogTest, RtfFitsRecoverPublishedPercentiles) {
  for (const auto& info : FailureCatalog()) {
    EXPECT_NEAR(info.rtf_fit.Median(), info.rtf_p50_min, info.rtf_p50_min * 0.01)
        << info.name;
    if (info.rtf_p90_min > info.rtf_p50_min) {
      EXPECT_NEAR(info.rtf_fit.Quantile(0.9), info.rtf_p90_min,
                  info.rtf_p90_min * 0.01)
          << info.name;
    }
  }
}

TEST(FailureCatalogTest, InfrastructureFailuresHaveLongRtf) {
  // §4.2.3: model checkpoint and MPI runtime errors appear after long
  // executions and dominate total RTF.
  EXPECT_GT(InfoOf(FailureReason::kModelCkptError).rtf_p50_min, 100.0);
  EXPECT_GT(InfoOf(FailureReason::kMpiRuntimeFailure).rtf_p50_min, 1000.0);
  EXPECT_LT(InfoOf(FailureReason::kSyntaxError).rtf_p50_min, 1.0);
  EXPECT_GT(InfoOf(FailureReason::kModelCkptError).rtf_total_share +
                InfoOf(FailureReason::kMpiRuntimeFailure).rtf_total_share,
            0.30);
}

TEST(FailureCatalogTest, CategoriesAssigned) {
  const auto& traceback = InfoOf(FailureReason::kTracebackFromCrash);
  EXPECT_TRUE(traceback.infrastructure && traceback.ai_engine && traceback.user);
  EXPECT_TRUE(InfoOf(FailureReason::kModelCkptError).infrastructure);
  EXPECT_TRUE(InfoOf(FailureReason::kSyntaxError).user);
  const auto& nosig = InfoOf(FailureReason::kNoSignature);
  EXPECT_FALSE(nosig.infrastructure || nosig.ai_engine || nosig.user);
}

TEST(FailureCatalogTest, DemandBuckets) {
  EXPECT_EQ(DemandBucketOf(1), DemandBucket::k1Gpu);
  EXPECT_EQ(DemandBucketOf(4), DemandBucket::k2To4Gpu);
  EXPECT_EQ(DemandBucketOf(5), DemandBucket::kGt4Gpu);
  EXPECT_EQ(DemandBucketOf(64), DemandBucket::kGt4Gpu);
}

// ----------------------------------------------------------------- injector

JobSpec MakeJob(JobId id, int gpus, SimDuration duration, UserId user = 10) {
  JobSpec job;
  job.id = id;
  job.num_gpus = gpus;
  job.planned_duration = duration;
  job.user = user;
  return job;
}

TEST(FailureInjectorTest, DeterministicPerJob) {
  FailureInjector injector;
  const JobSpec job = MakeJob(5, 8, Hours(4));
  const FailurePlan a = injector.PlanFor(job);
  const FailurePlan b = injector.PlanFor(job);
  EXPECT_EQ(a.fails, b.fails);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.num_failure_trials, b.num_failure_trials);
  EXPECT_EQ(a.trial_rtfs, b.trial_rtfs);
}

TEST(FailureInjectorTest, FailureRateRisesWithGpuCount) {
  FailureInjector injector;
  int small_fails = 0;
  int big_fails = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    small_fails += injector.PlanFor(MakeJob(i, 1, Hours(2), i % 300)).fails;
    big_fails += injector.PlanFor(MakeJob(i + kN, 16, Hours(2), i % 300)).fails;
  }
  EXPECT_GT(big_fails, small_fails * 2);
}

TEST(FailureInjectorTest, RtfBoundedByPlannedDurationMostly) {
  FailureInjector injector;
  int over = 0;
  int total = 0;
  for (int i = 0; i < 20000; ++i) {
    const JobSpec job = MakeJob(i, 4, Minutes(90), i % 100);
    const FailurePlan plan = injector.PlanFor(job);
    if (!plan.fails) {
      continue;
    }
    for (SimDuration rtf : plan.trial_rtfs) {
      ++total;
      if (rtf > job.planned_duration) {
        ++over;
      }
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_EQ(over, 0);
}

TEST(FailureInjectorTest, TrialsWithinCap) {
  FailureInjectorConfig config;
  config.max_failure_trials = 4;
  FailureInjector injector(config);
  for (int i = 0; i < 5000; ++i) {
    const FailurePlan plan = injector.PlanFor(MakeJob(i, 8, Days(2), i % 50));
    if (plan.fails) {
      EXPECT_GE(plan.num_failure_trials, 1);
      EXPECT_LE(plan.num_failure_trials, 4);
      EXPECT_EQ(plan.trial_rtfs.size(),
                static_cast<size_t>(plan.num_failure_trials));
    }
  }
}

TEST(FailureInjectorTest, LongJobsDrawLongRtfReasons) {
  FailureInjector injector;
  double short_ckpt = 0;
  double short_all = 0;
  double long_ckpt = 0;
  double long_all = 0;
  for (int i = 0; i < 60000; ++i) {
    const auto short_plan = injector.PlanFor(MakeJob(i, 4, Minutes(20), i % 500));
    if (short_plan.fails) {
      ++short_all;
      short_ckpt += short_plan.reason == FailureReason::kModelCkptError ||
                    short_plan.reason == FailureReason::kMpiRuntimeFailure;
    }
    const auto long_plan =
        injector.PlanFor(MakeJob(i + 70000, 4, Days(5), i % 500));
    if (long_plan.fails) {
      ++long_all;
      long_ckpt += long_plan.reason == FailureReason::kModelCkptError ||
                   long_plan.reason == FailureReason::kMpiRuntimeFailure;
    }
  }
  ASSERT_GT(short_all, 100);
  ASSERT_GT(long_all, 100);
  EXPECT_GT(long_ckpt / long_all, 3.0 * (short_ckpt / short_all + 0.001));
}

TEST(FailureInjectorTest, NeverInjectsPreemption) {
  FailureInjector injector;
  for (int i = 0; i < 30000; ++i) {
    const FailurePlan plan = injector.PlanFor(MakeJob(i, 8, Days(3), i % 200));
    if (plan.fails) {
      EXPECT_NE(plan.reason, FailureReason::kJobPreempted);
    }
  }
}

TEST(FailureInjectorTest, FailureScaleZeroDisables) {
  FailureInjectorConfig config;
  config.failure_scale = 0.0;
  FailureInjector injector(config);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_FALSE(injector.PlanFor(MakeJob(i, 8, Days(1), i % 40)).fails);
  }
}

TEST(FailureInjectorTest, CursedUserConcentration) {
  // With curses enabled, some (user, reason) pairs should dominate a user's
  // failures, driving the paper's user-level repetition factor.
  FailureInjectorConfig config;
  config.cursed_pair_prob = 0.02;
  config.cursed_pair_multiplier = 200.0;
  FailureInjector injector(config);
  bool found_concentrated_user = false;
  for (UserId user = 0; user < 200 && !found_concentrated_user; ++user) {
    std::map<FailureReason, int> counts;
    int fails = 0;
    for (int i = 0; i < 400; ++i) {
      const auto plan =
          injector.PlanFor(MakeJob(user * 1000 + i, 1, Hours(3), user));
      if (plan.fails) {
        ++fails;
        ++counts[plan.reason];
      }
    }
    for (const auto& [reason, count] : counts) {
      if (fails >= 20 && count >= fails * 0.8) {
        found_concentrated_user = true;
      }
    }
  }
  EXPECT_TRUE(found_concentrated_user);
}

// ------------------------------------------------------------ logs/classifier

TEST(FailureLogsTest, ClassifierHasManyRules) {
  FailureClassifier classifier;
  EXPECT_GE(classifier.NumRules(), 70u);
}

TEST(FailureLogsTest, NoSignatureWhenNothingMatches) {
  FailureClassifier classifier;
  const std::vector<std::string> lines = {"all good", "nothing to see"};
  EXPECT_EQ(classifier.Classify(lines), FailureReason::kNoSignature);
  EXPECT_EQ(classifier.Classify({}), FailureReason::kNoSignature);
}

TEST(FailureLogsTest, RootCauseWinsOverTraceback) {
  FailureClassifier classifier;
  const std::vector<std::string> lines = {
      "Traceback (most recent call last):",
      "  File \"train.py\", line 10, in main",
      "MemoryError",
  };
  EXPECT_EQ(classifier.Classify(lines), FailureReason::kCpuOutOfMemory);
}

TEST(FailureLogsTest, GpuOomBeatsGenericCuda) {
  FailureClassifier classifier;
  const std::vector<std::string> lines = {
      "RuntimeError: CUDA out of memory. Tried to allocate 2.00 MiB"};
  EXPECT_EQ(classifier.Classify(lines), FailureReason::kGpuOutOfMemory);
}

TEST(FailureLogsTest, EpochLossLineRoundTrip) {
  const std::string line = FailureLogSynthesizer::EpochLossLine(12, 50, 0.123456);
  EpochLoss parsed;
  ASSERT_TRUE(ParseEpochLossLine(line, &parsed));
  EXPECT_EQ(parsed.epoch, 12);
  EXPECT_EQ(parsed.total_epochs, 50);
  EXPECT_NEAR(parsed.loss, 0.123456, 1e-9);
  EXPECT_FALSE(ParseEpochLossLine("INFO worker 3: step time 0.5s", &parsed));
}

// Parameterized: every reason's synthesized logs must classify back to that
// reason (the whole classifier pipeline is lossless over the template set).
class ClassifierRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ClassifierRoundTrip, SynthesizedLogsClassifyCorrectly) {
  const auto reason = static_cast<FailureReason>(GetParam());
  FailureLogSynthesizer synthesizer;
  FailureClassifier classifier;
  Rng rng(static_cast<uint64_t>(GetParam()) + 1);
  for (int i = 0; i < 200; ++i) {
    const auto lines = synthesizer.LinesFor(reason, rng);
    EXPECT_EQ(classifier.Classify(lines), reason)
        << "template sample " << i << " for " << ToString(reason);
  }
}

INSTANTIATE_TEST_SUITE_P(AllReasons, ClassifierRoundTrip,
                         ::testing::Range(0, kNumFailureReasons));

// ------------------------------------------------------------- retry policy

TEST(RetryPolicyTest, FixedRespectsBudget) {
  FixedRetryPolicy policy(2);
  EXPECT_TRUE(policy.ShouldRetry(FailureReason::kSyntaxError, 0));
  EXPECT_TRUE(policy.ShouldRetry(FailureReason::kSyntaxError, 1));
  EXPECT_FALSE(policy.ShouldRetry(FailureReason::kSyntaxError, 2));
}

TEST(RetryPolicyTest, AdaptiveStopsDeterministicUserErrors) {
  AdaptiveRetryPolicy policy(5);
  EXPECT_FALSE(policy.ShouldRetry(FailureReason::kSyntaxError, 0));
  EXPECT_FALSE(policy.ShouldRetry(FailureReason::kIncorrectInputs, 0));
  EXPECT_FALSE(policy.ShouldRetry(FailureReason::kCpuOutOfMemory, 0));
  EXPECT_TRUE(policy.ShouldRetry(FailureReason::kMpiRuntimeFailure, 0));
  EXPECT_TRUE(policy.ShouldRetry(FailureReason::kModelCkptError, 0));
  EXPECT_TRUE(policy.ShouldRetry(FailureReason::kJobPreempted, 0));
  EXPECT_FALSE(policy.ShouldRetry(FailureReason::kMpiRuntimeFailure, 5));
}

TEST(RetryPolicyTest, Names) {
  EXPECT_EQ(FixedRetryPolicy().Name(), "fixed");
  EXPECT_EQ(AdaptiveRetryPolicy().Name(), "adaptive");
}

}  // namespace
}  // namespace philly
