// Tests for the machine-level fault subsystem (src/fault) and its
// integration into ClusterSimulation:
//
//   * FaultProcess: per-(seed, server) deterministic renewal streams,
//     independent of query interleaving; disabled configs emit nothing.
//   * NodeHealthTracker: the healthy -> fault-pending -> offline -> healthy
//     state machine and its counters.
//   * Rack outage end-to-end: every gang on the failed rack is killed after
//     exactly the configured detection delay, the rack drains for the repair
//     window, and the jobs recover afterwards.
//   * Checkpoint-aware recovery: a faulted job resumes from its last periodic
//     checkpoint; without checkpointing it restarts from zero and both the
//     lost GPU-time and the finish time grow accordingly.
//   * Determinism: with faults enabled, SimulationResult is byte-identical
//     across repeated serial runs and across experiment-pool thread counts
//     (this test carries the `tsan` ctest label alongside runner_test).

#include "src/fault/fault_process.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/core/runner.h"
#include "src/fault/node_health.h"
#include "src/sched/simulation.h"

namespace philly {
namespace {

// ------------------------------------------------------------- FaultProcess

TEST(FaultProcessTest, DisabledConfigEmitsNothing) {
  FaultProcessConfig config;  // all MTBFs zero, no scripted events
  EXPECT_FALSE(config.Enabled());
  FaultProcess process(config, /*num_servers=*/8, /*num_racks=*/2);
  EXPECT_FALSE(process.enabled());
  EXPECT_FALSE(process.NextServerFault(0, 0).has_value());
  EXPECT_FALSE(process.NextRackFault(0, 0).has_value());
}

TEST(FaultProcessTest, ScriptedEventsAloneEnableTheProcess) {
  FaultProcessConfig config;
  config.scripted.push_back({FaultKind::kServerCrash, 3, -1, Hours(1), Hours(2)});
  EXPECT_TRUE(config.Enabled());
}

TEST(FaultProcessTest, ServerStreamsAreDeterministicAndInterleavingFree) {
  FaultProcessConfig config;
  config.server_crash_mtbf_hours = 24.0 * 30;
  config.gpu_ecc_mtbf_hours = 24.0 * 45;
  FaultProcess a(config, 16, 2);
  FaultProcess b(config, 16, 2);

  // Query `a` in server order and `b` in reverse: per-server streams must not
  // depend on what other servers were asked in between.
  std::vector<FaultEvent> forward;
  for (ServerId s = 0; s < 16; ++s) {
    forward.push_back(*a.NextServerFault(s, 0));
  }
  for (ServerId s = 15; s >= 0; --s) {
    const FaultEvent event = *b.NextServerFault(s, 0);
    EXPECT_EQ(event.at, forward[static_cast<size_t>(s)].at) << "server " << s;
    EXPECT_EQ(event.kind, forward[static_cast<size_t>(s)].kind);
    EXPECT_EQ(event.repair, forward[static_cast<size_t>(s)].repair);
    EXPECT_EQ(event.server, s);
    EXPECT_EQ(event.rack, -1);
  }
  // Renewal: the next event strictly follows the `after` bound.
  for (const FaultEvent& event : forward) {
    EXPECT_GT(event.at, 0);
    EXPECT_GE(event.repair, 1);
    const FaultEvent next = *a.NextServerFault(event.server, event.at);
    EXPECT_GT(next.at, event.at);
  }
}

TEST(FaultProcessTest, SingleFaultClassKeepsItsKind) {
  FaultProcessConfig crash_only;
  crash_only.server_crash_mtbf_hours = 24.0 * 30;
  FaultProcess crash(crash_only, 4, 1);
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(crash.NextServerFault(s, 0)->kind, FaultKind::kServerCrash);
  }
  FaultProcessConfig ecc_only;
  ecc_only.gpu_ecc_mtbf_hours = 24.0 * 30;
  FaultProcess ecc(ecc_only, 4, 1);
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(ecc.NextServerFault(s, 0)->kind, FaultKind::kGpuEccDegraded);
  }
}

TEST(FaultProcessTest, RackStreamEmitsSwitchOutages) {
  FaultProcessConfig config;
  config.rack_outage_mtbf_hours = 24.0 * 20;
  FaultProcess process(config, 8, 4);
  EXPECT_FALSE(process.NextServerFault(0, 0).has_value());
  for (RackId r = 0; r < 4; ++r) {
    const FaultEvent event = *process.NextRackFault(r, 0);
    EXPECT_EQ(event.kind, FaultKind::kSwitchOutage);
    EXPECT_EQ(event.rack, r);
    EXPECT_EQ(event.server, -1);
    EXPECT_GT(event.at, 0);
  }
}

// -------------------------------------------------------- NodeHealthTracker

TEST(NodeHealthTrackerTest, StateMachineAndCounters) {
  NodeHealthTracker health(4);
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_TRUE(health.Healthy(s));
  }
  EXPECT_EQ(health.num_offline(), 0);

  EXPECT_TRUE(health.MarkFault(1, Hours(2), FaultKind::kGpuEccDegraded));
  EXPECT_FALSE(health.Healthy(1));
  EXPECT_EQ(health.StateOf(1), NodeHealthTracker::State::kFaultPending);
  EXPECT_EQ(health.KindOf(1), FaultKind::kGpuEccDegraded);
  EXPECT_EQ(health.FaultTimeOf(1), Hours(2));
  // A second fault on a pending/offline server is swallowed.
  EXPECT_FALSE(health.MarkFault(1, Hours(3), FaultKind::kServerCrash));
  EXPECT_EQ(health.KindOf(1), FaultKind::kGpuEccDegraded);

  health.MarkOffline(1);
  EXPECT_EQ(health.StateOf(1), NodeHealthTracker::State::kOffline);
  EXPECT_EQ(health.num_offline(), 1);
  EXPECT_FALSE(health.MarkFault(1, Hours(4), FaultKind::kServerCrash));

  health.MarkRepaired(1);
  EXPECT_TRUE(health.Healthy(1));
  EXPECT_EQ(health.num_offline(), 0);
  EXPECT_EQ(health.faults_marked(), 1);
  EXPECT_EQ(health.repairs_completed(), 1);
  // Repaired servers can fault again.
  EXPECT_TRUE(health.MarkFault(1, Hours(5), FaultKind::kServerCrash));
}

// ------------------------------------------------------ simulation scenarios

JobSpec MakeJob(JobId id, SimTime submit, int gpus, SimDuration planned,
                int epochs) {
  JobSpec spec;
  spec.id = id;
  spec.vc = 0;
  spec.user = static_cast<UserId>(id);
  spec.submit_time = submit;
  spec.num_gpus = gpus;
  spec.planned_duration = planned;
  spec.planned_epochs = epochs;
  return spec;
}

SimulationConfig BaseConfig(int racks, int servers_per_rack, int gpus_per_server,
                            SchedulerConfig sched) {
  SimulationConfig config;
  config.cluster = ClusterConfig{};
  config.cluster.skus.push_back({racks, servers_per_rack, gpus_per_server});
  config.scheduler = std::move(sched);
  config.failure.failure_scale = 0.0;  // machine faults are the only failures
  config.vcs.push_back(
      {"vc0", racks * servers_per_rack * gpus_per_server, 1.0, 1.0, true});
  config.seed = 1;
  return config;
}

// A rack switch outage at t=1h on a single-rack cluster running four 8-GPU
// gangs. Every gang must die at exactly t=1h + detection_delay, the whole
// rack must drain for the repair window, and all jobs must restart after the
// repair and pass.
TEST(MachineFaultSimulationTest, RackOutageKillsEveryGangAfterDetectionDelay) {
  SimulationConfig config = BaseConfig(1, 4, 8, SchedulerConfig::Philly());
  config.snapshot_period = Hours(2);
  config.fault.detection_delay = Minutes(7);
  config.fault.scripted.push_back(
      {FaultKind::kSwitchOutage, -1, 0, Hours(1), Hours(2)});

  std::vector<JobSpec> jobs;
  for (JobId id = 1; id <= 4; ++id) {
    jobs.push_back(MakeJob(id, 0, 8, Hours(10), 10));
  }
  ClusterSimulation sim(config, std::move(jobs));
  const SimulationResult result = sim.Run();

  EXPECT_EQ(result.machine_faults_injected, 1);
  EXPECT_EQ(result.machine_fault_server_downs, 4);
  EXPECT_EQ(result.machine_fault_kills, 4);

  const SimTime detection = Hours(1) + Minutes(7);
  const SimTime repaired = detection + Hours(2);
  for (const JobRecord& job : result.jobs) {
    ASSERT_EQ(job.attempts.size(), 2u) << "job " << job.spec.id;
    const AttemptRecord& killed = job.attempts[0];
    EXPECT_EQ(killed.start, 0);
    EXPECT_EQ(killed.end, detection);
    EXPECT_TRUE(killed.failed);
    EXPECT_TRUE(killed.machine_fault);
    EXPECT_FALSE(killed.preempted);
    EXPECT_EQ(killed.true_reason, FailureReason::kRackSwitchOutage);
    EXPECT_FALSE(killed.log_tail.empty());
    // No capacity exists until the rack is repaired; no checkpointing means a
    // full 10h restart.
    const AttemptRecord& retry = job.attempts[1];
    EXPECT_EQ(retry.start, repaired);
    EXPECT_EQ(retry.Duration(), Hours(10));
    EXPECT_FALSE(retry.machine_fault);
    EXPECT_EQ(job.status, JobStatus::kPassed);
  }

  // Lost GPU-time: per gang, 1h of discarded clean progress plus the 7-minute
  // undetected dead window, at 8 GPUs.
  const double per_gang = static_cast<double>(Hours(1) + Minutes(7)) * 8.0;
  EXPECT_DOUBLE_EQ(result.machine_fault_lost_gpu_seconds, 4.0 * per_gang);

  // The 2h snapshot lands inside the outage: the whole rack reads offline.
  ASSERT_FALSE(result.occupancy_snapshots.empty());
  const auto& snap = result.occupancy_snapshots.front();
  EXPECT_EQ(snap.time, Hours(2));
  EXPECT_EQ(snap.offline_servers, 4);
  EXPECT_EQ(snap.machine_fault_kills_total, 4);
  EXPECT_GT(snap.machine_fault_lost_gpu_seconds_total, 0.0);
  EXPECT_EQ(snap.empty_server_fraction, 0.0);
  EXPECT_EQ(snap.racks_with_empty_servers, 0);
}

// Checkpoint-aware recovery: a server crash 6h into a 10h job. With hourly
// checkpoints the job resumes from the 6h mark and only the detection window
// is lost; with no checkpointing it restarts from zero.
TEST(MachineFaultSimulationTest, CheckpointPeriodBoundsTheLoss) {
  const auto run_with_period = [](SimDuration period) {
    SimulationConfig config = BaseConfig(1, 1, 8, SchedulerConfig::Philly());
    config.scheduler.checkpoint_period = period;
    config.fault.detection_delay = Minutes(10);
    config.fault.scripted.push_back(
        {FaultKind::kServerCrash, 0, -1, Hours(6), Minutes(30)});
    std::vector<JobSpec> jobs;
    jobs.push_back(MakeJob(1, 0, 8, Hours(10), 10));
    ClusterSimulation sim(config, std::move(jobs));
    return sim.Run();
  };

  const SimulationResult ckpt = run_with_period(Hours(1));
  const SimulationResult restart = run_with_period(kNoCheckpoint);

  const SimTime detection = Hours(6) + Minutes(10);
  const SimTime repaired = detection + Minutes(30);

  ASSERT_EQ(ckpt.jobs.size(), 1u);
  const JobRecord& resumed = ckpt.jobs[0];
  ASSERT_EQ(resumed.attempts.size(), 2u);
  EXPECT_EQ(resumed.attempts[0].end, detection);
  EXPECT_EQ(resumed.attempts[0].true_reason, FailureReason::kNodeCrash);
  EXPECT_TRUE(resumed.attempts[0].machine_fault);
  // 6h of progress survived (the fault hit exactly on a checkpoint boundary);
  // only 4h remain.
  EXPECT_EQ(resumed.attempts[1].start, repaired);
  EXPECT_EQ(resumed.attempts[1].Duration(), Hours(4));
  EXPECT_EQ(resumed.finish_time, repaired + Hours(4));
  EXPECT_EQ(resumed.status, JobStatus::kPassed);
  // Only the undetected dead window is lost: 10 min x 8 GPUs.
  EXPECT_DOUBLE_EQ(ckpt.machine_fault_lost_gpu_seconds,
                   static_cast<double>(Minutes(10)) * 8.0);

  ASSERT_EQ(restart.jobs.size(), 1u);
  const JobRecord& scratch = restart.jobs[0];
  ASSERT_EQ(scratch.attempts.size(), 2u);
  EXPECT_EQ(scratch.attempts[1].start, repaired);
  EXPECT_EQ(scratch.attempts[1].Duration(), Hours(10));
  EXPECT_EQ(scratch.finish_time, repaired + Hours(10));
  EXPECT_EQ(scratch.status, JobStatus::kPassed);
  // The 6h of clean progress is lost on top of the dead window.
  EXPECT_DOUBLE_EQ(restart.machine_fault_lost_gpu_seconds,
                   static_cast<double>(Hours(6) + Minutes(10)) * 8.0);

  EXPECT_LT(ckpt.machine_fault_lost_gpu_seconds,
            restart.machine_fault_lost_gpu_seconds);
  EXPECT_LT(resumed.finish_time, scratch.finish_time);
}

// With the fault process disabled, every fault-related counter must stay
// zero and no attempt may carry the machine_fault flag — the baseline for
// the byte-identity guarantee.
TEST(MachineFaultSimulationTest, DisabledFaultsLeaveNoTrace) {
  ExperimentConfig config = ExperimentConfig::BenchScale(1);
  const ExperimentRun run = RunExperiment(config);
  EXPECT_EQ(run.result.machine_faults_injected, 0);
  EXPECT_EQ(run.result.machine_fault_server_downs, 0);
  EXPECT_EQ(run.result.machine_fault_kills, 0);
  EXPECT_EQ(run.result.machine_fault_lost_gpu_seconds, 0.0);
  for (const JobRecord& job : run.result.jobs) {
    for (const AttemptRecord& attempt : job.attempts) {
      EXPECT_FALSE(attempt.machine_fault);
    }
  }
  for (const auto& snap : run.result.occupancy_snapshots) {
    EXPECT_EQ(snap.offline_servers, 0);
    EXPECT_EQ(snap.machine_fault_kills_total, 0);
    EXPECT_EQ(snap.machine_fault_lost_gpu_seconds_total, 0.0);
  }
}

// ------------------------------------------------------------- determinism

void ExpectJobRecordsEqual(const JobRecord& a, const JobRecord& b) {
  EXPECT_EQ(a.spec.id, b.spec.id);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.executed_epochs, b.executed_epochs);
  EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);
  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (size_t i = 0; i < a.attempts.size(); ++i) {
    const AttemptRecord& x = a.attempts[i];
    const AttemptRecord& y = b.attempts[i];
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.end, y.end);
    EXPECT_EQ(x.failed, y.failed);
    EXPECT_EQ(x.preempted, y.preempted);
    EXPECT_EQ(x.machine_fault, y.machine_fault);
    EXPECT_EQ(x.true_reason, y.true_reason);
    EXPECT_EQ(x.log_tail, y.log_tail);
    ASSERT_EQ(x.placement.shards.size(), y.placement.shards.size());
    for (size_t s = 0; s < x.placement.shards.size(); ++s) {
      EXPECT_EQ(x.placement.shards[s].server, y.placement.shards[s].server);
      EXPECT_EQ(x.placement.shards[s].gpus, y.placement.shards[s].gpus);
    }
  }
  ASSERT_EQ(a.util_segments.size(), b.util_segments.size());
  for (size_t i = 0; i < a.util_segments.size(); ++i) {
    EXPECT_EQ(a.util_segments[i].expected_util, b.util_segments[i].expected_util);
    EXPECT_EQ(a.util_segments[i].duration, b.util_segments[i].duration);
  }
}

void ExpectRunsEqual(const ExperimentRun& a, const ExperimentRun& b) {
  EXPECT_EQ(a.num_jobs, b.num_jobs);
  EXPECT_EQ(a.result.preemptions, b.result.preemptions);
  EXPECT_EQ(a.result.machine_faults_injected, b.result.machine_faults_injected);
  EXPECT_EQ(a.result.machine_fault_server_downs, b.result.machine_fault_server_downs);
  EXPECT_EQ(a.result.machine_fault_kills, b.result.machine_fault_kills);
  EXPECT_EQ(a.result.machine_fault_lost_gpu_seconds,
            b.result.machine_fault_lost_gpu_seconds);
  ASSERT_EQ(a.result.occupancy_snapshots.size(), b.result.occupancy_snapshots.size());
  for (size_t i = 0; i < a.result.occupancy_snapshots.size(); ++i) {
    const auto& x = a.result.occupancy_snapshots[i];
    const auto& y = b.result.occupancy_snapshots[i];
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.occupancy, y.occupancy);
    EXPECT_EQ(x.offline_servers, y.offline_servers);
    EXPECT_EQ(x.machine_fault_kills_total, y.machine_fault_kills_total);
    EXPECT_EQ(x.machine_fault_lost_gpu_seconds_total,
              y.machine_fault_lost_gpu_seconds_total);
  }
  ASSERT_EQ(a.result.jobs.size(), b.result.jobs.size());
  for (size_t i = 0; i < a.result.jobs.size(); ++i) {
    ExpectJobRecordsEqual(a.result.jobs[i], b.result.jobs[i]);
  }
}

// With faults enabled, results must be byte-identical across repeated serial
// runs and across experiment-pool thread counts. Runs under `ctest -L tsan`
// with -DPHILLY_SANITIZE=thread to prove the fault path is data-race free.
TEST(FaultDeterminismTest, FaultyRunsIdenticalAcrossThreadsAndRepeats) {
  ExperimentConfig base = ExperimentConfig::BenchScale(1);
  base.simulation.fault = FaultProcessConfig::Calibrated();
  // Compress MTBFs so a one-day window sees a healthy number of faults.
  base.simulation.fault.server_crash_mtbf_hours = 24.0 * 8;
  base.simulation.fault.gpu_ecc_mtbf_hours = 24.0 * 12;
  base.simulation.fault.rack_outage_mtbf_hours = 24.0 * 20;
  const std::vector<uint64_t> seeds = {42, 7};

  std::vector<ExperimentRun> expected;
  for (const ExperimentConfig& config : ConfigsForSeeds(base, seeds)) {
    expected.push_back(RunExperiment(config));
  }
  int64_t total_faults = 0;
  int64_t total_kills = 0;
  for (const ExperimentRun& run : expected) {
    total_faults += run.result.machine_faults_injected;
    total_kills += run.result.machine_fault_kills;
  }
  EXPECT_GT(total_faults, 0) << "test must actually exercise the fault path";
  EXPECT_GT(total_kills, 0);

  // Repeatability: a second serial pass is identical.
  {
    size_t i = 0;
    for (const ExperimentConfig& config : ConfigsForSeeds(base, seeds)) {
      SCOPED_TRACE("repeat seed=" + std::to_string(seeds[i]));
      ExpectRunsEqual(RunExperiment(config), expected[i++]);
    }
  }

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 2, hw > 0 ? hw : 1}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ExperimentPool pool(threads);
    const std::vector<ExperimentRun> runs = pool.RunSeeds(base, seeds);
    ASSERT_EQ(runs.size(), expected.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      SCOPED_TRACE("seed=" + std::to_string(seeds[i]));
      ExpectRunsEqual(runs[i], expected[i]);
    }
  }
}

}  // namespace
}  // namespace philly
