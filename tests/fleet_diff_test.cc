// Differential tests for fleet mode (docs/fleet.md), enforcing its ground
// rule: the fleet layer adds routing, never perturbation.
//
//   * With RouterPolicy::kPinnedHome and a partitioned trace, every
//     per-cluster stream — the scheduler event NDJSON, the telemetry NDJSON,
//     and the analyses derived from the job records (Table 2, Fig 3) — must
//     be byte-identical to N separate single-cluster runs wired by hand.
//   * Every stream (fleet route log included) must be byte-identical across
//     ExperimentPool thread counts, for every policy. The suite is also in
//     the tsan label set, and thread count 0 defers to PHILLY_BENCH_THREADS,
//     so CI's env matrix exercises the same assertions.
//   * Randomized-policy rounds: a fleet with a randomly drawn dynamic policy,
//     spill threshold, and seed must reproduce all streams across thread
//     counts, with fleet-unique job ids in the route stream.

#include "src/fleet/fleet.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/analysis.h"
#include "src/fleet/router.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/sched/simulation.h"
#include "src/workload/generator.h"

namespace philly {
namespace {

constexpr SimDuration kTelemetryPeriod = Minutes(30);

// Three heterogeneous small clusters (128 / 128 / 32 GPUs, one with 4-GPU
// servers) built through the same spec parser phillyctl uses.
std::vector<FleetClusterSpec> MakeSpecs(uint64_t base_seed, int days) {
  std::vector<ClusterConfig> topologies;
  std::string error;
  if (!ParseClustersSpec("2x8x8,1x16x8,2x4x4", &topologies, &error)) {
    ADD_FAILURE() << "topology spec rejected: " << error;
    return {};
  }
  std::vector<FleetClusterSpec> specs;
  for (size_t i = 0; i < topologies.size(); ++i) {
    FleetClusterSpec spec;
    spec.name = "cluster" + std::to_string(i);
    spec.experiment = FleetClusterExperiment(topologies[i], days, base_seed,
                                             static_cast<int>(i));
    specs.push_back(std::move(spec));
  }
  return specs;
}

FleetConfig MakeConfig(uint64_t base_seed, RouterPolicy policy, int threads) {
  FleetConfig config;
  config.clusters = MakeSpecs(base_seed, /*days=*/1);
  config.router.policy = policy;
  config.collect_events = true;
  config.collect_telemetry = true;
  config.telemetry_period = kTelemetryPeriod;
  config.threads = threads;
  return config;
}

std::string EventsNdjson(const EventLog& log) {
  std::ostringstream out;
  log.WriteNdjson(out);
  return out.str();
}

std::string TelemetryNdjson(const ClusterTimeSeries& timeseries) {
  std::ostringstream out;
  timeseries.WriteNdjson(out);
  return out.str();
}

// Every stream a fleet run produces, labelled so a mismatch names the
// offender: the route log plus each cluster's event and telemetry streams.
std::vector<std::pair<std::string, std::string>> StreamsOf(const FleetResult& fleet) {
  std::vector<std::pair<std::string, std::string>> streams;
  streams.emplace_back("route", EventsNdjson(fleet.route_events));
  for (const FleetClusterResult& cluster : fleet.clusters) {
    streams.emplace_back(cluster.name + ".events", EventsNdjson(cluster.events));
    streams.emplace_back(cluster.name + ".telemetry",
                         TelemetryNdjson(cluster.telemetry));
  }
  return streams;
}

std::string FormatFraction(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

// Fixed-format fingerprint of the analyses the paper pipeline derives from a
// cluster's job records: the Table 2 delay-cause split and the Fig 3 queue
// delay quantiles. Byte equality here means the analysis layer sees identical
// inputs, without committing the test to phillyctl's presentation.
std::string AnalysisFingerprint(const std::vector<JobRecord>& jobs,
                                const SimulationResult& result) {
  std::ostringstream out;
  const DelayCauseResult causes = AnalyzeDelayCauses(jobs, &result);
  out << "table2";
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    const auto& cell = causes.by_bucket[static_cast<size_t>(b)];
    out << ' ' << cell.fair_share << '/' << cell.fragmentation;
  }
  out << ' ' << FormatFraction(causes.fair_share_time_fraction) << ' '
      << FormatFraction(causes.fragmentation_time_fraction) << ' '
      << FormatFraction(causes.out_of_order_fraction) << '\n';
  const QueueDelayResult delays = AnalyzeQueueDelays(jobs);
  out << "fig3";
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    const StreamingHistogram& h = delays.overall[static_cast<size_t>(b)];
    out << ' ' << FormatFraction(h.Count()) << ':'
        << FormatFraction(h.Quantile(0.5)) << ':'
        << FormatFraction(h.Quantile(0.95));
  }
  out << '\n';
  return out.str();
}

// The ground rule. A pinned fleet and N hand-wired standalone runs must
// produce byte-identical per-cluster streams and analyses.
TEST(FleetDiffTest, PinnedFleetMatchesStandaloneRunsByteForByte) {
  FleetConfig config = MakeConfig(/*base_seed=*/11, RouterPolicy::kPinnedHome,
                                  /*threads=*/3);
  const size_t n = config.clusters.size();
  ASSERT_GT(n, 0u);
  const FleetResult fleet = FleetSimulation(config).Run();

  ASSERT_EQ(fleet.clusters.size(), n);
  EXPECT_EQ(fleet.spilled_jobs, 0);
  ASSERT_EQ(static_cast<size_t>(fleet.total_jobs), fleet.route_events.size());
  for (const SchedEvent& e : fleet.route_events.events()) {
    ASSERT_EQ(e.kind, SchedEventKind::kRoute);
    EXPECT_EQ(e.cluster, e.home) << "pinned routing spilled job " << e.job;
  }

  for (size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("cluster " + std::to_string(i));
    // The standalone side re-derives everything from the same spec the fleet
    // consumed: same workload config, same simulation config, own sinks.
    const ExperimentConfig& experiment = config.clusters[i].experiment;
    WorkloadGenerator generator(experiment.workload);
    std::vector<JobSpec> trace = generator.Generate();
    ASSERT_FALSE(trace.empty());

    EventLog log;
    ClusterTimeSeries timeseries(kTelemetryPeriod);
    SimulationConfig sim = experiment.simulation;
    sim.obs = ObservabilityConfig{};
    sim.obs.event_log = &log;
    sim.obs.timeseries = &timeseries;
    const SimulationResult standalone =
        ClusterSimulation(sim, std::move(trace)).Run();

    const FleetClusterResult& member = fleet.clusters[i];
    ASSERT_FALSE(member.events.empty());
    ASSERT_FALSE(member.telemetry.samples().empty());
    EXPECT_EQ(EventsNdjson(member.events), EventsNdjson(log));
    EXPECT_EQ(TelemetryNdjson(member.telemetry), TelemetryNdjson(timeseries));
    EXPECT_EQ(AnalysisFingerprint(member.result.jobs, member.result),
              AnalysisFingerprint(standalone.jobs, standalone));
  }
}

// Pinned routing keeps original per-trace job ids (byte-identity needs it);
// dynamic policies remap to fleet-unique ids. Both invariants read off the
// route stream.
TEST(FleetDiffTest, DynamicPoliciesRemapIdsPinnedKeepsThem) {
  const FleetResult pinned =
      FleetSimulation(MakeConfig(5, RouterPolicy::kPinnedHome, 2)).Run();
  std::set<JobId> pinned_ids;
  for (const SchedEvent& e : pinned.route_events.events()) {
    pinned_ids.insert(e.job);
  }
  // Per-cluster traces each start at id 1, so with >1 cluster the pinned
  // route stream must reuse ids across homes.
  EXPECT_LT(pinned_ids.size(), pinned.route_events.size());

  const FleetResult dynamic =
      FleetSimulation(MakeConfig(5, RouterPolicy::kLeastLoaded, 2)).Run();
  std::set<JobId> dynamic_ids;
  for (const SchedEvent& e : dynamic.route_events.events()) {
    dynamic_ids.insert(e.job);
  }
  EXPECT_EQ(dynamic_ids.size(), dynamic.route_events.size())
      << "dynamic routing must remap to fleet-unique ids";
  EXPECT_EQ(dynamic.total_jobs, pinned.total_jobs);
}

// Every stream must be independent of the pool's thread count, for every
// policy. Thread count 0 resolves through PHILLY_BENCH_THREADS, so CI's env
// matrix (and the tsan job) exercise further schedules of the same run.
TEST(FleetDiffTest, AllStreamsIdenticalAcrossThreadCounts) {
  for (const RouterPolicy policy :
       {RouterPolicy::kPinnedHome, RouterPolicy::kLeastLoaded,
        RouterPolicy::kSpillover}) {
    SCOPED_TRACE(std::string(ToString(policy)));
    const FleetResult baseline = FleetSimulation(MakeConfig(23, policy, 1)).Run();
    const auto expected = StreamsOf(baseline);
    ASSERT_FALSE(expected.empty());
    for (const int threads : {0, 2, 5}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const FleetResult run = FleetSimulation(MakeConfig(23, policy, threads)).Run();
      const auto actual = StreamsOf(run);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t s = 0; s < expected.size(); ++s) {
        EXPECT_EQ(actual[s].second, expected[s].second)
            << "stream " << expected[s].first << " differs";
      }
    }
  }
}

// Randomized-policy rounds: routing configs drawn from an Rng must still
// reproduce every stream across thread counts.
TEST(FleetDiffTest, RandomizedPoliciesAreDeterministicAcrossThreads) {
  Rng rng(404);
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const uint64_t seed = rng.Below(1u << 20);
    const RouterPolicy policy = rng.Bernoulli(0.5) ? RouterPolicy::kLeastLoaded
                                                   : RouterPolicy::kSpillover;
    FleetConfig a = MakeConfig(seed, policy, /*threads=*/1);
    a.router.spill_threshold = static_cast<int64_t>(rng.Between(0, 6));
    FleetConfig b = a;
    b.threads = 4;

    const FleetResult run_a = FleetSimulation(std::move(a)).Run();
    const FleetResult run_b = FleetSimulation(std::move(b)).Run();
    const auto streams_a = StreamsOf(run_a);
    const auto streams_b = StreamsOf(run_b);
    ASSERT_EQ(streams_a.size(), streams_b.size());
    for (size_t s = 0; s < streams_a.size(); ++s) {
      EXPECT_EQ(streams_a[s].second, streams_b[s].second)
          << "stream " << streams_a[s].first << " differs (policy "
          << ToString(policy) << ")";
    }
    EXPECT_EQ(run_a.spilled_jobs, run_b.spilled_jobs);
  }
}

}  // namespace
}  // namespace philly
