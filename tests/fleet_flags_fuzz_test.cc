// Fuzz-style tests for the `phillyctl fleet` flag grammar, in the
// trace_fuzz_test.cc mold: adversarial inputs assembled from an atom
// alphabet, plus the known malformed cases the CLI must reject.
//
// phillyctl funnels all three fleet knobs through exactly one validator
// each — `--clusters` through ParseClustersSpec, `--router` through
// RouterPolicyFromString, `--spill-threshold` through a strict whole-string
// integer parse plus the FleetSimulation constructor's range check — so
// fuzzing those entry points covers the CLI surface. The contract under test:
// malformed values are rejected (the CLI then exits 1 with the validator's
// message), never crash, and never silently produce a default or partially
// parsed config. The CI fleet smoke step drives one malformed invocation
// through the real binary to pin the exit code itself.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fleet/fleet.h"
#include "src/fleet/router.h"

namespace philly {
namespace {

// ------------------------------------------------------------ --clusters

TEST(FleetFlagsFuzzTest, KnownMalformedClusterSpecsAreRejected) {
  const std::vector<std::string> kMalformed = {
      "",        "0",         "65",        "-3",       "+3",
      " 3",      "3 ",        "3.5",       "1e2",      "bogus",
      "x",       "1x",        "x8",        "2x8x",     "2x8x8x2",
      "2x8x17",  "2x0x8",     "0x8",       "2x-8",     "1025x8",
      "2x1025",  "2x8x8,",    ",2x8x8",    "2x8x8,,2x8x8",
      "2x8x8, 2x8x8",         "2x8x8,bogus",
      "99999999999999999999", "2x99999999999999999999",
  };
  for (const std::string& spec : kMalformed) {
    SCOPED_TRACE("spec '" + spec + "'");
    std::vector<ClusterConfig> clusters = {ClusterConfig::PaperScale()};
    const std::vector<ClusterConfig> before = clusters;
    std::string error;
    EXPECT_FALSE(ParseClustersSpec(spec, &clusters, &error));
    EXPECT_FALSE(error.empty()) << "rejection must carry a message";
    // No partial output: the caller's vector is untouched on failure.
    ASSERT_EQ(clusters.size(), before.size());
    EXPECT_EQ(clusters[0].TotalGpus(), before[0].TotalGpus());
  }
  // "2x8,2x8" truncated at the last entry is still well-formed ("2x8"), so it
  // must parse — the trailing-comma case above is the malformed sibling.
  std::vector<ClusterConfig> clusters;
  std::string error;
  EXPECT_TRUE(ParseClustersSpec("2x8,2x8", &clusters, &error)) << error;
  ASSERT_EQ(clusters.size(), 2u);
}

TEST(FleetFlagsFuzzTest, ValidClusterSpecsParseToTheSpelledTopology) {
  Rng rng(91);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.Between(1, 5));
    std::string spec;
    std::vector<int> expected_gpus;
    for (int i = 0; i < n; ++i) {
      const int racks = static_cast<int>(rng.Between(1, 12));
      const int servers = static_cast<int>(rng.Between(1, 40));
      const bool explicit_g = rng.Bernoulli(0.5);
      const int gpus = explicit_g ? static_cast<int>(rng.Between(1, 16)) : 8;
      if (i > 0) {
        spec += ',';
      }
      spec += std::to_string(racks) + "x" + std::to_string(servers);
      if (explicit_g) {
        spec += "x" + std::to_string(gpus);
      }
      expected_gpus.push_back(racks * servers * gpus);
    }
    SCOPED_TRACE("spec '" + spec + "'");
    std::vector<ClusterConfig> clusters;
    std::string error;
    ASSERT_TRUE(ParseClustersSpec(spec, &clusters, &error)) << error;
    ASSERT_EQ(clusters.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(clusters[static_cast<size_t>(i)].TotalGpus(), expected_gpus[static_cast<size_t>(i)]);
    }
  }
  // Count form: "N" paper-scale clusters.
  std::vector<ClusterConfig> clusters;
  std::string error;
  ASSERT_TRUE(ParseClustersSpec("4", &clusters, &error)) << error;
  ASSERT_EQ(clusters.size(), 4u);
  EXPECT_EQ(clusters[0].TotalGpus(), ClusterConfig::PaperScale().TotalGpus());
}

// Random mutations of valid specs: the parser must either reject with a
// message and no partial output, or accept and yield only in-range topologies
// — and it must never crash on any byte soup.
TEST(FleetFlagsFuzzTest, RandomSpecSoupNeverCrashesOrHalfParses) {
  static const std::vector<std::string> kAtoms = {
      "2x8x8", "1x16", "3",   ",", "x",  "0",  "-", "+",  " ",
      "8",     "1024", "17",  "", "x8", "2x", "9999999999999999999",
  };
  Rng rng(1337);
  for (int round = 0; round < 500; ++round) {
    std::string spec;
    const int atoms = static_cast<int>(rng.Between(1, 6));
    for (int i = 0; i < atoms; ++i) {
      spec += kAtoms[rng.Below(kAtoms.size())];
    }
    SCOPED_TRACE("round " + std::to_string(round) + " spec '" + spec + "'");
    std::vector<ClusterConfig> clusters;
    std::string error;
    const bool ok = ParseClustersSpec(spec, &clusters, &error);
    if (!ok) {
      EXPECT_FALSE(error.empty());
      EXPECT_TRUE(clusters.empty()) << "partial output on failure";
      continue;
    }
    ASSERT_FALSE(clusters.empty());
    ASSERT_LE(clusters.size(), 64u);
    for (const ClusterConfig& cluster : clusters) {
      // Count-form specs yield paper-scale clusters (two SKUs); list-form
      // entries yield one SKU each. Either way every dimension is in range.
      ASSERT_FALSE(cluster.skus.empty());
      for (const auto& sku : cluster.skus) {
        EXPECT_GE(sku.racks, 1);
        EXPECT_LE(sku.racks, 1024);
        EXPECT_GE(sku.servers_per_rack, 1);
        EXPECT_LE(sku.servers_per_rack, 1024);
        EXPECT_GE(sku.gpus_per_server, 1);
        EXPECT_LE(sku.gpus_per_server, 16);
      }
    }
  }
}

// -------------------------------------------------------------- --router

TEST(FleetFlagsFuzzTest, RouterPolicyNamesRoundTripAndRejectEverythingElse) {
  for (const RouterPolicy policy :
       {RouterPolicy::kPinnedHome, RouterPolicy::kLeastLoaded,
        RouterPolicy::kSpillover}) {
    RouterPolicy parsed = RouterPolicy::kPinnedHome;
    ASSERT_TRUE(RouterPolicyFromString(ToString(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  const std::vector<std::string> kBad = {
      "",          "Pinned",     "pinned ",   " pinned", "pinned-home",
      "least",     "leastloaded", "least_loaded", "spill", "spillover ",
      "SPILLOVER", "teleport",   "0",         "pinned\n",
  };
  for (const std::string& name : kBad) {
    SCOPED_TRACE("name '" + name + "'");
    // Pre-set to a sentinel: a rejecting parse must not write through.
    RouterPolicy parsed = RouterPolicy::kSpillover;
    EXPECT_FALSE(RouterPolicyFromString(name, &parsed));
    EXPECT_EQ(parsed, RouterPolicy::kSpillover) << "silent default on reject";
  }
}

// ------------------------------------------------------ --spill-threshold

// The CLI's strict integer parse rejects junk before construction; values
// that parse but are out of range die in the FleetSimulation constructor.
// Both layers together mean no malformed threshold ever reaches routing.
TEST(FleetFlagsFuzzTest, NegativeSpillThresholdsAreRejectedAtConstruction) {
  std::vector<ClusterConfig> topologies;
  std::string error;
  ASSERT_TRUE(ParseClustersSpec("1x4x4,1x4x4", &topologies, &error)) << error;
  for (const int64_t threshold : {-1, -7, -1000000}) {
    SCOPED_TRACE("threshold " + std::to_string(threshold));
    FleetConfig config;
    for (size_t i = 0; i < topologies.size(); ++i) {
      config.clusters.push_back(
          {"c" + std::to_string(i),
           FleetClusterExperiment(topologies[i], /*days=*/1, /*base_seed=*/1,
                                  static_cast<int>(i))});
    }
    config.router.policy = RouterPolicy::kSpillover;
    config.router.spill_threshold = threshold;
    EXPECT_THROW(FleetSimulation(std::move(config)), std::invalid_argument);
  }
}

}  // namespace
}  // namespace philly
