// Property tests for fleet mode (docs/fleet.md): invariants that must hold
// for every router policy, read off the fleet's own streams.
//
//   * Routing conservation: every submitted job is routed exactly once — the
//     route stream, the per-cluster routing counters, and the per-cluster
//     scheduler streams (kSubmit counts, id sets) must all agree.
//   * GPU-time conservation: per cluster and summed over the fleet,
//     allocated == useful + machine-fault-lost + ckpt-overhead + ckpt-stall,
//     exercised with the fault process and checkpoint I/O model enabled so
//     every term is non-zero.
//   * Rollup aggregation: the fleet rollup (MergeFrom-fold of per-cluster
//     rollups) equals a rollup fed the concatenated streams directly —
//     integer aggregates exactly, floating sums to a tiny relative tolerance
//     (summation order differs across the two paths).
//   * Router decision invariants: spillover (and least-loaded) never route to
//     a cluster whose modeled queue is longer than home's at decision time,
//     and spillover only leaves home when the home queue exceeds the
//     threshold.

#include "src/fleet/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/fault_process.h"
#include "src/fleet/router.h"
#include "src/obs/event_log.h"
#include "src/obs/rollup.h"

namespace philly {
namespace {

std::vector<FleetClusterSpec> MakeSpecs(uint64_t base_seed, int days) {
  std::vector<ClusterConfig> topologies;
  std::string error;
  if (!ParseClustersSpec("2x8x8,1x16x8,2x4x4", &topologies, &error)) {
    ADD_FAILURE() << "topology spec rejected: " << error;
    return {};
  }
  std::vector<FleetClusterSpec> specs;
  for (size_t i = 0; i < topologies.size(); ++i) {
    FleetClusterSpec spec;
    spec.name = "cluster" + std::to_string(i);
    spec.experiment = FleetClusterExperiment(topologies[i], days, base_seed,
                                             static_cast<int>(i));
    specs.push_back(std::move(spec));
  }
  return specs;
}

FleetConfig MakeConfig(uint64_t base_seed, RouterPolicy policy) {
  FleetConfig config;
  config.clusters = MakeSpecs(base_seed, /*days=*/1);
  config.router.policy = policy;
  config.collect_events = true;
  config.collect_telemetry = true;
  config.telemetry_period = Minutes(30);
  return config;
}

constexpr RouterPolicy kAllPolicies[] = {
    RouterPolicy::kPinnedHome, RouterPolicy::kLeastLoaded,
    RouterPolicy::kSpillover};

// Routing conservation, checked three independent ways per policy.
TEST(FleetPropertyTest, EveryJobRoutedExactlyOnce) {
  for (const RouterPolicy policy : kAllPolicies) {
    SCOPED_TRACE(std::string(ToString(policy)));
    const FleetResult fleet = FleetSimulation(MakeConfig(31, policy)).Run();

    ASSERT_GT(fleet.total_jobs, 0);
    EXPECT_EQ(static_cast<int64_t>(fleet.route_events.size()), fleet.total_jobs);

    int64_t ran = 0;
    int64_t homed = 0;
    int64_t routed_in = 0;
    int64_t routed_away = 0;
    for (const FleetClusterResult& cluster : fleet.clusters) {
      ran += cluster.num_jobs;
      homed += cluster.home_jobs;
      routed_in += cluster.routed_in;
      routed_away += cluster.routed_away;
      // A cluster runs its homed jobs, minus the ones routed away, plus the
      // ones routed in.
      EXPECT_EQ(cluster.num_jobs,
                cluster.home_jobs - cluster.routed_away + cluster.routed_in)
          << cluster.name;
      // The scheduler stream agrees: one kSubmit per routed job.
      int64_t submits = 0;
      for (const SchedEvent& e : cluster.events.events()) {
        submits += e.kind == SchedEventKind::kSubmit ? 1 : 0;
      }
      EXPECT_EQ(submits, cluster.num_jobs) << cluster.name;
      EXPECT_EQ(static_cast<int64_t>(cluster.result.jobs.size()), cluster.num_jobs)
          << cluster.name;
    }
    EXPECT_EQ(ran, fleet.total_jobs);
    EXPECT_EQ(homed, fleet.total_jobs);
    EXPECT_EQ(routed_in, fleet.spilled_jobs);
    EXPECT_EQ(routed_away, fleet.spilled_jobs);

    if (policy != RouterPolicy::kPinnedHome) {
      // Fleet-unique ids: the route stream's id set must partition exactly
      // into the clusters' submitted-id sets, with no overlap or loss.
      std::set<JobId> routed_ids;
      for (const SchedEvent& e : fleet.route_events.events()) {
        EXPECT_TRUE(routed_ids.insert(e.job).second)
            << "job " << e.job << " routed twice";
      }
      std::set<JobId> submitted_ids;
      for (const FleetClusterResult& cluster : fleet.clusters) {
        for (const SchedEvent& e : cluster.events.events()) {
          if (e.kind == SchedEventKind::kSubmit) {
            EXPECT_TRUE(submitted_ids.insert(e.job).second)
                << "job " << e.job << " submitted on two clusters";
          }
        }
      }
      EXPECT_EQ(submitted_ids, routed_ids);
    }
  }
}

// GPU-time conservation over a fleet with the fault process and checkpoint
// I/O model on (the compressed operating point the fault golden uses), so
// every ledger term is exercised, not just allocated == useful.
TEST(FleetPropertyTest, FleetGpuTimeLedgerConserves) {
  FleetConfig config = MakeConfig(47, RouterPolicy::kSpillover);
  config.clusters = MakeSpecs(47, /*days=*/2);
  for (FleetClusterSpec& spec : config.clusters) {
    SimulationConfig& sim = spec.experiment.simulation;
    sim.fault = FaultProcessConfig::Calibrated();
    sim.fault.server_crash_mtbf_hours = 24.0 * 4;
    sim.fault.gpu_ecc_mtbf_hours = 24.0 * 6;
    sim.fault.rack_outage_mtbf_hours = 24.0 * 10;
    sim.scheduler.checkpoint_period = Minutes(30);
    sim.scheduler.checkpoint_policy = CheckpointPolicy::kCooperativeStagger;
    sim.ckpt_io.rack_bandwidth_gbps = 0.5;
    sim.ckpt_io.size_gb_per_gpu = 4.0;
  }
  const FleetResult fleet = FleetSimulation(std::move(config)).Run();

  double allocated = 0.0;
  double useful = 0.0;
  double fault_lost = 0.0;
  double overhead = 0.0;
  double stall = 0.0;
  int64_t kills = 0;
  int64_t writes = 0;
  for (const FleetClusterResult& cluster : fleet.clusters) {
    const SimulationResult& r = cluster.result;
    const double recomposed = r.useful_gpu_seconds +
                              r.machine_fault_lost_gpu_seconds +
                              r.ckpt_overhead_gpu_seconds +
                              r.ckpt_stall_gpu_seconds;
    EXPECT_NEAR(recomposed, r.allocated_gpu_seconds,
                1e-6 * std::max(1.0, r.allocated_gpu_seconds))
        << cluster.name;
    allocated += r.allocated_gpu_seconds;
    useful += r.useful_gpu_seconds;
    fault_lost += r.machine_fault_lost_gpu_seconds;
    overhead += r.ckpt_overhead_gpu_seconds;
    stall += r.ckpt_stall_gpu_seconds;
    kills += r.machine_fault_kills;
    writes += r.ckpt_writes_completed;
  }
  // The fleet ledger is exactly the cluster-index-order sum.
  EXPECT_DOUBLE_EQ(fleet.allocated_gpu_seconds, allocated);
  EXPECT_DOUBLE_EQ(fleet.useful_gpu_seconds, useful);
  EXPECT_DOUBLE_EQ(fleet.machine_fault_lost_gpu_seconds, fault_lost);
  EXPECT_DOUBLE_EQ(fleet.ckpt_overhead_gpu_seconds, overhead);
  EXPECT_DOUBLE_EQ(fleet.ckpt_stall_gpu_seconds, stall);
  // And the identity holds over the sums.
  EXPECT_NEAR(fleet.useful_gpu_seconds + fleet.machine_fault_lost_gpu_seconds +
                  fleet.ckpt_overhead_gpu_seconds + fleet.ckpt_stall_gpu_seconds,
              fleet.allocated_gpu_seconds,
              1e-6 * std::max(1.0, fleet.allocated_gpu_seconds));

  // Non-vacuous: the operating point actually exercised every term.
  EXPECT_GT(fleet.allocated_gpu_seconds, 0.0);
  EXPECT_GT(kills, 0) << "fault process produced no kills";
  EXPECT_GT(writes, 0) << "checkpoint I/O model produced no writes";
  EXPECT_GT(fleet.machine_fault_lost_gpu_seconds, 0.0);
  EXPECT_GT(fleet.ckpt_overhead_gpu_seconds, 0.0);
}

// The fleet rollup is a MergeFrom-fold of per-cluster rollups; feeding one
// rollup the concatenated streams directly (same cluster order) must agree —
// integer aggregates exactly, floating sums to 1e-9 relative (the two paths
// sum in different orders).
TEST(FleetPropertyTest, FleetRollupEqualsRollupOfMergedStreams) {
  FleetConfig config = MakeConfig(59, RouterPolicy::kLeastLoaded);
  const SimDuration window = config.rollup_window;
  const FleetResult fleet = FleetSimulation(std::move(config)).Run();
  ASSERT_NE(fleet.fleet_rollup, nullptr);

  TelemetryRollup direct(window);
  for (const FleetClusterResult& cluster : fleet.clusters) {
    ASSERT_FALSE(cluster.telemetry.samples().empty()) << cluster.name;
    direct.AddAll(cluster.telemetry.samples());
  }

  const auto& merged_windows = fleet.fleet_rollup->windows();
  const auto& direct_windows = direct.windows();
  ASSERT_EQ(merged_windows.size(), direct_windows.size());
  ASSERT_GT(merged_windows.size(), 0u);
  auto it = direct_windows.begin();
  for (const auto& [start, merged] : merged_windows) {
    ASSERT_EQ(start, it->first);
    const TelemetryWindow& expected = it->second;
    EXPECT_EQ(merged.samples, expected.samples);
    EXPECT_EQ(merged.used_gpu_samples, expected.used_gpu_samples);
    EXPECT_EQ(merged.queued_max, expected.queued_max);
    EXPECT_EQ(merged.running_max, expected.running_max);
    EXPECT_DOUBLE_EQ(merged.occupancy_min, expected.occupancy_min);
    EXPECT_DOUBLE_EQ(merged.occupancy_max, expected.occupancy_max);
    EXPECT_NEAR(merged.occupancy_sum, expected.occupancy_sum,
                1e-9 * std::max(1.0, std::abs(expected.occupancy_sum)));
    EXPECT_NEAR(merged.util_observed_sum, expected.util_observed_sum,
                1e-9 * std::max(1.0, std::abs(expected.util_observed_sum)));
    ++it;
  }

  // Histogram bucket counts are integers, so the digests (and any quantile
  // read off them) must match exactly; only the running sums are float-order
  // sensitive.
  const auto check_histogram = [](const Histogram& merged, const Histogram& expected,
                                  const char* name) {
    SCOPED_TRACE(name);
    EXPECT_EQ(merged.count(), expected.count());
    ASSERT_GT(merged.count(), 0);
    EXPECT_DOUBLE_EQ(merged.min(), expected.min());
    EXPECT_DOUBLE_EQ(merged.max(), expected.max());
    for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
      EXPECT_DOUBLE_EQ(merged.Quantile(q), expected.Quantile(q)) << "q=" << q;
    }
    EXPECT_NEAR(merged.sum(), expected.sum(),
                1e-9 * std::max(1.0, std::abs(expected.sum())));
  };
  check_histogram(fleet.fleet_rollup->occupancy_pct(), direct.occupancy_pct(),
                  "occupancy_pct");
  check_histogram(fleet.fleet_rollup->util_observed_pct(),
                  direct.util_observed_pct(), "util_observed_pct");
  check_histogram(fleet.fleet_rollup->queue_depth(), direct.queue_depth(),
                  "queue_depth");
}

// Router decision invariants, read off the route stream's recorded model
// state. Spillover picks home or the global least-loaded cluster (home
// included), so the destination's queue never exceeds home's; it only leaves
// home when home's queue exceeds the threshold. Least-loaded minimizes over
// all clusters, so the same queue inequality holds.
TEST(FleetPropertyTest, RoutingNeverPicksALongerQueueThanHome) {
  for (const RouterPolicy policy :
       {RouterPolicy::kLeastLoaded, RouterPolicy::kSpillover}) {
    SCOPED_TRACE(std::string(ToString(policy)));
    FleetConfig config = MakeConfig(67, policy);
    const int64_t threshold = config.router.spill_threshold;
    const FleetResult fleet = FleetSimulation(std::move(config)).Run();
    ASSERT_GT(fleet.route_events.size(), 0u);
    int64_t spills_seen = 0;
    for (const SchedEvent& e : fleet.route_events.events()) {
      ASSERT_GE(e.home_queue, 0);
      ASSERT_GE(e.dest_queue, 0);
      EXPECT_LE(e.dest_queue, e.home_queue)
          << "job " << e.job << " routed to a longer queue";
      if (e.cluster != e.home) {
        ++spills_seen;
        if (policy == RouterPolicy::kSpillover) {
          EXPECT_GT(e.home_queue, threshold)
              << "job " << e.job << " spilled below the threshold";
        }
      }
    }
    EXPECT_EQ(spills_seen, fleet.spilled_jobs);
  }
}

// Config validation: the constructor rejects malformed fleets loudly instead
// of routing into undefined VC indices.
TEST(FleetPropertyTest, ConstructorRejectsMalformedFleets) {
  EXPECT_THROW(FleetSimulation(FleetConfig{}), std::invalid_argument);

  FleetConfig negative = MakeConfig(3, RouterPolicy::kSpillover);
  negative.router.spill_threshold = -1;
  EXPECT_THROW(FleetSimulation(std::move(negative)), std::invalid_argument);

  // Unequal VC counts are fine when pinned (jobs never cross clusters) but
  // rejected for dynamic policies.
  FleetConfig uneven_pinned = MakeConfig(3, RouterPolicy::kPinnedHome);
  ASSERT_GT(uneven_pinned.clusters[1].experiment.workload.vcs.size(), 1u);
  uneven_pinned.clusters[1].experiment.workload.vcs.pop_back();
  uneven_pinned.clusters[1].experiment.simulation.vcs =
      uneven_pinned.clusters[1].experiment.workload.vcs;
  FleetConfig uneven_dynamic = uneven_pinned;
  uneven_dynamic.router.policy = RouterPolicy::kLeastLoaded;
  EXPECT_NO_THROW(FleetSimulation(std::move(uneven_pinned)));
  EXPECT_THROW(FleetSimulation(std::move(uneven_dynamic)), std::invalid_argument);
}

}  // namespace
}  // namespace philly
