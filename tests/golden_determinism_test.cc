// Golden determinism test: a fixed (seed, config) experiment must reproduce
// the committed scheduler event stream and Table 2 report byte for byte, on
// every machine and in CI. This guards the whole deterministic pipeline —
// workload generation, the scheduler's decision order, the placement index's
// canonical candidate orders, and the NDJSON/ report serialization — against
// accidental drift: any behavioural change shows up as a golden diff that has
// to be reviewed and regenerated on purpose.
//
// To regenerate after an intentional change:
//   PHILLY_UPDATE_GOLDEN=1 build/tests/golden_determinism_test
// then commit the rewritten files under tests/golden/ with the change that
// caused them.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/common/table.h"
#include "src/fault/fault_process.h"
#include "src/fleet/fleet.h"
#include "src/core/span_analysis.h"
#include "src/obs/event_log.h"
#include "src/obs/rollup.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"

namespace philly {
namespace {

#ifndef PHILLY_TESTS_DIR
#error "PHILLY_TESTS_DIR must point at the tests/ source directory"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(PHILLY_TESTS_DIR) + "/golden/" + name;
}

// Small fixed workload: one day of arrivals at a fifth of the paper's rates
// against a quarter-size cluster with a warm-start cohort near its capacity,
// so the stream exercises queueing, fair-share vs fragmentation delays, and
// locality relaxation but stays around a thousand events.
ExperimentConfig GoldenConfig() {
  ExperimentConfig config = ExperimentConfig::BenchScale(/*days=*/1, /*seed=*/7);
  for (VcConfig& vc : config.workload.vcs) {
    vc.arrival_rate_per_hour *= 0.3;
  }
  config.simulation.cluster.skus.clear();
  config.simulation.cluster.skus.push_back(
      {/*racks=*/4, /*servers_per_rack=*/16, /*gpus_per_server=*/8});
  config.simulation.cluster.skus.push_back(
      {/*racks=*/1, /*servers_per_rack=*/24, /*gpus_per_server=*/2});
  config.workload.prepopulate_busy_gpus = 536;
  return config;
}

std::string FormatFraction(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

// Renders Table 2 (delay causes) in a fixed format. Kept deliberately local
// to this test: the golden guards the analysis numbers, not phillyctl's
// presentation, and a fixed 4-decimal encoding avoids any locale or
// float-printing variance.
std::string RenderTable2(const DelayCauseResult& causes) {
  TextTable table({"bucket", "fair-share", "fragmentation", "out-of-order"});
  for (int b = 1; b < kNumSizeBuckets; ++b) {
    const auto& cell = causes.by_bucket[static_cast<size_t>(b)];
    table.AddRow({std::string(ToString(static_cast<SizeBucket>(b))),
                  std::to_string(cell.fair_share),
                  std::to_string(cell.fragmentation),
                  FormatFraction(causes.out_of_order_by_bucket[static_cast<size_t>(b)])});
  }
  std::ostringstream out;
  out << "=== Table 2: delay causes ===\n" << table.Render();
  out << "fair_share_time_fraction " << FormatFraction(causes.fair_share_time_fraction)
      << "\n";
  out << "fragmentation_time_fraction "
      << FormatFraction(causes.fragmentation_time_fraction) << "\n";
  out << "out_of_order_fraction " << FormatFraction(causes.out_of_order_fraction)
      << "\n";
  out << "out_of_order_benign_fraction "
      << FormatFraction(causes.out_of_order_benign_fraction) << "\n";
  return out.str();
}

bool UpdateRequested() {
  const char* env = std::getenv("PHILLY_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void CompareOrUpdate(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (UpdateRequested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  const std::string expected = ReadFileOrEmpty(path);
  ASSERT_FALSE(expected.empty())
      << path << " missing or empty; regenerate with PHILLY_UPDATE_GOLDEN=1";
  if (expected != actual) {
    // Locate the first differing line for a reviewable failure message.
    std::istringstream a(expected);
    std::istringstream b(actual);
    std::string la;
    std::string lb;
    int line = 0;
    while (true) {
      ++line;
      const bool ga = static_cast<bool>(std::getline(a, la));
      const bool gb = static_cast<bool>(std::getline(b, lb));
      if (!ga && !gb) {
        break;
      }
      if (la != lb || ga != gb) {
        FAIL() << name << " diverges at line " << line << "\n  golden: "
               << (ga ? la : "<eof>") << "\n  actual: " << (gb ? lb : "<eof>")
               << "\nIf the change is intentional, regenerate with "
                  "PHILLY_UPDATE_GOLDEN=1 and commit the diff.";
      }
    }
    FAIL() << name << " differs from golden (same lines, different bytes?)";
  }
}

TEST(GoldenDeterminismTest, EventStreamAndTable2MatchCommittedGolden) {
  EventLog log;
  ExperimentConfig config = GoldenConfig();
  config.simulation.obs.event_log = &log;
  const ExperimentRun run = RunExperiment(config);

  std::ostringstream events;
  log.WriteNdjson(events);
  CompareOrUpdate("events.ndjson", events.str());

  const DelayCauseResult causes = AnalyzeDelayCauses(run.result.jobs, &run.result);
  CompareOrUpdate("table2.txt", RenderTable2(causes));
}

// Same discipline for the telemetry stream: a fixed config must reproduce the
// committed NDJSON — samples, AR(1) utilization join, and digest line — byte
// for byte. A coarse six-hour cadence keeps the fixture around a hundred
// lines (the run drains for weeks after the one-day arrival window) while
// still covering the whole codec and both digest halves.
TEST(GoldenDeterminismTest, TelemetryStreamMatchesCommittedGolden) {
  ClusterTimeSeries timeseries(Hours(6));
  ExperimentConfig config = GoldenConfig();
  config.simulation.obs.timeseries = &timeseries;
  const ExperimentRun run = RunExperiment(config);

  TelemetryDigest digest = DigestOfSamples(timeseries.samples());
  const TelemetryDigest jobs_half = ComputeUtilDigest(run.result.jobs);
  digest.jobs = jobs_half.jobs;
  digest.segments = jobs_half.segments;
  digest.util_weight = jobs_half.util_weight;
  digest.util_weighted_sum = jobs_half.util_weighted_sum;

  std::ostringstream stream;
  timeseries.WriteNdjson(stream, &digest);
  CompareOrUpdate("telemetry.ndjson", stream.str());
}

// Fault-enabled golden: the same fixed workload with the calibrated machine
// fault process (MTBFs compressed so the one-day window sees real kills) and
// the checkpoint I/O model on under the cooperative-stagger policy. Guards
// the fault timeline, the checkpoint write/stall cadence, and the new
// ckpt_begin/ckpt_end/ckpt_stall event kinds plus the telemetry checkpoint
// fields against accidental drift.
ExperimentConfig FaultGoldenConfig() {
  ExperimentConfig config = GoldenConfig();
  config.simulation.fault = FaultProcessConfig::Calibrated();
  config.simulation.fault.server_crash_mtbf_hours = 24.0 * 8;
  config.simulation.fault.gpu_ecc_mtbf_hours = 24.0 * 12;
  config.simulation.fault.rack_outage_mtbf_hours = 24.0 * 20;
  config.simulation.scheduler.checkpoint_period = Minutes(30);
  config.simulation.scheduler.checkpoint_policy =
      CheckpointPolicy::kCooperativeStagger;
  config.simulation.ckpt_io.rack_bandwidth_gbps = 0.5;
  config.simulation.ckpt_io.size_gb_per_gpu = 4.0;
  return config;
}

// Renders the Table 7 failure shares in a fixed 4-decimal encoding (same
// rationale as RenderTable2: the golden guards the numbers, not phillyctl's
// presentation).
std::string RenderTable7(const FailureAnalysisResult& failures) {
  TextTable table({"reason", "trials", "jobs", "users", "rtf-share"});
  for (const auto& row : failures.rows) {
    if (row.trials == 0) {
      continue;
    }
    table.AddRow({std::string(ToString(row.reason)), std::to_string(row.trials),
                  std::to_string(row.jobs), std::to_string(row.users),
                  FormatFraction(row.rtf_total_share)});
  }
  std::ostringstream out;
  out << "=== Table 7: failure shares ===\n" << table.Render();
  out << "total_trials " << failures.total_trials << "\n";
  out << "unsuccessful_rate " << FormatFraction(failures.unsuccessful_rate_all)
      << "\n";
  return out.str();
}

TEST(GoldenDeterminismTest, FaultEnabledStreamsMatchCommittedGolden) {
  EventLog log;
  ClusterTimeSeries timeseries(Hours(6));
  ExperimentConfig config = FaultGoldenConfig();
  config.simulation.obs.event_log = &log;
  config.simulation.obs.timeseries = &timeseries;
  const ExperimentRun run = RunExperiment(config);

  ASSERT_GT(run.result.machine_fault_kills, 0)
      << "fault golden must actually exercise the fault path";
  ASSERT_GT(run.result.ckpt_writes_completed, 0)
      << "fault golden must actually exercise the checkpoint I/O model";

  std::ostringstream events;
  log.WriteNdjson(events);
  CompareOrUpdate("events_fault.ndjson", events.str());

  CompareOrUpdate("table7_fault.txt", RenderTable7(AnalyzeFailures(run.result.jobs)));

  TelemetryDigest digest = DigestOfSamples(timeseries.samples());
  const TelemetryDigest jobs_half = ComputeUtilDigest(run.result.jobs);
  digest.jobs = jobs_half.jobs;
  digest.segments = jobs_half.segments;
  digest.util_weight = jobs_half.util_weight;
  digest.util_weighted_sum = jobs_half.util_weighted_sum;
  std::ostringstream stream;
  timeseries.WriteNdjson(stream, &digest);
  CompareOrUpdate("telemetry_fault.ndjson", stream.str());
}

// Span-stream golden: the fault-enabled config with the causal span tracer
// attached must reproduce the committed NDJSON byte for byte. This pins the
// whole attribution pipeline — enqueue/eval-fail/start hook order, blame
// refinement (fair-share cap vs fragmentation vs locality-wait), coalescing,
// requeue reasons, and checkpoint-stall spans — and doubles as a conservation
// check against the native records before comparing bytes.
TEST(GoldenDeterminismTest, SpanStreamMatchesCommittedGolden) {
  SpanTracer spans;
  ExperimentConfig config = FaultGoldenConfig();
  config.simulation.obs.spans = &spans;
  const ExperimentRun run = RunExperiment(config);

  std::string error;
  ASSERT_TRUE(
      VerifyBlameConservation(spans.log().spans(), run.result.jobs, &error))
      << error;

  std::ostringstream stream;
  spans.log().WriteNdjson(stream);
  CompareOrUpdate("spans.ndjson", stream.str());
}

// Fleet golden: a three-cluster fleet on a compressed horizon under the
// spillover router, with the threshold low enough that the stream records
// real spills. Guards the route event encoding (cluster/home/queue/free
// fields, policy detail) and the router's decision sequence — merge order,
// fluid-model state, id remapping — against accidental drift. The per-cluster
// streams need no golden of their own: the pinned differential test ties them
// to single-cluster runs, which the goldens above already pin down.
TEST(GoldenDeterminismTest, FleetRouteStreamMatchesCommittedGolden) {
  std::vector<ClusterConfig> topologies;
  std::string error;
  ASSERT_TRUE(ParseClustersSpec("1x8x8,1x8x8,1x4x4", &topologies, &error)) << error;
  FleetConfig config;
  for (size_t i = 0; i < topologies.size(); ++i) {
    config.clusters.push_back(
        {"cluster" + std::to_string(i),
         FleetClusterExperiment(topologies[i], /*days=*/1, /*base_seed=*/7,
                                static_cast<int>(i))});
  }
  config.router.policy = RouterPolicy::kSpillover;
  config.router.spill_threshold = 0;
  const FleetResult fleet = FleetSimulation(std::move(config)).Run();

  ASSERT_GT(fleet.spilled_jobs, 0)
      << "fleet golden must actually exercise spillover routing";
  std::ostringstream events;
  fleet.route_events.WriteNdjson(events);
  CompareOrUpdate("fleet_events.ndjson", events.str());
}

// The golden stream must also be independent of observability: re-running the
// same config without the event log attached yields identical job records
// (spot-checked via the Table 2 numbers).
TEST(GoldenDeterminismTest, SinksDoNotPerturbTheRun) {
  EventLog log;
  ExperimentConfig with_log = GoldenConfig();
  with_log.simulation.obs.event_log = &log;
  const ExperimentRun a = RunExperiment(with_log);
  const ExperimentRun b = RunExperiment(GoldenConfig());
  ASSERT_EQ(a.result.jobs.size(), b.result.jobs.size());
  EXPECT_EQ(RenderTable2(AnalyzeDelayCauses(a.result.jobs, &a.result)),
            RenderTable2(AnalyzeDelayCauses(b.result.jobs, &b.result)));
}

}  // namespace
}  // namespace philly
