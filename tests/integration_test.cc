// End-to-end shape tests: one shared simulation run, validated against the
// qualitative findings in DESIGN.md's per-experiment index. These are the
// same checks the benches print, enforced as tests at a smaller scale.

#include <gtest/gtest.h>

#include "src/core/analysis.h"
#include "src/core/experiment.h"

namespace philly {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    run_ = new ExperimentRun(RunExperiment(ExperimentConfig::BenchScale(25, 21)));
  }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  const SimulationResult& result() { return run_->result; }
  static ExperimentRun* run_;
};

ExperimentRun* IntegrationTest::run_ = nullptr;

TEST_F(IntegrationTest, Figure2RunTimeShape) {
  const auto runtimes = AnalyzeRunTimes(result().jobs);
  // Larger jobs run longer (median ordering) and a small tail exceeds a week.
  EXPECT_LT(runtimes.cdf_minutes[0].Median(), runtimes.cdf_minutes[2].Median());
  EXPECT_LT(runtimes.cdf_minutes[1].Median(), runtimes.cdf_minutes[3].Median());
  EXPECT_GT(runtimes.fraction_over_one_week, 0.0005);
  EXPECT_LT(runtimes.fraction_over_one_week, 0.05);
  // Span: some jobs finish in minutes, some take days.
  EXPECT_LT(runtimes.cdf_minutes[0].Quantile(0.1), 10.0);
  EXPECT_GT(runtimes.cdf_minutes[3].Quantile(0.95), 1440.0);
}

TEST_F(IntegrationTest, Figure3QueueDelayShape) {
  const auto delays = AnalyzeQueueDelays(result().jobs);
  // Bigger jobs have heavier delay tails; most jobs start quickly.
  EXPECT_LE(delays.overall[0].Quantile(0.9), delays.overall[3].Quantile(0.9) + 1e-9);
  EXPECT_GT(delays.overall[3].Quantile(0.95), 1.0);
  EXPECT_GT(delays.overall[0].CdfAt(10.0), 0.75);
  // The five large VCs all have data.
  for (VcId vc = 0; vc < 5; ++vc) {
    ASSERT_TRUE(delays.by_vc.count(vc) == 1);
  }
}

TEST_F(IntegrationTest, Figure4LocalityRelaxationShape) {
  const auto locality = AnalyzeLocalityDelay(result().jobs);
  // >8 GPU jobs spread across a range of server counts, from 2 up to many.
  ASSERT_GE(locality.gt_eight.size(), 3u);
  EXPECT_EQ(locality.gt_eight.front().num_servers, 2);
  EXPECT_GE(locality.gt_eight.back().num_servers, 6);
  // 5-8 GPU jobs mostly land on one or two servers.
  double tight = 0;
  double total = 0;
  for (const auto& cell : locality.five_to_eight) {
    total += cell.count;
    if (cell.num_servers <= 2) {
      tight += cell.count;
    }
  }
  // Most 5-8 GPU jobs keep high locality even under congestion (the exact
  // fraction depends on load; the bench at default scale sees ~95%+).
  EXPECT_GT(tight / total, 0.65);
}

TEST_F(IntegrationTest, Table2DelayCauseShape) {
  const auto causes = AnalyzeDelayCauses(result().jobs, &result());
  // Fragmentation dominates for the biggest jobs and overall waiting time.
  EXPECT_LT(causes.by_bucket[3].FairShareFraction(), 0.5);
  // Fragmentation dominates waiting time at full scale (0.73 at 75 days);
  // smaller windows see more seed variance.
  EXPECT_GT(causes.fragmentation_time_fraction, 0.25);
  // Out-of-order scheduling is common but mostly benign.
  EXPECT_GT(causes.out_of_order_fraction, 0.02);
  EXPECT_GT(causes.out_of_order_benign_fraction, 0.5);
  // §3.1.1: when ~2/3 of GPUs are used, few servers are completely empty.
  EXPECT_LT(causes.empty_server_fraction_at_two_thirds, 0.45);
}

TEST_F(IntegrationTest, Figure5Table3UtilizationShape) {
  const auto util = AnalyzeUtilization(result().jobs);
  // Overall in-use utilization is far below 100% (paper: ~52%).
  EXPECT_GT(util.all.Mean(), 30.0);
  EXPECT_LT(util.all.Mean(), 70.0);
  // 16-GPU jobs have the lowest utilization of the representative sizes.
  const double mean16 = util.MeanForSize(3);
  EXPECT_LT(mean16, util.MeanForSize(2));
  EXPECT_LT(mean16, util.MeanForSize(0));
}

TEST_F(IntegrationTest, Figure6DedicatedServersShape) {
  const auto util = AnalyzeUtilization(result().jobs);
  // Dedicated 8-GPU (single server) beats 16-GPU (two servers) clearly.
  ASSERT_GT(util.dedicated_8gpu.Count(), 0.0);
  ASSERT_GT(util.dedicated_16gpu.Count(), 0.0);
  EXPECT_GT(util.dedicated_8gpu.Mean(), util.dedicated_16gpu.Mean() + 5.0);
}

TEST_F(IntegrationTest, Table5SpreadDegradesUtilization) {
  const auto util = AnalyzeUtilization(result().jobs);
  ASSERT_TRUE(util.sixteen_by_servers.count(2) == 1);
  const double two = util.sixteen_by_servers.at(2).Mean();
  // Find the widest observed spread with enough mass.
  double widest = two;
  for (const auto& [servers, hist] : util.sixteen_by_servers) {
    if (servers >= 6 && hist.Count() > 100) {
      widest = hist.Mean();
    }
  }
  EXPECT_LT(widest, two);
}

TEST_F(IntegrationTest, Figure7HostResourcesShape) {
  const auto host = AnalyzeHostResources(result().jobs);
  EXPECT_LT(host.cpu_util.Mean(), 50.0);
  EXPECT_GT(host.memory_util.Mean(), 65.0);
  EXPECT_GT(host.memory_util.Median(), host.cpu_util.Median() + 20.0);
}

TEST_F(IntegrationTest, Table6StatusShape) {
  const auto status = AnalyzeStatus(result().jobs);
  const auto& passed = status.by_status[static_cast<size_t>(JobStatus::kPassed)];
  const auto& killed = status.by_status[static_cast<size_t>(JobStatus::kKilled)];
  const auto& unsuccessful =
      status.by_status[static_cast<size_t>(JobStatus::kUnsuccessful)];
  EXPECT_GT(passed.count_share, 0.55);
  EXPECT_GT(killed.count_share, 0.05);
  EXPECT_GT(unsuccessful.count_share, 0.08);
  // Killed jobs consume GPU time out of proportion to their count.
  EXPECT_GT(killed.gpu_time_share, killed.count_share * 1.5);
  // A large fraction of GPU time goes to jobs that do not pass (paper: ~55%).
  EXPECT_GT(killed.gpu_time_share + unsuccessful.gpu_time_share, 0.25);
}

TEST_F(IntegrationTest, Figure8ConvergenceShape) {
  const auto convergence = AnalyzeConvergence(result().jobs);
  ASSERT_GT(convergence.jobs_with_convergence_info, 30);
  // Most passed jobs improve until (nearly) the end...
  EXPECT_GT(1.0 - convergence.passed_lowest.CdfAt(0.98), 0.55);
  // ...but reach within 0.1% of the minimum much earlier.
  EXPECT_GT(convergence.passed_within.CdfAt(0.5), 0.5);
  // Majority of GPU time is spent on the last 0.1% of loss improvement.
  EXPECT_GT(convergence.passed_gpu_time_for_last_tenth_pct, 0.40);
  EXPECT_GT(convergence.killed_gpu_time_for_last_tenth_pct, 0.35);
}

TEST_F(IntegrationTest, Figure9RetryShape) {
  const auto failures = AnalyzeFailures(result().jobs);
  // Retries and unsuccessful rates rise with GPU count.
  EXPECT_LT(failures.mean_retries_by_bucket[0], failures.mean_retries_by_bucket[3]);
  EXPECT_LT(failures.unsuccessful_rate_by_bucket[0],
            failures.unsuccessful_rate_by_bucket[3]);
  EXPECT_GT(failures.unsuccessful_rate_all, 0.08);
  EXPECT_LT(failures.unsuccessful_rate_all, 0.30);
}

TEST_F(IntegrationTest, Table7FailureTaxonomyShape) {
  const auto failures = AnalyzeFailures(result().jobs);
  EXPECT_GT(failures.total_trials, 500);
  const auto& oom = failures.rows[static_cast<size_t>(FailureReason::kCpuOutOfMemory)];
  const auto& inputs =
      failures.rows[static_cast<size_t>(FailureReason::kIncorrectInputs)];
  const auto& ckpt = failures.rows[static_cast<size_t>(FailureReason::kModelCkptError)];
  const auto& mpi_rt =
      failures.rows[static_cast<size_t>(FailureReason::kMpiRuntimeFailure)];
  const auto& syntax = failures.rows[static_cast<size_t>(FailureReason::kSyntaxError)];
  // User errors dominate counts; OOM and incorrect inputs on top.
  EXPECT_GT(oom.trials, ckpt.trials);
  EXPECT_GT(inputs.trials, ckpt.trials);
  // Infra failures are rare but carry long RTFs.
  EXPECT_GT(ckpt.rtf_p50_min, 30.0);
  EXPECT_GT(mpi_rt.rtf_p50_min, 100.0);
  EXPECT_LT(syntax.rtf_p50_min, 5.0);
  // Checkpoint + MPI runtime dominate summed RTF share.
  EXPECT_GT(ckpt.rtf_total_share + mpi_rt.rtf_total_share, 0.15);
  // Repetition factors: user-level far above job-level.
  EXPECT_GT(failures.top8_job_repetition, 1.2);
  // User-level repetition far exceeds job-level (38.8 vs 2.3 in the paper at
  // full scale; the gap narrows at bench scale with fewer jobs per user).
  EXPECT_GT(failures.top8_user_repetition, 2.0 * failures.top8_job_repetition);
}

TEST_F(IntegrationTest, Figure10SemanticErrorDemandTrend) {
  const auto failures = AnalyzeFailures(result().jobs);
  const auto it = failures.rtf_demand_scatter.find(FailureReason::kSemanticError);
  ASSERT_NE(it, failures.rtf_demand_scatter.end());
  EXPECT_GT(it->second.size(), 20u);
}

TEST_F(IntegrationTest, PreemptionHappensButRarely) {
  EXPECT_GT(result().preemptions, 0);
  EXPECT_LT(result().preemptions,
            static_cast<int64_t>(result().jobs.size() / 20));
}

TEST_F(IntegrationTest, ClassifierMatchesInjectedGroundTruth) {
  // The analysis classifies from raw text; compare against injected truth.
  FailureClassifier classifier;
  int64_t total = 0;
  int64_t matched = 0;
  for (const auto& job : result().jobs) {
    for (const auto& attempt : job.attempts) {
      if (!attempt.failed) {
        continue;
      }
      ++total;
      matched += classifier.Classify(attempt.log_tail) == attempt.true_reason;
    }
  }
  ASSERT_GT(total, 500);
  EXPECT_GT(static_cast<double>(matched) / static_cast<double>(total), 0.98);
}

}  // namespace
}  // namespace philly
