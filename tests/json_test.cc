#include "src/common/json.h"

#include <gtest/gtest.h>

namespace philly {
namespace {

TEST(JsonTest, ParsesScalars) {
  std::string error;
  EXPECT_TRUE(JsonValue::Parse("null", &error).is_null());
  EXPECT_TRUE(error.empty());
  EXPECT_TRUE(JsonValue::Parse("true", &error).AsBool());
  EXPECT_FALSE(JsonValue::Parse("false", &error).AsBool(true));
  EXPECT_DOUBLE_EQ(JsonValue::Parse("42", &error).AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-3.5e2", &error).AsNumber(), -350.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"", &error).AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  const char* text = R"({
    "status": "Pass",
    "attempts": [
      {"start_time": "2017-10-03 19:59:14",
       "detail": [{"ip": "10.1.2.3", "gpus": ["gpu0", "gpu1"]}]},
      {"start_time": null, "detail": []}
    ],
    "count": 2
  })";
  std::string error;
  const JsonValue root = JsonValue::Parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(root["status"].AsString(), "Pass");
  EXPECT_DOUBLE_EQ(root["count"].AsNumber(), 2.0);
  const auto& attempts = root["attempts"].AsArray();
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0]["detail"].AsArray()[0]["ip"].AsString(), "10.1.2.3");
  EXPECT_EQ(attempts[0]["detail"].AsArray()[0]["gpus"].size(), 2u);
  EXPECT_TRUE(attempts[1]["start_time"].is_null());
  EXPECT_TRUE(root["missing"].is_null());
}

TEST(JsonTest, EscapesInStrings) {
  std::string error;
  const JsonValue v = JsonValue::Parse(R"("line\nbreak \"quoted\" back\\slash")",
                                       &error);
  ASSERT_TRUE(error.empty());
  EXPECT_EQ(v.AsString(), "line\nbreak \"quoted\" back\\slash");
}

TEST(JsonTest, ReportsErrors) {
  std::string error;
  JsonValue::Parse("{\"a\": }", &error);
  EXPECT_FALSE(error.empty());
  error.clear();
  JsonValue::Parse("[1, 2", &error);
  EXPECT_FALSE(error.empty());
  error.clear();
  JsonValue::Parse("\"unterminated", &error);
  EXPECT_FALSE(error.empty());
  error.clear();
  JsonValue::Parse("12 34", &error);  // trailing content
  EXPECT_FALSE(error.empty());
  error.clear();
  JsonValue::Parse("nope", &error);
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, EmptyContainers) {
  std::string error;
  EXPECT_EQ(JsonValue::Parse("[]", &error).AsArray().size(), 0u);
  EXPECT_TRUE(error.empty());
  const JsonValue obj = JsonValue::Parse("{}", &error);
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(obj.size(), 0u);
}

TEST(JsonTest, TypeMismatchesReturnFallbacks) {
  std::string error;
  const JsonValue v = JsonValue::Parse("[1]", &error);
  EXPECT_DOUBLE_EQ(v.AsNumber(7.0), 7.0);
  EXPECT_EQ(v.AsString(), "");
  EXPECT_TRUE(v["key"].is_null());
  EXPECT_FALSE(v.AsBool());
}

}  // namespace
}  // namespace philly
