// Tests for the observability layer: NDJSON event-log round-trips, the
// event-stream -> SimulationResult join (the paper-style log join), metrics
// registry concurrency, phase tracing, and the two contracts the layer
// guarantees — byte-identical event streams regardless of pool thread count,
// and zero perturbation of simulation output when sinks are attached.
//
// EventStreamDeterministicAcrossPoolThreads and SharedMetricsAcrossPoolWorkers
// carry the `tsan` ctest label via this binary (see tests/CMakeLists.txt).

#include "src/obs/event_log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sha256.h"
#include "src/core/event_join.h"
#include "src/core/experiment.h"
#include "src/core/runner.h"
#include "src/fault/fault_process.h"
#include "src/obs/manifest.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_profiler.h"

namespace philly {
namespace {

ExperimentConfig SmallConfig(uint64_t seed) {
  return ExperimentConfig::BenchScale(/*days=*/1, seed);
}

std::string NdjsonOf(const EventLog& log) {
  std::ostringstream out;
  log.WriteNdjson(out);
  return out.str();
}

// ------------------------------------------------------------ NDJSON codec

TEST(EventLogTest, SingleEventRoundTripsAllFields) {
  SchedEvent event;
  event.time = 12345;
  event.kind = SchedEventKind::kSchedule;
  event.job = 42;
  event.vc = 3;
  event.user = 17;
  event.gpus = 8;
  event.attempt = 2;
  event.ready_time = 12000;
  event.wait = 345;
  event.fair_share_time = 100;
  event.fragmentation_time = 245;
  event.sched_attempts = 6;
  event.out_of_order = true;
  event.benign = true;
  event.placement = "3:4|9:4";
  event.detail = "pass";

  const std::string line = ToNdjsonLine(event);
  SchedEvent parsed;
  std::string error;
  ASSERT_TRUE(SchedEventFromNdjsonLine(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.time, event.time);
  EXPECT_EQ(parsed.kind, event.kind);
  EXPECT_EQ(parsed.job, event.job);
  EXPECT_EQ(parsed.vc, event.vc);
  EXPECT_EQ(parsed.user, event.user);
  EXPECT_EQ(parsed.gpus, event.gpus);
  EXPECT_EQ(parsed.attempt, event.attempt);
  EXPECT_EQ(parsed.ready_time, event.ready_time);
  EXPECT_EQ(parsed.wait, event.wait);
  EXPECT_EQ(parsed.fair_share_time, event.fair_share_time);
  EXPECT_EQ(parsed.fragmentation_time, event.fragmentation_time);
  EXPECT_EQ(parsed.sched_attempts, event.sched_attempts);
  EXPECT_EQ(parsed.out_of_order, event.out_of_order);
  EXPECT_EQ(parsed.benign, event.benign);
  EXPECT_EQ(parsed.placement, event.placement);
  EXPECT_EQ(parsed.detail, event.detail);
  // Re-serialization is byte-stable.
  EXPECT_EQ(ToNdjsonLine(parsed), line);
}

TEST(EventLogTest, KindTagsRoundTrip) {
  for (int k = 0; k < kNumSchedEventKinds; ++k) {
    const auto kind = static_cast<SchedEventKind>(k);
    SchedEventKind back;
    ASSERT_TRUE(SchedEventKindFromString(ToString(kind), &back));
    EXPECT_EQ(back, kind);
  }
  SchedEventKind ignored;
  EXPECT_FALSE(SchedEventKindFromString("not_a_kind", &ignored));
}

TEST(EventLogTest, ReadNdjsonReportsMalformedLine) {
  std::istringstream in(
      "{\"t\":0,\"ev\":\"submit\",\"job\":1}\n"
      "this is not json\n");
  std::string error;
  const auto events = EventLog::ReadNdjson(in, &error);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(EventLogTest, FullRunStreamRoundTripsByteIdentically) {
  EventLog log;
  ExperimentConfig config = SmallConfig(13);
  config.simulation.obs.event_log = &log;
  RunExperiment(config);
  ASSERT_GT(log.size(), 100u);

  const std::string ndjson = NdjsonOf(log);
  std::istringstream in(ndjson);
  std::string error;
  const auto events = EventLog::ReadNdjson(in, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(events.size(), log.size());

  EventLog reparsed;
  for (const auto& e : events) {
    reparsed.Append(e.kind, e.time, e.job) = e;
  }
  EXPECT_EQ(NdjsonOf(reparsed), ndjson);
}

// ------------------------------------------------------------ event join

// The property test the event log exists for: every scheduler-stream field of
// the native SimulationResult must be re-derivable from the events alone.
void ExpectJoinMatchesNative(const ExperimentConfig& base) {
  EventLog log;
  ExperimentConfig config = base;
  config.simulation.obs.event_log = &log;
  const SimulationResult native = RunExperiment(config).result;

  std::string error;
  const SimulationResult joined = JoinSchedulerEvents(log.events(), &error);
  ASSERT_TRUE(error.empty()) << error;

  EXPECT_EQ(joined.scheduling_decisions, native.scheduling_decisions);
  EXPECT_EQ(joined.out_of_order_decisions, native.out_of_order_decisions);
  EXPECT_EQ(joined.out_of_order_benign, native.out_of_order_benign);
  EXPECT_EQ(joined.preemptions, native.preemptions);
  EXPECT_EQ(joined.priority_preemptions, native.priority_preemptions);
  EXPECT_EQ(joined.migrations, native.migrations);
  EXPECT_EQ(joined.prerun_jobs, native.prerun_jobs);
  EXPECT_EQ(joined.prerun_catches, native.prerun_catches);
  EXPECT_DOUBLE_EQ(joined.prerun_gpu_seconds, native.prerun_gpu_seconds);
  EXPECT_EQ(joined.machine_fault_kills, native.machine_fault_kills);
  EXPECT_DOUBLE_EQ(joined.machine_fault_lost_gpu_seconds,
                   native.machine_fault_lost_gpu_seconds);

  ASSERT_EQ(joined.jobs.size(), native.jobs.size());
  for (size_t i = 0; i < native.jobs.size(); ++i) {
    const JobRecord& a = native.jobs[i];
    const JobRecord& b = joined.jobs[i];
    ASSERT_EQ(a.spec.id, b.spec.id);
    EXPECT_EQ(a.spec.vc, b.spec.vc);
    EXPECT_EQ(a.spec.user, b.spec.user);
    EXPECT_EQ(a.spec.num_gpus, b.spec.num_gpus);
    EXPECT_EQ(a.spec.submit_time, b.spec.submit_time);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.finish_time, b.finish_time);
    EXPECT_EQ(a.InitialQueueDelay(), b.InitialQueueDelay());
    EXPECT_EQ(a.started_out_of_order, b.started_out_of_order);
    EXPECT_EQ(a.out_of_order_benign, b.out_of_order_benign);
    EXPECT_EQ(a.overtaken, b.overtaken);
    EXPECT_DOUBLE_EQ(a.gpu_seconds, b.gpu_seconds);
    ASSERT_EQ(a.waits.size(), b.waits.size());
    for (size_t w = 0; w < a.waits.size(); ++w) {
      EXPECT_EQ(a.waits[w].ready_time, b.waits[w].ready_time);
      EXPECT_EQ(a.waits[w].wait, b.waits[w].wait);
      EXPECT_EQ(a.waits[w].fair_share_time, b.waits[w].fair_share_time);
      EXPECT_EQ(a.waits[w].fragmentation_time, b.waits[w].fragmentation_time);
      EXPECT_EQ(a.waits[w].sched_attempts, b.waits[w].sched_attempts);
    }
    ASSERT_EQ(a.attempts.size(), b.attempts.size());
    for (size_t k = 0; k < a.attempts.size(); ++k) {
      const AttemptRecord& x = a.attempts[k];
      const AttemptRecord& y = b.attempts[k];
      EXPECT_EQ(x.index, y.index);
      EXPECT_EQ(x.start, y.start);
      EXPECT_EQ(x.end, y.end);
      EXPECT_EQ(x.failed, y.failed);
      EXPECT_EQ(x.preempted, y.preempted);
      EXPECT_EQ(x.machine_fault, y.machine_fault);
      EXPECT_EQ(x.prerun, y.prerun);
      EXPECT_EQ(EncodePlacement(x.placement), EncodePlacement(y.placement));
    }
  }
}

TEST(EventJoinTest, RebuildsSimulationResultFromEvents) {
  ExpectJoinMatchesNative(SmallConfig(13));
}

TEST(EventJoinTest, RebuildsUnderFaultsAndSection5Mechanisms) {
  ExperimentConfig config = SmallConfig(29);
  config.simulation.fault = FaultProcessConfig::Calibrated();
  config.simulation.scheduler.enable_prerun_pool = true;
  config.simulation.scheduler.enable_migration = true;
  ExpectJoinMatchesNative(config);
}

TEST(EventJoinTest, ReportsInconsistentStream) {
  SchedEvent orphan;
  orphan.kind = SchedEventKind::kComplete;
  orphan.job = 99;
  orphan.status = 0;
  std::string error;
  const auto joined = JoinSchedulerEvents({orphan}, &error);
  EXPECT_TRUE(joined.jobs.empty());
  EXPECT_NE(error.find("never submitted"), std::string::npos) << error;
}

// ----------------------------------------------- determinism & purity

// The stream contract: running through the pool on any thread count yields
// byte-identical per-run event streams. (tsan-labeled: proves the pool +
// per-run logs are race free under ThreadSanitizer.)
TEST(EventLogTest, EventStreamDeterministicAcrossPoolThreads) {
  const std::vector<uint64_t> seeds = {7, 11, 19};

  std::vector<std::string> serial;
  for (uint64_t seed : seeds) {
    EventLog log;
    ExperimentConfig config = SmallConfig(seed);
    config.simulation.obs.event_log = &log;
    RunExperiment(config);
    serial.push_back(NdjsonOf(log));
  }

  std::vector<EventLog> logs(seeds.size());
  std::vector<ExperimentConfig> configs;
  MetricsRegistry shared_metrics;
  TraceProfiler shared_profiler;
  for (size_t i = 0; i < seeds.size(); ++i) {
    ExperimentConfig config = SmallConfig(seeds[i]);
    config.simulation.obs.event_log = &logs[i];
    config.simulation.obs.metrics = &shared_metrics;
    config.simulation.obs.profiler = &shared_profiler;
    configs.push_back(std::move(config));
  }
  const ExperimentPool pool(4);
  pool.RunMany(std::move(configs));

  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(NdjsonOf(logs[i]), serial[i]) << "seed " << seeds[i];
  }
  // The shared sinks aggregated across all three runs.
  EXPECT_GT(shared_metrics.GetCounter("sched.decisions")->value(), 0);
  EXPECT_GT(shared_profiler.size(), 0u);
}

TEST(EventLogTest, RunManyRejectsSharedEventLog) {
  EventLog shared;
  std::vector<ExperimentConfig> configs;
  for (uint64_t seed : {1u, 2u}) {
    ExperimentConfig config = SmallConfig(seed);
    config.simulation.obs.event_log = &shared;
    configs.push_back(std::move(config));
  }
  const ExperimentPool pool(2);
  EXPECT_THROW(pool.RunMany(std::move(configs)), std::invalid_argument);
}

// Attaching every sink must not change a single bit of the simulation output.
TEST(ObservabilityTest, EnabledSinksDoNotPerturbSimulation) {
  const ExperimentConfig base = SmallConfig(23);
  const SimulationResult plain = RunExperiment(base).result;

  EventLog log;
  MetricsRegistry metrics;
  TraceProfiler profiler;
  ExperimentConfig observed = base;
  observed.simulation.obs.event_log = &log;
  observed.simulation.obs.metrics = &metrics;
  observed.simulation.obs.profiler = &profiler;
  const SimulationResult instrumented = RunExperiment(observed).result;

  ASSERT_EQ(plain.jobs.size(), instrumented.jobs.size());
  EXPECT_EQ(plain.scheduling_decisions, instrumented.scheduling_decisions);
  EXPECT_EQ(plain.preemptions, instrumented.preemptions);
  EXPECT_EQ(plain.sim_events_processed, instrumented.sim_events_processed);
  for (size_t i = 0; i < plain.jobs.size(); ++i) {
    const JobRecord& a = plain.jobs[i];
    const JobRecord& b = instrumented.jobs[i];
    ASSERT_EQ(a.spec.id, b.spec.id);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.finish_time, b.finish_time);
    EXPECT_EQ(a.InitialQueueDelay(), b.InitialQueueDelay());
    EXPECT_EQ(a.attempts.size(), b.attempts.size());
    EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);
    EXPECT_EQ(a.executed_epochs, b.executed_epochs);
  }
  // And the sinks did observe the run.
  EXPECT_GT(log.size(), 0u);
  EXPECT_EQ(metrics.GetCounter("sched.decisions")->value(),
            plain.scheduling_decisions);
  EXPECT_EQ(metrics.GetCounter("sim.events_processed")->value(),
            plain.sim_events_processed);
  EXPECT_EQ(
      metrics.GetHistogram("sched.queue_delay_minutes")->count(),
      static_cast<int64_t>(plain.jobs.size()));
}

// ------------------------------------------------------------ metrics

TEST(MetricsTest, SharedRegistryIsThreadSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("test.counter");
      Gauge* gauge = registry.GetGauge("test.gauge");
      Histogram* hist = registry.GetHistogram("test.hist");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        hist->Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.GetCounter("test.counter")->value(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(registry.GetGauge("test.gauge")->value(),
                   kThreads * kPerThread);
  EXPECT_EQ(registry.GetHistogram("test.hist")->count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(registry.GetHistogram("test.hist")->min(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetHistogram("test.hist")->max(), 99.0);
}

TEST(MetricsTest, HistogramQuantilesAreOrderedAndClamped) {
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.Observe(static_cast<double>(i));
  }
  EXPECT_EQ(hist.count(), 1000);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1000.0);
  const double p50 = hist.Quantile(0.5);
  const double p90 = hist.Quantile(0.9);
  const double p99 = hist.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, hist.min());
  EXPECT_LE(p99, hist.max());
  // Base-2 buckets: the estimates are order-of-magnitude accurate.
  EXPECT_NEAR(p50, 500.0, 300.0);
}

// Regression tests for the Quantile edge cases: an empty histogram used to
// interpolate against uninitialized min/max, a single hot bucket could return
// values outside [min, max], and q at the boundaries ignored the observed
// extremes.
TEST(MetricsTest, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(1.0), 0.0);

  // All mass in one bucket: every quantile stays within the observed range.
  Histogram one_bucket;
  for (int i = 0; i < 1000; ++i) {
    one_bucket.Observe(5.0);
  }
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_GE(one_bucket.Quantile(q), 5.0) << "q=" << q;
    EXPECT_LE(one_bucket.Quantile(q), one_bucket.max()) << "q=" << q;
  }

  // q <= 0 is the observed min and q >= 1 the observed max, even when the
  // min is negative (below every bucket bound).
  Histogram mixed;
  mixed.Observe(-5.0);
  mixed.Observe(100.0);
  EXPECT_DOUBLE_EQ(mixed.Quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(mixed.Quantile(-0.5), -5.0);
  EXPECT_DOUBLE_EQ(mixed.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(mixed.Quantile(1.5), 100.0);
}

TEST(MetricsTest, CustomBucketLayoutValidation) {
  const Histogram deciles({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  EXPECT_EQ(deciles.bucket_bounds().size(), 10u);
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>(Histogram::kNumBuckets, 0.0)),
               std::invalid_argument);
}

TEST(MetricsTest, MergeFromRejectsMismatchedBucketBounds) {
  Histogram default_layout;
  default_layout.Observe(1.0);
  Histogram custom({10, 20, 30});
  custom.Observe(15.0);
  EXPECT_THROW(default_layout.MergeFrom(custom), std::invalid_argument);
  EXPECT_THROW(custom.MergeFrom(default_layout), std::invalid_argument);
  Histogram other_custom({10, 20, 40});
  EXPECT_THROW(custom.MergeFrom(other_custom), std::invalid_argument);
  // Matching layouts still merge.
  Histogram same({10, 20, 30});
  same.Observe(25.0);
  custom.MergeFrom(same);
  EXPECT_EQ(custom.count(), 2);
}

TEST(MetricsTest, MergeFromFoldsRegistries) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("x")->Increment(3);
  b.GetCounter("x")->Increment(4);
  b.GetCounter("only_b")->Increment(1);
  b.GetHistogram("h")->Observe(2.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("x")->value(), 7);
  EXPECT_EQ(a.GetCounter("only_b")->value(), 1);
  EXPECT_EQ(a.GetHistogram("h")->count(), 1);
}

TEST(MetricsTest, WriteJsonSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("sched.decisions")->Increment(5);
  registry.GetHistogram("sched.queue_delay_minutes")->Observe(1.5);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sched.decisions\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("sched.queue_delay_minutes"), std::string::npos);
}

// ------------------------------------------------------------ profiler

TEST(TraceProfilerTest, ScopedTimerRecordsSlices) {
  TraceProfiler profiler;
  {
    ScopedTimer outer(&profiler, "outer");
    ScopedTimer inner(&profiler, "inner");
  }
  EXPECT_EQ(profiler.size(), 2u);
  std::ostringstream out;
  profiler.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
}

TEST(TraceProfilerTest, NullProfilerIsNoOp) {
  ScopedTimer timer(nullptr, "unused");
  // Destruction without a profiler must be a no-op (no crash, no slices).
}

// ------------------------------------------------------------ manifest

TEST(ManifestTest, WriteJsonContainsKnobsAndOutputs) {
  RunManifest manifest;
  manifest.tool = "phillyctl";
  manifest.command = "simulate";
  manifest.seed = 42;
  manifest.days = 10;
  manifest.threads = 4;
  manifest.knobs["scheduler"] = "philly";
  manifest.outputs["events"] = "events.ndjson";
  std::ostringstream out;
  manifest.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"scheduler\": \"philly\""), std::string::npos);
  EXPECT_NE(json.find("events.ndjson"), std::string::npos);
}

TEST(ManifestTest, RecordsSinkDigests) {
  RunManifest manifest;
  manifest.outputs["telemetry"] = "telemetry.ndjson";
  manifest.digests["telemetry"] = Sha256Hex("{\"t\":60}\n");
  std::ostringstream out;
  manifest.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"digests\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"telemetry\": \"" + Sha256Hex("{\"t\":60}\n") + "\""),
            std::string::npos)
      << json;
}

// ------------------------------------------------------------ sha256

TEST(Sha256Test, MatchesKnownVectors) {
  // FIPS 180-2 test vectors.
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Block-boundary lengths (55/56/64 bytes) exercise the padding paths.
  EXPECT_EQ(Sha256Hex(std::string(55, 'a')),
            Sha256Hex(std::string(55, 'a')));
  EXPECT_EQ(Sha256Hex(std::string(1000000, 'a')),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

}  // namespace
}  // namespace philly
