// Full paper-scale integration: one 75-day run (the paper's actual window,
// ~96k jobs) validated against the headline findings. The bench suite prints
// these same claims with more context; this suite makes them regression
// tests at the scale that matters.

#include <gtest/gtest.h>

#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/core/validate.h"

namespace philly {
namespace {

class PaperScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    run_ = new ExperimentRun(RunExperiment(ExperimentConfig::PaperScale(42)));
  }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  const SimulationResult& result() { return run_->result; }
  static ExperimentRun* run_;
};

ExperimentRun* PaperScaleTest::run_ = nullptr;

TEST_F(PaperScaleTest, JobCountMatchesPaper) {
  // Paper: 96,260 jobs over 75 days across 14 virtual clusters.
  EXPECT_NEAR(static_cast<double>(result().jobs.size()), 96260.0, 96260.0 * 0.03);
}

TEST_F(PaperScaleTest, OutputValidates) {
  const auto report = ValidateJobs(result().jobs);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST_F(PaperScaleTest, StatusSharesInPaperBands) {
  const auto status = AnalyzeStatus(result().jobs);
  // Paper: 69.3 / 13.5 / 17.2 (%); ~55% of GPU time on non-passed jobs.
  EXPECT_NEAR(status.by_status[0].count_share, 0.693, 0.05);
  EXPECT_NEAR(status.by_status[1].count_share, 0.135, 0.04);
  EXPECT_NEAR(status.by_status[2].count_share, 0.172, 0.04);
  EXPECT_GT(status.by_status[1].gpu_time_share +
                status.by_status[2].gpu_time_share,
            0.35);
}

TEST_F(PaperScaleTest, UtilizationHeadlines) {
  const auto util = AnalyzeUtilization(result().jobs);
  EXPECT_NEAR(util.all.Mean(), 52.3, 8.0);  // paper 52.3%
  // 16-GPU lowest, 8-GPU (whole server) above 4-GPU (colocated).
  EXPECT_LT(util.MeanForSize(3), util.MeanForSize(0));
  EXPECT_LT(util.MeanForSize(3), util.MeanForSize(1));
  EXPECT_LT(util.MeanForSize(3), util.MeanForSize(2));
  EXPECT_GT(util.MeanForSize(2), util.MeanForSize(1));
  // Fig 6: dedicated 8-GPU clearly beats two-server 16-GPU.
  EXPECT_GT(util.dedicated_8gpu.Mean(), util.dedicated_16gpu.Mean() + 5.0);
}

TEST_F(PaperScaleTest, DelayTailsAndCauses) {
  const auto delays = AnalyzeQueueDelays(result().jobs);
  // Heavy >8-GPU tail into the 10^2-minute range; 1-GPU jobs rarely wait.
  EXPECT_GT(delays.overall[3].Quantile(0.99), 30.0);
  EXPECT_GT(delays.overall[0].CdfAt(1.0), 0.95);
  const auto causes = AnalyzeDelayCauses(result().jobs, &result());
  for (int b = 1; b < kNumSizeBuckets; ++b) {
    EXPECT_LT(causes.by_bucket[static_cast<size_t>(b)].FairShareFraction(), 0.5)
        << "bucket " << b;
  }
  EXPECT_GT(causes.out_of_order_benign_fraction, 0.7);
}

TEST_F(PaperScaleTest, FailureTaxonomyHeadlines) {
  const auto failures = AnalyzeFailures(result().jobs);
  EXPECT_NEAR(static_cast<double>(failures.total_trials), 39776.0, 39776.0 * 0.25);
  EXPECT_NEAR(failures.no_signature_fraction, 0.042, 0.025);
  EXPECT_NEAR(failures.top8_job_repetition, 2.3, 0.8);
  // Retry/unsuccessful gradients.
  EXPECT_LT(failures.mean_retries_by_bucket[0], failures.mean_retries_by_bucket[3]);
  EXPECT_LT(failures.unsuccessful_rate_by_bucket[0],
            failures.unsuccessful_rate_by_bucket[3]);
}

TEST_F(PaperScaleTest, PreemptionStaysRare) {
  // Paper: 147 preemption trials in 75 days. Ours lands in the low hundreds.
  EXPECT_GT(result().preemptions, 0);
  EXPECT_LT(result().preemptions, 2000);
}

}  // namespace
}  // namespace philly
