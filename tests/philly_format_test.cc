#include "src/trace/philly_format.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/common/csv.h"
#include "src/core/analysis.h"

#include "src/sched/simulation.h"

namespace philly {
namespace {

std::vector<JobRecord> RunTiny() {
  WorkloadConfig workload = WorkloadConfig::Scaled(1, 31);
  workload.prepopulate_busy_gpus = 200;
  SimulationConfig config;
  config.vcs = workload.vcs;
  ClusterSimulation sim(config, WorkloadGenerator(workload).Generate());
  return sim.Run().jobs;
}

TEST(PhillyFormatTest, TimestampsMatchCollectionWindow) {
  PhillyTracesExporter exporter(ClusterConfig::PaperScale());
  // t = 0 is the nominal window start (Oct 2017, per §2.4).
  EXPECT_EQ(exporter.Timestamp(0), "2017-10-01 00:00:00");
  EXPECT_EQ(exporter.Timestamp(Days(1) + Hours(2) + Minutes(3) + 4),
            "2017-10-02 02:03:04");
}

TEST(PhillyFormatTest, IdentifierFormats) {
  EXPECT_EQ(PhillyTracesExporter::VcHash(0).size(), 10u);
  EXPECT_NE(PhillyTracesExporter::VcHash(0), PhillyTracesExporter::VcHash(1));
  EXPECT_EQ(PhillyTracesExporter::UserHash(5).size(), 10u);
  EXPECT_EQ(PhillyTracesExporter::MachineIp(0), "10.1.0.42");
  EXPECT_EQ(PhillyTracesExporter::MachineIp(300), "10.2.44.42");
}

TEST(PhillyFormatTest, JobLogIsWellFormedJson) {
  const auto jobs = RunTiny();
  PhillyTracesExporter exporter(ClusterConfig::PaperScale());
  std::ostringstream out;
  exporter.WriteJobLog(jobs, out);
  const std::string text = out.str();
  // Structural sanity: array brackets, balanced braces, one entry per job.
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text[text.size() - 2], ']');
  int depth = 0;
  int max_depth = 0;
  for (char c : text) {
    if (c == '{') {
      max_depth = std::max(max_depth, ++depth);
    } else if (c == '}') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_GE(max_depth, 3);  // job -> attempt -> detail nesting
  size_t entries = 0;
  size_t pos = 0;
  while ((pos = text.find("\"jobid\": \"application_", pos)) != std::string::npos) {
    ++entries;
    ++pos;
  }
  EXPECT_EQ(entries, jobs.size());
  // Status vocabulary matches the public trace.
  EXPECT_EQ(text.find("\"Unsuccessful\""), std::string::npos);
  EXPECT_NE(text.find("\"Pass\""), std::string::npos);
}

TEST(PhillyFormatTest, MachineListMatchesCluster) {
  const auto cluster = ClusterConfig::PaperScale();
  PhillyTracesExporter exporter(cluster);
  std::ostringstream out;
  exporter.WriteMachineList(out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  int machines = 0;
  int gpus = 0;
  while (std::getline(in, line)) {
    ++machines;
    const auto comma = line.rfind(',');
    gpus += std::stoi(line.substr(comma + 1));
  }
  EXPECT_EQ(machines, cluster.TotalServers());
  EXPECT_EQ(gpus, cluster.TotalGpus());
}

TEST(PhillyFormatTest, GpuUtilRowsAreSane) {
  const auto jobs = RunTiny();
  PhillyTracesOptions options;
  options.util_sample_period = Hours(1);
  PhillyTracesExporter exporter(ClusterConfig::PaperScale(), options);
  std::ostringstream out;
  exporter.WriteGpuUtil(jobs, out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time,machineId,gpu_util");
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    const auto last_comma = line.rfind(',');
    const double util = std::stod(line.substr(last_comma + 1));
    ASSERT_GE(util, 0.0);
    ASSERT_LE(util, 100.0);
    ASSERT_EQ(line.substr(0, 8), "2017-10-");
  }
  EXPECT_GT(rows, 100);
}

TEST(PhillyFormatTest, MemUtilAccountsFreeMemory) {
  const auto jobs = RunTiny();
  PhillyTracesOptions options;
  options.util_sample_period = Hours(2);
  PhillyTracesExporter exporter(ClusterConfig::PaperScale(), options);
  std::ostringstream out;
  exporter.WriteMemUtil(jobs, out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time,machineId,mem_total_gb,mem_free_gb");
  int rows = 0;
  while (std::getline(in, line) && rows < 2000) {
    ++rows;
    const auto parts = ParseCsvLine(line);
    ASSERT_EQ(parts.size(), 4u);
    const double total = std::stod(parts[2]);
    const double free = std::stod(parts[3]);
    ASSERT_GT(total, 0.0);
    ASSERT_GE(free, 0.0);
    ASSERT_LE(free, total);
  }
  EXPECT_GT(rows, 50);
}

TEST(PhillyFormatTest, WriteDirectoryProducesAllFiles) {
  const auto jobs = RunTiny();
  PhillyTracesExporter exporter(ClusterConfig::PaperScale());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(exporter.WriteDirectory(jobs, dir));
  for (const char* name :
       {"cluster_job_log", "cluster_machine_list", "cluster_gpu_util",
        "cluster_cpu_util", "cluster_mem_util"}) {
    std::ifstream check(dir + "/" + name);
    EXPECT_TRUE(check.good()) << name;
  }
  EXPECT_FALSE(exporter.WriteDirectory(jobs, "/nonexistent/philly"));
}

TEST(PhillyImporterTest, TimestampRoundTrip) {
  PhillyTracesImporter importer;
  PhillyTracesExporter exporter(ClusterConfig::Small());
  for (SimTime t : {SimTime{0}, Hours(5) + 42, Days(40) + Minutes(3)}) {
    SimTime parsed = -1;
    ASSERT_TRUE(importer.ParseTimestamp(exporter.Timestamp(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  SimTime dummy = 0;
  EXPECT_FALSE(importer.ParseTimestamp("None", &dummy));
  EXPECT_FALSE(importer.ParseTimestamp("", &dummy));
}

TEST(PhillyImporterTest, ExportImportRoundTrip) {
  const auto jobs = RunTiny();
  PhillyTracesExporter exporter(ClusterConfig::PaperScale());
  std::ostringstream out;
  exporter.WriteJobLog(jobs, out);

  PhillyTracesImporter importer;
  std::string error;
  const auto imported = importer.ImportJobLog(out.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(imported.size(), jobs.size());

  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(imported[i].status, jobs[i].status) << i;
    EXPECT_EQ(imported[i].spec.submit_time, jobs[i].spec.submit_time);
    // Pre-run attempts are not exported; everything else must survive.
    size_t gang_attempts = 0;
    for (const auto& attempt : jobs[i].attempts) {
      gang_attempts += attempt.prerun ? 0 : 1;
    }
    ASSERT_EQ(imported[i].attempts.size(), gang_attempts);
    if (!imported[i].attempts.empty()) {
      EXPECT_EQ(imported[i].attempts.front().start, jobs[i].attempts.front().start);
      EXPECT_EQ(imported[i].attempts.back().end, jobs[i].attempts.back().end);
      EXPECT_EQ(imported[i].spec.num_gpus, jobs[i].spec.num_gpus);
      EXPECT_EQ(imported[i].InitialQueueDelay(), jobs[i].InitialQueueDelay());
      EXPECT_EQ(imported[i].attempts.front().placement.NumServers(),
                jobs[i].attempts.front().placement.NumServers());
    }
  }
  EXPECT_GT(importer.num_vcs(), 5);
  EXPECT_GT(importer.num_machines(), 10);
}

TEST(PhillyImporterTest, AnalysesRunOnImportedData) {
  const auto jobs = RunTiny();
  PhillyTracesExporter exporter(ClusterConfig::PaperScale());
  std::ostringstream out;
  exporter.WriteJobLog(jobs, out);
  PhillyTracesImporter importer;
  const auto imported = importer.ImportJobLog(out.str());

  const auto status_native = AnalyzeStatus(jobs);
  const auto status_imported = AnalyzeStatus(imported);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(status_imported.by_status[static_cast<size_t>(s)].count,
              status_native.by_status[static_cast<size_t>(s)].count);
  }
  const auto runtimes = AnalyzeRunTimes(imported);
  EXPECT_GT(runtimes.cdf_minutes[0].Count(), 100.0);
  const auto locality = AnalyzeLocalityDelay(imported);
  EXPECT_FALSE(locality.five_to_eight.empty());
}

TEST(PhillyImporterTest, MalformedInputReportsError) {
  PhillyTracesImporter importer;
  std::string error;
  EXPECT_TRUE(importer.ImportJobLog("[{]", &error).empty());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace philly
