// Cross-cutting invariants: the analysis results computed from the in-memory
// records must be identical to those computed from a trace-file round trip —
// i.e., the trace artifact loses nothing the analysis needs.

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/trace/trace_io.h"

namespace philly {
namespace {

class PipelineInvariantsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = ExperimentConfig::BenchScale(3, 5);
    run_ = new ExperimentRun(RunExperiment(config));

    std::stringstream jobs_csv;
    std::stringstream attempts_csv;
    std::stringstream util_csv;
    std::stringstream stdout_log;
    TraceWriter::WriteJobs(run_->result.jobs, jobs_csv);
    TraceWriter::WriteAttempts(run_->result.jobs, attempts_csv);
    TraceWriter::WriteUtilSegments(run_->result.jobs, util_csv);
    TraceWriter::WriteStdoutLogs(run_->result.jobs, stdout_log);
    restored_ = new std::vector<JobRecord>(
        TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv, stdout_log));
  }
  static void TearDownTestSuite() {
    delete run_;
    delete restored_;
    run_ = nullptr;
    restored_ = nullptr;
  }

  static ExperimentRun* run_;
  static std::vector<JobRecord>* restored_;
};

ExperimentRun* PipelineInvariantsTest::run_ = nullptr;
std::vector<JobRecord>* PipelineInvariantsTest::restored_ = nullptr;

TEST_F(PipelineInvariantsTest, StatusAnalysisSurvivesRoundTrip) {
  const auto a = AnalyzeStatus(run_->result.jobs);
  const auto b = AnalyzeStatus(*restored_);
  EXPECT_EQ(a.total_jobs, b.total_jobs);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(a.by_status[static_cast<size_t>(s)].count,
              b.by_status[static_cast<size_t>(s)].count);
    EXPECT_NEAR(a.by_status[static_cast<size_t>(s)].gpu_time_share,
                b.by_status[static_cast<size_t>(s)].gpu_time_share, 1e-9);
  }
}

TEST_F(PipelineInvariantsTest, RunTimeAnalysisSurvivesRoundTrip) {
  const auto a = AnalyzeRunTimes(run_->result.jobs);
  const auto b = AnalyzeRunTimes(*restored_);
  for (int bucket = 0; bucket < kNumSizeBuckets; ++bucket) {
    EXPECT_DOUBLE_EQ(a.cdf_minutes[static_cast<size_t>(bucket)].Count(),
                     b.cdf_minutes[static_cast<size_t>(bucket)].Count());
    EXPECT_NEAR(a.cdf_minutes[static_cast<size_t>(bucket)].Mean(),
                b.cdf_minutes[static_cast<size_t>(bucket)].Mean(), 1e-9);
  }
  EXPECT_DOUBLE_EQ(a.fraction_over_one_week, b.fraction_over_one_week);
}

TEST_F(PipelineInvariantsTest, FailureAnalysisSurvivesRoundTrip) {
  const auto a = AnalyzeFailures(run_->result.jobs);
  const auto b = AnalyzeFailures(*restored_);
  EXPECT_EQ(a.total_trials, b.total_trials);
  for (int r = 0; r < kNumFailureReasons; ++r) {
    EXPECT_EQ(a.rows[static_cast<size_t>(r)].trials,
              b.rows[static_cast<size_t>(r)].trials)
        << ToString(static_cast<FailureReason>(r));
    EXPECT_EQ(a.rows[static_cast<size_t>(r)].jobs,
              b.rows[static_cast<size_t>(r)].jobs);
    EXPECT_NEAR(a.rows[static_cast<size_t>(r)].rtf_p50_min,
                b.rows[static_cast<size_t>(r)].rtf_p50_min, 1e-6);
  }
}

TEST_F(PipelineInvariantsTest, UtilizationAnalysisSurvivesRoundTrip) {
  // Utilization segments carry limited precision in CSV; means must agree to
  // within the serialization tolerance.
  const auto a = AnalyzeUtilization(run_->result.jobs);
  const auto b = AnalyzeUtilization(*restored_);
  EXPECT_NEAR(a.all.Mean(), b.all.Mean(), 0.05);
  EXPECT_NEAR(a.all.Count(), b.all.Count(), 1.0);
}

TEST_F(PipelineInvariantsTest, GpuTimeConservation) {
  // Total GPU-time must equal the sum over attempts, independent of path.
  double from_jobs = 0.0;
  double from_attempts = 0.0;
  for (const auto& job : run_->result.jobs) {
    from_jobs += job.gpu_seconds;
    for (const auto& attempt : job.attempts) {
      from_attempts += attempt.GpuTime();
    }
  }
  EXPECT_DOUBLE_EQ(from_jobs, from_attempts);
}

TEST_F(PipelineInvariantsTest, EveryFailedAttemptClassifiable) {
  FailureClassifier classifier;
  int64_t no_signature = 0;
  int64_t failed = 0;
  for (const auto& job : *restored_) {
    for (const auto& attempt : job.attempts) {
      if (!attempt.failed) {
        continue;
      }
      ++failed;
      if (classifier.Classify(attempt.log_tail) == FailureReason::kNoSignature) {
        ++no_signature;
      }
    }
  }
  ASSERT_GT(failed, 100);
  // Only genuinely signature-less logs should fall through (paper: 4.2%).
  EXPECT_LT(static_cast<double>(no_signature) / static_cast<double>(failed), 0.10);
}

}  // namespace
}  // namespace philly
